package lineardiff

import (
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/tree"
)

func TestPaperIntroExample(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Add,
		b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b")),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"), b.MustN(exp.Var, "d")))
	dst := b.MustN(exp.Add,
		b.MustN(exp.Var, "d"),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"),
			b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b"))))

	s, err := Diff(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Apply(s, src, b.Schema(), b.Alloc())
	if err != nil {
		t.Fatalf("apply: %v\nscript: %s", err, s)
	}
	if !tree.Equal(out, dst) {
		t.Fatalf("apply produced %s, want %s", out, dst)
	}
	// The moved subtree cannot be expressed as a move: the script deletes
	// and reinserts material, and its total length is proportional to the
	// trees (the paper's intro criticism). The optimal sequence alignment
	// copies Add,Sub,a,b and rewrites the rest: 10 operations, of which 6
	// are changes — compare truediff's 4 edits for the same pair.
	if s.Len() != 10 {
		t.Errorf("script length = %d, want 10:\n%s", s.Len(), s)
	}
	if s.ChangeCount() != 6 {
		t.Errorf("changes = %d, want 6:\n%s", s.ChangeCount(), s)
	}
	if !strings.Contains(s.String(), "Del(") || !strings.Contains(s.String(), "Ins(") {
		t.Errorf("script should contain Del and Ins: %s", s)
	}
}

func TestIdenticalTreesAllCopies(t *testing.T) {
	g := exp.NewGen(2)
	src := g.Tree(40)
	dst := tree.Clone(src, g.Alloc(), tree.SHA256)
	s, err := Diff(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if s.ChangeCount() != 0 {
		t.Errorf("identical trees: %d changes", s.ChangeCount())
	}
	// Even the empty change costs one Cpy per node.
	if s.Len() != src.Size() {
		t.Errorf("script length = %d, want %d", s.Len(), src.Size())
	}
	out, err := Apply(s, src, g.Schema(), g.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(out, dst) {
		t.Error("apply incorrect")
	}
}

func TestApplyCorrectnessRandom(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := exp.NewGen(seed)
		src := g.Tree(35)
		dst := g.MutateN(src, 3)
		s, err := Diff(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Apply(s, src, g.Schema(), g.Alloc())
		if err != nil {
			t.Fatalf("seed %d: apply: %v", seed, err)
		}
		if !tree.Equal(out, dst) {
			t.Fatalf("seed %d: wrong result", seed)
		}
	}
}

func TestLiteralChangeIsDelIns(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
	dst := b.MustN(exp.Add, b.MustN(exp.Num, 9), b.MustN(exp.Num, 2))
	s, err := Diff(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Cpy cannot cross differing literals: Del(Num 1) + Ins(Num 9).
	if s.ChangeCount() != 2 {
		t.Errorf("changes = %d, want 2:\n%s", s.ChangeCount(), s)
	}
}

func TestSizeCap(t *testing.T) {
	g := exp.NewGen(3)
	big := g.Tree(MaxNodes + 100)
	if _, err := Diff(big, big); err == nil {
		t.Error("oversized input should be refused")
	}
}

func TestApplyRejectsWrongSource(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Num, 1)
	dst := b.MustN(exp.Num, 2)
	s, err := Diff(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	other := b.MustN(exp.Var, "x")
	if _, err := Apply(s, other, b.Schema(), b.Alloc()); err == nil {
		t.Error("applying against a different source should fail")
	}
	// A script with a dangling Cpy is rejected too.
	broken := &Script{Ops: append(append([]Op(nil), s.Ops...), Op{Kind: Cpy, Tag: exp.Num, Lits: []any{int64(1)}})}
	if _, err := Apply(broken, src, b.Schema(), b.Alloc()); err == nil {
		t.Error("script with excess operations should fail")
	}
}
