// Package lineardiff implements a typed diffing baseline in the style of
// Lempsink et al. (WGP 2009) and Vassena (TyDe 2016): edit scripts over the
// preorder traversal of typed trees, consisting of Cpy, Ins, and Del
// operations. The scripts are type-safe — they can be executed as a typed
// tree transformation — but they cannot express moves, so a relocated
// subtree is deleted and reinserted from scratch, which is why their size
// is proportional to the input trees (paper §1 and §7).
//
// The minimal script is computed with a Levenshtein-style dynamic program
// over the two preorder node sequences, O(n·m) time and space; Diff caps
// the input size accordingly.
package lineardiff

import (
	"fmt"
	"strings"

	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/uri"
)

// OpKind classifies the three operations.
type OpKind uint8

// The operations of the typed linear edit script.
const (
	Cpy OpKind = iota // keep the source constructor, refocus on subtrees
	Del               // remove a constructor from the source tree
	Ins               // insert a constructor into the source tree
)

// Op is one operation; Tag and Lits identify the constructor it concerns.
type Op struct {
	Kind OpKind
	Tag  sig.Tag
	Lits []any
}

func (o Op) String() string {
	var k string
	switch o.Kind {
	case Cpy:
		k = "Cpy"
	case Del:
		k = "Del"
	case Ins:
		k = "Ins"
	}
	if o.Kind == Cpy {
		return k
	}
	return fmt.Sprintf("%s(%s)", k, o.Tag)
}

// Script is a typed linear edit script over preorder traversals.
type Script struct {
	Ops []Op
}

// Len returns the total number of operations — proportional to the tree
// sizes, since unchanged constructors still need a Cpy.
func (s *Script) Len() int { return len(s.Ops) }

// ChangeCount returns the number of non-copy operations.
func (s *Script) ChangeCount() int {
	n := 0
	for _, o := range s.Ops {
		if o.Kind != Cpy {
			n++
		}
	}
	return n
}

// String renders the script compactly.
func (s *Script) String() string {
	parts := make([]string, len(s.Ops))
	for i, o := range s.Ops {
		parts[i] = o.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// MaxNodes bounds the input size of Diff; beyond it the quadratic dynamic
// program is refused rather than silently thrashing.
const MaxNodes = 4000

type flatNode struct {
	tag  sig.Tag
	lits []any
}

func flatten(t *tree.Node) []flatNode {
	out := make([]flatNode, 0, t.Size())
	tree.Walk(t, func(n *tree.Node) {
		out = append(out, flatNode{tag: n.Tag, lits: n.Lits})
	})
	return out
}

func sameNode(a, b flatNode) bool {
	if a.tag != b.tag || len(a.lits) != len(b.lits) {
		return false
	}
	for i := range a.lits {
		if a.lits[i] != b.lits[i] {
			return false
		}
	}
	return true
}

// Diff computes a minimal Cpy/Ins/Del script transforming src into dst,
// minimizing the number of Ins and Del operations. Copies are only allowed
// between nodes with equal constructor and literals.
func Diff(src, dst *tree.Node) (*Script, error) {
	xs, ys := flatten(src), flatten(dst)
	n, m := len(xs), len(ys)
	if n > MaxNodes || m > MaxNodes {
		return nil, fmt.Errorf("lineardiff: tree too large (%d, %d nodes; max %d)", n, m, MaxNodes)
	}
	// dp[i][j] = minimal ins+del cost to transform xs[i:] into ys[j:].
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := n; i >= 0; i-- {
		for j := m; j >= 0; j-- {
			switch {
			case i == n && j == m:
				dp[i][j] = 0
			case i == n:
				dp[i][j] = int32(m - j)
			case j == m:
				dp[i][j] = int32(n - i)
			default:
				best := dp[i+1][j] + 1 // delete xs[i]
				if c := dp[i][j+1] + 1; c < best {
					best = c // insert ys[j]
				}
				if sameNode(xs[i], ys[j]) {
					if c := dp[i+1][j+1]; c < best {
						best = c // copy
					}
				}
				dp[i][j] = best
			}
		}
	}
	// Reconstruct, preferring Cpy, then Del, then Ins (this yields the
	// paper's intro script shape: deletions precede the insertions that
	// replace them).
	s := &Script{}
	for i, j := 0, 0; i < n || j < m; {
		switch {
		case i < n && j < m && sameNode(xs[i], ys[j]) && dp[i][j] == dp[i+1][j+1]:
			s.Ops = append(s.Ops, Op{Kind: Cpy, Tag: xs[i].tag, Lits: xs[i].lits})
			i++
			j++
		case i < n && dp[i][j] == dp[i+1][j]+1:
			s.Ops = append(s.Ops, Op{Kind: Del, Tag: xs[i].tag, Lits: xs[i].lits})
			i++
		default:
			s.Ops = append(s.Ops, Op{Kind: Ins, Tag: ys[j].tag, Lits: ys[j].lits})
			j++
		}
	}
	return s, nil
}

// Apply executes the script against src: Cpy and Del consume source nodes
// in preorder, Cpy and Ins emit target nodes in preorder. The target tree
// is rebuilt from the emitted preorder sequence using the schema's arities.
func Apply(s *Script, src *tree.Node, sch *sig.Schema, alloc *uri.Allocator) (*tree.Node, error) {
	xs := flatten(src)
	var out []flatNode
	i := 0
	for _, o := range s.Ops {
		switch o.Kind {
		case Cpy:
			if i >= len(xs) || !sameNode(xs[i], flatNode{tag: o.Tag, lits: o.Lits}) {
				return nil, fmt.Errorf("lineardiff: Cpy does not match source at position %d", i)
			}
			out = append(out, xs[i])
			i++
		case Del:
			if i >= len(xs) || xs[i].tag != o.Tag {
				return nil, fmt.Errorf("lineardiff: Del does not match source at position %d", i)
			}
			i++
		case Ins:
			out = append(out, flatNode{tag: o.Tag, lits: o.Lits})
		}
	}
	if i != len(xs) {
		return nil, fmt.Errorf("lineardiff: script consumed %d of %d source nodes", i, len(xs))
	}
	pos := 0
	var build func() (*tree.Node, error)
	build = func() (*tree.Node, error) {
		if pos >= len(out) {
			return nil, fmt.Errorf("lineardiff: preorder sequence exhausted")
		}
		fn := out[pos]
		pos++
		g := sch.Lookup(fn.tag)
		if g == nil {
			return nil, fmt.Errorf("lineardiff: undeclared tag %s", fn.tag)
		}
		kids := make([]*tree.Node, len(g.Kids))
		for k := range kids {
			kid, err := build()
			if err != nil {
				return nil, err
			}
			kids[k] = kid
		}
		return tree.New(sch, alloc, fn.tag, kids, fn.lits)
	}
	t, err := build()
	if err != nil {
		return nil, err
	}
	if pos != len(out) {
		return nil, fmt.Errorf("lineardiff: %d trailing nodes after rebuilding the tree", len(out)-pos)
	}
	return t, nil
}
