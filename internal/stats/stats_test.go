package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("summary = %v", s)
	}
	if !almostEq(s.Q1, 2) || !almostEq(s.Q3, 4) {
		t.Errorf("quartiles = %v / %v", s.Q1, s.Q3)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty sample should yield zero summary")
	}
	one := Summarize([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.Median != 7 {
		t.Errorf("singleton summary = %v", one)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[2] != 2 {
		t.Error("Summarize sorted the caller's slice")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want) {
			t.Errorf("P%.2f = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestMeans(t *testing.T) {
	if !almostEq(Mean([]float64{2, 4}), 3) {
		t.Error("mean wrong")
	}
	if !almostEq(GeoMean([]float64{1, 4}), 2) {
		t.Error("geomean wrong")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("geomean of negative should be NaN")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(GeoMean(nil)) {
		t.Error("empty means should be NaN")
	}
}

func TestRatiosAndDiffs(t *testing.T) {
	r := Ratios([]float64{4, 0, 3}, []float64{2, 0, 0})
	if r[0] != 2 || r[1] != 1 || !math.IsInf(r[2], 1) {
		t.Errorf("ratios = %v", r)
	}
	d := Diffs([]float64{5, 1}, []float64{2, 2})
	if d[0] != 3 || d[1] != -1 {
		t.Errorf("diffs = %v", d)
	}
	if len(Ratios([]float64{1, 2}, []float64{1})) != 1 {
		t.Error("ratios should truncate to the shorter slice")
	}
}

func TestFinite(t *testing.T) {
	xs := Finite([]float64{1, math.NaN(), math.Inf(1), 2, math.Inf(-1)})
	if len(xs) != 2 || xs[0] != 1 || xs[1] != 2 {
		t.Errorf("finite = %v", xs)
	}
}

func TestBoxPlotRendering(t *testing.T) {
	out := BoxPlot(
		[]string{"truediff", "gumtree"},
		[][]float64{{1, 2, 3, 4, 5}, {10, 20, 30}},
		40,
	)
	for _, want := range []string{"truediff", "gumtree", "#", "[", "]", "med="} {
		if !strings.Contains(out, want) {
			t.Errorf("boxplot lacks %q:\n%s", want, out)
		}
	}
	if got := BoxPlot([]string{"x"}, [][]float64{{}}, 40); !strings.Contains(got, "no data") {
		t.Errorf("empty boxplot = %q", got)
	}
	// Constant sample must not divide by zero.
	if got := BoxPlot([]string{"c"}, [][]float64{{5, 5, 5}}, 10); !strings.Contains(got, "med=5") {
		t.Errorf("constant boxplot = %q", got)
	}
}

// Property: the summary brackets the data and quartiles are ordered.
func TestQuickSummaryInvariants(t *testing.T) {
	prop := func(xs []float64) bool {
		fin := Finite(xs)
		// Keep magnitudes reasonable: the naive sum in Mean overflows for
		// values near MaxFloat64, which is out of scope for benchmarks.
		for i, x := range fin {
			fin[i] = math.Remainder(x, 1e9)
		}
		if len(fin) == 0 {
			return true
		}
		s := Summarize(fin)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
