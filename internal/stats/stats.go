// Package stats provides the summary statistics used by the evaluation
// harness: five-number box-plot summaries, means, percentiles, and a
// compact ASCII box-plot rendering for terminal output, mirroring the box
// plots of the paper's Figures 4 and 5.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary is a box-plot summary of a sample.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
}

// Summarize computes the five-number summary plus mean. It returns a zero
// summary for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, x := range s {
		sum += x
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
	}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of the sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, p)
}

// quantileSorted linearly interpolates the p-quantile of a sorted sample.
func quantileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean (NaN for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of a positive sample (NaN otherwise).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Ratios returns element-wise a[i]/b[i]; zero denominators map both-zero
// pairs to 1 (no change on either side) and positive/zero pairs to +Inf.
func Ratios(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		switch {
		case b[i] != 0:
			out[i] = a[i] / b[i]
		case a[i] == 0:
			out[i] = 1
		default:
			out[i] = math.Inf(1)
		}
	}
	return out
}

// Diffs returns element-wise a[i]-b[i].
func Diffs(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] - b[i]
	}
	return out
}

// Finite filters out NaN and ±Inf values.
func Finite(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	return out
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g mean=%.3g",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// BoxPlot renders labeled samples as aligned ASCII box plots over a shared
// axis, the terminal analog of the paper's figures:
//
//	label |----[==|==]------| (median at |)
func BoxPlot(labels []string, samples [][]float64, width int) string {
	if width < 20 {
		width = 20
	}
	sums := make([]Summary, len(samples))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, xs := range samples {
		sums[i] = Summarize(Finite(xs))
		if sums[i].N == 0 {
			continue
		}
		lo = math.Min(lo, sums[i].Min)
		hi = math.Max(hi, sums[i].Max)
	}
	if math.IsInf(lo, 1) {
		return "(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	scale := func(x float64) int {
		p := int(math.Round((x - lo) / (hi - lo) * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	var b strings.Builder
	for i, s := range sums {
		fmt.Fprintf(&b, "%-*s ", labelW, labels[i])
		if s.N == 0 {
			b.WriteString("(no data)\n")
			continue
		}
		row := make([]byte, width)
		for j := range row {
			row[j] = ' '
		}
		for j := scale(s.Min); j <= scale(s.Max); j++ {
			row[j] = '-'
		}
		for j := scale(s.Q1); j <= scale(s.Q3); j++ {
			row[j] = '='
		}
		row[scale(s.Min)] = '|'
		row[scale(s.Max)] = '|'
		row[scale(s.Q1)] = '['
		row[scale(s.Q3)] = ']'
		row[scale(s.Median)] = '#'
		b.Write(row)
		fmt.Fprintf(&b, "  med=%.3g mean=%.3g\n", s.Median, s.Mean)
	}
	fmt.Fprintf(&b, "%-*s %-*.3g%*.3g\n", labelW, "", width/2, lo, width-width/2, hi)
	return b.String()
}
