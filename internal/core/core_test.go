package core

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truediff"
	"repro/internal/uri"
)

func TestWorkspaceDiffVerified(t *testing.T) {
	w := NewWorkspace(exp.Schema())
	b := w.Builder()
	src := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 2))
	dst := b.MustN(exp.Mul, b.MustN(exp.Num, 2), b.MustN(exp.Num, 1))
	res, err := w.DiffVerified(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Script.IsEmpty() {
		t.Error("expected edits")
	}
	if !tree.Equal(res.Patched, dst) {
		t.Error("patched tree wrong")
	}
}

func TestWorkspaceRandomVerified(t *testing.T) {
	g := exp.NewGen(31)
	w := NewWorkspace(g.Schema())
	for i := 0; i < 25; i++ {
		src := g.Tree(40)
		dst := g.MutateN(src, 3)
		if _, err := w.DiffVerified(src, dst); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestDocumentUpdateChain(t *testing.T) {
	g := exp.NewGen(17)
	w := NewWorkspace(g.Schema())
	cur := g.Tree(50)
	doc, err := w.OpenDocument(cur)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		next := g.Mutate(doc.Current())
		script, err := doc.Update(next)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if script == nil {
			t.Fatal("nil script")
		}
		if !doc.Tree().EqualTree(next) {
			t.Fatalf("round %d: document out of sync", i)
		}
		if !tree.Equal(doc.Current(), next) {
			t.Fatalf("round %d: current out of sync", i)
		}
		if err := doc.Tree().CheckClosed(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
}

func TestWorkspaceWithOptions(t *testing.T) {
	g := exp.NewGen(9)
	w := NewWorkspaceWithOptions(g.Schema(), truediff.Options{Order: truediff.FIFO})
	src := g.Tree(30)
	dst := g.MutateN(src, 2)
	if _, err := w.DiffVerified(src, dst); err != nil {
		t.Fatal(err)
	}
	if w.Schema() == nil || w.Alloc() == nil {
		t.Error("accessors broken")
	}
}

func TestWorkspaceDiffErrors(t *testing.T) {
	w := NewWorkspace(exp.Schema())
	b := w.Builder()
	n := b.MustN(exp.Num, 1)
	if _, err := w.Diff(nil, n); err == nil {
		t.Error("nil source should fail")
	}
	if _, err := w.Diff(n, nil); err == nil {
		t.Error("nil target should fail")
	}
	if _, err := w.OpenDocument(nil); err == nil {
		t.Error("opening a nil document should fail")
	}
}

func TestDiffVerifiedCatchesForeignTrees(t *testing.T) {
	// Trees from a different schema fail verification cleanly rather than
	// panicking: the mtree conversion rejects undeclared tags.
	w := NewWorkspace(exp.Schema())
	other := tree.NewBuilder(foreignSchema(), uri.NewAllocator())
	src := other.MustN("Alien", 1)
	dst := other.MustN("Alien", 2)
	if _, err := w.DiffVerified(src, dst); err == nil {
		t.Error("foreign-schema trees should fail verification")
	}
}

func foreignSchema() *sig.Schema {
	s := sig.NewSchema("foreign")
	s.MustDeclare(sig.Sig{Tag: "Alien", Lits: []sig.LitSpec{{Link: "n", Type: sig.IntLit}}, Result: "X"})
	return s
}
