// Package core ties the paper's pieces into one convenient facade: typed
// tree schemas (sig), immutable hashed trees (tree), the truediff algorithm
// (truediff), the truechange linear type system (truechange), and the
// standard semantics (mtree). It is the entry point a downstream user
// reaches for first; the underlying packages remain available for
// fine-grained control.
//
// A Workspace owns a schema and a URI allocator and offers the full
// pipeline: build or parse trees, diff them, verify the resulting scripts,
// and apply them to mutable documents.
package core

import (
	"fmt"

	"repro/internal/mtree"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/truediff"
	"repro/internal/uri"
)

// Workspace bundles a schema with a URI allocator and a differ. Create one
// per document family; URIs stay unique across all trees built through it.
type Workspace struct {
	sch    *sig.Schema
	alloc  *uri.Allocator
	differ *truediff.Differ
}

// NewWorkspace returns a workspace over the schema with the paper's
// truediff configuration.
func NewWorkspace(sch *sig.Schema) *Workspace {
	return &Workspace{
		sch:    sch,
		alloc:  uri.NewAllocator(),
		differ: truediff.New(sch),
	}
}

// NewWorkspaceWithOptions returns a workspace with explicit diff options.
func NewWorkspaceWithOptions(sch *sig.Schema, opts truediff.Options) *Workspace {
	w := NewWorkspace(sch)
	w.differ = truediff.NewWithOptions(sch, opts)
	return w
}

// Schema returns the workspace schema.
func (w *Workspace) Schema() *sig.Schema { return w.sch }

// Alloc returns the workspace URI allocator.
func (w *Workspace) Alloc() *uri.Allocator { return w.alloc }

// Builder returns a tree builder bound to the workspace.
func (w *Workspace) Builder() *tree.Builder {
	return tree.NewBuilder(w.sch, w.alloc)
}

// Diff computes the truechange edit script from source to target and the
// patched tree (which reuses source subtrees and can seed the next diff).
// The source tree need not have been built through this workspace: its
// URIs are reserved in the workspace allocator so freshly loaded nodes
// never collide.
func (w *Workspace) Diff(source, target *tree.Node) (*truediff.Result, error) {
	if source != nil {
		tree.Walk(source, func(n *tree.Node) { w.alloc.Reserve(n.URI) })
	}
	return w.differ.Diff(source, target, w.alloc)
}

// DiffVerified is Diff plus the full verification pipeline of Conjectures
// 4.2 and 4.3: the script is checked against the linear type system,
// checked for syntactic compliance with the source, and applied via the
// standard semantics; the patched document must equal the target.
func (w *Workspace) DiffVerified(source, target *tree.Node) (*truediff.Result, error) {
	res, err := w.Diff(source, target)
	if err != nil {
		return nil, err
	}
	if err := truechange.WellTyped(w.sch, res.Script); err != nil {
		return nil, fmt.Errorf("core: generated script is ill-typed: %w", err)
	}
	doc, err := mtree.FromTree(w.sch, source)
	if err != nil {
		return nil, err
	}
	if err := doc.Comply(res.Script); err != nil {
		return nil, fmt.Errorf("core: generated script does not comply: %w", err)
	}
	if err := doc.Patch(res.Script); err != nil {
		return nil, fmt.Errorf("core: patching failed: %w", err)
	}
	if !doc.EqualTree(target) {
		return nil, fmt.Errorf("core: patched document does not equal the target")
	}
	return res, nil
}

// Document wraps a mutable tree (the standard semantics) for incremental
// pipelines: hold one Document per file, Diff new versions against
// Current, and Apply the scripts.
type Document struct {
	ws      *Workspace
	mt      *mtree.MTree
	current *tree.Node
}

// OpenDocument creates a document holding the initial tree.
func (w *Workspace) OpenDocument(initial *tree.Node) (*Document, error) {
	if initial == nil {
		return nil, fmt.Errorf("core: nil initial tree")
	}
	mt, err := mtree.FromTree(w.sch, initial)
	if err != nil {
		return nil, err
	}
	return &Document{ws: w, mt: mt, current: initial}, nil
}

// Current returns the document's current immutable tree.
func (d *Document) Current() *tree.Node { return d.current }

// Tree returns the document's mutable tree.
func (d *Document) Tree() *mtree.MTree { return d.mt }

// Update diffs the document against the new version, applies the script to
// the mutable tree, advances Current, and returns the script.
func (d *Document) Update(next *tree.Node) (*truechange.Script, error) {
	res, err := d.ws.Diff(d.current, next)
	if err != nil {
		return nil, err
	}
	if err := d.mt.Patch(res.Script); err != nil {
		return nil, err
	}
	d.current = res.Patched
	return res.Script, nil
}
