package jsonlang

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mtree"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/truediff"
)

func parseOK(t *testing.T, c *Codec, src string) *tree.Node {
	t.Helper()
	n, err := c.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return n
}

func TestParseScalars(t *testing.T) {
	c := NewCodec()
	cases := []struct {
		src string
		tag string
	}{
		{`"hello"`, "String"},
		{`42`, "Number"},
		{`-2.5e3`, "Number"},
		{`true`, "Bool"},
		{`false`, "Bool"},
		{`null`, "Null"},
	}
	for _, cse := range cases {
		n := parseOK(t, c, cse.src)
		if string(n.Tag) != cse.tag {
			t.Errorf("%s: tag = %s, want %s", cse.src, n.Tag, cse.tag)
		}
	}
}

func TestParseStructure(t *testing.T) {
	c := NewCodec()
	n := parseOK(t, c, `{"name":"alice","tags":["a","b"],"meta":{"age":30,"active":true}}`)
	if n.Tag != TagObject {
		t.Fatal("not an object")
	}
	members := listElems(n.Kids[0])
	if len(members) != 3 || members[0].Lits[0] != "name" || members[2].Lits[0] != "meta" {
		t.Fatalf("members wrong: %v", members)
	}
	if members[1].Kids[0].Tag != TagArray {
		t.Error("tags should be an array")
	}
	if got := len(listElems(members[1].Kids[0].Kids[0])); got != 2 {
		t.Errorf("array length = %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	c := NewCodec()
	bad := []string{``, `{`, `{"a"}`, `[1,`, `{"a":1} trailing`, `{'single'}`}
	for _, src := range bad {
		if _, err := c.Parse(src); err == nil {
			t.Errorf("parse %q should fail", src)
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	cases := []string{
		`null`,
		`true`,
		`3.25`,
		`"with \"quotes\" and \n newline"`,
		`[]`,
		`{}`,
		`[1,[2,[3,null]],{}]`,
		`{"a":1,"b":{"c":[true,false]},"d":"x"}`,
	}
	c := NewCodec()
	for _, src := range cases {
		n := parseOK(t, c, src)
		out := Render(n)
		// Compare by decoded value (whitespace-insensitive).
		var want, got any
		if err := json.Unmarshal([]byte(src), &want); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(out), &got); err != nil {
			t.Fatalf("rendered output is not valid JSON: %q", out)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("round trip changed value: %q -> %q", src, out)
		}
		// Structural round trip: reparsing yields an equal tree.
		n2 := parseOK(t, c, out)
		if !tree.Equal(n, n2) {
			t.Errorf("structural round trip diverged for %q", src)
		}
	}
}

func TestMemberOrderPreserved(t *testing.T) {
	c := NewCodec()
	n := parseOK(t, c, `{"z":1,"a":2,"m":3}`)
	out := Render(n)
	if !strings.HasPrefix(out, `{"z":`) || strings.Index(out, `"a"`) > strings.Index(out, `"m"`) {
		t.Errorf("member order not preserved: %s", out)
	}
}

// TestDiffJSONDocuments diffs two versions of a config document — the
// databases use case: the patch mentions only the changed members.
func TestDiffJSONDocuments(t *testing.T) {
	c := NewCodec()
	before := parseOK(t, c, `{
		"service": "api",
		"replicas": 3,
		"resources": {"cpu": 2, "memory": "4Gi"},
		"endpoints": [
			{"path": "/health", "public": true},
			{"path": "/admin", "public": false}
		]
	}`)
	after := parseOK(t, c, `{
		"service": "api",
		"replicas": 5,
		"resources": {"cpu": 2, "memory": "8Gi"},
		"endpoints": [
			{"path": "/admin", "public": false},
			{"path": "/health", "public": true}
		]
	}`)

	d := truediff.New(c.Schema())
	res, err := d.Diff(before, after, c.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	if err := truechange.WellTyped(c.Schema(), res.Script); err != nil {
		t.Fatalf("ill-typed: %v", err)
	}
	mt, err := mtree.FromTree(c.Schema(), before)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Patch(res.Script); err != nil {
		t.Fatal(err)
	}
	if !mt.EqualTree(after) {
		t.Fatal("patched ≠ after")
	}
	// Two literal updates plus the endpoint swap: far fewer edits than the
	// document size.
	if res.Script.EditCount() > 12 {
		t.Errorf("config change cost %d edits:\n%s", res.Script.EditCount(), res.Script)
	}
	st := truechange.ComputeStats(res.Script)
	if st.Updates < 2 {
		t.Errorf("replicas and memory should be literal updates: %s", st)
	}
	// The two endpoint objects are structurally equivalent, so truediff
	// realizes the swap as literal updates in place — no structural edits
	// at all.
	if st.Loads != 0 || st.Detaches != 0 {
		t.Errorf("structurally equivalent swap should need no structural edits: %s\n%s", st, res.Script)
	}
}

// TestDiffJSONMove forces a genuine structural move: the moved object is
// structurally unique, so it travels as a detach/attach pair.
func TestDiffJSONMove(t *testing.T) {
	c := NewCodec()
	before := parseOK(t, c, `{"pipeline":[{"stage":"build","steps":["compile","lint","test"]},{"stage":"deploy"}]}`)
	after := parseOK(t, c, `{"pipeline":[{"stage":"deploy"},{"stage":"build","steps":["compile","lint","test"]}]}`)
	d := truediff.New(c.Schema())
	res, err := d.Diff(before, after, c.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	if err := truechange.WellTyped(c.Schema(), res.Script); err != nil {
		t.Fatal(err)
	}
	mt, err := mtree.FromTree(c.Schema(), before)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Patch(res.Script); err != nil {
		t.Fatal(err)
	}
	if !mt.EqualTree(after) {
		t.Fatal("patched ≠ after")
	}
	st := truechange.ComputeStats(res.Script)
	if st.Moves == 0 {
		t.Errorf("asymmetric swap should move subtrees: %s\n%s", st, res.Script)
	}
	// The 5-node steps array must not be reloaded.
	if st.Loads > 6 {
		t.Errorf("too many loads for a reorder: %s\n%s", st, res.Script)
	}
}
