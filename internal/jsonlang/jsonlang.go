// Package jsonlang maps JSON documents onto typed trees, exercising the
// paper's claim that structural patches serve beyond ASTs — change
// detection in hierarchically structured database records is the original
// motivation of Chawathe et al. (paper §1 cites databases as a use case).
//
// Objects become Member cons lists (preserving member order), arrays
// become element cons lists, and scalars become leaves. Diffing two JSON
// documents with truediff then yields concise, type-safe truechange
// patches over the document structure.
package jsonlang

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/uri"
)

// Sorts of the JSON schema.
const (
	SortValue   sig.Sort = "Value"
	SortMember  sig.Sort = "Member"
	SortMembers sig.Sort = "MemberList"
	SortElems   sig.Sort = "ElemList"
)

// Tags of the JSON schema.
const (
	TagObject  sig.Tag = "Object"
	TagMember  sig.Tag = "Member"
	TagMemCons sig.Tag = "MemberCons"
	TagMemNil  sig.Tag = "MemberNil"
	TagArray   sig.Tag = "Array"
	TagElCons  sig.Tag = "ElemCons"
	TagElNil   sig.Tag = "ElemNil"
	TagString  sig.Tag = "String"
	TagNumber  sig.Tag = "Number"
	TagBool    sig.Tag = "Bool"
	TagNull    sig.Tag = "Null"
)

// Schema returns the JSON document schema.
func Schema() *sig.Schema {
	s := sig.NewSchema("json")
	kid := func(l sig.Link, srt sig.Sort) sig.KidSpec { return sig.KidSpec{Link: l, Sort: srt} }
	s.MustDeclare(sig.Sig{Tag: TagObject, Kids: []sig.KidSpec{kid("members", SortMembers)}, Result: SortValue})
	s.MustDeclare(sig.Sig{Tag: TagMember,
		Kids:   []sig.KidSpec{kid("value", SortValue)},
		Lits:   []sig.LitSpec{{Link: "key", Type: sig.StringLit}},
		Result: SortMember})
	s.MustDeclare(sig.Sig{Tag: TagMemCons,
		Kids:   []sig.KidSpec{kid("head", SortMember), kid("tail", SortMembers)},
		Result: SortMembers})
	s.MustDeclare(sig.Sig{Tag: TagMemNil, Result: SortMembers})
	s.MustDeclare(sig.Sig{Tag: TagArray, Kids: []sig.KidSpec{kid("elems", SortElems)}, Result: SortValue})
	s.MustDeclare(sig.Sig{Tag: TagElCons,
		Kids:   []sig.KidSpec{kid("head", SortValue), kid("tail", SortElems)},
		Result: SortElems})
	s.MustDeclare(sig.Sig{Tag: TagElNil, Result: SortElems})
	s.MustDeclare(sig.Sig{Tag: TagString, Lits: []sig.LitSpec{{Link: "v", Type: sig.StringLit}}, Result: SortValue})
	s.MustDeclare(sig.Sig{Tag: TagNumber, Lits: []sig.LitSpec{{Link: "v", Type: sig.FloatLit}}, Result: SortValue})
	s.MustDeclare(sig.Sig{Tag: TagBool, Lits: []sig.LitSpec{{Link: "v", Type: sig.BoolLit}}, Result: SortValue})
	s.MustDeclare(sig.Sig{Tag: TagNull, Result: SortValue})
	return s
}

// Codec converts between JSON text and typed trees over one schema and
// allocator (so URIs stay unique across versions of a document).
type Codec struct {
	sch   *sig.Schema
	alloc *uri.Allocator
}

// NewCodec returns a codec with a fresh schema and allocator.
func NewCodec() *Codec {
	return &Codec{sch: Schema(), alloc: uri.NewAllocator()}
}

// Schema returns the codec's schema.
func (c *Codec) Schema() *sig.Schema { return c.sch }

// Alloc returns the codec's allocator.
func (c *Codec) Alloc() *uri.Allocator { return c.alloc }

// Parse decodes a JSON document into a typed tree. Member order is
// preserved (the decoder reads tokens, not maps).
func (c *Codec) Parse(src string) (*tree.Node, error) {
	dec := json.NewDecoder(strings.NewReader(src))
	dec.UseNumber()
	n, err := c.value(dec)
	if err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("jsonlang: trailing content")
	}
	return n, nil
}

func (c *Codec) value(dec *json.Decoder) (*tree.Node, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("jsonlang: %w", err)
	}
	return c.fromToken(dec, tok)
}

func (c *Codec) fromToken(dec *json.Decoder, tok json.Token) (*tree.Node, error) {
	switch v := tok.(type) {
	case json.Delim:
		switch v {
		case '{':
			var members []*tree.Node
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, fmt.Errorf("jsonlang: %w", err)
				}
				key, ok := keyTok.(string)
				if !ok {
					return nil, fmt.Errorf("jsonlang: object key is not a string")
				}
				val, err := c.value(dec)
				if err != nil {
					return nil, err
				}
				m, err := tree.New(c.sch, c.alloc, TagMember, []*tree.Node{val}, []any{key})
				if err != nil {
					return nil, err
				}
				members = append(members, m)
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return nil, fmt.Errorf("jsonlang: %w", err)
			}
			spine, err := c.spine(TagMemCons, TagMemNil, members)
			if err != nil {
				return nil, err
			}
			return tree.New(c.sch, c.alloc, TagObject, []*tree.Node{spine}, nil)
		case '[':
			var elems []*tree.Node
			for dec.More() {
				el, err := c.value(dec)
				if err != nil {
					return nil, err
				}
				elems = append(elems, el)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, fmt.Errorf("jsonlang: %w", err)
			}
			spine, err := c.spine(TagElCons, TagElNil, elems)
			if err != nil {
				return nil, err
			}
			return tree.New(c.sch, c.alloc, TagArray, []*tree.Node{spine}, nil)
		default:
			return nil, fmt.Errorf("jsonlang: unexpected delimiter %q", v)
		}
	case string:
		return tree.New(c.sch, c.alloc, TagString, nil, []any{v})
	case json.Number:
		f, err := v.Float64()
		if err != nil {
			return nil, fmt.Errorf("jsonlang: %w", err)
		}
		return tree.New(c.sch, c.alloc, TagNumber, nil, []any{f})
	case bool:
		return tree.New(c.sch, c.alloc, TagBool, nil, []any{v})
	case nil:
		return tree.New(c.sch, c.alloc, TagNull, nil, nil)
	default:
		return nil, fmt.Errorf("jsonlang: unexpected token %v", tok)
	}
}

func (c *Codec) spine(cons, nilTag sig.Tag, elems []*tree.Node) (*tree.Node, error) {
	out, err := tree.New(c.sch, c.alloc, nilTag, nil, nil)
	if err != nil {
		return nil, err
	}
	for i := len(elems) - 1; i >= 0; i-- {
		out, err = tree.New(c.sch, c.alloc, cons, []*tree.Node{elems[i], out}, nil)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Render encodes the tree back to compact JSON text.
func Render(n *tree.Node) string {
	var b strings.Builder
	render(n, &b)
	return b.String()
}

func render(n *tree.Node, b *strings.Builder) {
	switch n.Tag {
	case TagObject:
		b.WriteByte('{')
		for i, m := range listElems(n.Kids[0]) {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(m.Lits[0].(string)))
			b.WriteByte(':')
			render(m.Kids[0], b)
		}
		b.WriteByte('}')
	case TagArray:
		b.WriteByte('[')
		for i, el := range listElems(n.Kids[0]) {
			if i > 0 {
				b.WriteByte(',')
			}
			render(el, b)
		}
		b.WriteByte(']')
	case TagString:
		b.WriteString(strconv.Quote(n.Lits[0].(string)))
	case TagNumber:
		b.WriteString(strconv.FormatFloat(n.Lits[0].(float64), 'g', -1, 64))
	case TagBool:
		b.WriteString(strconv.FormatBool(n.Lits[0].(bool)))
	case TagNull:
		b.WriteString("null")
	}
}

func listElems(spine *tree.Node) []*tree.Node {
	var out []*tree.Node
	for spine != nil && len(spine.Kids) == 2 {
		out = append(out, spine.Kids[0])
		spine = spine.Kids[1]
	}
	return out
}
