package evaluation

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/stats"
	"repro/internal/tree"
	"repro/internal/truediff"
)

// AblationResult reports one truediff configuration's behaviour on the
// corpus: patch sizes and throughput, for the design-choice ablations of
// DESIGN.md §5.
type AblationResult struct {
	Name       string
	Edits      []float64 // compound edit count per file
	NodesPerMS []float64
}

// RunAblations diffs the corpus under each ablation configuration plus two
// hash variants, returning one result per configuration.
func RunAblations(opts corpus.Options) []AblationResult {
	h := corpus.Generate(opts)
	changes := h.Changes()
	alloc := h.Factory.Alloc()

	configs := []struct {
		name string
		opts truediff.Options
		kind tree.HashKind
	}{
		{"paper (structural + literal preference)", truediff.Options{}, tree.SHA256},
		{"exact-only candidates", truediff.Options{Equiv: truediff.ExactOnly}, tree.SHA256},
		{"no preference pass", truediff.Options{Equiv: truediff.StructuralNoPreference}, tree.SHA256},
		{"FIFO selection order", truediff.Options{Order: truediff.FIFO}, tree.SHA256},
		{"update on literal mismatch", truediff.Options{UpdateOnLitMismatch: true}, tree.SHA256},
		{"FNV-64 hashing", truediff.Options{}, tree.FNV64},
	}

	// Warm caches so the first configuration is not penalized.
	warm := truediff.New(h.Factory.Schema())
	for i, fc := range changes {
		if i >= 10 {
			break
		}
		src := tree.Clone(fc.Before, alloc, tree.SHA256)
		dst := tree.Clone(fc.After, alloc, tree.SHA256)
		if _, err := warm.Diff(src, dst, alloc); err != nil {
			panic(err)
		}
	}

	out := make([]AblationResult, 0, len(configs))
	for _, cfg := range configs {
		d := truediff.NewWithOptions(h.Factory.Schema(), cfg.opts)
		res := AblationResult{Name: cfg.name}
		for _, fc := range changes {
			start := time.Now()
			src := tree.Clone(fc.Before, alloc, cfg.kind)
			dst := tree.Clone(fc.After, alloc, cfg.kind)
			r, err := d.Diff(src, dst, alloc)
			elapsed := time.Since(start).Nanoseconds()
			if err != nil {
				panic(fmt.Sprintf("evaluation: ablation %s failed: %v", cfg.name, err))
			}
			res.Edits = append(res.Edits, float64(r.Script.EditCount()))
			nodes := float64(fc.Before.Size() + fc.After.Size())
			res.NodesPerMS = append(res.NodesPerMS, nodes/(float64(elapsed)/1e6))
		}
		out = append(out, res)
	}
	return out
}

// AblationReport renders the ablation comparison as text.
func AblationReport(results []AblationResult) string {
	var b strings.Builder
	b.WriteString("== Ablations (DESIGN.md §5): truediff design choices ==\n\n")
	if len(results) == 0 {
		return b.String()
	}
	base := stats.Summarize(results[0].Edits)
	baseTP := stats.Summarize(results[0].NodesPerMS)
	fmt.Fprintf(&b, "%-42s %12s %14s %14s\n", "configuration", "mean edits", "vs paper", "median nodes/ms")
	for _, r := range results {
		e := stats.Summarize(r.Edits)
		tp := stats.Summarize(r.NodesPerMS)
		fmt.Fprintf(&b, "%-42s %12.1f %13.2fx %14.0f\n", r.Name, e.Mean, e.Mean/base.Mean, tp.Median)
	}
	fmt.Fprintf(&b, "\n(throughput baseline: %.0f nodes/ms)\n", baseTP.Median)
	return b.String()
}
