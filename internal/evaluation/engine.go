package evaluation

import (
	"fmt"
	"time"

	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/pylang"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/truediff"
	"repro/internal/uri"
)

// This file measures the batch engine against plain sequential diffing on
// the same corpus replay, and verifies along the way that the engine is a
// pure performance layer. The sequential side mirrors the methodology of
// Runner.measure — trees are reconstructed per diff so hashing is part of
// the measured work. The engine side runs in engine-managed mode: trees are
// interned by content, so the ingest of a version the engine has already
// seen (every change's Before is the previous change's After) is a map
// lookup instead of a clone — the amortization a version-history replay is
// meant to exploit.

// EngineReplayResult compares the batch engine against sequential diffing
// over one corpus replay.
type EngineReplayResult struct {
	Files int // file changes replayed
	Nodes int // total input nodes (source + target)

	SequentialNS int64 // wall time of the sequential replay
	EngineNS     int64 // wall time of ingest + batch through the engine
	Speedup      float64

	// ScriptsAgree is the correctness verdict: every engine script has the
	// same shape as its sequential counterpart (identical per-kind edit
	// counts — URI numbering differs between the engine's URI space and the
	// sequential per-pair allocators) and patches its source into a tree
	// content-equal to the target. Mismatches counts the disagreeing file
	// changes (0 when ScriptsAgree).
	ScriptsAgree bool
	Mismatches   int

	// Snapshot is the engine's metrics delta over the replay (pool, memo,
	// and tree-store hit rates, per-diff wall totals): the difference of
	// the snapshots taken after and before the batch (Snapshot.Sub), so a
	// reused engine reports this replay's numbers, not its lifetime's.
	Snapshot engine.Snapshot
}

// RunEngineReplay replays every file change of the configured corpus twice
// — once through a fresh sequential differ, once through a batch engine
// with the given worker count — and returns timings, the script-agreement
// verdict, and the engine's metrics snapshot.
func RunEngineReplay(cfg Config, workers int) *EngineReplayResult {
	// Schema validation is by tag name, so an engine over a fresh pylang
	// schema accepts trees built by the corpus generator's own factory.
	return RunEngineReplayOn(engine.New(pylang.Schema(), engine.Config{Workers: workers}), cfg)
}

// RunEngineReplayOn is RunEngineReplay over a caller-supplied engine — the
// one cmd/evaluate wires tracing, observers, and the metrics endpoint to.
// The engine must accept pylang trees (any engine over a pylang schema
// does); its worker count is whatever it was configured with. The result's
// Snapshot is the engine's per-replay delta, leaving the engine's
// cumulative counters untouched for the caller.
func RunEngineReplayOn(e *engine.Engine, cfg Config) *EngineReplayResult {
	h := corpus.Generate(cfg.Corpus)
	sch := h.Factory.Schema()
	changes := h.Changes()

	res := &EngineReplayResult{Files: len(changes)}
	for _, fc := range changes {
		res.Nodes += fc.Before.Size() + fc.After.Size()
	}

	// Sequential replay: clone (hash) and diff each pair with a fresh
	// allocator, keeping the scripts' shapes for the agreement check.
	d := truediff.New(sch)
	seqStats := make([]truechange.Stats, 0, len(changes))
	seqStart := time.Now()
	for _, fc := range changes {
		alloc := uri.NewAllocator()
		src := tree.Clone(fc.Before, alloc, tree.SHA256)
		dst := tree.Clone(fc.After, alloc, tree.SHA256)
		out, err := d.Diff(src, dst, alloc)
		if err != nil {
			panic(fmt.Sprintf("evaluation: sequential diff failed on %s: %v", fc.Path, err))
		}
		seqStats = append(seqStats, truechange.ComputeStats(out.Script))
	}
	res.SequentialNS = time.Since(seqStart).Nanoseconds()

	// Engine replay: engine-managed ingest (nil allocator interns trees by
	// content) and batch diffing over the shared store.
	before := e.Snapshot()
	engStart := time.Now()
	pairs := make([]engine.Pair, len(changes))
	for i, fc := range changes {
		pairs[i] = engine.Pair{
			Source: e.Ingest(fc.Before, nil),
			Target: e.Ingest(fc.After, nil),
			Label:  fmt.Sprintf("%s#%d", fc.Path, i),
		}
	}
	results, err := e.DiffBatch(nil, pairs)
	if err != nil {
		panic(fmt.Sprintf("evaluation: engine batch failed: %v", err))
	}
	res.EngineNS = time.Since(engStart).Nanoseconds()

	res.ScriptsAgree = true
	for i, pr := range results {
		if pr.Err != nil {
			panic(fmt.Sprintf("evaluation: engine diff failed on %s: %v", changes[i].Path, pr.Err))
		}
		if truechange.ComputeStats(pr.Result.Script) != seqStats[i] ||
			!tree.Equal(pr.Result.Patched, changes[i].After) {
			res.ScriptsAgree = false
			res.Mismatches++
		}
	}
	if res.EngineNS > 0 {
		res.Speedup = float64(res.SequentialNS) / float64(res.EngineNS)
	}
	res.Snapshot = e.Snapshot().Sub(before)
	return res
}

// Report renders the comparison for CLI output.
func (r *EngineReplayResult) Report() string {
	verdict := "scripts agree with sequential; patched trees equal targets"
	if !r.ScriptsAgree {
		verdict = fmt.Sprintf("MISMATCH on %d of %d file changes", r.Mismatches, r.Files)
	}
	return fmt.Sprintf(
		"engine replay: %d file changes, %d nodes\n"+
			"sequential: %v   engine: %v   speedup: %.2fx\n"+
			"%s\n%s",
		r.Files, r.Nodes,
		time.Duration(r.SequentialNS).Round(time.Millisecond),
		time.Duration(r.EngineNS).Round(time.Millisecond),
		r.Speedup, verdict, r.Snapshot,
	)
}
