package evaluation

import (
	"strings"
	"testing"

	"repro/internal/corpus"
)

func tinyConfig() Config {
	return Config{
		Corpus: corpus.Options{
			Seed: 3, Files: 4, Commits: 20, MaxFilesPerCommit: 2,
			MinNodes: 120, MaxNodes: 400, MaxEditsPerFile: 3,
		},
		Reps:   2,
		Warmup: 2,
	}
}

func TestRunnerProducesResults(t *testing.T) {
	r := NewRunner(tinyConfig())
	results := r.Run()
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for i, fr := range results {
		if fr.Nodes <= 0 {
			t.Errorf("result %d: nodes = %d", i, fr.Nodes)
		}
		if fr.TruediffNS <= 0 || fr.GumtreeNS <= 0 || fr.HdiffNS <= 0 {
			t.Errorf("result %d: non-positive timing", i)
		}
		if fr.TruediffEdits < 0 || fr.GumtreeEdits < 0 || fr.HdiffSize < 0 {
			t.Errorf("result %d: negative size", i)
		}
		if fr.TruediffEdits == 0 {
			t.Errorf("result %d: change produced no truediff edits", i)
		}
	}
}

// TestEvaluationShape asserts the qualitative result of the paper on the
// synthetic corpus: hdiff patches are much larger than truediff's, and
// truediff's patch sizes are in the same ballpark as gumtree's.
func TestEvaluationShape(t *testing.T) {
	r := NewRunner(tinyConfig())
	results := r.Run()
	c := Fig4(results)
	if c.MeanHdiffRatio < 2 {
		t.Errorf("hdiff/truediff mean ratio = %.2f, expected hdiff patches to be much larger", c.MeanHdiffRatio)
	}
	if c.MeanGumtreeRatio > 5 || c.MeanGumtreeRatio < 0.2 {
		t.Errorf("gumtree/truediff mean ratio = %.2f, expected the same ballpark", c.MeanGumtreeRatio)
	}
	th := Fig5(results)
	if len(th.Truediff) != len(results) {
		t.Error("throughput series incomplete")
	}
	for _, series := range [][]float64{th.Truediff, th.Gumtree, th.Hdiff} {
		for _, v := range series {
			if v <= 0 {
				t.Fatal("non-positive throughput")
			}
		}
	}
}

func TestReportsRender(t *testing.T) {
	r := NewRunner(tinyConfig())
	results := r.Run()
	fig4 := Fig4(results).Report()
	for _, want := range []string{"Figure 4", "hdiff - truediff", "gumtree/truediff", "18.8x"} {
		if !strings.Contains(fig4, want) {
			t.Errorf("fig4 report lacks %q", want)
		}
	}
	fig5 := Fig5(results).Report()
	for _, want := range []string{"Figure 5", "nodes/ms", "truediff vs gumtree", "running time"} {
		if !strings.Contains(fig5, want) {
			t.Errorf("fig5 report lacks %q", want)
		}
	}
}

func TestScaling(t *testing.T) {
	points := RunScaling([]int{200, 800}, 2)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.NSPerNode <= 0 || p.Nodes <= 0 {
			t.Errorf("bad point %+v", p)
		}
	}
	report := ScalingReport(points)
	if !strings.Contains(report, "ns/node") || !strings.Contains(report, "Theorem 4.1") {
		t.Errorf("scaling report:\n%s", report)
	}
}

func TestRunIncA(t *testing.T) {
	cfg := IncAConfig{
		Corpus: corpus.Options{
			Seed: 8, Files: 2, Commits: 6, MaxFilesPerCommit: 1,
			MinNodes: 100, MaxNodes: 250, MaxEditsPerFile: 2,
		},
		IndexReps: 2,
	}
	res := RunIncA(cfg)
	if res.Changes == 0 {
		t.Fatal("no changes processed")
	}
	if len(res.DiffMS) != res.Changes || len(res.RecomputeMS) != res.Changes {
		t.Error("series lengths wrong")
	}
	if res.IndexOps <= 0 || res.OneToOneNS <= 0 || res.ManyToOneNS <= 0 {
		t.Errorf("index micro-benchmark empty: ops=%d", res.IndexOps)
	}
	report := res.Report()
	for _, want := range []string{"Incremental computing", "speedup", "OneToOneIndex", "ManyToOneIndex"} {
		if !strings.Contains(report, want) {
			t.Errorf("inca report lacks %q:\n%s", want, report)
		}
	}
}

func TestRunAblations(t *testing.T) {
	results := RunAblations(corpus.Options{
		Seed: 2, Files: 3, Commits: 8, MaxFilesPerCommit: 2,
		MinNodes: 120, MaxNodes: 300, MaxEditsPerFile: 2,
	})
	if len(results) != 6 {
		t.Fatalf("configs = %d", len(results))
	}
	base := results[0]
	if len(base.Edits) == 0 || len(base.NodesPerMS) != len(base.Edits) {
		t.Fatal("series empty or misaligned")
	}
	for _, r := range results {
		if len(r.Edits) != len(base.Edits) {
			t.Errorf("%s: series length differs", r.Name)
		}
	}
	report := AblationReport(results)
	for _, want := range []string{"Ablations", "paper", "FNV-64", "vs paper"} {
		if !strings.Contains(report, want) {
			t.Errorf("ablation report lacks %q", want)
		}
	}
	if AblationReport(nil) == "" {
		t.Error("empty report should still have a header")
	}
}

func TestRunMatching(t *testing.T) {
	res := RunMatching(corpus.Options{
		Seed: 4, Files: 2, Commits: 6, MaxFilesPerCommit: 1,
		MinNodes: 100, MaxNodes: 250, MaxEditsPerFile: 2,
	})
	if len(res.HashEdits) == 0 || len(res.HashEdits) != len(res.MatchEdits) {
		t.Fatal("series empty or misaligned")
	}
	report := res.Report()
	for _, want := range []string{"open direction", "Gumtree matching", "type-safe"} {
		if !strings.Contains(report, want) {
			t.Errorf("matching report lacks %q", want)
		}
	}
}
