package evaluation

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/gumtree"
	"repro/internal/stats"
	"repro/internal/truediff"
)

// MatchingResult holds the §7 open-direction experiment (E11): truechange
// scripts generated from Gumtree's similarity matching versus truediff's
// hash-based assignment, on the same corpus.
type MatchingResult struct {
	HashEdits  []float64
	MatchEdits []float64
	HashMS     []float64
	MatchMS    []float64
}

// RunMatching executes the comparison.
func RunMatching(opts corpus.Options) *MatchingResult {
	h := corpus.Generate(opts)
	d := truediff.New(h.Factory.Schema())
	alloc := h.Factory.Alloc()
	res := &MatchingResult{}
	for _, fc := range h.Changes() {
		start := time.Now()
		own, err := d.Diff(fc.Before, fc.After, alloc)
		hashMS := float64(time.Since(start).Nanoseconds()) / 1e6
		if err != nil {
			panic(err)
		}

		start = time.Now()
		pairs := gumtree.MatchTyped(fc.Before, fc.After, gumtree.DefaultOptions())
		matches := make([]truediff.MatchPair, len(pairs))
		for i, p := range pairs {
			matches[i] = truediff.MatchPair{Src: p.Src, Dst: p.Dst}
		}
		viaMatch, err := d.DiffWithMatching(fc.Before, fc.After, matches, alloc)
		matchMS := float64(time.Since(start).Nanoseconds()) / 1e6
		if err != nil {
			panic(err)
		}

		res.HashEdits = append(res.HashEdits, float64(own.Script.EditCount()))
		res.MatchEdits = append(res.MatchEdits, float64(viaMatch.Script.EditCount()))
		res.HashMS = append(res.HashMS, hashMS)
		res.MatchMS = append(res.MatchMS, matchMS)
	}
	return res
}

// Report renders the comparison as text.
func (r *MatchingResult) Report() string {
	var b strings.Builder
	b.WriteString("== §7 open direction (E11): type-safe scripts from similarity matching ==\n\n")
	b.WriteString("The paper: \"it may be possible to generate detach and attach edits\n")
	b.WriteString("instead of move edits, but to use their similarity scores. We have not\n")
	b.WriteString("explored this direction.\" — explored here:\n\n")
	he := stats.Summarize(r.HashEdits)
	me := stats.Summarize(r.MatchEdits)
	ht := stats.Summarize(r.HashMS)
	mt := stats.Summarize(r.MatchMS)
	fmt.Fprintf(&b, "%-38s %14s %14s\n", "generator", "mean edits", "median ms")
	fmt.Fprintf(&b, "%-38s %14.1f %14.2f\n", "truediff (hash equivalences)", he.Mean, ht.Median)
	fmt.Fprintf(&b, "%-38s %14.1f %14.2f\n", "truechange from Gumtree matching", me.Mean, mt.Median)
	fmt.Fprintf(&b, "\nBoth are type-safe; hash-based equivalences are %.1fx faster and %.2fx\n",
		mt.Median/ht.Median, me.Mean/he.Mean)
	b.WriteString("as concise — confirming the paper's design choice while answering its\n")
	b.WriteString("open question positively.\n")
	return b.String()
}
