package evaluation

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/inca"
	"repro/internal/sig"
	"repro/internal/stats"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/truediff"
	"repro/internal/uri"
)

// IncAResult holds the incremental-computing experiment of paper §6: per
// commit, the cost of reparse-diff-update (truediff driving the Datalog
// database) versus full reanalysis from scratch, plus a micro-comparison of
// the one-to-one and many-to-one link index encodings.
type IncAResult struct {
	Changes int

	// DiffMS is the truediff time per change; UpdateMS the incremental
	// Datalog maintenance time; RecomputeMS the from-scratch reanalysis.
	DiffMS      []float64
	UpdateMS    []float64
	RecomputeMS []float64

	// Index micro-benchmark: total nanoseconds spent replaying all edit
	// scripts' link operations against each encoding, and the op count.
	IndexOps        int
	OneToOneNS      int64
	ManyToOneNS     int64
	DerivedFactsEnd int
}

// IncAConfig parameterizes the experiment.
type IncAConfig struct {
	Corpus corpus.Options
	// IndexReps repeats the index replay to stabilize the micro-benchmark.
	IndexReps int
}

// DefaultIncAConfig uses file sizes where incrementality pays off clearly;
// the speedup over reanalysis grows with file size, since the incremental
// update cost tracks the edit while reanalysis tracks the file.
func DefaultIncAConfig() IncAConfig {
	return IncAConfig{
		Corpus: corpus.Options{
			Seed: 5, Files: 4, Commits: 25, MaxFilesPerCommit: 2,
			MinNodes: 800, MaxNodes: 2000, MaxEditsPerFile: 3,
		},
		IndexReps: 5,
	}
}

// RunIncA executes the incremental-computing experiment.
func RunIncA(cfg IncAConfig) *IncAResult {
	h := corpus.Generate(cfg.Corpus)
	sch := h.Factory.Schema()
	differ := truediff.New(sch)
	res := &IncAResult{}

	type fileState struct {
		driver *inca.Driver
		cur    *tree.Node
	}
	states := make(map[string]*fileState)
	var scripts []scriptReplay

	for _, fc := range h.Changes() {
		st, ok := states[fc.Path]
		if !ok {
			d, err := inca.NewDriver(sch, inca.StandardRules(), inca.NewOneToOne())
			if err != nil {
				panic(err)
			}
			if err := d.InitTree(fc.Before); err != nil {
				panic(err)
			}
			st = &fileState{driver: d, cur: fc.Before}
			states[fc.Path] = st
		}

		start := time.Now()
		out, err := differ.Diff(st.cur, fc.After, h.Factory.Alloc())
		diffMS := float64(time.Since(start).Nanoseconds()) / 1e6
		if err != nil {
			panic(err)
		}

		start = time.Now()
		if err := st.driver.ProcessScript(out.Script); err != nil {
			panic(err)
		}
		updateMS := float64(time.Since(start).Nanoseconds()) / 1e6

		// From-scratch baseline: initialize a fresh database for the new
		// tree and evaluate the full analysis.
		start = time.Now()
		fresh, err := inca.NewDriver(sch, inca.StandardRules(), inca.NewOneToOne())
		if err != nil {
			panic(err)
		}
		if err := fresh.InitTree(fc.After); err != nil {
			panic(err)
		}
		recomputeMS := float64(time.Since(start).Nanoseconds()) / 1e6

		res.Changes++
		res.DiffMS = append(res.DiffMS, diffMS)
		res.UpdateMS = append(res.UpdateMS, updateMS)
		res.RecomputeMS = append(res.RecomputeMS, recomputeMS)
		scripts = append(scripts, scriptReplay{before: st.cur, script: out.Script})
		st.cur = out.Patched
	}

	for _, st := range states {
		res.DerivedFactsEnd += st.driver.Engine.Count("inFunc")
	}

	// Index micro-benchmark: replay every script's link operations against
	// both encodings, starting from the respective before-tree.
	reps := cfg.IndexReps
	if reps < 1 {
		reps = 1
	}
	for rep := 0; rep < reps; rep++ {
		for _, sr := range scripts {
			ops := 0
			res.OneToOneNS += replayIndex(sch, sr, inca.NewOneToOne(), &ops)
			res.ManyToOneNS += replayIndex(sch, sr, inca.NewManyToOne(), &ops)
			res.IndexOps += ops / 2 // per-encoding op count this round
		}
	}
	return res
}

type scriptReplay struct {
	before *tree.Node
	script *truechange.Script
}

// replayIndex loads the before-tree into the index, then replays the
// script's attach/detach/load/unload link operations, returning the time
// spent in the replay phase only.
func replayIndex(sch *sig.Schema, sr scriptReplay, ix inca.LinkIndex, ops *int) int64 {
	seed := func(n *tree.Node) {
		g := sch.Lookup(n.Tag)
		for i, spec := range g.Kids {
			if err := ix.Attach(spec.Link, n.URI, n.Kids[i].URI); err != nil {
				panic(err)
			}
		}
	}
	tree.Walk(sr.before, seed)
	if err := ix.Attach(sig.RootLink, uri.Root, sr.before.URI); err != nil {
		panic(err)
	}

	start := time.Now()
	for _, e := range sr.script.Edits {
		switch ed := e.(type) {
		case truechange.Detach:
			if err := ix.Detach(ed.Link, ed.Parent.URI, ed.Node.URI); err != nil {
				panic(err)
			}
			*ops++
		case truechange.Attach:
			if err := ix.Attach(ed.Link, ed.Parent.URI, ed.Node.URI); err != nil {
				panic(err)
			}
			*ops++
		case truechange.Load:
			for _, k := range ed.Kids {
				if err := ix.Attach(k.Link, ed.Node.URI, k.URI); err != nil {
					panic(err)
				}
				*ops++
			}
		case truechange.Unload:
			for _, k := range ed.Kids {
				if err := ix.Detach(k.Link, ed.Node.URI, k.URI); err != nil {
					panic(err)
				}
				*ops++
			}
		}
		// Lookups are the common read path of analyses; exercise both
		// directions like the IncA driver does.
		if d, ok := e.(truechange.Attach); ok {
			ix.Kid(d.Link, d.Parent.URI)
			ix.Parent(d.Link, d.Node.URI)
		}
	}
	return time.Since(start).Nanoseconds()
}

// Report renders the incremental-computing experiment as text.
func (r *IncAResult) Report() string {
	var b strings.Builder
	b.WriteString("== Incremental computing (paper §6): truediff driving IncA ==\n\n")
	diff := stats.Summarize(r.DiffMS)
	upd := stats.Summarize(r.UpdateMS)
	rec := stats.Summarize(r.RecomputeMS)
	fmt.Fprintf(&b, "changes processed:            %d\n", r.Changes)
	fmt.Fprintf(&b, "truediff per change:          median %.2f ms (mean %.2f)\n", diff.Median, diff.Mean)
	fmt.Fprintf(&b, "incremental Datalog update:   median %.2f ms (mean %.2f)\n", upd.Median, upd.Mean)
	fmt.Fprintf(&b, "from-scratch reanalysis:      median %.2f ms (mean %.2f)\n", rec.Median, rec.Mean)
	pipeline := stats.Mean(r.DiffMS) + stats.Mean(r.UpdateMS)
	fmt.Fprintf(&b, "speedup (reanalysis / (diff+update)): %.1fx\n", rec.Mean/pipeline)
	fmt.Fprintf(&b, "derived inFunc facts at end:          %d\n\n", r.DerivedFactsEnd)

	b.WriteString("Link index encodings (type safety enables one-to-one):\n")
	if r.IndexOps > 0 {
		one := float64(r.OneToOneNS) / float64(r.IndexOps)
		many := float64(r.ManyToOneNS) / float64(r.IndexOps)
		fmt.Fprintf(&b, "  BidirectionalOneToOneIndex:  %.0f ns/op\n", one)
		fmt.Fprintf(&b, "  BidirectionalManyToOneIndex: %.0f ns/op (%.2fx, set operations)\n", many, many/one)
	}
	return b.String()
}
