// Package evaluation implements the paper's evaluation pipeline (§6) on
// the synthetic corpus: conciseness (Figure 4), throughput (Figure 5), the
// incremental-computing experiment, and the linear-scaling validation of
// Theorem 4.1. The same runners back cmd/evaluate and the testing.B
// benchmarks in bench_test.go.
//
// Methodology, mirroring the paper: every changed file is diffed by each
// system Reps times keeping the fastest run; a warm-up batch precedes
// measurement; trees are reconstructed before each truediff invocation so
// the time for computing cryptographic hashes is taken into account. The
// timed region of each system covers converting the shared typed tree into
// the system's working representation (which is where hashing happens)
// plus the diff itself.
package evaluation

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/gumtree"
	"repro/internal/hdiff"
	"repro/internal/stats"
	"repro/internal/tree"
	"repro/internal/truediff"
)

// FileResult holds the per-file measurements of one corpus change.
type FileResult struct {
	Path  string
	Nodes int // source + target node count, the throughput denominator

	TruediffEdits int // compound edit count (paper's metric)
	GumtreeEdits  int // Chawathe action count
	HdiffSize     int // constructors mentioned in the rewriting

	TruediffNS int64
	GumtreeNS  int64
	HdiffNS    int64
}

// Config parameterizes a corpus run.
type Config struct {
	Corpus corpus.Options
	// Reps is the number of measured repetitions per file and system; the
	// fastest is kept (the paper uses 3).
	Reps int
	// Warmup is the number of file pairs diffed before measurement starts
	// (the paper warms up on 100 files).
	Warmup int
}

// DefaultConfig mirrors the paper's methodology at laptop scale.
func DefaultConfig() Config {
	return Config{Corpus: corpus.DefaultOptions(), Reps: 3, Warmup: 20}
}

// Runner executes the evaluation over one corpus.
type Runner struct {
	cfg Config
	h   *corpus.History
	td  *truediff.Differ
}

// NewRunner generates the corpus for the config.
func NewRunner(cfg Config) *Runner {
	h := corpus.Generate(cfg.Corpus)
	return &Runner{cfg: cfg, h: h, td: truediff.New(h.Factory.Schema())}
}

// History exposes the generated corpus.
func (r *Runner) History() *corpus.History { return r.h }

// Run measures every file change in the corpus.
func (r *Runner) Run() []FileResult {
	changes := r.h.Changes()
	warm := r.cfg.Warmup
	if warm > len(changes) {
		warm = len(changes)
	}
	for _, fc := range changes[:warm] {
		r.measure(fc)
	}
	out := make([]FileResult, 0, len(changes))
	for _, fc := range changes {
		out = append(out, r.measure(fc))
	}
	return out
}

func (r *Runner) measure(fc corpus.FileChange) FileResult {
	res := FileResult{
		Path:  fc.Path,
		Nodes: fc.Before.Size() + fc.After.Size(),
	}
	reps := r.cfg.Reps
	if reps < 1 {
		reps = 1
	}
	alloc := r.h.Factory.Alloc()

	// truediff: reconstruct trees each invocation so hashing is measured.
	for i := 0; i < reps; i++ {
		start := time.Now()
		src := tree.Clone(fc.Before, alloc, tree.SHA256)
		dst := tree.Clone(fc.After, alloc, tree.SHA256)
		out, err := r.td.Diff(src, dst, alloc)
		elapsed := time.Since(start).Nanoseconds()
		if err != nil {
			panic(fmt.Sprintf("evaluation: truediff failed on %s: %v", fc.Path, err))
		}
		if i == 0 {
			res.TruediffEdits = out.Script.EditCount()
			res.TruediffNS = elapsed
		} else if elapsed < res.TruediffNS {
			res.TruediffNS = elapsed
		}
	}

	// Gumtree: conversion to rose trees (with hashing) is part of the run.
	for i := 0; i < reps; i++ {
		start := time.Now()
		rs := gumtree.FromTree(fc.Before)
		rd := gumtree.FromTree(fc.After)
		script, _ := gumtree.Diff(rs, rd, gumtree.DefaultOptions())
		elapsed := time.Since(start).Nanoseconds()
		if i == 0 {
			res.GumtreeEdits = script.Len()
			res.GumtreeNS = elapsed
		} else if elapsed < res.GumtreeNS {
			res.GumtreeNS = elapsed
		}
	}

	// hdiff: reconstruct so its hash-trie build cost is measured too.
	for i := 0; i < reps; i++ {
		start := time.Now()
		src := tree.Clone(fc.Before, alloc, tree.SHA256)
		dst := tree.Clone(fc.After, alloc, tree.SHA256)
		patch := hdiff.Diff(src, dst, hdiff.DefaultOptions())
		elapsed := time.Since(start).Nanoseconds()
		if i == 0 {
			res.HdiffSize = patch.Size()
			res.HdiffNS = elapsed
		} else if elapsed < res.HdiffNS {
			res.HdiffNS = elapsed
		}
	}
	return res
}

// Conciseness aggregates the Figure 4 series from per-file results.
type Conciseness struct {
	HdiffMinusTruediff   []float64
	GumtreeMinusTruediff []float64
	HdiffOverTruediff    []float64
	GumtreeOverTruediff  []float64
	MeanHdiffRatio       float64
	MeanGumtreeRatio     float64
}

// Fig4 computes the conciseness comparison (patch-size difference and
// ratio) of Figure 4. Ratios are computed over files where truediff
// produced at least one edit, as in the paper's a/b plots.
func Fig4(results []FileResult) Conciseness {
	var c Conciseness
	for _, r := range results {
		td, gt, hd := float64(r.TruediffEdits), float64(r.GumtreeEdits), float64(r.HdiffSize)
		c.HdiffMinusTruediff = append(c.HdiffMinusTruediff, hd-td)
		c.GumtreeMinusTruediff = append(c.GumtreeMinusTruediff, gt-td)
		if td > 0 {
			c.HdiffOverTruediff = append(c.HdiffOverTruediff, hd/td)
			c.GumtreeOverTruediff = append(c.GumtreeOverTruediff, gt/td)
		}
	}
	c.MeanHdiffRatio = stats.Mean(c.HdiffOverTruediff)
	c.MeanGumtreeRatio = stats.Mean(c.GumtreeOverTruediff)
	return c
}

// Report renders the Figure 4 analog as text.
func (c Conciseness) Report() string {
	var b strings.Builder
	b.WriteString("== Figure 4: edit script conciseness ==\n\n")
	b.WriteString("Patch size difference (left plot):\n")
	b.WriteString(stats.BoxPlot(
		[]string{"hdiff - truediff", "gumtree - truediff"},
		[][]float64{c.HdiffMinusTruediff, c.GumtreeMinusTruediff}, 60))
	b.WriteString("\nPatch size ratio (right plot):\n")
	b.WriteString(stats.BoxPlot(
		[]string{"hdiff/truediff", "gumtree/truediff"},
		[][]float64{c.HdiffOverTruediff, c.GumtreeOverTruediff}, 60))
	fmt.Fprintf(&b, "\nOn average, hdiff patches are %.1fx larger than truediff patches (paper: 18.8x).\n",
		c.MeanHdiffRatio)
	fmt.Fprintf(&b, "On average, gumtree patches are %.2fx the size of truediff patches (paper: truediff 1.01x gumtree).\n",
		c.MeanGumtreeRatio)
	return b.String()
}

// Throughput aggregates the Figure 5 series: nodes per millisecond.
type Throughput struct {
	Truediff []float64
	Gumtree  []float64
	Hdiff    []float64
	// RunningMS are truediff's per-file running times in milliseconds.
	RunningMS []float64
}

// Fig5 computes the throughput comparison of Figure 5.
func Fig5(results []FileResult) Throughput {
	var t Throughput
	for _, r := range results {
		n := float64(r.Nodes)
		t.Truediff = append(t.Truediff, n/(float64(r.TruediffNS)/1e6))
		t.Gumtree = append(t.Gumtree, n/(float64(r.GumtreeNS)/1e6))
		t.Hdiff = append(t.Hdiff, n/(float64(r.HdiffNS)/1e6))
		t.RunningMS = append(t.RunningMS, float64(r.TruediffNS)/1e6)
	}
	return t
}

// Report renders the Figure 5 analog as text.
func (t Throughput) Report() string {
	var b strings.Builder
	b.WriteString("== Figure 5: diffing throughput (nodes/ms) ==\n\n")
	b.WriteString(stats.BoxPlot(
		[]string{"hdiff", "gumtree", "truediff"},
		[][]float64{t.Hdiff, t.Gumtree, t.Truediff}, 60))
	mt := stats.Summarize(t.Truediff)
	mg := stats.Summarize(t.Gumtree)
	mh := stats.Summarize(t.Hdiff)
	fmt.Fprintf(&b, "\ntruediff vs gumtree: %.1fx median throughput (paper: ~8x)\n", mt.Median/mg.Median)
	fmt.Fprintf(&b, "truediff vs hdiff:   %.1fx median throughput (paper: ~22x; see EXPERIMENTS.md on this deviation)\n", mt.Median/mh.Median)
	rt := stats.Summarize(t.RunningMS)
	fmt.Fprintf(&b, "truediff running time per file: median %.2f ms, mean %.2f ms (paper: 6.4 / 12.7 ms)\n",
		rt.Median, rt.Mean)
	return b.String()
}

// Scaling measures truediff's per-node cost across tree sizes, validating
// the linear run time of Theorem 4.1: ns/node should stay flat.
type ScalingPoint struct {
	Nodes     int
	NSPerNode float64
}

// RunScaling diffs mutated trees of increasing size and reports ns/node.
func RunScaling(sizes []int, editsPerTree int) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(sizes))
	for _, size := range sizes {
		h := corpus.Generate(corpus.Options{
			Seed: int64(size), Files: 1, Commits: 3, MaxFilesPerCommit: 1,
			MinNodes: size, MaxNodes: size + size/10 + 1, MaxEditsPerFile: editsPerTree,
		})
		td := truediff.New(h.Factory.Schema())
		alloc := h.Factory.Alloc()
		var bestNS int64
		var nodes int
		for _, fc := range h.Changes() {
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				src := tree.Clone(fc.Before, alloc, tree.SHA256)
				dst := tree.Clone(fc.After, alloc, tree.SHA256)
				if _, err := td.Diff(src, dst, alloc); err != nil {
					panic(err)
				}
				ns := time.Since(start).Nanoseconds()
				if bestNS == 0 || ns < bestNS {
					bestNS = ns
					nodes = fc.Before.Size() + fc.After.Size()
				}
			}
		}
		out = append(out, ScalingPoint{Nodes: nodes, NSPerNode: float64(bestNS) / float64(nodes)})
	}
	return out
}

// ScalingReport renders the scaling table.
func ScalingReport(points []ScalingPoint) string {
	var b strings.Builder
	b.WriteString("== Linear scaling (Theorem 4.1): truediff cost per node ==\n\n")
	b.WriteString("      nodes    ns/node\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  %9d  %9.1f\n", p.Nodes, p.NSPerNode)
	}
	if len(points) >= 2 {
		first, last := points[0].NSPerNode, points[len(points)-1].NSPerNode
		fmt.Fprintf(&b, "\nns/node ratio largest/smallest tree: %.2f (flat ≈ linear run time)\n", last/first)
	}
	return b.String()
}
