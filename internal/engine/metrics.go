package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/merge"
	"repro/internal/mtree"
	"repro/internal/telemetry"
)

// metrics holds the engine's cumulative counters. All fields are atomics so
// workers update them without locking; Snapshot reads them without stopping
// the world, so a snapshot taken mid-batch is internally consistent only per
// counter (which is all the throughput arithmetic needs).
type metrics struct {
	diffs       atomic.Uint64
	errors      atomic.Uint64
	slowDiffs   atomic.Uint64
	batches     atomic.Uint64
	edits       atomic.Uint64
	sourceNodes atomic.Uint64
	targetNodes atomic.Uint64
	wallNanos   atomic.Uint64

	panics    atomic.Uint64
	timeouts  atomic.Uint64
	fallbacks atomic.Uint64

	poolGets   atomic.Uint64
	poolMisses atomic.Uint64

	// Quality accounting: nodes touched by scripts, and the running sums
	// the aggregate optimality gap is derived from (compound edits and
	// exact minimal edits over baselined diffs only).
	changedNodes    atomic.Uint64
	baselinedDiffs  atomic.Uint64
	baselineEdits   atomic.Uint64
	baselineMinimal atomic.Uint64

	ingestedTrees atomic.Uint64
	ingestedNodes atomic.Uint64

	storeHits   atomic.Uint64
	storeMisses atomic.Uint64

	// queueDepth gauges pairs submitted to a running batch but not yet
	// picked up by a worker; capacityNanos accumulates elapsed batch time
	// multiplied by the batch's worker count (the utilization denominator).
	queueDepth    atomic.Int64
	capacityNanos atomic.Uint64
}

// Snapshot is a point-in-time view of an engine's cumulative counters.
type Snapshot struct {
	// Diffs counts completed diffs; Errors counts failed ones (schema
	// mismatches, nil trees). Batches counts DiffBatch invocations.
	// SlowDiffs counts diffs at or above Config.SlowDiffThreshold (always
	// zero when the threshold is unset).
	Diffs     uint64
	Errors    uint64
	SlowDiffs uint64
	Batches   uint64

	// Panics counts diffs that panicked and were recovered into a
	// PanicError; Timeouts counts diffs aborted by the per-diff deadline
	// (Config.DiffTimeout). Both count the failure even when graceful
	// degradation rescued the pair. Fallbacks counts pairs served a
	// synthesized root-replacement script (Config.Fallback). Rollbacks
	// counts transactional patch rollbacks (mtree.Rollbacks); it is
	// process-wide, not per-engine, because patching happens on trees the
	// engine no longer owns.
	Panics    uint64
	Timeouts  uint64
	Fallbacks uint64
	Rollbacks uint64

	// Merges counts completed three-way merge attempts; MergeConflicts
	// counts conflicts detected across them (reported or policy-resolved);
	// MergeAutoResolved counts convergent group pairs collapsed to one
	// copy. Like Rollbacks these are process-wide (merge.Merges and
	// friends), not per-engine: merging happens on trees the engine no
	// longer owns.
	Merges            uint64
	MergeConflicts    uint64
	MergeAutoResolved uint64

	// Edits is the total compound edit count over all scripts produced.
	Edits uint64
	// ChangedNodes totals the nodes touched by all scripts (loads,
	// unloads, updates, moved roots). BaselinedDiffs counts diffs that ran
	// the exact minimal-script baseline (Config.QualityBaseline);
	// BaselineEdits and BaselineMinimal sum the compound and exact-minimal
	// edit counts over those diffs, and OptimalityGap is the aggregate gap
	// BaselineEdits/BaselineMinimal − 1 (0 with no baselined diffs or a
	// zero minimal sum).
	ChangedNodes    uint64
	BaselinedDiffs  uint64
	BaselineEdits   uint64
	BaselineMinimal uint64
	OptimalityGap   float64
	// SourceNodes and TargetNodes total the input tree sizes.
	SourceNodes uint64
	TargetNodes uint64
	// DiffWall totals per-diff wall time. With concurrent workers it
	// exceeds elapsed time; divide node totals by it for per-worker
	// throughput.
	DiffWall time.Duration

	// PoolGets counts scratch-state checkouts; PoolMisses counts the ones
	// that had to allocate fresh state. PoolHitRate is their complement's
	// ratio (1 means every diff after warm-up recycled scratch state).
	PoolGets    uint64
	PoolMisses  uint64
	PoolHitRate float64

	// MemoHits and MemoMisses count digest lookups served from and added
	// to the cross-diff memo; MemoEntries is its current size. All zero
	// when the memo is disabled.
	MemoHits    uint64
	MemoMisses  uint64
	MemoHitRate float64
	MemoEntries int

	// IngestedTrees and IngestedNodes count what passed through Ingest.
	// Store hits (below) do not ingest anything new and are not counted
	// here.
	IngestedTrees uint64
	IngestedNodes uint64

	// StoreHits counts nil-alloc Ingest calls served from the engine's
	// whole-tree intern store; StoreMisses the ones that had to clone.
	// StoreEntries is the number of distinct trees interned. All zero when
	// the engine is used with caller-owned allocators only.
	StoreHits    uint64
	StoreMisses  uint64
	StoreHitRate float64
	StoreEntries int

	// QueueDepth gauges pairs submitted to a running batch but not yet
	// picked up by a worker (0 when no batch is in flight). WorkerCapacity
	// totals elapsed batch time across every worker of every batch — what
	// the pool could have spent diffing — and Utilization is the busy
	// fraction DiffWall / WorkerCapacity (0 with no capacity yet; values
	// near 1 mean the workers were never idle, low values mean the batch
	// was starved by feeding, skew, or short-circuited pairs).
	QueueDepth     int64
	WorkerCapacity time.Duration
	Utilization    float64

	// SLO is the rolling-window objective evaluation at snapshot time
	// (availability over diffs, diff-latency attainment, burn rates). It
	// is a windowed gauge, not a cumulative counter: Sub keeps the newer
	// snapshot's value rather than subtracting.
	SLO telemetry.SLOSnapshot
}

// Snapshot returns the engine's counters at this instant.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{
		Diffs:             e.m.diffs.Load(),
		Errors:            e.m.errors.Load(),
		SlowDiffs:         e.m.slowDiffs.Load(),
		Batches:           e.m.batches.Load(),
		Panics:            e.m.panics.Load(),
		Timeouts:          e.m.timeouts.Load(),
		Fallbacks:         e.m.fallbacks.Load(),
		Rollbacks:         mtree.Rollbacks(),
		Merges:            merge.Merges(),
		MergeConflicts:    merge.Conflicts(),
		MergeAutoResolved: merge.AutoResolved(),
		Edits:             e.m.edits.Load(),
		ChangedNodes:      e.m.changedNodes.Load(),
		BaselinedDiffs:    e.m.baselinedDiffs.Load(),
		BaselineEdits:     e.m.baselineEdits.Load(),
		BaselineMinimal:   e.m.baselineMinimal.Load(),
		SourceNodes:       e.m.sourceNodes.Load(),
		TargetNodes:       e.m.targetNodes.Load(),
		DiffWall:          time.Duration(e.m.wallNanos.Load()),
		PoolGets:          e.m.poolGets.Load(),
		PoolMisses:        e.m.poolMisses.Load(),
		IngestedTrees:     e.m.ingestedTrees.Load(),
		IngestedNodes:     e.m.ingestedNodes.Load(),
		StoreHits:         e.m.storeHits.Load(),
		StoreMisses:       e.m.storeMisses.Load(),
		StoreEntries:      e.store.len(),
		QueueDepth:        e.m.queueDepth.Load(),
		WorkerCapacity:    time.Duration(e.m.capacityNanos.Load()),
		SLO:               e.slo.Snapshot(),
	}
	if s.WorkerCapacity > 0 {
		s.Utilization = float64(s.DiffWall) / float64(s.WorkerCapacity)
	}
	if total := s.StoreHits + s.StoreMisses; total > 0 {
		s.StoreHitRate = float64(s.StoreHits) / float64(total)
	}
	if s.PoolGets > 0 {
		s.PoolHitRate = float64(s.PoolGets-s.PoolMisses) / float64(s.PoolGets)
	}
	if e.memo != nil {
		s.MemoHits, s.MemoMisses = e.memo.Stats()
		if total := s.MemoHits + s.MemoMisses; total > 0 {
			s.MemoHitRate = float64(s.MemoHits) / float64(total)
		}
		s.MemoEntries = e.memo.Len()
	}
	s.OptimalityGap = aggregateGap(s.BaselineEdits, s.BaselineMinimal)
	return s
}

// aggregateGap turns the running sums into the aggregate optimality gap
// edits/minimal − 1, defaulting to 0 when no baseline data exists. A zero
// minimal sum with nonzero edits (every baselined pair was identical yet
// scripts had edits — cannot happen for correct diffs) also yields 0
// rather than dividing by zero.
func aggregateGap(edits, minimal uint64) float64 {
	if minimal == 0 {
		return 0
	}
	return float64(edits)/float64(minimal) - 1
}

// Sub returns the per-interval delta s − prev: every cumulative counter is
// subtracted (saturating at zero, so a snapshot of a different engine or a
// stale prev cannot wrap around), the hit rates are recomputed over the
// interval, and the gauges (MemoEntries, StoreEntries) keep s's current
// values. Taking a snapshot before and after a batch and subtracting gives
// per-batch metrics without resetting the engine:
//
//	before := e.Snapshot()
//	results, _ := e.DiffBatch(ctx, pairs)
//	delta := e.Snapshot().Sub(before)
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Diffs:             sub64(s.Diffs, prev.Diffs),
		Errors:            sub64(s.Errors, prev.Errors),
		SlowDiffs:         sub64(s.SlowDiffs, prev.SlowDiffs),
		Batches:           sub64(s.Batches, prev.Batches),
		Panics:            sub64(s.Panics, prev.Panics),
		Timeouts:          sub64(s.Timeouts, prev.Timeouts),
		Fallbacks:         sub64(s.Fallbacks, prev.Fallbacks),
		Rollbacks:         sub64(s.Rollbacks, prev.Rollbacks),
		Merges:            sub64(s.Merges, prev.Merges),
		MergeConflicts:    sub64(s.MergeConflicts, prev.MergeConflicts),
		MergeAutoResolved: sub64(s.MergeAutoResolved, prev.MergeAutoResolved),
		Edits:             sub64(s.Edits, prev.Edits),
		ChangedNodes:      sub64(s.ChangedNodes, prev.ChangedNodes),
		BaselinedDiffs:    sub64(s.BaselinedDiffs, prev.BaselinedDiffs),
		BaselineEdits:     sub64(s.BaselineEdits, prev.BaselineEdits),
		BaselineMinimal:   sub64(s.BaselineMinimal, prev.BaselineMinimal),
		SourceNodes:       sub64(s.SourceNodes, prev.SourceNodes),
		TargetNodes:       sub64(s.TargetNodes, prev.TargetNodes),
		PoolGets:          sub64(s.PoolGets, prev.PoolGets),
		PoolMisses:        sub64(s.PoolMisses, prev.PoolMisses),
		MemoHits:          sub64(s.MemoHits, prev.MemoHits),
		MemoMisses:        sub64(s.MemoMisses, prev.MemoMisses),
		IngestedTrees:     sub64(s.IngestedTrees, prev.IngestedTrees),
		IngestedNodes:     sub64(s.IngestedNodes, prev.IngestedNodes),
		StoreHits:         sub64(s.StoreHits, prev.StoreHits),
		StoreMisses:       sub64(s.StoreMisses, prev.StoreMisses),
		MemoEntries:       s.MemoEntries,
		StoreEntries:      s.StoreEntries,
		QueueDepth:        s.QueueDepth,
		SLO:               s.SLO,
	}
	if s.DiffWall > prev.DiffWall {
		d.DiffWall = s.DiffWall - prev.DiffWall
	}
	if s.WorkerCapacity > prev.WorkerCapacity {
		d.WorkerCapacity = s.WorkerCapacity - prev.WorkerCapacity
	}
	if d.WorkerCapacity > 0 {
		d.Utilization = float64(d.DiffWall) / float64(d.WorkerCapacity)
	}
	if total := d.StoreHits + d.StoreMisses; total > 0 {
		d.StoreHitRate = float64(d.StoreHits) / float64(total)
	}
	if d.PoolGets > 0 {
		d.PoolHitRate = float64(d.PoolGets-d.PoolMisses) / float64(d.PoolGets)
	}
	if total := d.MemoHits + d.MemoMisses; total > 0 {
		d.MemoHitRate = float64(d.MemoHits) / float64(total)
	}
	d.OptimalityGap = aggregateGap(d.BaselineEdits, d.BaselineMinimal)
	return d
}

func sub64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// NodesPerSecond is the engine's processing rate: input nodes handled per
// second of per-diff wall time (per-worker throughput). It returns 0 (never
// NaN or Inf) for snapshots with zero wall time, e.g. a fresh engine or an
// all-short-circuit batch delta.
func (s Snapshot) NodesPerSecond() float64 {
	if s.DiffWall <= 0 {
		return 0
	}
	return float64(s.SourceNodes+s.TargetNodes) / s.DiffWall.Seconds()
}

// String renders the snapshot on a few lines for CLI output. The format is
// a pure function of the snapshot's fields (fixed precision, millisecond-
// rounded wall time, no maps), so fixed-value snapshots render identically
// across runs and platforms and the output can be golden-tested.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"diffs %d (%d errors, %d batches), %d edits, %d+%d nodes in %v (%.0f nodes/s)\n"+
			"resilience: %d panics, %d timeouts, %d fallbacks, %d rollbacks\n"+
			"merge: %d merges, %d conflicts, %d auto-resolved\n"+
			"quality: %d changed nodes, %d baselined diffs (gap %+.1f%%)\n"+
			"workers: %.1f%% utilized over %v capacity, queue depth %d\n"+
			"scratch pool: %d gets, %d misses (%.1f%% hit)\n"+
			"digest memo: %d hits, %d misses (%.1f%% hit), %d entries; ingested %d trees / %d nodes\n"+
			"tree store: %d hits, %d misses (%.1f%% hit), %d trees interned\n"+
			"%s",
		s.Diffs, s.Errors, s.Batches, s.Edits, s.SourceNodes, s.TargetNodes,
		s.DiffWall.Round(time.Millisecond), s.NodesPerSecond(),
		s.Panics, s.Timeouts, s.Fallbacks, s.Rollbacks,
		s.Merges, s.MergeConflicts, s.MergeAutoResolved,
		s.ChangedNodes, s.BaselinedDiffs, 100*s.OptimalityGap,
		100*s.Utilization, s.WorkerCapacity.Round(time.Millisecond), s.QueueDepth,
		s.PoolGets, s.PoolMisses, 100*s.PoolHitRate,
		s.MemoHits, s.MemoMisses, 100*s.MemoHitRate, s.MemoEntries,
		s.IngestedTrees, s.IngestedNodes,
		s.StoreHits, s.StoreMisses, 100*s.StoreHitRate, s.StoreEntries,
		s.SLO,
	)
}
