package engine

import (
	"context"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"

	"repro/internal/exp"
	"repro/internal/telemetry"
	"repro/internal/truediff"
)

// TestBatchLabelsNestWorkerPairPhase runs a labeled batch and asserts,
// via the differ's phase hook, that every phase body executes under the
// full label stack: worker index, pair label, and phase name.
func TestBatchLabelsNestWorkerPairPhase(t *testing.T) {
	tps := makePairs(t, 8)
	pairs := enginePairs(tps)
	for i := range pairs {
		pairs[i].Label = "pair-" + string(rune('a'+i))
	}

	var mu sync.Mutex
	workers := map[string]bool{}
	pairSeen := map[string]int{}
	phases := map[string]int{}
	truediff.ProfilePhaseHook = func(ctx context.Context, p telemetry.Phase) {
		mu.Lock()
		defer mu.Unlock()
		if v, ok := pprof.Label(ctx, PprofWorkerLabel); ok {
			workers[v] = true
		} else {
			t.Errorf("phase %v: no %q label", p, PprofWorkerLabel)
		}
		if v, ok := pprof.Label(ctx, PprofPairLabel); ok {
			pairSeen[v]++
		} else {
			t.Errorf("phase %v: no %q label", p, PprofPairLabel)
		}
		if v, ok := pprof.Label(ctx, truediff.PprofPhaseLabel); ok {
			phases[v]++
		} else {
			t.Errorf("phase %v: no %q label", p, truediff.PprofPhaseLabel)
		}
	}
	defer func() { truediff.ProfilePhaseHook = nil }()

	e := New(exp.Schema(), Config{Workers: 2, Diff: truediff.Options{ProfileLabels: true}})
	results, err := e.DiffBatch(context.Background(), pairs)
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	for i := range results {
		if results[i].Err != nil {
			t.Fatalf("pair %d: %v", i, results[i].Err)
		}
	}

	if len(workers) == 0 {
		t.Fatal("no worker labels observed")
	}
	for w := range workers {
		if w != "0" && w != "1" {
			t.Errorf("unexpected worker label %q (want 0 or 1)", w)
		}
	}
	for i := range pairs {
		if got := pairSeen[pairs[i].Label]; got != telemetry.NumPhases {
			t.Errorf("pair %q labeled %d phase bodies, want %d", pairs[i].Label, got, telemetry.NumPhases)
		}
	}
	for p := 0; p < telemetry.NumPhases; p++ {
		name := telemetry.Phase(p).String()
		if phases[name] != len(pairs) {
			t.Errorf("phase %q labeled %d times, want %d", name, phases[name], len(pairs))
		}
	}
}

// TestBatchWithoutProfileLabelsStaysUnlabeled pins the default: no hook
// invocations, no label machinery.
func TestBatchWithoutProfileLabelsStaysUnlabeled(t *testing.T) {
	calls := 0
	truediff.ProfilePhaseHook = func(context.Context, telemetry.Phase) { calls++ }
	defer func() { truediff.ProfilePhaseHook = nil }()

	tps := makePairs(t, 4)
	e := New(exp.Schema(), Config{Workers: 2})
	if _, err := e.DiffBatch(context.Background(), enginePairs(tps)); err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	if calls != 0 {
		t.Fatalf("default batch entered labeled phases %d times, want 0", calls)
	}
}

// TestUtilizationView exercises the engine's worker-utilization counters:
// after a real batch, worker capacity covers at least the summed diff
// wall time divided by the worker count, utilization lands in (0, 1], and
// the queue-depth gauge returns to zero.
func TestUtilizationView(t *testing.T) {
	tps := makePairs(t, 12)
	e := New(exp.Schema(), Config{Workers: 3})
	before := e.Snapshot()
	if _, err := e.DiffBatch(context.Background(), enginePairs(tps)); err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	d := e.Snapshot().Sub(before)

	if d.WorkerCapacity <= 0 {
		t.Fatalf("WorkerCapacity = %v, want > 0", d.WorkerCapacity)
	}
	if d.WorkerCapacity < d.DiffWall/3 {
		t.Errorf("WorkerCapacity %v < DiffWall/3 %v: capacity must cover the batch", d.WorkerCapacity, d.DiffWall/3)
	}
	if d.Utilization <= 0 || d.Utilization > 1.000001 {
		t.Errorf("Utilization = %v, want in (0, 1]", d.Utilization)
	}
	if d.QueueDepth != 0 {
		t.Errorf("QueueDepth = %d after batch, want 0", d.QueueDepth)
	}
}

// TestGatherMetricsUtilizationAndBuildInfo asserts the new exposition
// families appear with the right types and sane values.
func TestGatherMetricsUtilizationAndBuildInfo(t *testing.T) {
	tps := makePairs(t, 6)
	e := New(exp.Schema(), Config{Workers: 2})
	if _, err := e.DiffBatch(context.Background(), enginePairs(tps)); err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}

	var sb strings.Builder
	if err := telemetry.WritePrometheus(&sb, e.GatherMetrics()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, needle := range []string{
		"# TYPE structdiff_build_info gauge",
		`structdiff_build_info{version=`,
		`go_version="`,
		`vcs_revision="`,
		"# TYPE structdiff_engine_queue_depth gauge",
		"structdiff_engine_queue_depth 0",
		"# TYPE structdiff_engine_worker_capacity_seconds_total counter",
		"# TYPE structdiff_engine_utilization_ratio gauge",
		"# TYPE structdiff_pool_hit_ratio gauge",
		"# TYPE structdiff_memo_hit_ratio gauge",
		"# TYPE structdiff_store_hit_ratio gauge",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("exposition missing %q", needle)
		}
	}

	// The build-info gauge must be a single constant-1 sample.
	bi := telemetry.BuildInfoMetric()
	if bi.Value != 1 || bi.Kind != telemetry.KindGauge {
		t.Errorf("BuildInfoMetric = kind %v value %v, want gauge 1", bi.Kind, bi.Value)
	}
	keys := map[string]bool{}
	for _, l := range bi.Labels {
		keys[l.Key] = true
		if l.Value == "" {
			t.Errorf("build info label %q is empty", l.Key)
		}
	}
	for _, k := range []string{"version", "go_version", "vcs_revision"} {
		if !keys[k] {
			t.Errorf("build info missing label %q", k)
		}
	}
}
