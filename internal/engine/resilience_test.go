package engine

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/derrors"
	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/mtree"
	"repro/internal/truechange"
	"repro/internal/truediff"
)

// TestPanicIsolation injects a panic into one pair of a batch and checks
// that (a) only that pair fails, with a *PanicError matching
// derrors.ErrDiffPanic and carrying the stack, (b) every other pair
// succeeds, and (c) the panic counter moves.
func TestPanicIsolation(t *testing.T) {
	tps := makePairs(t, 8)
	inj := faultinject.New(1, faultinject.Fault{
		Site: FaultSiteDiff, Kind: faultinject.Panic, After: 3, Times: 1,
	})
	e := New(exp.Schema(), Config{Workers: 1, Faults: inj})

	results, err := e.DiffBatch(context.Background(), enginePairs(tps))
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	failed := 0
	for i, pr := range results {
		if pr.Err == nil {
			if pr.Result == nil {
				t.Fatalf("pair %d has neither Result nor Err", i)
			}
			continue
		}
		failed++
		if !errors.Is(pr.Err, derrors.ErrDiffPanic) {
			t.Errorf("pair %d error %v does not match ErrDiffPanic", i, pr.Err)
		}
		var pe *PanicError
		if !errors.As(pr.Err, &pe) {
			t.Errorf("pair %d error %T is not a *PanicError", i, pr.Err)
		} else {
			if len(pe.Stack) == 0 {
				t.Error("PanicError carries no stack")
			}
			if !bytes.Contains(pe.Stack, []byte("goroutine")) {
				t.Error("PanicError stack does not look like a goroutine dump")
			}
		}
	}
	if failed != 1 {
		t.Fatalf("%d pairs failed, want exactly 1", failed)
	}
	s := e.Snapshot()
	if s.Panics != 1 {
		t.Errorf("Snapshot.Panics = %d, want 1", s.Panics)
	}
	if s.Errors != 1 {
		t.Errorf("Snapshot.Errors = %d, want 1", s.Errors)
	}
}

// TestDiffTimeout aborts a diff via an injected checkpoint delay that
// overruns the per-diff deadline, and checks the error and counter.
func TestDiffTimeout(t *testing.T) {
	tps := makePairs(t, 1)
	inj := faultinject.New(1, faultinject.Fault{
		Site: FaultSiteCheckpoint, Kind: faultinject.Delay, Delay: 20 * time.Millisecond, Times: 1,
	})
	e := New(exp.Schema(), Config{
		Workers:         1,
		DiffTimeout:     time.Millisecond,
		CheckpointEvery: 1,
		Faults:          inj,
	})
	_, err := e.Diff(context.Background(), tps[0].pair.Source, tps[0].pair.Target, tps[0].pair.Alloc)
	if !errors.Is(err, derrors.ErrDiffTimeout) {
		t.Fatalf("Diff under deadline overrun = %v, want ErrDiffTimeout", err)
	}
	if s := e.Snapshot(); s.Timeouts != 1 {
		t.Errorf("Snapshot.Timeouts = %d, want 1", s.Timeouts)
	}
}

// TestFallbackRootReplace exercises graceful degradation on both rescue
// paths — a panic and a timeout — and checks the synthesized script
// patches source into target, the pair reports Fallback, and the failure
// counters still record the underlying failure.
func TestFallbackRootReplace(t *testing.T) {
	tps := makePairs(t, 4)
	inj := faultinject.New(1,
		faultinject.Fault{Site: FaultSiteDiff, Kind: faultinject.Panic, After: 1, Times: 1},
		faultinject.Fault{Site: FaultSiteCheckpoint, Kind: faultinject.Delay, Delay: 20 * time.Millisecond, After: 2, Times: 1},
	)
	e := New(exp.Schema(), Config{
		Workers:         1,
		Fallback:        FallbackRootReplace,
		DiffTimeout:     5 * time.Millisecond,
		CheckpointEvery: 1,
		Faults:          inj,
	})
	results, err := e.DiffBatch(context.Background(), enginePairs(tps))
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	fallbacks := 0
	for i, pr := range results {
		if pr.Err != nil {
			t.Fatalf("pair %d failed despite fallback: %v", i, pr.Err)
		}
		if !pr.Stats.Fallback {
			continue
		}
		fallbacks++
		if err := truechange.WellTyped(e.Schema(), pr.Result.Script); err != nil {
			t.Errorf("pair %d fallback script ill-typed: %v", i, err)
		}
		mt, err := mtree.FromTree(e.Schema(), tps[i].pair.Source)
		if err != nil {
			t.Fatal(err)
		}
		if err := mt.Patch(pr.Result.Script); err != nil {
			t.Errorf("pair %d fallback script does not patch: %v", i, err)
		} else if !mt.EqualTree(tps[i].pair.Target) {
			t.Errorf("pair %d fallback patch differs from target", i)
		}
		if pr.Stats.ReuseRatio != 0 {
			t.Errorf("pair %d fallback ReuseRatio = %v, want 0 (nothing reused)", i, pr.Stats.ReuseRatio)
		}
	}
	if fallbacks != 2 {
		t.Fatalf("%d pairs fell back, want 2 (one panic, one timeout)", fallbacks)
	}
	s := e.Snapshot()
	if s.Panics != 1 || s.Timeouts != 1 || s.Fallbacks != 2 {
		t.Errorf("Snapshot panics/timeouts/fallbacks = %d/%d/%d, want 1/1/2", s.Panics, s.Timeouts, s.Fallbacks)
	}
	if s.Errors != 0 {
		t.Errorf("Snapshot.Errors = %d, want 0 (all pairs rescued)", s.Errors)
	}
}

// TestFallbackDoesNotRescueCancellation: cancelling the batch context must
// abort pairs even under FallbackRootReplace — the caller asked the work
// to stop.
func TestFallbackDoesNotRescueCancellation(t *testing.T) {
	tps := makePairs(t, 1)
	e := New(exp.Schema(), Config{
		Workers: 1, Fallback: FallbackRootReplace, CheckpointEvery: 1,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Diff(ctx, tps[0].pair.Source, tps[0].pair.Target, tps[0].pair.Alloc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Diff on cancelled ctx = %v, want context.Canceled", err)
	}
	if s := e.Snapshot(); s.Fallbacks != 0 {
		t.Errorf("cancellation was rescued: Fallbacks = %d", s.Fallbacks)
	}
}

// TestInjectedErrorFailsPairWithoutFallback: a plain injected error is an
// ordinary failure — not eligible for degradation even in fallback mode.
func TestInjectedErrorFailsPairWithoutFallback(t *testing.T) {
	tps := makePairs(t, 1)
	inj := faultinject.New(1, faultinject.Fault{Site: FaultSiteDiff, Kind: faultinject.Error, Times: 1})
	e := New(exp.Schema(), Config{Workers: 1, Fallback: FallbackRootReplace, Faults: inj})
	_, err := e.Diff(nil, tps[0].pair.Source, tps[0].pair.Target, tps[0].pair.Alloc)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Diff = %v, want ErrInjected", err)
	}
	if s := e.Snapshot(); s.Fallbacks != 0 || s.Errors != 1 {
		t.Errorf("Fallbacks/Errors = %d/%d, want 0/1", s.Fallbacks, s.Errors)
	}
}

// TestMidBatchCancellationAccounting cancels a batch mid-flight and checks
// the accounting invariant: every pair ends with exactly one of Result or
// Err, never both, never neither (no zero-value PairResult slips through).
func TestMidBatchCancellationAccounting(t *testing.T) {
	tps := makePairs(t, 64)
	e := New(exp.Schema(), Config{Workers: 2, CheckpointEvery: 16})
	ctx, cancel := context.WithCancel(context.Background())

	var once sync.Once
	e.cfg.Observer = func(DiffEvent) {
		once.Do(cancel) // cancel as soon as the first diff completes
	}
	results, err := e.DiffBatch(ctx, enginePairs(tps))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DiffBatch = %v, want context.Canceled", err)
	}
	if len(results) != len(tps) {
		t.Fatalf("got %d results for %d pairs", len(results), len(tps))
	}
	completed, failed := 0, 0
	for i, pr := range results {
		switch {
		case pr.Result != nil && pr.Err != nil:
			t.Errorf("pair %d has both Result and Err", i)
		case pr.Result == nil && pr.Err == nil:
			t.Errorf("pair %d has neither Result nor Err (zero-value PairResult)", i)
		case pr.Err != nil:
			failed++
			if !errors.Is(pr.Err, context.Canceled) {
				t.Errorf("pair %d error %v does not match context.Canceled", i, pr.Err)
			}
		default:
			completed++
		}
	}
	if completed == 0 {
		t.Error("no pair completed before cancellation")
	}
	if failed == 0 {
		t.Error("no pair was cancelled")
	}
}

// TestNilContextNormalized: both entry points accept a nil ctx (treated as
// context.Background()).
func TestNilContextNormalized(t *testing.T) {
	tps := makePairs(t, 2)
	e := New(exp.Schema(), Config{Workers: 2})
	if _, err := e.Diff(nil, tps[0].pair.Source, tps[0].pair.Target, tps[0].pair.Alloc); err != nil {
		t.Fatalf("Diff(nil ctx): %v", err)
	}
	results, err := e.DiffBatch(nil, enginePairs(tps[1:]))
	if err != nil {
		t.Fatalf("DiffBatch(nil ctx): %v", err)
	}
	if results[0].Err != nil {
		t.Fatalf("pair failed under nil ctx: %v", results[0].Err)
	}
}

// TestResilientBatchMatchesSequential: with checkpoints armed but nothing
// firing, a batch still produces exactly the scripts a plain differ does —
// the resilience layer is observationally transparent on the happy path.
func TestResilientBatchMatchesSequential(t *testing.T) {
	tps := makePairs(t, 12)
	e := New(exp.Schema(), Config{
		Workers:         4,
		DiffTimeout:     time.Minute,
		CheckpointEvery: 8,
		Fallback:        FallbackRootReplace,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results, err := e.DiffBatch(ctx, enginePairs(tps))
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	d := truediff.New(exp.Schema())
	for i, pr := range results {
		if pr.Err != nil {
			t.Fatalf("pair %d: %v", i, pr.Err)
		}
		if pr.Stats.Fallback {
			t.Errorf("pair %d fell back on the happy path", i)
		}
		want, err := d.Diff(tps[i].refSrc, tps[i].refDst, tps[i].refAlloc)
		if err != nil {
			t.Fatalf("pair %d sequential: %v", i, err)
		}
		if pr.Result.Script.String() != want.Script.String() {
			t.Errorf("pair %d script differs from sequential reference", i)
		}
	}
}
