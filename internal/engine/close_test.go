package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/derrors"
	"repro/internal/exp"
	"repro/internal/faultinject"
)

func TestCloseRejectsNewWork(t *testing.T) {
	e := New(exp.Schema(), Config{Workers: 2})
	tps := makePairs(t, 2)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := e.DiffBatch(context.Background(), enginePairs(tps)); !errors.Is(err, derrors.ErrEngineClosed) {
		t.Fatalf("DiffBatch after Close: got %v, want ErrEngineClosed", err)
	}
	p := tps[0].pair
	if _, err := e.Diff(context.Background(), p.Source, p.Target, p.Alloc); !errors.Is(err, derrors.ErrEngineClosed) {
		t.Fatalf("Diff after Close: got %v, want ErrEngineClosed", err)
	}
}

func TestCloseReleasesInternStore(t *testing.T) {
	e := New(exp.Schema(), Config{Workers: 1})
	g := exp.NewGen(7)
	for i := 0; i < 3; i++ {
		e.Ingest(g.Tree(60), nil)
	}
	if got := e.Snapshot().StoreEntries; got == 0 {
		t.Fatal("expected interned trees before Close")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := e.Snapshot().StoreEntries; got != 0 {
		t.Fatalf("StoreEntries after Close = %d, want 0", got)
	}
}

// TestCloseDrainsInFlightBatch is the worker-leak detector: Close must not
// return while a batch still has workers running. The batch is slowed down
// with per-diff delay faults, Close races it, and after Close returns the
// engine's gauges must have settled — QueueDepth back to zero and
// WorkerCapacity stable across successive snapshots, which can only hold
// once every worker goroutine has exited its batch.
func TestCloseDrainsInFlightBatch(t *testing.T) {
	e := New(exp.Schema(), Config{
		Workers: 2,
		Faults:  faultinject.New(1, faultinject.Fault{Site: FaultSiteDiff, Kind: faultinject.Delay, Delay: 5 * time.Millisecond}),
	})
	tps := makePairs(t, 8)

	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		if _, err := e.DiffBatch(context.Background(), enginePairs(tps)); err != nil {
			t.Errorf("DiffBatch: %v", err)
		}
	}()
	<-started
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s1 := e.Snapshot()
	if s1.QueueDepth != 0 {
		t.Fatalf("QueueDepth after Close = %d, want 0 (workers leaked past Close)", s1.QueueDepth)
	}
	s2 := e.Snapshot()
	if s2.WorkerCapacity != s1.WorkerCapacity {
		t.Fatalf("WorkerCapacity still growing after Close (%v -> %v): batch not drained", s1.WorkerCapacity, s2.WorkerCapacity)
	}
	if s1.Diffs != uint64(len(tps)) {
		t.Fatalf("Diffs after Close = %d, want %d (Close returned before the batch finished)", s1.Diffs, len(tps))
	}
	wg.Wait()
}
