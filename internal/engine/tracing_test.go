package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/telemetry"
)

// TestEngineSpans: with Config.Spans set, every pair yields one
// "engine.diff" span parented on the pair's trace context plus the four
// phase spans parented on the engine span, all sharing the pair's trace ID.
func TestEngineSpans(t *testing.T) {
	tps := makePairs(t, 3)
	pairs := enginePairs(tps)
	traces := make([]telemetry.SpanContext, len(pairs))
	for i := range pairs {
		traces[i] = telemetry.NewSpanContext()
		pairs[i].Trace = traces[i]
		pairs[i].Label = "pair-" + string(rune('a'+i))
	}
	rec := telemetry.NewSpanRecorder()
	var events eventLog
	e := New(exp.Schema(), Config{Workers: 2, Spans: rec, Observer: events.add})
	if _, err := e.DiffBatch(context.Background(), pairs); err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}

	spans := rec.Spans()
	byTrace := make(map[telemetry.TraceID][]telemetry.Span)
	for _, s := range spans {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	for i, tc := range traces {
		got := byTrace[tc.Trace]
		if len(got) != 5 {
			t.Fatalf("pair %d: %d spans in its trace, want 5 (engine.diff + 4 phases)", i, len(got))
		}
		var eng *telemetry.Span
		phases := map[string]telemetry.Span{}
		for j := range got {
			if got[j].Name == "engine.diff" {
				eng = &got[j]
			} else {
				phases[got[j].Name] = got[j]
			}
		}
		if eng == nil {
			t.Fatalf("pair %d: no engine.diff span", i)
		}
		if eng.Parent != tc.Span {
			t.Errorf("pair %d: engine.diff parent %s, want request span %s", i, eng.Parent, tc.Span)
		}
		for _, name := range []string{"truediff.prepare", "truediff.shares", "truediff.select", "truediff.emit"} {
			ph, ok := phases[name]
			if !ok {
				t.Errorf("pair %d: missing phase span %s", i, name)
				continue
			}
			if ph.Parent != eng.ID {
				t.Errorf("pair %d: %s parented on %s, want engine span %s", i, name, ph.Parent, eng.ID)
			}
		}
	}

	// Observer events carry the engine span's context, so trace records
	// correlate with the spans.
	for _, ev := range events.all() {
		if !ev.Trace.Valid() {
			t.Fatalf("event %q has no trace context", ev.Label)
		}
		rec := ev.TraceRecord()
		if rec.TraceID == "" || rec.SpanID == "" {
			t.Fatalf("trace record for %q missing correlation IDs: %+v", ev.Label, rec)
		}
	}
}

// TestEngineSpansOffNoTrace: without a sink no spans appear and events
// still carry the pair's (possibly invalid) context unchanged.
func TestEngineSpansOffNoTrace(t *testing.T) {
	tps := makePairs(t, 1)
	pairs := enginePairs(tps)
	var events eventLog
	e := New(exp.Schema(), Config{Observer: events.add})
	if _, err := e.DiffBatch(context.Background(), pairs); err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	evs := events.all()
	if len(evs) != 1 || evs[0].Trace.Valid() {
		t.Fatalf("events = %+v, want one with zero trace", evs)
	}
	if rec := evs[0].TraceRecord(); rec.TraceID != "" || rec.SpanID != "" {
		t.Fatalf("trace record carries IDs without tracing: %+v", rec)
	}
}

// TestEngineSLOAccounting: the engine's SLO window counts every diff,
// errors included, and surfaces through Snapshot and GatherMetrics.
func TestEngineSLOAccounting(t *testing.T) {
	tps := makePairs(t, 4)
	pairs := enginePairs(tps)
	pairs = append(pairs, Pair{Source: nil, Target: nil}) // fails: nil trees
	e := New(exp.Schema(), Config{Workers: 2})
	if _, err := e.DiffBatch(context.Background(), pairs); err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	slo := e.SLOSnapshot()
	if slo.Requests != 5 || slo.Errors != 1 {
		t.Fatalf("SLO req/err = %d/%d, want 5/1", slo.Requests, slo.Errors)
	}
	snap := e.Snapshot()
	if snap.SLO.Requests != slo.Requests {
		t.Errorf("Snapshot.SLO.Requests = %d, want %d", snap.SLO.Requests, slo.Requests)
	}
	if !strings.Contains(snap.String(), "slo[") {
		t.Errorf("Snapshot.String() misses the SLO line:\n%s", snap.String())
	}
	found := false
	for _, m := range e.GatherMetrics() {
		if m.Name == "structdiff_slo_window_requests" {
			found = true
			if m.Value != 5 {
				t.Errorf("structdiff_slo_window_requests = %v, want 5", m.Value)
			}
		}
	}
	if !found {
		t.Error("structdiff_slo_window_requests not gathered")
	}
}

// TestEngineStructuredLogging: failures and slow diffs emit slog records
// carrying pair and trace correlation.
func TestEngineStructuredLogging(t *testing.T) {
	tps := makePairs(t, 1)
	pairs := enginePairs(tps)
	tc := telemetry.NewSpanContext()
	pairs[0].Trace = tc
	pairs[0].Label = "slow-one"
	pairs = append(pairs, Pair{Source: nil, Target: nil, Label: "broken", Trace: tc})

	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	e := New(exp.Schema(), Config{
		Workers:           1,
		Logger:            logger,
		SlowDiffThreshold: time.Nanosecond, // every real diff is slow
	})
	if _, err := e.DiffBatch(context.Background(), pairs); err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}

	var sawSlow, sawFailed bool
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("log output is not JSON lines: %v", err)
		}
		switch rec["msg"] {
		case "slow diff":
			sawSlow = true
			if rec["pair"] != "slow-one" {
				t.Errorf("slow record pair = %v", rec["pair"])
			}
			if rec["trace_id"] != tc.Trace.String() {
				t.Errorf("slow record trace_id = %v, want %v", rec["trace_id"], tc.Trace)
			}
			if rec["level"] != "WARN" {
				t.Errorf("slow record level = %v", rec["level"])
			}
		case "diff failed":
			sawFailed = true
			if rec["level"] != "ERROR" || rec["err"] == "" {
				t.Errorf("failure record = %v", rec)
			}
		}
	}
	if !sawSlow || !sawFailed {
		t.Fatalf("sawSlow=%v sawFailed=%v, want both", sawSlow, sawFailed)
	}
}
