package engine

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/uri"
)

// TestEngineExplainAndQuality: with Config.Explain and a quality baseline
// on, every successful PairResult carries provenance aligned with its
// script, DiffStats report the conciseness metrics, and the snapshot and
// exposition surface the aggregates.
func TestEngineExplainAndQuality(t *testing.T) {
	tps := makePairs(t, 8)
	var log eventLog
	e := New(exp.Schema(), Config{
		Workers: 4, Explain: true, QualityBaseline: 400, Observer: log.add,
	})
	results, err := e.DiffBatch(context.Background(), enginePairs(tps))
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	for i, pr := range results {
		if pr.Err != nil {
			t.Fatalf("pair %d: %v", i, pr.Err)
		}
		if pr.Explain == nil {
			t.Fatalf("pair %d: no explanation attached", i)
		}
		if got, want := len(pr.Explain.Edits), pr.Result.Script.Len(); got != want {
			t.Fatalf("pair %d: %d provenance records for %d edits", i, got, want)
		}
		for _, p := range pr.Explain.Edits {
			if p.Op == "" || p.Reason == "" {
				t.Fatalf("pair %d: unpopulated provenance: %+v", i, p)
			}
		}
		st := pr.Stats
		if st.ReuseRatio < 0 || st.ReuseRatio > 1 {
			t.Fatalf("pair %d: reuse ratio %v out of range", i, st.ReuseRatio)
		}
		if st.Edits > 0 && (st.ChangedNodes <= 0 || st.EditsPerChangedNode <= 0) {
			t.Fatalf("pair %d: quality stats unpopulated: %+v", i, st)
		}
		if !st.Baselined || st.MinimalEdits <= 0 {
			t.Fatalf("pair %d: baseline did not run under the cap: %+v", i, st)
		}
	}

	s := e.Snapshot()
	if s.ChangedNodes == 0 || s.BaselinedDiffs != uint64(len(tps)) {
		t.Fatalf("snapshot quality counters: %+v", s)
	}
	if !strings.Contains(s.String(), "quality:") {
		t.Fatalf("Snapshot.String lacks quality line:\n%s", s)
	}

	names := map[string]bool{}
	for _, m := range e.GatherMetrics() {
		names[m.Name] = true
	}
	for _, want := range []string{
		"structdiff_quality_reuse_ratio",
		"structdiff_quality_edits_per_changed_node",
		"structdiff_quality_script_tree_ratio",
		"structdiff_quality_changed_nodes_total",
		"structdiff_quality_baselined_diffs_total",
		"structdiff_quality_optimality_gap",
	} {
		if !names[want] {
			t.Errorf("GatherMetrics lacks %s", want)
		}
	}

	// The observer's trace records carry the same quality fields.
	for _, ev := range log.all() {
		rec := ev.TraceRecord()
		if rec.ReuseRatio != ev.Stats.ReuseRatio || rec.ChangedNodes != ev.Stats.ChangedNodes ||
			!rec.Baselined || rec.MinimalEdits != ev.Stats.MinimalEdits {
			t.Fatalf("trace record drops quality fields: %+v vs %+v", rec, ev.Stats)
		}
	}
}

// TestEngineExplainIdenticalPair: the interned-identical short circuit
// still delivers a (trivially empty) explanation and trivially concise
// quality stats.
func TestEngineExplainIdenticalPair(t *testing.T) {
	e := New(exp.Schema(), Config{Workers: 1, Explain: true, QualityBaseline: 400})
	g := exp.NewGen(3)
	x := e.Ingest(tree.Clone(g.Tree(40), uri.NewAllocator(), tree.SHA256), nil)
	results, err := e.DiffBatch(context.Background(), []Pair{{Source: x, Target: x}})
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	pr := results[0]
	if pr.Explain == nil || len(pr.Explain.Edits) != 0 {
		t.Fatalf("identical pair explanation: %+v", pr.Explain)
	}
	if pr.Stats.ReuseRatio != 1 || !pr.Stats.Baselined || pr.Stats.MinimalEdits != 0 {
		t.Fatalf("identical pair quality stats: %+v", pr.Stats)
	}
}

// TestEngineExplainOffByDefault: without Config.Explain no explanation is
// allocated or attached.
func TestEngineExplainOffByDefault(t *testing.T) {
	tps := makePairs(t, 2)
	e := New(exp.Schema(), Config{Workers: 1})
	results, err := e.DiffBatch(context.Background(), enginePairs(tps))
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	for i, pr := range results {
		if pr.Explain != nil {
			t.Fatalf("pair %d: explanation attached with Explain off", i)
		}
	}
}

// TestEngineExplainDeterministicAcrossConfigs: the same pairs diffed by a
// single-worker and an eight-worker engine produce byte-identical
// provenance — worker scheduling must not leak into explanations.
func TestEngineExplainDeterministicAcrossConfigs(t *testing.T) {
	marshal := func(workers int) [][]byte {
		// makePairs is seed-deterministic: each call rebuilds identical
		// trees on fresh caller-owned allocators, so load URIs line up.
		pairs := enginePairs(makePairs(t, 10))
		e := New(exp.Schema(), Config{Workers: workers, Explain: true})
		results, err := e.DiffBatch(context.Background(), pairs)
		if err != nil {
			t.Fatalf("DiffBatch(workers=%d): %v", workers, err)
		}
		out := make([][]byte, len(results))
		for i, pr := range results {
			if pr.Err != nil {
				t.Fatalf("workers=%d pair %d: %v", workers, i, pr.Err)
			}
			buf, err := json.Marshal(pr.Explain)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = buf
		}
		return out
	}
	w1, w8 := marshal(1), marshal(8)
	for i := range w1 {
		if string(w1[i]) != string(w8[i]) {
			t.Fatalf("pair %d provenance differs across worker counts:\n%s\nvs\n%s", i, w1[i], w8[i])
		}
	}
}

// TestEngineHostileLabelSanitized: a caller-supplied label full of control
// characters and padding is bounded and neutralized before it reaches the
// observer, trace records, and every other observability surface.
func TestEngineHostileLabelSanitized(t *testing.T) {
	hostile := "evil\npair\x1b[2Jwith\r\nnewlines" + strings.Repeat("A", 4096)
	tps := makePairs(t, 1)
	pair := tps[0].pair
	pair.Label = hostile
	var log eventLog
	e := New(exp.Schema(), Config{Workers: 1, Observer: log.add})
	if _, err := e.DiffBatch(context.Background(), []Pair{pair}); err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	events := log.all()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	got := events[0].Label
	if got != telemetry.SanitizeLabel(hostile) {
		t.Fatalf("label not sanitized: %q", got)
	}
	if len(got) > telemetry.MaxLabelLen+len("…") {
		t.Fatalf("label is %d bytes, cap %d", len(got), telemetry.MaxLabelLen)
	}
	if strings.ContainsAny(got, "\n\r\x1b") {
		t.Fatalf("label retains control characters: %q", got)
	}
	if rec := events[0].TraceRecord(); strings.ContainsAny(rec.Pair, "\n\r\x1b") {
		t.Fatalf("trace record retains control characters: %q", rec.Pair)
	}
}
