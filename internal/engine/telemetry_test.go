package engine

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/uri"
)

func TestSnapshotSub(t *testing.T) {
	cur := Snapshot{
		Diffs: 10, Errors: 2, SlowDiffs: 3, Batches: 4, Edits: 100,
		SourceNodes: 1000, TargetNodes: 1200, DiffWall: 100 * time.Millisecond,
		PoolGets: 8, PoolMisses: 2,
		MemoHits: 6, MemoMisses: 2, MemoEntries: 50,
		IngestedTrees: 12, IngestedNodes: 900,
		StoreHits: 4, StoreMisses: 4, StoreEntries: 7,
		SLO: telemetry.SLOSnapshot{Requests: 9, Errors: 1},
	}
	prev := Snapshot{
		Diffs: 4, Errors: 2, SlowDiffs: 1, Batches: 1, Edits: 40,
		SourceNodes: 400, TargetNodes: 500, DiffWall: 60 * time.Millisecond,
		PoolGets: 4, PoolMisses: 2,
		MemoHits: 2, MemoMisses: 2, MemoEntries: 30,
		IngestedTrees: 5, IngestedNodes: 300,
		StoreHits: 1, StoreMisses: 3, StoreEntries: 3,
	}
	d := cur.Sub(prev)

	if d.Diffs != 6 || d.Errors != 0 || d.SlowDiffs != 2 || d.Batches != 3 || d.Edits != 60 {
		t.Errorf("counter deltas wrong: %+v", d)
	}
	if d.SourceNodes != 600 || d.TargetNodes != 700 {
		t.Errorf("node deltas wrong: %+v", d)
	}
	if d.DiffWall != 40*time.Millisecond {
		t.Errorf("DiffWall = %v, want 40ms", d.DiffWall)
	}
	// Interval hit rates are recomputed from the deltas, not copied.
	if d.PoolGets != 4 || d.PoolMisses != 0 || d.PoolHitRate != 1 {
		t.Errorf("pool delta wrong: gets %d misses %d rate %v", d.PoolGets, d.PoolMisses, d.PoolHitRate)
	}
	if d.MemoHits != 4 || d.MemoMisses != 0 || d.MemoHitRate != 1 {
		t.Errorf("memo delta wrong: hits %d misses %d rate %v", d.MemoHits, d.MemoMisses, d.MemoHitRate)
	}
	if d.StoreHits != 3 || d.StoreMisses != 1 || d.StoreHitRate != 0.75 {
		t.Errorf("store delta wrong: hits %d misses %d rate %v", d.StoreHits, d.StoreMisses, d.StoreHitRate)
	}
	// Gauges keep the current values; the SLO is a windowed gauge too.
	if d.MemoEntries != 50 || d.StoreEntries != 7 {
		t.Errorf("gauges not kept: memo %d store %d", d.MemoEntries, d.StoreEntries)
	}
	if d.SLO.Requests != 9 || d.SLO.Errors != 1 {
		t.Errorf("SLO not kept as a gauge: %+v", d.SLO)
	}

	// Subtracting a larger (stale or foreign) snapshot saturates at zero
	// instead of wrapping around.
	z := prev.Sub(cur)
	if z.Diffs != 0 || z.Edits != 0 || z.DiffWall != 0 || z.PoolGets != 0 {
		t.Errorf("saturating subtraction failed: %+v", z)
	}
}

func TestNodesPerSecondZeroDuration(t *testing.T) {
	var s Snapshot
	if got := s.NodesPerSecond(); got != 0 {
		t.Errorf("empty snapshot NodesPerSecond = %v, want 0", got)
	}
	s.SourceNodes, s.TargetNodes = 5000, 5000
	if got := s.NodesPerSecond(); got != 0 {
		t.Errorf("zero-wall NodesPerSecond = %v, want 0 (never NaN/Inf)", got)
	}
	s.DiffWall = -time.Second
	if got := s.NodesPerSecond(); got != 0 {
		t.Errorf("negative-wall NodesPerSecond = %v, want 0", got)
	}
	s.DiffWall = 2 * time.Second
	if got := s.NodesPerSecond(); got != 5000 {
		t.Errorf("NodesPerSecond = %v, want 5000", got)
	}
}

// TestSnapshotStringGolden pins the String format: it is a pure function
// of the snapshot's fields, so reports over fixed-value snapshots can be
// golden-tested by downstream tooling.
func TestSnapshotStringGolden(t *testing.T) {
	s := Snapshot{
		Diffs: 10, Errors: 1, SlowDiffs: 3, Batches: 2, Edits: 40,
		Panics: 1, Timeouts: 2, Fallbacks: 3, Rollbacks: 4,
		Merges: 6, MergeConflicts: 2, MergeAutoResolved: 1,
		ChangedNodes: 120, BaselinedDiffs: 4, OptimalityGap: 0.05,
		SourceNodes: 1000, TargetNodes: 1100, DiffWall: 2100 * time.Millisecond,
		PoolGets: 10, PoolMisses: 2, PoolHitRate: 0.8,
		MemoHits: 300, MemoMisses: 100, MemoHitRate: 0.75, MemoEntries: 400,
		IngestedTrees: 20, IngestedNodes: 2100,
		StoreHits: 5, StoreMisses: 15, StoreHitRate: 0.25, StoreEntries: 15,
		QueueDepth: 2, WorkerCapacity: 4200 * time.Millisecond, Utilization: 0.5,
		SLO: telemetry.SLOSnapshot{
			Window:             time.Hour,
			LatencyObjective:   250 * time.Millisecond,
			AvailabilityTarget: 0.999,
			LatencyTarget:      0.95,
			Requests:           10,
			Errors:             1,
			Availability:       0.9,
			LatencyAttainment:  1,
			BurnShort:          100,
			BurnLong:           100,
			P95:                33 * time.Millisecond,
		},
	}
	want := "diffs 10 (1 errors, 2 batches), 40 edits, 1000+1100 nodes in 2.1s (1000 nodes/s)\n" +
		"resilience: 1 panics, 2 timeouts, 3 fallbacks, 4 rollbacks\n" +
		"merge: 6 merges, 2 conflicts, 1 auto-resolved\n" +
		"quality: 120 changed nodes, 4 baselined diffs (gap +5.0%)\n" +
		"workers: 50.0% utilized over 4.2s capacity, queue depth 2\n" +
		"scratch pool: 10 gets, 2 misses (80.0% hit)\n" +
		"digest memo: 300 hits, 100 misses (75.0% hit), 400 entries; ingested 20 trees / 2100 nodes\n" +
		"tree store: 5 hits, 15 misses (25.0% hit), 15 trees interned\n" +
		"slo[1h0m0s]: 10 req, avail 90.00% (target 99.90%, burn 100.0x/100.0x), 100.00% <= 250ms (target 95.00%), p95 33ms"
	if got := s.String(); got != want {
		t.Errorf("String mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// eventLog collects DiffEvents from concurrent workers.
type eventLog struct {
	mu     sync.Mutex
	events []DiffEvent
}

func (l *eventLog) add(ev DiffEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

func (l *eventLog) all() []DiffEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]DiffEvent(nil), l.events...)
}

// TestObserverSeesEveryDiff: the observer fires once per pair — with the
// pair's label, full phase breakdown, and edit count — across concurrent
// workers.
func TestObserverSeesEveryDiff(t *testing.T) {
	tps := makePairs(t, 12)
	pairs := enginePairs(tps)
	for i := range pairs {
		pairs[i].Label = "pair-" + string(rune('a'+i))
	}
	var log eventLog
	e := New(exp.Schema(), Config{Workers: 4, Observer: log.add})
	results, err := e.DiffBatch(context.Background(), pairs)
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}

	events := log.all()
	if len(events) != len(pairs) {
		t.Fatalf("observer saw %d events, want %d", len(events), len(pairs))
	}
	byLabel := make(map[string]DiffEvent, len(events))
	for _, ev := range events {
		byLabel[ev.Label] = ev
	}
	for i, p := range pairs {
		ev, ok := byLabel[p.Label]
		if !ok {
			t.Fatalf("no event for %s", p.Label)
		}
		if ev.Err != nil {
			t.Errorf("%s: unexpected error %v", p.Label, ev.Err)
		}
		if ev.Stats.SourceSize != p.Source.Size() || ev.Stats.TargetSize != p.Target.Size() {
			t.Errorf("%s: sizes %d/%d, want %d/%d", p.Label,
				ev.Stats.SourceSize, ev.Stats.TargetSize, p.Source.Size(), p.Target.Size())
		}
		if ev.Stats.Edits != results[i].Result.Script.EditCount() {
			t.Errorf("%s: edits %d, want %d", p.Label, ev.Stats.Edits, results[i].Result.Script.EditCount())
		}
		if ev.Stats.Phases.Total() == 0 || ev.Stats.Phases.Total() > ev.Stats.Wall {
			t.Errorf("%s: phase total %v out of (0, wall %v]", p.Label, ev.Stats.Phases.Total(), ev.Stats.Wall)
		}
	}

	// The events convert losslessly into trace records.
	rec := events[0].TraceRecord()
	if rec.Pair != events[0].Label || rec.WallNS != events[0].Stats.Wall.Nanoseconds() ||
		rec.SharesNS != events[0].Stats.Phases[telemetry.PhaseShares].Nanoseconds() {
		t.Errorf("TraceRecord mismatch: %+v vs %+v", rec, events[0])
	}
}

// TestSlowDiffLogging: with a 1ns threshold every real diff is slow — the
// custom sink sees them all and SlowDiffs counts them — while an identical
// short-circuited pair (wall 0) is never slow.
func TestSlowDiffLogging(t *testing.T) {
	tps := makePairs(t, 6)
	var slow eventLog
	e := New(exp.Schema(), Config{
		Workers:           2,
		SlowDiffThreshold: time.Nanosecond,
		SlowDiffLog:       slow.add,
	})
	if _, err := e.DiffBatch(context.Background(), enginePairs(tps)); err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	if got := len(slow.all()); got != len(tps) {
		t.Fatalf("slow log saw %d events, want %d", got, len(tps))
	}
	if s := e.Snapshot(); s.SlowDiffs != uint64(len(tps)) {
		t.Fatalf("SlowDiffs = %d, want %d", s.SlowDiffs, len(tps))
	}

	// Identical pair: served in zero wall time, so not slow.
	g := exp.NewGen(99)
	x := e.Ingest(tree.Clone(g.Tree(50), uri.NewAllocator(), tree.SHA256), nil)
	before := e.Snapshot()
	if _, err := e.DiffBatch(context.Background(), []Pair{{Source: x, Target: x}}); err != nil {
		t.Fatalf("identical batch: %v", err)
	}
	if d := e.Snapshot().Sub(before); d.SlowDiffs != 0 {
		t.Fatalf("identical pair counted as slow: %+v", d)
	}
}

// TestIdenticalPairTelemetry: a short-circuited pair lands in the latency
// and size histograms but not in the phase histograms, and its observer
// event is flagged Identical with both endpoints interned.
func TestIdenticalPairTelemetry(t *testing.T) {
	var log eventLog
	e := New(exp.Schema(), Config{Workers: 1, Observer: log.add})
	g := exp.NewGen(3)
	x := e.Ingest(tree.Clone(g.Tree(40), uri.NewAllocator(), tree.SHA256), nil)
	if _, err := e.DiffBatch(context.Background(), []Pair{{Source: x, Target: x, Label: "same"}}); err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	events := log.all()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	ev := events[0]
	if !ev.Stats.Identical || !ev.Stats.SourceInterned || !ev.Stats.TargetInterned {
		t.Errorf("flags wrong: %+v", ev.Stats)
	}
	if got := e.LatencyHistogram().Count; got != 1 {
		t.Errorf("latency count = %d, want 1", got)
	}
	for p := 0; p < telemetry.NumPhases; p++ {
		if got := e.PhaseHistogram(telemetry.Phase(p)).Count; got != 0 {
			t.Errorf("phase %v count = %d, want 0 (no algorithm ran)", telemetry.Phase(p), got)
		}
	}
}

// TestGatherMetrics: the exposition agrees with the snapshot and feeds
// phase-labelled histograms whose per-phase counts equal the diff count.
func TestGatherMetrics(t *testing.T) {
	tps := makePairs(t, 8)
	e := New(exp.Schema(), Config{Workers: 4})
	if _, err := e.DiffBatch(context.Background(), enginePairs(tps)); err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	s := e.Snapshot()

	var byName = map[string][]telemetry.Metric{}
	for _, m := range e.GatherMetrics() {
		byName[m.Name] = append(byName[m.Name], m)
	}
	if got := byName["structdiff_diffs_total"][0].Value; got != float64(s.Diffs) {
		t.Errorf("structdiff_diffs_total = %v, want %d", got, s.Diffs)
	}
	if got := byName["structdiff_edits_total"][0].Value; got != float64(s.Edits) {
		t.Errorf("structdiff_edits_total = %v, want %d", got, s.Edits)
	}
	phases := byName["structdiff_phase_duration_seconds"]
	if len(phases) != telemetry.NumPhases {
		t.Fatalf("phase family has %d members, want %d", len(phases), telemetry.NumPhases)
	}
	for i, m := range phases {
		if want := telemetry.Phase(i).String(); len(m.Labels) != 1 || m.Labels[0] != (telemetry.Label{Key: "phase", Value: want}) {
			t.Errorf("phase %d labels = %v, want phase=%s", i, m.Labels, want)
		}
		if m.Hist.Count != s.Diffs {
			t.Errorf("phase %d histogram count = %d, want %d", i, m.Hist.Count, s.Diffs)
		}
	}
	if got := byName["structdiff_diff_duration_seconds"][0].Hist.Count; got != s.Diffs {
		t.Errorf("latency histogram count = %d, want %d", got, s.Diffs)
	}
	if got := byName["structdiff_tree_nodes"][0].Hist.Count; got != 2*s.Diffs {
		t.Errorf("tree size histogram count = %d, want %d", got, 2*s.Diffs)
	}

	// The whole set renders as valid Prometheus text with the headline
	// series present.
	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, e.GatherMetrics()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, needle := range []string{
		"# TYPE structdiff_diffs_total counter",
		"# TYPE structdiff_diff_duration_seconds histogram",
		`structdiff_phase_duration_seconds_bucket{phase="shares",le="+Inf"} ` +
			"8",
		"structdiff_memo_entries",
		"structdiff_pool_gets_total",
		"structdiff_store_entries",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("exposition missing %q:\n%.2000s", needle, out)
		}
	}
}
