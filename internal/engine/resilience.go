package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/derrors"
	"repro/internal/truechange"
	"repro/internal/truediff"
	"repro/internal/uri"
)

// Fault-injection sites the engine exposes. Arm them on the injector passed
// through Config.Faults to rehearse the engine's failure paths
// deterministically (see internal/faultinject):
//
//   - FaultSiteDiff is hit once per diff, inside the panic-isolation
//     boundary, before the algorithm runs. A Panic fault here exercises
//     panic recovery; an Error fault a plain diff failure; a Delay fault
//     (combined with DiffTimeout) a per-diff deadline overrun.
//   - FaultSiteCheckpoint is hit on every cancellation checkpoint poll, so
//     a fault armed here aborts a diff mid-algorithm.
const (
	FaultSiteDiff       = "engine/diff"
	FaultSiteCheckpoint = "engine/checkpoint"
)

// FallbackMode selects what the engine does when a diff fails in a way the
// caller cannot anticipate: a panic inside the algorithm, a per-diff
// deadline overrun, or an ill-typed output script.
type FallbackMode int

const (
	// FallbackNone (the default) propagates the failure as the pair's Err.
	FallbackNone FallbackMode = iota
	// FallbackRootReplace degrades to a synthesized root-replacement
	// script (truediff.Differ.RootReplace): maximally verbose, but
	// well-typed by construction and guaranteed to patch source into
	// target. Pairs served this way have Stats.Fallback set and count into
	// Snapshot.Fallbacks. Cancellation (the batch context going away) is
	// never rescued: the caller asked the work to stop.
	FallbackRootReplace
)

// PanicError is the typed error a recovered per-diff panic surfaces as: the
// recovered value plus the goroutine stack at the point of the panic. It
// matches derrors.ErrDiffPanic via errors.Is.
type PanicError struct {
	Value any    // the value the diff panicked with
	Stack []byte // debug.Stack() captured in the recovering frame
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: %v: %v", derrors.ErrDiffPanic, e.Value)
}

func (e *PanicError) Unwrap() error { return derrors.ErrDiffPanic }

// checkpoint builds the cooperative-cancellation hook for one diff, or nil
// when nothing could interrupt it (no cancellable context, no per-diff
// timeout, no fault injector) so the differ keeps its unchecked fast path.
// The deadline is fixed when the diff starts: DiffTimeout bounds each diff
// individually, not the batch.
func (e *Engine) checkpoint(ctx context.Context) truediff.Checkpoint {
	done := ctx.Done()
	inj := e.cfg.Faults
	var deadline time.Time
	if e.cfg.DiffTimeout > 0 {
		deadline = time.Now().Add(e.cfg.DiffTimeout)
	}
	if done == nil && deadline.IsZero() && inj == nil {
		return nil
	}
	return func() error {
		if err := inj.Hit(FaultSiteCheckpoint); err != nil {
			return err
		}
		select {
		case <-done: // never ready when done is nil
			return context.Cause(ctx)
		default:
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fmt.Errorf("engine: %w (limit %v)", derrors.ErrDiffTimeout, e.cfg.DiffTimeout)
		}
		return nil
	}
}

// runDiff executes the diff algorithm for one pair inside the engine's
// panic-isolation boundary: a panic anywhere under it — the differ, a
// tracer callback, an injected fault — is recovered into a *PanicError
// instead of unwinding the worker goroutine, so one poisoned pair cannot
// take down a batch. The pooled scratch is safe to recycle afterwards
// because every diff begins by resetting it.
func (e *Engine) runDiff(ctx context.Context, p Pair, alloc *uri.Allocator, s *truediff.Scratch) (res *truediff.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if ferr := e.cfg.Faults.Hit(FaultSiteDiff); ferr != nil {
		return nil, fmt.Errorf("engine: %w", ferr)
	}
	return e.differ.DiffScratchProfiled(ctx, p.Source, p.Target, alloc, s, e.checkpoint(ctx))
}

// classify counts a failed diff into the failure-mode counters. It runs
// before any fallback decision, so rescued failures still show up in
// Snapshot.Panics / Snapshot.Timeouts.
func (e *Engine) classify(err error) {
	switch {
	case errors.Is(err, derrors.ErrDiffPanic):
		e.m.panics.Add(1)
	case errors.Is(err, derrors.ErrDiffTimeout):
		e.m.timeouts.Add(1)
	}
}

// shouldFallback reports whether a failure is eligible for graceful
// degradation: panics, per-diff timeouts, and ill-typed output scripts
// are; cancellation is not (the caller asked the work to stop,
// synthesizing a script would defeat that), and neither are ordinary
// input errors (nil trees, schema mismatches), which RootReplace would
// reject just the same.
func (e *Engine) shouldFallback(err error) bool {
	if e.cfg.Fallback != FallbackRootReplace {
		return false
	}
	return errors.Is(err, derrors.ErrDiffPanic) ||
		errors.Is(err, derrors.ErrDiffTimeout) ||
		errors.Is(err, derrors.ErrIllTyped)
}

// fallback synthesizes the degradation result for a pair whose diff failed
// (or produced an ill-typed script). The root-replacement script needs no
// search, so it is not subject to the per-diff deadline; it can still fail
// on invalid inputs, in which case the original error stands augmented
// with the fallback's.
func (e *Engine) fallback(p Pair, alloc *uri.Allocator, cause error) (*truediff.Result, error) {
	res, err := e.differ.RootReplace(p.Source, p.Target, alloc)
	if err != nil {
		return nil, fmt.Errorf("%w (fallback also failed: %v)", cause, err)
	}
	e.m.fallbacks.Add(1)
	return res, nil
}

// wellTypedOut verifies the script of a successful diff against the linear
// type system when graceful degradation is enabled: a fallback-mode caller
// has declared they want a usable script even when the algorithm
// misbehaves, so the engine spends the extra typecheck pass to catch
// ill-typed output and degrade instead of handing it over. (Without
// fallback the check is skipped: Theorem 3.6 makes ill-typed output a bug,
// and the caller will see the typecheck fail wherever they consume the
// script.)
func (e *Engine) wellTypedOut(res *truediff.Result) error {
	if e.cfg.Fallback != FallbackRootReplace {
		return nil
	}
	if err := truechange.WellTyped(e.sch, res.Script); err != nil {
		return fmt.Errorf("engine: diff emitted ill-typed script: %w", err)
	}
	return nil
}
