// Package engine runs truediff at corpus scale: batches of (source, target)
// tree pairs are fanned over a bounded worker pool, per-diff working state
// (subtree registries, assignment maps, edit buffers, selection heaps) is
// recycled through a sync.Pool instead of reallocated per diff, and the
// tree-preparation work that dominates truediff's cost (paper §6) is
// amortized across the batch at two levels:
//
//   - a whole-tree intern store keyed by content digest makes re-ingesting
//     a tree the engine has seen before a map lookup instead of a clone —
//     the common case in a version-history replay, where one commit's
//     "after" is the next commit's "before";
//   - a cross-diff digest memo shared by all workers avoids rehashing
//     subtrees that recur across caller-allocated ingests — unchanged files
//     recur commit after commit, and idiomatic code repeats whole
//     sub-expressions (ROADMAP: corpus-scale workloads).
//
// The engine is the concurrency boundary of the system: a Differ is
// immutable and an Engine adds only concurrency-safe state on top (the
// intern store, the striped memo, the scratch pool, atomic counters), so
// one Engine may be shared freely between goroutines. Trees enter the
// engine through Ingest; batches run through DiffBatch, which honours
// context cancellation; cumulative counters are read with Snapshot.
package engine

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/derrors"
	"repro/internal/faultinject"
	"repro/internal/quality"
	"repro/internal/sig"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/truediff"
	"repro/internal/uri"
)

// Config configures an Engine. The zero value is usable: paper-standard
// diff options, SHA-256 hashing, one worker per CPU, memo enabled.
type Config struct {
	// Workers bounds the goroutines a DiffBatch fans out over. Zero or
	// negative selects runtime.GOMAXPROCS(0).
	Workers int
	// Diff configures the underlying differ (equivalence mode, selection
	// order, literal-mismatch handling).
	Diff truediff.Options
	// Hash selects the subtree hash used by Ingest. The zero value is
	// tree.SHA256, the paper's choice.
	Hash tree.HashKind
	// DisableMemo turns off the cross-diff digest memo; Ingest then hashes
	// every subtree from scratch. Intended for ablation measurements.
	DisableMemo bool

	// Explain, when true, collects per-edit provenance for every diff: each
	// successful PairResult carries a truediff.Explanation whose records are
	// index-aligned with the script's edits (see truediff.Options.Explain).
	// Fallback (root-replacement) results carry no explanation — the real
	// diff never finished. Off (the default), the diff path pays nothing.
	Explain bool
	// QualityBaseline, when positive, additionally computes the exact
	// minimal-script baseline (quality.MinimalEdits, the Zhang–Shasha tree
	// edit distance) for diffs whose trees are both within that node count,
	// filling DiffStats.MinimalEdits and OptimalityGap. The baseline is
	// quadratic in tree size; quality.DefaultBaselineMaxNodes is a sensible
	// cap. Zero (the default) disables it; the cheap conciseness metrics
	// (ChangedNodes, ReuseRatio, ratios) are always computed.
	QualityBaseline int

	// Tracer, when non-nil, receives span events for every diff the engine
	// runs (BeginDiff, one Phase per truediff step, EndDiff). With
	// Workers > 1 the tracer observes diffs from several goroutines at
	// once, so it must be concurrency-safe; per-diff ordering holds within
	// each worker. Equivalent to setting Diff.Tracer, which it overrides.
	Tracer telemetry.Tracer
	// Observer, when non-nil, is called synchronously after every diff —
	// successful, failed, or short-circuited — with that diff's event.
	// It runs on worker goroutines: keep it cheap and concurrency-safe
	// (telemetry.TraceWriter is; so is recording into histograms).
	Observer func(DiffEvent)
	// SlowDiffThreshold enables slow-diff logging: completed diffs whose
	// wall time meets or exceeds it are reported through SlowDiffLog. Zero
	// disables the check.
	SlowDiffThreshold time.Duration
	// SlowDiffLog overrides where slow diffs are reported. Nil logs one
	// line per slow diff via Logger when set, else the standard library
	// logger.
	SlowDiffLog func(DiffEvent)
	// Spans, when non-nil, turns on distributed tracing: every diff runs
	// under an "engine.diff" span (parented on Pair.Trace when valid) and
	// the four truediff phases are synthesized into child spans. Nil (the
	// default) costs nothing on the diff path beyond a pointer comparison.
	Spans telemetry.SpanSink
	// Logger, when non-nil, receives structured records for noteworthy
	// diffs — failures (error level), fallbacks and slow diffs (warn) —
	// with trace_id/span_id correlation when the pair carried a trace.
	// Routine successful diffs are never logged; use Observer or Tracer
	// for those.
	Logger *slog.Logger
	// SLO parameterizes the engine's rolling-window objective accounting
	// (availability = non-error diffs; latency objective on diff wall
	// time). The zero value selects the defaults documented on
	// telemetry.SLOConfig; accounting is always on (lock-free counters).
	SLO telemetry.SLOConfig

	// DiffTimeout bounds each individual diff: a diff still running when
	// the deadline passes is aborted at its next cancellation checkpoint
	// with an error matching derrors.ErrDiffTimeout. The deadline starts
	// when the diff starts (not when the batch does), so large batches
	// don't starve late pairs. Zero disables the per-diff deadline.
	DiffTimeout time.Duration
	// CheckpointEvery overrides how many nodes a diff processes between
	// cancellation-checkpoint polls (truediff.Options.CheckpointEvery).
	// Zero selects truediff.DefaultCheckpointEvery. Equivalent to setting
	// Diff.CheckpointEvery, which it overrides when positive.
	CheckpointEvery int
	// Fallback selects the graceful-degradation policy for diffs that
	// panic, overrun DiffTimeout, or emit an ill-typed script. See
	// FallbackMode.
	Fallback FallbackMode
	// Faults, when non-nil, arms deterministic fault injection at the
	// engine's sites (FaultSiteDiff, FaultSiteCheckpoint) and is forwarded
	// to patching helpers. Intended for resilience tests; nil in
	// production.
	Faults *faultinject.Injector
}

// Pprof label keys the engine publishes when profiling is enabled
// (truediff.Options.ProfileLabels, structdiff.WithProfileLabels): each
// batch worker runs under PprofWorkerLabel (the worker's index) and each
// labelled pair under PprofPairLabel (Pair.Label), with the differ's
// phase label (truediff.PprofPhaseLabel) nested innermost.
const (
	PprofPairLabel   = "pair"
	PprofWorkerLabel = "worker"
)

// Engine diffs batches of tree pairs concurrently. Create one with New and
// share it between goroutines; all methods are concurrency-safe.
type Engine struct {
	sch    *sig.Schema
	differ *truediff.Differ
	cfg    Config
	memo   *tree.DigestMemo
	pool   sync.Pool // of *truediff.Scratch
	store  treeStore
	uris   struct {
		mu   sync.Mutex
		next uri.URI
	}
	m   metrics
	h   histograms
	slo *telemetry.SLO

	// life tracks the engine's shutdown state: begin/end bracket every
	// entry point, and Close flips closed then waits for the in-flight
	// count to drain before releasing the caches.
	life struct {
		mu     sync.Mutex
		closed bool
		active sync.WaitGroup
	}
}

// histograms holds the engine-level distributions: overall diff latency,
// per-phase latency (merged from scratch-local timings on each diff's
// completion), compound edit counts, and input tree sizes. All lock-free;
// see telemetry.Histogram for the bucket layout.
type histograms struct {
	latency telemetry.Histogram // per-diff wall time, nanoseconds
	phases  [telemetry.NumPhases]telemetry.Histogram
	edits   telemetry.Histogram // compound edits per script
	nodes   telemetry.Histogram // input tree sizes (two per diff)

	// Quality distributions (per diff, stored in permille so the integer
	// histogram resolves ratios; exposed with Scale 1e-3):
	reuse        telemetry.Histogram // reuse ratio × 1000
	editsChanged telemetry.Histogram // compound edits per changed node × 1000
	scriptTree   telemetry.Histogram // compound edits per target node × 1000
}

// treeStore interns engine-managed trees by content digest, so ingesting a
// tree the engine has seen before — the common case in a version-history
// replay, where one commit's "after" is the next commit's "before" — returns
// the already-ingested tree instead of cloning and hashing a new one.
// Interned trees are immutable and live in the engine's own URI space, so
// sharing them between pairs (even concurrently, even as both sides of one
// pair) is safe.
type treeStore struct {
	mu sync.RWMutex
	m  map[string]*tree.Node
}

func (s *treeStore) get(key string) *tree.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[key]
}

// put interns n under key, keeping the first tree stored: a racing duplicate
// ingest returns the canonical tree so later pointer comparisons hold.
func (s *treeStore) put(key string, n *tree.Node) *tree.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*tree.Node)
	}
	if old := s.m[key]; old != nil {
		return old
	}
	s.m[key] = n
	return n
}

func (s *treeStore) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

func (s *treeStore) clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = nil
}

// reserveBlock carves n consecutive URIs out of the engine's URI space,
// first advancing it past min, and returns the URI just before the block
// (i.e. an allocator that Reserved the returned value hands out exactly the
// block). Engine-managed trees and the scripts diffed over them draw from
// this one space, so their URIs never collide even across shared trees.
func (e *Engine) reserveBlock(min uri.URI, n int) uri.URI {
	e.uris.mu.Lock()
	if e.uris.next < min {
		e.uris.next = min
	}
	base := e.uris.next
	e.uris.next += uri.URI(n)
	e.uris.mu.Unlock()
	return base
}

// New returns an Engine for trees of the given schema.
func New(sch *sig.Schema, cfg Config) *Engine {
	if cfg.Tracer != nil {
		cfg.Diff.Tracer = cfg.Tracer
	}
	if cfg.CheckpointEvery > 0 {
		cfg.Diff.CheckpointEvery = cfg.CheckpointEvery
	}
	e := &Engine{
		sch:    sch,
		differ: truediff.NewWithOptions(sch, cfg.Diff),
		cfg:    cfg,
		slo:    telemetry.NewSLO(cfg.SLO),
	}
	if !cfg.DisableMemo {
		// The namespace partitions memo keys by schema and hash kind, so
		// digests cached for one language or algorithm can never leak into
		// another if a memo were ever shared more widely.
		e.memo = tree.NewDigestMemo(fmt.Sprintf("%s#%d|", sch.Fingerprint(), cfg.Hash))
	}
	e.pool.New = func() any {
		e.m.poolMisses.Add(1)
		return truediff.NewScratch()
	}
	return e
}

// Schema returns the schema the engine diffs against.
func (e *Engine) Schema() *sig.Schema { return e.sch }

// begin registers one in-flight entry-point call, failing if Close has
// already begun. Every successful begin must be paired with e.life.active.Done().
func (e *Engine) begin() error {
	e.life.mu.Lock()
	defer e.life.mu.Unlock()
	if e.life.closed {
		return fmt.Errorf("engine: %w", derrors.ErrEngineClosed)
	}
	e.life.active.Add(1)
	return nil
}

// Close shuts the engine down: it waits for in-flight Diff and DiffBatch
// calls to complete, then releases the whole-tree intern store so long-held
// engines stop pinning every tree they ever interned. Calls entering after
// Close has begun fail with an error matching derrors.ErrEngineClosed.
// Close is idempotent and always returns nil; the error result exists so
// the engine satisfies the same service interface as remote clients, whose
// Close can genuinely fail.
func (e *Engine) Close() error {
	e.life.mu.Lock()
	already := e.life.closed
	e.life.closed = true
	e.life.mu.Unlock()
	if already {
		return nil
	}
	e.life.active.Wait()
	e.store.clear()
	return nil
}

// Differ exposes the underlying (immutable, goroutine-safe) differ.
func (e *Engine) Differ() *truediff.Differ { return e.differ }

func (e *Engine) workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Ingest prepares a tree for diffing through this engine.
//
// With a non-nil alloc, Ingest clones root with fresh URIs from alloc and
// hashes the clone against the engine's shared digest memo, so subtrees
// whose digests were computed for any earlier ingest are not rehashed. The
// returned tree is what Clone would have produced; only the hashing work
// differs. Use this mode when the caller owns the URI space (e.g. to keep
// URIs small and deterministic per document).
//
// With a nil alloc, the tree enters the engine-managed store: its URIs come
// from the engine's own space (globally unique across everything the engine
// has ingested), and trees are interned by content digest — re-ingesting a
// content-identical tree returns the previously ingested tree outright, at
// the cost of a single map lookup. This is the fast path for batch replays,
// where consecutive versions of a document share endpoints. Trees that
// already carry digests of the engine's hash kind are admitted by copying
// those digests (digests never depend on URIs), skipping hashing entirely.
func (e *Engine) Ingest(root *tree.Node, alloc *uri.Allocator) *tree.Node {
	if root == nil {
		return nil
	}
	if alloc != nil {
		c := tree.CloneMemo(root, alloc, e.cfg.Hash, e.memo)
		e.m.ingestedTrees.Add(1)
		e.m.ingestedNodes.Add(uint64(c.Size()))
		return c
	}
	prehashed := tree.HashedWith(root, e.cfg.Hash)
	if prehashed {
		if c := e.store.get(root.ExactHash()); c != nil {
			e.m.storeHits.Add(1)
			return c
		}
	}
	la := uri.NewAllocator()
	la.Reserve(e.reserveBlock(0, root.Size()))
	var c *tree.Node
	if prehashed {
		c = tree.CloneKeepDigests(root, la)
	} else {
		c = tree.CloneMemo(root, la, e.cfg.Hash, e.memo)
	}
	e.m.storeMisses.Add(1)
	e.m.ingestedTrees.Add(1)
	e.m.ingestedNodes.Add(uint64(c.Size()))
	return e.store.put(c.ExactHash(), c)
}

// Pair is one diffing task of a batch.
type Pair struct {
	Source *tree.Node
	Target *tree.Node
	// Alloc supplies fresh URIs for nodes the diff loads. It must dominate
	// every URI in Source and Target (pass the allocator the trees were
	// built or ingested with). If nil, the engine carves a URI block out of
	// its own space, past every URI of both trees — the right choice for
	// engine-managed (nil-alloc-ingested) trees, whose URI numbering then
	// stays globally collision-free, at the cost of load URIs that depend
	// on batch scheduling. Allocators are not concurrency-safe, so pairs of
	// one batch must not share an Alloc.
	Alloc *uri.Allocator
	// Label identifies the pair in observer events and trace records (for
	// example a file path). The engine does not interpret it.
	Label string
	// Trace, when valid, is the distributed-trace context this pair runs
	// under: the engine's "engine.diff" span is parented on it, and
	// observer events carry it for log and trace-record correlation. The
	// context travels with the pair (not the batch ctx) because batching
	// layers deliberately detach pairs from their request contexts.
	Trace telemetry.SpanContext
}

// DiffStats instruments one diff of a batch.
type DiffStats struct {
	// Wall is the time the diff itself took (excluding queueing).
	Wall time.Duration
	// Edits is the script's compound edit count, the paper's conciseness
	// metric.
	Edits int
	// SourceSize and TargetSize count the nodes of the input trees.
	SourceSize int
	TargetSize int
	// ReuseRatio is the fraction of target nodes obtained by reusing
	// source nodes rather than loading fresh ones: 1 means the diff moved
	// and updated existing structure only, 0 means it rebuilt everything.
	ReuseRatio float64
	// ChangedNodes counts the nodes the script touches (loads, unloads,
	// literal updates, moved subtree roots); EditsPerChangedNode and
	// ScriptTreeRatio are the conciseness ratios built on it (see
	// quality.Metrics). All zero for an empty script.
	ChangedNodes        int
	EditsPerChangedNode float64
	ScriptTreeRatio     float64
	// MinimalEdits and OptimalityGap carry the exact minimal-script
	// baseline (quality.MinimalEdits) when Baselined, which requires
	// Config.QualityBaseline > 0 and both trees within that node cap. The
	// gap can be negative: truechange moves beat the classical edit
	// distance's delete+reinsert.
	MinimalEdits  int
	OptimalityGap float64
	Baselined     bool
	// Phases breaks Wall down into the four truediff steps (all zero for
	// short-circuited pairs, where no step ran).
	Phases telemetry.PhaseTimes
	// SourceInterned and TargetInterned report whether the respective
	// input tree is the canonical copy of the engine's whole-tree intern
	// store (engine-managed ingest). Identical marks pairs whose endpoints
	// are the same tree: the diff short-circuited to an empty script.
	SourceInterned bool
	TargetInterned bool
	Identical      bool
	// Fallback marks pairs served by graceful degradation: the real diff
	// panicked, timed out, or emitted an ill-typed script, and the result
	// is a synthesized root-replacement script instead (Edits and
	// ReuseRatio describe that script, so expect ReuseRatio 0). Always
	// false under FallbackNone.
	Fallback bool
}

// PairResult is the outcome of one diffing task.
type PairResult struct {
	Result *truediff.Result
	Stats  DiffStats
	// Explain is the per-edit provenance of the script, index-aligned with
	// Result.Script.Edits. Non-nil only when Config.Explain is set and the
	// diff completed without fallback.
	Explain *truediff.Explanation
	Err     error
}

// Diff runs a single diff through the engine: scratch state is drawn from
// the pool and the per-diff counters feed Snapshot. See truediff.Differ.Diff
// for the contract on source, target, and alloc. A nil ctx is treated as
// context.Background(), matching DiffBatch; a cancellable ctx (or a
// configured DiffTimeout) is polled at cancellation checkpoints, so the
// diff aborts mid-algorithm rather than only between calls.
func (e *Engine) Diff(ctx context.Context, source, target *tree.Node, alloc *uri.Allocator) (*truediff.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if err := e.begin(); err != nil {
		return nil, err
	}
	defer e.life.active.Done()
	pr := e.diffOne(ctx, Pair{Source: source, Target: target, Alloc: alloc})
	return pr.Result, pr.Err
}

// DiffBatch diffs every pair, fanning the work over the engine's worker
// pool, and returns one result per pair, index-aligned with pairs. A failed
// pair carries its error in its slot; DiffBatch itself only returns an
// error when ctx is cancelled, in which case pairs that never ran have
// their Err set to the context error, and pairs that were mid-diff abort
// at their next cancellation checkpoint with the context's cause in their
// slot. Every pair therefore ends with exactly one of Result or Err set.
// A nil ctx is treated as context.Background(), matching Diff.
func (e *Engine) DiffBatch(ctx context.Context, pairs []Pair) ([]PairResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := e.begin(); err != nil {
		return nil, err
	}
	defer e.life.active.Done()
	e.m.batches.Add(1)
	results := make([]PairResult, len(pairs))
	if len(pairs) == 0 {
		return results, ctx.Err()
	}

	workers := e.workers()
	if workers > len(pairs) {
		workers = len(pairs)
	}
	// The queue-depth gauge counts pairs submitted but not yet picked up by
	// a worker; every exit path below drains it back to its prior level.
	e.m.queueDepth.Add(int64(len(pairs)))
	started := time.Now()
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Each slot of results is written by exactly one worker, so no
			// further synchronization is needed beyond wg.Wait.
			drain := func(ctx context.Context) {
				for i := range idx {
					e.m.queueDepth.Add(-1)
					results[i] = e.diffOne(ctx, pairs[i])
				}
			}
			if e.cfg.Diff.ProfileLabels {
				pprof.Do(ctx, pprof.Labels(PprofWorkerLabel, strconv.Itoa(w)), drain)
			} else {
				drain(ctx)
			}
		}(w)
	}

	cancelled := false
feed:
	for i := range pairs {
		select {
		case idx <- i:
		case <-ctx.Done():
			cancelled = true
			break feed
		}
	}
	close(idx)
	wg.Wait()
	// Capacity is what the pool could have diffed this batch (elapsed time
	// across every worker); Snapshot.Utilization divides busy time by it.
	e.m.capacityNanos.Add(uint64(time.Since(started).Nanoseconds()) * uint64(workers))

	if cancelled {
		err := fmt.Errorf("engine: batch cancelled: %w", context.Cause(ctx))
		for i := range results {
			if results[i].Result == nil && results[i].Err == nil {
				results[i].Err = err
				e.m.queueDepth.Add(-1) // never dequeued by a worker
			}
		}
		return results, err
	}
	return results, nil
}

// diffOne wraps diffPair with the per-diff observability shell: the
// "engine.diff" span (when Config.Spans is set) with phase child spans
// synthesized via a context-carried tracer, and the SLO observation. With
// tracing off the extra cost is two clock reads and a handful of atomic
// adds.
func (e *Engine) diffOne(ctx context.Context, p Pair) PairResult {
	// Labels are caller-supplied (e.g. by remote diffserve clients) and
	// fan out to every observability surface — span attributes, pprof
	// labels, trace records, flight-recorder pages, Prometheus label
	// values. Bound and neutralize them once here.
	p.Label = telemetry.SanitizeLabel(p.Label)
	start := time.Now()
	span := telemetry.StartSpanAt(e.cfg.Spans, p.Trace, "engine.diff", start)
	if span != nil {
		// Children (phase spans, the observer's trace record) hang off the
		// engine span, not the caller's request span.
		p.Trace = span.Context()
		ctx = telemetry.ContextWithTracer(ctx, telemetry.PhaseSpans(e.cfg.Spans, p.Trace))
	}
	pr := e.diffPair(ctx, p)
	wall := time.Since(start)
	e.slo.Observe(wall, pr.Err == nil)
	if span != nil {
		if p.Label != "" {
			span.SetAttr("pair", p.Label)
		}
		span.SetAttr("source_nodes", pr.Stats.SourceSize)
		span.SetAttr("target_nodes", pr.Stats.TargetSize)
		span.SetAttr("edits", pr.Stats.Edits)
		if pr.Stats.Identical {
			span.SetAttr("identical", true)
		}
		if pr.Stats.Fallback {
			span.SetAttr("fallback", true)
		}
		if pr.Err != nil {
			span.SetAttr("err", pr.Err.Error())
		}
		span.EndAt(start.Add(wall))
	}
	return pr
}

// diffPair executes one task with pooled scratch state. The diff runs
// inside the panic-isolation boundary (runDiff) with a cancellation
// checkpoint derived from ctx, Config.DiffTimeout, and the fault injector;
// failures eligible for graceful degradation are served a synthesized
// root-replacement script instead when Config.Fallback asks for it.
func (e *Engine) diffPair(ctx context.Context, p Pair) PairResult {
	if p.Source != nil && p.Source == p.Target {
		// Interned trees make content equality a pointer comparison: both
		// ingests hit the same store entry, so the minimal script is empty
		// and the patched tree is the source itself.
		st := DiffStats{
			SourceSize:     p.Source.Size(),
			TargetSize:     p.Target.Size(),
			ReuseRatio:     1,
			SourceInterned: true,
			TargetInterned: true,
			Identical:      true,
		}
		if e.cfg.QualityBaseline > 0 && st.SourceSize <= e.cfg.QualityBaseline {
			// Identical trees are trivially minimal: distance 0, gap 0.
			st.Baselined = true
		}
		e.m.diffs.Add(1)
		e.m.sourceNodes.Add(uint64(st.SourceSize))
		e.m.targetNodes.Add(uint64(st.TargetSize))
		// The pair was served in effectively zero time; it belongs in the
		// latency and size distributions, but not in the phase histograms
		// (no truediff step ran).
		e.h.latency.Record(0)
		e.h.edits.Record(0)
		e.h.nodes.Record(int64(st.SourceSize))
		e.h.nodes.Record(int64(st.TargetSize))
		e.recordQuality(st)
		pr := PairResult{
			Result: &truediff.Result{Script: &truechange.Script{}, Patched: p.Source},
			Stats:  st,
		}
		if e.cfg.Explain {
			// An empty script explains itself; the empty record set keeps
			// the index alignment invariant for downstream consumers.
			pr.Explain = &truediff.Explanation{
				SourceSize: st.SourceSize,
				TargetSize: st.TargetSize,
				Edits:      []truediff.EditProvenance{},
			}
		}
		return e.finish(p, pr)
	}

	e.m.poolGets.Add(1)
	s := e.pool.Get().(*truediff.Scratch)
	defer e.pool.Put(s)

	alloc := p.Alloc
	if alloc == nil && p.Source != nil && p.Target != nil {
		// Carve a load-URI block out of the engine's space, past every URI
		// of both trees. A diff loads at most TargetSize fresh nodes, so the
		// block is always large enough, and blocks never overlap, so a
		// patched tree's URIs stay unique engine-wide.
		var max uri.URI
		walkMax := func(n *tree.Node) {
			if n.URI > max {
				max = n.URI
			}
		}
		tree.Walk(p.Source, walkMax)
		tree.Walk(p.Target, walkMax)
		alloc = uri.NewAllocator()
		alloc.Reserve(e.reserveBlock(max, p.Target.Size()))
	}

	var ecol *truediff.ExplainCollector
	if e.cfg.Explain {
		// The collector is touched only by this worker goroutine: the
		// differ delivers into it synchronously at the end of the diff.
		ecol = &truediff.ExplainCollector{}
		ctx = truediff.ContextWithExplain(ctx, ecol)
	}

	start := time.Now()
	var res *truediff.Result
	var err error
	if e.cfg.Diff.ProfileLabels && p.Label != "" {
		// Nest the pair label inside the worker label (both on ctx), so a
		// CPU profile slices by worker, by pair, and — once the differ adds
		// its own label — by phase.
		pprof.Do(ctx, pprof.Labels(PprofPairLabel, p.Label), func(lctx context.Context) {
			res, err = e.runDiff(lctx, p, alloc, s)
		})
	} else {
		res, err = e.runDiff(ctx, p, alloc, s)
	}
	if err == nil {
		err = e.wellTypedOut(res)
	}
	fellBack := false
	if err != nil {
		e.classify(err)
		if e.shouldFallback(err) {
			res, err = e.fallback(p, alloc, err)
			fellBack = err == nil
		}
	}
	wall := time.Since(start)
	if err != nil {
		e.m.errors.Add(1)
		return e.finish(p, PairResult{Err: err})
	}

	st := DiffStats{
		Wall:           wall,
		Fallback:       fellBack,
		Edits:          res.Script.EditCount(),
		SourceSize:     p.Source.Size(),
		TargetSize:     p.Target.Size(),
		Phases:         s.PhaseTimes(),
		SourceInterned: e.internedTree(p.Source),
		TargetInterned: e.internedTree(p.Target),
	}
	q := quality.FromScript(res.Script, st.SourceSize, st.TargetSize)
	st.ReuseRatio = q.ReuseRatio
	st.ChangedNodes = q.ChangedNodes
	st.EditsPerChangedNode = q.EditsPerChangedNode
	st.ScriptTreeRatio = q.ScriptTreeRatio
	if bm := e.cfg.QualityBaseline; bm > 0 && !fellBack {
		if min, ok := quality.MinimalEdits(p.Source, p.Target, bm); ok {
			st.MinimalEdits = min
			st.OptimalityGap = quality.Gap(st.Edits, min)
			st.Baselined = true
		}
	}
	e.m.diffs.Add(1)
	e.m.edits.Add(uint64(st.Edits))
	e.m.sourceNodes.Add(uint64(st.SourceSize))
	e.m.targetNodes.Add(uint64(st.TargetSize))
	e.m.wallNanos.Add(uint64(wall.Nanoseconds()))
	e.h.latency.Record(wall.Nanoseconds())
	for ph, d := range st.Phases {
		e.h.phases[ph].Record(d.Nanoseconds())
	}
	e.h.edits.Record(int64(st.Edits))
	e.h.nodes.Record(int64(st.SourceSize))
	e.h.nodes.Record(int64(st.TargetSize))
	e.recordQuality(st)
	pr := PairResult{Result: res, Stats: st}
	if ecol != nil && !fellBack {
		pr.Explain = ecol.Last
	}
	return e.finish(p, pr)
}

// recordQuality feeds one diff's conciseness metrics into the quality
// histograms (permille-scaled) and cumulative counters.
func (e *Engine) recordQuality(st DiffStats) {
	e.h.reuse.Record(int64(st.ReuseRatio * 1000))
	e.h.editsChanged.Record(int64(st.EditsPerChangedNode * 1000))
	e.h.scriptTree.Record(int64(st.ScriptTreeRatio * 1000))
	e.m.changedNodes.Add(uint64(st.ChangedNodes))
	if st.Baselined {
		e.m.baselinedDiffs.Add(1)
		e.m.baselineEdits.Add(uint64(st.Edits))
		e.m.baselineMinimal.Add(uint64(st.MinimalEdits))
	}
}

// internedTree reports whether n is the canonical copy held by the
// engine's whole-tree intern store (an RLocked map lookup; the store is
// empty, and the lookup free, when only caller-owned ingest is used).
func (e *Engine) internedTree(n *tree.Node) bool {
	if n == nil {
		return false
	}
	return e.store.get(n.ExactHash()) == n
}

// finish runs the per-diff observability tail — slow-diff reporting,
// structured logging of noteworthy outcomes, and the observer callback —
// and passes the result through.
func (e *Engine) finish(p Pair, pr PairResult) PairResult {
	slow := e.cfg.SlowDiffThreshold > 0 && pr.Err == nil && pr.Stats.Wall >= e.cfg.SlowDiffThreshold
	if slow {
		e.m.slowDiffs.Add(1)
	}
	logWorthy := e.cfg.Logger != nil && (pr.Err != nil || pr.Stats.Fallback)
	if !slow && !logWorthy && e.cfg.Observer == nil {
		return pr
	}
	ev := DiffEvent{Label: p.Label, Trace: p.Trace, Stats: pr.Stats, Err: pr.Err}
	if slow {
		switch {
		case e.cfg.SlowDiffLog != nil:
			e.cfg.SlowDiffLog(ev)
		case e.cfg.Logger != nil:
			e.logEvent(slog.LevelWarn, "slow diff", ev,
				slog.Duration("threshold", e.cfg.SlowDiffThreshold))
		default:
			log.Printf("structdiff: slow diff %s: wall %v (threshold %v), %d+%d nodes, %d edits, phases %v",
				labelOr(ev.Label, "<unlabelled>"), ev.Stats.Wall, e.cfg.SlowDiffThreshold,
				ev.Stats.SourceSize, ev.Stats.TargetSize, ev.Stats.Edits, ev.Stats.Phases)
		}
	}
	if e.cfg.Logger != nil {
		if ev.Err != nil {
			e.logEvent(slog.LevelError, "diff failed", ev)
		} else if ev.Stats.Fallback {
			e.logEvent(slog.LevelWarn, "diff served by fallback", ev)
		}
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer(ev)
	}
	return pr
}

// logEvent emits one structured record for ev, carrying the pair label,
// trace correlation IDs, and the diff's headline numbers.
func (e *Engine) logEvent(level slog.Level, msg string, ev DiffEvent, extra ...slog.Attr) {
	attrs := make([]slog.Attr, 0, 8+len(extra))
	if ev.Label != "" {
		attrs = append(attrs, slog.String("pair", ev.Label))
	}
	attrs = append(attrs, ev.Trace.SlogAttrs()...)
	attrs = append(attrs,
		slog.Duration("wall", ev.Stats.Wall),
		slog.Int("source_nodes", ev.Stats.SourceSize),
		slog.Int("target_nodes", ev.Stats.TargetSize),
		slog.Int("edits", ev.Stats.Edits),
	)
	if ev.Err != nil {
		attrs = append(attrs, slog.String("err", ev.Err.Error()))
	}
	attrs = append(attrs, extra...)
	e.cfg.Logger.LogAttrs(context.Background(), level, msg, attrs...)
}

func labelOr(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}
