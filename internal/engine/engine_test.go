package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/derrors"
	"repro/internal/exp"
	"repro/internal/mtree"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/truediff"
	"repro/internal/uri"
)

// testPair is one generated diffing task together with an independent,
// identically-numbered copy for the sequential reference run: both sides
// are cloned with fresh allocators in the same state, so a deterministic
// differ must produce identical scripts for them.
type testPair struct {
	pair     Pair
	refSrc   *tree.Node
	refDst   *tree.Node
	refAlloc *uri.Allocator
}

func makePairs(tb testing.TB, n int) []testPair {
	tb.Helper()
	pairs := make([]testPair, n)
	for i := range pairs {
		g := exp.NewGen(int64(1000 + i))
		before := g.Tree(80 + 40*(i%4))
		after := g.MutateN(before, 1+i%5)

		allocA := uri.NewAllocator()
		srcA := tree.Clone(before, allocA, tree.SHA256)
		dstA := tree.Clone(after, allocA, tree.SHA256)

		allocB := uri.NewAllocator()
		srcB := tree.Clone(before, allocB, tree.SHA256)
		dstB := tree.Clone(after, allocB, tree.SHA256)

		pairs[i] = testPair{
			pair:     Pair{Source: srcA, Target: dstA, Alloc: allocA},
			refSrc:   srcB,
			refDst:   dstB,
			refAlloc: allocB,
		}
	}
	return pairs
}

func enginePairs(tps []testPair) []Pair {
	ps := make([]Pair, len(tps))
	for i, tp := range tps {
		ps[i] = tp.pair
	}
	return ps
}

// TestBatchMatchesSequential is the engine's core correctness property:
// a concurrent batch produces, pair for pair, exactly the script and
// patched tree a fresh sequential differ produces. Run with -race this
// also exercises the memo striping and the scratch pool under contention.
func TestBatchMatchesSequential(t *testing.T) {
	tps := makePairs(t, 24)
	e := New(exp.Schema(), Config{Workers: 8})
	results, err := e.DiffBatch(context.Background(), enginePairs(tps))
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}

	d := truediff.New(exp.Schema())
	for i, tp := range tps {
		if results[i].Err != nil {
			t.Fatalf("pair %d: %v", i, results[i].Err)
		}
		want, err := d.Diff(tp.refSrc, tp.refDst, tp.refAlloc)
		if err != nil {
			t.Fatalf("pair %d sequential: %v", i, err)
		}
		got := results[i].Result
		if !reflect.DeepEqual(got.Script.Edits, want.Script.Edits) {
			t.Errorf("pair %d: batch script differs from sequential script\nbatch: %v\nseq:   %v",
				i, got.Script.Edits, want.Script.Edits)
		}
		if !tree.Equal(got.Patched, want.Patched) {
			t.Errorf("pair %d: batch patched tree differs from sequential", i)
		}
		if !tree.Equal(got.Patched, tp.pair.Target) {
			t.Errorf("pair %d: patched tree does not equal the target", i)
		}
	}
}

// TestScratchRecyclingLeavesNoTrace runs two identical batches through a
// single-worker engine, so the second batch demonstrably runs on recycled
// scratch state (registry, assignment map, edit buffer, heap). Any state
// leaking across diffs would perturb the second batch's scripts.
func TestScratchRecyclingLeavesNoTrace(t *testing.T) {
	first := makePairs(t, 12)
	second := makePairs(t, 12) // identical by construction (same seeds)

	e := New(exp.Schema(), Config{Workers: 1})
	r1, err := e.DiffBatch(context.Background(), enginePairs(first))
	if err != nil {
		t.Fatalf("batch 1: %v", err)
	}
	r2, err := e.DiffBatch(context.Background(), enginePairs(second))
	if err != nil {
		t.Fatalf("batch 2: %v", err)
	}
	for i := range r1 {
		if r1[i].Err != nil || r2[i].Err != nil {
			t.Fatalf("pair %d: errs %v / %v", i, r1[i].Err, r2[i].Err)
		}
		if !reflect.DeepEqual(r1[i].Result.Script.Edits, r2[i].Result.Script.Edits) {
			t.Errorf("pair %d: recycled scratch changed the script", i)
		}
	}
	if snap := e.Snapshot(); snap.PoolHitRate <= 0 {
		t.Errorf("pool hit rate = %v, want > 0 after %d diffs on 1 worker", snap.PoolHitRate, snap.Diffs)
	}
}

// TestDiffBatchCancel checks that a cancelled context stops the batch: the
// call reports the cancellation and pairs that never ran carry it as their
// error.
func TestDiffBatchCancel(t *testing.T) {
	tps := makePairs(t, 64)
	e := New(exp.Schema(), Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	results, err := e.DiffBatch(ctx, enginePairs(tps))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DiffBatch error = %v, want context.Canceled", err)
	}
	skipped := 0
	for _, r := range results {
		if r.Err != nil && errors.Is(r.Err, context.Canceled) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("no pair carries the cancellation error")
	}
}

// TestErrorsSurfacePerPair checks that a failing pair does not fail the
// batch: its slot carries a typed error and the other pairs complete.
func TestErrorsSurfacePerPair(t *testing.T) {
	tps := makePairs(t, 2)

	foreign := sig.NewSchema("foreign")
	foreign.MustDeclare(sig.Sig{Tag: "Alien", Result: "Thing"})
	falloc := uri.NewAllocator()
	alien, err := tree.New(foreign, falloc, "Alien", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	pairs := []Pair{
		tps[0].pair,
		{Source: nil, Target: tps[1].pair.Target},
		{Source: alien, Target: tps[1].pair.Target, Alloc: falloc},
	}
	e := New(exp.Schema(), Config{Workers: 4})
	results, err := e.DiffBatch(context.Background(), pairs)
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	if results[0].Err != nil || results[0].Result == nil {
		t.Errorf("healthy pair failed: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, derrors.ErrNilTree) {
		t.Errorf("nil-source pair: err = %v, want ErrNilTree", results[1].Err)
	}
	if !errors.Is(results[2].Err, derrors.ErrSchemaMismatch) {
		t.Errorf("foreign-schema pair: err = %v, want ErrSchemaMismatch", results[2].Err)
	}
	if snap := e.Snapshot(); snap.Errors != 2 {
		t.Errorf("Snapshot().Errors = %d, want 2", snap.Errors)
	}
}

// TestSnapshotCounters checks the instrumentation a batch leaves behind.
func TestSnapshotCounters(t *testing.T) {
	tps := makePairs(t, 16)
	e := New(exp.Schema(), Config{Workers: 4})
	results, err := e.DiffBatch(context.Background(), enginePairs(tps))
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}

	snap := e.Snapshot()
	if snap.Diffs != 16 {
		t.Errorf("Diffs = %d, want 16", snap.Diffs)
	}
	if snap.Batches != 1 {
		t.Errorf("Batches = %d, want 1", snap.Batches)
	}
	if snap.PoolGets != 16 {
		t.Errorf("PoolGets = %d, want 16", snap.PoolGets)
	}
	if snap.PoolMisses > snap.PoolGets {
		t.Errorf("PoolMisses = %d > PoolGets = %d", snap.PoolMisses, snap.PoolGets)
	}
	var edits, srcN, dstN int
	for _, r := range results {
		edits += r.Stats.Edits
		srcN += r.Stats.SourceSize
		dstN += r.Stats.TargetSize
		if r.Stats.Wall <= 0 {
			t.Error("per-diff wall time not recorded")
		}
		if r.Stats.ReuseRatio < 0 || r.Stats.ReuseRatio > 1 {
			t.Errorf("ReuseRatio = %v out of range", r.Stats.ReuseRatio)
		}
	}
	if snap.Edits != uint64(edits) {
		t.Errorf("Edits = %d, want sum of per-diff edits %d", snap.Edits, edits)
	}
	if snap.SourceNodes != uint64(srcN) || snap.TargetNodes != uint64(dstN) {
		t.Errorf("node totals = %d+%d, want %d+%d", snap.SourceNodes, snap.TargetNodes, srcN, dstN)
	}
	if snap.NodesPerSecond() <= 0 {
		t.Error("NodesPerSecond should be positive after a batch")
	}
	if snap.String() == "" {
		t.Error("empty snapshot rendering")
	}
}

// TestIngestMemoReusesDigests ingests the same tree twice and expects the
// second pass to be served from the digest memo, with clones identical to
// what plain Clone produces.
func TestIngestMemoReusesDigests(t *testing.T) {
	g := exp.NewGen(7)
	orig := g.Tree(200)
	e := New(g.Schema(), Config{})

	c1 := e.Ingest(orig, uri.NewAllocator())
	afterFirst := e.Snapshot()
	c2 := e.Ingest(orig, uri.NewAllocator())
	afterSecond := e.Snapshot()

	plain := tree.Clone(orig, uri.NewAllocator(), tree.SHA256)
	for _, c := range []*tree.Node{c1, c2} {
		if !tree.Equal(c, plain) {
			t.Fatal("memoized clone differs from plain clone")
		}
		if c.StructHash() != plain.StructHash() || c.LitHash() != plain.LitHash() {
			t.Fatal("memoized digests differ from freshly computed digests")
		}
	}
	if afterFirst.MemoMisses == 0 {
		t.Error("first ingest should populate the memo")
	}
	if gained := afterSecond.MemoHits - afterFirst.MemoHits; gained == 0 {
		t.Error("second ingest of the same tree should hit the memo")
	}
	if afterSecond.IngestedTrees != 2 {
		t.Errorf("IngestedTrees = %d, want 2", afterSecond.IngestedTrees)
	}
	if afterSecond.MemoEntries == 0 {
		t.Error("memo should hold entries")
	}
}

// TestIngestMemoDisabled checks the ablation switch.
func TestIngestMemoDisabled(t *testing.T) {
	g := exp.NewGen(8)
	orig := g.Tree(64)
	e := New(g.Schema(), Config{DisableMemo: true})
	c := e.Ingest(orig, nil)
	if !tree.Equal(c, orig) {
		t.Fatal("ingest without memo should still clone faithfully")
	}
	snap := e.Snapshot()
	if snap.MemoHits != 0 || snap.MemoMisses != 0 || snap.MemoEntries != 0 {
		t.Errorf("disabled memo reported activity: %+v", snap)
	}
}

// TestIngestInternsTrees checks engine-managed ingest (nil allocator):
// content-identical trees — even ones built by different factories with
// different URI numberings — intern to the same node, and the store
// counters record the hit.
func TestIngestInternsTrees(t *testing.T) {
	gA, gB := exp.NewGen(9), exp.NewGen(9)
	a, b := gA.Tree(120), gB.Tree(120) // same seed, same content, fresh URIs

	e := New(gA.Schema(), Config{})
	ia := e.Ingest(a, nil)
	ib := e.Ingest(b, nil)
	if ia != ib {
		t.Fatal("content-identical trees should intern to the same node")
	}
	if !tree.Equal(ia, a) {
		t.Fatal("interned tree differs from its original")
	}
	snap := e.Snapshot()
	if snap.StoreHits != 1 || snap.StoreMisses != 1 || snap.StoreEntries != 1 {
		t.Errorf("store counters = %d hits / %d misses / %d entries, want 1/1/1",
			snap.StoreHits, snap.StoreMisses, snap.StoreEntries)
	}
	if snap.StoreHitRate != 0.5 {
		t.Errorf("StoreHitRate = %v, want 0.5", snap.StoreHitRate)
	}
	// Interned trees skip hashing when the input already carries digests of
	// the engine's kind, so the memo must not have been touched.
	if snap.MemoMisses != 0 {
		t.Errorf("pre-hashed ingest touched the digest memo: %d misses", snap.MemoMisses)
	}
	// A different tree must not be conflated.
	ic := e.Ingest(gA.MutateN(a, 2), nil)
	if ic == ia {
		t.Fatal("distinct trees interned to the same node")
	}
}

// TestEngineManagedBatch diffs a version chain through the store: every
// pair's trees are ingested with nil allocators, sharing interned endpoints.
// The scripts must be well-typed and patch each source into its target, and
// every re-ingested endpoint must come from the store.
func TestEngineManagedBatch(t *testing.T) {
	g := exp.NewGen(11)
	const steps = 8
	versions := make([]*tree.Node, steps+1)
	versions[0] = g.Tree(150)
	for i := 1; i <= steps; i++ {
		versions[i] = g.MutateN(versions[i-1], 1+i%3)
	}

	e := New(g.Schema(), Config{Workers: 4})
	pairs := make([]Pair, steps)
	for i := range pairs {
		// Before_i equals After_{i-1}, so all but the first Source hit the
		// store; the shared node then serves as Target of one pair and
		// Source of the next, concurrently.
		pairs[i] = Pair{
			Source: e.Ingest(versions[i], nil),
			Target: e.Ingest(versions[i+1], nil),
		}
	}
	results, err := e.DiffBatch(context.Background(), pairs)
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("pair %d: %v", i, r.Err)
		}
		if err := truechange.WellTyped(g.Schema(), r.Result.Script); err != nil {
			t.Errorf("pair %d: script ill-typed: %v", i, err)
		}
		if !tree.Equal(r.Result.Patched, versions[i+1]) {
			t.Errorf("pair %d: patched tree does not equal the target version", i)
		}
		mt, err := mtree.FromTree(g.Schema(), pairs[i].Source)
		if err != nil {
			t.Fatalf("pair %d: FromTree: %v", i, err)
		}
		if err := mt.Patch(r.Result.Script); err != nil {
			t.Errorf("pair %d: script does not apply to its source: %v", i, err)
		} else if !mt.EqualTree(versions[i+1]) {
			t.Errorf("pair %d: patching the source does not yield the target", i)
		}
	}
	snap := e.Snapshot()
	if want := uint64(steps - 1); snap.StoreHits != want {
		t.Errorf("StoreHits = %d, want %d (every chained endpoint)", snap.StoreHits, want)
	}
	if snap.StoreEntries != steps+1 {
		t.Errorf("StoreEntries = %d, want %d distinct versions", snap.StoreEntries, steps+1)
	}
}

// TestIdenticalPairShortCircuits checks the interning payoff inside the
// differ: a pair whose endpoints interned to the same node yields an empty
// script without running the diff at all.
func TestIdenticalPairShortCircuits(t *testing.T) {
	g := exp.NewGen(12)
	v := g.Tree(100)
	e := New(g.Schema(), Config{})
	src := e.Ingest(v, nil)
	dst := e.Ingest(v, nil)

	res, err := e.Diff(context.Background(), src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Script.Len() != 0 {
		t.Errorf("identical pair produced %d edits, want 0", res.Script.Len())
	}
	if res.Patched != src {
		t.Error("identical pair should return the source as the patched tree")
	}
	snap := e.Snapshot()
	if snap.PoolGets != 0 {
		t.Errorf("identical pair checked out scratch state (%d gets)", snap.PoolGets)
	}
	if snap.Diffs != 1 {
		t.Errorf("Diffs = %d, want 1 (fast path still counts)", snap.Diffs)
	}
}

// TestEngineManagedMatchesExplicit cross-validates the two ingest modes:
// the same content diffed through the store (engine URI space) and through
// caller allocators must produce scripts of identical shape — the same
// per-kind edit counts — and equal patched content. Only URI numbering may
// differ.
func TestEngineManagedMatchesExplicit(t *testing.T) {
	tps := makePairs(t, 6)
	e := New(exp.Schema(), Config{Workers: 2})

	managed := make([]Pair, len(tps))
	for i, tp := range tps {
		managed[i] = Pair{
			Source: e.Ingest(tp.refSrc, nil),
			Target: e.Ingest(tp.refDst, nil),
		}
	}
	mres, err := e.DiffBatch(context.Background(), managed)
	if err != nil {
		t.Fatalf("managed batch: %v", err)
	}
	eres, err := e.DiffBatch(context.Background(), enginePairs(tps))
	if err != nil {
		t.Fatalf("explicit batch: %v", err)
	}
	for i := range tps {
		if mres[i].Err != nil || eres[i].Err != nil {
			t.Fatalf("pair %d: errs %v / %v", i, mres[i].Err, eres[i].Err)
		}
		ms := truechange.ComputeStats(mres[i].Result.Script)
		es := truechange.ComputeStats(eres[i].Result.Script)
		if !reflect.DeepEqual(ms, es) {
			t.Errorf("pair %d: managed script stats %+v differ from explicit %+v", i, ms, es)
		}
		if !tree.Equal(mres[i].Result.Patched, eres[i].Result.Patched) {
			t.Errorf("pair %d: managed and explicit patched trees differ in content", i)
		}
	}
}

// TestEngineDiffSingle covers the non-batch entry point.
func TestEngineDiffSingle(t *testing.T) {
	tps := makePairs(t, 1)
	e := New(exp.Schema(), Config{})
	res, err := e.Diff(context.Background(), tps[0].pair.Source, tps[0].pair.Target, tps[0].pair.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(res.Patched, tps[0].pair.Target) {
		t.Error("patched tree does not equal target")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Diff(ctx, tps[0].refSrc, tps[0].refDst, tps[0].refAlloc); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Diff: err = %v, want context.Canceled", err)
	}
}
