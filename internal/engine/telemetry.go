package engine

import (
	"repro/internal/telemetry"
)

// DiffEvent is the per-diff notification delivered to Config.Observer and
// Config.SlowDiffLog: the pair's label, the trace context the diff ran
// under (the engine.diff span when tracing is on, else the pair's own),
// its full DiffStats (wall time, per-phase breakdown, sizes, edit count,
// intern flags), and the error of a failed diff.
type DiffEvent struct {
	Label string
	Trace telemetry.SpanContext
	Stats DiffStats
	Err   error
}

// TraceRecord converts the event into the JSONL trace schema consumed by
// telemetry.TraceWriter (the -trace flag of cmd/evaluate).
func (ev DiffEvent) TraceRecord() telemetry.TraceRecord {
	rec := telemetry.TraceRecord{
		Pair:           ev.Label,
		SourceNodes:    ev.Stats.SourceSize,
		TargetNodes:    ev.Stats.TargetSize,
		WallNS:         ev.Stats.Wall.Nanoseconds(),
		Edits:          ev.Stats.Edits,
		SourceInterned: ev.Stats.SourceInterned,
		TargetInterned: ev.Stats.TargetInterned,
		Identical:      ev.Stats.Identical,
		Fallback:       ev.Stats.Fallback,
		ReuseRatio:     ev.Stats.ReuseRatio,
		ChangedNodes:   ev.Stats.ChangedNodes,
		EditsPerNode:   ev.Stats.EditsPerChangedNode,
		ScriptRatio:    ev.Stats.ScriptTreeRatio,
		Baselined:      ev.Stats.Baselined,
		MinimalEdits:   ev.Stats.MinimalEdits,
		OptimalityGap:  ev.Stats.OptimalityGap,
	}
	rec.SetPhases(ev.Stats.Phases)
	if ev.Trace.Valid() {
		rec.TraceID = ev.Trace.Trace.String()
		rec.SpanID = ev.Trace.Span.String()
	}
	if ev.Err != nil {
		rec.Err = ev.Err.Error()
	}
	return rec
}

// GatherMetrics implements telemetry.Gatherer: it renders the engine's
// cumulative counters, cache gauges, and latency/edit/size histograms as
// an exposition sample set. telemetry.Handler(engine) serves it at
// /metrics in Prometheus text format; metric names and semantics are
// documented in docs/OBSERVABILITY.md.
func (e *Engine) GatherMetrics() []telemetry.Metric {
	s := e.Snapshot()
	counter := func(name, help string, v uint64) telemetry.Metric {
		return telemetry.Metric{Name: name, Help: help, Kind: telemetry.KindCounter, Value: float64(v)}
	}
	gauge := func(name, help string, v int) telemetry.Metric {
		return telemetry.Metric{Name: name, Help: help, Kind: telemetry.KindGauge, Value: float64(v)}
	}

	ratio := func(name, help string, v float64) telemetry.Metric {
		return telemetry.Metric{Name: name, Help: help, Kind: telemetry.KindGauge, Value: v}
	}

	ms := []telemetry.Metric{
		telemetry.BuildInfoMetric(),
		counter("structdiff_diffs_total", "Completed diffs.", s.Diffs),
		counter("structdiff_diff_errors_total", "Failed diffs (schema mismatches, nil trees).", s.Errors),
		counter("structdiff_slow_diffs_total", "Diffs at or above the slow-diff threshold.", s.SlowDiffs),
		counter("structdiff_batches_total", "DiffBatch invocations.", s.Batches),
		counter("structdiff_engine_panics_total", "Diffs that panicked and were recovered by worker isolation.", s.Panics),
		counter("structdiff_engine_timeouts_total", "Diffs aborted by the per-diff deadline.", s.Timeouts),
		counter("structdiff_engine_fallbacks_total", "Pairs served a synthesized root-replacement script.", s.Fallbacks),
		counter("structdiff_engine_rollbacks_total", "Transactional patch rollbacks (process-wide).", s.Rollbacks),
		counter("structdiff_merge_merges_total", "Completed three-way merge attempts (process-wide).", s.Merges),
		counter("structdiff_merge_conflicts_total", "Merge conflicts detected, reported or policy-resolved (process-wide).", s.MergeConflicts),
		counter("structdiff_merge_autoresolved_total", "Convergent merge group pairs collapsed to one copy (process-wide).", s.MergeAutoResolved),
		counter("structdiff_edits_total", "Compound edits over all scripts produced.", s.Edits),
		counter("structdiff_source_nodes_total", "Source-tree nodes diffed.", s.SourceNodes),
		counter("structdiff_target_nodes_total", "Target-tree nodes diffed.", s.TargetNodes),
		{
			Name: "structdiff_diff_wall_seconds_total", Kind: telemetry.KindCounter,
			Help:  "Summed per-diff wall time (exceeds elapsed time with concurrent workers).",
			Value: s.DiffWall.Seconds(),
		},
		telemetry.Metric{
			Name: "structdiff_engine_queue_depth", Kind: telemetry.KindGauge,
			Help:  "Pairs submitted to a running batch but not yet picked up by a worker.",
			Value: float64(s.QueueDepth),
		},
		telemetry.Metric{
			Name: "structdiff_engine_worker_capacity_seconds_total", Kind: telemetry.KindCounter,
			Help:  "Elapsed batch time summed across every worker of every batch (the utilization denominator).",
			Value: s.WorkerCapacity.Seconds(),
		},
		ratio("structdiff_engine_utilization_ratio",
			"Busy fraction of the worker pool: summed diff wall time over worker capacity.", s.Utilization),
		counter("structdiff_pool_gets_total", "Scratch-pool checkouts.", s.PoolGets),
		counter("structdiff_pool_misses_total", "Scratch-pool checkouts that allocated fresh state.", s.PoolMisses),
		ratio("structdiff_pool_hit_ratio", "Fraction of scratch-pool checkouts that recycled state.", s.PoolHitRate),
		counter("structdiff_memo_hits_total", "Digest lookups served from the cross-diff memo.", s.MemoHits),
		counter("structdiff_memo_misses_total", "Digest lookups that had to hash.", s.MemoMisses),
		ratio("structdiff_memo_hit_ratio", "Fraction of digest lookups served from the cross-diff memo.", s.MemoHitRate),
		gauge("structdiff_memo_entries", "Digests currently cached in the cross-diff memo.", s.MemoEntries),
		counter("structdiff_store_hits_total", "Nil-alloc ingests served from the whole-tree intern store.", s.StoreHits),
		counter("structdiff_store_misses_total", "Nil-alloc ingests that had to clone.", s.StoreMisses),
		ratio("structdiff_store_hit_ratio", "Fraction of nil-alloc ingests served from the whole-tree intern store.", s.StoreHitRate),
		gauge("structdiff_store_entries", "Distinct trees interned in the whole-tree store.", s.StoreEntries),
		counter("structdiff_ingested_trees_total", "Trees that passed through Ingest.", s.IngestedTrees),
		counter("structdiff_ingested_nodes_total", "Nodes that passed through Ingest.", s.IngestedNodes),
		{
			Name: "structdiff_diff_duration_seconds", Kind: telemetry.KindHistogram,
			Help: "Per-diff wall time.",
			Hist: e.h.latency.Snapshot(), Scale: 1e-9,
		},
	}
	for ph := 0; ph < telemetry.NumPhases; ph++ {
		ms = append(ms, telemetry.Metric{
			Name: "structdiff_phase_duration_seconds", Kind: telemetry.KindHistogram,
			Help:   "Per-phase diff time (the four truediff steps); short-circuited pairs record no phases.",
			Labels: []telemetry.Label{{Key: "phase", Value: telemetry.Phase(ph).String()}},
			Hist:   e.h.phases[ph].Snapshot(), Scale: 1e-9,
		})
	}
	ms = append(ms,
		telemetry.Metric{
			Name: "structdiff_script_edits", Kind: telemetry.KindHistogram,
			Help: "Compound edit count per script (the paper's conciseness metric).",
			Hist: e.h.edits.Snapshot(),
		},
		telemetry.Metric{
			Name: "structdiff_tree_nodes", Kind: telemetry.KindHistogram,
			Help: "Input tree sizes in nodes (two observations per diff).",
			Hist: e.h.nodes.Snapshot(),
		},
		telemetry.Metric{
			Name: "structdiff_quality_reuse_ratio", Kind: telemetry.KindHistogram,
			Help: "Per-diff fraction of target nodes produced by reusing source subtrees.",
			Hist: e.h.reuse.Snapshot(), Scale: 1e-3,
		},
		telemetry.Metric{
			Name: "structdiff_quality_edits_per_changed_node", Kind: telemetry.KindHistogram,
			Help: "Per-diff compound edits per script-touched node (near 1 is concise).",
			Hist: e.h.editsChanged.Snapshot(), Scale: 1e-3,
		},
		telemetry.Metric{
			Name: "structdiff_quality_script_tree_ratio", Kind: telemetry.KindHistogram,
			Help: "Per-diff script size relative to target tree size (compound edits / target nodes).",
			Hist: e.h.scriptTree.Snapshot(), Scale: 1e-3,
		},
		counter("structdiff_quality_changed_nodes_total", "Nodes touched by all scripts produced.", s.ChangedNodes),
		counter("structdiff_quality_baselined_diffs_total", "Diffs that ran the exact minimal-script baseline.", s.BaselinedDiffs),
		ratio("structdiff_quality_optimality_gap",
			"Aggregate optimality gap over baselined diffs: compound edits / exact minimal edits - 1 (can be negative; moves beat the classical edit distance).",
			s.OptimalityGap),
	)
	ms = append(ms, telemetry.SLOMetrics("structdiff_slo_", s.SLO)...)
	return ms
}

// SLOSnapshot evaluates the engine's rolling-window objectives now
// (availability over diffs, diff-latency attainment, burn rates).
func (e *Engine) SLOSnapshot() telemetry.SLOSnapshot {
	return e.slo.Snapshot()
}

// PhaseHistogram returns a snapshot of the engine-level distribution of
// one phase's per-diff durations (in nanoseconds).
func (e *Engine) PhaseHistogram(p telemetry.Phase) telemetry.HistogramSnapshot {
	return e.h.phases[p].Snapshot()
}

// LatencyHistogram returns a snapshot of the per-diff wall-time
// distribution (in nanoseconds).
func (e *Engine) LatencyHistogram() telemetry.HistogramSnapshot {
	return e.h.latency.Snapshot()
}
