// Package hdiff implements a type-safe structural differ in the style of
// Miraldo and Swierstra's hdiff (ICFP 2019), the typed baseline of the
// paper's evaluation. A patch is a tree rewriting: a pattern matched
// against the source tree, binding metavariables to shared subtrees, and a
// template instantiated with those bindings to produce the target tree
// (paper §1: Add(#1, Mul(#2, #3)) ↦ Add(#3, Mul(#2, #1))).
//
// Metavariables are extracted in hdiff's "patience" mode: a subtree may be
// shared only if it occurs exactly once in the source and exactly once in
// the target (and is not a bare leaf), so the binding is unambiguous. All
// other constructors are spelled out in the pattern and template — which is
// why hdiff patches are proportional to the size of the input trees, the
// property the paper's Figure 4 measures.
package hdiff

import (
	"fmt"
	"strings"

	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/uri"
)

// PTree is a pattern/template tree: either a metavariable (Metavar >= 0)
// or a constructor node with literal values and children.
type PTree struct {
	Metavar int // -1 for constructor nodes
	Tag     sig.Tag
	Lits    []any
	Kids    []*PTree
}

// IsMetavar reports whether the node is a metavariable.
func (p *PTree) IsMetavar() bool { return p.Metavar >= 0 }

// String renders the pattern tree; metavariables print as #k.
func (p *PTree) String() string {
	var b strings.Builder
	p.format(&b)
	return b.String()
}

func (p *PTree) format(b *strings.Builder) {
	if p.IsMetavar() {
		fmt.Fprintf(b, "#%d", p.Metavar)
		return
	}
	b.WriteString(string(p.Tag))
	if len(p.Lits) > 0 {
		b.WriteByte('{')
		for i, l := range p.Lits {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%#v", l)
		}
		b.WriteByte('}')
	}
	if len(p.Kids) > 0 {
		b.WriteByte('(')
		for i, k := range p.Kids {
			if i > 0 {
				b.WriteString(", ")
			}
			k.format(b)
		}
		b.WriteByte(')')
	}
}

// Patch is a tree rewriting Pattern ↦ Template.
type Patch struct {
	Pattern  *PTree
	Template *PTree
	// Metavars is the number of distinct metavariables.
	Metavars int
}

// String renders the patch as pattern ↦ template.
func (p *Patch) String() string {
	return p.Pattern.String() + "  ↦  " + p.Template.String()
}

// Size returns the paper's patch-size metric for hdiff: the number of
// constructors mentioned in the tree rewriting (pattern plus template;
// metavariable occurrences do not count).
func (p *Patch) Size() int {
	return countConstructors(p.Pattern) + countConstructors(p.Template)
}

func countConstructors(p *PTree) int {
	if p.IsMetavar() {
		return 0
	}
	n := 1
	for _, k := range p.Kids {
		n += countConstructors(k)
	}
	return n
}

// Options tune metavariable extraction.
type Options struct {
	// MinHeight is the minimum height of a shared subtree. The default 0
	// allows even leaves to be shared when they occur uniquely; repeated
	// leaves (empty list spines, common identifiers) are never shareable
	// in patience mode and remain spelled out.
	MinHeight int
}

// DefaultOptions mirrors hdiff's patience-mode defaults.
func DefaultOptions() Options { return Options{MinHeight: 0} }

// Diff computes the patch transforming src into dst.
func Diff(src, dst *tree.Node, opts Options) *Patch {
	srcCount := make(map[string]int)
	dstCount := make(map[string]int)
	tree.Walk(src, func(n *tree.Node) { srcCount[n.ExactHash()]++ })
	tree.Walk(dst, func(n *tree.Node) { dstCount[n.ExactHash()]++ })

	vars := make(map[string]int) // hash -> metavar id
	next := 0
	shareable := func(n *tree.Node) (int, bool) {
		if n.Height() < opts.MinHeight {
			return 0, false
		}
		h := n.ExactHash()
		if srcCount[h] != 1 || dstCount[h] != 1 {
			return 0, false
		}
		v, ok := vars[h]
		if !ok {
			v = next
			next++
			vars[h] = v
		}
		return v, true
	}

	var extract func(n *tree.Node) *PTree
	extract = func(n *tree.Node) *PTree {
		if v, ok := shareable(n); ok {
			return &PTree{Metavar: v}
		}
		p := &PTree{Metavar: -1, Tag: n.Tag, Lits: n.Lits}
		p.Kids = make([]*PTree, len(n.Kids))
		for i, k := range n.Kids {
			p.Kids[i] = extract(k)
		}
		return p
	}
	return &Patch{Pattern: extract(src), Template: extract(dst), Metavars: next}
}

// Apply matches the patch's pattern against src, binding metavariables, and
// instantiates the template, producing the target tree with fresh URIs from
// alloc. It fails if the pattern does not match.
func Apply(p *Patch, src *tree.Node, sch *sig.Schema, alloc *uri.Allocator) (*tree.Node, error) {
	binding := make(map[int]*tree.Node)
	if err := match(p.Pattern, src, binding); err != nil {
		return nil, err
	}
	return instantiate(p.Template, binding, sch, alloc)
}

func match(pat *PTree, n *tree.Node, binding map[int]*tree.Node) error {
	if pat.IsMetavar() {
		if old, ok := binding[pat.Metavar]; ok && !tree.Equal(old, n) {
			return fmt.Errorf("hdiff: metavariable #%d bound to conflicting subtrees", pat.Metavar)
		}
		binding[pat.Metavar] = n
		return nil
	}
	if pat.Tag != n.Tag {
		return fmt.Errorf("hdiff: pattern mismatch: %s vs %s", pat.Tag, n.Tag)
	}
	if len(pat.Lits) != len(n.Lits) || len(pat.Kids) != len(n.Kids) {
		return fmt.Errorf("hdiff: arity mismatch at %s", pat.Tag)
	}
	for i := range pat.Lits {
		if !tree.LitEqual(pat.Lits[i], n.Lits[i]) {
			return fmt.Errorf("hdiff: literal mismatch at %s: %#v vs %#v", pat.Tag, pat.Lits[i], n.Lits[i])
		}
	}
	for i := range pat.Kids {
		if err := match(pat.Kids[i], n.Kids[i], binding); err != nil {
			return err
		}
	}
	return nil
}

func instantiate(tmpl *PTree, binding map[int]*tree.Node, sch *sig.Schema, alloc *uri.Allocator) (*tree.Node, error) {
	if tmpl.IsMetavar() {
		n, ok := binding[tmpl.Metavar]
		if !ok {
			return nil, fmt.Errorf("hdiff: unbound metavariable #%d", tmpl.Metavar)
		}
		return n, nil
	}
	kids := make([]*tree.Node, len(tmpl.Kids))
	for i, k := range tmpl.Kids {
		kid, err := instantiate(k, binding, sch, alloc)
		if err != nil {
			return nil, err
		}
		kids[i] = kid
	}
	return tree.New(sch, alloc, tmpl.Tag, kids, tmpl.Lits)
}
