package hdiff

import (
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/tree"
)

// TestPaperIntroPatch reproduces the hdiff patch shown in paper §1:
// (Add(#1, Mul(#2, #3)) ↦ Add(#3, Mul(#2, #1))).
func TestPaperIntroPatch(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Add,
		b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b")),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"), b.MustN(exp.Var, "d")))
	dst := b.MustN(exp.Add,
		b.MustN(exp.Var, "d"),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"),
			b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b"))))

	p := Diff(src, dst, DefaultOptions())
	if p.Metavars != 3 {
		t.Errorf("metavars = %d, want 3 (Sub(a,b), c, d)", p.Metavars)
	}
	// Pattern and template each mention exactly Add and Mul.
	if got := p.Size(); got != 4 {
		t.Errorf("patch size = %d, want 4:\n%s", got, p)
	}
	str := p.String()
	if !strings.Contains(str, "↦") || strings.Count(str, "Add") != 2 || strings.Count(str, "Mul") != 2 {
		t.Errorf("patch rendering = %s", str)
	}

	out, err := Apply(p, src, b.Schema(), b.Alloc())
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !tree.Equal(out, dst) {
		t.Errorf("apply produced %s, want %s", out, dst)
	}
}

func TestRepeatedSubtreesNotShared(t *testing.T) {
	b := exp.NewBuilder()
	// Num(2) occurs twice in dst: ambiguous, must be spelled out.
	src := b.MustN(exp.Add, b.MustN(exp.Num, 2), b.MustN(exp.Var, "x"))
	dst := b.MustN(exp.Add, b.MustN(exp.Num, 2), b.MustN(exp.Num, 2))
	p := Diff(src, dst, DefaultOptions())
	// Var x is unique to src: spelled in the pattern. Num(2) repeated in
	// dst: spelled everywhere. Only nothing is shared.
	if p.Metavars != 0 {
		t.Errorf("metavars = %d, want 0:\n%s", p.Metavars, p)
	}
	out, err := Apply(p, src, b.Schema(), b.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(out, dst) {
		t.Error("apply incorrect")
	}
}

func TestPatchSizeProportionalToTree(t *testing.T) {
	// A one-literal change deep in a tree with repeated leaves forces the
	// patch to spell out a large spine: hdiff patches grow with tree size
	// even for small edits (the paper's core criticism).
	sizes := []int{50, 200, 800}
	var last int
	for _, size := range sizes {
		g := exp.NewGen(int64(size))
		src := g.Tree(size)
		dst := g.Mutate(src)
		p := Diff(src, dst, DefaultOptions())
		if p.Size() < 1 {
			t.Fatalf("size %d: empty patch", size)
		}
		if p.Size() < last/8 {
			t.Logf("size %d: patch %d (previous %d)", size, p.Size(), last)
		}
		last = p.Size()
	}
}

func TestApplyCorrectnessRandom(t *testing.T) {
	sch := exp.Schema()
	for seed := int64(0); seed < 15; seed++ {
		g := exp.NewGen(seed)
		src := g.Tree(40)
		dst := g.MutateN(src, 3)
		p := Diff(src, dst, DefaultOptions())
		out, err := Apply(p, src, sch, g.Alloc())
		if err != nil {
			t.Fatalf("seed %d: apply: %v\npatch: %s", seed, err, p)
		}
		if !tree.Equal(out, dst) {
			t.Fatalf("seed %d: apply produced wrong tree", seed)
		}
	}
}

func TestIdenticalTreesShareRoot(t *testing.T) {
	g := exp.NewGen(1)
	src := g.Tree(30)
	dst := tree.Clone(src, g.Alloc(), tree.SHA256)
	p := Diff(src, dst, DefaultOptions())
	if !p.Pattern.IsMetavar() || !p.Template.IsMetavar() {
		t.Errorf("identical trees should collapse to a single metavariable:\n%s", p)
	}
	if p.Size() != 0 {
		t.Errorf("size = %d, want 0", p.Size())
	}
	out, err := Apply(p, src, g.Schema(), g.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(out, dst) {
		t.Error("apply incorrect")
	}
}

func TestApplyRejectsMismatchedSource(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Add, b.MustN(exp.Num, 1), b.MustN(exp.Num, 1))
	dst := b.MustN(exp.Sub, b.MustN(exp.Num, 1), b.MustN(exp.Num, 1))
	p := Diff(src, dst, DefaultOptions())
	other := b.MustN(exp.Mul, b.MustN(exp.Num, 5), b.MustN(exp.Num, 1))
	if _, err := Apply(p, other, b.Schema(), b.Alloc()); err == nil {
		t.Error("applying to a non-matching source should fail")
	}
}

func TestMinHeightExcludesLeaves(t *testing.T) {
	b := exp.NewBuilder()
	src := b.MustN(exp.Add, b.MustN(exp.Var, "unique1"), b.MustN(exp.Var, "x"))
	dst := b.MustN(exp.Sub, b.MustN(exp.Var, "unique1"), b.MustN(exp.Var, "x"))
	withLeaves := Diff(src, dst, Options{MinHeight: 0})
	if withLeaves.Metavars != 2 {
		t.Errorf("MinHeight 0: metavars = %d, want 2", withLeaves.Metavars)
	}
	noLeaves := Diff(src, dst, Options{MinHeight: 1})
	if noLeaves.Metavars != 0 {
		t.Errorf("MinHeight 1: metavars = %d, want 0", noLeaves.Metavars)
	}
}
