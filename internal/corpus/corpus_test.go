package corpus

import (
	"testing"

	"repro/internal/mtree"
	"repro/internal/pylang"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/truediff"
)

func smallOptions(seed int64) Options {
	return Options{
		Seed:              seed,
		Files:             5,
		Commits:           15,
		MaxFilesPerCommit: 3,
		MinNodes:          120,
		MaxNodes:          500,
		MaxEditsPerFile:   3,
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	h1 := Generate(smallOptions(7))
	h2 := Generate(smallOptions(7))
	c1, c2 := h1.Changes(), h2.Changes()
	if len(c1) != len(c2) {
		t.Fatalf("change counts differ: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i].Path != c2[i].Path {
			t.Fatalf("change %d path differs", i)
		}
		if !tree.Equal(c1[i].Before, c2[i].Before) || !tree.Equal(c1[i].After, c2[i].After) {
			t.Fatalf("change %d trees differ", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	h1 := Generate(smallOptions(1))
	h2 := Generate(smallOptions(2))
	same := true
	c1, c2 := h1.Changes(), h2.Changes()
	if len(c1) != len(c2) {
		same = false
	} else {
		for i := range c1 {
			if !tree.Equal(c1[i].Before, c2[i].Before) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical histories")
	}
}

func TestChangesAreRealEdits(t *testing.T) {
	h := Generate(smallOptions(3))
	changes := h.Changes()
	if len(changes) == 0 {
		t.Fatal("no changes generated")
	}
	for i, fc := range changes {
		if tree.Equal(fc.Before, fc.After) {
			t.Errorf("change %d (%v) is a no-op", i, fc.Edits)
		}
		if len(fc.Edits) == 0 {
			t.Errorf("change %d records no edit kinds", i)
		}
	}
}

func TestVersionsChainWithinFiles(t *testing.T) {
	h := Generate(smallOptions(4))
	last := make(map[string]*tree.Node)
	for _, c := range h.Commits {
		for _, fc := range c.Files {
			if prev, ok := last[fc.Path]; ok {
				if !tree.Equal(prev, fc.Before) {
					t.Fatalf("commit %d: before-tree of %s does not chain", c.Seq, fc.Path)
				}
			}
			last[fc.Path] = fc.After
		}
	}
	for path, final := range last {
		if !tree.Equal(h.Final[path], final) {
			t.Errorf("final tree of %s does not match last change", path)
		}
	}
}

func TestGeneratedModulesRenderAndReparse(t *testing.T) {
	h := Generate(smallOptions(5))
	for i, fc := range h.Changes() {
		before, after := RenderChange(fc)
		for v, src := range map[string]string{"before": before, "after": after} {
			mod, _, err := pylang.ParseNew(src)
			if err != nil {
				t.Fatalf("change %d %s does not reparse: %v\n%s", i, v, err, src)
			}
			want := fc.Before
			if v == "after" {
				want = fc.After
			}
			if !tree.Equal(mod, want) {
				t.Fatalf("change %d %s round trip diverged", i, v)
			}
		}
	}
}

// TestCorpusDrivesTruediff is the end-to-end smoke test of the evaluation
// pipeline: every generated change yields a well-typed, correct script.
func TestCorpusDrivesTruediff(t *testing.T) {
	h := Generate(smallOptions(6))
	sch := h.Factory.Schema()
	d := truediff.New(sch)
	for i, fc := range h.Changes() {
		res, err := d.Diff(fc.Before, fc.After, h.Factory.Alloc())
		if err != nil {
			t.Fatalf("change %d: %v", i, err)
		}
		if err := truechange.WellTyped(sch, res.Script); err != nil {
			t.Fatalf("change %d: ill-typed script: %v", i, err)
		}
		mt, err := mtree.FromTree(sch, fc.Before)
		if err != nil {
			t.Fatal(err)
		}
		if err := mt.Patch(res.Script); err != nil {
			t.Fatalf("change %d: patch: %v", i, err)
		}
		if !mt.EqualTree(fc.After) {
			t.Fatalf("change %d: patched ≠ after", i)
		}
		// Conciseness sanity: a handful of edits must not rewrite the file.
		if res.Script.EditCount() > fc.Before.Size()/2 {
			t.Errorf("change %d (%v): %d edits for a %d-node file",
				i, fc.Edits, res.Script.EditCount(), fc.Before.Size())
		}
	}
}

func TestEditKindCoverage(t *testing.T) {
	h := Generate(Options{
		Seed: 9, Files: 6, Commits: 120, MaxFilesPerCommit: 3,
		MinNodes: 150, MaxNodes: 400, MaxEditsPerFile: 3,
	})
	seen := make(map[EditKind]int)
	for _, fc := range h.Changes() {
		for _, k := range fc.Edits {
			seen[k]++
		}
	}
	for k := EditKind(0); k < editKinds; k++ {
		if seen[k] == 0 {
			t.Errorf("edit kind %s never occurred in 120 commits", k)
		}
	}
}

func TestInvalidOptionsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid options should panic")
		}
	}()
	Generate(Options{Files: 0})
}

func TestEditKindStrings(t *testing.T) {
	for k := EditKind(0); k < editKinds; k++ {
		if k.String() == "unknown" {
			t.Errorf("edit kind %d lacks a name", k)
		}
	}
	if editKinds.String() != "unknown" {
		t.Error("sentinel should be unknown")
	}
}

// TestRenderReparseAcrossSeeds stresses the text round trip over several
// independent histories.
func TestRenderReparseAcrossSeeds(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		h := Generate(Options{
			Seed: seed, Files: 3, Commits: 10, MaxFilesPerCommit: 2,
			MinNodes: 150, MaxNodes: 450, MaxEditsPerFile: 3,
		})
		for i, fc := range h.Changes() {
			after := pylang.Render(fc.After)
			mod, _, err := pylang.ParseNew(after)
			if err != nil {
				t.Fatalf("seed %d change %d: %v\n%s", seed, i, err, after)
			}
			if !tree.Equal(mod, fc.After) {
				t.Fatalf("seed %d change %d: round trip diverged", seed, i)
			}
		}
	}
}
