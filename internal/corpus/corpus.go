package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/pylang"
	"repro/internal/tree"
)

// FileChange is one changed file within a commit: the typed trees before
// and after, plus the edit kinds applied.
type FileChange struct {
	Path   string
	Before *tree.Node
	After  *tree.Node
	Edits  []EditKind
}

// Commit is one synthetic commit: a set of changed files.
type Commit struct {
	Seq   int
	Files []FileChange
}

// Options parameterize history generation. The defaults (via
// DefaultOptions) are scaled to run the full evaluation pipeline in
// seconds; raise Commits and file sizes to approach the paper's corpus.
type Options struct {
	Seed int64
	// Files is the number of modules in the repository.
	Files int
	// Commits is the number of commits to generate.
	Commits int
	// MaxFilesPerCommit bounds how many files one commit touches.
	MaxFilesPerCommit int
	// MinNodes/MaxNodes bound the initial module sizes (AST node counts).
	MinNodes, MaxNodes int
	// MaxEditsPerFile bounds the number of edits applied to one file in
	// one commit (at least 1).
	MaxEditsPerFile int
}

// DefaultOptions returns a laptop-scale corpus configuration.
func DefaultOptions() Options {
	return Options{
		Seed:              1,
		Files:             20,
		Commits:           100,
		MaxFilesPerCommit: 4,
		MinNodes:          300,
		MaxNodes:          2500,
		MaxEditsPerFile:   4,
	}
}

// History is a generated repository history.
type History struct {
	Factory *pylang.Factory
	Commits []Commit
	// Final holds the current version of every file after all commits.
	Final map[string]*tree.Node
}

// Changes flattens the history into the list of all file changes, the unit
// of the paper's evaluation (2393 changed files across 500 commits).
func (h *History) Changes() []FileChange {
	var out []FileChange
	for _, c := range h.Commits {
		out = append(out, c.Files...)
	}
	return out
}

// Generate builds a synthetic repository and evolves it through commits.
// The same Options always yield the same history.
func Generate(opts Options) *History {
	if opts.Files <= 0 || opts.Commits < 0 || opts.MaxFilesPerCommit <= 0 ||
		opts.MinNodes <= 0 || opts.MaxNodes < opts.MinNodes || opts.MaxEditsPerFile <= 0 {
		panic("corpus: invalid options")
	}
	g := &gen{rng: rand.New(rand.NewSource(opts.Seed)), f: pylang.NewFactory()}

	files := make(map[string]*tree.Node, opts.Files)
	paths := make([]string, opts.Files)
	for i := range paths {
		path := fmt.Sprintf("%s/%s_%d.py", g.pick(moduleNames), g.pick(moduleNames), i)
		paths[i] = path
		size := opts.MinNodes + g.rng.Intn(opts.MaxNodes-opts.MinNodes+1)
		files[path] = g.module(size)
	}

	h := &History{Factory: g.f, Final: files}
	for c := 0; c < opts.Commits; c++ {
		commit := Commit{Seq: c}
		n := 1 + g.rng.Intn(opts.MaxFilesPerCommit)
		seen := make(map[string]bool, n)
		for i := 0; i < n; i++ {
			path := paths[g.rng.Intn(len(paths))]
			if seen[path] {
				continue
			}
			seen[path] = true
			before := files[path]
			after := before
			edits := 1 + g.rng.Intn(opts.MaxEditsPerFile)
			kinds := make([]EditKind, 0, edits)
			for e := 0; e < edits; e++ {
				var kind EditKind
				after, kind = g.mutate(after)
				kinds = append(kinds, kind)
			}
			commit.Files = append(commit.Files, FileChange{
				Path:   path,
				Before: before,
				After:  after,
				Edits:  kinds,
			})
			files[path] = after
		}
		h.Commits = append(h.Commits, commit)
	}
	return h
}

// RenderChange renders both versions of a change to Python source; useful
// for the CLI, the examples, and parser-in-the-loop tests.
func RenderChange(fc FileChange) (before, after string) {
	return pylang.Render(fc.Before), pylang.Render(fc.After)
}
