// Package corpus generates a synthetic repository history that stands in
// for the paper's evaluation corpus (the 2393 Python files changed across
// 500 commits of the keras repository, §6). A seeded generator produces
// realistic Python modules — imports, constants, classes with methods,
// free functions — and evolves them through commits applying realistic
// edit kinds: literal tweaks, renames, statement insertion and deletion,
// statement reordering, function moves, parameter additions, and wrapping
// in conditionals. Every (before, after) file pair exercises the same code
// paths the paper measured: concise diffs for small edits, subtree moves,
// and literal-only changes.
package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/pylang"
	"repro/internal/tree"
)

// gen carries the module generator's state.
type gen struct {
	rng *rand.Rand
	f   *pylang.Factory
}

var (
	moduleNames = []string{"layers", "ops", "utils", "engine", "backend",
		"metrics", "losses", "optim", "callbacks", "preprocessing"}
	funcVerbs = []string{"build", "compute", "normalize", "update", "apply",
		"resolve", "encode", "decode", "validate", "merge", "split", "reduce"}
	funcNouns = []string{"weights", "gradients", "outputs", "shape", "mask",
		"state", "config", "batch", "tensor", "kernel", "bias", "cache"}
	varNames = []string{"x", "y", "result", "total", "value", "item", "acc",
		"output", "inputs", "tmp", "count", "idx", "scale", "delta"}
	attrNames  = []string{"shape", "dtype", "size", "name", "units", "rank"}
	classNames = []string{"Layer", "Model", "Dense", "Conv", "Pool", "Norm",
		"Optimizer", "Callback", "Metric", "Loss"}
	strValues = []string{"relu", "sigmoid", "same", "valid", "channels_last",
		"float32", "glorot", "zeros", "ones", "default"}
)

func (g *gen) pick(xs []string) string { return xs[g.rng.Intn(len(xs))] }

func (g *gen) funcName() string { return g.pick(funcVerbs) + "_" + g.pick(funcNouns) }

// expr generates a random expression of bounded depth.
func (g *gen) expr(depth int) *tree.Node {
	f := g.f
	if depth <= 0 {
		switch g.rng.Intn(6) {
		case 0:
			return f.Int(int64(g.rng.Intn(128)))
		case 1:
			return f.Float(float64(g.rng.Intn(1000)) / 100)
		case 2:
			return f.Str(g.pick(strValues))
		case 3:
			return f.Name(g.pick(varNames))
		case 4:
			return f.Attribute(f.Name("self"), g.pick(attrNames))
		default:
			return f.Name(g.pick(funcNouns))
		}
	}
	switch g.rng.Intn(11) {
	case 0:
		return f.BinOp(g.pick([]string{"+", "-", "*", "/"}), g.expr(depth-1), g.expr(depth-1))
	case 1:
		return f.Call(f.Name(g.funcName()), f.ExprList(g.expr(depth-1)))
	case 2:
		return f.Call(f.Attribute(f.Name("self"), g.funcName()),
			f.ExprList(g.expr(depth-1), f.KwArg(g.pick(attrNames), g.expr(depth-1))))
	case 3:
		return f.Subscript(f.Name(g.pick(varNames)), g.expr(depth-1))
	case 4:
		return f.Compare(g.pick([]string{"<", ">", "==", "!=", "<=", ">="}),
			g.expr(depth-1), g.expr(depth-1))
	case 5:
		return f.List(f.ExprList(g.expr(depth-1), g.expr(depth-1)))
	case 6:
		return f.Attribute(g.expr(depth-1), g.pick(attrNames))
	case 7:
		return f.Tuple(f.ExprList(g.expr(depth-1), g.expr(depth-1)))
	case 8:
		return f.IfExp(g.expr(depth-1), g.expr(depth-1), g.expr(depth-1))
	case 9:
		x := g.pick(varNames)
		return f.ListComp(
			f.Call(f.Name(g.funcName()), f.ExprList(f.Name(x))),
			f.Name(x), f.Name(g.pick(varNames)), f.None())
	default:
		return f.Lambda(f.ParamList(f.Param(g.pick(varNames))), g.expr(depth-1))
	}
}

// stmt generates a random statement; depth bounds nested suites.
func (g *gen) stmt(depth int) *tree.Node {
	f := g.f
	choice := g.rng.Intn(13)
	if depth <= 0 && choice >= 6 {
		choice = g.rng.Intn(6)
	}
	switch choice {
	case 0, 1:
		return f.Assign(f.Name(g.pick(varNames)), g.expr(2))
	case 2:
		return f.AugAssign(g.pick([]string{"+", "-", "*"}), f.Name(g.pick(varNames)), g.expr(1))
	case 3:
		return f.ExprStmt(f.Call(f.Attribute(f.Name("self"), g.funcName()), f.ExprList(g.expr(1))))
	case 4:
		return f.Return(g.expr(2))
	case 5:
		return f.Assign(f.Attribute(f.Name("self"), g.pick(attrNames)), g.expr(2))
	case 6:
		return f.If(g.expr(1), g.suite(depth-1, 1+g.rng.Intn(3)), g.maybeElse(depth-1))
	case 7:
		return f.For(f.Name(g.pick(varNames)),
			f.Call(f.Name("range"), f.ExprList(g.expr(0))),
			g.suite(depth-1, 1+g.rng.Intn(3)))
	case 8:
		return f.While(g.expr(1), g.suite(depth-1, 1+g.rng.Intn(2)))
	case 9:
		return f.If(f.Compare("==", f.Name(g.pick(varNames)), f.None()),
			f.StmtList(f.Raise(f.Call(f.Name("ValueError"), f.ExprList(f.Str("invalid "+g.pick(funcNouns)))))),
			f.StmtList())
	case 10:
		return f.With(f.Call(f.Name("open"), f.ExprList(f.Str(g.pick(funcNouns)+".json"))), "fh",
			g.suite(depth-1, 1+g.rng.Intn(2)))
	case 11:
		return f.Try(
			g.suite(depth-1, 1+g.rng.Intn(2)),
			f.HandlerList(f.Handler(f.Name("ValueError"), "err",
				f.StmtList(f.ExprStmt(f.Call(f.Name("log"), f.ExprList(f.Name("err"))))))),
			f.StmtList(),
			g.maybeFinally(depth-1))
	default:
		return f.Assert(f.Compare(">=", f.Name(g.pick(varNames)), f.Int(0)),
			f.Str("invalid "+g.pick(funcNouns)))
	}
}

func (g *gen) maybeFinally(depth int) *tree.Node {
	if g.rng.Intn(2) == 0 {
		return g.f.StmtList()
	}
	return g.suite(depth, 1)
}

func (g *gen) maybeElse(depth int) *tree.Node {
	if g.rng.Intn(2) == 0 {
		return g.f.StmtList()
	}
	return g.suite(depth, 1+g.rng.Intn(2))
}

func (g *gen) suite(depth, n int) *tree.Node {
	stmts := make([]*tree.Node, n)
	for i := range stmts {
		stmts[i] = g.stmt(depth)
	}
	return g.f.StmtList(stmts...)
}

// funcDef generates a function or method with parameters and a body.
func (g *gen) funcDef(method bool) *tree.Node {
	f := g.f
	var params []*tree.Node
	if method {
		params = append(params, f.Param("self"))
	}
	for i := 0; i < 1+g.rng.Intn(3); i++ {
		name := g.pick(varNames)
		if g.rng.Intn(3) == 0 {
			params = append(params, f.DefaultParam(name, g.expr(0)))
		} else {
			params = append(params, f.Param(name))
		}
	}
	if g.rng.Intn(5) == 0 {
		params = append(params, f.StarParam("args"))
	}
	if g.rng.Intn(5) == 0 {
		params = append(params, f.KwStarParam("kwargs"))
	}
	bodyLen := 2 + g.rng.Intn(6)
	body := make([]*tree.Node, 0, bodyLen+1)
	for i := 0; i < bodyLen; i++ {
		body = append(body, g.stmt(2))
	}
	if g.rng.Intn(2) == 0 {
		body = append(body, f.Return(g.expr(1)))
	}
	def := f.FuncDef(g.funcName(), f.ParamList(params...), f.StmtList(body...))
	if g.rng.Intn(6) == 0 {
		return f.Decorated(f.ExprList(f.Name(g.pick([]string{"cached", "staticmethod", "property", "deprecated"}))), def)
	}
	return def
}

func (g *gen) classDef() *tree.Node {
	f := g.f
	name := g.pick(classNames) + fmt.Sprintf("%d", g.rng.Intn(90)+10)
	var bases []*tree.Node
	if g.rng.Intn(2) == 0 {
		bases = append(bases, f.Name(g.pick(classNames)))
	}
	methods := make([]*tree.Node, 1+g.rng.Intn(4))
	for i := range methods {
		methods[i] = g.funcDef(true)
	}
	return f.ClassDef(name, f.ExprList(bases...), f.StmtList(methods...))
}

// module generates one module of roughly the requested node count.
func (g *gen) module(targetNodes int) *tree.Node {
	f := g.f
	var stmts []*tree.Node
	for i := 0; i < 1+g.rng.Intn(3); i++ {
		stmts = append(stmts, f.Import(g.pick(moduleNames)))
	}
	for i := 0; i < 1+g.rng.Intn(2); i++ {
		stmts = append(stmts, f.FromImport(g.pick(moduleNames)+"."+g.pick(moduleNames), g.pick(classNames)))
	}
	for i := 0; i < 1+g.rng.Intn(3); i++ {
		stmts = append(stmts, f.Assign(f.Name("DEFAULT_"+g.pick(funcNouns)), g.expr(0)))
	}
	total := 0
	for _, s := range stmts {
		total += s.Size()
	}
	for total < targetNodes {
		var s *tree.Node
		if g.rng.Intn(3) == 0 {
			s = g.classDef()
		} else {
			s = g.funcDef(false)
		}
		stmts = append(stmts, s)
		total += s.Size()
	}
	return f.Module(f.StmtList(stmts...))
}
