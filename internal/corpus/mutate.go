package corpus

import (
	"repro/internal/pylang"
	"repro/internal/tree"
)

// EditKind classifies the realistic edit operations commits apply.
type EditKind uint8

// The edit kinds, distributed roughly like small source-code commits.
const (
	EditLiteral     EditKind = iota // tweak a numeric or string literal
	EditRename                      // rename a function, class, or parameter
	EditInsertStmt                  // insert a statement into a suite
	EditDeleteStmt                  // delete a statement from a suite
	EditMoveDef                     // move a top-level definition elsewhere
	EditWrapIf                      // wrap a statement in a conditional
	EditAddParam                    // append a defaulted parameter
	EditSwapStmts                   // swap two adjacent statements
	EditReplaceExpr                 // replace an expression subtree
	editKinds
)

func (k EditKind) String() string {
	switch k {
	case EditLiteral:
		return "literal"
	case EditRename:
		return "rename"
	case EditInsertStmt:
		return "insert-stmt"
	case EditDeleteStmt:
		return "delete-stmt"
	case EditMoveDef:
		return "move-def"
	case EditWrapIf:
		return "wrap-if"
	case EditAddParam:
		return "add-param"
	case EditSwapStmts:
		return "swap-stmts"
	case EditReplaceExpr:
		return "replace-expr"
	default:
		return "unknown"
	}
}

// indexWhere returns the preorder indices of nodes satisfying pred.
func indexWhere(t *tree.Node, pred func(*tree.Node) bool) []int {
	var out []int
	idx := 0
	tree.Walk(t, func(n *tree.Node) {
		if pred(n) {
			out = append(out, idx)
		}
		idx++
	})
	return out
}

// rebuildAt deep-copies t with fresh URIs, replacing the subtree at
// preorder index target by repl(subtree). It models a reparsed document:
// the after-tree shares no node objects with the before-tree.
func (g *gen) rebuildAt(t *tree.Node, target int, repl func(*tree.Node) *tree.Node) *tree.Node {
	f := g.f
	idx := 0
	var walk func(n *tree.Node) *tree.Node
	walk = func(n *tree.Node) *tree.Node {
		here := idx
		idx++
		if here == target {
			idx += n.Size() - 1
			return repl(n)
		}
		kids := make([]*tree.Node, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = walk(k)
		}
		out, err := tree.New(f.Schema(), f.Alloc(), n.Tag, kids, append([]any(nil), n.Lits...))
		if err != nil {
			panic(err)
		}
		return out
	}
	return walk(t)
}

func (g *gen) clone(n *tree.Node) *tree.Node {
	return tree.Clone(n, g.f.Alloc(), tree.SHA256)
}

// isStmtSpine reports spine nodes of statement lists (insertion points).
func isStmtSpine(n *tree.Node) bool {
	return n.Tag == pylang.TagStmtCons || n.Tag == pylang.TagStmtNil
}

func hasLits(n *tree.Node) bool { return len(n.Lits) > 0 }

// mutate applies one random edit of a random kind to the module, returning
// the mutated copy and the kind applied. If the chosen kind has no
// applicable site, another kind is tried; a module always admits at least
// a literal insertion, so mutate always succeeds.
func (g *gen) mutate(mod *tree.Node) (*tree.Node, EditKind) {
	order := g.rng.Perm(int(editKinds))
	for _, k := range order {
		kind := EditKind(k)
		if out := g.applyEdit(mod, kind); out != nil {
			return out, kind
		}
	}
	// Fallback: insert a pass statement at the top of the module.
	f := g.f
	return g.rebuildAt(mod, 1, func(spine *tree.Node) *tree.Node {
		return f.StmtList(append([]*tree.Node{f.Pass()}, cloneAll(g, pylang.ListElems(spine))...)...)
	}), EditInsertStmt
}

func cloneAll(g *gen, ns []*tree.Node) []*tree.Node {
	out := make([]*tree.Node, len(ns))
	for i, n := range ns {
		out[i] = g.clone(n)
	}
	return out
}

// applyEdit attempts one edit of the given kind; nil if inapplicable.
func (g *gen) applyEdit(mod *tree.Node, kind EditKind) *tree.Node {
	f := g.f
	pickSite := func(sites []int) (int, bool) {
		if len(sites) == 0 {
			return 0, false
		}
		return sites[g.rng.Intn(len(sites))], true
	}

	switch kind {
	case EditLiteral:
		site, ok := pickSite(indexWhere(mod, func(n *tree.Node) bool {
			return n.Tag == pylang.TagNumInt || n.Tag == pylang.TagNumFloat || n.Tag == pylang.TagStr
		}))
		if !ok {
			return nil
		}
		return g.rebuildAt(mod, site, func(n *tree.Node) *tree.Node {
			switch n.Tag {
			case pylang.TagNumInt:
				return f.Int(n.Lits[0].(int64) + int64(g.rng.Intn(9)+1))
			case pylang.TagNumFloat:
				return f.Float(n.Lits[0].(float64) * 1.5)
			default:
				return f.Str(g.pick(strValues))
			}
		})

	case EditRename:
		site, ok := pickSite(indexWhere(mod, func(n *tree.Node) bool {
			return (n.Tag == pylang.TagFuncDef || n.Tag == pylang.TagClassDef || n.Tag == pylang.TagParam) && hasLits(n)
		}))
		if !ok {
			return nil
		}
		return g.rebuildAt(mod, site, func(n *tree.Node) *tree.Node {
			kids := cloneAll(g, n.Kids)
			lits := append([]any(nil), n.Lits...)
			lits[0] = lits[0].(string) + "_v2"
			out, err := tree.New(f.Schema(), f.Alloc(), n.Tag, kids, lits)
			if err != nil {
				panic(err)
			}
			return out
		})

	case EditInsertStmt:
		site, ok := pickSite(indexWhere(mod, isStmtSpine))
		if !ok {
			return nil
		}
		return g.rebuildAt(mod, site, func(spine *tree.Node) *tree.Node {
			rest := cloneAll(g, pylang.ListElems(spine))
			stmts := append([]*tree.Node{g.stmt(1)}, rest...)
			return f.StmtList(stmts...)
		})

	case EditDeleteStmt:
		// Never delete the last statement of a suite: the renderer would
		// have to emit a pass there, breaking the text round trip.
		site, ok := pickSite(indexWhere(mod, func(n *tree.Node) bool {
			return n.Tag == pylang.TagStmtCons && n.Kids[1].Tag == pylang.TagStmtCons
		}))
		if !ok {
			return nil
		}
		return g.rebuildAt(mod, site, func(spine *tree.Node) *tree.Node {
			return g.clone(spine.Kids[1]) // drop the head, keep the tail
		})

	case EditMoveDef:
		// Move a top-level definition to another position in the module.
		body := pylang.ListElems(mod.Kids[0])
		var defs []int
		for i, s := range body {
			if s.Tag == pylang.TagFuncDef || s.Tag == pylang.TagClassDef {
				defs = append(defs, i)
			}
		}
		if len(defs) < 1 || len(body) < 2 {
			return nil
		}
		from := defs[g.rng.Intn(len(defs))]
		to := g.rng.Intn(len(body))
		if to == from {
			to = (to + 1) % len(body)
		}
		moved := body[from]
		rest := make([]*tree.Node, 0, len(body))
		for i, s := range body {
			if i != from {
				rest = append(rest, s)
			}
		}
		if to > len(rest) {
			to = len(rest)
		}
		newBody := make([]*tree.Node, 0, len(body))
		newBody = append(newBody, rest[:to]...)
		newBody = append(newBody, moved)
		newBody = append(newBody, rest[to:]...)
		return f.Module(f.StmtList(cloneAll(g, newBody)...))

	case EditWrapIf:
		site, ok := pickSite(indexWhere(mod, func(n *tree.Node) bool {
			srt, _ := f.Schema().ResultSort(n.Tag)
			return srt == pylang.SortStmt && n.Tag != pylang.TagFuncDef && n.Tag != pylang.TagClassDef
		}))
		if !ok {
			return nil
		}
		return g.rebuildAt(mod, site, func(n *tree.Node) *tree.Node {
			return f.If(g.expr(1), f.StmtList(g.clone(n)), f.StmtList())
		})

	case EditAddParam:
		site, ok := pickSite(indexWhere(mod, func(n *tree.Node) bool {
			return n.Tag == pylang.TagParamNil
		}))
		if !ok {
			return nil
		}
		return g.rebuildAt(mod, site, func(n *tree.Node) *tree.Node {
			return f.ParamList(f.DefaultParam(g.pick(varNames)+"_opt", g.expr(0)))
		})

	case EditSwapStmts:
		site, ok := pickSite(indexWhere(mod, func(n *tree.Node) bool {
			return n.Tag == pylang.TagStmtCons && n.Kids[1].Tag == pylang.TagStmtCons
		}))
		if !ok {
			return nil
		}
		return g.rebuildAt(mod, site, func(spine *tree.Node) *tree.Node {
			first := g.clone(spine.Kids[0])
			second := g.clone(spine.Kids[1].Kids[0])
			tail := g.clone(spine.Kids[1].Kids[1])
			out, err := tree.New(f.Schema(), f.Alloc(), pylang.TagStmtCons,
				[]*tree.Node{second, mustCons(f, first, tail)}, nil)
			if err != nil {
				panic(err)
			}
			return out
		})

	case EditReplaceExpr:
		// Positions with a restricted grammar cannot hold arbitrary
		// expressions: loop and comprehension targets (names only) and
		// decorator expressions (dotted names and calls only).
		restricted := restrictedExprSites(mod)
		sites := indexWhere(mod, func(n *tree.Node) bool {
			srt, _ := f.Schema().ResultSort(n.Tag)
			return srt == pylang.SortExpr && n.Tag != pylang.TagKwArg && n.Tag != pylang.TagSliceExpr
		})
		allowed := sites[:0]
		for _, i := range sites {
			if !restricted[i] {
				allowed = append(allowed, i)
			}
		}
		site, ok := pickSite(allowed)
		if !ok {
			return nil
		}
		return g.rebuildAt(mod, site, func(n *tree.Node) *tree.Node {
			return g.expr(1 + g.rng.Intn(2))
		})

	default:
		return nil
	}
}

// restrictedExprSites returns the preorder indices of subtrees that only
// admit a restricted expression grammar when rendered: for/comprehension
// targets and decorator lists.
func restrictedExprSites(mod *tree.Node) map[int]bool {
	out := make(map[int]bool)
	idx := 0
	var walk func(n *tree.Node, restricted bool)
	walk = func(n *tree.Node, restricted bool) {
		if restricted {
			out[idx] = true
		}
		idx++
		for i, k := range n.Kids {
			kidRestricted := restricted
			switch {
			case n.Tag == pylang.TagFor && i == 0:
				kidRestricted = true
			case n.Tag == pylang.TagListComp && i == 1:
				kidRestricted = true
			case n.Tag == pylang.TagDecorated && i == 0:
				kidRestricted = true
			}
			walk(k, kidRestricted)
		}
	}
	walk(mod, false)
	return out
}

func mustCons(f *pylang.Factory, head, tail *tree.Node) *tree.Node {
	out, err := tree.New(f.Schema(), f.Alloc(), pylang.TagStmtCons, []*tree.Node{head, tail}, nil)
	if err != nil {
		panic(err)
	}
	return out
}
