package corpus

import (
	"math/rand"

	"repro/internal/pylang"
	"repro/internal/tree"
)

// TreeGen exposes the corpus's Python module generator and its semantic
// mutation operators for reuse outside history generation — the
// property-based testing harness (internal/proptest) drives it with its
// own deterministic RNG to produce typed (before, after) pairs whose
// edits mirror the corpus edit kinds.
type TreeGen struct {
	g gen
}

// NewTreeGen returns a generator of random Python modules and semantic
// mutations over the factory's schema, driven entirely by rng: the same
// rng state always yields the same trees.
func NewTreeGen(rng *rand.Rand, f *pylang.Factory) *TreeGen {
	return &TreeGen{g: gen{rng: rng, f: f}}
}

// Module generates one random module of roughly targetNodes AST nodes.
func (t *TreeGen) Module(targetNodes int) *tree.Node { return t.g.module(targetNodes) }

// Mutate applies one random semantic edit of a random kind to the module,
// returning the mutated copy (fresh URIs throughout, modelling a reparse)
// and the kind applied. It always succeeds.
func (t *TreeGen) Mutate(mod *tree.Node) (*tree.Node, EditKind) { return t.g.mutate(mod) }
