package diffserve

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/derrors"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/sig"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/uri"
)

// Config parameterizes a Server. The zero value serves every registered
// language with engine defaults and moderate admission limits.
type Config struct {
	// Langs selects the languages to serve (names from Languages()). Empty
	// serves all registered languages.
	Langs []string
	// Workers is each language engine's worker-pool size; zero selects
	// GOMAXPROCS.
	Workers int
	// DiffTimeout bounds each individual diff (engine.Config.DiffTimeout);
	// an overrunning diff fails alone with a timeout error while the rest
	// of its batch completes. Zero disables the bound.
	DiffTimeout time.Duration
	// CheckpointEvery overrides the cancellation-checkpoint interval.
	CheckpointEvery int
	// DisableFallback turns off graceful degradation. By default the
	// service runs engines with FallbackRootReplace: a pair that panics or
	// times out is answered with a coarse but compliant root-replacement
	// script (stats flag Fallback set) instead of an error.
	DisableFallback bool

	// BatchWindow is how long the coalescer holds the first request of a
	// window for companions before dispatching (default 2ms — the latency
	// a lone request pays for batching). BatchMax caps a window's size
	// (default 64).
	BatchWindow time.Duration
	BatchMax    int

	// MaxQueue bounds each language's admission queue; it is also the
	// saturation threshold: a request that would make pending jobs plus
	// the engine's QueueDepth reach MaxQueue is shed with 429 and a
	// Retry-After estimated from observed diff latency. Default 256.
	MaxQueue int
	// TenantLimit caps one tenant's concurrently admitted requests
	// (identified by the X-Diffd-Tenant header; absent means the shared
	// "anonymous" tenant). Excess is shed with 429. Default 32; negative
	// disables the per-tenant cap.
	TenantLimit int
	// MaxBody bounds request bodies in bytes (default 32MiB).
	MaxBody int64
	// ReadyFraction is the backlog fraction of MaxQueue at or above which
	// /readyz answers 503 (the load balancer's cue to route elsewhere)
	// while /v1/* still serves: readiness degrades before shedding starts.
	// Default 0.9; negative disables saturation-based unreadiness.
	ReadyFraction float64

	// SlowDiffThreshold enables the engines' slow-diff log; Trace, when
	// non-nil, receives one JSONL record per diff, correlated with the
	// request's distributed trace. Faults arms deterministic fault
	// injection inside the engines (tests only).
	SlowDiffThreshold time.Duration
	Trace             *telemetry.TraceWriter
	Faults            *faultinject.Injector

	// Spans, when non-nil, turns on distributed tracing: each diff/batch
	// request runs under a "diffserve.request" span continuing the caller's
	// W3C traceparent header (or opening a fresh trace), with queue-wait,
	// engine, and phase child spans delivered to the sink. Nil disables
	// span recording; trace IDs still propagate for correlation.
	Spans telemetry.SpanSink
	// Logger, when non-nil, receives structured records (panics at error
	// level here, plus the engines' failure/fallback/slow-diff records)
	// instead of Logf. Logf remains the fallback for free-form lines.
	Logger *slog.Logger
	// FlightRecent and FlightSlowest size the /debug/diffz flight
	// recorder: the last-N ring and the slowest-K retention set. Zero
	// selects 128 and 16.
	FlightRecent  int
	FlightSlowest int
	// SLO parameterizes the service's rolling-window objectives over HTTP
	// requests (availability = non-5xx; latency objective on request wall
	// time). Zero values select telemetry.SLOConfig defaults. The shed
	// Retry-After estimate derives from this window's p95.
	SLO telemetry.SLOConfig

	// Logf receives server lifecycle and error lines; nil uses the
	// standard logger.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if len(c.Langs) == 0 {
		c.Langs = Languages()
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.TenantLimit == 0 {
		c.TenantLimit = 32
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 32 << 20
	}
	if c.ReadyFraction == 0 {
		c.ReadyFraction = 0.9
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// langService is one served language: its schema, its engine (own worker
// pool, intern store, URI space), its coalescing batcher, and the ref
// table mapping hex content digests to interned trees.
type langService struct {
	name string
	sch  *sig.Schema
	eng  *engine.Engine
	b    *batcher

	refMu sync.RWMutex
	refs  map[string]*tree.Node
}

// Server is the diff service: an http.Handler exposing the engine over
// versioned JSON, with coalescing, admission control, and graceful drain.
// Create one with NewServer; it is ready immediately.
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	langs     map[string]*langService
	langNames []string
	m         svcMetrics

	// draining flips once, in Drain; drainMu orders job submission
	// against queue closure (submitters hold it shared, Drain holds it
	// exclusively while closing the queues, so a send on a closed channel
	// cannot happen).
	draining atomic.Bool
	drainMu  sync.RWMutex

	// lameduck flips in Lameduck: /readyz answers 503 (stop routing here)
	// while /v1/* keeps serving — the grace period before Drain in which
	// load balancers observe unreadiness and move traffic away.
	lameduck atomic.Bool

	tenantMu sync.Mutex
	tenants  map[string]int

	flight *telemetry.FlightRecorder
	slo    *telemetry.SLO
}

// NewServer builds a server from the configuration. Unknown language names
// in cfg.Langs are an error.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		langs:   make(map[string]*langService, len(cfg.Langs)),
		tenants: make(map[string]int),
		flight:  telemetry.NewFlightRecorder(cfg.FlightRecent, cfg.FlightSlowest),
		slo:     telemetry.NewSLO(cfg.SLO),
	}

	for _, name := range cfg.Langs {
		sch := SchemaFor(name)
		if sch == nil {
			return nil, fmt.Errorf("diffserve: unknown language %q (have %v)", name, Languages())
		}
		ecfg := engine.Config{
			Workers:           cfg.Workers,
			DiffTimeout:       cfg.DiffTimeout,
			CheckpointEvery:   cfg.CheckpointEvery,
			SlowDiffThreshold: cfg.SlowDiffThreshold,
			Spans:             cfg.Spans,
			Logger:            cfg.Logger,
			Faults:            cfg.Faults,
		}
		if !cfg.DisableFallback {
			ecfg.Fallback = engine.FallbackRootReplace
		}
		// Every diff lands in the flight recorder; the JSONL sink is
		// optional on top.
		tw := cfg.Trace
		ecfg.Observer = func(ev engine.DiffEvent) {
			rec := ev.TraceRecord()
			s.flight.Record(rec)
			if tw != nil {
				_ = tw.Write(rec)
			}
		}
		ls := &langService{
			name: name,
			sch:  sch,
			eng:  engine.New(sch, ecfg),
			refs: make(map[string]*tree.Node),
		}
		ls.b = newBatcher(ls.eng, cfg.BatchWindow, cfg.BatchMax, cfg.MaxQueue,
			s.draining.Load,
			func(size int) { s.m.batches.Add(1); s.m.batchSize.Record(int64(size)) },
			func() { s.m.pending.Add(-1) },
			cfg.Spans,
		)
		s.langs[name] = ls
		s.langNames = append(s.langNames, name)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/diff", s.handleDiff)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.Handle("GET /metrics", telemetry.Handler(s))
	s.mux.Handle("GET /debug/diffz", s.flight.Handler())
	return s, nil
}

// ServeHTTP dispatches with a last-resort panic recovery: engine worker
// isolation already contains per-diff panics, so anything reaching here is
// a handler bug — answered with 500, logged, and the process keeps
// serving.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			if s.cfg.Logger != nil {
				s.cfg.Logger.LogAttrs(r.Context(), slog.LevelError, "panic serving request",
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Any("panic", v))
			} else {
				s.cfg.Logf("diffserve: panic serving %s %s: %v", r.Method, r.URL.Path, v)
			}
			s.m.serverErrors.Add(1)
			writeError(w, http.StatusInternalServerError, WireError{
				Kind: ErrKindInternal, Message: fmt.Sprintf("internal error: %v", v),
			})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Lameduck marks the server unready without refusing work: /readyz flips
// to 503 so load balancers stop routing here, while /v1/* keeps serving
// whatever still arrives. Call it on the shutdown signal, wait one
// health-check interval for the balancers to notice, then Drain — the
// ordering that turns a restart into zero shed requests. Idempotent.
func (s *Server) Lameduck() { s.lameduck.Store(true) }

// Drain shuts the service down gracefully: new and queued-but-unstarted
// requests are answered with a clean draining error (HTTP 503), batches
// already handed to an engine run to completion, and the engines are
// closed (releasing their intern stores) once their batchers stop. The
// context bounds how long Drain waits for in-flight work; on expiry the
// engines are still closed (Close itself waits for active batches, so an
// expired ctx only skips the orderly queue flush). Drain is idempotent;
// concurrent calls all block until the first finishes.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	if !s.draining.CompareAndSwap(false, true) {
		s.drainMu.Unlock()
		return nil
	}
	for _, name := range s.langNames {
		close(s.langs[name].b.jobs)
	}
	s.drainMu.Unlock()

	var err error
	for _, name := range s.langNames {
		select {
		case <-s.langs[name].b.stopped:
		case <-ctx.Done():
			err = fmt.Errorf("diffserve: drain: %w", context.Cause(ctx))
		}
	}
	for _, name := range s.langNames {
		if cerr := s.langs[name].eng.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Snapshot returns every language engine's counters.
func (s *Server) Snapshot() map[string]engine.Snapshot {
	out := make(map[string]engine.Snapshot, len(s.langs))
	for name, ls := range s.langs {
		out[name] = ls.eng.Snapshot()
	}
	return out
}

// traceContext establishes the distributed-trace context a request runs
// under and opens its server span. The caller's W3C traceparent header is
// continued when present and well-formed; otherwise a fresh trace starts.
// With no span sink configured the span is nil (every Span method is
// nil-safe) but the returned context is still valid, so responses, logs,
// and trace records correlate even when nothing records spans. Callers
// must End the span (nil-safe) when the request completes.
func (s *Server) traceContext(r *http.Request, name string) (*telemetry.Span, telemetry.SpanContext) {
	parent, _ := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
	span := telemetry.StartSpan(s.cfg.Spans, parent, name)
	if span != nil {
		return span, span.Context()
	}
	if parent.Valid() {
		// Propagate the caller's context unchanged: diffs run "under" the
		// caller's span as far as correlation is concerned.
		return nil, parent
	}
	return nil, telemetry.NewSpanContext()
}

// observe finishes one request's service-level accounting: the latency
// histogram and the SLO window (5xx counts against availability; shed and
// drain answers are deliberate load management, not failures).
func (s *Server) observe(start time.Time, status int) {
	d := time.Since(start)
	s.m.latency.Record(d.Nanoseconds())
	s.slo.Observe(d, status < http.StatusInternalServerError)
}

// --- admission control ---

// admit runs the gatekeeping common to diff and batch requests: drain
// refusal, the per-tenant concurrency cap, and queue backpressure against
// pending jobs plus the engine's own QueueDepth. jobs is how many queue
// slots the request wants (1 for a diff, len(pairs) for a batch). On
// success the tenant slot is held; release it with the returned func.
func (s *Server) admit(r *http.Request, ls *langService, jobs int) (release func(), herr *httpError) {
	if s.draining.Load() {
		s.m.drainRejects.Add(1)
		return nil, &httpError{
			status: http.StatusServiceUnavailable,
			werr:   WireError{Kind: ErrKindDraining, Message: "server is draining"},
		}
	}
	tenant := r.Header.Get("X-Diffd-Tenant")
	if tenant == "" {
		tenant = "anonymous"
	}
	if s.cfg.TenantLimit > 0 {
		s.tenantMu.Lock()
		if s.tenants[tenant] >= s.cfg.TenantLimit {
			s.tenantMu.Unlock()
			s.m.sheds.Add(1)
			return nil, &httpError{
				status:     http.StatusTooManyRequests,
				retryAfter: s.retryAfter(1),
				werr: WireError{Kind: ErrKindSaturated,
					Message: fmt.Sprintf("tenant %q is at its concurrency limit (%d)", tenant, s.cfg.TenantLimit)},
			}
		}
		s.tenants[tenant]++
		s.tenantMu.Unlock()
		release = func() {
			s.tenantMu.Lock()
			if s.tenants[tenant]--; s.tenants[tenant] <= 0 {
				delete(s.tenants, tenant)
			}
			s.tenantMu.Unlock()
		}
	} else {
		release = func() {}
	}
	backlog := int(s.m.pending.Load()) + int(ls.eng.Snapshot().QueueDepth)
	if backlog+jobs > s.cfg.MaxQueue {
		release()
		s.m.sheds.Add(1)
		return nil, &httpError{
			status:     http.StatusTooManyRequests,
			retryAfter: s.retryAfter(backlog),
			werr: WireError{Kind: ErrKindSaturated,
				Message: fmt.Sprintf("queue full (%d backlogged, limit %d)", backlog, s.cfg.MaxQueue)},
		}
	}
	return release, nil
}

// retryAfter estimates when a shed caller should come back: the backlog
// drains at roughly workers/p95 jobs per second, where p95 is the
// request-latency quantile of the SLO's rolling window — a tail-biased
// estimate that, unlike the all-time mean, recovers after a transient
// spike ages out of the window and reflects load the shed caller will
// actually contend with. Clamped to [1s, 30s]; with no history yet the
// floor applies.
func (s *Server) retryAfter(backlog int) time.Duration {
	p95 := s.slo.Snapshot().P95
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	// Float arithmetic with an early cap: a pathological p95 (the top
	// histogram bucket) times a deep backlog must saturate, not overflow.
	est := time.Duration(min(float64(p95)*float64(backlog)/float64(workers), float64(30*time.Second)))
	if est < time.Second {
		est = time.Second
	}
	return est.Round(time.Second)
}

// submit queues one pair on the language's coalescer. It holds drainMu
// shared so Drain cannot close the queue mid-send; a full queue sheds.
func (s *Server) submit(ls *langService, p engine.Pair) (*job, *httpError) {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		s.m.drainRejects.Add(1)
		return nil, &httpError{
			status: http.StatusServiceUnavailable,
			werr:   WireError{Kind: ErrKindDraining, Message: "server is draining"},
		}
	}
	j := &job{pair: p, enqueued: time.Now(), done: make(chan engine.PairResult, 1)}
	select {
	case ls.b.jobs <- j:
		s.m.pending.Add(1)
		return j, nil
	default:
		s.m.sheds.Add(1)
		return nil, &httpError{
			status:     http.StatusTooManyRequests,
			retryAfter: s.retryAfter(s.cfg.MaxQueue),
			werr: WireError{Kind: ErrKindSaturated,
				Message: fmt.Sprintf("queue full (limit %d)", s.cfg.MaxQueue)},
		}
	}
}

// --- tree resolution ---

// hexRef is the wire name of an interned tree: the hex of its exact
// (structure+literals) content digest, which is URI-independent, so
// client- and server-side copies of one tree agree on it.
func hexRef(n *tree.Node) string { return hex.EncodeToString([]byte(n.ExactHash())) }

// resolveTree turns a TreeInput into an engine-interned tree: a Ref is a
// table lookup (miss → unknown_ref, the client's cue to re-send the
// S-expression), an S-expression is decoded against the language schema
// and interned via nil-alloc Ingest, which dedupes content-identical trees
// and registers the canonical copy under its ref for later requests.
func (s *Server) resolveTree(ls *langService, in TreeInput, what string) (*tree.Node, string, *httpError) {
	if in.Ref != "" {
		ls.refMu.RLock()
		n := ls.refs[in.Ref]
		ls.refMu.RUnlock()
		if n == nil {
			return nil, "", &httpError{
				status: http.StatusNotFound,
				werr:   WireError{Kind: ErrKindUnknownRef, Message: fmt.Sprintf("%s: unknown ref %q", what, in.Ref)},
			}
		}
		return n, in.Ref, nil
	}
	if in.SExpr == "" {
		return nil, "", &httpError{
			status: http.StatusBadRequest,
			werr:   WireError{Kind: ErrKindBadRequest, Message: fmt.Sprintf("%s: neither sexpr nor ref given", what)},
		}
	}
	n, err := tree.DecodeSExpr(in.SExpr, ls.sch, uri.NewAllocator())
	if err != nil {
		return nil, "", &httpError{
			status: http.StatusBadRequest,
			werr:   WireError{Kind: ErrKindBadRequest, Message: fmt.Sprintf("%s: %v", what, err)},
		}
	}
	c := ls.eng.Ingest(n, nil)
	ref := hexRef(c)
	ls.refMu.Lock()
	ls.refs[ref] = c
	ls.refMu.Unlock()
	return c, ref, nil
}

// --- handlers ---

// httpError is a request failure ready to write: HTTP status, typed wire
// error, optional Retry-After.
type httpError struct {
	status     int
	retryAfter time.Duration
	werr       WireError
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.requests.Add(1)
	span, rctx := s.traceContext(r, "diffserve.request")
	defer span.End()
	status := http.StatusOK
	defer func() { s.observe(start, status) }()

	var req DiffRequest
	ls, herr := s.decodeInto(r, &req, func() (string, string) { return req.SchemaVersion, req.Lang })
	if herr != nil {
		status = herr.status
		s.writeHTTPError(w, herr)
		return
	}
	span.SetAttr("lang", req.Lang)
	release, herr := s.admit(r, ls, 1)
	if herr != nil {
		status = herr.status
		s.writeHTTPError(w, herr)
		return
	}
	defer release()

	resp := DiffResponse{SchemaVersion: WireVersion, TraceID: rctx.Trace.String()}
	src, srcRef, herr := s.resolveTree(ls, req.Source, "source")
	if herr == nil {
		var dst *tree.Node
		dst, resp.TargetRef, herr = s.resolveTree(ls, req.Target, "target")
		if herr == nil {
			resp.SourceRef = srcRef
			j, serr := s.submit(ls, engine.Pair{Source: src, Target: dst, Label: req.Label, Trace: rctx})
			if serr != nil {
				status = serr.status
				s.writeHTTPError(w, serr)
				return
			}
			select {
			case pr := <-j.done:
				s.fillResult(&resp, pr, req.WantPatched)
			case <-r.Context().Done():
				// The job still runs (its window is shared); only this
				// response is abandoned.
				status = 499 // client closed request; observed, not written
				s.m.clientErrors.Add(1)
				return
			}
		}
	}
	if herr != nil {
		status = herr.status
		s.writeHTTPError(w, herr)
		return
	}
	if resp.Error != nil {
		status = errStatus(resp.Error.Kind)
	}
	s.countStatus(status)
	writeJSON(w, status, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.requests.Add(1)
	span, rctx := s.traceContext(r, "diffserve.request")
	defer span.End()
	status := http.StatusOK
	defer func() { s.observe(start, status) }()

	var req BatchRequest
	ls, herr := s.decodeInto(r, &req, func() (string, string) { return req.SchemaVersion, req.Lang })
	if herr != nil {
		status = herr.status
		s.writeHTTPError(w, herr)
		return
	}
	span.SetAttr("lang", req.Lang)
	span.SetAttr("pairs", len(req.Pairs))
	if len(req.Pairs) == 0 {
		status = http.StatusBadRequest
		s.writeHTTPError(w, &httpError{
			status: http.StatusBadRequest,
			werr:   WireError{Kind: ErrKindBadRequest, Message: "batch has no pairs"},
		})
		return
	}
	release, herr := s.admit(r, ls, len(req.Pairs))
	if herr != nil {
		status = herr.status
		s.writeHTTPError(w, herr)
		return
	}
	defer release()

	resp := BatchResponse{SchemaVersion: WireVersion, TraceID: rctx.Trace.String()}
	resp.Results = make([]DiffResponse, len(req.Pairs))
	jobs := make([]*job, len(req.Pairs))
	for i := range req.Pairs {
		bp := &req.Pairs[i]
		out := &resp.Results[i]
		out.SchemaVersion = WireVersion
		src, srcRef, herr := s.resolveTree(ls, bp.Source, fmt.Sprintf("pair %d source", i))
		if herr != nil {
			out.Error = &herr.werr
			continue
		}
		dst, dstRef, herr := s.resolveTree(ls, bp.Target, fmt.Sprintf("pair %d target", i))
		if herr != nil {
			out.Error = &herr.werr
			continue
		}
		out.SourceRef, out.TargetRef = srcRef, dstRef
		label := bp.Label
		if label == "" {
			label = fmt.Sprintf("batch#%d", i)
		}
		j, serr := s.submit(ls, engine.Pair{Source: src, Target: dst, Label: label, Trace: rctx})
		if serr != nil {
			out.Error = &serr.werr
			continue
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		if j == nil {
			continue
		}
		select {
		case pr := <-j.done:
			s.fillResult(&resp.Results[i], pr, req.Pairs[i].WantPatched)
		case <-r.Context().Done():
			status = 499 // client closed request; observed, not written
			s.m.clientErrors.Add(1)
			return
		}
	}
	s.countStatus(http.StatusOK)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SnapshotResponse{
		SchemaVersion: WireVersion,
		Draining:      s.draining.Load(),
		Langs:         s.Snapshot(),
	})
}

// handleHealthz is process liveness and nothing else: it answers 200 as
// long as the process can serve HTTP — including while draining, because
// a draining process is alive and must not be killed mid-drain by a
// liveness probe. Routing decisions belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

// handleReadyz is the routing signal: 503 while draining, in lame-duck,
// or saturated past ReadyFraction of MaxQueue — in each case the right
// move for a load balancer is to send traffic elsewhere, before this
// server has to shed it with 429s. The body names the reason.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.lameduck.Load():
		http.Error(w, "lameduck", http.StatusServiceUnavailable)
	case s.saturated():
		http.Error(w, "saturated", http.StatusServiceUnavailable)
	default:
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ready\n")
	}
}

// saturated reports whether the aggregate backlog has crossed the
// readiness threshold (ReadyFraction of MaxQueue) — below the shed point
// on purpose, so routing reacts before admission control must.
func (s *Server) saturated() bool {
	if s.cfg.ReadyFraction < 0 {
		return false
	}
	backlog := int(s.m.pending.Load())
	for _, name := range s.langNames {
		backlog += int(s.langs[name].eng.Snapshot().QueueDepth)
	}
	return float64(backlog) >= s.cfg.ReadyFraction*float64(s.cfg.MaxQueue)
}

// decodeInto reads and validates the shared request prelude: body size
// cap, JSON decode, schema version, language lookup.
func (s *Server) decodeInto(r *http.Request, dst any, meta func() (version, lang string)) (*langService, *httpError) {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBody)
	if err := json.NewDecoder(body).Decode(dst); err != nil {
		return nil, &httpError{
			status: http.StatusBadRequest,
			werr:   WireError{Kind: ErrKindBadRequest, Message: fmt.Sprintf("decode request: %v", err)},
		}
	}
	version, lang := meta()
	if err := CheckWireVersion(version); err != nil {
		return nil, &httpError{
			status: http.StatusBadRequest,
			werr:   WireError{Kind: ErrKindBadRequest, Message: err.Error()},
		}
	}
	ls := s.langs[lang]
	if ls == nil {
		return nil, &httpError{
			status: http.StatusNotFound,
			werr:   WireError{Kind: ErrKindUnknownLang, Message: fmt.Sprintf("unknown lang %q (serving %v)", lang, s.langNames)},
		}
	}
	return ls, nil
}

// fillResult converts one engine PairResult into the wire response slot:
// script + stats on success (including fallback results, which succeed
// with Stats.Fallback set), a typed error otherwise.
func (s *Server) fillResult(out *DiffResponse, pr engine.PairResult, wantPatched bool) {
	if pr.Err != nil {
		out.Error = &WireError{Kind: errKind(pr.Err), Message: pr.Err.Error()}
		return
	}
	ws, err := EncodeScript(pr.Result.Script)
	if err != nil {
		out.Error = &WireError{Kind: ErrKindInternal, Message: err.Error()}
		return
	}
	out.Script = ws
	out.Stats = StatsToWire(pr.Stats)
	if wantPatched && pr.Result.Patched != nil {
		out.PatchedSExpr = tree.EncodeSExpr(pr.Result.Patched)
	}
}

// errKind classifies an engine error into its wire kind.
func errKind(err error) string {
	switch {
	case errors.Is(err, derrors.ErrDiffPanic):
		return ErrKindPanic
	case errors.Is(err, derrors.ErrDiffTimeout):
		return ErrKindTimeout
	case errors.Is(err, derrors.ErrIllTyped):
		return ErrKindIllTyped
	case errors.Is(err, derrors.ErrServiceUnavailable), errors.Is(err, derrors.ErrEngineClosed):
		return ErrKindDraining
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ErrKindCancelled
	case errors.Is(err, derrors.ErrNilTree), errors.Is(err, derrors.ErrSchemaMismatch):
		return ErrKindBadRequest
	default:
		return ErrKindInternal
	}
}

// errStatus maps a wire error kind of a per-pair failure to the HTTP
// status of a single-diff response.
func errStatus(kind string) int {
	switch kind {
	case ErrKindBadRequest, ErrKindUnknownLang, ErrKindUnknownRef:
		return http.StatusBadRequest
	case ErrKindSaturated:
		return http.StatusTooManyRequests
	case ErrKindDraining:
		return http.StatusServiceUnavailable
	case ErrKindTimeout:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) countStatus(status int) {
	switch {
	case status < 400:
		s.m.ok.Add(1)
	case status < 500:
		s.m.clientErrors.Add(1)
	default:
		s.m.serverErrors.Add(1)
	}
}

func (s *Server) writeHTTPError(w http.ResponseWriter, herr *httpError) {
	// Sheds and drain rejects are counted where they are decided; count
	// the rest by class here.
	switch herr.werr.Kind {
	case ErrKindSaturated, ErrKindDraining:
	default:
		s.countStatus(herr.status)
	}
	if herr.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(herr.retryAfter.Seconds()))))
	}
	writeError(w, herr.status, herr.werr)
}

func writeError(w http.ResponseWriter, status int, werr WireError) {
	writeJSON(w, status, ErrorResponse{SchemaVersion: WireVersion, Error: werr})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
