package diffserve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/derrors"
	"repro/internal/engine"
	"repro/internal/telemetry"
)

// job is one diff request queued for coalescing: the pair to diff and a
// one-slot channel its result is delivered on. The slot means delivery
// never blocks, so a caller that gave up (request context cancelled) does
// not wedge the batcher. enqueued timestamps admission so the queue span
// covers the wait from submit to flush.
type job struct {
	pair        engine.Pair
	wantPatched bool
	enqueued    time.Time
	done        chan engine.PairResult
}

// batcher coalesces concurrently arriving jobs into engine DiffBatch
// calls: the first job to arrive opens a window; jobs arriving within
// Config.BatchWindow join it, up to Config.BatchMax; then the whole window
// runs as one batch, amortizing worker fan-out and letting the engine's
// cross-diff caches see related requests together. A lone request pays at
// most one window of added latency.
type batcher struct {
	eng    *engine.Engine
	window time.Duration
	max    int

	// jobs is the admission queue: its capacity is the backpressure bound
	// (Config.MaxQueue); the server sheds when a non-blocking send fails.
	jobs chan *job
	// stopped is closed when run exits (after the queue is closed and
	// every remaining job has been answered).
	stopped chan struct{}

	// draining, when set (by Server.Drain, before closing jobs), makes the
	// batcher answer queued-but-unstarted jobs with a clean shutdown error
	// instead of diffing them. Batches already handed to the engine run to
	// completion regardless.
	draining func() bool
	// onBatch and onDone feed the service metrics: one call per engine
	// batch with its size, one call per job answered.
	onBatch func(size int)
	onDone  func()
	// spans, when non-nil, records one "diffserve.queue" span per job at
	// flush time covering its wait in the coalescing window.
	spans telemetry.SpanSink
}

func newBatcher(eng *engine.Engine, window time.Duration, max, queue int, draining func() bool, onBatch func(int), onDone func(), spans telemetry.SpanSink) *batcher {
	b := &batcher{
		eng:      eng,
		window:   window,
		max:      max,
		jobs:     make(chan *job, queue),
		stopped:  make(chan struct{}),
		draining: draining,
		onBatch:  onBatch,
		onDone:   onDone,
		spans:    spans,
	}
	go b.run()
	return b
}

func (b *batcher) run() {
	defer close(b.stopped)
	for first := range b.jobs {
		if b.draining() {
			b.fail(first, drainingError())
			continue
		}
		batch := []*job{first}
		timer := time.NewTimer(b.window)
	collect:
		for len(batch) < b.max {
			select {
			case j, ok := <-b.jobs:
				if !ok {
					break collect
				}
				batch = append(batch, j)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		b.flush(batch)
	}
}

// flush runs one coalesced window as an engine batch. The batch runs under
// context.Background(), not any single request's context: the window is
// shared, so one caller hanging up must not abort its neighbours' diffs.
// Per-pair deadlines still apply through the engine's DiffTimeout.
func (b *batcher) flush(batch []*job) {
	if b.draining() {
		for _, j := range batch {
			b.fail(j, drainingError())
		}
		return
	}
	pairs := make([]engine.Pair, len(batch))
	now := time.Now()
	for i, j := range batch {
		// The queue span back-dates to admission, closing as the batch is
		// handed to the engine: it measures coalescing-window wait.
		sp := telemetry.StartSpanAt(b.spans, j.pair.Trace, "diffserve.queue", j.enqueued)
		sp.SetAttr("batch_size", len(batch))
		sp.EndAt(now)
		pairs[i] = j.pair
	}
	b.onBatch(len(batch))
	results, err := b.eng.DiffBatch(context.Background(), pairs)
	if err != nil {
		for _, j := range batch {
			b.fail(j, err)
		}
		return
	}
	for i, j := range batch {
		j.done <- results[i]
		b.onDone()
	}
}

func (b *batcher) fail(j *job, err error) {
	j.done <- engine.PairResult{Err: err}
	b.onDone()
}

func drainingError() error {
	return fmt.Errorf("diffserve: %w: server is draining", derrors.ErrServiceUnavailable)
}
