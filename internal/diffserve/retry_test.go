package diffserve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/derrors"
	"repro/internal/exp"
	"repro/internal/telemetry"
	"repro/internal/uri"
)

// --- backoff ---

func TestBackoffJitterBounds(t *testing.T) {
	r := newRetrier(RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 1})
	for n := 0; n < 6; n++ {
		ceil := min(80*time.Millisecond, 10*time.Millisecond<<uint(n))
		for i := 0; i < 200; i++ {
			if d := r.backoff(n, 0); d < 0 || d > ceil {
				t.Fatalf("backoff(%d) = %v, want in [0, %v]", n, d, ceil)
			}
		}
	}
}

func TestBackoffHonorsServerAdvice(t *testing.T) {
	r := newRetrier(RetryPolicy{Seed: 1})
	// Advice above the jitter window overrides it: the server's estimate
	// of its own backlog beats the client's guess.
	if d := r.backoff(0, 500*time.Millisecond); d != 500*time.Millisecond {
		t.Fatalf("backoff with 500ms advice = %v, want exactly 500ms", d)
	}
	// Zero advice (no Retry-After) leaves the jittered value alone.
	if d := r.backoff(0, 0); d > 50*time.Millisecond {
		t.Fatalf("backoff(0) with no advice = %v, want within the 50ms base window", d)
	}
}

// --- retryable classification ---

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"saturated", wireErr(WireError{Kind: ErrKindSaturated, Message: "q"}), true},
		{"draining", wireErr(WireError{Kind: ErrKindDraining, Message: "d"}), true},
		{"internal", wireErr(WireError{Kind: ErrKindInternal, Message: "i"}), true},
		{"bad_request", wireErr(WireError{Kind: ErrKindBadRequest, Message: "b"}), false},
		{"unknown_ref", wireErr(WireError{Kind: ErrKindUnknownRef, Message: "r"}), false},
		{"panic", wireErr(WireError{Kind: ErrKindPanic, Message: "p"}), false},
		{"timeout", wireErr(WireError{Kind: ErrKindTimeout, Message: "t"}), false},
		{"cancelled", wireErr(WireError{Kind: ErrKindCancelled, Message: "c"}), false},
		{"transport", fmt.Errorf("diffserve: %w: connection refused", derrors.ErrServiceUnavailable), true},
		{"caller ctx", fmt.Errorf("diffserve: %w", context.Canceled), false},
		{"caller deadline", fmt.Errorf("diffserve: %w", context.DeadlineExceeded), false},
		{"untyped", errors.New("mystery"), false},
	}
	for _, c := range cases {
		if got := retryable(c.err); got != c.want {
			t.Errorf("retryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// --- Retry-After extraction ---

func mkErr(status int, retryAfterHeader, body string) error {
	resp := &http.Response{StatusCode: status, Status: fmt.Sprintf("%d test", status), Header: http.Header{}}
	if retryAfterHeader != "" {
		resp.Header.Set("Retry-After", retryAfterHeader)
	}
	return errorFromResponse(resp, []byte(body))
}

func TestRetryAfterBodyBeatsHeader(t *testing.T) {
	err := mkErr(429, "7", `{"schema_version":"1.0","error":{"kind":"saturated","message":"q","retry_after_ms":2500}}`)
	if !errors.Is(err, derrors.ErrServiceUnavailable) {
		t.Fatalf("err = %v, want ErrServiceUnavailable", err)
	}
	if got := RetryAfter(err); got != 2500*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 2.5s (body retry_after_ms wins over header)", got)
	}
}

func TestRetryAfterHeaderFallback(t *testing.T) {
	err := mkErr(429, "7", `{"schema_version":"1.0","error":{"kind":"saturated","message":"q"}}`)
	if got := RetryAfter(err); got != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s (header fallback when body has none)", got)
	}
}

func TestRetryAfterGarbageHeaders(t *testing.T) {
	for _, h := range []string{"0", "-3", "garbage", "Fri, 07 Aug 2026 12:00:00 GMT", ""} {
		err := mkErr(429, h, `{"schema_version":"1.0","error":{"kind":"saturated","message":"q"}}`)
		if got := RetryAfter(err); got != 0 {
			t.Errorf("RetryAfter with header %q = %v, want 0 (no advice)", h, got)
		}
	}
}

func TestErrorFromResponseNonWireBodies(t *testing.T) {
	// An intermediary's 503 with a plain-text body is a transient,
	// retryable failure carrying the header's advice.
	err := mkErr(503, "2", "upstream connect error")
	if !errors.Is(err, derrors.ErrServiceUnavailable) || !retryable(err) {
		t.Fatalf("intermediary 503 = %v, want retryable ErrServiceUnavailable", err)
	}
	if got := RetryAfter(err); got != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want 2s", got)
	}
	// A plain 404 is permanent: no retry, no advice.
	err = mkErr(404, "", "not found")
	if retryable(err) || RetryAfter(err) != 0 {
		t.Fatalf("plain 404 = %v (retryable=%v), want permanent with no advice", err, retryable(err))
	}
}

// TestServerRetryAfterClamp pins the server side of the advice: the
// SLO-derived estimate clamps to [1s, 30s].
func TestServerRetryAfterClamp(t *testing.T) {
	srv, _ := testServer(t, Config{Langs: []string{"exp"}, Workers: 2})
	// No latency history: the floor applies regardless of backlog.
	if got := srv.retryAfter(1000); got != time.Second {
		t.Fatalf("retryAfter with empty window = %v, want the 1s floor", got)
	}
	for i := 0; i < 200; i++ {
		srv.slo.Observe(2*time.Second, true)
	}
	// Deep backlog at a 2s p95: the cap applies.
	if got := srv.retryAfter(100000); got != 30*time.Second {
		t.Fatalf("retryAfter with deep backlog = %v, want the 30s cap", got)
	}
	// Moderate backlog: inside the clamp, above the floor.
	if got := srv.retryAfter(10); got <= time.Second || got > 30*time.Second {
		t.Fatalf("retryAfter(10) = %v, want inside (1s, 30s]", got)
	}
}

// --- circuit breaker state machine ---

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	var opens atomic.Uint64
	b := newBreaker(BreakerConfig{Window: time.Minute, MinRequests: 4, FailureRatio: 0.5, OpenFor: 5 * time.Second, Now: clock}, &opens)

	// Below the volume floor nothing trips, however bad the ratio.
	for i := 0; i < 3; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("closed breaker refused attempt %d: %v", i, err)
		}
		b.observe(time.Millisecond, false)
	}
	if b.State() != breakerClosed {
		t.Fatal("breaker tripped below MinRequests")
	}
	// The 4th failure reaches the floor with a 100% failure ratio: open.
	b.observe(time.Millisecond, false)
	if b.State() != breakerOpen || opens.Load() != 1 {
		t.Fatalf("state=%d opens=%d after 4 failures, want open/1", b.State(), opens.Load())
	}
	if err := b.allow(); !errors.Is(err, derrors.ErrCircuitOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	now = now.Add(6 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open breaker refused the probe: %v", err)
	}
	if err := b.allow(); !errors.Is(err, derrors.ErrCircuitOpen) {
		t.Fatalf("half-open breaker admitted a second concurrent call: %v", err)
	}
	// Probe failure re-opens.
	b.observe(time.Millisecond, false)
	if b.State() != breakerOpen || opens.Load() != 2 {
		t.Fatalf("state=%d opens=%d after failed probe, want open/2", b.State(), opens.Load())
	}

	// Next cooldown: probe succeeds, circuit closes with a fresh window.
	now = now.Add(6 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open breaker refused the second probe: %v", err)
	}
	b.observe(time.Millisecond, true)
	if b.State() != breakerClosed {
		t.Fatal("successful probe did not close the circuit")
	}
	// Forgiveness: the pre-open failures are gone; three fresh failures sit
	// below the volume floor again.
	for i := 0; i < 3; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("reclosed breaker refused attempt %d: %v", i, err)
		}
		b.observe(time.Millisecond, false)
	}
	if b.State() != breakerClosed {
		t.Fatal("stale failures re-tripped a freshly closed breaker")
	}
}

// --- hedger delay derivation ---

func TestHedgerDelay(t *testing.T) {
	h := newHedger(HedgeConfig{Delay: 123 * time.Millisecond})
	if got := h.delay(); got != 123*time.Millisecond {
		t.Fatalf("fixed delay = %v, want 123ms", got)
	}
	h = newHedger(HedgeConfig{MinDelay: 20 * time.Millisecond, MaxDelay: 100 * time.Millisecond})
	if got := h.delay(); got != 100*time.Millisecond {
		t.Fatalf("cold-start delay = %v, want the 100ms MaxDelay ceiling", got)
	}
	for i := 0; i < 100; i++ {
		h.observe(5 * time.Millisecond)
	}
	if got := h.delay(); got < 20*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("derived delay = %v, want clamped to [20ms, 100ms]", got)
	}
	for i := 0; i < 1000; i++ {
		h.observe(10 * time.Second)
	}
	if got := h.delay(); got != 100*time.Millisecond {
		t.Fatalf("delay under a 10s p95 = %v, want the 100ms cap", got)
	}
}

// --- client-level behavior against a live server ---

// TestDrainRetryBounded is the drain-retry interplay: a retrying client
// against a draining server converges to ErrServiceUnavailable after
// exactly MaxAttempts attempts — no retry storm, no hang.
func TestDrainRetryBounded(t *testing.T) {
	srv, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 2})
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	c := NewClient(hs.URL, "exp", exp.Schema(),
		WithRetry(RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: 1}))
	defer c.Close()
	src, dst := genPair(1, 20)
	ctx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	start := time.Now()
	_, err := c.Diff(ctx, src, dst, uri.NewAllocator())
	if !errors.Is(err, derrors.ErrServiceUnavailable) {
		t.Fatalf("Diff against draining server = %v, want ErrServiceUnavailable", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("retries against a draining server took %v — unbounded backoff?", d)
	}
	snap := c.ClientSnapshot()
	if snap.Attempts != 4 || snap.Retries != 3 {
		t.Fatalf("snapshot = %+v, want exactly 4 attempts / 3 retries (bounded)", snap)
	}
}

// TestBreakerFailsFastAgainstDeadService drives the client-level breaker:
// repeated failures open it, after which calls fail locally with
// ErrCircuitOpen and the attempt counter stops growing.
func TestBreakerFailsFastAgainstDeadService(t *testing.T) {
	srv, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 2})
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	c := NewClient(hs.URL, "exp", exp.Schema(),
		WithRetry(RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 1}),
		WithBreaker(BreakerConfig{Window: time.Minute, MinRequests: 4, FailureRatio: 0.5, OpenFor: time.Minute}))
	defer c.Close()
	src, dst := genPair(2, 20)
	ctx := context.Background()

	// Two calls × two attempts = four windowed failures: the breaker opens.
	for i := 0; i < 2; i++ {
		if _, err := c.Diff(ctx, src, dst, nil); !errors.Is(err, derrors.ErrServiceUnavailable) {
			t.Fatalf("call %d = %v, want ErrServiceUnavailable", i, err)
		}
	}
	if _, err := c.Diff(ctx, src, dst, nil); !errors.Is(err, derrors.ErrCircuitOpen) {
		t.Fatalf("call after 4 failures = %v, want ErrCircuitOpen", err)
	}
	snap := c.ClientSnapshot()
	if snap.Attempts != 4 {
		t.Fatalf("attempts = %d, want 4 (the fast-failed call must not reach the network)", snap.Attempts)
	}
	if snap.BreakerOpens != 1 || snap.BreakerFast == 0 {
		t.Fatalf("snapshot = %+v, want 1 open and ≥1 fast-fail", snap)
	}

	// The state gauge exposes the open /v1/diff breaker.
	found := false
	for _, m := range c.GatherMetrics() {
		if m.Name == "diffserve_client_breaker_state" && len(m.Labels) == 1 && m.Labels[0].Value == "/v1/diff" {
			found = true
			if m.Value != float64(breakerOpen) {
				t.Fatalf("breaker_state{endpoint=/v1/diff} = %v, want %d (open)", m.Value, breakerOpen)
			}
		}
	}
	if !found {
		t.Fatal("GatherMetrics exposes no breaker_state gauge for /v1/diff")
	}
}

// TestHedgeRescuesStalledRequest blackholes the first /v1/diff request at
// a front proxy; the hedge fires after 30ms, wins against the stalled
// attempt, and the call succeeds without any retry.
func TestHedgeRescuesStalledRequest(t *testing.T) {
	srv, _ := testServer(t, Config{Langs: []string{"exp"}, Workers: 2})
	var n atomic.Int32
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/diff" && n.Add(1) == 1 {
			// Drain the body first: the HTTP/1.1 server only watches for a
			// client disconnect (and cancels r.Context()) once the request
			// body is consumed.
			_, _ = io.Copy(io.Discard, r.Body)
			<-r.Context().Done() // stall until the hedging layer cancels the loser
			panic(http.ErrAbortHandler)
		}
		srv.ServeHTTP(w, r)
	}))
	defer front.Close()

	c := NewClient(front.URL, "exp", exp.Schema(), WithHedge(HedgeConfig{Delay: 30 * time.Millisecond, Max: 1}))
	defer c.Close()
	src, dst := genPair(3, 30)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Diff(ctx, src, dst, uri.NewAllocator())
	if err != nil {
		t.Fatalf("hedged Diff: %v", err)
	}
	if res.Patched == nil || res.Patched.ExactHash() != dst.ExactHash() {
		t.Fatal("hedged Diff returned a wrong or missing patched tree")
	}
	snap := c.ClientSnapshot()
	if snap.Hedges != 1 {
		t.Fatalf("hedges = %d, want exactly 1", snap.Hedges)
	}
	if snap.Retries != 0 {
		t.Fatalf("retries = %d, want 0 (the hedge, not a retry, rescued the call)", snap.Retries)
	}
}

// TestResilienceOffIsZeroConfig pins the opt-in contract: a bare client
// takes the single-attempt path and reports empty resilience counters
// beyond the attempts themselves.
func TestResilienceOffIsZeroConfig(t *testing.T) {
	_, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 2})
	c := NewClient(hs.URL, "exp", exp.Schema())
	defer c.Close()
	src, dst := genPair(4, 20)
	if _, err := c.Diff(context.Background(), src, dst, nil); err != nil {
		t.Fatalf("Diff: %v", err)
	}
	snap := c.ClientSnapshot()
	if snap.Attempts != 1 || snap.Retries != 0 || snap.Hedges != 0 || snap.BreakerOpens != 0 {
		t.Fatalf("bare client snapshot = %+v, want 1 attempt and nothing else", snap)
	}
	for _, m := range c.GatherMetrics() {
		if m.Name == "diffserve_client_breaker_state" {
			t.Fatal("bare client exposes a breaker_state gauge with no breaker armed")
		}
	}
}

// TestClientMetricsExposition checks the counter inventory is complete.
func TestClientMetricsExposition(t *testing.T) {
	c := NewClient("http://127.0.0.1:0", "exp", exp.Schema())
	want := []string{
		"diffserve_client_attempts_total",
		"diffserve_client_retries_total",
		"diffserve_client_hedges_total",
		"diffserve_client_breaker_opens_total",
		"diffserve_client_breaker_fastfails_total",
		"diffserve_client_resends_total",
	}
	have := make(map[string]bool)
	for _, m := range c.GatherMetrics() {
		have[m.Name] = true
		if m.Kind != telemetry.KindCounter && m.Name != "diffserve_client_breaker_state" {
			t.Errorf("%s has kind %v, want counter", m.Name, m.Kind)
		}
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("GatherMetrics missing %s", name)
		}
	}
}
