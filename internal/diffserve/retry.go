package diffserve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/derrors"
	"repro/internal/telemetry"
)

// This file is the client side of the network resilience layer: the retry
// policy, the per-endpoint circuit breaker, and request hedging. All three
// are safe to apply aggressively because the service is idempotent by
// construction — a diff is a pure function of two digest-identified trees,
// so replaying a request (or racing two copies of it) can never produce a
// different answer, only the same one sooner.
//
// Everything here is opt-in and zero-overhead when off: a client built
// without WithRetry/WithBreaker/WithHedge takes the single-attempt fast
// path through roundTrip with one nil check per feature.

// --- retry policy ---------------------------------------------------------

// RetryPolicy parameterizes transparent retries of failed requests.
// Retried failures are the transient ones: transport errors (connection
// refused/reset, truncated or malformed responses), saturation sheds
// (429), drain refusals and other 5xx answers, and per-attempt timeouts.
// Caller-fault answers (bad request, unknown language, ill-typed) and the
// caller's own context expiry are never retried.
type RetryPolicy struct {
	// MaxAttempts bounds the total number of attempts, the first one
	// included. Values below 1 select the default 4.
	MaxAttempts int
	// BaseBackoff is the backoff scale of the first retry; attempt n waits
	// a full-jittered duration in [0, min(MaxBackoff, BaseBackoff·2ⁿ)].
	// Default 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff window. Default 5s.
	MaxBackoff time.Duration
	// PerAttemptTimeout bounds each individual attempt (its dial, send,
	// server wall time, and response read) so one blackholed connection
	// costs one budget, not the whole call. The caller's context still
	// bounds the call as a whole. Zero disables the per-attempt bound.
	PerAttemptTimeout time.Duration
	// Seed seeds the jitter RNG, for deterministic tests. Zero seeds from
	// the global RNG.
	Seed int64
}

// DefaultRetryPolicy is the policy WithRetry applies when given the zero
// value: 4 attempts, 50ms base backoff doubling to a 5s cap, no
// per-attempt bound.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 50 * time.Millisecond, MaxBackoff: 5 * time.Second}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	return p
}

// retrier is one client's armed retry state: the policy plus its seeded
// jitter RNG.
type retrier struct {
	pol RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

func newRetrier(pol RetryPolicy) *retrier {
	pol = pol.withDefaults()
	seed := pol.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	return &retrier{pol: pol, rng: rand.New(rand.NewSource(seed))}
}

// backoff computes the wait before retry number n (n = 0 for the first
// retry): a full-jittered exponential backoff, overridden upward by the
// server's Retry-After advice when it gave any — the server's estimate of
// its own backlog beats the client's guess.
func (r *retrier) backoff(n int, advice time.Duration) time.Duration {
	ceil := r.pol.MaxBackoff
	if shifted := r.pol.BaseBackoff << uint(min(n, 32)); shifted > 0 && shifted < ceil {
		ceil = shifted
	}
	r.mu.Lock()
	d := time.Duration(r.rng.Int63n(int64(ceil) + 1))
	r.mu.Unlock()
	if advice > d {
		d = advice
	}
	return d
}

// sleep waits d, abandoning the wait (with the context's cause) when ctx
// expires first — a retry must never outlive the request it serves.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("diffserve: %w", context.Cause(ctx))
	}
}

// retryable classifies a whole-request failure as transient (worth a
// retry) or permanent. Per-pair errors inside a 200 batch response never
// reach this: the request itself succeeded.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	// The caller's own context expiring is not the service's failure.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	switch wireKind(err) {
	case ErrKindSaturated, ErrKindDraining, ErrKindInternal:
		return true
	case "":
		// Not a typed wire answer: transport failures (connection errors,
		// truncated bodies, garbage responses) are wrapped in
		// ErrServiceUnavailable by the transport layer and are exactly the
		// failures retries exist for.
		return errors.Is(err, derrors.ErrServiceUnavailable)
	default:
		// bad_request, unknown_lang, unknown_ref, panic, timeout,
		// ill_typed, cancelled: retrying replays the same deterministic
		// outcome (unknown_ref has its own dedicated recovery path).
		return false
	}
}

// --- circuit breaker ------------------------------------------------------

// Breaker states, exposed as the diffserve_client_breaker_state gauge.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// BreakerConfig parameterizes the client's per-endpoint circuit breaker.
// The zero value selects the defaults noted on each field.
type BreakerConfig struct {
	// Window is the rolling failure-rate window, backed by the same
	// epoch-tagged slot ring the SLO module uses. Default 30s.
	Window time.Duration
	// MinRequests is the volume floor: the ratio cannot trip the breaker
	// until the window holds at least this many attempts. Default 10.
	MinRequests uint64
	// FailureRatio is the windowed failure ratio at or above which the
	// breaker opens. Default 0.5.
	FailureRatio float64
	// OpenFor is how long an open breaker fails fast before allowing a
	// half-open probe. Default 5s.
	OpenFor time.Duration
	// Now overrides the clock, for tests. Nil uses time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.MinRequests == 0 {
		c.MinRequests = 10
	}
	if c.FailureRatio <= 0 || c.FailureRatio > 1 {
		c.FailureRatio = 0.5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// breaker is one endpoint's circuit: closed (attempts flow, outcomes are
// windowed), open (calls fail fast with ErrCircuitOpen until the cooldown
// elapses), half-open (exactly one probe is admitted; its outcome closes
// or re-opens the circuit).
type breaker struct {
	cfg   BreakerConfig
	opens *atomic.Uint64 // shared opens counter (client-wide)

	mu       sync.Mutex
	state    int32
	window   *telemetry.SLO // failure-rate ring: Observe(_, ok)
	openedAt time.Time
	probing  bool
}

func newBreaker(cfg BreakerConfig, opens *atomic.Uint64) *breaker {
	cfg = cfg.withDefaults()
	return &breaker{cfg: cfg, opens: opens, window: newBreakerWindow(cfg)}
}

// newBreakerWindow builds the failure-rate ring: the SLO slot ring reused
// as a plain windowed success/failure counter (latency objectives are
// irrelevant here, only Requests and Errors are read back).
func newBreakerWindow(cfg BreakerConfig) *telemetry.SLO {
	return telemetry.NewSLO(telemetry.SLOConfig{Window: cfg.Window, Slots: 30, Now: cfg.Now})
}

// allow gates one attempt. Closed admits freely; open fails fast until
// OpenFor has elapsed, then flips to half-open and admits a single probe;
// half-open admits nothing beyond the in-flight probe.
func (b *breaker) allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenFor {
			return b.openError()
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return b.openError()
		}
		b.probing = true
		return nil
	}
}

func (b *breaker) openError() error {
	return fmt.Errorf("diffserve: %w (cooling down %v)", derrors.ErrCircuitOpen, b.cfg.OpenFor)
}

// observe records one attempt's outcome and drives the state machine: a
// half-open probe's success closes the circuit with a fresh window, its
// failure re-opens it; a closed circuit opens when the windowed failure
// ratio reaches the threshold over at least MinRequests attempts.
func (b *breaker) observe(latency time.Duration, ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		if ok {
			b.state = breakerClosed
			b.window = newBreakerWindow(b.cfg) // forgive: stale failures must not re-trip
			return
		}
		b.state = breakerOpen
		b.openedAt = b.cfg.Now()
		b.opens.Add(1)
	case breakerClosed:
		b.window.Observe(latency, ok)
		snap := b.window.Snapshot()
		if snap.Requests >= b.cfg.MinRequests &&
			float64(snap.Errors)/float64(snap.Requests) >= b.cfg.FailureRatio {
			b.state = breakerOpen
			b.openedAt = b.cfg.Now()
			b.opens.Add(1)
		}
	default: // open: late results from pre-open attempts carry no new information
	}
}

// State reports the breaker's current state for the exposition gauge:
// 0 closed, 1 open, 2 half-open.
func (b *breaker) State() int32 {
	if b == nil {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// --- hedging --------------------------------------------------------------

// HedgeConfig parameterizes hedged requests: when an attempt has not
// answered after the hedge delay, a second copy of the (idempotent)
// request is raced against it; the first response wins and the loser is
// cancelled. Hedging trades duplicate work on the server for tail
// latency on the client.
type HedgeConfig struct {
	// Delay is how long to wait before hedging. Zero derives the delay
	// from the client's rolling attempt-latency window: the p95, clamped
	// to [MinDelay, MaxDelay] — the canonical "hedge after the tail
	// begins" setting.
	Delay time.Duration
	// MinDelay and MaxDelay clamp the derived delay (and provide the
	// cold-start delay while the window is empty: MaxDelay). Defaults
	// 10ms and 2s.
	MinDelay time.Duration
	MaxDelay time.Duration
	// Max bounds how many hedges (extra in-flight copies beyond the
	// first) one attempt may launch. Values below 1 select 1.
	Max int
}

func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.MinDelay <= 0 {
		c.MinDelay = 10 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.MaxDelay < c.MinDelay {
		c.MaxDelay = c.MinDelay
	}
	if c.Max < 1 {
		c.Max = 1
	}
	return c
}

// hedger carries a client's hedging state: the config plus the rolling
// attempt-latency window the delay derives from.
type hedger struct {
	cfg HedgeConfig
	lat *telemetry.SLO
}

func newHedger(cfg HedgeConfig) *hedger {
	cfg = cfg.withDefaults()
	return &hedger{
		cfg: cfg,
		lat: telemetry.NewSLO(telemetry.SLOConfig{Window: time.Minute, Slots: 30}),
	}
}

// observe feeds one completed attempt's latency into the window.
func (h *hedger) observe(d time.Duration) {
	if h != nil {
		h.lat.Observe(d, true)
	}
}

// delay computes when to hedge: the configured fixed delay, or the
// windowed p95 clamped to [MinDelay, MaxDelay]; with no history yet the
// clamp ceiling applies (hedge conservatively until the tail is known).
func (h *hedger) delay() time.Duration {
	if h.cfg.Delay > 0 {
		return h.cfg.Delay
	}
	p95 := h.lat.Snapshot().P95
	if p95 <= 0 {
		return h.cfg.MaxDelay
	}
	return min(max(p95, h.cfg.MinDelay), h.cfg.MaxDelay)
}

// --- client telemetry -----------------------------------------------------

// clientMetrics counts the resilience layer's decisions, exposed by
// Client.GatherMetrics as diffserve_client_* series.
type clientMetrics struct {
	attempts     atomic.Uint64 // HTTP attempts sent (first tries, retries, hedges)
	retries      atomic.Uint64 // sequential re-attempts after a retryable failure
	hedges       atomic.Uint64 // speculative parallel copies launched
	breakerOpens atomic.Uint64 // closed/half-open → open transitions
	breakerFast  atomic.Uint64 // calls failed fast by an open breaker
	resends      atomic.Uint64 // unknown_ref recoveries (full-tree re-sends)
}

// ClientSnapshot is a point-in-time copy of a client's resilience
// counters.
type ClientSnapshot struct {
	Attempts     uint64
	Retries      uint64
	Hedges       uint64
	BreakerOpens uint64
	BreakerFast  uint64
	Resends      uint64
}

// ClientSnapshot returns the client's cumulative resilience counters.
func (c *Client) ClientSnapshot() ClientSnapshot {
	return ClientSnapshot{
		Attempts:     c.m.attempts.Load(),
		Retries:      c.m.retries.Load(),
		Hedges:       c.m.hedges.Load(),
		BreakerOpens: c.m.breakerOpens.Load(),
		BreakerFast:  c.m.breakerFast.Load(),
		Resends:      c.m.resends.Load(),
	}
}

// GatherMetrics implements telemetry.Gatherer for the client's resilience
// counters, so a caller can mount a Client on telemetry.Handler next to
// its engines.
func (c *Client) GatherMetrics() []telemetry.Metric {
	counter := func(name, help string, v uint64) telemetry.Metric {
		return telemetry.Metric{Name: name, Help: help, Kind: telemetry.KindCounter, Value: float64(v)}
	}
	ms := []telemetry.Metric{
		counter("diffserve_client_attempts_total", "HTTP attempts sent (first tries, retries, and hedges).", c.m.attempts.Load()),
		counter("diffserve_client_retries_total", "Requests re-attempted after a retryable failure.", c.m.retries.Load()),
		counter("diffserve_client_hedges_total", "Speculative hedge attempts launched.", c.m.hedges.Load()),
		counter("diffserve_client_breaker_opens_total", "Circuit breaker transitions to open.", c.m.breakerOpens.Load()),
		counter("diffserve_client_breaker_fastfails_total", "Calls failed fast by an open circuit breaker.", c.m.breakerFast.Load()),
		counter("diffserve_client_resends_total", "unknown_ref recoveries: requests re-sent with full trees.", c.m.resends.Load()),
	}
	c.brMu.Lock()
	endpoints := make([]string, 0, len(c.breakers))
	for ep := range c.breakers {
		endpoints = append(endpoints, ep)
	}
	c.brMu.Unlock()
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		c.brMu.Lock()
		b := c.breakers[ep]
		c.brMu.Unlock()
		ms = append(ms, telemetry.Metric{
			Name: "diffserve_client_breaker_state", Kind: telemetry.KindGauge,
			Help:   "Circuit breaker state per endpoint (0 closed, 1 open, 2 half-open).",
			Value:  float64(b.State()),
			Labels: []telemetry.Label{{Key: "endpoint", Value: ep}},
		})
	}
	return ms
}
