package diffserve

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// svcMetrics holds the service-level counters, one layer above the
// per-engine counters: HTTP outcomes, shed decisions, queue occupancy, and
// the request-latency and batch-size distributions. All atomics, matching
// the engine's lock-free convention.
type svcMetrics struct {
	requests     atomic.Uint64
	ok           atomic.Uint64
	clientErrors atomic.Uint64 // 4xx other than sheds
	serverErrors atomic.Uint64 // 5xx other than drain rejects
	sheds        atomic.Uint64 // 429: tenant limit or queue backpressure
	drainRejects atomic.Uint64 // 503: refused because draining

	// pending gauges jobs accepted into a coalescing queue but not yet
	// answered; together with the engines' QueueDepth it is the admission
	// controller's saturation signal.
	pending atomic.Int64

	latency   telemetry.Histogram // request wall time, ns (diff+batch only)
	batches   atomic.Uint64
	batchSize telemetry.Histogram // jobs per coalesced engine batch
}

// GatherMetrics implements telemetry.Gatherer for the whole service:
// diffserve_* service metrics first, then every engine metric once per
// served language with a {lang="..."} label. telemetry.Handler(srv) serves
// the union at /metrics.
func (s *Server) GatherMetrics() []telemetry.Metric {
	counter := func(name, help string, v uint64) telemetry.Metric {
		return telemetry.Metric{Name: name, Help: help, Kind: telemetry.KindCounter, Value: float64(v)}
	}
	ms := []telemetry.Metric{
		counter("diffserve_requests_total", "Diff and batch requests received.", s.m.requests.Load()),
		counter("diffserve_responses_ok_total", "Requests answered 2xx.", s.m.ok.Load()),
		counter("diffserve_responses_client_error_total", "Requests answered 4xx (excluding sheds).", s.m.clientErrors.Load()),
		counter("diffserve_responses_server_error_total", "Requests answered 5xx (excluding drain rejects).", s.m.serverErrors.Load()),
		counter("diffserve_sheds_total", "Requests shed with 429 by admission control (tenant limit or queue backpressure).", s.m.sheds.Load()),
		counter("diffserve_drain_rejects_total", "Requests refused with 503 because the server is draining.", s.m.drainRejects.Load()),
		{
			Name: "diffserve_pending_jobs", Kind: telemetry.KindGauge,
			Help:  "Jobs accepted into a coalescing queue but not yet answered.",
			Value: float64(s.m.pending.Load()),
		},
		counter("diffserve_batches_total", "Coalesced engine batches dispatched.", s.m.batches.Load()),
		{
			Name: "diffserve_request_duration_seconds", Kind: telemetry.KindHistogram,
			Help: "Request wall time from admission to response, diff and batch endpoints.",
			Hist: s.m.latency.Snapshot(), Scale: 1e-9,
		},
		{
			Name: "diffserve_batch_size_jobs", Kind: telemetry.KindHistogram,
			Help: "Jobs per coalesced engine batch.",
			Hist: s.m.batchSize.Snapshot(),
		},
	}
	ms = append(ms, telemetry.SLOMetrics("diffserve_slo_", s.slo.Snapshot())...)
	return append(ms, s.engineMetrics()...)
}

// engineMetrics renders every language engine's metrics with a lang label.
// The exposition writer requires metrics sharing a name to be adjacent, so
// the per-engine sequences are zipped sample-by-sample rather than
// concatenated engine-by-engine; every engine emits the identical fixed
// sequence, which makes the zip well-defined. If an engine ever diverged
// (it cannot today), the affected tail falls back to concatenation.
func (s *Server) engineMetrics() []telemetry.Metric {
	type engSeq struct {
		lang string
		ms   []telemetry.Metric
	}
	seqs := make([]engSeq, 0, len(s.langs))
	for _, name := range s.langNames {
		seqs = append(seqs, engSeq{lang: name, ms: s.langs[name].eng.GatherMetrics()})
	}
	var out []telemetry.Metric
	for i := 0; ; i++ {
		emitted := false
		for _, sq := range seqs {
			if i >= len(sq.ms) {
				continue
			}
			m := sq.ms[i]
			labels := make([]telemetry.Label, 0, len(m.Labels)+1)
			labels = append(labels, m.Labels...)
			m.Labels = append(labels, telemetry.Label{Key: "lang", Value: sq.lang})
			out = append(out, m)
			emitted = true
		}
		if !emitted {
			return out
		}
	}
}
