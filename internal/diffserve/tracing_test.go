package diffserve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/telemetry"
	"repro/internal/tree"
)

// TestServiceTraceEndToEnd: one traced Diff through the full stack yields
// one trace containing the client RPC span, the server request span, the
// coalescing-queue span, the engine span, and the four truediff phase
// spans — eight spans, correctly parented, sharing one trace ID that also
// comes back in the response body.
func TestServiceTraceEndToEnd(t *testing.T) {
	rec := telemetry.NewSpanRecorder()
	_, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 1, Spans: rec})
	c := NewClient(hs.URL, "exp", exp.Schema(), WithSpans(rec))
	defer c.Close()

	src, dst := genPair(7, 60)
	res, err := c.Diff(context.Background(), src, dst, nil)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if res.Script == nil {
		t.Fatal("no script in result")
	}

	spans := rec.Spans()
	byName := map[string]telemetry.Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	want := []string{
		"diffserve.client.diff", "diffserve.request", "diffserve.queue", "engine.diff",
		"truediff.prepare", "truediff.shares", "truediff.select", "truediff.emit",
	}
	if len(spans) != len(want) {
		names := make([]string, len(spans))
		for i, s := range spans {
			names[i] = s.Name
		}
		t.Fatalf("recorded %d spans %v, want %d: %v", len(spans), names, len(want), want)
	}
	trace := byName["diffserve.client.diff"].Trace
	for _, name := range want {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("missing span %q", name)
		}
		if s.Trace != trace {
			t.Errorf("%s in trace %s, want %s (one trace end to end)", name, s.Trace, trace)
		}
	}

	// Parentage: client → request → {queue, engine} → phases.
	client, req := byName["diffserve.client.diff"], byName["diffserve.request"]
	if req.Parent != client.ID {
		t.Errorf("request span parented on %s, want client span %s", req.Parent, client.ID)
	}
	if q := byName["diffserve.queue"]; q.Parent != req.ID {
		t.Errorf("queue span parented on %s, want request span %s", q.Parent, req.ID)
	}
	eng := byName["engine.diff"]
	if eng.Parent != req.ID {
		t.Errorf("engine span parented on %s, want request span %s", eng.Parent, req.ID)
	}
	for _, name := range want[4:] {
		if ph := byName[name]; ph.Parent != eng.ID {
			t.Errorf("%s parented on %s, want engine span %s", name, ph.Parent, eng.ID)
		}
	}
}

// TestServiceTraceIDInResponse: the wire trace_id matches the propagated
// trace so clients can quote it when reporting a slow or failed request.
func TestServiceTraceIDInResponse(t *testing.T) {
	rec := telemetry.NewSpanRecorder()
	_, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 1, Spans: rec})
	src, dst := genPair(8, 40)

	tc := telemetry.NewSpanContext()
	body, _ := json.Marshal(DiffRequest{
		SchemaVersion: WireVersion, Lang: "exp",
		Source: TreeInput{SExpr: tree.EncodeSExpr(src)},
		Target: TreeInput{SExpr: tree.EncodeSExpr(dst)},
	})
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/diff", bytes.NewReader(body))
	req.Header.Set("traceparent", tc.Traceparent())
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/diff: %v", err)
	}
	defer httpResp.Body.Close()
	var resp DiffResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.TraceID != tc.Trace.String() {
		t.Errorf("response trace_id = %q, want the propagated trace %q", resp.TraceID, tc.Trace)
	}
	// The server's request span continued the caller's context.
	for _, s := range rec.Spans() {
		if s.Name == "diffserve.request" {
			if s.Trace != tc.Trace || s.Parent != tc.Span {
				t.Errorf("request span trace/parent = %s/%s, want %s/%s", s.Trace, s.Parent, tc.Trace, tc.Span)
			}
			return
		}
	}
	t.Fatal("no diffserve.request span recorded")
}

// TestTraceContextWithoutSink: with tracing off the server still honours
// an inbound traceparent for response correlation, and mints a fresh
// context otherwise — but records no spans.
func TestTraceContextWithoutSink(t *testing.T) {
	srv, _ := testServer(t, Config{Langs: []string{"exp"}, Workers: 1})
	tc := telemetry.NewSpanContext()
	r, _ := http.NewRequest(http.MethodPost, "/v1/diff", nil)
	r.Header.Set("traceparent", tc.Traceparent())
	span, got := srv.traceContext(r, "diffserve.request")
	if span != nil {
		t.Fatalf("span recorded without a sink: %+v", span)
	}
	if got != tc {
		t.Errorf("traceContext = %+v, want the inbound context %+v", got, tc)
	}
	r.Header.Del("traceparent")
	if _, got = srv.traceContext(r, "diffserve.request"); !got.Valid() {
		t.Error("traceContext minted an invalid fresh context")
	}
}

// TestRetryAfterBounds: the Retry-After estimate is the SLO-window p95
// times the backlog per worker, clamped to [1s, 30s].
func TestRetryAfterBounds(t *testing.T) {
	srv, _ := testServer(t, Config{Langs: []string{"exp"}, Workers: 2})

	// Fresh server: no observations, p95 = 0, estimate floors at 1s.
	if got := srv.retryAfter(1); got != time.Second {
		t.Errorf("fresh retryAfter(1) = %v, want the 1s floor", got)
	}

	// Saturated: slow observations push p95 up; a deep backlog overshoots
	// the cap and clamps to 30s.
	for i := 0; i < 20; i++ {
		srv.slo.Observe(10*time.Second, true)
	}
	if got := srv.retryAfter(1000); got != 30*time.Second {
		t.Errorf("saturated retryAfter(1000) = %v, want the 30s cap", got)
	}

	// In between: p95 ≈ 10s (bucket bound), backlog 2 over 2 workers ≈ 1
	// request's worth of work — scaled, not clamped.
	got := srv.retryAfter(2)
	if got <= time.Second || got >= 30*time.Second {
		t.Errorf("mid-range retryAfter(2) = %v, want strictly inside (1s, 30s)", got)
	}
}

// TestMetricsLabelEscaping: a label value containing quotes, backslashes,
// and newlines survives the exposition writer intact (golden-checked
// against the Prometheus text-format escaping rules).
func TestMetricsLabelEscaping(t *testing.T) {
	srv, _ := testServer(t, Config{Langs: []string{"exp"}, Workers: 1})
	hostile := "py\"lang\n\\"
	srv.langs[hostile] = srv.langs["exp"]
	srv.langNames = []string{hostile}

	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf, srv.GatherMetrics()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	const want = `lang="py\"lang\n\\"`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition misses escaped label %s;\nlang lines:\n%s", want, grepLines(out, "lang="))
	}
	// No raw newline may survive inside a label value: every line must be
	// a comment, a sample, or blank.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Errorf("malformed exposition line (label leak?): %q", line)
		}
	}
}

func grepLines(s, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}
