package diffserve

import (
	"os"
	"strings"
	"testing"
)

// TestMetricInventoryDocumented keeps docs/OBSERVABILITY.md's metric
// inventory in sync with the code: every metric the full service gathers
// — its own diffserve_* series plus the per-language engine series — must
// appear in the document by name. A new metric that lands without a doc
// entry fails here, not in a reader's grep.
func TestMetricInventoryDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("read OBSERVABILITY.md: %v", err)
	}
	text := string(doc)

	srv, _ := testServer(t, Config{Langs: []string{"exp"}, Workers: 2})

	// The SLO gauge families are documented as prefixed sets (they are
	// detailed in TRACING.md), so a shared prefix counts as documented.
	prefixes := []string{"structdiff_slo_", "diffserve_slo_", "diffserve_client_"}
	documented := func(name string) bool {
		if strings.Contains(text, name) {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) && strings.Contains(text, p) {
				return true
			}
		}
		return false
	}

	seen := map[string]bool{}
	for _, m := range srv.GatherMetrics() {
		if seen[m.Name] {
			continue
		}
		seen[m.Name] = true
		if !documented(m.Name) {
			t.Errorf("metric %s is gathered but missing from docs/OBSERVABILITY.md", m.Name)
		}
	}
	if len(seen) < 20 {
		t.Fatalf("gathered only %d distinct metrics; inventory sweep is not exercising the full surface", len(seen))
	}
}
