package diffserve

import (
	"sort"

	"repro/internal/exp"
	"repro/internal/jsonlang"
	"repro/internal/pylang"
	"repro/internal/sig"
)

// langSchemas maps the language names the service accepts in requests to
// their schemas. Every entry gets its own engine (schemas are per-engine
// state: intern store, digest memo, URI space).
var langSchemas = map[string]func() *sig.Schema{
	"exp":      exp.Schema,
	"pylang":   pylang.Schema,
	"jsonlang": jsonlang.Schema,
}

// Languages lists the names the service can serve, sorted.
func Languages() []string {
	names := make([]string, 0, len(langSchemas))
	for name := range langSchemas {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SchemaFor returns the schema for a registered language name, nil if the
// name is unknown.
func SchemaFor(lang string) *sig.Schema {
	f, ok := langSchemas[lang]
	if !ok {
		return nil
	}
	return f()
}
