// Package diffserve turns the batch diffing engine into a shared network
// service: an HTTP/JSON server (cmd/diffd is its daemon front end) that
// accepts diff and batch requests, coalesces concurrent requests into
// engine DiffBatch windows, enforces per-tenant concurrency limits with
// queue backpressure driven by the engine's QueueDepth/Utilization gauges
// (shedding with 429 + Retry-After when saturated), and drains gracefully
// on shutdown — plus an HTTP client implementing the same DiffService
// surface as the in-process engine, so callers need not care whether a
// Diff runs locally or over the wire.
//
// The wire format is versioned JSON (this file): every envelope — request,
// response, script, stats, snapshot — carries a schema_version of the form
// "MAJOR.MINOR". Decoders accept any minor revision of their own major
// version and reject other majors cleanly instead of mis-parsing; fields
// only ever get added within a major version, never removed or retyped.
// Trees travel as S-expressions (tree.EncodeSExpr) or as content-digest
// refs to trees the server has already interned, so a version-history
// replay ships each tree at most once. See docs/SERVICE.md.
package diffserve

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/telemetry"
	"repro/internal/truechange"
)

// WireVersion is the schema version stamped on every envelope this build
// writes. The major component is the compatibility contract; the minor
// counts additive revisions.
const WireVersion = "1.0"

// wireMajor is the major version this build's decoders accept.
const wireMajor = 1

// CheckWireVersion validates a received schema_version: it must parse as
// "MAJOR" or "MAJOR.MINOR" and its major version must match this build's.
// A higher minor of the same major is accepted (fields are only ever
// added); anything else is rejected before any payload field is decoded.
func CheckWireVersion(v string) error {
	if v == "" {
		return fmt.Errorf("diffserve: missing schema_version (this build speaks %s)", WireVersion)
	}
	major, _, _ := strings.Cut(v, ".")
	n, err := strconv.Atoi(major)
	if err != nil {
		return fmt.Errorf("diffserve: malformed schema_version %q", v)
	}
	if n != wireMajor {
		return fmt.Errorf("diffserve: unsupported schema_version %q (this build speaks major %d)", v, wireMajor)
	}
	return nil
}

// TreeInput is one tree operand of a request: either an S-expression to
// decode (URIs are server-assigned) or a Ref naming a tree the server has
// already interned — the hex content digest an earlier response reported
// as SourceRef/TargetRef. A request carrying an unknown Ref fails with
// ErrKindUnknownRef; the client falls back to sending the S-expression.
type TreeInput struct {
	SExpr string `json:"sexpr,omitempty"`
	Ref   string `json:"ref,omitempty"`
}

// DiffRequest is the body of POST /v1/diff.
type DiffRequest struct {
	SchemaVersion string    `json:"schema_version"`
	Lang          string    `json:"lang"`
	Source        TreeInput `json:"source"`
	Target        TreeInput `json:"target"`
	// Label identifies the pair in traces and the slow-diff log; the
	// server prefixes it with the request's trace ID.
	Label string `json:"label,omitempty"`
	// WantPatched asks for the patched tree as an S-expression in the
	// response (off by default: the script is the service's product and
	// the patched tree can be as large as the target).
	WantPatched bool `json:"want_patched,omitempty"`
}

// BatchPair is one pair of a BatchRequest.
type BatchPair struct {
	Source      TreeInput `json:"source"`
	Target      TreeInput `json:"target"`
	Label       string    `json:"label,omitempty"`
	WantPatched bool      `json:"want_patched,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: one language, many pairs,
// diffed as a single engine batch (no coalescing window — the caller
// already batched).
type BatchRequest struct {
	SchemaVersion string      `json:"schema_version"`
	Lang          string      `json:"lang"`
	Pairs         []BatchPair `json:"pairs"`
}

// WireScript is the versioned envelope of a truechange edit script. Edits
// is kept raw until the version check passes, so a v2 script can never be
// half-parsed by a v1 decoder.
type WireScript struct {
	SchemaVersion string          `json:"schema_version"`
	Edits         json.RawMessage `json:"edits"`
}

// EncodeScript wraps a script in its versioned envelope.
func EncodeScript(s *truechange.Script) (*WireScript, error) {
	raw, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("diffserve: encode script: %w", err)
	}
	return &WireScript{SchemaVersion: WireVersion, Edits: raw}, nil
}

// Decode validates the envelope's version and only then parses the edits.
func (w *WireScript) Decode() (*truechange.Script, error) {
	if err := CheckWireVersion(w.SchemaVersion); err != nil {
		return nil, err
	}
	s := &truechange.Script{}
	if err := json.Unmarshal(w.Edits, s); err != nil {
		return nil, fmt.Errorf("diffserve: decode script: %w", err)
	}
	return s, nil
}

// WireStats is the versioned wire form of engine.DiffStats.
type WireStats struct {
	SchemaVersion string  `json:"schema_version"`
	WallNS        int64   `json:"wall_ns"`
	Edits         int     `json:"edits"`
	SourceNodes   int     `json:"source_nodes"`
	TargetNodes   int     `json:"target_nodes"`
	ReuseRatio    float64 `json:"reuse_ratio"`
	PrepareNS     int64   `json:"prepare_ns"`
	SharesNS      int64   `json:"shares_ns"`
	SelectNS      int64   `json:"select_ns"`
	EmitNS        int64   `json:"emit_ns"`
	Identical     bool    `json:"identical,omitempty"`
	Fallback      bool    `json:"fallback,omitempty"`
}

// StatsToWire converts engine stats for transmission.
func StatsToWire(st engine.DiffStats) *WireStats {
	return &WireStats{
		SchemaVersion: WireVersion,
		WallNS:        st.Wall.Nanoseconds(),
		Edits:         st.Edits,
		SourceNodes:   st.SourceSize,
		TargetNodes:   st.TargetSize,
		ReuseRatio:    st.ReuseRatio,
		PrepareNS:     st.Phases[telemetry.PhasePrepare].Nanoseconds(),
		SharesNS:      st.Phases[telemetry.PhaseShares].Nanoseconds(),
		SelectNS:      st.Phases[telemetry.PhaseSelect].Nanoseconds(),
		EmitNS:        st.Phases[telemetry.PhaseEmit].Nanoseconds(),
		Identical:     st.Identical,
		Fallback:      st.Fallback,
	}
}

// ToDiffStats converts received wire stats back into engine stats (the
// client's PairResult carries them). Intern flags are server-local state
// and do not travel.
func (w *WireStats) ToDiffStats() (engine.DiffStats, error) {
	if err := CheckWireVersion(w.SchemaVersion); err != nil {
		return engine.DiffStats{}, err
	}
	st := engine.DiffStats{
		Wall:       duration(w.WallNS),
		Edits:      w.Edits,
		SourceSize: w.SourceNodes,
		TargetSize: w.TargetNodes,
		ReuseRatio: w.ReuseRatio,
		Identical:  w.Identical,
		Fallback:   w.Fallback,
	}
	st.Phases[telemetry.PhasePrepare] = duration(w.PrepareNS)
	st.Phases[telemetry.PhaseShares] = duration(w.SharesNS)
	st.Phases[telemetry.PhaseSelect] = duration(w.SelectNS)
	st.Phases[telemetry.PhaseEmit] = duration(w.EmitNS)
	return st, nil
}

func duration(ns int64) time.Duration { return time.Duration(ns) }

// Error kinds a WireError classifies into. Clients map them back onto the
// repository's sentinel errors (see kindToErr in client.go).
const (
	ErrKindBadRequest  = "bad_request"
	ErrKindUnknownLang = "unknown_lang"
	ErrKindUnknownRef  = "unknown_ref"
	ErrKindPanic       = "panic"
	ErrKindTimeout     = "timeout"
	ErrKindCancelled   = "cancelled"
	ErrKindIllTyped    = "ill_typed"
	ErrKindSaturated   = "saturated"
	ErrKindDraining    = "draining"
	ErrKindInternal    = "internal"
)

// WireError is the typed failure carried by error responses and by failed
// pairs of a batch response.
type WireError struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// RetryAfterMS advises when to retry a saturated request (kind
	// "saturated"); zero otherwise.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// DiffResponse is the body of a successful POST /v1/diff, and one element
// of a batch response (where Error may be set instead of Script/Stats).
type DiffResponse struct {
	SchemaVersion string      `json:"schema_version"`
	TraceID       string      `json:"trace_id,omitempty"`
	Script        *WireScript `json:"script,omitempty"`
	Stats         *WireStats  `json:"stats,omitempty"`
	// SourceRef and TargetRef are the hex content digests under which the
	// server interned the operands; later requests may pass them as
	// TreeInput.Ref instead of re-sending the trees.
	SourceRef string `json:"source_ref,omitempty"`
	TargetRef string `json:"target_ref,omitempty"`
	// PatchedSExpr carries the patched tree when the request set
	// WantPatched.
	PatchedSExpr string     `json:"patched_sexpr,omitempty"`
	Error        *WireError `json:"error,omitempty"`
}

// BatchResponse is the body of POST /v1/batch: one result per pair,
// index-aligned with the request.
type BatchResponse struct {
	SchemaVersion string         `json:"schema_version"`
	TraceID       string         `json:"trace_id,omitempty"`
	Results       []DiffResponse `json:"results"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	SchemaVersion string    `json:"schema_version"`
	Error         WireError `json:"error"`
}

// SnapshotResponse is the body of GET /v1/snapshot: one engine snapshot
// per served language.
type SnapshotResponse struct {
	SchemaVersion string                     `json:"schema_version"`
	Draining      bool                       `json:"draining,omitempty"`
	Langs         map[string]engine.Snapshot `json:"langs"`
}
