package diffserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/derrors"
	"repro/internal/engine"
	"repro/internal/sig"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/truediff"
	"repro/internal/uri"
)

// Client speaks the diffserve wire protocol and presents the same surface
// as the in-process engine (structdiff.DiffService): Diff, DiffBatch,
// Snapshot, Close. Code written against that interface runs unchanged
// against a local engine or a remote daemon.
//
// The client remembers which trees the server has confirmed interned (by
// content-digest ref) and sends the ref instead of the S-expression on
// later requests — the service's analogue of the engine's whole-tree
// intern store. A server restart invalidates refs; the client detects the
// unknown_ref answer and retries once with the full trees. A Client is
// safe for concurrent use.
type Client struct {
	base   string
	lang   string
	sch    *sig.Schema
	hc     *http.Client
	tenant string
	spans  telemetry.SpanSink

	refMu sync.Mutex
	refs  map[string]bool
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the http.Client (timeouts, transports).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithTenant sets the X-Diffd-Tenant header, the identity the server's
// per-tenant concurrency limit accounts against.
func WithTenant(tenant string) ClientOption {
	return func(c *Client) { c.tenant = tenant }
}

// WithSpans enables client-side tracing: each Diff/DiffBatch records a
// span to sink, and the span's context is shipped to the server in the
// W3C traceparent header so the server's request, queue, and engine spans
// join the same trace. Without this option the client still propagates a
// trace context found on ctx (telemetry.ContextWithSpanContext) — it just
// records no spans of its own.
func WithSpans(sink telemetry.SpanSink) ClientOption {
	return func(c *Client) { c.spans = sink }
}

// startSpan opens the client-side span for one RPC. It returns the span
// (nil when the client has no sink) and the context to propagate: the
// span's own if one was recorded, else whatever the caller carried on ctx.
func (c *Client) startSpan(ctx context.Context, name string) (*telemetry.Span, telemetry.SpanContext) {
	parent := telemetry.SpanContextFromContext(ctx)
	span := telemetry.StartSpan(c.spans, parent, name)
	if span != nil {
		span.SetAttr("lang", c.lang)
		return span, span.Context()
	}
	return nil, parent
}

// NewClient returns a client for one language served at base (e.g.
// "http://localhost:8347"). The schema must match the server's schema for
// that language: it is used to decode patched trees locally.
func NewClient(base, lang string, sch *sig.Schema, opts ...ClientOption) *Client {
	c := &Client{
		base: base,
		lang: lang,
		sch:  sch,
		hc:   &http.Client{Timeout: 60 * time.Second},
		refs: make(map[string]bool),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// treeInput renders a tree for the wire: a bare ref when the server has
// confirmed this content digest, the S-expression otherwise.
func (c *Client) treeInput(n *tree.Node, force bool) TreeInput {
	if !force && tree.HashedWith(n, tree.SHA256) {
		ref := hexRef(n)
		c.refMu.Lock()
		known := c.refs[ref]
		c.refMu.Unlock()
		if known {
			return TreeInput{Ref: ref}
		}
	}
	return TreeInput{SExpr: tree.EncodeSExpr(n)}
}

func (c *Client) learnRefs(refs ...string) {
	c.refMu.Lock()
	for _, ref := range refs {
		if ref != "" {
			c.refs[ref] = true
		}
	}
	c.refMu.Unlock()
}

func (c *Client) forgetRefs() {
	c.refMu.Lock()
	c.refs = make(map[string]bool)
	c.refMu.Unlock()
}

// Diff diffs source against target on the server and reconstructs the
// result locally: the script is decoded from its versioned envelope and
// the patched tree from its S-expression (with fresh URIs from alloc, or
// a private allocator when nil — server and client URI spaces are
// independent, which is the one visible difference from an in-process
// engine).
func (c *Client) Diff(ctx context.Context, source, target *tree.Node, alloc *uri.Allocator) (*truediff.Result, error) {
	if source == nil || target == nil {
		return nil, fmt.Errorf("diffserve: %w", derrors.ErrNilTree)
	}
	resp, err := c.diffOnce(ctx, source, target, false)
	if err != nil {
		if wireKind(err) == ErrKindUnknownRef {
			c.forgetRefs()
			resp, err = c.diffOnce(ctx, source, target, true)
		}
		if err != nil {
			return nil, err
		}
	}
	return c.toResult(resp, alloc)
}

func (c *Client) diffOnce(ctx context.Context, source, target *tree.Node, force bool) (*DiffResponse, error) {
	span, tc := c.startSpan(ctx, "diffserve.client.diff")
	defer span.End()
	req := DiffRequest{
		SchemaVersion: WireVersion,
		Lang:          c.lang,
		Source:        c.treeInput(source, force),
		Target:        c.treeInput(target, force),
		WantPatched:   true,
	}
	var resp DiffResponse
	if err := c.post(ctx, "/v1/diff", tc, req, &resp); err != nil {
		span.SetAttr("err", err.Error())
		return nil, err
	}
	if resp.Error != nil {
		return nil, wireErr(*resp.Error)
	}
	c.learnRefs(resp.SourceRef, resp.TargetRef)
	return &resp, nil
}

func (c *Client) toResult(resp *DiffResponse, alloc *uri.Allocator) (*truediff.Result, error) {
	if resp.Script == nil {
		return nil, fmt.Errorf("diffserve: response carries neither script nor error")
	}
	script, err := resp.Script.Decode()
	if err != nil {
		return nil, err
	}
	res := &truediff.Result{Script: script}
	if resp.PatchedSExpr != "" {
		if alloc == nil {
			alloc = uri.NewAllocator()
		}
		res.Patched, err = tree.DecodeSExpr(resp.PatchedSExpr, c.sch, alloc)
		if err != nil {
			return nil, fmt.Errorf("diffserve: decode patched tree: %w", err)
		}
	}
	return res, nil
}

// DiffBatch ships the whole batch in one request; the server diffs it as
// one engine batch. Results are index-aligned with pairs; per-pair
// failures land in the pair's Err, exactly as with engine.DiffBatch.
// Pair.Alloc is used to decode that pair's patched tree.
func (c *Client) DiffBatch(ctx context.Context, pairs []engine.Pair) ([]engine.PairResult, error) {
	resp, err := c.batchOnce(ctx, pairs, false)
	if err != nil {
		return nil, err
	}
	retry := false
	for i := range resp.Results {
		if e := resp.Results[i].Error; e != nil && e.Kind == ErrKindUnknownRef {
			retry = true
			break
		}
	}
	if retry {
		c.forgetRefs()
		if resp, err = c.batchOnce(ctx, pairs, true); err != nil {
			return nil, err
		}
	}
	if len(resp.Results) != len(pairs) {
		return nil, fmt.Errorf("diffserve: batch returned %d results for %d pairs", len(resp.Results), len(pairs))
	}
	out := make([]engine.PairResult, len(pairs))
	for i := range resp.Results {
		r := &resp.Results[i]
		if r.Error != nil {
			out[i].Err = wireErr(*r.Error)
			continue
		}
		c.learnRefs(r.SourceRef, r.TargetRef)
		res, err := c.toResult(r, pairs[i].Alloc)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Result = res
		if r.Stats != nil {
			if out[i].Stats, err = r.Stats.ToDiffStats(); err != nil {
				out[i].Err = err
			}
		}
	}
	return out, nil
}

func (c *Client) batchOnce(ctx context.Context, pairs []engine.Pair, force bool) (*BatchResponse, error) {
	span, tc := c.startSpan(ctx, "diffserve.client.batch")
	defer span.End()
	span.SetAttr("pairs", len(pairs))
	req := BatchRequest{SchemaVersion: WireVersion, Lang: c.lang, Pairs: make([]BatchPair, len(pairs))}
	for i, p := range pairs {
		if p.Source == nil || p.Target == nil {
			return nil, fmt.Errorf("diffserve: pair %d: %w", i, derrors.ErrNilTree)
		}
		req.Pairs[i] = BatchPair{
			Source:      c.treeInput(p.Source, force),
			Target:      c.treeInput(p.Target, force),
			Label:       p.Label,
			WantPatched: true,
		}
	}
	var resp BatchResponse
	if err := c.post(ctx, "/v1/batch", tc, req, &resp); err != nil {
		span.SetAttr("err", err.Error())
		return nil, err
	}
	return &resp, nil
}

// Snapshot fetches the server-side engine counters for the client's
// language. Unreachable servers yield the zero snapshot (the method has
// no error return, mirroring the engine's).
func (c *Client) Snapshot() engine.Snapshot {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var resp SnapshotResponse
	if err := c.get(ctx, "/v1/snapshot", &resp); err != nil {
		return engine.Snapshot{}
	}
	if err := CheckWireVersion(resp.SchemaVersion); err != nil {
		return engine.Snapshot{}
	}
	return resp.Langs[c.lang]
}

// Close releases idle connections. The server is unaffected.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// --- transport ---

func (c *Client) post(ctx context.Context, path string, tc telemetry.SpanContext, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("diffserve: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("diffserve: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tc.Valid() {
		req.Header.Set("traceparent", tc.Traceparent())
	}
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("diffserve: %w", err)
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	if c.tenant != "" {
		req.Header.Set("X-Diffd-Tenant", c.tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("diffserve: %w: %v", derrors.ErrServiceUnavailable, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var er ErrorResponse
		if jerr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&er); jerr == nil && er.Error.Kind != "" {
			return wireErr(er.Error)
		}
		return fmt.Errorf("diffserve: server answered %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("diffserve: decode response: %w", err)
	}
	return nil
}

// --- error mapping ---

// kindError carries a wire error into the caller's errors.Is world: it
// wraps the sentinel its kind maps to and keeps the kind for inspection.
type kindError struct {
	kind     string
	msg      string
	sentinel error
	retry    time.Duration
}

func (e *kindError) Error() string {
	if e.retry > 0 {
		return fmt.Sprintf("diffserve: %s (%s; retry after %v)", e.msg, e.kind, e.retry)
	}
	return fmt.Sprintf("diffserve: %s (%s)", e.msg, e.kind)
}

func (e *kindError) Unwrap() error { return e.sentinel }

// RetryAfter extracts the server's retry advice from a saturation error,
// zero if err carries none.
func RetryAfter(err error) time.Duration {
	var ke *kindError
	if errors.As(err, &ke) {
		return ke.retry
	}
	return 0
}

// wireKind returns the wire kind an error was built from, "" for other
// errors.
func wireKind(err error) string {
	var ke *kindError
	if errors.As(err, &ke) {
		return ke.kind
	}
	return ""
}

func wireErr(we WireError) error {
	ke := &kindError{kind: we.Kind, msg: we.Message, retry: time.Duration(we.RetryAfterMS) * time.Millisecond}
	switch we.Kind {
	case ErrKindPanic:
		ke.sentinel = derrors.ErrDiffPanic
	case ErrKindTimeout:
		ke.sentinel = derrors.ErrDiffTimeout
	case ErrKindIllTyped:
		ke.sentinel = derrors.ErrIllTyped
	case ErrKindSaturated, ErrKindDraining:
		ke.sentinel = derrors.ErrServiceUnavailable
	case ErrKindCancelled:
		ke.sentinel = context.Canceled
	}
	return ke
}
