package diffserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/derrors"
	"repro/internal/engine"
	"repro/internal/sig"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/truediff"
	"repro/internal/uri"
)

// Client speaks the diffserve wire protocol and presents the same surface
// as the in-process engine (structdiff.DiffService): Diff, DiffBatch,
// Snapshot, Close. Code written against that interface runs unchanged
// against a local engine or a remote daemon.
//
// The client remembers which trees the server has confirmed interned (by
// content-digest ref) and sends the ref instead of the S-expression on
// later requests — the service's analogue of the engine's whole-tree
// intern store. A server restart invalidates refs; the client detects the
// unknown_ref answer and retries once with the full trees. A Client is
// safe for concurrent use.
//
// The client is also where the network resilience layer lives (see
// retry.go): WithRetry arms transparent retries of transient failures,
// WithBreaker a per-endpoint circuit breaker that fails fast while the
// service is down, and WithHedge tail-latency hedging. All three are off
// by default and cost nothing when off — every request is idempotent
// (diffs are pure functions of digest-identified trees), which is what
// makes aggressive retrying and hedging safe.
type Client struct {
	base   string
	lang   string
	sch    *sig.Schema
	hc     *http.Client
	tenant string
	spans  telemetry.SpanSink

	retry *retrier
	hedge *hedger
	brCfg *BreakerConfig
	m     clientMetrics

	brMu     sync.Mutex
	breakers map[string]*breaker

	refMu sync.Mutex
	refs  map[string]bool
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the http.Client (timeouts, transports). The
// default client carries no flat timeout — per-request deadlines come
// from the caller's context (plus WithRetry's optional per-attempt bound)
// — over a tuned transport (see newTransport).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithRetry arms transparent retries: transient failures — transport
// errors, saturation sheds, drain refusals, 5xx answers, per-attempt
// timeouts — are re-attempted with full-jitter exponential backoff that
// honors the server's Retry-After advice and the request context. The
// zero policy selects DefaultRetryPolicy.
func WithRetry(pol RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = newRetrier(pol) }
}

// WithBreaker arms a per-endpoint circuit breaker: when an endpoint's
// windowed failure rate trips the threshold, calls fail fast with an
// error matching derrors.ErrCircuitOpen instead of piling onto a dead
// service, until a half-open probe succeeds. The zero config selects the
// defaults documented on BreakerConfig.
func WithBreaker(cfg BreakerConfig) ClientOption {
	return func(c *Client) { cc := cfg.withDefaults(); c.brCfg = &cc }
}

// WithHedge arms request hedging for tail latency: an attempt still
// unanswered after the hedge delay (by default the rolling p95 of
// observed attempt latency) is raced against a second copy of the same
// idempotent request; the first response wins and the loser is cancelled.
// The zero config selects the defaults documented on HedgeConfig.
func WithHedge(cfg HedgeConfig) ClientOption {
	return func(c *Client) { c.hedge = newHedger(cfg) }
}

// WithTenant sets the X-Diffd-Tenant header, the identity the server's
// per-tenant concurrency limit accounts against.
func WithTenant(tenant string) ClientOption {
	return func(c *Client) { c.tenant = tenant }
}

// WithSpans enables client-side tracing: each Diff/DiffBatch records a
// span to sink, and the span's context is shipped to the server in the
// W3C traceparent header so the server's request, queue, and engine spans
// join the same trace. Without this option the client still propagates a
// trace context found on ctx (telemetry.ContextWithSpanContext) — it just
// records no spans of its own.
func WithSpans(sink telemetry.SpanSink) ClientOption {
	return func(c *Client) { c.spans = sink }
}

// newTransport builds the client's default transport: explicit dial and
// TLS-handshake timeouts (a dead host fails in seconds, not kernel
// minutes), and an idle pool sized to the engine's default worker count
// (GOMAXPROCS — the number of concurrent diffs a saturated server runs
// per language), so batch fan-out reuses warm connections instead of
// thrashing the dial path. There is deliberately no ResponseHeaderTimeout:
// how long a diff may take is the caller's decision, made per request via
// the context (or per attempt via RetryPolicy.PerAttemptTimeout).
func newTransport() *http.Transport {
	conns := max(runtime.GOMAXPROCS(0), 4)
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: time.Second,
		MaxIdleConns:          2 * conns,
		MaxIdleConnsPerHost:   conns,
		IdleConnTimeout:       90 * time.Second,
	}
}

// startSpan opens the client-side span for one RPC. It returns the span
// (nil when the client has no sink) and the context to propagate: the
// span's own if one was recorded, else whatever the caller carried on ctx.
func (c *Client) startSpan(ctx context.Context, name string) (*telemetry.Span, telemetry.SpanContext) {
	parent := telemetry.SpanContextFromContext(ctx)
	span := telemetry.StartSpan(c.spans, parent, name)
	if span != nil {
		span.SetAttr("lang", c.lang)
		return span, span.Context()
	}
	return nil, parent
}

// NewClient returns a client for one language served at base (e.g.
// "http://localhost:8347"). The schema must match the server's schema for
// that language: it is used to decode patched trees locally.
func NewClient(base, lang string, sch *sig.Schema, opts ...ClientOption) *Client {
	c := &Client{
		base:     base,
		lang:     lang,
		sch:      sch,
		hc:       &http.Client{Transport: newTransport()},
		refs:     make(map[string]bool),
		breakers: make(map[string]*breaker),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// treeInput renders a tree for the wire: a bare ref when the server has
// confirmed this content digest, the S-expression otherwise.
func (c *Client) treeInput(n *tree.Node, force bool) TreeInput {
	if !force && tree.HashedWith(n, tree.SHA256) {
		ref := hexRef(n)
		c.refMu.Lock()
		known := c.refs[ref]
		c.refMu.Unlock()
		if known {
			return TreeInput{Ref: ref}
		}
	}
	return TreeInput{SExpr: tree.EncodeSExpr(n)}
}

func (c *Client) learnRefs(refs ...string) {
	c.refMu.Lock()
	for _, ref := range refs {
		if ref != "" {
			c.refs[ref] = true
		}
	}
	c.refMu.Unlock()
}

func (c *Client) forgetRefs() {
	c.refMu.Lock()
	c.refs = make(map[string]bool)
	c.refMu.Unlock()
}

// Diff diffs source against target on the server and reconstructs the
// result locally: the script is decoded from its versioned envelope and
// the patched tree from its S-expression (with fresh URIs from alloc, or
// a private allocator when nil — server and client URI spaces are
// independent, which is the one visible difference from an in-process
// engine).
func (c *Client) Diff(ctx context.Context, source, target *tree.Node, alloc *uri.Allocator) (*truediff.Result, error) {
	if source == nil || target == nil {
		return nil, fmt.Errorf("diffserve: %w", derrors.ErrNilTree)
	}
	resp, err := c.diffOnce(ctx, source, target, false)
	if err != nil {
		if wireKind(err) == ErrKindUnknownRef {
			// The server lost our refs (restart). Re-send with full trees —
			// but only if the caller is still waiting: a dead context must
			// not spawn a second request.
			if cerr := ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("diffserve: %w", context.Cause(ctx))
			}
			c.forgetRefs()
			c.m.resends.Add(1)
			resp, err = c.diffOnce(ctx, source, target, true)
		}
		if err != nil {
			return nil, err
		}
	}
	return c.toResult(resp, alloc)
}

func (c *Client) diffOnce(ctx context.Context, source, target *tree.Node, force bool) (*DiffResponse, error) {
	span, tc := c.startSpan(ctx, "diffserve.client.diff")
	defer span.End()
	req := DiffRequest{
		SchemaVersion: WireVersion,
		Lang:          c.lang,
		Source:        c.treeInput(source, force),
		Target:        c.treeInput(target, force),
		WantPatched:   true,
	}
	var resp DiffResponse
	if err := c.post(ctx, "/v1/diff", tc, req, &resp); err != nil {
		span.SetAttr("err", err.Error())
		return nil, err
	}
	if resp.Error != nil {
		return nil, wireErr(*resp.Error)
	}
	c.learnRefs(resp.SourceRef, resp.TargetRef)
	return &resp, nil
}

func (c *Client) toResult(resp *DiffResponse, alloc *uri.Allocator) (*truediff.Result, error) {
	if resp.Script == nil {
		return nil, fmt.Errorf("diffserve: response carries neither script nor error")
	}
	script, err := resp.Script.Decode()
	if err != nil {
		return nil, err
	}
	res := &truediff.Result{Script: script}
	if resp.PatchedSExpr != "" {
		if alloc == nil {
			alloc = uri.NewAllocator()
		}
		res.Patched, err = tree.DecodeSExpr(resp.PatchedSExpr, c.sch, alloc)
		if err != nil {
			return nil, fmt.Errorf("diffserve: decode patched tree: %w", err)
		}
	}
	return res, nil
}

// DiffBatch ships the whole batch in one request; the server diffs it as
// one engine batch. Results are index-aligned with pairs; per-pair
// failures land in the pair's Err, exactly as with engine.DiffBatch.
// Pair.Alloc is used to decode that pair's patched tree.
func (c *Client) DiffBatch(ctx context.Context, pairs []engine.Pair) ([]engine.PairResult, error) {
	resp, err := c.batchOnce(ctx, pairs, false)
	if err != nil {
		return nil, err
	}
	retry := false
	for i := range resp.Results {
		if e := resp.Results[i].Error; e != nil && e.Kind == ErrKindUnknownRef {
			retry = true
			break
		}
	}
	if retry {
		// Same contract as Diff's unknown_ref recovery: never re-send on a
		// context the caller has already abandoned, and account for the
		// recovery in the client counters.
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("diffserve: %w", context.Cause(ctx))
		}
		c.forgetRefs()
		c.m.resends.Add(1)
		if resp, err = c.batchOnce(ctx, pairs, true); err != nil {
			return nil, err
		}
	}
	if len(resp.Results) != len(pairs) {
		return nil, fmt.Errorf("diffserve: batch returned %d results for %d pairs", len(resp.Results), len(pairs))
	}
	out := make([]engine.PairResult, len(pairs))
	for i := range resp.Results {
		r := &resp.Results[i]
		if r.Error != nil {
			out[i].Err = wireErr(*r.Error)
			continue
		}
		c.learnRefs(r.SourceRef, r.TargetRef)
		res, err := c.toResult(r, pairs[i].Alloc)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Result = res
		if r.Stats != nil {
			if out[i].Stats, err = r.Stats.ToDiffStats(); err != nil {
				out[i].Err = err
			}
		}
	}
	return out, nil
}

func (c *Client) batchOnce(ctx context.Context, pairs []engine.Pair, force bool) (*BatchResponse, error) {
	span, tc := c.startSpan(ctx, "diffserve.client.batch")
	defer span.End()
	span.SetAttr("pairs", len(pairs))
	req := BatchRequest{SchemaVersion: WireVersion, Lang: c.lang, Pairs: make([]BatchPair, len(pairs))}
	for i, p := range pairs {
		if p.Source == nil || p.Target == nil {
			return nil, fmt.Errorf("diffserve: pair %d: %w", i, derrors.ErrNilTree)
		}
		req.Pairs[i] = BatchPair{
			Source:      c.treeInput(p.Source, force),
			Target:      c.treeInput(p.Target, force),
			Label:       p.Label,
			WantPatched: true,
		}
	}
	var resp BatchResponse
	if err := c.post(ctx, "/v1/batch", tc, req, &resp); err != nil {
		span.SetAttr("err", err.Error())
		return nil, err
	}
	return &resp, nil
}

// Snapshot fetches the server-side engine counters for the client's
// language. Unreachable servers yield the zero snapshot (the method has
// no error return, mirroring the engine's).
func (c *Client) Snapshot() engine.Snapshot {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var resp SnapshotResponse
	if err := c.get(ctx, "/v1/snapshot", &resp); err != nil {
		return engine.Snapshot{}
	}
	if err := CheckWireVersion(resp.SchemaVersion); err != nil {
		return engine.Snapshot{}
	}
	return resp.Langs[c.lang]
}

// Close releases idle connections. The server is unaffected.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// --- transport ---

// post runs one logical request through the resilience pipeline: circuit
// breaker → retry loop → (optionally hedged) HTTP attempt → decode. The
// response is unmarshalled into out only after the winning attempt's body
// has been read in full, so a truncated or corrupted body is a typed,
// retryable transport error — never a half-decoded response.
func (c *Client) post(ctx context.Context, path string, tc telemetry.SpanContext, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("diffserve: encode request: %w", err)
	}
	respBody, err := c.roundTrip(ctx, path, tc, raw)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(respBody, out); err != nil {
		return fmt.Errorf("diffserve: %w: decode response: %v", derrors.ErrServiceUnavailable, err)
	}
	return nil
}

// roundTrip is the retry loop around one endpoint call. With no
// RetryPolicy armed it is a single attempt; with one, transient failures
// are re-attempted under full-jitter backoff until the policy, the
// breaker, or the caller's context says stop.
func (c *Client) roundTrip(ctx context.Context, path string, tc telemetry.SpanContext, raw []byte) ([]byte, error) {
	br := c.breakerFor(path)
	attempts := 1
	if c.retry != nil {
		attempts = c.retry.pol.MaxAttempts
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("diffserve: %w", context.Cause(ctx))
		}
		if br != nil {
			if err := br.allow(); err != nil {
				c.m.breakerFast.Add(1)
				return nil, err
			}
		}
		start := time.Now()
		body, err := c.hedgedAttempt(ctx, path, tc, raw)
		elapsed := time.Since(start)
		br.observe(elapsed, err == nil)
		if err == nil {
			c.hedge.observe(elapsed)
			return body, nil
		}
		lastErr = err
		if attempt+1 >= attempts || !retryable(err) {
			return nil, lastErr
		}
		delay := c.retry.backoff(attempt, RetryAfter(err))
		if serr := sleepCtx(ctx, delay); serr != nil {
			return nil, serr
		}
		c.m.retries.Add(1)
	}
}

// breakerFor returns the endpoint's breaker, creating it on first use;
// nil when no breaker is armed.
func (c *Client) breakerFor(path string) *breaker {
	if c.brCfg == nil {
		return nil
	}
	c.brMu.Lock()
	defer c.brMu.Unlock()
	b := c.breakers[path]
	if b == nil {
		b = newBreaker(*c.brCfg, &c.m.breakerOpens)
		c.breakers[path] = b
	}
	return b
}

// hedgedAttempt runs one retry-loop attempt. Without hedging it is a
// plain attempt. With hedging, an attempt still unanswered after the
// hedge delay is raced against up to HedgeConfig.Max additional copies:
// the first success wins and cancels the rest; if every launched copy
// fails, the first failure is reported (the retry loop takes it from
// there).
func (c *Client) hedgedAttempt(ctx context.Context, path string, tc telemetry.SpanContext, raw []byte) ([]byte, error) {
	if c.hedge == nil {
		return c.attempt(ctx, path, tc, raw)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel() // the loser (if any) is cancelled here

	type outcome struct {
		body []byte
		err  error
	}
	results := make(chan outcome, c.hedge.cfg.Max+1)
	launch := func() {
		go func() {
			body, err := c.attempt(actx, path, tc, raw)
			results <- outcome{body, err}
		}()
	}
	launch()
	launched := 1

	timer := time.NewTimer(c.hedge.delay())
	defer timer.Stop()
	var firstErr error
	for done := 0; done < launched; {
		select {
		case r := <-results:
			done++
			if r.err == nil {
				return r.body, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
		case <-timer.C:
			if launched <= c.hedge.cfg.Max {
				c.m.hedges.Add(1)
				launch()
				launched++
				timer.Reset(c.hedge.delay())
			}
		case <-ctx.Done():
			return nil, fmt.Errorf("diffserve: %w", context.Cause(ctx))
		}
	}
	return nil, firstErr
}

// attempt performs exactly one HTTP exchange and classifies its outcome:
//
//   - a transport failure, per-attempt timeout, truncated body, or
//     undecodable error answer is wrapped in ErrServiceUnavailable
//     (transient, retryable);
//   - a >= 400 answer carrying a wire error becomes that typed error;
//   - the caller's own context expiry surfaces as the context's cause.
//
// On success it returns the fully read response body.
func (c *Client) attempt(ctx context.Context, path string, tc telemetry.SpanContext, raw []byte) ([]byte, error) {
	c.m.attempts.Add(1)
	actx := ctx
	if c.retry != nil && c.retry.pol.PerAttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.retry.pol.PerAttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("diffserve: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tc.Valid() {
		req.Header.Set("traceparent", tc.Traceparent())
	}
	if c.tenant != "" {
		req.Header.Set("X-Diffd-Tenant", c.tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("diffserve: %w", context.Cause(ctx))
		}
		// Connection failures and per-attempt timeouts both land here;
		// either way the attempt is dead and a replay is safe.
		return nil, fmt.Errorf("diffserve: %w: %v", derrors.ErrServiceUnavailable, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("diffserve: %w", context.Cause(ctx))
		}
		return nil, fmt.Errorf("diffserve: %w: read response: %v", derrors.ErrServiceUnavailable, err)
	}
	if resp.StatusCode >= 400 {
		return nil, errorFromResponse(resp, body)
	}
	return body, nil
}

// maxResponseBytes bounds how much of a response the client will buffer —
// a defensive mirror of the server's MaxBody default (trees travel both
// ways, so the bounds match).
const maxResponseBytes = 64 << 20

// errorFromResponse turns a >= 400 answer into a typed error: the wire
// error when the body carries one (merging in the Retry-After header as a
// fallback for the body's retry_after_ms), or a status-classified error
// for answers from intermediaries that do not speak the wire schema
// (load balancers, proxies) — 429/5xx map to the transient
// ErrServiceUnavailable, other 4xx to a permanent failure.
func errorFromResponse(resp *http.Response, body []byte) error {
	var er ErrorResponse
	if jerr := json.Unmarshal(body, &er); jerr == nil && er.Error.Kind != "" {
		if er.Error.RetryAfterMS <= 0 {
			er.Error.RetryAfterMS = retryAfterHeader(resp.Header.Get("Retry-After")).Milliseconds()
		}
		return wireErr(er.Error)
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
		return &kindError{
			kind:     ErrKindSaturated,
			msg:      fmt.Sprintf("server answered %s", resp.Status),
			sentinel: derrors.ErrServiceUnavailable,
			retry:    retryAfterHeader(resp.Header.Get("Retry-After")),
		}
	}
	return fmt.Errorf("diffserve: server answered %s", resp.Status)
}

// retryAfterHeader parses an HTTP Retry-After header's delay-seconds
// form. Zero, negative, absent, and garbage values (including the
// HTTP-date form, which the server never emits) yield zero — no advice.
func retryAfterHeader(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("diffserve: %w", err)
	}
	if c.tenant != "" {
		req.Header.Set("X-Diffd-Tenant", c.tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("diffserve: %w: %v", derrors.ErrServiceUnavailable, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return errorFromResponse(resp, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("diffserve: decode response: %w", err)
	}
	return nil
}

// --- error mapping ---

// kindError carries a wire error into the caller's errors.Is world: it
// wraps the sentinel its kind maps to and keeps the kind for inspection.
type kindError struct {
	kind     string
	msg      string
	sentinel error
	retry    time.Duration
}

func (e *kindError) Error() string {
	if e.retry > 0 {
		return fmt.Sprintf("diffserve: %s (%s; retry after %v)", e.msg, e.kind, e.retry)
	}
	return fmt.Sprintf("diffserve: %s (%s)", e.msg, e.kind)
}

func (e *kindError) Unwrap() error { return e.sentinel }

// RetryAfter extracts the server's retry advice from a saturation error,
// zero if err carries none. The advice is sourced from the wire error's
// retry_after_ms field when present, else from the HTTP Retry-After
// header (delay-seconds form; see errorFromResponse for the precedence).
func RetryAfter(err error) time.Duration {
	var ke *kindError
	if errors.As(err, &ke) {
		return ke.retry
	}
	return 0
}

// wireKind returns the wire kind an error was built from, "" for other
// errors.
func wireKind(err error) string {
	var ke *kindError
	if errors.As(err, &ke) {
		return ke.kind
	}
	return ""
}

func wireErr(we WireError) error {
	ke := &kindError{kind: we.Kind, msg: we.Message, retry: time.Duration(we.RetryAfterMS) * time.Millisecond}
	switch we.Kind {
	case ErrKindPanic:
		ke.sentinel = derrors.ErrDiffPanic
	case ErrKindTimeout:
		ke.sentinel = derrors.ErrDiffTimeout
	case ErrKindIllTyped:
		ke.sentinel = derrors.ErrIllTyped
	case ErrKindSaturated, ErrKindDraining:
		ke.sentinel = derrors.ErrServiceUnavailable
	case ErrKindCancelled:
		ke.sentinel = context.Canceled
	}
	return ke
}
