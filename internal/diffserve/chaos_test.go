package diffserve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/derrors"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/tree"
	"repro/internal/uri"
)

// The chaos suite validates the resilience invariant end to end: with a
// seeded fault proxy between client and server, every DiffBatch either
// returns correct index-aligned results or a typed error — never a
// silent loss, a duplicated/misaligned result, or a hung goroutine.

// chaosProxy starts a fault proxy in front of the test server.
func chaosProxy(t *testing.T, target string, cfg chaos.Config) *chaos.Proxy {
	t.Helper()
	cfg.Target = target
	p, err := chaos.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// typedError reports whether err is one of the client's documented
// failure modes — a sentinel the caller can errors.Is against, or a
// typed wire-kind error. Anything else is an invariant violation.
func typedError(err error) bool {
	for _, sentinel := range []error{
		derrors.ErrServiceUnavailable,
		derrors.ErrCircuitOpen,
		derrors.ErrDiffPanic,
		derrors.ErrDiffTimeout,
		derrors.ErrIllTyped,
		derrors.ErrNilTree,
		context.Canceled,
		context.DeadlineExceeded,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return wireKind(err) != ""
}

// settleWorkers waits until the language engine's cumulative worker-busy
// time stops growing with an empty queue — the no-wedged-worker check.
func settleWorkers(t *testing.T, srv *Server, lang string) {
	t.Helper()
	eng := srv.langs[lang].eng
	deadline := time.Now().Add(10 * time.Second)
	for {
		s1 := eng.Snapshot()
		time.Sleep(50 * time.Millisecond)
		s2 := eng.Snapshot()
		if s2.WorkerCapacity == s1.WorkerCapacity && s2.QueueDepth == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine workers still busy after chaos run (capacity %v -> %v, queue %d)",
				s1.WorkerCapacity, s2.WorkerCapacity, s2.QueueDepth)
		}
	}
}

// settleGoroutines waits for the goroutine count to return to (near) the
// baseline — the no-leaked-goroutine check. Slack covers the runtime's
// own background goroutines and lingering keep-alive conns.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+8 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d at start, %d after settle\n%s",
				base, runtime.NumGoroutine(), buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestChaosBatchInvariant runs several seeded fault schedules against a
// retrying client and asserts the invariant on every DiffBatch.
func TestChaosBatchInvariant(t *testing.T) {
	srv, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 4, MaxQueue: 1024})
	// Each DiffBatch is one wire request, so a schedule sees roughly
	// iterations + retries fault draws: rates are set high enough that
	// every seeded schedule provably injects.
	schedules := []chaos.Config{
		{Seed: 1, ResetRate: 0.10, ErrorRate: 0.10, TruncateRate: 0.10},
		{Seed: 2, ErrorRate: 0.25, ErrorBurst: 3},
		{Seed: 3, ResetRate: 0.25, LatencyRate: 0.30, Latency: 5 * time.Millisecond},
		{Seed: 4, TruncateRate: 0.20, ErrorRate: 0.10},
	}

	const nPairs = 12
	pairs := make([]engine.Pair, nPairs)
	targets := make([]*tree.Node, nPairs)
	for i := range pairs {
		src, dst := genPair(int64(i+1), 40)
		pairs[i] = engine.Pair{Source: src, Target: dst, Label: fmt.Sprintf("chaos#%d", i), Alloc: uri.NewAllocator()}
		targets[i] = dst
	}

	for _, sched := range schedules {
		sched := sched
		t.Run(fmt.Sprintf("seed%d", sched.Seed), func(t *testing.T) {
			base := runtime.NumGoroutine()
			p := chaosProxy(t, hs.URL, sched)
			c := NewClient(p.URL(), "exp", exp.Schema(),
				WithRetry(RetryPolicy{
					MaxAttempts: 6, BaseBackoff: time.Millisecond,
					MaxBackoff: 20 * time.Millisecond, PerAttemptTimeout: 5 * time.Second,
					Seed: sched.Seed,
				}))
			defer c.Close()

			for iter := 0; iter < 12; iter++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				res, err := c.DiffBatch(ctx, pairs)
				cancel()
				if err != nil {
					if !typedError(err) {
						t.Fatalf("iter %d: untyped batch error: %v", iter, err)
					}
					continue
				}
				if len(res) != nPairs {
					t.Fatalf("iter %d: %d results for %d pairs (silent loss/duplication)", iter, len(res), nPairs)
				}
				for i := range res {
					switch {
					case res[i].Err != nil:
						if !typedError(res[i].Err) {
							t.Fatalf("iter %d pair %d: untyped error: %v", iter, i, res[i].Err)
						}
					case res[i].Result == nil || res[i].Result.Patched == nil:
						t.Fatalf("iter %d pair %d: no error and no patched tree", iter, i)
					case res[i].Result.Patched.ExactHash() != targets[i].ExactHash():
						// The patched tree must be pair i's target — a mismatch
						// means results were misaligned or corrupted in flight.
						t.Fatalf("iter %d pair %d: patched tree is not this pair's target (misaligned results)", iter, i)
					}
				}
			}
			if c := p.Counts(); c.Faults()+c.Delays == 0 {
				t.Fatalf("schedule injected nothing — chaos config inert: %+v", c)
			}
			_ = c.Close()
			_ = p.Close()
			settleWorkers(t, srv, "exp")
			settleGoroutines(t, base)
		})
	}
}

// TestChaosRetrySuccessRate is the acceptance gate: at a 10% injected
// fault rate, the retrying client sustains >99% end-to-end success while
// the no-retry baseline demonstrably fails.
func TestChaosRetrySuccessRate(t *testing.T) {
	_, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 4, MaxQueue: 1024})
	// 4% resets + 3% errors + 3% truncations = 10% total fault rate.
	faults := chaos.Config{Seed: 7, ResetRate: 0.04, ErrorRate: 0.03, TruncateRate: 0.03}
	const n = 300

	run := func(c *Client) (fails int) {
		for i := 0; i < n; i++ {
			src, dst := genPair(int64(i+1), 20)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_, err := c.Diff(ctx, src, dst, nil)
			cancel()
			if err != nil {
				if !typedError(err) {
					t.Fatalf("request %d: untyped error: %v", i, err)
				}
				fails++
			}
		}
		return fails
	}

	// Baseline: same fault schedule, no retries.
	pb := chaosProxy(t, hs.URL, faults)
	base := NewClient(pb.URL(), "exp", exp.Schema())
	baseFails := run(base)
	_ = base.Close()
	_ = pb.Close()
	if baseFails == 0 {
		t.Fatal("no-retry baseline never failed at 10% fault rate — injection inert, test proves nothing")
	}

	// Retrying client: same schedule from the same seed.
	pr := chaosProxy(t, hs.URL, faults)
	rc := NewClient(pr.URL(), "exp", exp.Schema(),
		WithRetry(RetryPolicy{
			MaxAttempts: 6, BaseBackoff: time.Millisecond,
			MaxBackoff: 20 * time.Millisecond, PerAttemptTimeout: 5 * time.Second,
			Seed: 7,
		}))
	defer rc.Close()
	fails := run(rc)
	rate := float64(n-fails) / float64(n)
	t.Logf("baseline: %d/%d failed; retrying: %d/%d failed (%.2f%% success, %d retries)",
		baseFails, n, fails, n, 100*rate, rc.ClientSnapshot().Retries)
	if rate <= 0.99 {
		t.Fatalf("retrying client success rate %.4f, want > 0.99", rate)
	}
	if rc.ClientSnapshot().Retries == 0 {
		t.Fatal("retrying client recorded no retries under 10%% faults")
	}
}

// TestChaosBlackholeBounded pins the per-attempt budget: against a 100%
// blackhole, a retrying client fails within MaxAttempts × PerAttemptTimeout
// instead of hanging on the first dead connection.
func TestChaosBlackholeBounded(t *testing.T) {
	srv, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 2})
	base := runtime.NumGoroutine()
	p := chaosProxy(t, hs.URL, chaos.Config{Seed: 5, BlackholeRate: 1})
	c := NewClient(p.URL(), "exp", exp.Schema(),
		WithRetry(RetryPolicy{
			MaxAttempts: 2, BaseBackoff: time.Millisecond,
			MaxBackoff: 2 * time.Millisecond, PerAttemptTimeout: 100 * time.Millisecond,
			Seed: 5,
		}))
	src, dst := genPair(9, 20)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	_, err := c.Diff(ctx, src, dst, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, derrors.ErrServiceUnavailable) {
		t.Fatalf("blackholed Diff = %v, want ErrServiceUnavailable", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("blackholed Diff took %v — per-attempt budget not enforced", elapsed)
	}
	if snap := c.ClientSnapshot(); snap.Attempts != 2 {
		t.Fatalf("attempts = %d, want exactly 2", snap.Attempts)
	}
	_ = c.Close()
	_ = p.Close()
	settleWorkers(t, srv, "exp")
	settleGoroutines(t, base)
}

// TestReadyzSplitsFromHealthz pins the probe contract: /healthz is pure
// liveness (200 even while draining), /readyz carries the routing
// decision (503 on lameduck, then drain).
func TestReadyzSplitsFromHealthz(t *testing.T) {
	srv, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 2})
	status := func(path string) int {
		resp, err := hs.Client().Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if s := status("/healthz"); s != 200 {
		t.Fatalf("/healthz = %d, want 200", s)
	}
	if s := status("/readyz"); s != 200 {
		t.Fatalf("/readyz = %d, want 200", s)
	}

	// Lameduck: unready for routing, alive, still serving diffs.
	srv.Lameduck()
	if s := status("/readyz"); s != 503 {
		t.Fatalf("/readyz after Lameduck = %d, want 503", s)
	}
	if s := status("/healthz"); s != 200 {
		t.Fatalf("/healthz after Lameduck = %d, want 200 (lameduck is not death)", s)
	}
	c := NewClient(hs.URL, "exp", exp.Schema())
	defer c.Close()
	src, dst := genPair(11, 20)
	if _, err := c.Diff(context.Background(), src, dst, nil); err != nil {
		t.Fatalf("Diff during lameduck: %v (lameduck must keep serving)", err)
	}

	// Drain: still alive on /healthz, unready on /readyz, refusing diffs.
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if s := status("/readyz"); s != 503 {
		t.Fatalf("/readyz while draining = %d, want 503", s)
	}
	if s := status("/healthz"); s != 200 {
		t.Fatalf("/healthz while draining = %d, want 200 (draining is not death)", s)
	}
	if _, err := c.Diff(context.Background(), src, dst, nil); !errors.Is(err, derrors.ErrServiceUnavailable) {
		t.Fatalf("Diff while draining = %v, want ErrServiceUnavailable", err)
	}
}

// TestReadyzSaturation flips /readyz on backlog alone: a tiny MaxQueue
// with a low ReadyFraction goes unready once jobs pile up.
func TestReadyzSaturation(t *testing.T) {
	// ReadyFraction 0: any nonzero backlog is unready (the threshold is
	// deliberately below the shed point, so readiness reacts first).
	srv, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 1, MaxQueue: 4, ReadyFraction: 0.25})
	if srv.saturated() {
		t.Fatal("idle server reports saturated")
	}
	// Fake a backlog through the pending gauge (the same signal admit uses).
	srv.m.pending.Add(2)
	defer srv.m.pending.Add(-2)
	resp, err := hs.Client().Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("/readyz with backlogged queue = %d, want 503", resp.StatusCode)
	}
}
