package diffserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/derrors"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/tree"
	"repro/internal/uri"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})
	return srv, hs
}

func genPair(seed int64, size int) (*tree.Node, *tree.Node) {
	g := exp.NewGen(seed)
	before := g.Tree(size)
	after := g.MutateN(before, 3)
	return before, after
}

func TestDiffRoundTrip(t *testing.T) {
	_, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 2})
	c := NewClient(hs.URL, "exp", exp.Schema())
	defer c.Close()

	src, dst := genPair(1, 80)
	res, err := c.Diff(context.Background(), src, dst, uri.NewAllocator())
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if res.Script == nil {
		t.Fatal("no script in result")
	}
	if res.Patched == nil {
		t.Fatal("no patched tree in result")
	}
	// The patched tree must be content-identical to the target; URIs are
	// server-assigned and differ, but content digests ignore them.
	if res.Patched.ExactHash() != dst.ExactHash() {
		t.Error("patched tree differs from target")
	}

	// Reference: the same pair diffed in-process produces the same number
	// of edits (the service adds transport, not algorithm).
	eng := engine.New(exp.Schema(), engine.Config{Workers: 1})
	defer eng.Close()
	local, err := eng.Diff(context.Background(), eng.Ingest(src, nil), eng.Ingest(dst, nil), nil)
	if err != nil {
		t.Fatalf("local Diff: %v", err)
	}
	if got, want := res.Script.EditCount(), local.Script.EditCount(); got != want {
		t.Errorf("service produced %d edits, local engine %d", got, want)
	}
}

func TestRefReuseAndRecovery(t *testing.T) {
	srv, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 1})
	c := NewClient(hs.URL, "exp", exp.Schema())
	defer c.Close()

	src, dst := genPair(2, 60)
	if _, err := c.Diff(context.Background(), src, dst, nil); err != nil {
		t.Fatalf("first Diff: %v", err)
	}
	// The client learned both refs; the same trees now travel as refs and
	// hit the server's intern store instead of re-decoding.
	in := c.treeInput(src, false)
	if in.Ref == "" || in.SExpr != "" {
		t.Fatalf("after first diff, source should be sent by ref, got %+v", in)
	}
	before := srv.langs["exp"].eng.Snapshot()
	if _, err := c.Diff(context.Background(), src, dst, nil); err != nil {
		t.Fatalf("ref Diff: %v", err)
	}
	delta := srv.langs["exp"].eng.Snapshot().Sub(before)
	if delta.IngestedTrees != 0 {
		t.Errorf("ref-only diff ingested %d trees, want 0", delta.IngestedTrees)
	}

	// A client whose refs the server never saw (fresh server = restart)
	// must recover transparently: unknown_ref answer, one retry with the
	// full S-expressions.
	_, hs2 := testServer(t, Config{Langs: []string{"exp"}, Workers: 1})
	c2 := NewClient(hs2.URL, "exp", exp.Schema())
	defer c2.Close()
	c2.learnRefs(hexRef(src), hexRef(dst)) // poison: refs from the old server
	if _, err := c2.Diff(context.Background(), src, dst, nil); err != nil {
		t.Fatalf("Diff after server restart: %v", err)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 2})
	c := NewClient(hs.URL, "exp", exp.Schema())
	defer c.Close()

	pairs := make([]engine.Pair, 4)
	for i := range pairs {
		src, dst := genPair(int64(10+i), 50)
		pairs[i] = engine.Pair{Source: src, Target: dst, Label: fmt.Sprintf("pair-%d", i)}
	}
	results, err := c.DiffBatch(context.Background(), pairs)
	if err != nil {
		t.Fatalf("DiffBatch: %v", err)
	}
	if len(results) != len(pairs) {
		t.Fatalf("got %d results, want %d", len(results), len(pairs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("pair %d: %v", i, r.Err)
			continue
		}
		if r.Result.Patched.ExactHash() != pairs[i].Target.ExactHash() {
			t.Errorf("pair %d: patched tree differs from target", i)
		}
		if r.Stats.Edits != r.Result.Script.EditCount() {
			t.Errorf("pair %d: stats report %d edits, script has %d", i, r.Stats.Edits, r.Result.Script.EditCount())
		}
	}
}

// TestWireVersionTolerance is the decode-tolerance contract: same-major
// envelopes (any minor) decode, other majors are rejected before any edit
// is parsed — on the script envelope and on the HTTP surface.
func TestWireVersionTolerance(t *testing.T) {
	if err := CheckWireVersion("1.0"); err != nil {
		t.Errorf("1.0: %v", err)
	}
	if err := CheckWireVersion("1.7"); err != nil {
		t.Errorf("higher minor of same major must be accepted: %v", err)
	}
	for _, v := range []string{"", "2.0", "0.9", "banana", "v1"} {
		if err := CheckWireVersion(v); err == nil {
			t.Errorf("CheckWireVersion(%q): expected rejection", v)
		}
	}

	// A v2 script envelope must fail cleanly even when its edits are not
	// parseable by this build at all.
	w := &WireScript{SchemaVersion: "2.0", Edits: json.RawMessage(`[{"op":"quantum_swap"}]`)}
	if _, err := w.Decode(); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Errorf("v2 script decode: got %v, want schema_version rejection", err)
	}

	_, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 1})
	body, _ := json.Marshal(DiffRequest{
		SchemaVersion: "2.0",
		Lang:          "exp",
		Source:        TreeInput{SExpr: "(Num 1)"},
		Target:        TreeInput{SExpr: "(Num 2)"},
	})
	resp, err := http.Post(hs.URL+"/v1/diff", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("v2 request: status %d, want 400", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode error response: %v", err)
	}
	if er.Error.Kind != ErrKindBadRequest {
		t.Errorf("v2 request: kind %q, want %q", er.Error.Kind, ErrKindBadRequest)
	}
}

// TestPanicSurvival is the tentpole's resilience requirement: a poisoned
// request produces a typed panic response, and the daemon keeps serving.
func TestPanicSurvival(t *testing.T) {
	inj := faultinject.New(1, faultinject.Fault{
		Site: engine.FaultSiteDiff, Kind: faultinject.Panic, Times: 1,
	})
	_, hs := testServer(t, Config{
		Langs: []string{"exp"}, Workers: 1,
		DisableFallback: true, Faults: inj,
	})
	c := NewClient(hs.URL, "exp", exp.Schema())
	defer c.Close()

	src, dst := genPair(3, 60)
	_, err := c.Diff(context.Background(), src, dst, nil)
	if !errors.Is(err, derrors.ErrDiffPanic) {
		t.Fatalf("poisoned request: err = %v, want ErrDiffPanic", err)
	}
	// The process survived; the next request must succeed.
	if _, err := c.Diff(context.Background(), src, dst, nil); err != nil {
		t.Fatalf("request after panic: %v", err)
	}
}

// TestFallbackRescuesPanic: with graceful degradation on (the default),
// the same poisoned request succeeds with a root-replacement script.
func TestFallbackRescuesPanic(t *testing.T) {
	inj := faultinject.New(1, faultinject.Fault{
		Site: engine.FaultSiteDiff, Kind: faultinject.Panic, Times: 1,
	})
	_, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 1, Faults: inj})
	c := NewClient(hs.URL, "exp", exp.Schema())
	defer c.Close()

	src, dst := genPair(4, 60)
	res, err := c.Diff(context.Background(), src, dst, nil)
	if err != nil {
		t.Fatalf("Diff with fallback: %v", err)
	}
	if res.Patched.ExactHash() != dst.ExactHash() {
		t.Error("fallback script did not reproduce the target")
	}
}

// TestSaturationSheds exercises queue backpressure: with a single worker
// wedged on a slow diff and a queue of one, the next request must be shed
// with 429, a Retry-After header, and a typed saturated error.
func TestSaturationSheds(t *testing.T) {
	inj := faultinject.New(1, faultinject.Fault{
		Site: engine.FaultSiteDiff, Kind: faultinject.Delay, Delay: 500 * time.Millisecond,
	})
	srv, hs := testServer(t, Config{
		Langs: []string{"exp"}, Workers: 1,
		MaxQueue: 1, BatchWindow: time.Millisecond,
		Faults: inj,
	})
	c := NewClient(hs.URL, "exp", exp.Schema())
	defer c.Close()

	src, dst := genPair(5, 60)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Diff(context.Background(), src, dst, nil); err != nil {
			t.Errorf("slow Diff: %v", err)
		}
	}()
	// Wait until the slow request occupies the queue.
	deadline := time.Now().Add(2 * time.Second)
	for srv.m.pending.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never became pending")
		}
		time.Sleep(time.Millisecond)
	}

	body, _ := json.Marshal(DiffRequest{
		SchemaVersion: WireVersion, Lang: "exp",
		Source: TreeInput{SExpr: tree.EncodeSExpr(src)},
		Target: TreeInput{SExpr: tree.EncodeSExpr(dst)},
	})
	resp, err := http.Post(hs.URL+"/v1/diff", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After header")
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode shed response: %v", err)
	}
	if er.Error.Kind != ErrKindSaturated {
		t.Errorf("shed kind = %q, want %q", er.Error.Kind, ErrKindSaturated)
	}
	if errors.Is(wireErr(er.Error), derrors.ErrServiceUnavailable) == false {
		t.Error("saturated wire error does not map to ErrServiceUnavailable")
	}
	if srv.m.sheds.Load() == 0 {
		t.Error("shed counter did not advance")
	}
	wg.Wait()
}

// TestTenantLimit: one tenant at its concurrency cap is shed while
// another tenant is still admitted.
func TestTenantLimit(t *testing.T) {
	inj := faultinject.New(1, faultinject.Fault{
		Site: engine.FaultSiteDiff, Kind: faultinject.Delay, Delay: 300 * time.Millisecond,
	})
	srv, hs := testServer(t, Config{
		Langs: []string{"exp"}, Workers: 1, TenantLimit: 1,
		BatchWindow: time.Millisecond, Faults: inj,
	})
	greedy := NewClient(hs.URL, "exp", exp.Schema(), WithTenant("greedy"))
	defer greedy.Close()
	polite := NewClient(hs.URL, "exp", exp.Schema(), WithTenant("polite"))
	defer polite.Close()

	src, dst := genPair(6, 60)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := greedy.Diff(context.Background(), src, dst, nil); err != nil {
			t.Errorf("greedy's first Diff: %v", err)
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		srv.tenantMu.Lock()
		n := srv.tenants["greedy"]
		srv.tenantMu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("greedy's request never acquired its tenant slot")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := greedy.Diff(context.Background(), src, dst, nil)
	if !errors.Is(err, derrors.ErrServiceUnavailable) {
		t.Fatalf("greedy over limit: err = %v, want ErrServiceUnavailable", err)
	}
	if _, err := polite.Diff(context.Background(), src, dst, nil); err != nil {
		t.Fatalf("polite tenant was shed with greedy: %v", err)
	}
	wg.Wait()
}

// TestGracefulDrain is the shutdown contract: requests in flight when the
// drain begins complete normally, requests arriving after it get a clean
// 503, and the engine counters reconcile — every admitted diff is
// accounted for, none leak.
func TestGracefulDrain(t *testing.T) {
	inj := faultinject.New(1, faultinject.Fault{
		Site: engine.FaultSiteDiff, Kind: faultinject.Delay, Delay: 50 * time.Millisecond,
	})
	srv, hs := testServer(t, Config{
		Langs: []string{"exp"}, Workers: 2,
		BatchWindow: 5 * time.Millisecond, Faults: inj,
	})
	c := NewClient(hs.URL, "exp", exp.Schema())
	defer c.Close()

	const inflight = 4
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func(i int) {
			src, dst := genPair(int64(100+i), 60)
			_, err := c.Diff(context.Background(), src, dst, nil)
			errs <- err
		}(i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.m.pending.Load() < inflight {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests became pending", srv.m.pending.Load(), inflight)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// In-flight requests completed or were answered with the clean
	// draining error — never a connection drop or a hang.
	completed := 0
	for i := 0; i < inflight; i++ {
		if err := <-errs; err == nil {
			completed++
		} else if !errors.Is(err, derrors.ErrServiceUnavailable) {
			t.Errorf("in-flight request failed with %v, want nil or ErrServiceUnavailable", err)
		}
	}

	// New work is refused with a typed draining error.
	src, dst := genPair(200, 40)
	if _, err := c.Diff(context.Background(), src, dst, nil); !errors.Is(err, derrors.ErrServiceUnavailable) {
		t.Fatalf("post-drain Diff: err = %v, want ErrServiceUnavailable", err)
	}

	// Counters reconcile: the engine finished exactly the diffs that were
	// dispatched (completed requests), its queue is empty, nothing is
	// pending, and the intern store was released by Close.
	s := srv.langs["exp"].eng.Snapshot()
	if s.QueueDepth != 0 {
		t.Errorf("QueueDepth after drain = %d, want 0", s.QueueDepth)
	}
	if got := srv.m.pending.Load(); got != 0 {
		t.Errorf("pending gauge after drain = %d, want 0", got)
	}
	if s.Diffs != uint64(completed) {
		t.Errorf("engine completed %d diffs, but %d requests succeeded", s.Diffs, completed)
	}
	if s.StoreEntries != 0 {
		t.Errorf("intern store holds %d trees after drain, want 0", s.StoreEntries)
	}
	if !srv.Draining() {
		t.Error("server does not report draining")
	}

	// Drain is idempotent.
	if err := srv.Drain(ctx); err != nil {
		t.Errorf("second Drain: %v", err)
	}
}

// TestMetricsExposition: the service exposes its own metrics and every
// engine's, language-labelled, in parseable Prometheus text format.
func TestMetricsExposition(t *testing.T) {
	_, hs := testServer(t, Config{Langs: []string{"exp", "jsonlang"}, Workers: 1})
	c := NewClient(hs.URL, "exp", exp.Schema())
	defer c.Close()
	src, dst := genPair(7, 50)
	if _, err := c.Diff(context.Background(), src, dst, nil); err != nil {
		t.Fatalf("Diff: %v", err)
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"diffserve_requests_total 1",
		"diffserve_sheds_total 0",
		"diffserve_request_duration_seconds_count 1",
		`structdiff_diffs_total{lang="exp"} 1`,
		`structdiff_diffs_total{lang="jsonlang"} 0`,
		`structdiff_engine_queue_depth{lang="exp"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
}

// TestSnapshotEndpoint: client Snapshot surfaces the server-side engine
// counters for its language.
func TestSnapshotEndpoint(t *testing.T) {
	_, hs := testServer(t, Config{Langs: []string{"exp"}, Workers: 1})
	c := NewClient(hs.URL, "exp", exp.Schema())
	defer c.Close()
	src, dst := genPair(8, 50)
	if _, err := c.Diff(context.Background(), src, dst, nil); err != nil {
		t.Fatalf("Diff: %v", err)
	}
	s := c.Snapshot()
	if s.Diffs != 1 {
		t.Errorf("Snapshot.Diffs = %d, want 1", s.Diffs)
	}
	bad := NewClient("http://127.0.0.1:1", "exp", exp.Schema())
	defer bad.Close()
	if s := bad.Snapshot(); s.Diffs != 0 {
		t.Errorf("unreachable server yielded non-zero snapshot: %+v", s)
	}
}

// TestCoalescing: requests arriving within one window run as one engine
// batch.
func TestCoalescing(t *testing.T) {
	srv, hs := testServer(t, Config{
		Langs: []string{"exp"}, Workers: 2,
		BatchWindow: 50 * time.Millisecond, BatchMax: 8,
	})
	c := NewClient(hs.URL, "exp", exp.Schema())
	defer c.Close()

	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src, dst := genPair(int64(300+i), 50)
			if _, err := c.Diff(context.Background(), src, dst, nil); err != nil {
				t.Errorf("Diff %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if batches, diffs := srv.m.batches.Load(), srv.langs["exp"].eng.Snapshot().Diffs; batches >= diffs && diffs > 1 {
		t.Errorf("no coalescing: %d batches for %d diffs", batches, diffs)
	}
}
