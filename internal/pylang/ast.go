package pylang

import (
	"fmt"

	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/uri"
)

// Factory constructs Python AST nodes as typed trees. It wraps a schema and
// a URI allocator; one factory typically serves one document (or one
// synthetic repository), so URIs stay unique across versions.
type Factory struct {
	sch   *sig.Schema
	alloc *uri.Allocator
}

// NewFactory returns a factory over a fresh Python schema and allocator.
func NewFactory() *Factory {
	return &Factory{sch: Schema(), alloc: uri.NewAllocator()}
}

// NewFactoryWith returns a factory over an existing schema and allocator.
func NewFactoryWith(sch *sig.Schema, alloc *uri.Allocator) *Factory {
	return &Factory{sch: sch, alloc: alloc}
}

// Schema returns the factory's schema.
func (f *Factory) Schema() *sig.Schema { return f.sch }

// Alloc returns the factory's URI allocator.
func (f *Factory) Alloc() *uri.Allocator { return f.alloc }

// node constructs a validated node; construction errors indicate factory or
// parser bugs (the schema is fixed), so they panic with context.
func (f *Factory) node(tag sig.Tag, kids []*tree.Node, lits []any) *tree.Node {
	n, err := tree.New(f.sch, f.alloc, tag, kids, lits)
	if err != nil {
		panic(fmt.Sprintf("pylang: internal construction error: %v", err))
	}
	return n
}

// Module wraps a statement list into a module.
func (f *Factory) Module(body *tree.Node) *tree.Node {
	return f.node(TagModule, []*tree.Node{body}, nil)
}

// StmtList builds the cons-list spine for a statement suite.
func (f *Factory) StmtList(stmts ...*tree.Node) *tree.Node {
	out := f.node(TagStmtNil, nil, nil)
	for i := len(stmts) - 1; i >= 0; i-- {
		out = f.node(TagStmtCons, []*tree.Node{stmts[i], out}, nil)
	}
	return out
}

// ExprList builds the cons-list spine for an expression list.
func (f *Factory) ExprList(exprs ...*tree.Node) *tree.Node {
	out := f.node(TagExprNil, nil, nil)
	for i := len(exprs) - 1; i >= 0; i-- {
		out = f.node(TagExprCons, []*tree.Node{exprs[i], out}, nil)
	}
	return out
}

// ParamList builds the cons-list spine for a parameter list.
func (f *Factory) ParamList(params ...*tree.Node) *tree.Node {
	out := f.node(TagParamNil, nil, nil)
	for i := len(params) - 1; i >= 0; i-- {
		out = f.node(TagParamCons, []*tree.Node{params[i], out}, nil)
	}
	return out
}

// KVList builds the cons-list spine for dictionary items.
func (f *Factory) KVList(items ...*tree.Node) *tree.Node {
	out := f.node(TagKVNil, nil, nil)
	for i := len(items) - 1; i >= 0; i-- {
		out = f.node(TagKVCons, []*tree.Node{items[i], out}, nil)
	}
	return out
}

// Statements.

// FuncDef builds def name(params): body.
func (f *Factory) FuncDef(name string, params, body *tree.Node) *tree.Node {
	return f.node(TagFuncDef, []*tree.Node{params, body}, []any{name})
}

// ClassDef builds class name(bases): body.
func (f *Factory) ClassDef(name string, bases, body *tree.Node) *tree.Node {
	return f.node(TagClassDef, []*tree.Node{bases, body}, []any{name})
}

// Import builds import module.
func (f *Factory) Import(module string) *tree.Node {
	return f.node(TagImport, nil, []any{module})
}

// FromImport builds from module import name.
func (f *Factory) FromImport(module, name string) *tree.Node {
	return f.node(TagFromImport, nil, []any{module, name})
}

// Assign builds target = value.
func (f *Factory) Assign(target, value *tree.Node) *tree.Node {
	return f.node(TagAssign, []*tree.Node{target, value}, nil)
}

// AugAssign builds target op= value.
func (f *Factory) AugAssign(op string, target, value *tree.Node) *tree.Node {
	return f.node(TagAugAssign, []*tree.Node{target, value}, []any{op})
}

// ExprStmt wraps an expression as a statement.
func (f *Factory) ExprStmt(value *tree.Node) *tree.Node {
	return f.node(TagExprStmt, []*tree.Node{value}, nil)
}

// Return builds return value (bare return carries None).
func (f *Factory) Return(value *tree.Node) *tree.Node {
	return f.node(TagReturn, []*tree.Node{value}, nil)
}

// If builds if cond: then else: orelse.
func (f *Factory) If(cond, then, orelse *tree.Node) *tree.Node {
	return f.node(TagIf, []*tree.Node{cond, then, orelse}, nil)
}

// While builds while cond: body.
func (f *Factory) While(cond, body *tree.Node) *tree.Node {
	return f.node(TagWhile, []*tree.Node{cond, body}, nil)
}

// For builds for target in iter: body.
func (f *Factory) For(target, iter, body *tree.Node) *tree.Node {
	return f.node(TagFor, []*tree.Node{target, iter, body}, nil)
}

// Pass builds the pass statement.
func (f *Factory) Pass() *tree.Node { return f.node(TagPass, nil, nil) }

// Break builds the break statement.
func (f *Factory) Break() *tree.Node { return f.node(TagBreak, nil, nil) }

// Continue builds the continue statement.
func (f *Factory) Continue() *tree.Node { return f.node(TagContinue, nil, nil) }

// Raise builds raise value.
func (f *Factory) Raise(value *tree.Node) *tree.Node {
	return f.node(TagRaise, []*tree.Node{value}, nil)
}

// Parameters.

// Param builds a plain parameter.
func (f *Factory) Param(name string) *tree.Node {
	return f.node(TagParam, nil, []any{name})
}

// DefaultParam builds name=default.
func (f *Factory) DefaultParam(name string, def *tree.Node) *tree.Node {
	return f.node(TagDefaultParam, []*tree.Node{def}, []any{name})
}

// Expressions.

// Name builds an identifier reference.
func (f *Factory) Name(id string) *tree.Node { return f.node(TagName, nil, []any{id}) }

// Int builds an integer literal.
func (f *Factory) Int(v int64) *tree.Node { return f.node(TagNumInt, nil, []any{v}) }

// Float builds a float literal.
func (f *Factory) Float(v float64) *tree.Node { return f.node(TagNumFloat, nil, []any{v}) }

// Str builds a string literal.
func (f *Factory) Str(v string) *tree.Node { return f.node(TagStr, nil, []any{v}) }

// Bool builds True or False.
func (f *Factory) Bool(v bool) *tree.Node { return f.node(TagBool, nil, []any{v}) }

// None builds the None literal.
func (f *Factory) None() *tree.Node { return f.node(TagNone, nil, nil) }

// BinOp builds left op right for arithmetic operators.
func (f *Factory) BinOp(op string, left, right *tree.Node) *tree.Node {
	return f.node(TagBinOp, []*tree.Node{left, right}, []any{op})
}

// UnaryOp builds op operand.
func (f *Factory) UnaryOp(op string, operand *tree.Node) *tree.Node {
	return f.node(TagUnaryOp, []*tree.Node{operand}, []any{op})
}

// Compare builds left op right for comparison operators.
func (f *Factory) Compare(op string, left, right *tree.Node) *tree.Node {
	return f.node(TagCompare, []*tree.Node{left, right}, []any{op})
}

// BoolOp builds left and/or right.
func (f *Factory) BoolOp(op string, left, right *tree.Node) *tree.Node {
	return f.node(TagBoolOp, []*tree.Node{left, right}, []any{op})
}

// Call builds func(args).
func (f *Factory) Call(fn, args *tree.Node) *tree.Node {
	return f.node(TagCall, []*tree.Node{fn, args}, nil)
}

// KwArg builds name=value inside an argument list.
func (f *Factory) KwArg(name string, value *tree.Node) *tree.Node {
	return f.node(TagKwArg, []*tree.Node{value}, []any{name})
}

// Attribute builds value.attr.
func (f *Factory) Attribute(value *tree.Node, attr string) *tree.Node {
	return f.node(TagAttribute, []*tree.Node{value}, []any{attr})
}

// Subscript builds value[index].
func (f *Factory) Subscript(value, index *tree.Node) *tree.Node {
	return f.node(TagSubscript, []*tree.Node{value, index}, nil)
}

// Slice builds lo:hi (use None for open ends).
func (f *Factory) Slice(lo, hi *tree.Node) *tree.Node {
	return f.node(TagSliceExpr, []*tree.Node{lo, hi}, nil)
}

// List builds [elts...].
func (f *Factory) List(elts *tree.Node) *tree.Node {
	return f.node(TagListLit, []*tree.Node{elts}, nil)
}

// Tuple builds (elts...).
func (f *Factory) Tuple(elts *tree.Node) *tree.Node {
	return f.node(TagTupleLit, []*tree.Node{elts}, nil)
}

// Dict builds {items...}.
func (f *Factory) Dict(items *tree.Node) *tree.Node {
	return f.node(TagDictLit, []*tree.Node{items}, nil)
}

// KV builds key: val inside a dict literal.
func (f *Factory) KV(key, val *tree.Node) *tree.Node {
	return f.node(TagKV, []*tree.Node{key, val}, nil)
}

// Extended statements.

// Decorated wraps a def or class in its decorator list.
func (f *Factory) Decorated(decorators, def *tree.Node) *tree.Node {
	return f.node(TagDecorated, []*tree.Node{decorators, def}, nil)
}

// HandlerList builds the cons-list spine for except handlers.
func (f *Factory) HandlerList(handlers ...*tree.Node) *tree.Node {
	out := f.node(TagHandNil, nil, nil)
	for i := len(handlers) - 1; i >= 0; i-- {
		out = f.node(TagHandCons, []*tree.Node{handlers[i], out}, nil)
	}
	return out
}

// Handler builds except etype as name: body. A bare except carries a None
// etype and an empty name.
func (f *Factory) Handler(etype *tree.Node, name string, body *tree.Node) *tree.Node {
	return f.node(TagHandler, []*tree.Node{etype, body}, []any{name})
}

// Try builds try: body except… else: orelse finally: final.
func (f *Factory) Try(body, handlers, orelse, final *tree.Node) *tree.Node {
	return f.node(TagTry, []*tree.Node{body, handlers, orelse, final}, nil)
}

// With builds with ctx as name: body (empty name for no binding).
func (f *Factory) With(ctx *tree.Node, name string, body *tree.Node) *tree.Node {
	return f.node(TagWith, []*tree.Node{ctx, body}, []any{name})
}

// Assert builds assert cond, msg (msg None if absent).
func (f *Factory) Assert(cond, msg *tree.Node) *tree.Node {
	return f.node(TagAssert, []*tree.Node{cond, msg}, nil)
}

// Del builds del target.
func (f *Factory) Del(target *tree.Node) *tree.Node {
	return f.node(TagDel, []*tree.Node{target}, nil)
}

// Global builds global name.
func (f *Factory) Global(name string) *tree.Node {
	return f.node(TagGlobal, nil, []any{name})
}

// Nonlocal builds nonlocal name.
func (f *Factory) Nonlocal(name string) *tree.Node {
	return f.node(TagNonlocal, nil, []any{name})
}

// StarParam builds *name.
func (f *Factory) StarParam(name string) *tree.Node {
	return f.node(TagStarParam, nil, []any{name})
}

// KwStarParam builds **name.
func (f *Factory) KwStarParam(name string) *tree.Node {
	return f.node(TagKwStarParam, nil, []any{name})
}

// Extended expressions.

// Yield builds yield value (value None for a bare yield).
func (f *Factory) Yield(value *tree.Node) *tree.Node {
	return f.node(TagYield, []*tree.Node{value}, nil)
}

// Lambda builds lambda params: body.
func (f *Factory) Lambda(params, body *tree.Node) *tree.Node {
	return f.node(TagLambda, []*tree.Node{params, body}, nil)
}

// IfExp builds then if cond else orelse.
func (f *Factory) IfExp(then, cond, orelse *tree.Node) *tree.Node {
	return f.node(TagIfExp, []*tree.Node{then, cond, orelse}, nil)
}

// ListComp builds [elt for target in iter if cond] (cond None if absent).
func (f *Factory) ListComp(elt, target, iter, cond *tree.Node) *tree.Node {
	return f.node(TagListComp, []*tree.Node{elt, target, iter, cond}, nil)
}

// StarArg builds *value in a call argument list.
func (f *Factory) StarArg(value *tree.Node) *tree.Node {
	return f.node(TagStarArg, []*tree.Node{value}, nil)
}

// KwStarArg builds **value in a call argument list.
func (f *Factory) KwStarArg(value *tree.Node) *tree.Node {
	return f.node(TagKwStarArg, []*tree.Node{value}, nil)
}

// ListElems flattens a cons-list spine (StmtList, ExprList, ParamList,
// KVList, or HandlerList) into a slice of its element subtrees.
func ListElems(list *tree.Node) []*tree.Node {
	var out []*tree.Node
	for list != nil && len(list.Kids) == 2 {
		switch list.Tag {
		case TagStmtCons, TagExprCons, TagParamCons, TagKVCons, TagHandCons:
			out = append(out, list.Kids[0])
			list = list.Kids[1]
		default:
			return out
		}
	}
	return out
}
