package pylang

import (
	"fmt"
	"strings"
)

// TokKind classifies lexical tokens.
type TokKind uint8

// Token kinds produced by the lexer.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokName
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokOp // operators and punctuation
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokNewline:
		return "NEWLINE"
	case TokIndent:
		return "INDENT"
	case TokDedent:
		return "DEDENT"
	case TokName:
		return "NAME"
	case TokKeyword:
		return "KEYWORD"
	case TokInt:
		return "INT"
	case TokFloat:
		return "FLOAT"
	case TokString:
		return "STRING"
	case TokOp:
		return "OP"
	default:
		return fmt.Sprintf("TokKind(%d)", uint8(k))
	}
}

// Token is one lexical token with its source position (1-based).
type Token struct {
	Kind TokKind
	Text string // for strings: the decoded value
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d:%d", t.Kind, t.Text, t.Line, t.Col)
}

var keywords = map[string]bool{
	"def": true, "class": true, "return": true, "if": true, "elif": true,
	"else": true, "while": true, "for": true, "in": true, "pass": true,
	"break": true, "continue": true, "import": true, "from": true,
	"and": true, "or": true, "not": true, "True": true, "False": true,
	"None": true, "raise": true, "is": true,
	"try": true, "except": true, "finally": true, "with": true, "as": true,
	"assert": true, "del": true, "global": true, "nonlocal": true,
	"yield": true, "lambda": true,
}

// multi-character operators, longest first.
var multiOps = []string{
	"**=", "//=", "==", "!=", "<=", ">=", "->", "+=", "-=", "*=", "/=", "%=",
	"**", "//",
}

const singleOps = "+-*/%()[]{}:,.<>=@;"

// LexError reports a lexical error with its position.
type LexError struct {
	Line, Col int
	Msg       string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("pylang: lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lex tokenizes Python source, handling comments, blank lines, line
// continuation inside brackets, and indentation (INDENT/DEDENT tokens).
// Tabs in indentation count as 8 columns, like CPython's tokenizer.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1, indents: []int{0}}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.toks, nil
}

type lexer struct {
	src     string
	pos     int
	line    int
	col     int
	indents []int
	nesting int // bracket depth: newlines inside brackets are ignored
	toks    []Token
	started bool // a logical line has content
}

func (l *lexer) errf(format string, args ...any) error {
	return &LexError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) emit(kind TokKind, text string, line, col int) {
	l.toks = append(l.toks, Token{Kind: kind, Text: text, Line: line, Col: col})
}

func (l *lexer) run() error {
	for l.pos < len(l.src) {
		if !l.started && l.nesting == 0 {
			if done, err := l.handleIndentation(); err != nil {
				return err
			} else if done {
				continue
			}
		}
		c := l.peek()
		switch {
		case c == '\n':
			l.advance()
			if l.nesting > 0 {
				continue // implicit line joining inside brackets
			}
			if l.started {
				l.emit(TokNewline, "\n", l.line-1, l.col)
				l.started = false
			}
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
		case c == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '\\' && l.peek2() == '\n':
			l.advance()
			l.advance()
		case isNameStart(c):
			l.lexName()
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return err
			}
		case c == '.' && l.peek2() >= '0' && l.peek2() <= '9':
			if err := l.lexNumber(); err != nil {
				return err
			}
		case c == '"' || c == '\'':
			if err := l.lexString(); err != nil {
				return err
			}
		default:
			if err := l.lexOp(); err != nil {
				return err
			}
		}
	}
	if l.started {
		l.emit(TokNewline, "\n", l.line, l.col)
	}
	for len(l.indents) > 1 {
		l.indents = l.indents[:len(l.indents)-1]
		l.emit(TokDedent, "", l.line, l.col)
	}
	l.emit(TokEOF, "", l.line, l.col)
	return nil
}

// handleIndentation measures the leading whitespace of a fresh logical line
// and emits INDENT/DEDENT tokens. It reports true if the line turned out to
// be blank or a comment (and was consumed).
func (l *lexer) handleIndentation() (bool, error) {
	width := 0
	start := l.pos
	for l.pos < len(l.src) {
		c := l.peek()
		if c == ' ' {
			width++
			l.advance()
		} else if c == '\t' {
			width = (width/8 + 1) * 8
			l.advance()
		} else {
			break
		}
	}
	c := l.peek()
	if c == '\n' || c == '#' || l.pos >= len(l.src) {
		// Blank or comment-only line: consume to end of line, no tokens.
		for l.pos < len(l.src) && l.peek() != '\n' {
			l.advance()
		}
		if l.pos < len(l.src) {
			l.advance()
		}
		return true, nil
	}
	cur := l.indents[len(l.indents)-1]
	switch {
	case width > cur:
		l.indents = append(l.indents, width)
		l.emit(TokIndent, l.src[start:l.pos], l.line, 1)
	case width < cur:
		for len(l.indents) > 1 && l.indents[len(l.indents)-1] > width {
			l.indents = l.indents[:len(l.indents)-1]
			l.emit(TokDedent, "", l.line, 1)
		}
		if l.indents[len(l.indents)-1] != width {
			return false, l.errf("inconsistent dedent to width %d", width)
		}
	}
	l.started = true
	return false, nil
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameCont(c byte) bool {
	return isNameStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexName() {
	line, col := l.line, l.col
	start := l.pos
	for l.pos < len(l.src) && isNameCont(l.peek()) {
		l.advance()
	}
	word := l.src[start:l.pos]
	kind := TokName
	if keywords[word] {
		kind = TokKeyword
	}
	l.emit(kind, word, line, col)
	l.started = true
}

func (l *lexer) lexNumber() error {
	line, col := l.line, l.col
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.peek()
		if c >= '0' && c <= '9' {
			l.advance()
		} else if c == '.' && !isFloat && !(l.peek2() == '.') {
			isFloat = true
			l.advance()
		} else if (c == 'e' || c == 'E') && l.pos > start {
			// exponent: e[+-]?digits
			save := l.pos
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			if l.peek() < '0' || l.peek() > '9' {
				l.pos = save
				break
			}
			isFloat = true
		} else {
			break
		}
	}
	text := l.src[start:l.pos]
	if isNameStart(l.peek()) {
		return l.errf("invalid number literal %q", text+string(l.peek()))
	}
	if isFloat {
		l.emit(TokFloat, text, line, col)
	} else {
		l.emit(TokInt, text, line, col)
	}
	l.started = true
	return nil
}

func (l *lexer) lexString() error {
	line, col := l.line, l.col
	quote := l.advance()
	triple := false
	if l.peek() == quote && l.peek2() == quote {
		l.advance()
		l.advance()
		triple = true
	}
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return l.errf("unterminated string")
		}
		c := l.peek()
		if c == '\\' {
			l.advance()
			if l.pos >= len(l.src) {
				return l.errf("unterminated escape")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '\'':
				b.WriteByte('\'')
			case '"':
				b.WriteByte('"')
			case '0':
				b.WriteByte(0)
			case '\n':
				// line continuation inside a string
			default:
				b.WriteByte('\\')
				b.WriteByte(e)
			}
			continue
		}
		if !triple && c == quote {
			l.advance()
			break
		}
		if triple && c == quote && l.peek2() == quote && l.pos+2 < len(l.src) && l.src[l.pos+2] == quote {
			l.advance()
			l.advance()
			l.advance()
			break
		}
		if !triple && c == '\n' {
			return l.errf("newline in string literal")
		}
		b.WriteByte(l.advance())
	}
	l.emit(TokString, b.String(), line, col)
	l.started = true
	return nil
}

func (l *lexer) lexOp() error {
	line, col := l.line, l.col
	rest := l.src[l.pos:]
	for _, op := range multiOps {
		if strings.HasPrefix(rest, op) {
			for range op {
				l.advance()
			}
			l.emit(TokOp, op, line, col)
			l.started = true
			return nil
		}
	}
	c := l.peek()
	if strings.IndexByte(singleOps, c) < 0 && c != '!' {
		return l.errf("unexpected character %q", string(c))
	}
	if c == '!' {
		return l.errf("unexpected character '!' (did you mean '!=' ?)")
	}
	l.advance()
	switch c {
	case '(', '[', '{':
		l.nesting++
	case ')', ']', '}':
		if l.nesting > 0 {
			l.nesting--
		}
	}
	l.emit(TokOp, string(c), line, col)
	l.started = true
	return nil
}
