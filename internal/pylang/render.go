package pylang

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tree"
)

// Render pretty-prints a module tree back to Python source. Rendering and
// Parse form a structural round trip: Parse(Render(m)) yields a tree equal
// to m (URIs aside). Parenthesization is precedence-driven; redundant
// parentheses never change the parsed tree, so the renderer leans
// conservative where Python's grammar is subtle.
func Render(mod *tree.Node) string {
	r := &renderer{}
	if mod.Tag == TagModule {
		r.stmts(ListElems(mod.Kids[0]), 0)
	} else {
		r.stmt(mod, 0)
	}
	return r.b.String()
}

type renderer struct {
	b strings.Builder
}

func (r *renderer) indent(level int) {
	for i := 0; i < level; i++ {
		r.b.WriteString("    ")
	}
}

func (r *renderer) stmts(list []*tree.Node, level int) {
	for _, s := range list {
		r.stmt(s, level)
	}
}

func (r *renderer) suite(list *tree.Node, level int) {
	r.b.WriteString(":\n")
	elems := ListElems(list)
	if len(elems) == 0 {
		r.indent(level + 1)
		r.b.WriteString("pass\n")
		return
	}
	r.stmts(elems, level+1)
}

func (r *renderer) stmt(s *tree.Node, level int) {
	r.indent(level)
	switch s.Tag {
	case TagFuncDef:
		fmt.Fprintf(&r.b, "def %s(", s.Lits[0])
		r.params(ListElems(s.Kids[0]))
		r.b.WriteString(")")
		r.suite(s.Kids[1], level)
	case TagClassDef:
		fmt.Fprintf(&r.b, "class %s", s.Lits[0])
		bases := ListElems(s.Kids[0])
		if len(bases) > 0 {
			r.b.WriteString("(")
			for i, bse := range bases {
				if i > 0 {
					r.b.WriteString(", ")
				}
				r.expr(bse, 0)
			}
			r.b.WriteString(")")
		}
		r.suite(s.Kids[1], level)
	case TagImport:
		fmt.Fprintf(&r.b, "import %s\n", s.Lits[0])
	case TagFromImport:
		fmt.Fprintf(&r.b, "from %s import %s\n", s.Lits[0], s.Lits[1])
	case TagAssign:
		r.expr(s.Kids[0], 0)
		r.b.WriteString(" = ")
		r.expr(s.Kids[1], 0)
		r.b.WriteString("\n")
	case TagAugAssign:
		r.expr(s.Kids[0], 0)
		fmt.Fprintf(&r.b, " %s= ", s.Lits[0])
		r.expr(s.Kids[1], 0)
		r.b.WriteString("\n")
	case TagExprStmt:
		r.expr(s.Kids[0], 0)
		r.b.WriteString("\n")
	case TagReturn:
		if s.Kids[0].Tag == TagNone {
			r.b.WriteString("return\n")
		} else {
			r.b.WriteString("return ")
			r.expr(s.Kids[0], 0)
			r.b.WriteString("\n")
		}
	case TagIf:
		r.b.WriteString("if ")
		r.ifTail(s, level)
	case TagWhile:
		r.b.WriteString("while ")
		r.expr(s.Kids[0], 0)
		r.suite(s.Kids[1], level)
	case TagFor:
		r.b.WriteString("for ")
		r.forTarget(s.Kids[0])
		r.b.WriteString(" in ")
		r.expr(s.Kids[1], 0)
		r.suite(s.Kids[2], level)
	case TagPass:
		r.b.WriteString("pass\n")
	case TagBreak:
		r.b.WriteString("break\n")
	case TagContinue:
		r.b.WriteString("continue\n")
	case TagRaise:
		r.b.WriteString("raise ")
		r.expr(s.Kids[0], 0)
		r.b.WriteString("\n")
	case TagDecorated:
		// indent was already emitted; decorators re-indent themselves on
		// their own lines, then the def follows.
		for i, dec := range ListElems(s.Kids[0]) {
			if i > 0 {
				r.indent(level)
			}
			r.b.WriteString("@")
			r.expr(dec, 0)
			r.b.WriteString("\n")
		}
		r.stmt(s.Kids[1], level)
	case TagTry:
		r.b.WriteString("try")
		r.suite(s.Kids[0], level)
		for _, h := range ListElems(s.Kids[1]) {
			r.indent(level)
			r.b.WriteString("except")
			if h.Kids[0].Tag != TagNone {
				r.b.WriteString(" ")
				r.expr(h.Kids[0], 0)
				if name := h.Lits[0].(string); name != "" {
					fmt.Fprintf(&r.b, " as %s", name)
				}
			}
			r.suite(h.Kids[1], level)
		}
		if len(ListElems(s.Kids[2])) > 0 {
			r.indent(level)
			r.b.WriteString("else")
			r.suite(s.Kids[2], level)
		}
		if len(ListElems(s.Kids[3])) > 0 {
			r.indent(level)
			r.b.WriteString("finally")
			r.suite(s.Kids[3], level)
		}
	case TagWith:
		r.b.WriteString("with ")
		r.expr(s.Kids[0], 0)
		if name := s.Lits[0].(string); name != "" {
			fmt.Fprintf(&r.b, " as %s", name)
		}
		r.suite(s.Kids[1], level)
	case TagAssert:
		r.b.WriteString("assert ")
		r.expr(s.Kids[0], 0)
		if s.Kids[1].Tag != TagNone {
			r.b.WriteString(", ")
			r.expr(s.Kids[1], 0)
		}
		r.b.WriteString("\n")
	case TagDel:
		r.b.WriteString("del ")
		r.expr(s.Kids[0], 0)
		r.b.WriteString("\n")
	case TagGlobal:
		fmt.Fprintf(&r.b, "global %s\n", s.Lits[0])
	case TagNonlocal:
		fmt.Fprintf(&r.b, "nonlocal %s\n", s.Lits[0])
	default:
		// Defensive: render unknown statements as a comment so output stays
		// parseable even for future schema extensions.
		fmt.Fprintf(&r.b, "pass  # <unrenderable %s>\n", s.Tag)
	}
}

// ifTail renders "cond: then" plus elif/else chains; the leading "if " or
// "elif " was already emitted.
func (r *renderer) ifTail(s *tree.Node, level int) {
	r.expr(s.Kids[0], 0)
	r.suite(s.Kids[1], level)
	orelse := ListElems(s.Kids[2])
	if len(orelse) == 0 {
		return
	}
	if len(orelse) == 1 && orelse[0].Tag == TagIf {
		r.indent(level)
		r.b.WriteString("elif ")
		r.ifTail(orelse[0], level)
		return
	}
	r.indent(level)
	r.b.WriteString("else")
	r.suite(s.Kids[2], level)
}

// forTarget renders a loop target: a name or a bare tuple of names.
func (r *renderer) forTarget(t *tree.Node) {
	if t.Tag == TagTupleLit {
		elems := ListElems(t.Kids[0])
		for i, e := range elems {
			if i > 0 {
				r.b.WriteString(", ")
			}
			r.expr(e, 0)
		}
		return
	}
	r.expr(t, 0)
}

func (r *renderer) params(params []*tree.Node) {
	for i, p := range params {
		if i > 0 {
			r.b.WriteString(", ")
		}
		switch p.Tag {
		case TagParam:
			fmt.Fprintf(&r.b, "%s", p.Lits[0])
		case TagDefaultParam:
			fmt.Fprintf(&r.b, "%s=", p.Lits[0])
			r.expr(p.Kids[0], 0)
		case TagStarParam:
			fmt.Fprintf(&r.b, "*%s", p.Lits[0])
		case TagKwStarParam:
			fmt.Fprintf(&r.b, "**%s", p.Lits[0])
		}
	}
}

// Operator precedence levels; higher binds tighter. Atoms and trailers are
// level 100.
func exprPrec(e *tree.Node) int {
	switch e.Tag {
	case TagLambda, TagIfExp, TagYield:
		return 0
	case TagBoolOp:
		if e.Lits[0] == "or" {
			return 1
		}
		return 2
	case TagUnaryOp:
		if e.Lits[0] == "not" {
			return 3
		}
		return 7
	case TagCompare:
		return 4
	case TagBinOp:
		switch e.Lits[0] {
		case "+", "-":
			return 5
		case "**":
			return 8
		default:
			return 6
		}
	default:
		return 100
	}
}

// expr renders e, parenthesizing when its precedence is below min.
func (r *renderer) expr(e *tree.Node, min int) {
	prec := exprPrec(e)
	if prec < min {
		r.b.WriteString("(")
		r.expr(e, 0)
		r.b.WriteString(")")
		return
	}
	switch e.Tag {
	case TagName:
		fmt.Fprintf(&r.b, "%s", e.Lits[0])
	case TagNumInt:
		fmt.Fprintf(&r.b, "%d", e.Lits[0])
	case TagNumFloat:
		v := e.Lits[0].(float64)
		s := strconv.FormatFloat(v, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		r.b.WriteString(s)
	case TagStr:
		r.b.WriteString(quote(e.Lits[0].(string)))
	case TagBool:
		if e.Lits[0].(bool) {
			r.b.WriteString("True")
		} else {
			r.b.WriteString("False")
		}
	case TagNone:
		r.b.WriteString("None")
	case TagBoolOp:
		r.expr(e.Kids[0], prec)
		fmt.Fprintf(&r.b, " %s ", e.Lits[0])
		r.expr(e.Kids[1], prec+1)
	case TagUnaryOp:
		op := e.Lits[0].(string)
		if op == "not" {
			r.b.WriteString("not ")
		} else {
			r.b.WriteString(op)
		}
		r.expr(e.Kids[0], prec)
	case TagCompare:
		r.expr(e.Kids[0], prec)
		fmt.Fprintf(&r.b, " %s ", e.Lits[0])
		r.expr(e.Kids[1], prec+1)
	case TagBinOp:
		op := e.Lits[0].(string)
		if op == "**" {
			r.expr(e.Kids[0], 9) // ** is right associative
			r.b.WriteString(" ** ")
			r.expr(e.Kids[1], 7)
		} else {
			r.expr(e.Kids[0], prec)
			fmt.Fprintf(&r.b, " %s ", op)
			r.expr(e.Kids[1], prec+1)
		}
	case TagCall:
		r.expr(e.Kids[0], 100)
		r.b.WriteString("(")
		for i, a := range ListElems(e.Kids[1]) {
			if i > 0 {
				r.b.WriteString(", ")
			}
			if a.Tag == TagKwArg {
				fmt.Fprintf(&r.b, "%s=", a.Lits[0])
				r.expr(a.Kids[0], 0)
			} else {
				r.expr(a, 0)
			}
		}
		r.b.WriteString(")")
	case TagKwArg:
		// KwArg outside an argument list (should not occur): render value.
		r.expr(e.Kids[0], min)
	case TagAttribute:
		// A numeric literal base must be parenthesized: 37.shape would lex
		// as a malformed float literal.
		if base := e.Kids[0]; base.Tag == TagNumInt || base.Tag == TagNumFloat {
			r.b.WriteString("(")
			r.expr(base, 0)
			r.b.WriteString(")")
		} else {
			r.expr(base, 100)
		}
		fmt.Fprintf(&r.b, ".%s", e.Lits[0])
	case TagSubscript:
		r.expr(e.Kids[0], 100)
		r.b.WriteString("[")
		if idx := e.Kids[1]; idx.Tag == TagSliceExpr {
			if idx.Kids[0].Tag != TagNone {
				r.expr(idx.Kids[0], 0)
			}
			r.b.WriteString(":")
			if idx.Kids[1].Tag != TagNone {
				r.expr(idx.Kids[1], 0)
			}
		} else {
			r.expr(idx, 0)
		}
		r.b.WriteString("]")
	case TagSliceExpr:
		// A slice outside a subscript cannot occur; render as a tuple.
		r.b.WriteString("(")
		r.expr(e.Kids[0], 0)
		r.b.WriteString(", ")
		r.expr(e.Kids[1], 0)
		r.b.WriteString(")")
	case TagListLit:
		r.b.WriteString("[")
		for i, el := range ListElems(e.Kids[0]) {
			if i > 0 {
				r.b.WriteString(", ")
			}
			r.expr(el, 0)
		}
		r.b.WriteString("]")
	case TagTupleLit:
		elems := ListElems(e.Kids[0])
		r.b.WriteString("(")
		for i, el := range elems {
			if i > 0 {
				r.b.WriteString(", ")
			}
			r.expr(el, 0)
		}
		if len(elems) == 1 {
			r.b.WriteString(",")
		}
		r.b.WriteString(")")
	case TagDictLit:
		r.b.WriteString("{")
		for i, kv := range ListElems(e.Kids[0]) {
			if i > 0 {
				r.b.WriteString(", ")
			}
			r.expr(kv.Kids[0], 0)
			r.b.WriteString(": ")
			r.expr(kv.Kids[1], 0)
		}
		r.b.WriteString("}")
	case TagYield:
		if e.Kids[0].Tag == TagNone {
			r.b.WriteString("yield")
		} else {
			r.b.WriteString("yield ")
			r.expr(e.Kids[0], 1)
		}
	case TagLambda:
		r.b.WriteString("lambda")
		if params := ListElems(e.Kids[0]); len(params) > 0 {
			r.b.WriteString(" ")
			r.params(params)
		}
		r.b.WriteString(": ")
		r.expr(e.Kids[1], 0)
	case TagIfExp:
		r.expr(e.Kids[0], 1)
		r.b.WriteString(" if ")
		r.expr(e.Kids[1], 1)
		r.b.WriteString(" else ")
		r.expr(e.Kids[2], 0)
	case TagListComp:
		r.b.WriteString("[")
		r.expr(e.Kids[0], 0)
		r.b.WriteString(" for ")
		r.forTarget(e.Kids[1])
		r.b.WriteString(" in ")
		r.expr(e.Kids[2], 1)
		if e.Kids[3].Tag != TagNone {
			r.b.WriteString(" if ")
			r.expr(e.Kids[3], 1)
		}
		r.b.WriteString("]")
	case TagStarArg:
		r.b.WriteString("*")
		r.expr(e.Kids[0], 1)
	case TagKwStarArg:
		r.b.WriteString("**")
		r.expr(e.Kids[0], 1)
	default:
		fmt.Fprintf(&r.b, "None")
	}
}

// quote renders a Python string literal with double quotes.
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		case 0:
			b.WriteString(`\0`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
