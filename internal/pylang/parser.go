package pylang

import (
	"fmt"
	"strconv"

	"repro/internal/tree"
)

// ParseError reports a syntax error with its source position.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("pylang: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse lexes and parses Python source into a typed module tree built
// through the factory. URIs are drawn from the factory's allocator, so
// parsing successive versions of a document with one factory keeps URIs
// unique across versions.
func Parse(src string, f *Factory) (mod *tree.Node, err error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, f: f}
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*ParseError); ok {
				mod, err = nil, pe
				return
			}
			panic(r)
		}
	}()
	return p.module(), nil
}

// ParseNew is Parse with a fresh factory; it returns the factory so the
// caller can parse related documents against the same allocator.
func ParseNew(src string) (*tree.Node, *Factory, error) {
	f := NewFactory()
	mod, err := Parse(src, f)
	return mod, f, err
}

type parser struct {
	toks []Token
	pos  int
	f    *Factory
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) fail(format string, args ...any) {
	t := p.cur()
	panic(&ParseError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) Token {
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = kind.String()
		}
		p.fail("expected %q, found %s", want, p.cur())
	}
	return p.next()
}

func (p *parser) expectName() string {
	if !p.at(TokName, "") {
		p.fail("expected identifier, found %s", p.cur())
	}
	return p.next().Text
}

// module := stmt* EOF
func (p *parser) module() *tree.Node {
	var stmts []*tree.Node
	for !p.at(TokEOF, "") {
		stmts = append(stmts, p.stmt()...)
	}
	return p.f.Module(p.f.StmtList(stmts...))
}

// stmt parses one logical statement; simple statements may expand into
// several nodes (multi-name imports, semicolon-joined statements).
func (p *parser) stmt() []*tree.Node {
	t := p.cur()
	if t.Kind == TokOp && t.Text == "@" {
		return []*tree.Node{p.decorated()}
	}
	if t.Kind == TokKeyword {
		switch t.Text {
		case "def":
			return []*tree.Node{p.funcDef()}
		case "class":
			return []*tree.Node{p.classDef()}
		case "if":
			return []*tree.Node{p.ifStmt()}
		case "while":
			return []*tree.Node{p.whileStmt()}
		case "for":
			return []*tree.Node{p.forStmt()}
		case "try":
			return []*tree.Node{p.tryStmt()}
		case "with":
			return []*tree.Node{p.withStmt()}
		}
	}
	return p.simpleStmtLine()
}

// decorated := ('@' expr NEWLINE)+ (funcdef | classdef)
func (p *parser) decorated() *tree.Node {
	var decs []*tree.Node
	for p.accept(TokOp, "@") {
		decs = append(decs, p.trailerExpr())
		p.expect(TokNewline, "")
	}
	var def *tree.Node
	switch {
	case p.at(TokKeyword, "def"):
		def = p.funcDef()
	case p.at(TokKeyword, "class"):
		def = p.classDef()
	default:
		p.fail("expected def or class after decorators")
	}
	return p.f.Decorated(p.f.ExprList(decs...), def)
}

// tryStmt := 'try' suite handler* ['else' suite] ['finally' suite]
// handler := 'except' [test ['as' NAME]] suite
func (p *parser) tryStmt() *tree.Node {
	p.expect(TokKeyword, "try")
	body := p.suite()
	var handlers []*tree.Node
	for p.accept(TokKeyword, "except") {
		etype := p.f.None()
		name := ""
		if !p.at(TokOp, ":") {
			etype = p.test()
			if p.accept(TokKeyword, "as") {
				name = p.expectName()
			}
		}
		handlers = append(handlers, p.f.Handler(etype, name, p.suite()))
	}
	orelse := p.f.StmtList()
	if p.accept(TokKeyword, "else") {
		orelse = p.suite()
	}
	final := p.f.StmtList()
	if p.accept(TokKeyword, "finally") {
		final = p.suite()
	}
	if len(handlers) == 0 && len(ListElems(final)) == 0 {
		p.fail("try statement needs an except or finally clause")
	}
	return p.f.Try(body, p.f.HandlerList(handlers...), orelse, final)
}

// withStmt := 'with' item (',' item)* suite; multiple items nest.
func (p *parser) withStmt() *tree.Node {
	p.expect(TokKeyword, "with")
	type item struct {
		ctx  *tree.Node
		name string
	}
	var items []item
	for {
		it := item{ctx: p.test()}
		if p.accept(TokKeyword, "as") {
			it.name = p.expectName()
		}
		items = append(items, it)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	body := p.suite()
	for i := len(items) - 1; i >= 0; i-- {
		w := p.f.With(items[i].ctx, items[i].name, body)
		body = p.f.StmtList(w)
		if i == 0 {
			return w
		}
	}
	p.fail("with statement without items")
	return nil
}

// simpleStmtLine := small_stmt (';' small_stmt)* NEWLINE
func (p *parser) simpleStmtLine() []*tree.Node {
	var out []*tree.Node
	out = append(out, p.smallStmt()...)
	for p.accept(TokOp, ";") {
		if p.at(TokNewline, "") {
			break
		}
		out = append(out, p.smallStmt()...)
	}
	p.expect(TokNewline, "")
	return out
}

func (p *parser) smallStmt() []*tree.Node {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "pass":
			p.next()
			return []*tree.Node{p.f.Pass()}
		case "break":
			p.next()
			return []*tree.Node{p.f.Break()}
		case "continue":
			p.next()
			return []*tree.Node{p.f.Continue()}
		case "return":
			p.next()
			if p.at(TokNewline, "") || p.at(TokOp, ";") {
				return []*tree.Node{p.f.Return(p.f.None())}
			}
			return []*tree.Node{p.f.Return(p.testlist())}
		case "raise":
			p.next()
			return []*tree.Node{p.f.Raise(p.test())}
		case "assert":
			p.next()
			cond := p.test()
			msg := p.f.None()
			if p.accept(TokOp, ",") {
				msg = p.test()
			}
			return []*tree.Node{p.f.Assert(cond, msg)}
		case "del":
			p.next()
			return []*tree.Node{p.f.Del(p.test())}
		case "global":
			p.next()
			out := []*tree.Node{p.f.Global(p.expectName())}
			for p.accept(TokOp, ",") {
				out = append(out, p.f.Global(p.expectName()))
			}
			return out
		case "nonlocal":
			p.next()
			out := []*tree.Node{p.f.Nonlocal(p.expectName())}
			for p.accept(TokOp, ",") {
				out = append(out, p.f.Nonlocal(p.expectName()))
			}
			return out
		case "import":
			p.next()
			return []*tree.Node{p.f.Import(p.dottedName())}
		case "from":
			p.next()
			module := p.dottedName()
			p.expect(TokKeyword, "import")
			var out []*tree.Node
			out = append(out, p.f.FromImport(module, p.expectName()))
			for p.accept(TokOp, ",") {
				out = append(out, p.f.FromImport(module, p.expectName()))
			}
			return out
		}
	}
	return p.exprStmt()
}

func (p *parser) dottedName() string {
	name := p.expectName()
	for p.accept(TokOp, ".") {
		name += "." + p.expectName()
	}
	return name
}

var augOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%", "//=": "//", "**=": "**",
}

// exprStmt := testlist (('=' testlist)+ | augop testlist)?
// Chained assignments a = b = c desugar into one assignment per target,
// each with its own copy of the value.
func (p *parser) exprStmt() []*tree.Node {
	target := p.testlist()
	t := p.cur()
	if t.Kind == TokOp {
		if t.Text == "=" {
			targets := []*tree.Node{target}
			var value *tree.Node
			for p.accept(TokOp, "=") {
				value = p.testlist()
				if p.at(TokOp, "=") {
					targets = append(targets, value)
				}
			}
			out := make([]*tree.Node, len(targets))
			for i, tgt := range targets {
				v := value
				if i > 0 {
					v = tree.Clone(value, p.f.Alloc(), tree.SHA256)
				}
				out[i] = p.f.Assign(tgt, v)
			}
			return out
		}
		if op, ok := augOps[t.Text]; ok {
			p.next()
			return []*tree.Node{p.f.AugAssign(op, target, p.testlist())}
		}
	}
	return []*tree.Node{p.f.ExprStmt(target)}
}

// suite := ':' (simple_stmt_line | NEWLINE INDENT stmt+ DEDENT)
func (p *parser) suite() *tree.Node {
	p.expect(TokOp, ":")
	if !p.accept(TokNewline, "") {
		return p.f.StmtList(p.simpleStmtLine()...)
	}
	p.expect(TokIndent, "")
	var stmts []*tree.Node
	for !p.at(TokDedent, "") && !p.at(TokEOF, "") {
		stmts = append(stmts, p.stmt()...)
	}
	p.expect(TokDedent, "")
	if len(stmts) == 0 {
		p.fail("empty suite")
	}
	return p.f.StmtList(stmts...)
}

func (p *parser) funcDef() *tree.Node {
	p.expect(TokKeyword, "def")
	name := p.expectName()
	p.expect(TokOp, "(")
	var params []*tree.Node
	for !p.at(TokOp, ")") {
		switch {
		case p.accept(TokOp, "**"):
			params = append(params, p.f.KwStarParam(p.expectName()))
		case p.accept(TokOp, "*"):
			params = append(params, p.f.StarParam(p.expectName()))
		default:
			pname := p.expectName()
			if p.accept(TokOp, "=") {
				params = append(params, p.f.DefaultParam(pname, p.test()))
			} else {
				params = append(params, p.f.Param(pname))
			}
		}
		if !p.accept(TokOp, ",") {
			break
		}
	}
	p.expect(TokOp, ")")
	if p.accept(TokOp, "->") { // annotation: parsed and discarded
		p.test()
	}
	return p.f.FuncDef(name, p.f.ParamList(params...), p.suite())
}

func (p *parser) classDef() *tree.Node {
	p.expect(TokKeyword, "class")
	name := p.expectName()
	var bases []*tree.Node
	if p.accept(TokOp, "(") {
		for !p.at(TokOp, ")") {
			bases = append(bases, p.test())
			if !p.accept(TokOp, ",") {
				break
			}
		}
		p.expect(TokOp, ")")
	}
	return p.f.ClassDef(name, p.f.ExprList(bases...), p.suite())
}

// ifStmt desugars elif chains into nested If nodes in the orelse branch.
func (p *parser) ifStmt() *tree.Node {
	p.expect(TokKeyword, "if")
	cond := p.test()
	then := p.suite()
	orelse := p.f.StmtList()
	if p.at(TokKeyword, "elif") {
		p.toks[p.pos].Text = "if" // reuse ifStmt for the chain
		orelse = p.f.StmtList(p.ifStmt())
	} else if p.accept(TokKeyword, "else") {
		orelse = p.suite()
	}
	return p.f.If(cond, then, orelse)
}

func (p *parser) whileStmt() *tree.Node {
	p.expect(TokKeyword, "while")
	cond := p.test()
	return p.f.While(cond, p.suite())
}

func (p *parser) forStmt() *tree.Node {
	p.expect(TokKeyword, "for")
	target := p.targetList()
	p.expect(TokKeyword, "in")
	iter := p.testlist()
	return p.f.For(target, iter, p.suite())
}

// targetList := NAME (',' NAME)* — a plain name or a tuple of names.
func (p *parser) targetList() *tree.Node {
	first := p.f.Name(p.expectName())
	if !p.at(TokOp, ",") {
		return first
	}
	elts := []*tree.Node{first}
	for p.accept(TokOp, ",") {
		elts = append(elts, p.f.Name(p.expectName()))
	}
	return p.f.Tuple(p.f.ExprList(elts...))
}

// testlist := test (',' test)* — an unparenthesized tuple if a comma occurs.
func (p *parser) testlist() *tree.Node {
	first := p.test()
	if !p.at(TokOp, ",") {
		return first
	}
	elts := []*tree.Node{first}
	for p.accept(TokOp, ",") {
		if p.startsTest() {
			elts = append(elts, p.test())
		} else {
			break // trailing comma
		}
	}
	return p.f.Tuple(p.f.ExprList(elts...))
}

func (p *parser) startsTest() bool {
	t := p.cur()
	switch t.Kind {
	case TokName, TokInt, TokFloat, TokString:
		return true
	case TokKeyword:
		switch t.Text {
		case "not", "True", "False", "None", "lambda", "yield":
			return true
		}
		return false
	case TokOp:
		return t.Text == "(" || t.Text == "[" || t.Text == "{" || t.Text == "-" || t.Text == "+"
	default:
		return false
	}
}

// Expression grammar, loosest binding first.

// test := lambda | yield | or_test ['if' or_test 'else' test]
func (p *parser) test() *tree.Node {
	if p.at(TokKeyword, "lambda") {
		return p.lambda()
	}
	if p.accept(TokKeyword, "yield") {
		if p.startsTest() {
			return p.f.Yield(p.test())
		}
		return p.f.Yield(p.f.None())
	}
	then := p.orTest()
	if p.accept(TokKeyword, "if") {
		cond := p.orTest()
		p.expect(TokKeyword, "else")
		return p.f.IfExp(then, cond, p.test())
	}
	return then
}

// lambda := 'lambda' [params] ':' test
func (p *parser) lambda() *tree.Node {
	p.expect(TokKeyword, "lambda")
	var params []*tree.Node
	for p.at(TokName, "") {
		pname := p.expectName()
		if p.accept(TokOp, "=") {
			params = append(params, p.f.DefaultParam(pname, p.test()))
		} else {
			params = append(params, p.f.Param(pname))
		}
		if !p.accept(TokOp, ",") {
			break
		}
	}
	p.expect(TokOp, ":")
	return p.f.Lambda(p.f.ParamList(params...), p.test())
}

func (p *parser) orTest() *tree.Node {
	left := p.andTest()
	for p.accept(TokKeyword, "or") {
		left = p.f.BoolOp("or", left, p.andTest())
	}
	return left
}

func (p *parser) andTest() *tree.Node {
	left := p.notTest()
	for p.accept(TokKeyword, "and") {
		left = p.f.BoolOp("and", left, p.notTest())
	}
	return left
}

func (p *parser) notTest() *tree.Node {
	if p.accept(TokKeyword, "not") {
		return p.f.UnaryOp("not", p.notTest())
	}
	return p.comparison()
}

// comparison := arith (compop arith)* — chains are left-nested.
func (p *parser) comparison() *tree.Node {
	left := p.arith()
	for {
		op, ok := p.compOp()
		if !ok {
			return left
		}
		left = p.f.Compare(op, left, p.arith())
	}
}

func (p *parser) compOp() (string, bool) {
	t := p.cur()
	if t.Kind == TokOp {
		switch t.Text {
		case "<", ">", "==", "!=", "<=", ">=":
			p.next()
			return t.Text, true
		}
	}
	if t.Kind == TokKeyword {
		switch t.Text {
		case "in":
			p.next()
			return "in", true
		case "is":
			p.next()
			if p.accept(TokKeyword, "not") {
				return "is not", true
			}
			return "is", true
		case "not":
			if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text == "in" {
				p.next()
				p.next()
				return "not in", true
			}
		}
	}
	return "", false
}

func (p *parser) arith() *tree.Node {
	left := p.term()
	for {
		t := p.cur()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
			p.next()
			left = p.f.BinOp(t.Text, left, p.term())
		} else {
			return left
		}
	}
}

func (p *parser) term() *tree.Node {
	left := p.factor()
	for {
		t := p.cur()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/" || t.Text == "%" || t.Text == "//") {
			p.next()
			left = p.f.BinOp(t.Text, left, p.factor())
		} else {
			return left
		}
	}
}

func (p *parser) factor() *tree.Node {
	t := p.cur()
	if t.Kind == TokOp && (t.Text == "-" || t.Text == "+") {
		p.next()
		return p.f.UnaryOp(t.Text, p.factor())
	}
	return p.power()
}

// power := trailer_expr ('**' factor)? — right associative.
func (p *parser) power() *tree.Node {
	base := p.trailerExpr()
	if p.accept(TokOp, "**") {
		return p.f.BinOp("**", base, p.factor())
	}
	return base
}

func (p *parser) trailerExpr() *tree.Node {
	e := p.atom()
	for {
		switch {
		case p.accept(TokOp, "("):
			var args []*tree.Node
			for !p.at(TokOp, ")") {
				args = append(args, p.argument())
				if !p.accept(TokOp, ",") {
					break
				}
			}
			p.expect(TokOp, ")")
			e = p.f.Call(e, p.f.ExprList(args...))
		case p.accept(TokOp, "["):
			e = p.f.Subscript(e, p.subscript())
		case p.accept(TokOp, "."):
			e = p.f.Attribute(e, p.expectName())
		default:
			return e
		}
	}
}

// argument := '*' test | '**' test | NAME '=' test | test
func (p *parser) argument() *tree.Node {
	if p.accept(TokOp, "**") {
		return p.f.KwStarArg(p.test())
	}
	if p.accept(TokOp, "*") {
		return p.f.StarArg(p.test())
	}
	if p.at(TokName, "") && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "=" {
		name := p.next().Text
		p.next() // '='
		return p.f.KwArg(name, p.test())
	}
	return p.test()
}

// subscript := test | [test] ':' [test], closed by ']'.
func (p *parser) subscript() *tree.Node {
	var lo *tree.Node
	if p.at(TokOp, ":") {
		lo = p.f.None()
	} else {
		lo = p.test()
	}
	if p.accept(TokOp, ":") {
		var hi *tree.Node
		if p.at(TokOp, "]") {
			hi = p.f.None()
		} else {
			hi = p.test()
		}
		p.expect(TokOp, "]")
		return p.f.Slice(lo, hi)
	}
	p.expect(TokOp, "]")
	return lo
}

func (p *parser) atom() *tree.Node {
	t := p.cur()
	switch t.Kind {
	case TokName:
		p.next()
		return p.f.Name(t.Text)
	case TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.fail("bad integer literal %q", t.Text)
		}
		return p.f.Int(v)
	case TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.fail("bad float literal %q", t.Text)
		}
		return p.f.Float(v)
	case TokString:
		p.next()
		s := t.Text
		for p.at(TokString, "") { // adjacent string literal concatenation
			s += p.next().Text
		}
		return p.f.Str(s)
	case TokKeyword:
		switch t.Text {
		case "True":
			p.next()
			return p.f.Bool(true)
		case "False":
			p.next()
			return p.f.Bool(false)
		case "None":
			p.next()
			return p.f.None()
		}
	case TokOp:
		switch t.Text {
		case "(":
			p.next()
			if p.accept(TokOp, ")") {
				return p.f.Tuple(p.f.ExprList())
			}
			first := p.test()
			if p.at(TokOp, ",") {
				elts := []*tree.Node{first}
				for p.accept(TokOp, ",") {
					if p.at(TokOp, ")") {
						break
					}
					elts = append(elts, p.test())
				}
				p.expect(TokOp, ")")
				return p.f.Tuple(p.f.ExprList(elts...))
			}
			p.expect(TokOp, ")")
			return first // parenthesized expression
		case "[":
			p.next()
			if p.at(TokOp, "]") {
				p.next()
				return p.f.List(p.f.ExprList())
			}
			first := p.test()
			if p.at(TokKeyword, "for") {
				p.next()
				target := p.targetList()
				p.expect(TokKeyword, "in")
				iter := p.orTest()
				cond := p.f.None()
				if p.accept(TokKeyword, "if") {
					cond = p.orTest()
				}
				p.expect(TokOp, "]")
				return p.f.ListComp(first, target, iter, cond)
			}
			elts := []*tree.Node{first}
			for p.accept(TokOp, ",") {
				if p.at(TokOp, "]") {
					break
				}
				elts = append(elts, p.test())
			}
			p.expect(TokOp, "]")
			return p.f.List(p.f.ExprList(elts...))
		case "{":
			p.next()
			var items []*tree.Node
			for !p.at(TokOp, "}") {
				key := p.test()
				p.expect(TokOp, ":")
				items = append(items, p.f.KV(key, p.test()))
				if !p.accept(TokOp, ",") {
					break
				}
			}
			p.expect(TokOp, "}")
			return p.f.Dict(p.f.KVList(items...))
		}
	}
	p.fail("unexpected token %s", t)
	return nil
}
