package pylang

import (
	"strings"
	"testing"

	"repro/internal/sig"
	"repro/internal/tree"
)

func parseOK(t *testing.T, src string) *tree.Node {
	t.Helper()
	mod, _, err := ParseNew(src)
	if err != nil {
		t.Fatalf("parse:\n%s\nerror: %v", src, err)
	}
	return mod
}

// shape returns a compact tag-skeleton of the tree for assertions.
func shape(n *tree.Node) string {
	var b strings.Builder
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		b.WriteString(string(n.Tag))
		if len(n.Kids) > 0 {
			b.WriteByte('(')
			for i, k := range n.Kids {
				if i > 0 {
					b.WriteByte(',')
				}
				walk(k)
			}
			b.WriteByte(')')
		}
	}
	walk(n)
	return b.String()
}

func firstStmt(t *testing.T, src string) *tree.Node {
	t.Helper()
	mod := parseOK(t, src)
	stmts := ListElems(mod.Kids[0])
	if len(stmts) == 0 {
		t.Fatalf("no statements in %q", src)
	}
	return stmts[0]
}

func TestParseAssignment(t *testing.T) {
	s := firstStmt(t, "x = 1 + 2 * 3\n")
	if got := shape(s); got != "Assign(Name,BinOp(NumInt,BinOp(NumInt,NumInt)))" {
		t.Errorf("shape = %s", got)
	}
}

func TestParsePrecedenceAndAssociativity(t *testing.T) {
	cases := []struct{ src, want string }{
		{"x = 1 - 2 - 3\n", "Assign(Name,BinOp(BinOp(NumInt,NumInt),NumInt))"},
		{"x = (1 - 2) - 3\n", "Assign(Name,BinOp(BinOp(NumInt,NumInt),NumInt))"},
		{"x = 1 - (2 - 3)\n", "Assign(Name,BinOp(NumInt,BinOp(NumInt,NumInt)))"},
		{"x = 2 ** 3 ** 4\n", "Assign(Name,BinOp(NumInt,BinOp(NumInt,NumInt)))"},
		{"x = -y ** 2\n", "Assign(Name,UnaryOp(BinOp(Name,NumInt)))"},
		{"x = a or b and not c\n", "Assign(Name,BoolOp(Name,BoolOp(Name,UnaryOp(Name))))"},
		{"x = a < b == c\n", "Assign(Name,Compare(Compare(Name,Name),Name))"},
		{"x = a * b + c / d\n", "Assign(Name,BinOp(BinOp(Name,Name),BinOp(Name,Name)))"},
	}
	for _, c := range cases {
		if got := shape(firstStmt(t, c.src)); got != c.want {
			t.Errorf("%q: shape = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseTrailers(t *testing.T) {
	s := firstStmt(t, "v = obj.attr.method(a, b=1)[2][1:3]\n")
	want := "Assign(Name,Subscript(Subscript(Call(Attribute(Attribute(Name)),ExprCons(Name,ExprCons(KwArg(NumInt),ExprNil))),NumInt),Slice(NumInt,NumInt)))"
	if got := shape(s); got != want {
		t.Errorf("shape = %s\nwant    %s", got, want)
	}
}

func TestParseOpenSlices(t *testing.T) {
	cases := []struct{ src, want string }{
		{"v = x[:]\n", "Assign(Name,Subscript(Name,Slice(None,None)))"},
		{"v = x[1:]\n", "Assign(Name,Subscript(Name,Slice(NumInt,None)))"},
		{"v = x[:2]\n", "Assign(Name,Subscript(Name,Slice(None,NumInt)))"},
	}
	for _, c := range cases {
		if got := shape(firstStmt(t, c.src)); got != c.want {
			t.Errorf("%q: shape = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseFuncDef(t *testing.T) {
	src := `def add(a, b=1, c=None):
    total = a + b
    return total
`
	s := firstStmt(t, src)
	if s.Tag != TagFuncDef || s.Lits[0] != "add" {
		t.Fatalf("not a funcdef: %s", shape(s))
	}
	params := ListElems(s.Kids[0])
	if len(params) != 3 || params[0].Tag != TagParam || params[1].Tag != TagDefaultParam {
		t.Errorf("params = %v", shape(s.Kids[0]))
	}
	body := ListElems(s.Kids[1])
	if len(body) != 2 || body[1].Tag != TagReturn {
		t.Errorf("body shape wrong")
	}
}

func TestParseFuncDefAnnotationDiscarded(t *testing.T) {
	s := firstStmt(t, "def f(x) -> int:\n    return x\n")
	if s.Tag != TagFuncDef {
		t.Fatalf("shape = %s", shape(s))
	}
}

func TestParseClassDef(t *testing.T) {
	src := `class Layer(Base, mixins.Mixin):
    def __init__(self):
        self.built = False
`
	s := firstStmt(t, src)
	if s.Tag != TagClassDef || s.Lits[0] != "Layer" {
		t.Fatalf("not a classdef")
	}
	bases := ListElems(s.Kids[0])
	if len(bases) != 2 || bases[1].Tag != TagAttribute {
		t.Errorf("bases = %s", shape(s.Kids[0]))
	}
	body := ListElems(s.Kids[1])
	if len(body) != 1 || body[0].Tag != TagFuncDef {
		t.Errorf("class body wrong")
	}
}

func TestParseIfElifElse(t *testing.T) {
	src := `if a:
    x = 1
elif b:
    x = 2
elif c:
    x = 3
else:
    x = 4
`
	s := firstStmt(t, src)
	// elif desugars to a nested If inside orelse.
	if s.Tag != TagIf {
		t.Fatal("not an if")
	}
	level2 := ListElems(s.Kids[2])
	if len(level2) != 1 || level2[0].Tag != TagIf {
		t.Fatalf("first elif not desugared: %s", shape(s))
	}
	level3 := ListElems(level2[0].Kids[2])
	if len(level3) != 1 || level3[0].Tag != TagIf {
		t.Fatalf("second elif not desugared")
	}
	final := ListElems(level3[0].Kids[2])
	if len(final) != 1 || final[0].Tag != TagAssign {
		t.Fatalf("else branch wrong")
	}
}

func TestParseLoops(t *testing.T) {
	src := `for i, v in enumerate(xs):
    if v < 0:
        break
    continue
while not done:
    step()
`
	mod := parseOK(t, src)
	stmts := ListElems(mod.Kids[0])
	if len(stmts) != 2 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	if stmts[0].Tag != TagFor || stmts[0].Kids[0].Tag != TagTupleLit {
		t.Errorf("for target should be a tuple: %s", shape(stmts[0]))
	}
	if stmts[1].Tag != TagWhile || stmts[1].Kids[0].Tag != TagUnaryOp {
		t.Errorf("while shape: %s", shape(stmts[1]))
	}
}

func TestParseImports(t *testing.T) {
	src := "import os.path\nfrom keras.layers import Dense, Conv2D\n"
	mod := parseOK(t, src)
	stmts := ListElems(mod.Kids[0])
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d, want 3 (multi-import expands)", len(stmts))
	}
	if stmts[0].Tag != TagImport || stmts[0].Lits[0] != "os.path" {
		t.Errorf("import = %v", stmts[0])
	}
	if stmts[1].Tag != TagFromImport || stmts[1].Lits[1] != "Dense" {
		t.Errorf("from-import 1 = %v", stmts[1])
	}
	if stmts[2].Lits[1] != "Conv2D" {
		t.Errorf("from-import 2 = %v", stmts[2])
	}
}

func TestParseCollections(t *testing.T) {
	cases := []struct{ src, want string }{
		{"v = []\n", "Assign(Name,ListLit(ExprNil))"},
		{"v = [1, 2]\n", "Assign(Name,ListLit(ExprCons(NumInt,ExprCons(NumInt,ExprNil))))"},
		{"v = ()\n", "Assign(Name,TupleLit(ExprNil))"},
		{"v = (1,)\n", "Assign(Name,TupleLit(ExprCons(NumInt,ExprNil)))"},
		{"v = (1, 2)\n", "Assign(Name,TupleLit(ExprCons(NumInt,ExprCons(NumInt,ExprNil))))"},
		{"v = (1)\n", "Assign(Name,NumInt)"},
		{"v = {}\n", "Assign(Name,DictLit(KVNil))"},
		{"v = {1: 2, 'a': b}\n", "Assign(Name,DictLit(KVCons(KV(NumInt,NumInt),KVCons(KV(Str,Name),KVNil))))"},
		{"v = 1, 2\n", "Assign(Name,TupleLit(ExprCons(NumInt,ExprCons(NumInt,ExprNil))))"},
	}
	for _, c := range cases {
		if got := shape(firstStmt(t, c.src)); got != c.want {
			t.Errorf("%q: shape = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseCompareKeywords(t *testing.T) {
	cases := []struct {
		src string
		op  string
	}{
		{"v = a in b\n", "in"},
		{"v = a not in b\n", "not in"},
		{"v = a is b\n", "is"},
		{"v = a is not b\n", "is not"},
	}
	for _, c := range cases {
		s := firstStmt(t, c.src)
		cmp := s.Kids[1]
		if cmp.Tag != TagCompare || cmp.Lits[0] != c.op {
			t.Errorf("%q: got %s %v", c.src, cmp.Tag, cmp.Lits)
		}
	}
}

func TestParseSemicolonsAndAug(t *testing.T) {
	mod := parseOK(t, "x = 1; y += 2; z **= 3\n")
	stmts := ListElems(mod.Kids[0])
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	if stmts[1].Tag != TagAugAssign || stmts[1].Lits[0] != "+" {
		t.Errorf("aug = %v", stmts[1])
	}
	if stmts[2].Lits[0] != "**" {
		t.Errorf("aug ** = %v", stmts[2])
	}
}

func TestParseReturnVariants(t *testing.T) {
	mod := parseOK(t, "def f():\n    return\ndef g():\n    return 1, 2\n")
	stmts := ListElems(mod.Kids[0])
	r1 := ListElems(stmts[0].Kids[1])[0]
	if r1.Tag != TagReturn || r1.Kids[0].Tag != TagNone {
		t.Errorf("bare return = %s", shape(r1))
	}
	r2 := ListElems(stmts[1].Kids[1])[0]
	if r2.Kids[0].Tag != TagTupleLit {
		t.Errorf("tuple return = %s", shape(r2))
	}
}

func TestParseSingleLineSuite(t *testing.T) {
	s := firstStmt(t, "if x: y = 1\n")
	body := ListElems(s.Kids[1])
	if len(body) != 1 || body[0].Tag != TagAssign {
		t.Errorf("single-line suite = %s", shape(s))
	}
}

func TestParseStringConcat(t *testing.T) {
	s := firstStmt(t, `v = "a" 'b' "c"`+"\n")
	if s.Kids[1].Tag != TagStr || s.Kids[1].Lits[0] != "abc" {
		t.Errorf("adjacent strings: %v", s.Kids[1].Lits)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"def f(:\n    pass\n",
		"x = \n",
		"if x\n    pass\n",
		"class :\n    pass\n",
		"x = 1 +\n",
		"def f():\n",            // empty suite (EOF)
		"for in y:\n    pass\n", // missing target
		"return 1\nx (\n",       // unclosed call hits EOF
	}
	for _, src := range bad {
		if _, _, err := ParseNew(src); err == nil {
			t.Errorf("parse %q should fail", src)
		}
	}
}

func TestParseChainedAssignment(t *testing.T) {
	mod := parseOK(t, "a = b = f(1)\n")
	stmts := ListElems(mod.Kids[0])
	if len(stmts) != 2 {
		t.Fatalf("chained assignment should desugar into 2 statements, got %d", len(stmts))
	}
	for i, st := range stmts {
		if st.Tag != TagAssign {
			t.Errorf("stmt %d tag = %s", i, st.Tag)
		}
		if st.Kids[1].Tag != TagCall {
			t.Errorf("stmt %d value = %s", i, st.Kids[1].Tag)
		}
	}
	if !tree.Equal(stmts[0].Kids[1], stmts[1].Kids[1]) {
		t.Error("both assignments should carry equal copies of the value")
	}
	if stmts[0].Kids[1] == stmts[1].Kids[1] {
		t.Error("the value copies must be distinct node objects")
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, _, err := ParseNew("x = 1\ny = *\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "2:") {
		t.Errorf("error should include position: %v", pe)
	}
}

func TestParsedTreeIsWellTyped(t *testing.T) {
	src := sampleSource
	mod, f, err := ParseNew(src)
	if err != nil {
		t.Fatal(err)
	}
	// Every node must conform to the schema; construction already enforces
	// this, so just sanity-check sorts of the root.
	if srt, _ := f.Schema().ResultSort(mod.Tag); srt != SortModule {
		t.Errorf("root sort = %s", srt)
	}
	if mod.Size() < 80 {
		t.Errorf("sample module too small: %d nodes", mod.Size())
	}
}

func TestListElems(t *testing.T) {
	f := NewFactory()
	l := f.StmtList(f.Pass(), f.Break(), f.Continue())
	elems := ListElems(l)
	if len(elems) != 3 || elems[0].Tag != TagPass || elems[2].Tag != TagContinue {
		t.Errorf("ListElems = %v", elems)
	}
	if got := ListElems(f.StmtList()); len(got) != 0 {
		t.Errorf("empty list should flatten to nothing")
	}
	if got := ListElems(f.Pass()); len(got) != 0 {
		t.Errorf("non-list node should flatten to nothing")
	}
}

// sampleSource is a realistic module exercising most constructs; shared
// with the renderer round-trip tests.
const sampleSource = `import os
import numpy.linalg
from keras.layers import Dense, Dropout

EPSILON = 1e-7
NAMES = ["input", "hidden", "output"]

class Layer(Base):
    def __init__(self, units, activation=None, use_bias=True):
        self.units = units
        self.activation = activation
        self.use_bias = use_bias
        self.weights = {}

    def build(self, shape):
        if self.built:
            return
        self.kernel = self.add_weight("kernel", shape[1:], init="glorot")
        if self.use_bias:
            self.bias = self.add_weight("bias", (self.units,), init="zeros")
        self.built = True

    def call(self, inputs, training=False):
        outputs = matmul(inputs, self.kernel)
        if self.use_bias:
            outputs += self.bias
        if self.activation is not None and training:
            outputs = self.activation(outputs)
        return outputs

def clip(x, lo=0.0, hi=1.0):
    if x < lo:
        return lo
    elif x > hi:
        return hi
    else:
        return x

def summarize(layers):
    total = 0
    for i, layer in enumerate(layers):
        params = layer.count_params()
        total += params
        print("layer %d" % i, params)
    while total > 0 and len(layers) > 1:
        total = total // 2
    return total, len(layers)
`

func TestParseSample(t *testing.T) {
	mod := parseOK(t, sampleSource)
	stmts := ListElems(mod.Kids[0])
	// 3 imports expand to 4 statements + EPSILON + NAMES + class + 2 defs.
	if len(stmts) != 9 {
		t.Fatalf("top-level statements = %d, want 9", len(stmts))
	}
	tags := []sig.Tag{TagImport, TagImport, TagFromImport, TagFromImport,
		TagAssign, TagAssign, TagClassDef, TagFuncDef, TagFuncDef}
	for i, want := range tags {
		if stmts[i].Tag != want {
			t.Errorf("stmt %d tag = %s, want %s", i, stmts[i].Tag, want)
		}
	}
}
