package pylang

import (
	"strings"
	"testing"

	"repro/internal/tree"
)

// roundTrip asserts Parse(Render(Parse(src))) == Parse(src).
func roundTrip(t *testing.T, src string) {
	t.Helper()
	mod1, _, err := ParseNew(src)
	if err != nil {
		t.Fatalf("parse original:\n%s\nerror: %v", src, err)
	}
	rendered := Render(mod1)
	mod2, _, err := ParseNew(rendered)
	if err != nil {
		t.Fatalf("parse rendered:\n%s\nerror: %v", rendered, err)
	}
	if !tree.Equal(mod1, mod2) {
		t.Fatalf("round trip changed the tree.\noriginal source:\n%s\nrendered:\n%s\noriginal tree: %s\nrendered tree: %s",
			src, rendered, mod1, mod2)
	}
}

func TestRoundTripSample(t *testing.T) {
	roundTrip(t, sampleSource)
}

func TestRoundTripConstructs(t *testing.T) {
	cases := []string{
		"x = 1\n",
		"x = -1\n",
		"x = - -1\n",
		"x = 3.5\nf = 1e10\ng = 2.5e-3\nh = 100.0\n",
		"x = 1 - 2 - 3\n",
		"x = 1 - (2 - 3)\n",
		"x = (1 + 2) * 3\n",
		"x = 2 ** 3 ** 4\n",
		"x = (2 ** 3) ** 4\n",
		"x = -y ** 2\n",
		"x = (-y) ** 2\n",
		"x = a or b and c\n",
		"x = (a or b) and c\n",
		"x = not a == b\n",
		"x = not (a or b)\n",
		"x = a < b <= c\n",
		"x = a in b\nz = a not in b\nw = a is not None\n",
		"x = a % b // c\n",
		"s = \"he said \\\"hi\\\"\\n\"\n",
		"s = \"tab\\t and null \\0 done\"\n",
		"v = [1, [2, 3], []]\n",
		"v = (1,)\nw = ()\nu = (1, 2, 3)\n",
		"v = {\"a\": 1, b: [2]}\nempty = {}\n",
		"v = x[1][a:b][:][2:]\n",
		"v = obj.m(1, k=2)(3)\n",
		"v = f()\n",
		"x += 1\nx //= 2\nx **= 3\nx %= 4\n",
		"import a.b.c\nfrom x.y import z\n",
		"def f():\n    return\n",
		"def f(a, b=1):\n    return a + b\n",
		"class C:\n    pass\n",
		"class C(D):\n    pass\n",
		"class C(D, E):\n    x = 1\n",
		"if a:\n    pass\n",
		"if a:\n    pass\nelse:\n    pass\n",
		"if a:\n    pass\nelif b:\n    pass\nelif c:\n    pass\nelse:\n    pass\n",
		"for x in xs:\n    break\n",
		"for k, v in items:\n    continue\n",
		"while True:\n    pass\n",
		"raise ValueError(\"bad\")\n",
		"x = f(-1, +2)\n",
		"x = True\ny = False\nz = None\n",
		"def f():\n    if x:\n        while y:\n            for i in z:\n                return [i]\n",
		"x = 1, 2\n",
		"return_ = not_ = 1\n"[:15] + "\n", // names that prefix keywords
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestRenderProducesElif(t *testing.T) {
	src := "if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n"
	mod, _, err := ParseNew(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(mod)
	if !strings.Contains(out, "elif b") {
		t.Errorf("rendered output should use elif:\n%s", out)
	}
	if strings.Count(out, "else") != 1 {
		t.Errorf("rendered output should have exactly one else:\n%s", out)
	}
}

func TestRenderBareReturn(t *testing.T) {
	mod, _, err := ParseNew("def f():\n    return\n")
	if err != nil {
		t.Fatal(err)
	}
	out := Render(mod)
	if strings.Contains(out, "return None") {
		t.Errorf("bare return should render bare:\n%s", out)
	}
}

func TestRenderEmptySuiteEmitsPass(t *testing.T) {
	f := NewFactory()
	mod := f.Module(f.StmtList(f.FuncDef("f", f.ParamList(), f.StmtList())))
	out := Render(mod)
	if !strings.Contains(out, "pass") {
		t.Errorf("empty suite should render pass:\n%s", out)
	}
	if _, _, err := ParseNew(out); err != nil {
		t.Errorf("rendered output should parse: %v", err)
	}
}

func TestRenderIndentation(t *testing.T) {
	src := "class C:\n    def m(self):\n        if x:\n            return 1\n"
	mod, _, err := ParseNew(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(mod)
	if !strings.Contains(out, "\n            return 1\n") {
		t.Errorf("nested indentation lost:\n%s", out)
	}
	roundTrip(t, src)
}

func TestRenderStmtDirectly(t *testing.T) {
	f := NewFactory()
	s := f.Assign(f.Name("x"), f.Int(1))
	if got := Render(s); got != "x = 1\n" {
		t.Errorf("Render(stmt) = %q", got)
	}
}

func TestRoundTripGeneratedPrograms(t *testing.T) {
	// A somewhat larger synthetic program assembled via the factory,
	// round-tripped through render → parse → render.
	f := NewFactory()
	body := f.StmtList(
		f.Import("math"),
		f.Assign(f.Name("threshold"), f.Float(0.5)),
		f.FuncDef("norm", f.ParamList(f.Param("xs"), f.DefaultParam("eps", f.Float(1e-7))),
			f.StmtList(
				f.Assign(f.Name("total"), f.Int(0)),
				f.For(f.Name("x"), f.Name("xs"), f.StmtList(
					f.AugAssign("+", f.Name("total"), f.BinOp("*", f.Name("x"), f.Name("x"))),
				)),
				f.Return(f.Call(f.Attribute(f.Name("math"), "sqrt"),
					f.ExprList(f.BinOp("+", f.Name("total"), f.Name("eps"))))),
			)),
	)
	mod := f.Module(body)
	out1 := Render(mod)
	mod2, _, err := ParseNew(out1)
	if err != nil {
		t.Fatalf("parse rendered:\n%s\n%v", out1, err)
	}
	if !tree.Equal(mod, mod2) {
		t.Fatalf("factory round trip failed:\n%s", out1)
	}
	if out2 := Render(mod2); out1 != out2 {
		t.Errorf("render not stable:\n%s\nvs\n%s", out1, out2)
	}
}
