package pylang

import (
	"strings"
	"testing"
)

// Tests for the extended Python subset: decorators, try/except/finally,
// with, assert, del, global/nonlocal, yield, lambda, conditional
// expressions, list comprehensions, and star arguments/parameters.

func TestParseDecorators(t *testing.T) {
	src := `@staticmethod
@register("name")
def f(x):
    return x
`
	s := firstStmt(t, src)
	if s.Tag != TagDecorated {
		t.Fatalf("tag = %s", s.Tag)
	}
	decs := ListElems(s.Kids[0])
	if len(decs) != 2 || decs[0].Tag != TagName || decs[1].Tag != TagCall {
		t.Errorf("decorators = %s", shape(s.Kids[0]))
	}
	if s.Kids[1].Tag != TagFuncDef {
		t.Errorf("decorated def = %s", s.Kids[1].Tag)
	}
}

func TestParseDecoratedClass(t *testing.T) {
	s := firstStmt(t, "@plugin.hook\nclass C:\n    pass\n")
	if s.Tag != TagDecorated || s.Kids[1].Tag != TagClassDef {
		t.Fatalf("shape = %s", shape(s))
	}
}

func TestParseTryExceptFinally(t *testing.T) {
	src := `try:
    risky()
except ValueError as e:
    handle(e)
except TypeError:
    pass
except:
    fallback()
else:
    celebrate()
finally:
    cleanup()
`
	s := firstStmt(t, src)
	if s.Tag != TagTry {
		t.Fatalf("tag = %s", s.Tag)
	}
	handlers := ListElems(s.Kids[1])
	if len(handlers) != 3 {
		t.Fatalf("handlers = %d", len(handlers))
	}
	if handlers[0].Lits[0] != "e" || handlers[0].Kids[0].Tag != TagName {
		t.Errorf("handler 0 = %s %v", shape(handlers[0]), handlers[0].Lits)
	}
	if handlers[1].Lits[0] != "" {
		t.Errorf("handler 1 should bind no name")
	}
	if handlers[2].Kids[0].Tag != TagNone {
		t.Errorf("bare except should have a None etype")
	}
	if len(ListElems(s.Kids[2])) != 1 || len(ListElems(s.Kids[3])) != 1 {
		t.Error("else/finally suites missing")
	}
}

func TestParseTryFinallyOnly(t *testing.T) {
	s := firstStmt(t, "try:\n    x = 1\nfinally:\n    done()\n")
	if s.Tag != TagTry || len(ListElems(s.Kids[1])) != 0 {
		t.Fatalf("shape = %s", shape(s))
	}
	if _, _, err := ParseNew("try:\n    x = 1\nx = 2\n"); err == nil {
		t.Error("try without except/finally should fail")
	}
}

func TestParseWith(t *testing.T) {
	s := firstStmt(t, "with open(path) as f:\n    data = f.read()\n")
	if s.Tag != TagWith || s.Lits[0] != "f" {
		t.Fatalf("with = %s %v", shape(s), s.Lits)
	}
	// Multiple items nest, outermost first.
	s2 := firstStmt(t, "with a() as x, b():\n    pass\n")
	if s2.Tag != TagWith || s2.Lits[0] != "x" {
		t.Fatalf("outer with wrong: %v", s2.Lits)
	}
	inner := ListElems(s2.Kids[1])
	if len(inner) != 1 || inner[0].Tag != TagWith || inner[0].Lits[0] != "" {
		t.Fatalf("inner with wrong: %s", shape(s2))
	}
}

func TestParseAssertDelGlobal(t *testing.T) {
	mod := parseOK(t, "assert x > 0\nassert y, \"message\"\ndel cache[key]\nglobal a, b\nnonlocal c\n")
	stmts := ListElems(mod.Kids[0])
	if len(stmts) != 6 { // global a, b expands into two statements
		t.Fatalf("stmts = %d", len(stmts))
	}
	if stmts[0].Tag != TagAssert || stmts[0].Kids[1].Tag != TagNone {
		t.Errorf("assert without message wrong")
	}
	if stmts[1].Kids[1].Tag != TagStr {
		t.Errorf("assert message missing")
	}
	if stmts[2].Tag != TagDel || stmts[2].Kids[0].Tag != TagSubscript {
		t.Errorf("del = %s", shape(stmts[2]))
	}
	if stmts[3].Tag != TagGlobal || stmts[3].Lits[0] != "a" || stmts[4].Lits[0] != "b" {
		t.Errorf("global expansion wrong")
	}
	if stmts[5].Tag != TagNonlocal || stmts[5].Lits[0] != "c" {
		t.Errorf("nonlocal wrong")
	}
}

func TestParseYield(t *testing.T) {
	mod := parseOK(t, "def g():\n    yield\n    yield 1\n    x = yield v\n")
	body := ListElems(ListElems(mod.Kids[0])[0].Kids[1])
	if body[0].Kids[0].Tag != TagYield || body[0].Kids[0].Kids[0].Tag != TagNone {
		t.Errorf("bare yield = %s", shape(body[0]))
	}
	if body[1].Kids[0].Kids[0].Tag != TagNumInt {
		t.Errorf("yield 1 = %s", shape(body[1]))
	}
	if body[2].Kids[1].Tag != TagYield {
		t.Errorf("assigned yield = %s", shape(body[2]))
	}
}

func TestParseLambda(t *testing.T) {
	cases := []struct{ src, want string }{
		{"f = lambda: 1\n", "Assign(Name,Lambda(ParamNil,NumInt))"},
		{"f = lambda x: x + 1\n", "Assign(Name,Lambda(ParamCons(Param,ParamNil),BinOp(Name,NumInt)))"},
		{"f = lambda x, y=2: x\n", "Assign(Name,Lambda(ParamCons(Param,ParamCons(DefaultParam(NumInt),ParamNil)),Name))"},
	}
	for _, c := range cases {
		if got := shape(firstStmt(t, c.src)); got != c.want {
			t.Errorf("%q = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseIfExp(t *testing.T) {
	s := firstStmt(t, "v = a if cond else b\n")
	if got := shape(s); got != "Assign(Name,IfExp(Name,Name,Name))" {
		t.Errorf("shape = %s", got)
	}
	// Nested ternary is right-associative.
	s2 := firstStmt(t, "v = a if c1 else b if c2 else c\n")
	if got := shape(s2); got != "Assign(Name,IfExp(Name,Name,IfExp(Name,Name,Name)))" {
		t.Errorf("nested shape = %s", got)
	}
}

func TestParseListComp(t *testing.T) {
	s := firstStmt(t, "v = [x * 2 for x in xs]\n")
	if got := shape(s); got != "Assign(Name,ListComp(BinOp(Name,NumInt),Name,Name,None))" {
		t.Errorf("shape = %s", got)
	}
	s2 := firstStmt(t, "v = [x for x, y in pairs if y > 0]\n")
	comp := s2.Kids[1]
	if comp.Tag != TagListComp || comp.Kids[1].Tag != TagTupleLit || comp.Kids[3].Tag != TagCompare {
		t.Errorf("comp = %s", shape(s2))
	}
}

func TestParseStarArgsAndParams(t *testing.T) {
	s := firstStmt(t, "def f(a, *args, **kwargs):\n    return g(a, *args, k=1, **kwargs)\n")
	params := ListElems(s.Kids[0])
	if len(params) != 3 || params[1].Tag != TagStarParam || params[2].Tag != TagKwStarParam {
		t.Fatalf("params = %s", shape(s.Kids[0]))
	}
	ret := ListElems(s.Kids[1])[0]
	args := ListElems(ret.Kids[0].Kids[1])
	if len(args) != 4 || args[1].Tag != TagStarArg || args[2].Tag != TagKwArg || args[3].Tag != TagKwStarArg {
		t.Fatalf("args = %s", shape(ret))
	}
}

func TestRoundTripExtendedConstructs(t *testing.T) {
	cases := []string{
		"@dec\ndef f():\n    pass\n",
		"@mod.dec\n@other(1, k=2)\nclass C(D):\n    pass\n",
		"try:\n    x = 1\nexcept E as e:\n    pass\n",
		"try:\n    x = 1\nexcept A:\n    pass\nexcept:\n    pass\nelse:\n    y = 2\nfinally:\n    z = 3\n",
		"try:\n    x = 1\nfinally:\n    pass\n",
		"with open(p) as f:\n    pass\n",
		"with a(), b() as x:\n    pass\n",
		"assert x\n",
		"assert x == 1, \"oops\"\n",
		"del x\ndel xs[0]\n",
		"global counter\nnonlocal state\n",
		"def g():\n    yield\n    yield 1 + 2\n",
		"x = (yield v)\n",
		"f = lambda: 0\n",
		"f = lambda x, y=1: x * y\n",
		"v = a if x > 0 else b\n",
		"v = (a if c else b) + 1\n",
		"v = [x * x for x in range(10)]\n",
		"v = [x for x, y in ps if x != y]\n",
		"v = [f(x) for x in xs]\n",
		"def f(a, b=1, *args, **kw):\n    return a\n",
		"r = f(1, *rest, k=2, **extra)\n",
		"a = b = c = unit()\n",
		"handler = lambda e: log(e) if verbose else None\n",
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestRenderTryProducesKeywords(t *testing.T) {
	src := "try:\n    x = 1\nexcept E as e:\n    pass\nfinally:\n    done()\n"
	mod, _, err := ParseNew(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(mod)
	for _, want := range []string{"try:", "except E as e:", "finally:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered try lacks %q:\n%s", want, out)
		}
	}
}

func TestRealisticExtendedModule(t *testing.T) {
	src := `import threading
from contextlib import suppress

_LOCK = threading.Lock()

def cached(fn):
    store = {}
    @wraps(fn)
    def wrapper(*args, **kwargs):
        key = (args, tuple(sorted(kwargs.items())))
        with _LOCK:
            if key not in store:
                store[key] = fn(*args, **kwargs)
        return store[key]
    return wrapper

class Pipeline:
    def __init__(self, stages=None):
        self.stages = stages if stages is not None else []

    def run(self, items):
        results = [s for s in items if s is not None]
        for stage in self.stages:
            try:
                results = [stage(r) for r in results]
            except ValueError as err:
                raise RuntimeError("stage failed")
            finally:
                self.log(stage)
        return results

    def generate(self):
        for r in self.stages:
            yield r
`
	roundTrip(t, src)
	mod, _, err := ParseNew(src)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Size() < 150 {
		t.Errorf("module too small: %d nodes", mod.Size())
	}
}
