package pylang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func lexOK(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

func TestLexSimpleLine(t *testing.T) {
	toks := lexOK(t, "x = 1 + 2\n")
	want := []TokKind{TokName, TokOp, TokInt, TokOp, TokInt, TokNewline, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
	if toks[0].Text != "x" || toks[2].Text != "1" {
		t.Errorf("texts wrong: %v", toks)
	}
}

func TestLexIndentation(t *testing.T) {
	src := "if x:\n    y = 1\n    z = 2\nreturn\n"
	toks := lexOK(t, src)
	var indents, dedents int
	for _, tok := range toks {
		switch tok.Kind {
		case TokIndent:
			indents++
		case TokDedent:
			dedents++
		}
	}
	if indents != 1 || dedents != 1 {
		t.Errorf("indents/dedents = %d/%d, want 1/1", indents, dedents)
	}
}

func TestLexNestedIndentationClosesAtEOF(t *testing.T) {
	src := "def f():\n    if x:\n        return 1"
	toks := lexOK(t, src)
	dedents := 0
	for _, tok := range toks {
		if tok.Kind == TokDedent {
			dedents++
		}
	}
	if dedents != 2 {
		t.Errorf("dedents at EOF = %d, want 2", dedents)
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("last token should be EOF")
	}
}

func TestLexBlankLinesAndComments(t *testing.T) {
	src := "x = 1\n\n# a comment\n   # indented comment\n\ny = 2  # trailing\n"
	toks := lexOK(t, src)
	names := 0
	for _, tok := range toks {
		if tok.Kind == TokName {
			names++
		}
		if tok.Kind == TokIndent || tok.Kind == TokDedent {
			t.Errorf("blank/comment lines must not affect indentation: %v", tok)
		}
	}
	if names != 2 {
		t.Errorf("names = %d, want 2", names)
	}
}

func TestLexImplicitLineJoining(t *testing.T) {
	src := "f(a,\n  b,\n  c)\n"
	toks := lexOK(t, src)
	for _, tok := range toks {
		if tok.Kind == TokIndent || tok.Kind == TokDedent {
			t.Errorf("no indentation tokens inside brackets: %v", tok)
		}
	}
	newlines := 0
	for _, tok := range toks {
		if tok.Kind == TokNewline {
			newlines++
		}
	}
	if newlines != 1 {
		t.Errorf("newlines = %d, want 1 (only after closing paren)", newlines)
	}
}

func TestLexBackslashContinuation(t *testing.T) {
	toks := lexOK(t, "x = 1 + \\\n    2\n")
	newlines := 0
	for _, tok := range toks {
		if tok.Kind == TokNewline {
			newlines++
		}
	}
	if newlines != 1 {
		t.Errorf("newlines = %d, want 1", newlines)
	}
}

func TestLexNumbers(t *testing.T) {
	toks := lexOK(t, "a = 42\nb = 3.14\nc = 1e5\nd = 2.5e-3\ne = .5\n")
	var ints, floats []string
	for _, tok := range toks {
		switch tok.Kind {
		case TokInt:
			ints = append(ints, tok.Text)
		case TokFloat:
			floats = append(floats, tok.Text)
		}
	}
	if len(ints) != 1 || ints[0] != "42" {
		t.Errorf("ints = %v", ints)
	}
	if len(floats) != 4 {
		t.Errorf("floats = %v", floats)
	}
	if _, err := Lex("x = 1abc\n"); err == nil {
		t.Error("1abc should be a lex error")
	}
}

func TestLexStrings(t *testing.T) {
	cases := []struct{ src, want string }{
		{`s = "hello"` + "\n", "hello"},
		{`s = 'it'` + "\n", "it"},
		{`s = "a\nb\t\"c\"\\"` + "\n", "a\nb\t\"c\"\\"},
		{"s = \"\"\"multi\nline\"\"\"\n", "multi\nline"},
		{"s = '''x'y'''\n", "x'y"},
	}
	for _, c := range cases {
		toks := lexOK(t, c.src)
		var got string
		found := false
		for _, tok := range toks {
			if tok.Kind == TokString {
				got = tok.Text
				found = true
			}
		}
		if !found || got != c.want {
			t.Errorf("lex %q: string = %q, want %q", c.src, got, c.want)
		}
	}
	if _, err := Lex("s = \"unterminated\n"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("s = \"unterminated"); err == nil {
		t.Error("unterminated string at EOF should fail")
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexOK(t, "a **= b // c != d <= e -> f\n")
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokOp {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"**=", "//", "!=", "<=", "->"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("ops = %v, want %v", ops, want)
	}
}

func TestLexKeywordsVsNames(t *testing.T) {
	toks := lexOK(t, "define = defx\nif deffer:\n    pass\n")
	for _, tok := range toks {
		if tok.Kind == TokKeyword && tok.Text != "if" && tok.Text != "pass" {
			t.Errorf("non-keyword lexed as keyword: %v", tok)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("x = 1\n  y = 2\n dangling = 3\n"); err == nil {
		t.Error("inconsistent dedent should fail")
	}
	if _, err := Lex("x = $\n"); err == nil {
		t.Error("unexpected character should fail")
	}
	if _, err := Lex("x ! y\n"); err == nil {
		t.Error("bare ! should fail")
	}
	if _, err := Lex("x = \"a\\"); err == nil {
		t.Error("unterminated escape should fail")
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexOK(t, "a = 1\nbb = 22\n")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("first token at %d:%d", toks[0].Line, toks[0].Col)
	}
	var bb Token
	for _, tok := range toks {
		if tok.Text == "bb" {
			bb = tok
		}
	}
	if bb.Line != 2 || bb.Col != 1 {
		t.Errorf("bb at %d:%d, want 2:1", bb.Line, bb.Col)
	}
	lexErr, ok := func() (err error, _ bool) {
		_, err = Lex("x = $\n")
		return err, true
	}()
	_ = ok
	if le, ok := lexErr.(*LexError); !ok || le.Line != 1 || le.Col != 5 {
		t.Errorf("lex error position = %v", lexErr)
	}
}

func TestLexTabIndentation(t *testing.T) {
	src := "if x:\n\ty = 1\n\tz = 2\n"
	toks := lexOK(t, src)
	indents := 0
	for _, tok := range toks {
		if tok.Kind == TokIndent {
			indents++
		}
	}
	if indents != 1 {
		t.Errorf("tab indents = %d, want 1", indents)
	}
}
