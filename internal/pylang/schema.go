// Package pylang implements a lexer, parser, and renderer for a substantial
// Python subset, producing typed trees over a truechange schema. It plays
// the role of the ANTLR/tree-sitter bindings in the paper's evaluation
// (§5–6), which obtained typed source trees for real-world Python files.
//
// Variable-arity constructs (statement suites, argument lists, parameter
// lists) are encoded as cons lists, the standard algebraic-datatype
// encoding: every constructor has a fixed arity, as truechange signatures
// require. Chained elif branches desugar into nested If nodes, comparison
// chains into conjunctions of binary comparisons, and multi-name imports
// into one import statement per name.
package pylang

import "repro/internal/sig"

// Sorts of the Python schema.
const (
	SortModule    sig.Sort = "Module"
	SortStmt      sig.Sort = "Stmt"
	SortStmtList  sig.Sort = "StmtList"
	SortExpr      sig.Sort = "Expr"
	SortExprList  sig.Sort = "ExprList"
	SortParam     sig.Sort = "Param"
	SortParamList sig.Sort = "ParamList"
	SortKV        sig.Sort = "KV"
	SortKVList    sig.Sort = "KVList"
	SortHandler   sig.Sort = "Handler"
	SortHandlers  sig.Sort = "HandlerList"
)

// Tags of the Python schema.
const (
	TagModule sig.Tag = "Module"

	// List spines.
	TagStmtCons  sig.Tag = "StmtCons"
	TagStmtNil   sig.Tag = "StmtNil"
	TagExprCons  sig.Tag = "ExprCons"
	TagExprNil   sig.Tag = "ExprNil"
	TagParamCons sig.Tag = "ParamCons"
	TagParamNil  sig.Tag = "ParamNil"
	TagKVCons    sig.Tag = "KVCons"
	TagKVNil     sig.Tag = "KVNil"

	// Statements.
	TagFuncDef    sig.Tag = "FuncDef"
	TagClassDef   sig.Tag = "ClassDef"
	TagImport     sig.Tag = "Import"
	TagFromImport sig.Tag = "FromImport"
	TagAssign     sig.Tag = "Assign"
	TagAugAssign  sig.Tag = "AugAssign"
	TagExprStmt   sig.Tag = "ExprStmt"
	TagReturn     sig.Tag = "Return"
	TagIf         sig.Tag = "If"
	TagWhile      sig.Tag = "While"
	TagFor        sig.Tag = "For"
	TagPass       sig.Tag = "Pass"
	TagBreak      sig.Tag = "Break"
	TagContinue   sig.Tag = "Continue"
	TagRaise      sig.Tag = "Raise"

	// Extended statements.
	TagDecorated sig.Tag = "Decorated"
	TagTry       sig.Tag = "Try"
	TagHandler   sig.Tag = "Handler"
	TagHandCons  sig.Tag = "HandlerCons"
	TagHandNil   sig.Tag = "HandlerNil"
	TagWith      sig.Tag = "With"
	TagAssert    sig.Tag = "Assert"
	TagDel       sig.Tag = "Del"
	TagGlobal    sig.Tag = "Global"
	TagNonlocal  sig.Tag = "Nonlocal"

	// Parameters.
	TagParam        sig.Tag = "Param"
	TagDefaultParam sig.Tag = "DefaultParam"
	TagStarParam    sig.Tag = "StarParam"
	TagKwStarParam  sig.Tag = "KwStarParam"

	// Expressions.
	TagName      sig.Tag = "Name"
	TagNumInt    sig.Tag = "NumInt"
	TagNumFloat  sig.Tag = "NumFloat"
	TagStr       sig.Tag = "Str"
	TagBool      sig.Tag = "Bool"
	TagNone      sig.Tag = "None"
	TagBinOp     sig.Tag = "BinOp"
	TagUnaryOp   sig.Tag = "UnaryOp"
	TagCompare   sig.Tag = "Compare"
	TagBoolOp    sig.Tag = "BoolOp"
	TagCall      sig.Tag = "Call"
	TagKwArg     sig.Tag = "KwArg"
	TagAttribute sig.Tag = "Attribute"
	TagSubscript sig.Tag = "Subscript"
	TagSliceExpr sig.Tag = "Slice"
	TagListLit   sig.Tag = "ListLit"
	TagTupleLit  sig.Tag = "TupleLit"
	TagDictLit   sig.Tag = "DictLit"

	// Extended expressions.
	TagYield     sig.Tag = "Yield"
	TagLambda    sig.Tag = "Lambda"
	TagIfExp     sig.Tag = "IfExp"
	TagListComp  sig.Tag = "ListComp"
	TagStarArg   sig.Tag = "StarArg"
	TagKwStarArg sig.Tag = "KwStarArg"
)

// Schema returns the Python-subset schema.
func Schema() *sig.Schema {
	s := sig.NewSchema("python")

	kid := func(l sig.Link, srt sig.Sort) sig.KidSpec { return sig.KidSpec{Link: l, Sort: srt} }
	str := func(l sig.Link) sig.LitSpec { return sig.LitSpec{Link: l, Type: sig.StringLit} }

	s.MustDeclare(sig.Sig{Tag: TagModule, Kids: []sig.KidSpec{kid("body", SortStmtList)}, Result: SortModule})

	// List spines.
	s.MustDeclare(sig.Sig{Tag: TagStmtCons, Kids: []sig.KidSpec{kid("head", SortStmt), kid("tail", SortStmtList)}, Result: SortStmtList})
	s.MustDeclare(sig.Sig{Tag: TagStmtNil, Result: SortStmtList})
	s.MustDeclare(sig.Sig{Tag: TagExprCons, Kids: []sig.KidSpec{kid("head", SortExpr), kid("tail", SortExprList)}, Result: SortExprList})
	s.MustDeclare(sig.Sig{Tag: TagExprNil, Result: SortExprList})
	s.MustDeclare(sig.Sig{Tag: TagParamCons, Kids: []sig.KidSpec{kid("head", SortParam), kid("tail", SortParamList)}, Result: SortParamList})
	s.MustDeclare(sig.Sig{Tag: TagParamNil, Result: SortParamList})
	s.MustDeclare(sig.Sig{Tag: TagKVCons, Kids: []sig.KidSpec{kid("head", SortKV), kid("tail", SortKVList)}, Result: SortKVList})
	s.MustDeclare(sig.Sig{Tag: TagKVNil, Result: SortKVList})

	// Statements.
	s.MustDeclare(sig.Sig{Tag: TagFuncDef,
		Kids:   []sig.KidSpec{kid("params", SortParamList), kid("body", SortStmtList)},
		Lits:   []sig.LitSpec{str("name")},
		Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagClassDef,
		Kids:   []sig.KidSpec{kid("bases", SortExprList), kid("body", SortStmtList)},
		Lits:   []sig.LitSpec{str("name")},
		Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagImport, Lits: []sig.LitSpec{str("module")}, Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagFromImport, Lits: []sig.LitSpec{str("module"), str("name")}, Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagAssign,
		Kids:   []sig.KidSpec{kid("target", SortExpr), kid("value", SortExpr)},
		Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagAugAssign,
		Kids:   []sig.KidSpec{kid("target", SortExpr), kid("value", SortExpr)},
		Lits:   []sig.LitSpec{str("op")},
		Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagExprStmt, Kids: []sig.KidSpec{kid("value", SortExpr)}, Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagReturn, Kids: []sig.KidSpec{kid("value", SortExpr)}, Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagIf,
		Kids:   []sig.KidSpec{kid("cond", SortExpr), kid("then", SortStmtList), kid("orelse", SortStmtList)},
		Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagWhile,
		Kids:   []sig.KidSpec{kid("cond", SortExpr), kid("body", SortStmtList)},
		Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagFor,
		Kids:   []sig.KidSpec{kid("target", SortExpr), kid("iter", SortExpr), kid("body", SortStmtList)},
		Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagPass, Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagBreak, Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagContinue, Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagRaise, Kids: []sig.KidSpec{kid("value", SortExpr)}, Result: SortStmt})

	// Parameters.
	s.MustDeclare(sig.Sig{Tag: TagParam, Lits: []sig.LitSpec{str("name")}, Result: SortParam})
	s.MustDeclare(sig.Sig{Tag: TagDefaultParam,
		Kids:   []sig.KidSpec{kid("default", SortExpr)},
		Lits:   []sig.LitSpec{str("name")},
		Result: SortParam})

	// Expressions.
	s.MustDeclare(sig.Sig{Tag: TagName, Lits: []sig.LitSpec{str("id")}, Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagNumInt, Lits: []sig.LitSpec{{Link: "v", Type: sig.IntLit}}, Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagNumFloat, Lits: []sig.LitSpec{{Link: "v", Type: sig.FloatLit}}, Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagStr, Lits: []sig.LitSpec{str("v")}, Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagBool, Lits: []sig.LitSpec{{Link: "v", Type: sig.BoolLit}}, Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagNone, Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagBinOp,
		Kids:   []sig.KidSpec{kid("left", SortExpr), kid("right", SortExpr)},
		Lits:   []sig.LitSpec{str("op")},
		Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagUnaryOp,
		Kids:   []sig.KidSpec{kid("operand", SortExpr)},
		Lits:   []sig.LitSpec{str("op")},
		Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagCompare,
		Kids:   []sig.KidSpec{kid("left", SortExpr), kid("right", SortExpr)},
		Lits:   []sig.LitSpec{str("op")},
		Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagBoolOp,
		Kids:   []sig.KidSpec{kid("left", SortExpr), kid("right", SortExpr)},
		Lits:   []sig.LitSpec{str("op")},
		Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagCall,
		Kids:   []sig.KidSpec{kid("func", SortExpr), kid("args", SortExprList)},
		Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagKwArg,
		Kids:   []sig.KidSpec{kid("value", SortExpr)},
		Lits:   []sig.LitSpec{str("name")},
		Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagAttribute,
		Kids:   []sig.KidSpec{kid("value", SortExpr)},
		Lits:   []sig.LitSpec{str("attr")},
		Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagSubscript,
		Kids:   []sig.KidSpec{kid("value", SortExpr), kid("index", SortExpr)},
		Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagSliceExpr,
		Kids:   []sig.KidSpec{kid("lo", SortExpr), kid("hi", SortExpr)},
		Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagListLit, Kids: []sig.KidSpec{kid("elts", SortExprList)}, Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagTupleLit, Kids: []sig.KidSpec{kid("elts", SortExprList)}, Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagDictLit, Kids: []sig.KidSpec{kid("items", SortKVList)}, Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: "KV",
		Kids:   []sig.KidSpec{kid("key", SortExpr), kid("val", SortExpr)},
		Result: SortKV})

	// Extended statements.
	s.MustDeclare(sig.Sig{Tag: TagDecorated,
		Kids:   []sig.KidSpec{kid("decorators", SortExprList), kid("def", SortStmt)},
		Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagTry,
		Kids: []sig.KidSpec{
			kid("body", SortStmtList), kid("handlers", SortHandlers),
			kid("orelse", SortStmtList), kid("final", SortStmtList)},
		Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagHandler,
		Kids:   []sig.KidSpec{kid("etype", SortExpr), kid("body", SortStmtList)},
		Lits:   []sig.LitSpec{str("name")},
		Result: SortHandler})
	s.MustDeclare(sig.Sig{Tag: TagHandCons,
		Kids:   []sig.KidSpec{kid("head", SortHandler), kid("tail", SortHandlers)},
		Result: SortHandlers})
	s.MustDeclare(sig.Sig{Tag: TagHandNil, Result: SortHandlers})
	s.MustDeclare(sig.Sig{Tag: TagWith,
		Kids:   []sig.KidSpec{kid("ctx", SortExpr), kid("body", SortStmtList)},
		Lits:   []sig.LitSpec{str("name")},
		Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagAssert,
		Kids:   []sig.KidSpec{kid("cond", SortExpr), kid("msg", SortExpr)},
		Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagDel, Kids: []sig.KidSpec{kid("target", SortExpr)}, Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagGlobal, Lits: []sig.LitSpec{str("name")}, Result: SortStmt})
	s.MustDeclare(sig.Sig{Tag: TagNonlocal, Lits: []sig.LitSpec{str("name")}, Result: SortStmt})

	// Extended parameters.
	s.MustDeclare(sig.Sig{Tag: TagStarParam, Lits: []sig.LitSpec{str("name")}, Result: SortParam})
	s.MustDeclare(sig.Sig{Tag: TagKwStarParam, Lits: []sig.LitSpec{str("name")}, Result: SortParam})

	// Extended expressions.
	s.MustDeclare(sig.Sig{Tag: TagYield, Kids: []sig.KidSpec{kid("value", SortExpr)}, Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagLambda,
		Kids:   []sig.KidSpec{kid("params", SortParamList), kid("body", SortExpr)},
		Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagIfExp,
		Kids:   []sig.KidSpec{kid("then", SortExpr), kid("cond", SortExpr), kid("orelse", SortExpr)},
		Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagListComp,
		Kids: []sig.KidSpec{
			kid("elt", SortExpr), kid("target", SortExpr),
			kid("iter", SortExpr), kid("cond", SortExpr)},
		Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagStarArg, Kids: []sig.KidSpec{kid("value", SortExpr)}, Result: SortExpr})
	s.MustDeclare(sig.Sig{Tag: TagKwStarArg, Kids: []sig.KidSpec{kid("value", SortExpr)}, Result: SortExpr})

	return s
}

// TagKV is the dictionary entry constructor.
const TagKV sig.Tag = "KV"
