package pylang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Robustness: the lexer and parser must never panic on arbitrary input —
// they either succeed or return a positioned error. The CLI feeds them
// user files, so this is a hard requirement.

func TestLexNeverPanicsOnRandomBytes(t *testing.T) {
	prop := func(data []byte) bool {
		_, _ = Lex(string(data)) // must not panic
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	prop := func(data []byte) bool {
		_, _, _ = ParseNew(string(data)) // must not panic
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnTokenSoup stresses the parser with syntactically
// plausible but garbled token streams, which random bytes rarely produce.
func TestParseNeverPanicsOnTokenSoup(t *testing.T) {
	pieces := []string{
		"def", "class", "if", "else", "elif", "try", "except", "finally",
		"with", "as", "for", "while", "in", "lambda", "yield", "return",
		"import", "from", "assert", "del", "global", "not", "and", "or",
		"x", "y", "f", "name", "123", "4.5", `"str"`, "True", "None",
		"(", ")", "[", "]", "{", "}", ":", ",", ".", "=", "==", "+", "-",
		"*", "**", "@", ";", "->", "\n", "\n    ", "\n        ",
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 400; i++ {
		var b strings.Builder
		n := 1 + rng.Intn(30)
		for j := 0; j < n; j++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
		_, _, _ = ParseNew(b.String()) // must not panic
	}
}

// TestParseValidPrefixesDontPanic truncates a valid module at every byte
// offset; every prefix must lex+parse without panicking.
func TestParseValidPrefixesDontPanic(t *testing.T) {
	src := sampleSource
	for i := 0; i <= len(src); i += 7 {
		_, _, _ = ParseNew(src[:i])
	}
}
