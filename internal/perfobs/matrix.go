package perfobs

import (
	"fmt"

	"repro/internal/corpus"
)

// System identifies which diff implementation a scenario measures.
type System string

const (
	// SystemTruediff runs the single-threaded truediff differ — the
	// paper's algorithm, measured without engine machinery.
	SystemTruediff System = "truediff"
	// SystemEngine runs the concurrent batch engine (workers and memo per
	// scenario).
	SystemEngine System = "engine"
	// SystemGumtree, SystemHdiff, and SystemLineardiff are the comparison
	// baselines from the paper's evaluation (§6).
	SystemGumtree    System = "gumtree"
	SystemHdiff      System = "hdiff"
	SystemLineardiff System = "lineardiff"
	// SystemService runs the full diff service path: an in-process diffd
	// (internal/diffserve) driven over loopback HTTP by concurrent clients,
	// measuring what a network caller observes — transport, coalescing, and
	// admission control included.
	SystemService System = "service"
)

// CorpusSize names one of the three fixed corpus configurations.
type CorpusSize string

const (
	// CorpusTiny targets trees near the exact minimal-script baseline cap
	// (quality.DefaultBaselineMaxNodes). The generator's statement
	// granularity overshoots on some files, so not every pair is
	// baselined, but enough are that the optimality-gap column is always
	// populated — the conciseness trajectory's anchor.
	CorpusTiny CorpusSize = "tiny"
	// CorpusSmall is a few hundred nodes per tree — small enough for the
	// quadratic lineardiff baseline.
	CorpusSmall CorpusSize = "small"
	// CorpusMedium approaches the paper's median file size.
	CorpusMedium CorpusSize = "medium"
	// CorpusLarge stresses per-diff scaling with multi-thousand-node trees.
	CorpusLarge CorpusSize = "large"
)

// EditProfile names how heavily each commit mutates its files.
type EditProfile string

const (
	// EditsLight applies at most 2 edits per file per commit, the common
	// case in real histories.
	EditsLight EditProfile = "light"
	// EditsHeavy applies up to 10 edits per file per commit, degrading
	// subtree reuse.
	EditsHeavy EditProfile = "heavy"
)

// Scenario is one cell of the benchmark matrix. The zero values of Workers
// and DisableMemo only matter for SystemEngine.
type Scenario struct {
	System System
	Corpus CorpusSize
	Edits  EditProfile
	// Workers is the engine's worker count (SystemEngine and SystemService
	// only; 0 is invalid there — the matrix always pins it so results are
	// comparable across machines).
	Workers int
	// DisableMemo turns off the engine's cross-diff digest memo
	// (SystemEngine only), the memo ablation.
	DisableMemo bool
	// Clients is the concurrent HTTP client count (SystemService only;
	// pinned by the matrix like Workers).
	Clients int
}

// Name returns the scenario's stable identity, the comparator's join key:
// "system/corpus/edits" plus "/wN" and "/nomemo" qualifiers for engine
// scenarios and "/wN/cM" for service scenarios.
func (s Scenario) Name() string {
	n := fmt.Sprintf("%s/%s/%s", s.System, s.Corpus, s.Edits)
	switch s.System {
	case SystemEngine:
		n += fmt.Sprintf("/w%d", s.Workers)
		if s.DisableMemo {
			n += "/nomemo"
		}
	case SystemService:
		n += fmt.Sprintf("/w%d/c%d", s.Workers, s.Clients)
	}
	return n
}

// CorpusOptions maps the scenario's corpus cell to generator options. The
// seeds and sizes are fixed: every run of a scenario diffs the identical
// pair set, so report deltas measure the code, not the corpus. Sizes are
// chosen to keep the full matrix under a minute on a laptop while spanning
// two orders of magnitude in tree size; small trees stay under the
// lineardiff quadratic-DP cap (lineardiff.MaxNodes).
func (s Scenario) CorpusOptions() corpus.Options {
	var o corpus.Options
	switch s.Corpus {
	case CorpusTiny:
		o = corpus.Options{Seed: 10, Files: 6, Commits: 10, MaxFilesPerCommit: 3, MinNodes: 30, MaxNodes: 100}
	case CorpusSmall:
		o = corpus.Options{Seed: 11, Files: 4, Commits: 12, MaxFilesPerCommit: 2, MinNodes: 150, MaxNodes: 400}
	case CorpusMedium:
		o = corpus.Options{Seed: 12, Files: 6, Commits: 20, MaxFilesPerCommit: 3, MinNodes: 600, MaxNodes: 1500}
	case CorpusLarge:
		o = corpus.Options{Seed: 13, Files: 4, Commits: 10, MaxFilesPerCommit: 2, MinNodes: 3000, MaxNodes: 6000}
	default:
		panic(fmt.Sprintf("perfobs: unknown corpus size %q", s.Corpus))
	}
	switch s.Edits {
	case EditsLight:
		o.MaxEditsPerFile = 2
	case EditsHeavy:
		o.MaxEditsPerFile = 10
	default:
		panic(fmt.Sprintf("perfobs: unknown edit profile %q", s.Edits))
	}
	return o
}

// FullMatrix is the complete scenario set of a baseline run: the truediff
// system across corpus sizes and edit profiles, the engine across worker
// counts and the memo ablation, and the three comparison baselines. The
// matrix is fixed — extend it by appending, never by renaming, so the
// BENCH_<n>.json trajectory stays comparable.
func FullMatrix() []Scenario {
	return []Scenario{
		{System: SystemTruediff, Corpus: CorpusSmall, Edits: EditsLight},
		{System: SystemTruediff, Corpus: CorpusMedium, Edits: EditsLight},
		{System: SystemTruediff, Corpus: CorpusMedium, Edits: EditsHeavy},
		{System: SystemTruediff, Corpus: CorpusLarge, Edits: EditsLight},
		{System: SystemEngine, Corpus: CorpusMedium, Edits: EditsLight, Workers: 1},
		{System: SystemEngine, Corpus: CorpusMedium, Edits: EditsLight, Workers: 8},
		{System: SystemEngine, Corpus: CorpusMedium, Edits: EditsHeavy, Workers: 8},
		{System: SystemEngine, Corpus: CorpusLarge, Edits: EditsLight, Workers: 8},
		{System: SystemEngine, Corpus: CorpusMedium, Edits: EditsLight, Workers: 8, DisableMemo: true},
		{System: SystemGumtree, Corpus: CorpusSmall, Edits: EditsLight},
		{System: SystemGumtree, Corpus: CorpusMedium, Edits: EditsLight},
		{System: SystemHdiff, Corpus: CorpusMedium, Edits: EditsLight},
		{System: SystemLineardiff, Corpus: CorpusSmall, Edits: EditsLight},
		// Appended with the diff service (cmd/diffd): the same medium/light
		// workload the engine cells diff, observed from the far side of the
		// HTTP transport under concurrent clients.
		{System: SystemService, Corpus: CorpusMedium, Edits: EditsLight, Workers: 4, Clients: 8},
		// Appended with the quality trajectory: trees small enough for the
		// exact minimal-script baseline, so the optimality-gap column is
		// populated and gated.
		{System: SystemTruediff, Corpus: CorpusTiny, Edits: EditsLight},
	}
}

// SmokeMatrix is the reduced matrix CI's bench-smoke job runs: a strict
// subset of FullMatrix (same names, same corpora), one scenario per
// system, so -compare against a committed full baseline needs only
// -allow-removed plus a wide tolerance.
func SmokeMatrix() []Scenario {
	return []Scenario{
		{System: SystemTruediff, Corpus: CorpusMedium, Edits: EditsLight},
		{System: SystemEngine, Corpus: CorpusMedium, Edits: EditsLight, Workers: 8},
		{System: SystemGumtree, Corpus: CorpusSmall, Edits: EditsLight},
		{System: SystemHdiff, Corpus: CorpusMedium, Edits: EditsLight},
		{System: SystemLineardiff, Corpus: CorpusSmall, Edits: EditsLight},
		{System: SystemTruediff, Corpus: CorpusTiny, Edits: EditsLight},
	}
}
