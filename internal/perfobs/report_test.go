package perfobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := &Report{
		SchemaVersion: SchemaVersion,
		CreatedUnix:   1754006400,
		Env:           EnvInfo{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 4},
		Scenarios: []ScenarioResult{
			{Name: "z/later", System: "truediff", Corpus: "small", Edits: "light", Pairs: 3,
				WallNS: Summarize([]float64{1, 2, 3})},
			{Name: "a/first", System: "engine", Corpus: "small", Edits: "light", Workers: 2, Memo: true,
				Pairs: 3, WallNS: Summarize([]float64{4, 5, 6}),
				PhaseNS: map[string]float64{"prepare": 1, "shares": 2, "select": 3, "emit": 4}},
		},
	}
	path := filepath.Join(dir, "BENCH_0.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	// WriteFile sorts scenarios by name, so compare against that order.
	if got.Scenarios[0].Name != "a/first" || got.Scenarios[1].Name != "z/later" {
		t.Fatalf("scenarios not sorted by name: %q, %q", got.Scenarios[0].Name, got.Scenarios[1].Name)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, r)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	data, _ := json.Marshal(map[string]any{"schema_version": SchemaVersion + 1})
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("ReadFile accepted a report with a future schema version")
	}
}

func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	p, err := NextBenchPath(dir)
	if err != nil {
		t.Fatalf("NextBenchPath: %v", err)
	}
	if filepath.Base(p) != "BENCH_0.json" {
		t.Errorf("fresh dir: %s, want BENCH_0.json", filepath.Base(p))
	}
	for _, name := range []string{"BENCH_0.json", "BENCH_2.json", "BENCH_10.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = NextBenchPath(dir)
	if err != nil {
		t.Fatalf("NextBenchPath: %v", err)
	}
	if filepath.Base(p) != "BENCH_11.json" {
		t.Errorf("after 0,2,10: %s, want BENCH_11.json", filepath.Base(p))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.IQR != 2 { // Q3 − Q1 = 4 − 2 with linear interpolation over 5 points
		t.Errorf("IQR = %v, want 2", s.IQR)
	}
	if s.P95 < s.Median || s.P95 > s.Max {
		t.Errorf("P95 = %v outside [median, max]", s.P95)
	}
	if z := Summarize(nil); z != (Sample{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", z)
	}
}

func TestScenarioNames(t *testing.T) {
	cases := map[string]Scenario{
		"truediff/medium/light":         {System: SystemTruediff, Corpus: CorpusMedium, Edits: EditsLight},
		"engine/large/light/w8":         {System: SystemEngine, Corpus: CorpusLarge, Edits: EditsLight, Workers: 8},
		"engine/medium/light/w8/nomemo": {System: SystemEngine, Corpus: CorpusMedium, Edits: EditsLight, Workers: 8, DisableMemo: true},
	}
	for want, sc := range cases {
		if got := sc.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

// TestMatrixInvariants pins the matrix contract: names are unique, the
// full matrix is large enough for the report floor (≥12 scenarios with at
// least one baseline system), and the smoke matrix is a strict subset so
// CI can compare smoke runs against a full baseline.
func TestMatrixInvariants(t *testing.T) {
	full := FullMatrix()
	if len(full) < 12 {
		t.Errorf("full matrix has %d scenarios, want >= 12", len(full))
	}
	names := map[string]bool{}
	baselines := 0
	for _, sc := range full {
		n := sc.Name()
		if names[n] {
			t.Errorf("duplicate scenario name %q", n)
		}
		names[n] = true
		switch sc.System {
		case SystemGumtree, SystemHdiff, SystemLineardiff:
			baselines++
		}
		sc.CorpusOptions() // must not panic for any matrix cell
	}
	if baselines == 0 {
		t.Error("full matrix has no baseline scenarios")
	}
	for _, sc := range SmokeMatrix() {
		if !names[sc.Name()] {
			t.Errorf("smoke scenario %q is not part of the full matrix", sc.Name())
		}
	}
}
