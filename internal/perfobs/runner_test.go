package perfobs

import (
	"testing"

	"repro/internal/telemetry"
)

// TestRunTinyMatrix executes a two-scenario matrix end to end (one
// truediff cell, one engine cell — small corpus, two repetitions) and
// checks every report field the schema promises is populated.
func TestRunTinyMatrix(t *testing.T) {
	scs := []Scenario{
		{System: SystemTruediff, Corpus: CorpusSmall, Edits: EditsLight},
		{System: SystemEngine, Corpus: CorpusSmall, Edits: EditsLight, Workers: 2},
	}
	var logged int
	rep, err := Run(RunConfig{
		Scenarios: scs,
		Warmup:    1,
		Reps:      2,
		Logf:      func(string, ...any) { logged++ },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.SchemaVersion != SchemaVersion {
		t.Errorf("SchemaVersion = %d, want %d", rep.SchemaVersion, SchemaVersion)
	}
	if rep.CreatedUnix == 0 || rep.Env.GoVersion == "" || rep.Env.NumCPU == 0 {
		t.Errorf("environment fingerprint incomplete: %+v", rep.Env)
	}
	if len(rep.Scenarios) != len(scs) {
		t.Fatalf("got %d scenario results, want %d", len(rep.Scenarios), len(scs))
	}
	if logged != len(scs) {
		t.Errorf("Logf called %d times, want %d", logged, len(scs))
	}

	for _, s := range rep.Scenarios {
		if s.Pairs <= 0 || s.Nodes <= 0 {
			t.Errorf("%s: empty workload (%d pairs, %d nodes)", s.Name, s.Pairs, s.Nodes)
		}
		if s.Warmup != 1 || s.Reps != 2 {
			t.Errorf("%s: warmup/reps = %d/%d, want 1/2", s.Name, s.Warmup, s.Reps)
		}
		if s.WallNS.N != 2 || s.WallNS.Median <= 0 {
			t.Errorf("%s: wall sample %+v", s.Name, s.WallNS)
		}
		if s.NodesPerSec.Median <= 0 {
			t.Errorf("%s: throughput %+v", s.Name, s.NodesPerSec)
		}
		if s.EditsTotal <= 0 {
			t.Errorf("%s: EditsTotal = %d", s.Name, s.EditsTotal)
		}
		if s.Runtime.AllocBytes == 0 || s.Runtime.Goroutines == 0 {
			t.Errorf("%s: runtime sample %+v", s.Name, s.Runtime)
		}
		// Both systems decompose by phase; all four must be present.
		if len(s.PhaseNS) != telemetry.NumPhases {
			t.Errorf("%s: phase decomposition %v, want %d phases", s.Name, s.PhaseNS, telemetry.NumPhases)
		}
		var phaseTotal float64
		for p := 0; p < telemetry.NumPhases; p++ {
			phaseTotal += s.PhaseNS[telemetry.Phase(p).String()]
		}
		if phaseTotal <= 0 || phaseTotal > s.WallNS.Max*float64(1) {
			t.Errorf("%s: phase total %.0f vs wall max %.0f", s.Name, phaseTotal, s.WallNS.Max)
		}
	}

	// Deterministic corpora: the two systems diff the same pairs and must
	// agree on the total compound edit count.
	if rep.Scenarios[0].EditsTotal != rep.Scenarios[1].EditsTotal {
		t.Errorf("truediff and engine disagree on edits: %d vs %d",
			rep.Scenarios[0].EditsTotal, rep.Scenarios[1].EditsTotal)
	}

	for _, s := range rep.Scenarios {
		switch s.System {
		case "truediff":
			if len(s.PhaseAllocBytes) != telemetry.NumPhases {
				t.Errorf("truediff: phase alloc probe %v, want %d phases", s.PhaseAllocBytes, telemetry.NumPhases)
			}
			var total int64
			for _, v := range s.PhaseAllocBytes {
				if v < 0 {
					t.Errorf("negative phase alloc: %v", s.PhaseAllocBytes)
				}
				total += v
			}
			if total <= 0 {
				t.Errorf("phase alloc probe measured nothing: %v", s.PhaseAllocBytes)
			}
		case "engine":
			if s.Workers != 2 || !s.Memo {
				t.Errorf("engine scenario config not echoed: workers %d memo %v", s.Workers, s.Memo)
			}
			if s.Utilization <= 0 || s.Utilization > 1.000001 {
				t.Errorf("engine utilization = %v, want in (0, 1]", s.Utilization)
			}
		}
	}
}

// TestRunServiceScenario runs the service system on the small corpus: the
// in-process daemon must come up, concurrent clients must drive the full
// pair set, and the result must carry the per-request latency sample and
// echo the client count. Edit totals must agree with the truediff system —
// same corpus, same answers, different transport.
func TestRunServiceScenario(t *testing.T) {
	rep, err := Run(RunConfig{
		Scenarios: []Scenario{
			{System: SystemTruediff, Corpus: CorpusSmall, Edits: EditsLight},
			{System: SystemService, Corpus: CorpusSmall, Edits: EditsLight, Workers: 2, Clients: 3},
		},
		Warmup: 1,
		Reps:   2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var svc *ScenarioResult
	for i := range rep.Scenarios {
		if rep.Scenarios[i].System == string(SystemService) {
			svc = &rep.Scenarios[i]
		}
	}
	if svc == nil {
		t.Fatal("no service scenario in report")
	}
	if want := "service/small/light/w2/c3"; svc.Name != want {
		t.Errorf("Name = %q, want %q", svc.Name, want)
	}
	if svc.Workers != 2 || svc.Clients != 3 {
		t.Errorf("config not echoed: workers %d clients %d", svc.Workers, svc.Clients)
	}
	if svc.RequestNS == nil {
		t.Fatal("service scenario carries no RequestNS sample")
	}
	// Two measured reps over the full pair set: one latency per request.
	if want := 2 * svc.Pairs; svc.RequestNS.N != want {
		t.Errorf("RequestNS.N = %d, want %d", svc.RequestNS.N, want)
	}
	if svc.RequestNS.Median <= 0 || svc.RequestNS.P95 < svc.RequestNS.Median {
		t.Errorf("implausible latency sample %+v", svc.RequestNS)
	}
	if len(svc.PhaseNS) != 0 {
		t.Errorf("service system reports phases %v; the client has no decomposition", svc.PhaseNS)
	}
	if svc.EditsTotal != rep.Scenarios[0].EditsTotal {
		t.Errorf("service edits %d != truediff edits %d", svc.EditsTotal, rep.Scenarios[0].EditsTotal)
	}
}

// TestRunBaselineSystems smoke-runs each baseline measurer on the small
// corpus: they must produce samples and a nonzero cost metric, and carry
// no phase decomposition.
func TestRunBaselineSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three extra systems; skipped under -short")
	}
	rep, err := Run(RunConfig{
		Scenarios: []Scenario{
			{System: SystemGumtree, Corpus: CorpusSmall, Edits: EditsLight},
			{System: SystemHdiff, Corpus: CorpusSmall, Edits: EditsLight},
			{System: SystemLineardiff, Corpus: CorpusSmall, Edits: EditsLight},
		},
		Warmup: 1,
		Reps:   2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, s := range rep.Scenarios {
		if s.WallNS.Median <= 0 || s.EditsTotal <= 0 {
			t.Errorf("%s: wall %v edits %d", s.Name, s.WallNS.Median, s.EditsTotal)
		}
		if len(s.PhaseNS) != 0 || len(s.PhaseAllocBytes) != 0 {
			t.Errorf("%s: baseline system reports phases %v / %v", s.Name, s.PhaseNS, s.PhaseAllocBytes)
		}
	}
}
