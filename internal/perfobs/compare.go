package perfobs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Verdict classifies one scenario's old-versus-new comparison.
type Verdict string

const (
	// VerdictUnchanged means the median moved less than the tolerance, or
	// moved within the scenario's noise band.
	VerdictUnchanged Verdict = "unchanged"
	// VerdictImproved means the new median is faster beyond both the
	// tolerance and the noise band.
	VerdictImproved Verdict = "improved"
	// VerdictRegressed means the new median is slower beyond both the
	// tolerance and the noise band. Any regressed scenario fails the gate.
	VerdictRegressed Verdict = "regressed"
	// VerdictAdded marks scenarios present only in the new report (matrix
	// growth); they never fail the gate.
	VerdictAdded Verdict = "added"
	// VerdictRemoved marks scenarios present only in the old report. They
	// fail the gate unless CompareOptions.AllowRemoved is set (a smoke run
	// compared against a full baseline removes scenarios by design).
	VerdictRemoved Verdict = "removed"
)

// CompareOptions tune the regression gate.
type CompareOptions struct {
	// Tolerance is the relative median slowdown the gate forgives, e.g.
	// 0.05 for 5%. Zero selects DefaultTolerance.
	Tolerance float64
	// QualityTolerance is the relative growth in a scenario's total
	// compound edit count the gate forgives (the conciseness gate; edit
	// counts are deterministic, so the band only absorbs intentional
	// small algorithm changes, not noise). Zero selects
	// DefaultQualityTolerance; negative disables the conciseness gate.
	QualityTolerance float64
	// AllowRemoved downgrades removed scenarios from gate failures to
	// notes (for reduced-matrix runs against a full baseline).
	AllowRemoved bool
}

// DefaultTolerance is the gate's tolerance when none is given: 5%.
const DefaultTolerance = 0.05

// DefaultQualityTolerance is the conciseness gate's tolerance when none
// is given: 2%. Edit scripts are deterministic per scenario, so even a
// tight band only fires on real conciseness changes.
const DefaultQualityTolerance = 0.02

// ScenarioDelta is one scenario's comparison outcome.
type ScenarioDelta struct {
	Name    string
	Verdict Verdict
	// OldMedianNS and NewMedianNS are the compared wall-time medians;
	// Ratio is new/old (0 for added/removed scenarios).
	OldMedianNS float64
	NewMedianNS float64
	Ratio       float64
	// NoiseNS is the noise band the shift was required to clear: the
	// larger of the two reports' interquartile ranges.
	NoiseNS float64
	// OldEdits and NewEdits are the compared total compound edit counts;
	// ConcisenessRegressed marks scenarios whose scripts grew beyond the
	// quality tolerance (a gate failure independent of the wall verdict).
	OldEdits             int
	NewEdits             int
	ConcisenessRegressed bool
}

// Comparison is the outcome of comparing two reports.
type Comparison struct {
	Deltas []ScenarioDelta
	// EnvMismatch notes a differing environment fingerprint (advisory:
	// cross-machine comparisons are noisy but not forbidden).
	EnvMismatch bool
	// allowRemoved mirrors CompareOptions.AllowRemoved for Failed.
	allowRemoved bool
}

// Failed reports whether the comparison should fail the gate: any
// regressed scenario, any conciseness regression, or any removed
// scenario unless allowed.
func (c *Comparison) Failed() bool {
	for _, d := range c.Deltas {
		if d.Verdict == VerdictRegressed || d.ConcisenessRegressed {
			return true
		}
		if d.Verdict == VerdictRemoved && !c.allowRemoved {
			return true
		}
	}
	return false
}

// Compare matches the two reports' scenarios by name and classifies each
// pair's wall-time movement. A scenario regresses only when its median
// slowdown clears BOTH thresholds: the relative tolerance (the gate's
// sensitivity) and the noise band (the larger of the two runs' IQRs, so a
// noisy scenario cannot fail CI on jitter alone). Improvement is judged
// symmetrically. Removed scenarios become VerdictRemoved (a gate failure
// unless opts.AllowRemoved); added ones become VerdictAdded (never a
// failure).
func Compare(oldR, newR *Report, opts CompareOptions) *Comparison {
	tol := opts.Tolerance
	if tol == 0 {
		tol = DefaultTolerance
	}
	qtol := opts.QualityTolerance
	if qtol == 0 {
		qtol = DefaultQualityTolerance
	}
	oldBy := make(map[string]*ScenarioResult, len(oldR.Scenarios))
	for i := range oldR.Scenarios {
		oldBy[oldR.Scenarios[i].Name] = &oldR.Scenarios[i]
	}
	newBy := make(map[string]*ScenarioResult, len(newR.Scenarios))
	for i := range newR.Scenarios {
		newBy[newR.Scenarios[i].Name] = &newR.Scenarios[i]
	}

	c := &Comparison{EnvMismatch: oldR.Env != newR.Env, allowRemoved: opts.AllowRemoved}
	for name, o := range oldBy {
		n, ok := newBy[name]
		if !ok {
			c.Deltas = append(c.Deltas, ScenarioDelta{Name: name, Verdict: VerdictRemoved, OldMedianNS: o.WallNS.Median})
			continue
		}
		c.Deltas = append(c.Deltas, classify(name, o, n, tol, qtol))
	}
	for name, n := range newBy {
		if _, ok := oldBy[name]; !ok {
			c.Deltas = append(c.Deltas, ScenarioDelta{Name: name, Verdict: VerdictAdded, NewMedianNS: n.WallNS.Median})
		}
	}
	sort.Slice(c.Deltas, func(i, j int) bool { return c.Deltas[i].Name < c.Deltas[j].Name })
	return c
}

func classify(name string, o, n *ScenarioResult, tol, qtol float64) ScenarioDelta {
	d := ScenarioDelta{
		Name:        name,
		Verdict:     VerdictUnchanged,
		OldMedianNS: o.WallNS.Median,
		NewMedianNS: n.WallNS.Median,
		NoiseNS:     max(o.WallNS.IQR, n.WallNS.IQR),
		OldEdits:    o.EditsTotal,
		NewEdits:    n.EditsTotal,
	}
	if o.WallNS.Median > 0 {
		d.Ratio = n.WallNS.Median / o.WallNS.Median
	}
	shift := n.WallNS.Median - o.WallNS.Median
	switch {
	case d.Ratio > 1+tol && shift > d.NoiseNS:
		d.Verdict = VerdictRegressed
	case d.Ratio > 0 && d.Ratio < 1-tol && -shift > d.NoiseNS:
		d.Verdict = VerdictImproved
	}
	// Conciseness gate: scripts are deterministic, so edit-count growth
	// beyond the quality tolerance is a real regression, not noise. A
	// negative qtol disables the gate.
	if qtol >= 0 && o.EditsTotal > 0 &&
		float64(n.EditsTotal) > float64(o.EditsTotal)*(1+qtol) {
		d.ConcisenessRegressed = true
	}
	return d
}

// WriteText renders the comparison for humans: one line per scenario with
// the ratio and verdict, regressions last so they end up next to the exit
// status in CI logs.
func (c *Comparison) WriteText(w io.Writer, opts CompareOptions) {
	tol := opts.Tolerance
	if tol == 0 {
		tol = DefaultTolerance
	}
	if c.EnvMismatch {
		fmt.Fprintf(w, "note: environment fingerprints differ; treat ratios with caution\n")
	}
	order := func(d ScenarioDelta) int {
		switch {
		case d.Verdict == VerdictRegressed || d.ConcisenessRegressed:
			return 2
		case d.Verdict == VerdictRemoved:
			return 1
		}
		return 0
	}
	ds := append([]ScenarioDelta(nil), c.Deltas...)
	sort.SliceStable(ds, func(i, j int) bool { return order(ds[i]) < order(ds[j]) })
	for _, d := range ds {
		switch d.Verdict {
		case VerdictAdded:
			fmt.Fprintf(w, "%-34s %-10s (new scenario, median %v)\n", d.Name, d.Verdict,
				time.Duration(d.NewMedianNS).Round(time.Microsecond))
		case VerdictRemoved:
			fmt.Fprintf(w, "%-34s %-10s (was median %v)\n", d.Name, d.Verdict,
				time.Duration(d.OldMedianNS).Round(time.Microsecond))
		default:
			fmt.Fprintf(w, "%-34s %-10s %v -> %v (x%.3f, noise ±%v)\n", d.Name, d.Verdict,
				time.Duration(d.OldMedianNS).Round(time.Microsecond),
				time.Duration(d.NewMedianNS).Round(time.Microsecond),
				d.Ratio,
				time.Duration(d.NoiseNS).Round(time.Microsecond))
		}
		if d.ConcisenessRegressed {
			fmt.Fprintf(w, "%-34s %-10s scripts grew %d -> %d edits (x%.3f)\n", d.Name, "concise!",
				d.OldEdits, d.NewEdits, float64(d.NewEdits)/float64(d.OldEdits))
		}
	}
	if c.Failed() {
		fmt.Fprintf(w, "FAIL: regression beyond %.0f%% wall tolerance and noise band, or conciseness regression\n", 100*tol)
	} else {
		fmt.Fprintf(w, "ok: no regression beyond %.0f%% tolerance\n", 100*tol)
	}
}
