package perfobs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/diffserve"
	"repro/internal/engine"
	"repro/internal/gumtree"
	"repro/internal/hdiff"
	"repro/internal/lineardiff"
	"repro/internal/quality"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/truediff"
)

// RunConfig parameterizes a benchmark run.
type RunConfig struct {
	// Scenarios is the matrix to execute (FullMatrix or SmokeMatrix,
	// possibly filtered). Empty selects FullMatrix.
	Scenarios []Scenario
	// Warmup repetitions run before measurement starts (default 1); Reps
	// repetitions are measured (default 5).
	Warmup int
	Reps   int
	// Smoke stamps the report as a reduced-matrix run.
	Smoke bool
	// ProfileLabels enables pprof/trace instrumentation inside the
	// measured diffs (truediff and engine systems), so a -cpuprofile or
	// -exectrace taken around the run decomposes by phase. Off by
	// default: labels cost a little and the trajectory should measure the
	// production path.
	ProfileLabels bool
	// Equiv overrides the subtree equivalence mode of the truediff and
	// engine scenarios (zero is the paper's
	// StructuralWithLiteralPreference). For ablation runs — and for
	// seeding deliberate conciseness regressions when testing the
	// comparator's quality gate.
	Equiv truediff.EquivMode
	// Logf, when non-nil, receives one progress line per scenario.
	Logf func(format string, args ...any)
}

// Run executes the configured scenarios and assembles the report.
func Run(cfg RunConfig) (*Report, error) {
	if len(cfg.Scenarios) == 0 {
		cfg.Scenarios = FullMatrix()
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 1
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 5
	}
	rep := &Report{
		SchemaVersion: SchemaVersion,
		CreatedUnix:   time.Now().Unix(),
		Env:           CaptureEnv(),
		Smoke:         cfg.Smoke,
	}
	corpora := make(map[corpus.Options]*corpus.History)
	for _, sc := range cfg.Scenarios {
		opts := sc.CorpusOptions()
		h, ok := corpora[opts]
		if !ok {
			h = corpus.Generate(opts)
			corpora[opts] = h
		}
		res, err := runScenario(sc, h, cfg)
		if err != nil {
			return nil, fmt.Errorf("perfobs: scenario %s: %w", sc.Name(), err)
		}
		rep.Scenarios = append(rep.Scenarios, *res)
		if cfg.Logf != nil {
			cfg.Logf("%-34s median %v over %d pairs", res.Name,
				time.Duration(res.WallNS.Median).Round(time.Microsecond), res.Pairs)
		}
	}
	return rep, nil
}

// pairSet is one scenario's pre-built workload: cloned tree pairs (corpus
// histories share subtrees between a commit's before and after, and the
// differ requires structurally distinct inputs), so the timed region
// measures diffing only — digest computation happens at clone time,
// matching the paper's amortization of step 1.
type pairSet struct {
	changes []corpus.FileChange
	src     []*tree.Node
	dst     []*tree.Node
	nodes   int64
}

func buildPairs(h *corpus.History) *pairSet {
	ps := &pairSet{changes: h.Changes()}
	alloc := h.Factory.Alloc()
	for _, fc := range ps.changes {
		s := tree.Clone(fc.Before, alloc, tree.SHA256)
		d := tree.Clone(fc.After, alloc, tree.SHA256)
		ps.src = append(ps.src, s)
		ps.dst = append(ps.dst, d)
		ps.nodes += int64(s.Size() + d.Size())
	}
	return ps
}

// measurer runs one repetition of a scenario's full pair set and reports
// the summed compound edit count. Implementations may keep warm state
// (scratch, memo) between calls — warmup repetitions bring it to steady
// state first.
type measurer interface {
	rep() (edits int, err error)
	// phases returns the per-phase wall-time sums of the most recent
	// repetition, or false when the system has no phase decomposition.
	phases() (telemetry.PhaseTimes, bool)
}

// requestSampler is implemented by measurers that observe individual
// request latencies (the service system); the runner summarizes them into
// ScenarioResult.RequestNS.
type requestSampler interface {
	// requestNS returns the per-request wall times (nanoseconds) of the
	// most recent repetition.
	requestNS() []float64
}

// closer is implemented by measurers holding external resources (sockets,
// daemons); the runner closes them when the scenario finishes.
type closer interface {
	close()
}

func runScenario(sc Scenario, h *corpus.History, cfg RunConfig) (*ScenarioResult, error) {
	ps := buildPairs(h)
	var m measurer
	var eng *engine.Engine
	switch sc.System {
	case SystemTruediff:
		m = newTruediffMeasurer(h, ps, cfg)
	case SystemEngine:
		em := newEngineMeasurer(h, ps, sc, cfg)
		m, eng = em, em.eng
	case SystemGumtree:
		m = newGumtreeMeasurer(ps)
	case SystemHdiff:
		m = &hdiffMeasurer{ps: ps}
	case SystemLineardiff:
		m = &lineardiffMeasurer{ps: ps}
	case SystemService:
		sm, err := newServiceMeasurer(h, ps, sc)
		if err != nil {
			return nil, err
		}
		m = sm
	default:
		return nil, fmt.Errorf("unknown system %q", sc.System)
	}
	if c, ok := m.(closer); ok {
		defer c.close()
	}

	res := &ScenarioResult{
		Name:   sc.Name(),
		System: string(sc.System),
		Corpus: string(sc.Corpus),
		Edits:  string(sc.Edits),
		Pairs:  len(ps.changes),
		Nodes:  ps.nodes,
		Warmup: cfg.Warmup,
		Reps:   cfg.Reps,
	}
	switch sc.System {
	case SystemEngine:
		res.Workers = sc.Workers
		res.Memo = !sc.DisableMemo
	case SystemService:
		res.Workers = sc.Workers
		res.Clients = sc.Clients
	}

	for i := 0; i < cfg.Warmup; i++ {
		if _, err := m.rep(); err != nil {
			return nil, err
		}
	}

	var before engine.Snapshot
	if eng != nil {
		before = eng.Snapshot()
	}
	rt0 := sampleRuntime()

	walls := make([]float64, 0, cfg.Reps)
	throughputs := make([]float64, 0, cfg.Reps)
	allocs := make([]float64, 0, cfg.Reps)
	var requestLats []float64
	phaseSums := make(map[string][]float64)
	for i := 0; i < cfg.Reps; i++ {
		a0 := readAllocBytes()
		start := time.Now()
		edits, err := m.rep()
		wall := time.Since(start)
		if err != nil {
			return nil, err
		}
		res.EditsTotal = edits
		walls = append(walls, float64(wall.Nanoseconds()))
		throughputs = append(throughputs, float64(ps.nodes)/wall.Seconds())
		allocs = append(allocs, float64(readAllocBytes()-a0))
		if pt, ok := m.phases(); ok {
			for p := 0; p < telemetry.NumPhases; p++ {
				name := telemetry.Phase(p).String()
				phaseSums[name] = append(phaseSums[name], float64(pt[p].Nanoseconds()))
			}
		}
		if rs, ok := m.(requestSampler); ok {
			requestLats = append(requestLats, rs.requestNS()...)
		}
	}

	rt1 := sampleRuntime()
	res.Runtime = RuntimeSample{
		AllocBytes:    rt1.allocBytes - rt0.allocBytes,
		GCCycles:      rt1.gcCycles - rt0.gcCycles,
		GCPauseNS:     rt1.gcPauseNS - rt0.gcPauseNS,
		HeapLiveBytes: rt1.heapLiveBytes,
		Goroutines:    rt1.goroutines,
	}
	res.WallNS = Summarize(walls)
	res.NodesPerSec = Summarize(throughputs)
	res.AllocBytesPerRep = Summarize(allocs)
	if len(requestLats) > 0 {
		s := Summarize(requestLats)
		res.RequestNS = &s
	}
	if len(phaseSums) > 0 {
		res.PhaseNS = make(map[string]float64, len(phaseSums))
		for name, xs := range phaseSums {
			res.PhaseNS[name] = Summarize(xs).Median
		}
	}
	if eng != nil {
		res.Utilization = eng.Snapshot().Sub(before).Utilization
	}
	if sc.System == SystemTruediff {
		pa, err := probePhaseAllocs(h, ps, cfg.Equiv)
		if err != nil {
			return nil, err
		}
		res.PhaseAllocBytes = pa
	}
	if sc.System == SystemTruediff || sc.System == SystemEngine {
		if err := probeQuality(h, ps, cfg.Equiv, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// probeQuality runs one extra untimed single-threaded repetition and fills
// the report's quality columns: the per-pair median reuse ratio, the
// aggregate edits-per-changed-node ratio, and — on pairs small enough for
// the exact minimal-script baseline — the aggregate optimality gap. The
// scripts are deterministic, so the probe measures exactly what the timed
// repetitions produced without perturbing them.
func probeQuality(h *corpus.History, ps *pairSet, equiv truediff.EquivMode, res *ScenarioResult) error {
	d := truediff.NewWithOptions(h.Factory.Schema(), truediff.Options{Equiv: equiv})
	scratch := truediff.NewScratch()
	reuse := make([]float64, 0, len(ps.src))
	var edits, changed, gapEdits, gapMinimal int
	for i := range ps.src {
		r, err := d.DiffScratchChecked(ps.src[i], ps.dst[i], nil, scratch, nil)
		if err != nil {
			return fmt.Errorf("quality probe on %s: %w", ps.changes[i].Path, err)
		}
		q := quality.Measure(ps.src[i], ps.dst[i], r.Script, quality.DefaultBaselineMaxNodes)
		reuse = append(reuse, q.ReuseRatio)
		edits += q.CompoundEdits
		changed += q.ChangedNodes
		if q.Baselined {
			res.BaselinedPairs++
			gapEdits += q.CompoundEdits
			gapMinimal += q.MinimalEdits
		}
	}
	res.ReuseRatioMedian = Summarize(reuse).Median
	if changed > 0 {
		res.EditsPerChangedNode = float64(edits) / float64(changed)
	}
	if gapMinimal > 0 {
		res.OptimalityGap = float64(gapEdits)/float64(gapMinimal) - 1
	}
	return nil
}

// --- per-system measurers ---

type truediffMeasurer struct {
	d       *truediff.Differ
	ps      *pairSet
	scratch *truediff.Scratch
	pt      telemetry.PhaseTimes
}

func newTruediffMeasurer(h *corpus.History, ps *pairSet, cfg RunConfig) *truediffMeasurer {
	return &truediffMeasurer{
		d: truediff.NewWithOptions(h.Factory.Schema(),
			truediff.Options{ProfileLabels: cfg.ProfileLabels, Equiv: cfg.Equiv}),
		ps:      ps,
		scratch: truediff.NewScratch(),
	}
}

func (m *truediffMeasurer) rep() (int, error) {
	edits := 0
	m.pt = telemetry.PhaseTimes{}
	for i := range m.ps.src {
		res, err := m.d.DiffScratchChecked(m.ps.src[i], m.ps.dst[i], nil, m.scratch, nil)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", m.ps.changes[i].Path, err)
		}
		edits += res.Script.EditCount()
		pt := m.scratch.PhaseTimes()
		for p := range pt {
			m.pt[p] += pt[p]
		}
	}
	return edits, nil
}

func (m *truediffMeasurer) phases() (telemetry.PhaseTimes, bool) { return m.pt, true }

type engineMeasurer struct {
	eng   *engine.Engine
	pairs []engine.Pair
	pt    telemetry.PhaseTimes
}

func newEngineMeasurer(h *corpus.History, ps *pairSet, sc Scenario, cfg RunConfig) *engineMeasurer {
	eng := engine.New(h.Factory.Schema(), engine.Config{
		Workers:     sc.Workers,
		DisableMemo: sc.DisableMemo,
		Diff:        truediff.Options{ProfileLabels: cfg.ProfileLabels, Equiv: cfg.Equiv},
	})
	pairs := make([]engine.Pair, len(ps.src))
	for i := range ps.src {
		pairs[i] = engine.Pair{Source: ps.src[i], Target: ps.dst[i], Label: ps.changes[i].Path}
	}
	return &engineMeasurer{eng: eng, pairs: pairs}
}

func (m *engineMeasurer) rep() (int, error) {
	results, err := m.eng.DiffBatch(context.Background(), m.pairs)
	if err != nil {
		return 0, err
	}
	edits := 0
	m.pt = telemetry.PhaseTimes{}
	for i := range results {
		if results[i].Err != nil {
			return 0, fmt.Errorf("%s: %w", m.pairs[i].Label, results[i].Err)
		}
		edits += results[i].Stats.Edits
		for p, d := range results[i].Stats.Phases {
			m.pt[p] += d
		}
	}
	return edits, nil
}

func (m *engineMeasurer) phases() (telemetry.PhaseTimes, bool) { return m.pt, true }

type gumtreeMeasurer struct {
	src, dst []*gumtree.Node
}

func newGumtreeMeasurer(ps *pairSet) *gumtreeMeasurer {
	m := &gumtreeMeasurer{}
	for i := range ps.src {
		m.src = append(m.src, gumtree.FromTree(ps.src[i]))
		m.dst = append(m.dst, gumtree.FromTree(ps.dst[i]))
	}
	return m
}

func (m *gumtreeMeasurer) rep() (int, error) {
	edits := 0
	for i := range m.src {
		script, _ := gumtree.Diff(m.src[i], m.dst[i], gumtree.DefaultOptions())
		edits += script.Len()
	}
	return edits, nil
}

func (m *gumtreeMeasurer) phases() (telemetry.PhaseTimes, bool) { return telemetry.PhaseTimes{}, false }

type hdiffMeasurer struct{ ps *pairSet }

func (m *hdiffMeasurer) rep() (int, error) {
	size := 0
	for i := range m.ps.src {
		patch := hdiff.Diff(m.ps.src[i], m.ps.dst[i], hdiff.DefaultOptions())
		size += patch.Size()
	}
	return size, nil
}

func (m *hdiffMeasurer) phases() (telemetry.PhaseTimes, bool) { return telemetry.PhaseTimes{}, false }

type lineardiffMeasurer struct{ ps *pairSet }

func (m *lineardiffMeasurer) rep() (int, error) {
	edits := 0
	for i := range m.ps.src {
		script, err := lineardiff.Diff(m.ps.src[i], m.ps.dst[i])
		if err != nil {
			return 0, fmt.Errorf("%s: %w", m.ps.changes[i].Path, err)
		}
		edits += script.ChangeCount()
	}
	return edits, nil
}

func (m *lineardiffMeasurer) phases() (telemetry.PhaseTimes, bool) {
	return telemetry.PhaseTimes{}, false
}

// serviceMeasurer measures the full diff-as-a-service path: an in-process
// diffserve server listening on a loopback socket, driven by Clients
// concurrent HTTP clients that share the pair set work-stealing style.
// What it times is what a network caller sees — JSON encoding, transport,
// admission control, request coalescing, and the engine behind them.
// Warmup repetitions also warm the clients' ref caches, so the measured
// steady state sends content digests instead of full trees, matching a
// long-lived client.
type serviceMeasurer struct {
	ps      *pairSet
	clients []*diffserve.Client
	srv     *diffserve.Server
	hs      *http.Server
	ln      net.Listener

	mu   sync.Mutex
	lats []float64 // per-request wall times of the most recent rep
}

func newServiceMeasurer(h *corpus.History, ps *pairSet, sc Scenario) (*serviceMeasurer, error) {
	if sc.Workers <= 0 || sc.Clients <= 0 {
		return nil, fmt.Errorf("service scenario needs pinned Workers and Clients, got %d/%d", sc.Workers, sc.Clients)
	}
	srv, err := diffserve.NewServer(diffserve.Config{
		Langs:   []string{"pylang"},
		Workers: sc.Workers,
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = srv.Drain(context.Background())
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	m := &serviceMeasurer{ps: ps, srv: srv, hs: hs, ln: ln}
	base := "http://" + ln.Addr().String()
	for c := 0; c < sc.Clients; c++ {
		m.clients = append(m.clients, diffserve.NewClient(base, "pylang", h.Factory.Schema(),
			diffserve.WithTenant(fmt.Sprintf("perfobs-%d", c))))
	}
	return m, nil
}

func (m *serviceMeasurer) rep() (int, error) {
	m.lats = m.lats[:0]
	var (
		next   atomic.Int64
		edits  atomic.Int64
		wg     sync.WaitGroup
		errMu  sync.Mutex
		repErr error
	)
	for _, cl := range m.clients {
		wg.Add(1)
		go func(cl *diffserve.Client) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(m.ps.src)) {
					return
				}
				t0 := time.Now()
				res, err := cl.Diff(context.Background(), m.ps.src[i], m.ps.dst[i], nil)
				wall := time.Since(t0)
				if err != nil {
					errMu.Lock()
					if repErr == nil {
						repErr = fmt.Errorf("%s: %w", m.ps.changes[i].Path, err)
					}
					errMu.Unlock()
					return
				}
				edits.Add(int64(res.Script.EditCount()))
				m.mu.Lock()
				m.lats = append(m.lats, float64(wall.Nanoseconds()))
				m.mu.Unlock()
			}
		}(cl)
	}
	wg.Wait()
	if repErr != nil {
		return 0, repErr
	}
	return int(edits.Load()), nil
}

func (m *serviceMeasurer) phases() (telemetry.PhaseTimes, bool) { return telemetry.PhaseTimes{}, false }

func (m *serviceMeasurer) requestNS() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]float64, len(m.lats))
	copy(out, m.lats)
	return out
}

func (m *serviceMeasurer) close() {
	for _, cl := range m.clients {
		cl.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = m.srv.Drain(ctx)
	_ = m.hs.Shutdown(ctx)
	_ = m.ln.Close()
}

// probePhaseAllocs runs one extra single-threaded repetition with a tracer
// that reads the cumulative heap-allocation counter at every phase
// boundary. The tracer callbacks run synchronously on the diffing
// goroutine, so consecutive counter deltas attribute allocation to the
// phase that just completed. The probe repetition is never timed.
func probePhaseAllocs(h *corpus.History, ps *pairSet, equiv truediff.EquivMode) (map[string]int64, error) {
	sums := make(map[string]int64, telemetry.NumPhases)
	var last uint64
	tracer := telemetry.TracerFuncs{
		OnPhase: func(p telemetry.Phase, _ time.Duration) {
			now := readAllocBytes()
			sums[p.String()] += int64(now - last)
			last = now
		},
	}
	d := truediff.NewWithOptions(h.Factory.Schema(), truediff.Options{Tracer: tracer, Equiv: equiv})
	scratch := truediff.NewScratch()
	for i := range ps.src {
		last = readAllocBytes()
		if _, err := d.DiffScratchChecked(ps.src[i], ps.dst[i], nil, scratch, nil); err != nil {
			return nil, fmt.Errorf("alloc probe on %s: %w", ps.changes[i].Path, err)
		}
	}
	return sums, nil
}

// --- runtime/metrics sampling ---

var runtimeSampleNames = []string{
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
}

type runtimeCounters struct {
	allocBytes    uint64
	gcCycles      uint64
	heapLiveBytes uint64
	goroutines    uint64
	gcPauseNS     uint64
}

// sampleRuntime reads the runtime/metrics samples the report carries, plus
// the cumulative GC pause total (which runtime/metrics only exposes as a
// histogram; MemStats carries the exact cumulative sum).
func sampleRuntime() runtimeCounters {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	var c runtimeCounters
	for i := range samples {
		if samples[i].Value.Kind() != metrics.KindUint64 {
			continue
		}
		v := samples[i].Value.Uint64()
		switch samples[i].Name {
		case "/gc/heap/allocs:bytes":
			c.allocBytes = v
		case "/gc/cycles/total:gc-cycles":
			c.gcCycles = v
		case "/memory/classes/heap/objects:bytes":
			c.heapLiveBytes = v
		case "/sched/goroutines:goroutines":
			c.goroutines = v
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.gcPauseNS = ms.PauseTotalNs
	return c
}

// allocSample is reused by readAllocBytes to keep the read itself
// allocation-free (the probe subtracts consecutive readings).
var allocSample = []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}

func readAllocBytes() uint64 {
	metrics.Read(allocSample)
	return allocSample[0].Value.Uint64()
}
