package perfobs

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadGoldenPair reads the committed old/new report fixture covering all
// verdict classes: a real regression (truediff, ×1.5 with a tight IQR), a
// real improvement (engine, ×0.7), movement within the noise band
// (gumtree, ×1.075 against a ±20ms IQR), a removed scenario (hdiff), and
// an added one (lineardiff).
func loadGoldenPair(t *testing.T) (*Report, *Report) {
	t.Helper()
	oldR, err := ReadFile(filepath.Join("testdata", "compare_old.json"))
	if err != nil {
		t.Fatalf("read old golden: %v", err)
	}
	newR, err := ReadFile(filepath.Join("testdata", "compare_new.json"))
	if err != nil {
		t.Fatalf("read new golden: %v", err)
	}
	return oldR, newR
}

func verdictOf(t *testing.T, c *Comparison, name string) ScenarioDelta {
	t.Helper()
	for _, d := range c.Deltas {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no delta for scenario %q", name)
	return ScenarioDelta{}
}

func TestCompareGoldenVerdicts(t *testing.T) {
	oldR, newR := loadGoldenPair(t)
	c := Compare(oldR, newR, CompareOptions{Tolerance: 0.05})

	want := map[string]Verdict{
		"truediff/medium/light":  VerdictRegressed,
		"engine/medium/light/w8": VerdictImproved,
		"gumtree/small/light":    VerdictUnchanged, // 7.5% up, but inside the ±20ms noise band
		"hdiff/medium/light":     VerdictRemoved,
		"lineardiff/small/light": VerdictAdded,
	}
	if len(c.Deltas) != len(want) {
		t.Fatalf("got %d deltas, want %d: %+v", len(c.Deltas), len(want), c.Deltas)
	}
	for name, v := range want {
		if got := verdictOf(t, c, name); got.Verdict != v {
			t.Errorf("%s: verdict %s, want %s (ratio %.3f, noise %v)", name, got.Verdict, v, got.Ratio, got.NoiseNS)
		}
	}
	if !c.Failed() {
		t.Error("comparison with a regression did not fail the gate")
	}

	d := verdictOf(t, c, "truediff/medium/light")
	if d.Ratio < 1.49 || d.Ratio > 1.51 {
		t.Errorf("regression ratio = %.3f, want 1.5", d.Ratio)
	}
}

func TestCompareIdenticalReportsPass(t *testing.T) {
	oldR, _ := loadGoldenPair(t)
	oldR2, _ := loadGoldenPair(t)
	c := Compare(oldR, oldR2, CompareOptions{})
	if c.Failed() {
		t.Fatal("identical reports failed the gate")
	}
	for _, d := range c.Deltas {
		if d.Verdict != VerdictUnchanged {
			t.Errorf("%s: verdict %s on identical reports, want unchanged", d.Name, d.Verdict)
		}
		if d.Ratio != 1 {
			t.Errorf("%s: ratio %.3f on identical reports, want 1", d.Name, d.Ratio)
		}
	}
}

func TestCompareAllowRemoved(t *testing.T) {
	oldR, newR := loadGoldenPair(t)

	// Drop the regressed and improved scenarios so only the removal can
	// fail the gate.
	var kept []ScenarioResult
	for _, s := range newR.Scenarios {
		if s.Name != "truediff/medium/light" {
			kept = append(kept, s)
		}
	}
	newR.Scenarios = kept
	var keptOld []ScenarioResult
	for _, s := range oldR.Scenarios {
		if s.Name == "hdiff/medium/light" || s.Name == "gumtree/small/light" {
			keptOld = append(keptOld, s)
		}
	}
	oldR.Scenarios = keptOld

	if c := Compare(oldR, newR, CompareOptions{}); !c.Failed() {
		t.Error("removed scenario did not fail the gate without AllowRemoved")
	}
	if c := Compare(oldR, newR, CompareOptions{AllowRemoved: true}); c.Failed() {
		t.Error("removed scenario failed the gate despite AllowRemoved")
	}
}

func TestCompareToleranceWidens(t *testing.T) {
	oldR, newR := loadGoldenPair(t)
	// At 60% tolerance the 1.5× slowdown is forgiven and nothing fails.
	c := Compare(oldR, newR, CompareOptions{Tolerance: 0.6, AllowRemoved: true})
	if c.Failed() {
		t.Fatal("1.5x slowdown failed a 60% gate")
	}
	if d := verdictOf(t, c, "truediff/medium/light"); d.Verdict != VerdictUnchanged {
		t.Errorf("verdict %s at 60%% tolerance, want unchanged", d.Verdict)
	}
}

// TestCompareNoiseBandBlocksJitter pins the two-condition rule directly: a
// median shift beyond the relative tolerance still does not regress when
// the shift sits inside the larger IQR.
func TestCompareNoiseBandBlocksJitter(t *testing.T) {
	mk := func(median, iqr float64) *Report {
		return &Report{
			SchemaVersion: SchemaVersion,
			Scenarios: []ScenarioResult{{
				Name:   "s",
				WallNS: Sample{N: 5, Median: median, IQR: iqr},
			}},
		}
	}
	// +20% but IQR covers the shift: unchanged.
	c := Compare(mk(100, 25), mk(120, 5), CompareOptions{Tolerance: 0.05})
	if d := verdictOf(t, c, "s"); d.Verdict != VerdictUnchanged {
		t.Errorf("shift inside noise band: verdict %s, want unchanged", d.Verdict)
	}
	// Same +20% with tight IQRs: regressed.
	c = Compare(mk(100, 2), mk(120, 5), CompareOptions{Tolerance: 0.05})
	if d := verdictOf(t, c, "s"); d.Verdict != VerdictRegressed {
		t.Errorf("shift beyond noise band: verdict %s, want regressed", d.Verdict)
	}
}

func TestCompareTextOutput(t *testing.T) {
	oldR, newR := loadGoldenPair(t)
	opts := CompareOptions{Tolerance: 0.05}
	c := Compare(oldR, newR, opts)
	var sb strings.Builder
	c.WriteText(&sb, opts)
	out := sb.String()
	for _, needle := range []string{"regressed", "improved", "unchanged", "added", "removed", "FAIL"} {
		if !strings.Contains(out, needle) {
			t.Errorf("comparison text missing %q:\n%s", needle, out)
		}
	}
}
