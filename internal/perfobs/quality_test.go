package perfobs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/truediff"
)

// TestQualityColumns: truediff and engine scenarios carry the quality
// probe's columns, and the tiny corpus — sized around the exact baseline
// cap — always has baselined pairs, so the optimality gap is populated.
func TestQualityColumns(t *testing.T) {
	rep, err := Run(RunConfig{
		Scenarios: []Scenario{
			{System: SystemTruediff, Corpus: CorpusTiny, Edits: EditsLight},
			{System: SystemEngine, Corpus: CorpusTiny, Edits: EditsLight, Workers: 2},
			{System: SystemLineardiff, Corpus: CorpusTiny, Edits: EditsLight},
		},
		Warmup: 1,
		Reps:   2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, s := range rep.Scenarios {
		switch s.System {
		case string(SystemTruediff), string(SystemEngine):
			if s.ReuseRatioMedian <= 0 || s.ReuseRatioMedian > 1 {
				t.Errorf("%s: reuse median %v out of (0, 1]", s.Name, s.ReuseRatioMedian)
			}
			if s.EditsPerChangedNode <= 0 {
				t.Errorf("%s: edits per changed node %v", s.Name, s.EditsPerChangedNode)
			}
			if s.BaselinedPairs == 0 || s.BaselinedPairs > s.Pairs {
				t.Errorf("%s: %d of %d pairs baselined; tiny corpus must baseline some",
					s.Name, s.BaselinedPairs, s.Pairs)
			}
		default:
			if s.ReuseRatioMedian != 0 || s.BaselinedPairs != 0 {
				t.Errorf("%s: baseline system carries quality columns: %+v", s.Name, s)
			}
		}
	}
	// The two measured systems produce the same scripts, so the probe
	// must agree column for column.
	a, b := rep.Scenarios[0], rep.Scenarios[1]
	if a.System != string(SystemEngine) {
		a, b = b, a
	}
	if a.ReuseRatioMedian != b.ReuseRatioMedian || a.OptimalityGap != b.OptimalityGap {
		t.Errorf("probe disagrees across systems: %+v vs %+v", a, b)
	}

	var buf bytes.Buffer
	rep.WriteSummary(&buf)
	if !strings.Contains(buf.String(), "reuse") || !strings.Contains(buf.String(), "gap") {
		t.Errorf("summary lacks quality columns:\n%s", buf.String())
	}
}

// TestConcisenessGateOnDegradedEquiv is the comparator's seeded-regression
// check: re-running the identical scenario under ExactOnly equivalence —
// which forfeits structural reuse on literal changes — must grow the edit
// scripts, and the comparator must fail the gate on conciseness even
// though wall time is not slower beyond tolerance.
func TestConcisenessGateOnDegradedEquiv(t *testing.T) {
	scs := []Scenario{{System: SystemTruediff, Corpus: CorpusTiny, Edits: EditsLight}}
	good, err := Run(RunConfig{Scenarios: scs, Warmup: 1, Reps: 2})
	if err != nil {
		t.Fatalf("Run(good): %v", err)
	}
	bad, err := Run(RunConfig{Scenarios: scs, Warmup: 1, Reps: 2, Equiv: truediff.ExactOnly})
	if err != nil {
		t.Fatalf("Run(degraded): %v", err)
	}
	g, b := good.Scenarios[0], bad.Scenarios[0]
	if b.EditsTotal <= g.EditsTotal {
		t.Fatalf("ExactOnly did not degrade conciseness: %d vs %d edits", b.EditsTotal, g.EditsTotal)
	}

	c := Compare(good, bad, CompareOptions{})
	if !c.Failed() {
		t.Fatal("comparator passed a conciseness regression")
	}
	var hit bool
	for _, d := range c.Deltas {
		if d.ConcisenessRegressed {
			hit = true
			if d.OldEdits != g.EditsTotal || d.NewEdits != b.EditsTotal {
				t.Errorf("delta edit counts %d/%d, want %d/%d", d.OldEdits, d.NewEdits, g.EditsTotal, b.EditsTotal)
			}
		}
	}
	if !hit {
		t.Fatal("no delta flagged ConcisenessRegressed")
	}
	var buf bytes.Buffer
	c.WriteText(&buf, CompareOptions{})
	out := buf.String()
	if !strings.Contains(out, "concise!") || !strings.Contains(out, "FAIL") {
		t.Errorf("WriteText does not report the conciseness regression:\n%s", out)
	}

	// The same comparison with the gate disabled passes (wall time did not
	// regress; only the scripts grew).
	if c2 := Compare(good, bad, CompareOptions{QualityTolerance: -1}); c2.Failed() {
		for _, d := range c2.Deltas {
			if d.Verdict == VerdictRegressed {
				t.Skip("wall time also regressed on this machine; conciseness check above already passed")
			}
		}
		t.Error("gate fired with QualityTolerance < 0")
	}
}
