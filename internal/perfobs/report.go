// Package perfobs is the performance-observability harness: a fixed matrix
// of benchmark scenarios (corpus sizes × edit profiles × engine
// configurations × baseline algorithms), a runner that executes the matrix
// with warmup and outlier-robust statistics, a schema-versioned JSON report
// format (the BENCH_<n>.json trajectory at the repository root), and a
// comparator that turns two reports into a CI regression gate.
//
// The package depends on the repository's own diff stack and the standard
// library only. cmd/bench is the CLI front end; docs/BENCHMARKING.md
// documents the report schema and the gating rule.
package perfobs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"time"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

// SchemaVersion identifies the BENCH_<n>.json layout. Readers must reject
// reports with a different major version; the comparator does.
const SchemaVersion = 1

// Report is one benchmark run: environment fingerprint plus one result per
// executed scenario. It is the unit stored as BENCH_<n>.json.
type Report struct {
	// SchemaVersion is always SchemaVersion at write time.
	SchemaVersion int `json:"schema_version"`
	// CreatedUnix is the run's start time (Unix seconds, UTC).
	CreatedUnix int64 `json:"created_unix"`
	// Env fingerprints the machine and toolchain the run used. Compare
	// reports from like environments only; the comparator warns (but does
	// not fail) on mismatched fingerprints.
	Env EnvInfo `json:"env"`
	// Smoke marks reduced-matrix runs (cmd/bench -smoke); their numbers
	// use fewer repetitions and are gated at a wider tolerance.
	Smoke bool `json:"smoke,omitempty"`
	// Scenarios holds one entry per executed scenario, sorted by name.
	Scenarios []ScenarioResult `json:"scenarios"`
}

// EnvInfo fingerprints the environment a report was produced in.
type EnvInfo struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	VCSRevision string `json:"vcs_revision,omitempty"`
}

// CaptureEnv reads the current environment fingerprint.
func CaptureEnv() EnvInfo {
	e := EnvInfo{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				e.VCSRevision = s.Value
			}
		}
	}
	return e
}

// Sample summarizes one metric's repetition samples with outlier-robust
// statistics: the gate compares medians and uses the IQR as the noise
// band, so a single cold repetition cannot fail CI.
type Sample struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	// IQR is the interquartile range Q3−Q1, the scenario's noise band.
	IQR float64 `json:"iqr"`
}

// Summarize condenses raw repetition samples into a Sample.
func Summarize(xs []float64) Sample {
	if len(xs) == 0 {
		return Sample{}
	}
	s := stats.Summarize(xs)
	return Sample{
		N:      s.N,
		Min:    s.Min,
		Median: s.Median,
		P95:    stats.Percentile(xs, 0.95),
		Max:    s.Max,
		Mean:   s.Mean,
		IQR:    s.Q3 - s.Q1,
	}
}

// ScenarioResult is one scenario's measured outcome.
type ScenarioResult struct {
	// Name is the scenario's stable identity (Scenario.Name()); the
	// comparator matches old and new results by it.
	Name string `json:"name"`
	// System, Corpus, and Edits echo the scenario definition so reports
	// are self-describing.
	System string `json:"system"`
	Corpus string `json:"corpus"`
	Edits  string `json:"edits"`
	// Workers and Memo describe engine scenarios (Workers 0 otherwise);
	// service scenarios set Workers and Clients.
	Workers int  `json:"workers,omitempty"`
	Memo    bool `json:"memo,omitempty"`
	Clients int  `json:"clients,omitempty"`

	// Pairs is the number of file changes diffed per repetition; Nodes the
	// summed input size (source+target) of one repetition.
	Pairs int   `json:"pairs"`
	Nodes int64 `json:"nodes"`
	// Warmup and Reps record how the samples were taken.
	Warmup int `json:"warmup"`
	Reps   int `json:"reps"`

	// WallNS summarizes per-repetition wall time (nanoseconds for the
	// whole batch of Pairs diffs). This is the gated metric.
	WallNS Sample `json:"wall_ns"`
	// NodesPerSec summarizes per-repetition throughput.
	NodesPerSec Sample `json:"nodes_per_sec"`
	// AllocBytesPerRep summarizes heap allocation per repetition
	// (runtime/metrics /gc/heap/allocs:bytes deltas).
	AllocBytesPerRep Sample `json:"alloc_bytes_per_rep"`
	// RequestNS summarizes client-observed per-request latency over all
	// measured repetitions — the service-level view (queueing, coalescing,
	// transport included). Present for service scenarios only; its P95 is
	// the number the daemon's capacity planning reads.
	RequestNS *Sample `json:"request_ns,omitempty"`

	// EditsTotal is the summed compound edit count of one repetition
	// (identical across repetitions: the scenarios are deterministic).
	// The comparator gates on it as the conciseness metric.
	EditsTotal int `json:"edits_total"`

	// Quality columns, measured by an untimed probe repetition (truediff
	// and engine systems only; see docs/OBSERVABILITY.md). ReuseRatioMedian
	// is the per-pair median fraction of target nodes produced by reuse;
	// EditsPerChangedNode the aggregate compound-edits-per-touched-node
	// conciseness ratio.
	ReuseRatioMedian    float64 `json:"reuse_ratio_median,omitempty"`
	EditsPerChangedNode float64 `json:"edits_per_changed_node,omitempty"`
	// BaselinedPairs counts pairs small enough for the exact
	// minimal-script baseline; OptimalityGap aggregates their compound
	// edits over the exact minimum, minus one (negative when truechange
	// moves beat the classical edit distance). Zero BaselinedPairs means
	// the corpus was too large to baseline and OptimalityGap is unset.
	BaselinedPairs int     `json:"baselined_pairs,omitempty"`
	OptimalityGap  float64 `json:"optimality_gap,omitempty"`

	// PhaseNS breaks one repetition's diff time into the four truediff
	// phases (median over repetitions, nanoseconds summed over Pairs).
	// Empty for baseline systems, which have no phase decomposition.
	PhaseNS map[string]float64 `json:"phase_ns,omitempty"`
	// PhaseAllocBytes is the per-phase heap-allocation profile from one
	// single-threaded probe repetition (bytes summed over Pairs). Present
	// for the truediff system only.
	PhaseAllocBytes map[string]int64 `json:"phase_alloc_bytes,omitempty"`

	// Runtime samples the Go runtime around the measured repetitions.
	Runtime RuntimeSample `json:"runtime"`
	// Utilization is the engine worker-pool busy fraction over the
	// measured repetitions (0 for non-engine systems).
	Utilization float64 `json:"utilization,omitempty"`
}

// RuntimeSample is the runtime/metrics view of one scenario's measured
// repetitions (deltas where the metric is cumulative).
type RuntimeSample struct {
	// AllocBytes is the total heap allocation over all measured
	// repetitions (/gc/heap/allocs:bytes delta).
	AllocBytes uint64 `json:"alloc_bytes"`
	// GCCycles counts completed GC cycles during the measurement
	// (/gc/cycles/total:gc-cycles delta).
	GCCycles uint64 `json:"gc_cycles"`
	// GCPauseNS totals stop-the-world pause time during the measurement
	// (runtime.MemStats.PauseTotalNs delta).
	GCPauseNS uint64 `json:"gc_pause_ns"`
	// HeapLiveBytes is the live-object heap footprint after the last
	// repetition (/memory/classes/heap/objects:bytes).
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	// Goroutines is the goroutine count after the last repetition
	// (/sched/goroutines:goroutines).
	Goroutines uint64 `json:"goroutines"`
}

// WriteFile writes the report as deterministic, human-diffable JSON.
func (r *Report) WriteFile(path string) error {
	sort.Slice(r.Scenarios, func(i, j int) bool { return r.Scenarios[i].Name < r.Scenarios[j].Name })
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("perfobs: encode report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses a BENCH_<n>.json report and checks its schema version.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perfobs: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfobs: parse %s: %w", path, err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("perfobs: %s has schema version %d, this build reads %d",
			path, r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// benchPathRE matches the BENCH_<n>.json trajectory files.
var benchPathRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// NextBenchPath returns the next free BENCH_<n>.json path in dir: one past
// the highest existing index, or BENCH_0.json in a fresh directory.
func NextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("perfobs: %w", err)
	}
	next := 0
	for _, e := range entries {
		if m := benchPathRE.FindStringSubmatch(e.Name()); m != nil {
			n, err := strconv.Atoi(m[1])
			if err == nil && n+1 > next {
				next = n + 1
			}
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}

// WriteSummary renders the report as a human-readable table: one line per
// scenario with median wall time, throughput, edit totals, and the phase
// split where available.
func (r *Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "benchmark report (schema v%d, %s %s/%s, %d CPUs, go %s)\n",
		r.SchemaVersion, revShort(r.Env.VCSRevision), r.Env.GOOS, r.Env.GOARCH,
		r.Env.NumCPU, r.Env.GoVersion)
	fmt.Fprintf(w, "%-34s %10s %12s %9s %8s %6s %6s  %s\n",
		"scenario", "median", "nodes/s", "±iqr", "edits", "reuse", "gap", "phase split")
	for i := range r.Scenarios {
		s := &r.Scenarios[i]
		reuse, gap := "-", "-"
		if s.ReuseRatioMedian > 0 {
			reuse = fmt.Sprintf("%.0f%%", 100*s.ReuseRatioMedian)
		}
		if s.BaselinedPairs > 0 {
			gap = fmt.Sprintf("%+.0f%%", 100*s.OptimalityGap)
		}
		fmt.Fprintf(w, "%-34s %10v %12.0f %9v %8d %6s %6s  %s\n",
			s.Name,
			time.Duration(s.WallNS.Median).Round(time.Microsecond),
			s.NodesPerSec.Median,
			time.Duration(s.WallNS.IQR).Round(time.Microsecond),
			s.EditsTotal,
			reuse, gap,
			phaseSplit(s.PhaseNS))
	}
}

// phaseSplit renders the four-phase decomposition as percentage shares in
// phase order, or "-" when the scenario has none (baseline systems).
func phaseSplit(phases map[string]float64) string {
	if len(phases) == 0 {
		return "-"
	}
	var total float64
	for _, v := range phases {
		total += v
	}
	if total <= 0 {
		return "-"
	}
	out := ""
	for p := 0; p < telemetry.NumPhases; p++ {
		name := telemetry.Phase(p).String()
		if p > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s %.0f%%", name, 100*phases[name]/total)
	}
	return out
}

func revShort(rev string) string {
	if rev == "" {
		return "unversioned"
	}
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}
