package proptest

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/tree"
	"repro/internal/truechange"

	"repro/structdiff"
)

// buggyCheck runs one pair through a deliberately broken engine — an Error
// fault armed at the engine's diff site fires on every diff — and reports
// what the oracle would: the pair fails because diffing it fails. This is
// the harness testing itself: a real engine bug of the "diff errors out"
// class must be caught exactly like this and shrunk the same way.
func buggyCheck(gen Generator, src, dst *tree.Node) error {
	inj := faultinject.New(1, faultinject.Fault{
		Site: structdiff.FaultSiteDiff, Kind: faultinject.Error,
	})
	eng, err := structdiff.NewEngine(gen.Schema(),
		structdiff.WithWorkers(1), structdiff.WithFaultInjection(inj))
	if err != nil {
		return err
	}
	results, err := eng.DiffBatch(context.Background(),
		[]structdiff.Pair{{Source: src, Target: dst}})
	if err != nil {
		return err
	}
	if results[0].Err != nil {
		return propErr(PropWellTyped, "engine diff failed: %w", results[0].Err)
	}
	return nil
}

// TestSelfTestInjectedEngineBug is the harness's end-to-end self-test
// demanded by the acceptance criteria: a deliberately injected engine bug
// (via faultinject at the engine/diff site) must be (1) caught by the
// oracle on a generated pair, (2) shrunk by the shrinker to a reproducer
// of at most 10 nodes per side, (3) serialized into a reproducer that
// round-trips through Save/Load, and (4) shown to pass the real,
// un-sabotaged oracle — proving the failure was the engine's, not the
// pair's.
func TestSelfTestInjectedEngineBug(t *testing.T) {
	gen := Generators()[0]
	cfg := DefaultConfig(*flagSeed)
	run := NewRun(gen, cfg)
	p := run.Next()

	// 1 — caught: the buggy engine fails the generated pair.
	err := buggyCheck(gen, p.Source, p.Target)
	if err == nil {
		t.Fatal("injected engine bug was not caught on a generated pair")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("caught failure does not trace back to the injected fault: %v", err)
	}

	// 2 — shrunk: minimize while the bug keeps reproducing.
	sh := NewShrinker(gen.Schema(), gen.Alloc())
	src, dst, serr, evals := sh.ShrinkPair(p.Source, p.Target, func(s, d *tree.Node) error {
		return buggyCheck(gen, s, d)
	})
	if serr == nil {
		t.Fatal("shrinker lost the failure")
	}
	t.Logf("shrunk %d+%d → %d+%d nodes in %d evals",
		p.Source.Size(), p.Target.Size(), src.Size(), dst.Size(), evals)
	if src.Size() > 10 || dst.Size() > 10 {
		t.Fatalf("shrunk reproducer has %d+%d nodes, want ≤10 per side", src.Size(), dst.Size())
	}

	// 3 — filed: the reproducer round-trips through Save/Load.
	f := &Failure{
		Generator: gen.Name(), Property: PropWellTyped, Seed: cfg.Seed, Iter: p.Iter,
		Pair: Pair{Source: src, Target: dst, Desc: "selftest"}, Err: serr,
	}
	dir := t.TempDir()
	path, err := NewReproducer(f).Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReproducers(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("loaded %d reproducers from %s, want 1", len(loaded), filepath.Base(path))
	}
	sch, lsrc, ldst, err := loaded[0].Trees()
	if err != nil {
		t.Fatal(err)
	}
	if lsrc.ExactHash() != src.ExactHash() || ldst.ExactHash() != dst.ExactHash() {
		t.Fatal("reproducer trees changed across the Save/Load round trip")
	}

	// 4 — exonerated: the real oracle passes the shrunk pair, so the bug
	// was in the (sabotaged) engine.
	if _, err := CheckPair(sch, Pair{Source: lsrc, Target: ldst}, cfg.Seed); err != nil {
		t.Fatalf("shrunk pair fails the clean oracle too: %v", err)
	}

	// Saving again is idempotent (content-addressed name).
	if _, err := NewReproducer(f).Save(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("re-saving created a second file: %d entries", len(entries))
	}
}

// TestSelfTestSemanticBugShrinks checks the shrinker on a semantic (wrong
// output, rather than erroring) bug: pretend any script containing an
// Update edit is wrong, and verify the shrinker reduces an arbitrary
// failing pair to a near-minimal pair that still provokes an Update. This
// is the class of failure satellite regressions are made of: the shrunk
// pair isolates the single literal change behind the offending edit.
func TestSelfTestSemanticBugShrinks(t *testing.T) {
	gen := Generators()[0]
	sch := gen.Schema()
	cfg := DefaultConfig(*flagSeed)
	run := NewRun(gen, cfg)

	hasUpdate := func(s *truechange.Script) bool {
		for _, e := range s.Edits {
			if _, ok := e.(truechange.Update); ok {
				return true
			}
		}
		return false
	}
	prop := func(src, dst *tree.Node) error {
		res, err := structdiff.Diff(src, dst,
			structdiff.WithSchema(sch), structdiff.WithUpdateOnLitMismatch())
		if err != nil {
			return nil // a pair the differ rejects is not this bug
		}
		if hasUpdate(res.Script) {
			return propErr("semantic-selftest", "script contains an Update edit")
		}
		return nil
	}

	// Find a pair provoking the "bug" (a literal-only mutation exists in
	// every generator's mix, so this terminates quickly).
	var found *Pair
	for i := 0; i < cfg.Iters; i++ {
		p := run.Next()
		if prop(p.Source, p.Target) != nil {
			found = &p
			break
		}
	}
	if found == nil {
		t.Fatalf("no generated pair provoked an Update edit in %d iterations", cfg.Iters)
	}

	sh := NewShrinker(sch, gen.Alloc())
	src, dst, serr, evals := sh.ShrinkPair(found.Source, found.Target, prop)
	if serr == nil {
		t.Fatal("shrinker lost the failure")
	}
	t.Logf("shrunk %d+%d → %d+%d nodes in %d evals",
		found.Source.Size(), found.Target.Size(), src.Size(), dst.Size(), evals)
	if src.Size() > 12 || dst.Size() > 12 {
		t.Fatalf("shrunk reproducer has %d+%d nodes, want ≤12 per side", src.Size(), dst.Size())
	}
	if prop(src, dst) == nil {
		t.Fatal("shrunk pair no longer reproduces the Update edit")
	}
}
