package proptest

import (
	"math"
	"testing"

	"repro/internal/jsonlang"
	"repro/internal/tree"
	"repro/internal/uri"
)

// Regression tests for the special-float literal bug the property harness
// surfaced (and TestRegressionCorpus replays from testdata/regress).
//
// The literal hash folds float64 values through math.Float64bits, but
// every literal *comparison* — diff literal preference, mtree unload and
// update checks, Comply, script normalization, hdiff pattern matching —
// used Go ==. The two disagree exactly on NaN (bit-identical NaNs hash
// equal but NaN != NaN) and on signed zero (-0 == +0 but their bit
// patterns hash differently). Consequences before the fix:
//
//   - a (NaN, NaN) pair failed convergence: the patched source never
//     compared equal to the target;
//   - deleting a NaN-valued node emitted an Unload whose old-value check
//     rejected its own source tree — the diff violated Conjecture 4.2
//     against the very pair it was computed from.
//
// The fix is tree.LitEqual (bit-pattern equality for float64, == for all
// other literal types), used at every comparison site, so comparison and
// hash can never disagree again. jsonNumber keeps NaN/±Inf/-0 in every
// run's generator mix so the class stays covered natively.

// TestRegressNaNLiteral pins the scalar cases: self-diff and update for
// each special value.
func TestRegressNaNLiteral(t *testing.T) {
	sch := jsonlang.Schema()
	alloc := uri.NewAllocator()
	mk := func(v float64) *tree.Node {
		return mustNode(sch, alloc, jsonlang.TagNumber, nil, []any{v})
	}
	for _, tc := range []struct {
		name string
		v    float64
	}{
		{"nan", math.NaN()},
		{"+inf", math.Inf(1)},
		{"-inf", math.Inf(-1)},
		{"-0", math.Copysign(0, -1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			same := Pair{Source: mk(tc.v), Target: mk(tc.v), Desc: "special-self"}
			if _, err := CheckPair(sch, same, 3); err != nil {
				t.Errorf("(%v, %v) pair: %v", tc.v, tc.v, err)
			}
			to := Pair{Source: mk(1), Target: mk(tc.v), Desc: "to-special"}
			if _, err := CheckPair(sch, to, 3); err != nil {
				t.Errorf("(1, %v) pair: %v", tc.v, err)
			}
			from := Pair{Source: mk(tc.v), Target: mk(1), Desc: "from-special"}
			if _, err := CheckPair(sch, from, 3); err != nil {
				t.Errorf("(%v, 1) pair: %v", tc.v, err)
			}
		})
	}
}

// TestRegressNaNUnload pins the structural case: deleting a NaN element
// emits an Unload carrying NaN as the old literal value, which must comply
// with the source it was diffed from.
func TestRegressNaNUnload(t *testing.T) {
	sch := jsonlang.Schema()
	alloc := uri.NewAllocator()
	nan := mustNode(sch, alloc, jsonlang.TagNumber, nil, []any{math.NaN()})
	tail := mustNode(sch, alloc, jsonlang.TagElNil, nil, nil)
	spine := mustNode(sch, alloc, jsonlang.TagElCons, []*tree.Node{nan, tail}, nil)
	src := mustNode(sch, alloc, jsonlang.TagArray, []*tree.Node{spine}, nil)
	empty := mustNode(sch, alloc, jsonlang.TagElNil, nil, nil)
	dst := mustNode(sch, alloc, jsonlang.TagArray, []*tree.Node{empty}, nil)
	if _, err := CheckPair(sch, Pair{Source: src, Target: dst, Desc: "del-nan"}, 3); err != nil {
		t.Errorf("delete NaN element: %v", err)
	}
}
