// Package proptest is the property-based correctness harness of the
// reproduction: a deterministic, seed-reproducible generator-and-oracle
// subsystem that checks the paper's two central claims — well-typedness of
// emitted scripts (Conjecture 4.2) and patch convergence
// patch(diff(a,b), a) ≃ b (Conjecture 4.3) — plus four further properties
// (empty self-diff, transactional rollback round-trips under injected
// faults, negative-before-positive edit ordering, and exact
// Patch/Invert round trips) on thousands of generated tree pairs instead
// of the paper's ~200 hand-picked cases. merge.go lifts the same harness
// to three-tree merge triples (see CheckTriple).
//
// The harness has five parts:
//
//   - typed tree generators per signature (Generator): random Python
//     modules (reusing the corpus generator and its semantic mutation
//     operators), random JSON documents, and a pathological generator
//     producing deep chains, wide fan-outs, duplicate-subtree-heavy trees,
//     and hash-collision-adjacent shapes (structurally equivalent subtrees
//     differing only in literals);
//   - semantic mutation operators mirroring the corpus edit kinds (rename,
//     literal change, insert, delete, move, swap);
//   - an oracle (CheckPair) that runs every generated (a, b) pair through
//     the public structdiff facade and checks all five properties;
//   - a greedy shrinker (Shrinker) that minimizes any failing pair to a
//     small reproducer, serialized into a committed regression corpus
//     (testdata/regress, see Reproducer);
//   - a differential mode (Differential) cross-checking truediff's scripts
//     against the lineardiff and gumtree baselines.
//
// Everything is driven by a single int64 seed that the tests log on every
// run: rerunning with -proptest.seed=<seed> reproduces the exact pair
// sequence, and the per-run Checksum makes drift detectable.
package proptest

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/tree"
)

// Config parameterizes one harness run.
type Config struct {
	// Seed drives every random choice of the run. The same Seed always
	// yields the same pair sequence, mutation kinds, and fault positions.
	Seed int64
	// Iters is the number of generated pairs per generator.
	Iters int
	// MinNodes/MaxNodes bound generated tree sizes (before mutation).
	MinNodes, MaxNodes int
	// MutationsPerPair bounds how many semantic mutations separate a pair's
	// source from its target (at least 1 is applied).
	MutationsPerPair int
}

// DefaultConfig is the fast-mode configuration wired into go test: bounded
// iterations sized to keep the suite in seconds.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		Iters:            500,
		MinNodes:         20,
		MaxNodes:         160,
		MutationsPerPair: 3,
	}
}

// LongConfig is the nightly configuration (-proptest.long): an order of
// magnitude more pairs over larger trees.
func LongConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		Iters:            5000,
		MinNodes:         40,
		MaxNodes:         600,
		MutationsPerPair: 5,
	}
}

// Pair is one generated diffing task: a source tree, a target derived from
// it by semantic mutations, and a human-readable description of how.
type Pair struct {
	Source, Target *tree.Node
	// Desc names the mutation kinds applied, e.g. "rename+literal".
	Desc string
	// Iter is the pair's position in the run's sequence.
	Iter int
}

// Failure reports a property violation on one pair, carrying everything
// needed to reproduce and file it: the generator and property names, the
// run seed, the iteration, and the (possibly shrunk) pair.
type Failure struct {
	Generator string
	Property  string
	Seed      int64
	Iter      int
	Pair      Pair
	Err       error
}

func (f *Failure) Error() string {
	return fmt.Sprintf("proptest: %s/%s failed at iter %d (seed %d, pair %q): %v",
		f.Generator, f.Property, f.Iter, f.Seed, f.Pair.Desc, f.Err)
}

func (f *Failure) Unwrap() error { return f.Err }

// Run drives one generator for cfg.Iters pairs, invoking check on each and
// returning the first Failure (or nil). It also accumulates a determinism
// checksum over the generated pairs; two runs with the same seed and
// config must produce the same checksum, which TestDeterministicReplay
// asserts.
type Run struct {
	Gen Generator
	Cfg Config

	rng      *rand.Rand
	checksum uint64
	pairs    int
}

// NewRun returns a run of the generator under the config. The generator is
// reseeded from cfg.Seed, so constructing a new Run restarts the sequence.
func NewRun(gen Generator, cfg Config) *Run {
	return &Run{Gen: gen, Cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), checksum: 14695981039346656037}
}

// Next generates the next pair of the sequence and folds its digests into
// the run checksum.
func (r *Run) Next() Pair {
	size := r.Cfg.MinNodes
	if r.Cfg.MaxNodes > r.Cfg.MinNodes {
		size += r.rng.Intn(r.Cfg.MaxNodes - r.Cfg.MinNodes)
	}
	muts := 1 + r.rng.Intn(r.Cfg.MutationsPerPair)
	p := r.Gen.Pair(r.rng, size, muts)
	p.Iter = r.pairs
	r.pairs++
	r.fold(p.Source.ExactHash())
	r.fold(p.Target.ExactHash())
	return p
}

// fold mixes a string into the FNV-1a run checksum.
func (r *Run) fold(s string) {
	h := fnv.New64a()
	h.Write([]byte(s))
	r.checksum = (r.checksum ^ h.Sum64()) * 1099511628211
}

// FoldScript mixes a per-pair observation (e.g. the script length) into
// the checksum, so replay equality covers the oracle's view, not just the
// generated trees.
func (r *Run) FoldScript(editCount int) { r.fold(fmt.Sprintf("edits:%d", editCount)) }

// Checksum returns the determinism checksum accumulated so far.
func (r *Run) Checksum() uint64 { return r.checksum }

// Pairs returns how many pairs the run has generated.
func (r *Run) Pairs() int { return r.pairs }
