package proptest

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/derrors"
	"repro/internal/exp"
	"repro/internal/jsonlang"
	"repro/internal/mtree"
	"repro/internal/pylang"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// Reproducer is one committed regression-corpus entry: a minimized failing
// pair, serialized as S-expressions (URIs are reallocated on load, which
// is sound — every oracle property is URI-independent). Every property
// failure the harness ever finds ships as one of these under
// testdata/regress, and TestRegressionCorpus replays them all.
type Reproducer struct {
	// Lang names the generator schema: "pylang" or "jsonlang" (the
	// pathological generator shares the jsonlang schema).
	Lang string `json:"lang"`
	// Property is the oracle property that failed (Prop* constants).
	Property string `json:"property"`
	// Seed is the run seed the failure was found under.
	Seed int64 `json:"seed"`
	// Note describes the failure and, once fixed, the fix.
	Note string `json:"note,omitempty"`
	// Source and Target are the shrunk pair, as tree S-expressions.
	Source string `json:"source"`
	Target string `json:"target"`
}

// SchemaFor maps a reproducer language name to its schema.
func SchemaFor(lang string) (*sig.Schema, error) {
	switch lang {
	case "pylang":
		return pylang.Schema(), nil
	case "jsonlang", "patho":
		return jsonlang.Schema(), nil
	default:
		return nil, fmt.Errorf("proptest: unknown reproducer language %q", lang)
	}
}

// NewReproducer serializes a failure into a reproducer.
func NewReproducer(f *Failure) Reproducer {
	return Reproducer{
		Lang:     f.Generator,
		Property: f.Property,
		Seed:     f.Seed,
		Note:     f.Err.Error(),
		Source:   tree.EncodeSExpr(f.Pair.Source),
		Target:   tree.EncodeSExpr(f.Pair.Target),
	}
}

// Trees decodes the reproducer's pair against its language schema, drawing
// fresh URIs.
func (r Reproducer) Trees() (sch *sig.Schema, src, dst *tree.Node, err error) {
	sch, err = SchemaFor(r.Lang)
	if err != nil {
		return nil, nil, nil, err
	}
	alloc := uri.NewAllocator()
	src, err = tree.DecodeSExpr(r.Source, sch, alloc)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("proptest: reproducer source: %w", err)
	}
	dst, err = tree.DecodeSExpr(r.Target, sch, alloc)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("proptest: reproducer target: %w", err)
	}
	return sch, src, dst, nil
}

// Save writes the reproducer into dir under a content-addressed name
// (property + first 8 digest hex chars), returning the path. Saving the
// same reproducer twice is idempotent.
func (r Reproducer) Save(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	sum := sha256.Sum256(data)
	path := filepath.Join(dir, fmt.Sprintf("%s-%s-%x.json", r.Lang, r.Property, sum[:4]))
	return path, os.WriteFile(path, data, 0o644)
}

// LoadReproducers reads every *.json reproducer in dir, sorted by name.
// A missing directory yields an empty slice.
func LoadReproducers(dir string) ([]Reproducer, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]Reproducer, 0, len(names))
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var r Reproducer
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("proptest: %s: %w", name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// --- Native fuzz-target seeding -----------------------------------------
//
// The three native fuzz targets (truechange codec round trip, CheckEdit
// no-panic, mtree Comply⟺Patch agreement) are seeded from
// proptest-generated corpora, so fuzzing starts from structurally rich,
// minimized inputs that the property harness also understands.

// ScriptSeeds generates JSON-encoded edit scripts by diffing cfg.Iters
// generated pairs per generator — real scripts covering every edit kind —
// for the truechange codec and type-checker fuzz targets. Scripts are
// deduplicated and capped at limit entries, smallest first (fuzz seeds
// should be minimal).
func ScriptSeeds(cfg Config, limit int) ([][]byte, error) {
	var scripts []*truechange.Script
	for _, gen := range Generators() {
		run := NewRun(gen, cfg)
		for i := 0; i < cfg.Iters; i++ {
			p := run.Next()
			script, err := CheckPair(gen.Schema(), p, int64(i)+cfg.Seed)
			if err != nil {
				return nil, err
			}
			scripts = append(scripts, script)
		}
	}
	sort.Slice(scripts, func(i, j int) bool { return len(scripts[i].Edits) < len(scripts[j].Edits) })
	seen := make(map[string]bool)
	var out [][]byte
	for _, s := range scripts {
		if len(s.Edits) == 0 {
			continue
		}
		data, err := json.Marshal(s)
		if err != nil {
			// Scripts carrying non-finite float literals (NaN, ±Inf) have
			// no JSON encoding; they are valid diffs but useless as codec
			// fuzz seeds, so skip rather than fail.
			continue
		}
		if seen[string(data)] {
			continue
		}
		seen[string(data)] = true
		out = append(out, data)
		if len(out) >= limit {
			break
		}
	}
	return out, nil
}

// ByteSeeds searches deterministic pseudo-random byte strings for inputs
// that FuzzDecodeScript maps to interesting scripts against the agreement
// fuzz target's fixed tree: scripts that comply in full (the positive
// path) and scripts that fail mid-application (the rollback path). It
// returns up to limit inputs of each class, shortest first.
func ByteSeeds(seed int64, limit int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	g := exp.NewGen(mtree.FuzzTreeSeed)
	base := g.Tree(mtree.FuzzTreeSize)

	var full, partial [][]byte
	for tries := 0; tries < 200000 && (len(full) < limit || len(partial) < limit); tries++ {
		n := 4 + rng.Intn(24)
		data := make([]byte, n)
		rng.Read(data)
		s := mtree.FuzzDecodeScript(data)
		if len(s.Edits) == 0 {
			continue
		}
		mt, err := mtree.FromTree(g.Schema(), base)
		if err != nil {
			panic(err)
		}
		err = mt.Patch(s)
		switch {
		case err == nil && len(full) < limit:
			full = append(full, data)
		case err != nil && len(partial) < limit:
			var pe *mtree.PatchError
			if errors.As(err, &pe) && pe.EditIndex > 0 && errors.Is(err, derrors.ErrNonCompliantScript) {
				partial = append(partial, data)
			}
		}
	}
	out := append(full, partial...)
	sort.Slice(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}

// WriteGoFuzzCorpus writes the inputs into dir as Go native fuzz corpus
// files (the "go test fuzz v1" format), named seed-NNN. It returns the
// number written.
func WriteGoFuzzCorpus(dir string, inputs [][]byte) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	for i, in := range inputs {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(in)) + ")\n"
		path := filepath.Join(dir, fmt.Sprintf("proptest-seed-%03d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			return i, err
		}
	}
	return len(inputs), nil
}
