package proptest

// merge.go extends the property harness from two-tree diffing to three-tree
// merging: a Triple is an ancestor plus two independently mutated
// descendants, and CheckTriple runs every generated triple through the
// public structdiff merge entry points, asserting the merge-level analogues
// of the paper's conjectures — merged scripts are well-typed, disjoint
// merges commute and carry both sides' changes, conflicts are always
// reported (never silently dropped), policy resolution always succeeds, and
// merged patches roll back exactly under injected faults. Failures shrink
// through the same schema-generic shrinker (side by side) and serialize
// into a committed triple corpus under testdata/regress/merge.

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/mtree"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/uri"

	"repro/internal/jsonlang"

	"repro/structdiff"
)

// The merge oracle properties, named for failure reports and the property
// catalog in docs/TESTING.md.
const (
	// PropMergeWellTyped: the merged script passes the linear type check,
	// keeps the negative-before-positive ordering, and patches the ancestor
	// to a closed tree.
	PropMergeWellTyped = "merge-well-typed"
	// PropMergeBothApplied: a merge with no conflicts and no
	// auto-resolutions is equivalent to applying ours' script and then
	// theirs' script sequentially — neither side's changes are lost.
	PropMergeBothApplied = "merge-both-applied"
	// PropMergeCommutes: swapping ours and theirs yields the same merged
	// tree (clean merges) or the same conflict count (conflicted merges).
	PropMergeCommutes = "merge-commutes"
	// PropMergeConflictReported: a failing merge always surfaces
	// ErrMergeConflict carrying a non-empty, fully populated conflict list.
	PropMergeConflictReported = "merge-conflict-reported"
	// PropMergeResolves: ours/theirs policies always turn a conflicted
	// merge into a well-typed script that patches cleanly, recording every
	// resolved conflict.
	PropMergeResolves = "merge-policy-resolves"
	// PropMergeRollback: a merged patch failing mid-script under an
	// injected fault leaves the ancestor byte-identical, and a clean
	// re-patch converges.
	PropMergeRollback = "merge-fault-rollback"
)

// MergeRegressDir is the committed triple-reproducer corpus, a sibling of
// the pair corpus (a subdirectory, so LoadReproducers never confuses the
// two formats).
const MergeRegressDir = "testdata/regress/merge"

// Triple is one generated merge task: an ancestor tree and two descendants
// derived from it by independent semantic mutation chains.
type Triple struct {
	Base, Ours, Theirs *tree.Node
	// Desc names both sides' mutation kinds, e.g. "ours:rename|theirs:move".
	Desc string
	// Iter is the triple's position in the run's sequence.
	Iter int
}

// TripleFailure reports a merge property violation on one triple.
type TripleFailure struct {
	Generator string
	Property  string
	Seed      int64
	Iter      int
	Triple    Triple
	Err       error
}

func (f *TripleFailure) Error() string {
	return fmt.Sprintf("proptest: merge %s/%s failed at iter %d (seed %d, triple %q): %v",
		f.Generator, f.Property, f.Iter, f.Seed, f.Triple.Desc, f.Err)
}

func (f *TripleFailure) Unwrap() error { return f.Err }

// --- Triple generation ---------------------------------------------------

// genTriple derives a merge triple from one of the standard generators: a
// shared ancestor of roughly size nodes and two descendants produced by
// independent mutation chains over it.
func genTriple(g Generator, rng *rand.Rand, size, mutsOurs, mutsTheirs int) Triple {
	switch gen := g.(type) {
	case *PyGen:
		tg := corpus.NewTreeGen(rng, gen.f)
		base := tg.Module(size)
		ours, da := mutateChainPy(tg, base, mutsOurs)
		theirs, db := mutateChainPy(tg, base, mutsTheirs)
		return Triple{Base: base, Ours: ours, Theirs: theirs, Desc: "ours:" + da + "|theirs:" + db}
	case *JSONGen:
		base := gen.value(rng, size)
		ours, da := mutateChainJSON(rng, gen.sch, gen.alloc, base, mutsOurs)
		theirs, db := mutateChainJSON(rng, gen.sch, gen.alloc, base, mutsTheirs)
		return Triple{Base: base, Ours: ours, Theirs: theirs, Desc: "ours:" + da + "|theirs:" + db}
	case *PathoGen:
		j := gen.json
		var base *tree.Node
		var shape string
		switch rng.Intn(4) {
		case 0:
			base, shape = gen.deepChain(rng, size), "deep-chain"
		case 1:
			base, shape = gen.wideFanout(rng, size), "wide-fanout"
		case 2:
			base, shape = gen.duplicateHeavy(rng, size), "dup-heavy"
		default:
			base, shape = gen.collisionAdjacent(rng, size), "collision"
		}
		ours, da := mutateChainJSON(rng, j.sch, j.alloc, base, mutsOurs)
		theirs, db := mutateChainJSON(rng, j.sch, j.alloc, base, mutsTheirs)
		return Triple{Base: base, Ours: ours, Theirs: theirs, Desc: shape + ":ours:" + da + "|theirs:" + db}
	}
	panic(fmt.Sprintf("proptest: generator %q cannot produce merge triples", g.Name()))
}

func mutateChainPy(tg *corpus.TreeGen, from *tree.Node, muts int) (*tree.Node, string) {
	dst, desc := from, ""
	for i := 0; i < muts; i++ {
		var kind corpus.EditKind
		dst, kind = tg.Mutate(dst)
		if desc != "" {
			desc += "+"
		}
		desc += kind.String()
	}
	return dst, desc
}

func mutateChainJSON(rng *rand.Rand, sch *sig.Schema, alloc *uri.Allocator, from *tree.Node, muts int) (*tree.Node, string) {
	dst, desc := from, ""
	for i := 0; i < muts; i++ {
		var kind string
		dst, kind = mutateJSON(rng, sch, alloc, dst)
		if desc != "" {
			desc += "+"
		}
		desc += kind
	}
	return dst, desc
}

// TripleRun drives one generator for a sequence of merge triples with the
// same determinism contract as Run: the triple sequence is a pure function
// of the config seed, and the checksum folds every tree digest plus the
// oracle's per-triple observation.
type TripleRun struct {
	Gen Generator
	Cfg Config

	rng      *rand.Rand
	checksum uint64
	triples  int
}

// NewTripleRun returns a merge-triple run of the generator under the
// config.
func NewTripleRun(gen Generator, cfg Config) *TripleRun {
	return &TripleRun{Gen: gen, Cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), checksum: 14695981039346656037}
}

// Next generates the next triple of the sequence and folds its digests
// into the run checksum.
func (r *TripleRun) Next() Triple {
	size := r.Cfg.MinNodes
	if r.Cfg.MaxNodes > r.Cfg.MinNodes {
		size += r.rng.Intn(r.Cfg.MaxNodes - r.Cfg.MinNodes)
	}
	mutsOurs := 1 + r.rng.Intn(r.Cfg.MutationsPerPair)
	mutsTheirs := 1 + r.rng.Intn(r.Cfg.MutationsPerPair)
	tr := genTriple(r.Gen, r.rng, size, mutsOurs, mutsTheirs)
	tr.Iter = r.triples
	r.triples++
	r.fold(tr.Base.ExactHash())
	r.fold(tr.Ours.ExactHash())
	r.fold(tr.Theirs.ExactHash())
	return tr
}

func (r *TripleRun) fold(s string) {
	h := fnv.New64a()
	h.Write([]byte(s))
	r.checksum = (r.checksum ^ h.Sum64()) * 1099511628211
}

// FoldResult mixes the oracle's observation of one triple — merged script
// length and conflict count — into the checksum, so replay equality covers
// the merge outcomes, not just the generated trees.
func (r *TripleRun) FoldResult(mergedEdits, conflicts int) {
	r.fold(fmt.Sprintf("merge:%d:%d", mergedEdits, conflicts))
}

// Checksum returns the determinism checksum accumulated so far.
func (r *TripleRun) Checksum() uint64 { return r.checksum }

// Triples returns how many triples the run has generated.
func (r *TripleRun) Triples() int { return r.triples }

// --- The merge oracle ----------------------------------------------------

// CheckTriple runs the full merge-property oracle on one triple through the
// public structdiff facade: it diffs ancestor→ours and ancestor→theirs over
// a shared allocator, merges the two scripts under the default fail policy,
// and checks either the clean-merge properties (well-typedness,
// both-changes-applied, commutativity, fault rollback) or the conflict
// properties (typed non-empty report, symmetric detection, policy
// resolution). salt deterministically picks the rollback fault position.
// It returns the merged script's edit count and the conflict count for
// checksum folding, and the first property violation as a PropertyError.
func CheckTriple(sch *sig.Schema, tr Triple, salt int64, opts ...structdiff.Option) (mergedEdits, conflicts int, err error) {
	o := append(append([]structdiff.Option(nil), opts...), structdiff.WithSchema(sch))

	// One allocator dominating all three trees, shared by both diffs, so
	// the two scripts draw disjoint fresh URIs exactly as merge.Trees does.
	alloc := uri.NewAllocator()
	for _, t := range []*tree.Node{tr.Base, tr.Ours, tr.Theirs} {
		tree.Walk(t, func(n *tree.Node) { alloc.Reserve(n.URI) })
	}
	do := append(append([]structdiff.Option(nil), o...), structdiff.WithAllocator(alloc))

	ra, err := structdiff.Diff(tr.Base, tr.Ours, do...)
	if err != nil {
		return 0, 0, propErr(PropMergeWellTyped, "diff base→ours failed: %w", err)
	}
	rb, err := structdiff.Diff(tr.Base, tr.Theirs, do...)
	if err != nil {
		return 0, 0, propErr(PropMergeWellTyped, "diff base→theirs failed: %w", err)
	}

	res, err := structdiff.MergeScripts(tr.Base, ra.Script, rb.Script, o...)
	if err != nil {
		conflicts, cerr := checkConflictedTriple(sch, tr, ra.Script, rb.Script, o, err)
		return 0, conflicts, cerr
	}
	return checkCleanTriple(sch, tr, ra.Script, rb.Script, res, o, salt)
}

// checkCleanTriple asserts the clean-merge properties.
func checkCleanTriple(sch *sig.Schema, tr Triple, ra, rb *truechange.Script, res *structdiff.MergeResult, o []structdiff.Option, salt int64) (int, int, error) {
	// Property — well-typedness: the merged script type-checks, keeps the
	// negative-before-positive order, and patches the ancestor closed.
	if err := structdiff.WellTyped(sch, res.Script); err != nil {
		return 0, 0, propErr(PropMergeWellTyped, "merged script is ill-typed: %w", err)
	}
	seenPositive := false
	for i, e := range res.Script.Edits {
		if e.Negative() && seenPositive {
			return 0, 0, propErr(PropMergeWellTyped, "merged negative edit #%d (%s) follows a positive edit", i, e)
		}
		seenPositive = seenPositive || !e.Negative()
	}
	mt, err := mtree.FromTree(sch, tr.Base)
	if err != nil {
		return 0, 0, propErr(PropMergeWellTyped, "ancestor rejected by mtree: %w", err)
	}
	if err := mt.Patch(res.Script); err != nil {
		return 0, 0, propErr(PropMergeWellTyped, "merged script does not patch its ancestor: %w", err)
	}
	if err := mt.CheckClosed(); err != nil {
		return 0, 0, propErr(PropMergeWellTyped, "merged tree is not closed: %w", err)
	}
	merged, err := mt.ToTree(uri.NewAllocator())
	if err != nil {
		return 0, 0, propErr(PropMergeWellTyped, "merged tree does not export: %w", err)
	}

	// Property — both applied: with no conflicts and no auto-resolutions
	// the two scripts touch disjoint typing resources, so applying them
	// sequentially must be legal and land on the very tree the merged
	// script produces. This is the "no change is ever lost" guarantee.
	if res.Stats.Conflicts == 0 && res.Stats.AutoResolved == 0 {
		seq, err := mtree.FromTree(sch, tr.Base)
		if err != nil {
			return 0, 0, propErr(PropMergeBothApplied, "ancestor rejected by mtree: %w", err)
		}
		if err := seq.Patch(ra); err != nil {
			return 0, 0, propErr(PropMergeBothApplied, "ours' script does not patch the ancestor: %w", err)
		}
		if err := seq.Patch(rb); err != nil {
			return 0, 0, propErr(PropMergeBothApplied, "theirs' script does not apply after ours despite a disjoint merge: %w", err)
		}
		if !seq.EqualTree(merged) {
			return 0, 0, propErr(PropMergeBothApplied, "sequential application differs from the merged script:\nsequential: %s\nmerged:     %s", seq, mt)
		}
	}

	// Property — commutativity: merging (theirs, ours) must also succeed,
	// with mirrored statistics, and patch the ancestor to an equal tree.
	sres, err := structdiff.MergeScripts(tr.Base, rb, ra, o...)
	if err != nil {
		return 0, 0, propErr(PropMergeCommutes, "swapped merge failed where the original succeeded: %w", err)
	}
	if sres.Stats.Conflicts != res.Stats.Conflicts || sres.Stats.AutoResolved != res.Stats.AutoResolved {
		return 0, 0, propErr(PropMergeCommutes, "swapped merge stats differ: %d conflicts/%d auto vs %d/%d",
			sres.Stats.Conflicts, sres.Stats.AutoResolved, res.Stats.Conflicts, res.Stats.AutoResolved)
	}
	smt, err := mtree.FromTree(sch, tr.Base)
	if err != nil {
		return 0, 0, propErr(PropMergeCommutes, "ancestor rejected by mtree: %w", err)
	}
	if err := smt.Patch(sres.Script); err != nil {
		return 0, 0, propErr(PropMergeCommutes, "swapped merged script does not patch the ancestor: %w", err)
	}
	if !smt.EqualTree(merged) {
		return 0, 0, propErr(PropMergeCommutes, "merge is order-dependent:\nours-first:   %s\ntheirs-first: %s", mt, smt)
	}

	// Property — fault rollback: a merged patch is transactional like any
	// other; a fault at edit salt%len must leave the ancestor untouched.
	if n := len(res.Script.Edits); n > 0 {
		at := uint64(salt) % uint64(n)
		rmt, err := mtree.FromTree(sch, tr.Base)
		if err != nil {
			return 0, 0, propErr(PropMergeRollback, "ancestor rejected by mtree: %w", err)
		}
		before := rmt.String()
		rmt.InjectFaults(faultinject.New(salt, faultinject.Fault{
			Site: mtree.FaultSiteEdit, Kind: faultinject.Error, After: at, Times: 1,
		}))
		if err := rmt.Patch(res.Script); err == nil {
			return 0, 0, propErr(PropMergeRollback, "merged patch succeeded despite a fault injected at edit %d of %d", at, n)
		} else if !errors.Is(err, faultinject.ErrInjected) {
			return 0, 0, propErr(PropMergeRollback, "merged patch failed, but not with the injected fault: %w", err)
		}
		if after := rmt.String(); after != before {
			return 0, 0, propErr(PropMergeRollback, "failed merged patch mutated the ancestor:\nbefore: %s\nafter:  %s", before, after)
		}
		if err := rmt.Patch(res.Script); err != nil {
			return 0, 0, propErr(PropMergeRollback, "re-patch after rollback failed: %w", err)
		}
		if !rmt.EqualTree(merged) {
			return 0, 0, propErr(PropMergeRollback, "re-patched tree after rollback differs from the merged tree")
		}
	}
	return len(res.Script.Edits), len(res.Conflicts), nil
}

// checkConflictedTriple asserts the conflict-path properties given the
// fail-policy error of the original merge.
func checkConflictedTriple(sch *sig.Schema, tr Triple, ra, rb *truechange.Script, o []structdiff.Option, mergeErr error) (int, error) {
	// Property — conflicts are reported, never dropped: the only
	// legitimate merge failure on two valid scripts is a typed conflict
	// report carrying at least one fully populated conflict.
	if !errors.Is(mergeErr, structdiff.ErrMergeConflict) {
		return 0, propErr(PropMergeWellTyped, "merge failed with a non-conflict error: %w", mergeErr)
	}
	var ce *structdiff.MergeConflictError
	if !errors.As(mergeErr, &ce) || len(ce.Conflicts) == 0 {
		return 0, propErr(PropMergeConflictReported, "ErrMergeConflict carries no conflict list: %w", mergeErr)
	}
	for i, c := range ce.Conflicts {
		if len(c.Ours) == 0 || len(c.Theirs) == 0 {
			return 0, propErr(PropMergeConflictReported, "conflict %d (%s) is missing a side: ours=%d theirs=%d edits",
				i, c.Kind, len(c.Ours), len(c.Theirs))
		}
		if c.Slot == nil && c.URI == 0 {
			return 0, propErr(PropMergeConflictReported, "conflict %d (%s) names neither a node nor a slot", i, c.Kind)
		}
	}

	// Property — commutativity of detection: swapping the sides must
	// conflict too, with the same number of conflicts.
	_, serr := structdiff.MergeScripts(tr.Base, rb, ra, o...)
	var sce *structdiff.MergeConflictError
	if !errors.As(serr, &sce) {
		return len(ce.Conflicts), propErr(PropMergeCommutes, "swapped merge did not conflict where the original did: %v", serr)
	}
	if len(sce.Conflicts) != len(ce.Conflicts) {
		return len(ce.Conflicts), propErr(PropMergeCommutes, "conflict detection is order-dependent: %d vs %d conflicts",
			len(ce.Conflicts), len(sce.Conflicts))
	}

	// Property — policy resolution: ours and theirs must both turn the
	// conflict into a clean, well-typed, patchable script and record every
	// resolution.
	for _, p := range []structdiff.MergePolicy{structdiff.MergePolicyOurs, structdiff.MergePolicyTheirs} {
		po := append(append([]structdiff.Option(nil), o...), structdiff.WithMergePolicy(p))
		pres, err := structdiff.MergeScripts(tr.Base, ra, rb, po...)
		if err != nil {
			return len(ce.Conflicts), propErr(PropMergeResolves, "policy %v failed to resolve: %w", p, err)
		}
		if len(pres.Conflicts) == 0 {
			return len(ce.Conflicts), propErr(PropMergeResolves, "policy %v resolved without recording any conflict", p)
		}
		for _, c := range pres.Conflicts {
			if c.Resolution != p {
				return len(ce.Conflicts), propErr(PropMergeResolves, "policy %v recorded a conflict resolved as %v", p, c.Resolution)
			}
		}
		if err := structdiff.WellTyped(sch, pres.Script); err != nil {
			return len(ce.Conflicts), propErr(PropMergeResolves, "policy %v produced an ill-typed script: %w", p, err)
		}
		mt, err := mtree.FromTree(sch, tr.Base)
		if err != nil {
			return len(ce.Conflicts), propErr(PropMergeResolves, "ancestor rejected by mtree: %w", err)
		}
		if err := mt.Patch(pres.Script); err != nil {
			return len(ce.Conflicts), propErr(PropMergeResolves, "policy %v script does not patch the ancestor: %w", p, err)
		}
		if err := mt.CheckClosed(); err != nil {
			return len(ce.Conflicts), propErr(PropMergeResolves, "policy %v merged tree is not closed: %w", p, err)
		}
	}
	return len(ce.Conflicts), nil
}

// --- Triple shrinking ----------------------------------------------------

// TripleProperty is the predicate ShrinkTriple preserves: nil means the
// triple passes, non-nil means it fails (the failure being minimized).
type TripleProperty func(base, ours, theirs *tree.Node) error

// ShrinkTriple minimizes (base, ours, theirs) while prop keeps failing,
// using the same schema-generic candidate enumeration as ShrinkPair on one
// side at a time (descendants first — merge failures usually live in the
// edits, not the ancestor). It returns the smallest failing triple found,
// the failure it exhibits, and the number of property evaluations spent.
func (sh *Shrinker) ShrinkTriple(base, ours, theirs *tree.Node, prop TripleProperty) (*tree.Node, *tree.Node, *tree.Node, error, int) {
	evals := 0
	lastErr := prop(base, ours, theirs)
	evals++
	if lastErr == nil {
		return base, ours, theirs, nil, evals
	}
	sides := [3]**tree.Node{&theirs, &ours, &base}
	for {
		improved := false
		for _, side := range sides {
			cur := *side
			for _, cand := range sh.candidates(cur) {
				if cand.Size() >= cur.Size() {
					continue
				}
				if evals >= sh.MaxEvals {
					return base, ours, theirs, lastErr, evals
				}
				saved := *side
				*side = cand
				err := prop(base, ours, theirs)
				evals++
				if err == nil {
					*side = saved
					continue // candidate no longer fails; keep looking
				}
				lastErr = err
				improved = true
				break // restart candidate enumeration from the smaller triple
			}
		}
		if !improved {
			return base, ours, theirs, lastErr, evals
		}
	}
}

// --- Triple reproducers --------------------------------------------------

// TripleReproducer is one committed merge-regression entry: a minimized
// failing triple serialized as S-expressions (which, unlike JSON values,
// survive NaN and ±Inf literals; URIs are reallocated on load, which is
// sound — every merge property is URI-independent). Entries live under
// testdata/regress/merge and TestMergeRegressionCorpus replays them all.
type TripleReproducer struct {
	// Lang names the generator schema: "pylang", "jsonlang", or "patho".
	Lang string `json:"lang"`
	// Property is the merge property that failed (PropMerge* constants).
	Property string `json:"property"`
	// Seed is the run seed the failure was found under.
	Seed int64 `json:"seed"`
	// Note describes the failure and, once fixed, the fix.
	Note string `json:"note,omitempty"`
	// Base, Ours, and Theirs are the shrunk triple, as tree S-expressions.
	Base   string `json:"base"`
	Ours   string `json:"ours"`
	Theirs string `json:"theirs"`
}

// NewTripleReproducer serializes a merge failure into a reproducer.
func NewTripleReproducer(f *TripleFailure) TripleReproducer {
	return TripleReproducer{
		Lang:     f.Generator,
		Property: f.Property,
		Seed:     f.Seed,
		Note:     f.Err.Error(),
		Base:     tree.EncodeSExpr(f.Triple.Base),
		Ours:     tree.EncodeSExpr(f.Triple.Ours),
		Theirs:   tree.EncodeSExpr(f.Triple.Theirs),
	}
}

// Trees decodes the reproducer's triple against its language schema,
// drawing fresh URIs from one shared allocator.
func (r TripleReproducer) Trees() (sch *sig.Schema, base, ours, theirs *tree.Node, err error) {
	sch, err = SchemaFor(r.Lang)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	alloc := uri.NewAllocator()
	decode := func(role, src string) (*tree.Node, error) {
		n, err := tree.DecodeSExpr(src, sch, alloc)
		if err != nil {
			return nil, fmt.Errorf("proptest: merge reproducer %s: %w", role, err)
		}
		return n, nil
	}
	if base, err = decode("base", r.Base); err != nil {
		return nil, nil, nil, nil, err
	}
	if ours, err = decode("ours", r.Ours); err != nil {
		return nil, nil, nil, nil, err
	}
	if theirs, err = decode("theirs", r.Theirs); err != nil {
		return nil, nil, nil, nil, err
	}
	return sch, base, ours, theirs, nil
}

// Save writes the reproducer into dir under a content-addressed name,
// returning the path. Saving the same reproducer twice is idempotent.
func (r TripleReproducer) Save(dir string) (string, error) {
	return saveJSON(dir, fmt.Sprintf("%s-%s", r.Lang, r.Property), r)
}

// LoadTripleReproducers reads every *.json triple reproducer in dir,
// sorted by name. A missing directory yields an empty slice.
func LoadTripleReproducers(dir string) ([]TripleReproducer, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]TripleReproducer, 0, len(names))
	for _, name := range names {
		r, err := loadJSON[TripleReproducer](filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MergeFuzzSchema is the schema the FuzzMerge target decodes its triples
// against (the jsonlang schema, shared with the pathological generator;
// pylang triples cannot seed a single-schema fuzz target).
func MergeFuzzSchema() *sig.Schema { return jsonlang.Schema() }

// saveJSON writes v into dir under a content-addressed name
// (prefix + first 8 digest hex chars), returning the path.
func saveJSON(dir, prefix string, v any) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	sum := sha256.Sum256(data)
	path := filepath.Join(dir, fmt.Sprintf("%s-%x.json", prefix, sum[:4]))
	return path, os.WriteFile(path, data, 0o644)
}

// loadJSON reads one JSON file into a T.
func loadJSON[T any](path string) (T, error) {
	var v T
	data, err := os.ReadFile(path)
	if err != nil {
		return v, err
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return v, fmt.Errorf("proptest: %s: %w", filepath.Base(path), err)
	}
	return v, nil
}
