package proptest

import (
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/uri"
)

// Shrinker greedily minimizes a failing pair to a small reproducer. It is
// schema-generic: candidate simplifications are derived from the signature
// alone — hoist a subtree into its parent's place (when the sorts agree),
// replace a subtree by the minimal tree of its slot's sort, or promote a
// descendant to the root — so the same shrinker serves pylang, jsonlang,
// and any future language. Shrinking only ever adopts a candidate that is
// strictly smaller AND still fails the property, so it terminates and the
// result reproduces the original failure.
type Shrinker struct {
	sch   *sig.Schema
	alloc *uri.Allocator
	// MaxEvals bounds property evaluations across the whole shrink (the
	// property may be expensive — it usually runs a full diff).
	MaxEvals int

	minBySort map[sig.Sort]*tree.Node
}

// NewShrinker returns a shrinker over the schema drawing fresh URIs from
// alloc.
func NewShrinker(sch *sig.Schema, alloc *uri.Allocator) *Shrinker {
	return &Shrinker{sch: sch, alloc: alloc, MaxEvals: 2000}
}

// Property is the predicate a shrinker preserves: nil means the pair
// passes, non-nil means it fails (the failure being minimized).
type Property func(src, dst *tree.Node) error

// ShrinkPair minimizes (src, dst) while prop keeps failing. It returns the
// smallest failing pair found, the failure it exhibits, and the number of
// property evaluations spent. The input pair must fail prop; if it does
// not, it is returned unchanged with a nil error.
func (sh *Shrinker) ShrinkPair(src, dst *tree.Node, prop Property) (*tree.Node, *tree.Node, error, int) {
	evals := 0
	lastErr := prop(src, dst)
	evals++
	if lastErr == nil {
		return src, dst, nil, evals
	}
	for {
		improved := false
		// Shrink the target first (failures usually live in the edit), then
		// the source, then retry until neither side improves.
		for _, side := range []bool{false, true} {
			cur := dst
			if side {
				cur = src
			}
			for _, cand := range sh.candidates(cur) {
				if cand.Size() >= cur.Size() {
					continue
				}
				if evals >= sh.MaxEvals {
					return src, dst, lastErr, evals
				}
				var err error
				if side {
					err = prop(cand, dst)
				} else {
					err = prop(src, cand)
				}
				evals++
				if err == nil {
					continue // candidate no longer fails; keep looking
				}
				lastErr = err
				if side {
					src = cand
				} else {
					dst = cand
				}
				improved = true
				break // restart candidate enumeration from the smaller pair
			}
		}
		if !improved {
			return src, dst, lastErr, evals
		}
	}
}

// candidates enumerates simplifications of t, biggest reductions first:
// promote a child of the root to be the whole tree, then per-position
// replace a subtree by the minimal tree of its sort or hoist one of its
// kids into its place.
func (sh *Shrinker) candidates(t *tree.Node) []*tree.Node {
	var out []*tree.Node

	// Promote: any direct child becomes the new root (the root slot admits
	// any sort).
	for _, k := range t.Kids {
		out = append(out, sh.clone(k))
	}

	// Positional shrinks, near-root first (breadth-first order) so big
	// subtrees go early.
	type pos struct {
		index int
		node  *tree.Node
		sort  sig.Sort
	}
	var positions []pos
	idx := 0
	var walk func(n *tree.Node, srt sig.Sort)
	walk = func(n *tree.Node, srt sig.Sort) {
		positions = append(positions, pos{index: idx, node: n, sort: srt})
		idx++
		g := sh.sch.Lookup(n.Tag)
		for i, k := range n.Kids {
			walk(k, g.Kids[i].Sort)
		}
	}
	walk(t, sig.Any)

	for _, p := range positions {
		// Replace the subtree by the minimal tree of its slot's sort.
		if min := sh.minimalTree(p.sort); min != nil && min.Size() < p.node.Size() && min.ExactHash() != p.node.ExactHash() {
			out = append(out, sh.replaceAt(t, p.index, min))
		}
		// Hoist a kid whose sort fits the slot.
		g := sh.sch.Lookup(p.node.Tag)
		for i, k := range p.node.Kids {
			kidSort := g.Kids[i].Sort
			res, _ := sh.sch.ResultSort(k.Tag)
			if p.sort == sig.Any || sh.sch.IsSubsort(res, p.sort) || kidSort == p.sort {
				out = append(out, sh.replaceAt(t, p.index, k))
			}
		}
	}
	return out
}

// replaceAt rebuilds t with fresh URIs, substituting repl (cloned) at
// preorder index target.
func (sh *Shrinker) replaceAt(t *tree.Node, target int, repl *tree.Node) *tree.Node {
	idx := 0
	var walk func(n *tree.Node) *tree.Node
	walk = func(n *tree.Node) *tree.Node {
		here := idx
		idx++
		if here == target {
			idx += n.Size() - 1
			return sh.clone(repl)
		}
		kids := make([]*tree.Node, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = walk(k)
		}
		return mustNode(sh.sch, sh.alloc, n.Tag, kids, append([]any(nil), n.Lits...))
	}
	return walk(t)
}

func (sh *Shrinker) clone(n *tree.Node) *tree.Node {
	return tree.Clone(n, sh.alloc, tree.SHA256)
}

// minimalTree returns the smallest tree of the sort (computed once per
// sort by fixpoint over the schema's signatures, with zero-valued
// literals), or nil if the sort admits no finite tree.
func (sh *Shrinker) minimalTree(srt sig.Sort) *tree.Node {
	if sh.minBySort == nil {
		sh.buildMinimal()
	}
	return sh.minBySort[srt]
}

// buildMinimal computes, for every sort mentioned by the schema, the
// minimal finite tree of that sort: repeatedly pick signatures all of
// whose kid sorts already have minimal trees, keeping the smallest result
// per sort, until a fixpoint.
func (sh *Shrinker) buildMinimal() {
	sh.minBySort = make(map[sig.Sort]*tree.Node)
	build := func(g *sig.Sig) *tree.Node {
		kids := make([]*tree.Node, len(g.Kids))
		for i, ks := range g.Kids {
			min := sh.minBySort[ks.Sort]
			if min == nil {
				return nil
			}
			kids[i] = sh.clone(min)
		}
		lits := make([]any, len(g.Lits))
		for i, ls := range g.Lits {
			lits[i] = zeroLit(ls.Type)
		}
		n, err := tree.New(sh.sch, sh.alloc, g.Tag, kids, lits)
		if err != nil {
			return nil
		}
		return n
	}
	for changed := true; changed; {
		changed = false
		for _, tag := range sh.sch.Tags() {
			if tag == sig.RootTag {
				continue
			}
			g := sh.sch.Lookup(tag)
			n := build(g)
			if n == nil {
				continue
			}
			cur := sh.minBySort[g.Result]
			if cur == nil || n.Size() < cur.Size() {
				sh.minBySort[g.Result] = n
				changed = true
			}
		}
	}
	// The Any sort admits every tree; its minimum is the global minimum.
	var global *tree.Node
	for _, n := range sh.minBySort {
		if global == nil || n.Size() < global.Size() {
			global = n
		}
	}
	if global != nil {
		if cur := sh.minBySort[sig.Any]; cur == nil || global.Size() < cur.Size() {
			sh.minBySort[sig.Any] = global
		}
	}
}

func zeroLit(t sig.BaseType) any {
	switch t {
	case sig.StringLit:
		return ""
	case sig.IntLit:
		return int64(0)
	case sig.FloatLit:
		return float64(0)
	case sig.BoolLit:
		return false
	default:
		return int64(0)
	}
}
