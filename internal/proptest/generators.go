package proptest

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/jsonlang"
	"repro/internal/pylang"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/uri"
)

// Generator produces typed (source, target) tree pairs over one schema.
// Implementations must be deterministic: the pair sequence is a pure
// function of the rng states passed to Pair.
type Generator interface {
	// Name identifies the generator in failures and logs.
	Name() string
	// Schema returns the schema every generated tree is typed against.
	Schema() *sig.Schema
	// Alloc returns the allocator generated trees draw URIs from. It
	// dominates every URI the generator has handed out.
	Alloc() *uri.Allocator
	// Pair generates a source tree of roughly size nodes and a target
	// derived from it by the given number of semantic mutations.
	Pair(rng *rand.Rand, size, mutations int) Pair
}

// Generators returns the harness's standard generator set: Python modules,
// JSON documents, and the pathological shape generator.
func Generators() []Generator {
	return []Generator{NewPyGen(), NewJSONGen(), NewPathoGen()}
}

// --- Python modules ------------------------------------------------------

// PyGen generates random Python modules through the corpus generator and
// mutates them with the corpus's semantic edit operators (rename, literal
// change, statement insert/delete, definition move, statement swap,
// conditional wrap, parameter addition, expression replacement) — the same
// edit kinds the paper's keras corpus exhibits.
type PyGen struct {
	f *pylang.Factory
}

// NewPyGen returns a Python module generator with a fresh factory.
func NewPyGen() *PyGen { return &PyGen{f: pylang.NewFactory()} }

func (g *PyGen) Name() string          { return "pylang" }
func (g *PyGen) Schema() *sig.Schema   { return g.f.Schema() }
func (g *PyGen) Alloc() *uri.Allocator { return g.f.Alloc() }

func (g *PyGen) Pair(rng *rand.Rand, size, mutations int) Pair {
	tg := corpus.NewTreeGen(rng, g.f)
	src := tg.Module(size)
	dst := src
	var desc string
	for i := 0; i < mutations; i++ {
		var kind corpus.EditKind
		dst, kind = tg.Mutate(dst)
		if desc != "" {
			desc += "+"
		}
		desc += kind.String()
	}
	return Pair{Source: src, Target: dst, Desc: desc}
}

// --- JSON documents ------------------------------------------------------

// JSONGen generates random JSON document trees (objects, arrays, scalars)
// over the jsonlang schema and mutates them with the JSON semantic
// operators of mutatejson.go.
type JSONGen struct {
	sch   *sig.Schema
	alloc *uri.Allocator
}

// NewJSONGen returns a JSON document generator with a fresh schema and
// allocator.
func NewJSONGen() *JSONGen {
	return &JSONGen{sch: jsonlang.Schema(), alloc: uri.NewAllocator()}
}

func (g *JSONGen) Name() string          { return "jsonlang" }
func (g *JSONGen) Schema() *sig.Schema   { return g.sch }
func (g *JSONGen) Alloc() *uri.Allocator { return g.alloc }

func (g *JSONGen) Pair(rng *rand.Rand, size, mutations int) Pair {
	src := g.value(rng, size)
	dst := src
	var desc string
	for i := 0; i < mutations; i++ {
		var kind string
		dst, kind = mutateJSON(rng, g.sch, g.alloc, dst)
		if desc != "" {
			desc += "+"
		}
		desc += kind
	}
	return Pair{Source: src, Target: dst, Desc: desc}
}

var jsonKeys = []string{"id", "name", "value", "items", "meta", "kind",
	"size", "tags", "refs", "data", "flags", "ts"}

var jsonStrings = []string{"alpha", "beta", "gamma", "delta", "prod",
	"staging", "on", "off", "v1", "v2"}

// jsonNumber draws a float literal, occasionally a special value: NaN
// surfaced a real bug (literal comparisons used Go ==, which disagrees
// with the bit-pattern literal hash on NaN and ±0, so diff-emitted
// unload/update edits could not comply with their own source — see
// tree.LitEqual), and the generator keeps the whole special class in
// every run's input mix so it can never regress silently.
func jsonNumber(rng *rand.Rand) float64 {
	if rng.Intn(16) == 0 {
		switch rng.Intn(4) {
		case 0:
			return math.NaN()
		case 1:
			return math.Inf(1)
		case 2:
			return math.Inf(-1)
		default:
			return math.Copysign(0, -1)
		}
	}
	return float64(rng.Intn(2000)) / 4
}

// value generates one JSON value of roughly budget nodes.
func (g *JSONGen) value(rng *rand.Rand, budget int) *tree.Node {
	if budget <= 2 {
		return g.scalar(rng)
	}
	if rng.Intn(2) == 0 {
		return g.object(rng, budget)
	}
	return g.array(rng, budget)
}

func (g *JSONGen) scalar(rng *rand.Rand) *tree.Node {
	switch rng.Intn(4) {
	case 0:
		return g.must(jsonlang.TagString, nil, []any{jsonStrings[rng.Intn(len(jsonStrings))]})
	case 1:
		return g.must(jsonlang.TagNumber, nil, []any{jsonNumber(rng)})
	case 2:
		return g.must(jsonlang.TagBool, nil, []any{rng.Intn(2) == 0})
	default:
		return g.must(jsonlang.TagNull, nil, nil)
	}
}

func (g *JSONGen) object(rng *rand.Rand, budget int) *tree.Node {
	n := 1 + rng.Intn(4)
	members := make([]*tree.Node, n)
	for i := range members {
		val := g.value(rng, (budget-2*n)/n)
		key := fmt.Sprintf("%s%d", jsonKeys[rng.Intn(len(jsonKeys))], i)
		members[i] = g.must(jsonlang.TagMember, []*tree.Node{val}, []any{key})
	}
	spine := g.spine(jsonlang.TagMemCons, jsonlang.TagMemNil, members)
	return g.must(jsonlang.TagObject, []*tree.Node{spine}, nil)
}

func (g *JSONGen) array(rng *rand.Rand, budget int) *tree.Node {
	n := 1 + rng.Intn(5)
	elems := make([]*tree.Node, n)
	for i := range elems {
		elems[i] = g.value(rng, (budget-n)/n)
	}
	spine := g.spine(jsonlang.TagElCons, jsonlang.TagElNil, elems)
	return g.must(jsonlang.TagArray, []*tree.Node{spine}, nil)
}

func (g *JSONGen) spine(cons, nilTag sig.Tag, elems []*tree.Node) *tree.Node {
	out := g.must(nilTag, nil, nil)
	for i := len(elems) - 1; i >= 0; i-- {
		out = g.must(cons, []*tree.Node{elems[i], out}, nil)
	}
	return out
}

func (g *JSONGen) must(tag sig.Tag, kids []*tree.Node, lits []any) *tree.Node {
	return mustNode(g.sch, g.alloc, tag, kids, lits)
}

func mustNode(sch *sig.Schema, alloc *uri.Allocator, tag sig.Tag, kids []*tree.Node, lits []any) *tree.Node {
	n, err := tree.New(sch, alloc, tag, kids, lits)
	if err != nil {
		panic(fmt.Sprintf("proptest: generator built an invalid node: %v", err))
	}
	return n
}

// --- Pathological shapes -------------------------------------------------

// PathoGen generates adversarial tree shapes over the jsonlang schema:
// deep chains (nested single-element arrays), wide fan-outs (one container
// with hundreds of children), duplicate-subtree-heavy trees (one random
// subtree repeated many times, stressing the share-assignment heuristics),
// and hash-collision-adjacent shapes (structurally equivalent subtrees
// differing only in literals, which collide under the structural hash and
// force the literal-preference tie-break). RTED-style evaluations show
// robustness claims need exactly these shapes, not just volume.
type PathoGen struct {
	json *JSONGen
}

// NewPathoGen returns a pathological shape generator.
func NewPathoGen() *PathoGen { return &PathoGen{json: NewJSONGen()} }

func (g *PathoGen) Name() string          { return "patho" }
func (g *PathoGen) Schema() *sig.Schema   { return g.json.sch }
func (g *PathoGen) Alloc() *uri.Allocator { return g.json.alloc }

func (g *PathoGen) Pair(rng *rand.Rand, size, mutations int) Pair {
	var src *tree.Node
	var shape string
	switch rng.Intn(4) {
	case 0:
		src, shape = g.deepChain(rng, size), "deep-chain"
	case 1:
		src, shape = g.wideFanout(rng, size), "wide-fanout"
	case 2:
		src, shape = g.duplicateHeavy(rng, size), "dup-heavy"
	default:
		src, shape = g.collisionAdjacent(rng, size), "collision"
	}
	dst := src
	var desc string
	for i := 0; i < mutations; i++ {
		var kind string
		dst, kind = mutateJSON(rng, g.json.sch, g.json.alloc, dst)
		if desc != "" {
			desc += "+"
		}
		desc += kind
	}
	return Pair{Source: src, Target: dst, Desc: shape + ":" + desc}
}

// deepChain nests single-element arrays size deep: worst case for
// recursive traversals and checkpoint polling.
func (g *PathoGen) deepChain(rng *rand.Rand, size int) *tree.Node {
	j := g.json
	cur := j.scalar(rng)
	for i := 0; i < size/3; i++ {
		spine := j.spine(jsonlang.TagElCons, jsonlang.TagElNil, []*tree.Node{cur})
		cur = j.must(jsonlang.TagArray, []*tree.Node{spine}, nil)
	}
	return cur
}

// wideFanout puts all the budget into one flat container.
func (g *PathoGen) wideFanout(rng *rand.Rand, size int) *tree.Node {
	j := g.json
	n := size
	if n < 4 {
		n = 4
	}
	elems := make([]*tree.Node, n)
	for i := range elems {
		elems[i] = j.scalar(rng)
	}
	spine := j.spine(jsonlang.TagElCons, jsonlang.TagElNil, elems)
	return j.must(jsonlang.TagArray, []*tree.Node{spine}, nil)
}

// duplicateHeavy repeats one random subtree many times: every repetition
// is an exact-equivalence candidate for every other, the worst case for
// the candidate registry and selection heap.
func (g *PathoGen) duplicateHeavy(rng *rand.Rand, size int) *tree.Node {
	j := g.json
	unit := j.value(rng, 8)
	n := size / max(unit.Size(), 1)
	if n < 3 {
		n = 3
	}
	elems := make([]*tree.Node, n)
	for i := range elems {
		elems[i] = tree.Clone(unit, j.alloc, tree.SHA256)
	}
	spine := j.spine(jsonlang.TagElCons, jsonlang.TagElNil, elems)
	return j.must(jsonlang.TagArray, []*tree.Node{spine}, nil)
}

// collisionAdjacent builds many subtrees that are structurally equivalent
// (identical shape and tags) but literally distinct, so they all collide
// under the structural hash and only the literal hash separates them.
func (g *PathoGen) collisionAdjacent(rng *rand.Rand, size int) *tree.Node {
	j := g.json
	n := size / 4
	if n < 3 {
		n = 3
	}
	elems := make([]*tree.Node, n)
	for i := range elems {
		num := j.must(jsonlang.TagNumber, nil, []any{jsonNumber(rng)})
		elems[i] = j.must(jsonlang.TagMember, []*tree.Node{num}, []any{jsonStrings[rng.Intn(len(jsonStrings))]})
	}
	spine := j.spine(jsonlang.TagMemCons, jsonlang.TagMemNil, elems)
	return j.must(jsonlang.TagObject, []*tree.Node{spine}, nil)
}
