package proptest

import (
	"math"
	"math/rand"

	"repro/internal/jsonlang"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/uri"
)

// JSON semantic mutation operators, mirroring the corpus edit kinds on the
// jsonlang schema: literal change, member rename, element/member insertion
// and deletion, element move, and adjacent-element swap. Each operator
// rebuilds the whole tree with fresh URIs (modelling a reparsed document,
// exactly like corpus mutations) and returns the kind applied. If the
// randomly chosen kind has no applicable site another kind is tried; a
// literal change is always applicable as a last resort via wrapping.

// mutateJSON applies one random semantic edit to the JSON tree.
func mutateJSON(rng *rand.Rand, sch *sig.Schema, alloc *uri.Allocator, t *tree.Node) (*tree.Node, string) {
	kinds := []func(*rand.Rand, *sig.Schema, *uri.Allocator, *tree.Node) *tree.Node{
		jsonLiteral, jsonRename, jsonInsert, jsonDelete, jsonMove, jsonSwap, jsonReplace,
	}
	names := []string{"literal", "rename", "insert", "delete", "move", "swap", "replace"}
	order := rng.Perm(len(kinds))
	for _, k := range order {
		if out := kinds[k](rng, sch, alloc, t); out != nil {
			return out, names[k]
		}
	}
	// Last resort: wrap the whole document in a fresh single-element array.
	spine := mustNode(sch, alloc, jsonlang.TagElCons,
		[]*tree.Node{cloneFresh(alloc, t), mustNode(sch, alloc, jsonlang.TagElNil, nil, nil)}, nil)
	return mustNode(sch, alloc, jsonlang.TagArray, []*tree.Node{spine}, nil), "wrap"
}

func cloneFresh(alloc *uri.Allocator, t *tree.Node) *tree.Node {
	return tree.Clone(t, alloc, tree.SHA256)
}

// sitesWhere returns the preorder indices of nodes satisfying pred.
func sitesWhere(t *tree.Node, pred func(*tree.Node) bool) []int {
	var out []int
	idx := 0
	tree.Walk(t, func(n *tree.Node) {
		if pred(n) {
			out = append(out, idx)
		}
		idx++
	})
	return out
}

// rebuildJSONAt deep-copies t with fresh URIs, replacing the subtree at
// preorder index target by repl(subtree).
func rebuildJSONAt(sch *sig.Schema, alloc *uri.Allocator, t *tree.Node, target int, repl func(*tree.Node) *tree.Node) *tree.Node {
	idx := 0
	var walk func(n *tree.Node) *tree.Node
	walk = func(n *tree.Node) *tree.Node {
		here := idx
		idx++
		if here == target {
			idx += n.Size() - 1
			return repl(n)
		}
		kids := make([]*tree.Node, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = walk(k)
		}
		return mustNode(sch, alloc, n.Tag, kids, append([]any(nil), n.Lits...))
	}
	return walk(t)
}

func pickSite(rng *rand.Rand, sites []int) (int, bool) {
	if len(sites) == 0 {
		return 0, false
	}
	return sites[rng.Intn(len(sites))], true
}

// mutatedNumber returns a literal guaranteed to differ from old under
// tree.LitEqual (bit-pattern inequality): specials collapse to a plain
// number, plain numbers usually step, occasionally jump to a fresh draw
// (which may itself be a special — keeping NaN/±Inf/-0 in the mutated
// value mix, not just in freshly generated trees).
func mutatedNumber(rng *rand.Rand, old float64) float64 {
	if math.IsNaN(old) || math.IsInf(old, 0) {
		return float64(1 + rng.Intn(100))
	}
	if rng.Intn(8) == 0 {
		if v := jsonNumber(rng); math.Float64bits(v) != math.Float64bits(old) {
			return v
		}
	}
	return old + 1 + float64(rng.Intn(7))
}

// jsonLiteral tweaks a scalar's value in place.
func jsonLiteral(rng *rand.Rand, sch *sig.Schema, alloc *uri.Allocator, t *tree.Node) *tree.Node {
	site, ok := pickSite(rng, sitesWhere(t, func(n *tree.Node) bool {
		return n.Tag == jsonlang.TagString || n.Tag == jsonlang.TagNumber || n.Tag == jsonlang.TagBool
	}))
	if !ok {
		return nil
	}
	return rebuildJSONAt(sch, alloc, t, site, func(n *tree.Node) *tree.Node {
		switch n.Tag {
		case jsonlang.TagString:
			return mustNode(sch, alloc, jsonlang.TagString, nil, []any{n.Lits[0].(string) + "x"})
		case jsonlang.TagNumber:
			return mustNode(sch, alloc, jsonlang.TagNumber, nil, []any{mutatedNumber(rng, n.Lits[0].(float64))})
		default:
			return mustNode(sch, alloc, jsonlang.TagBool, nil, []any{!n.Lits[0].(bool)})
		}
	})
}

// jsonRename renames an object member's key, keeping its value subtree.
func jsonRename(rng *rand.Rand, sch *sig.Schema, alloc *uri.Allocator, t *tree.Node) *tree.Node {
	site, ok := pickSite(rng, sitesWhere(t, func(n *tree.Node) bool {
		return n.Tag == jsonlang.TagMember
	}))
	if !ok {
		return nil
	}
	return rebuildJSONAt(sch, alloc, t, site, func(n *tree.Node) *tree.Node {
		return mustNode(sch, alloc, jsonlang.TagMember,
			[]*tree.Node{cloneFresh(alloc, n.Kids[0])}, []any{n.Lits[0].(string) + "_r"})
	})
}

func isElemSpine(n *tree.Node) bool {
	return n.Tag == jsonlang.TagElCons || n.Tag == jsonlang.TagElNil
}

func spineElems(spine *tree.Node) []*tree.Node {
	var out []*tree.Node
	for spine != nil && len(spine.Kids) == 2 {
		out = append(out, spine.Kids[0])
		spine = spine.Kids[1]
	}
	return out
}

func elemSpine(sch *sig.Schema, alloc *uri.Allocator, cons, nilTag sig.Tag, elems []*tree.Node) *tree.Node {
	out := mustNode(sch, alloc, nilTag, nil, nil)
	for i := len(elems) - 1; i >= 0; i-- {
		out = mustNode(sch, alloc, cons, []*tree.Node{elems[i], out}, nil)
	}
	return out
}

// jsonInsert inserts a fresh scalar at the head of an element spine.
func jsonInsert(rng *rand.Rand, sch *sig.Schema, alloc *uri.Allocator, t *tree.Node) *tree.Node {
	site, ok := pickSite(rng, sitesWhere(t, isElemSpine))
	if !ok {
		return nil
	}
	fresh := mustNode(sch, alloc, jsonlang.TagNumber, nil, []any{jsonNumber(rng)})
	return rebuildJSONAt(sch, alloc, t, site, func(spine *tree.Node) *tree.Node {
		elems := spineElems(spine)
		out := make([]*tree.Node, 0, len(elems)+1)
		out = append(out, fresh)
		for _, e := range elems {
			out = append(out, cloneFresh(alloc, e))
		}
		return elemSpine(sch, alloc, jsonlang.TagElCons, jsonlang.TagElNil, out)
	})
}

// jsonDelete drops the head of a non-trailing element or member spine.
func jsonDelete(rng *rand.Rand, sch *sig.Schema, alloc *uri.Allocator, t *tree.Node) *tree.Node {
	site, ok := pickSite(rng, sitesWhere(t, func(n *tree.Node) bool {
		return (n.Tag == jsonlang.TagElCons || n.Tag == jsonlang.TagMemCons) && len(n.Kids) == 2
	}))
	if !ok {
		return nil
	}
	return rebuildJSONAt(sch, alloc, t, site, func(spine *tree.Node) *tree.Node {
		return cloneFresh(alloc, spine.Kids[1]) // drop the head, keep the tail
	})
}

// jsonMove moves an array's head element to the end of the same array.
func jsonMove(rng *rand.Rand, sch *sig.Schema, alloc *uri.Allocator, t *tree.Node) *tree.Node {
	site, ok := pickSite(rng, sitesWhere(t, func(n *tree.Node) bool {
		if n.Tag != jsonlang.TagArray {
			return false
		}
		return len(spineElems(n.Kids[0])) >= 2
	}))
	if !ok {
		return nil
	}
	return rebuildJSONAt(sch, alloc, t, site, func(arr *tree.Node) *tree.Node {
		elems := spineElems(arr.Kids[0])
		moved := make([]*tree.Node, 0, len(elems))
		for _, e := range elems[1:] {
			moved = append(moved, cloneFresh(alloc, e))
		}
		moved = append(moved, cloneFresh(alloc, elems[0]))
		spine := elemSpine(sch, alloc, jsonlang.TagElCons, jsonlang.TagElNil, moved)
		return mustNode(sch, alloc, jsonlang.TagArray, []*tree.Node{spine}, nil)
	})
}

// jsonSwap swaps the two head elements of an element spine.
func jsonSwap(rng *rand.Rand, sch *sig.Schema, alloc *uri.Allocator, t *tree.Node) *tree.Node {
	site, ok := pickSite(rng, sitesWhere(t, func(n *tree.Node) bool {
		return n.Tag == jsonlang.TagElCons && n.Kids[1].Tag == jsonlang.TagElCons
	}))
	if !ok {
		return nil
	}
	return rebuildJSONAt(sch, alloc, t, site, func(spine *tree.Node) *tree.Node {
		first := cloneFresh(alloc, spine.Kids[0])
		second := cloneFresh(alloc, spine.Kids[1].Kids[0])
		tail := cloneFresh(alloc, spine.Kids[1].Kids[1])
		inner := mustNode(sch, alloc, jsonlang.TagElCons, []*tree.Node{first, tail}, nil)
		return mustNode(sch, alloc, jsonlang.TagElCons, []*tree.Node{second, inner}, nil)
	})
}

// jsonReplace replaces a value subtree with a fresh scalar.
func jsonReplace(rng *rand.Rand, sch *sig.Schema, alloc *uri.Allocator, t *tree.Node) *tree.Node {
	site, ok := pickSite(rng, sitesWhere(t, func(n *tree.Node) bool {
		srt, _ := sch.ResultSort(n.Tag)
		return srt == jsonlang.SortValue && n.Size() > 1
	}))
	if !ok {
		return nil
	}
	repl := mustNode(sch, alloc, jsonlang.TagString, nil, []any{jsonStrings[rng.Intn(len(jsonStrings))]})
	return rebuildJSONAt(sch, alloc, t, site, func(*tree.Node) *tree.Node { return repl })
}
