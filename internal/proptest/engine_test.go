package proptest

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faultinject"

	"repro/structdiff"
)

// collectPairs generates n proptest pairs and adapts them to engine tasks.
// The pairs share the generator's allocator, which is not concurrency-safe
// across a batch, so each task gets Alloc nil: the engine then carves its
// own URI block past every tree URI, which is exactly the engine-managed
// mode batch callers use.
func collectPairs(gen Generator, cfg Config, n int) ([]Pair, []structdiff.Pair) {
	run := NewRun(gen, cfg)
	ps := make([]Pair, n)
	eps := make([]structdiff.Pair, n)
	for i := 0; i < n; i++ {
		ps[i] = run.Next()
		eps[i] = structdiff.Pair{Source: ps[i].Source, Target: ps[i].Target, Label: ps[i].Desc}
	}
	return ps, eps
}

// TestEngineBatchAgreesWithDiff runs generated pairs through the
// concurrent engine batch path and asserts each batch result agrees with
// the single-shot facade Diff on the same pair: same edit count, a
// well-typed script, and convergence to the target.
func TestEngineBatchAgreesWithDiff(t *testing.T) {
	cfg := runConfig()
	cfg.MaxNodes = 120
	const n = 48
	for _, gen := range Generators() {
		gen := gen
		t.Run(gen.Name(), func(t *testing.T) {
			t.Parallel()
			sch := gen.Schema()
			ps, eps := collectPairs(gen, cfg, n)

			eng, err := structdiff.NewEngine(sch, structdiff.WithWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			results, err := eng.DiffBatch(context.Background(), eps)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("pair %d (%q): batch diff failed: %v", i, ps[i].Desc, r.Err)
				}
				if err := structdiff.WellTyped(sch, r.Result.Script); err != nil {
					t.Fatalf("pair %d: batch script ill-typed: %v", i, err)
				}
				if r.Result.Patched.ExactHash() != ps[i].Target.ExactHash() {
					t.Fatalf("pair %d: batch patched tree differs from target", i)
				}
				single, err := structdiff.Diff(ps[i].Source, ps[i].Target, structdiff.WithSchema(sch))
				if err != nil {
					t.Fatalf("pair %d: single diff failed: %v", i, err)
				}
				if got, want := len(r.Result.Script.Edits), len(single.Script.Edits); got != want {
					t.Fatalf("pair %d (%q): batch script has %d edits, single diff %d",
						i, ps[i].Desc, got, want)
				}
				// Stats.Edits is the paper's compound conciseness metric,
				// not the raw edit count.
				if got, want := r.Stats.Edits, r.Result.Script.EditCount(); got != want {
					t.Fatalf("pair %d: Stats.Edits = %d, script EditCount() = %d", i, got, want)
				}
			}
		})
	}
}

// TestEngineBatchFaultFallback arms a deterministic probabilistic Panic
// fault at the engine's diff site under FallbackRootReplace (panics are in
// the rescue set; plain errors deliberately are not): every pair must
// still come back with a well-typed convergent script, faulted pairs
// served by the degraded root-replacement path and marked as such in
// their stats.
func TestEngineBatchFaultFallback(t *testing.T) {
	cfg := runConfig()
	cfg.MaxNodes = 80
	const n = 32
	gen := Generators()[0]
	sch := gen.Schema()
	ps, eps := collectPairs(gen, cfg, n)

	inj := structdiff.NewFaultInjector(cfg.Seed, structdiff.Fault{
		Site: structdiff.FaultSiteDiff, Kind: structdiff.FaultPanic, Prob: 0.5,
	})
	eng, err := structdiff.NewEngine(sch,
		structdiff.WithWorkers(4),
		structdiff.WithFaultInjection(inj),
		structdiff.WithFallback(structdiff.FallbackRootReplace),
	)
	if err != nil {
		t.Fatal(err)
	}
	results, err := eng.DiffBatch(context.Background(), eps)
	if err != nil {
		t.Fatal(err)
	}
	fallbacks := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("pair %d: failed despite FallbackRootReplace: %v", i, r.Err)
		}
		if err := structdiff.WellTyped(sch, r.Result.Script); err != nil {
			t.Fatalf("pair %d: script ill-typed (fallback=%v): %v", i, r.Stats.Fallback, err)
		}
		if r.Result.Patched.ExactHash() != ps[i].Target.ExactHash() {
			t.Fatalf("pair %d: patched tree differs from target (fallback=%v)", i, r.Stats.Fallback)
		}
		if r.Stats.Fallback {
			fallbacks++
		}
	}
	if fallbacks == 0 {
		t.Fatalf("Prob 0.5 fault over %d pairs never fired", n)
	}
	if fallbacks == n {
		t.Fatalf("Prob 0.5 fault fired on all %d pairs", n)
	}
	t.Logf("%d/%d pairs served by root-replace fallback, all well-typed and convergent", fallbacks, n)
}

// TestEngineBatchFaultNoFallback repeats the fault run under FallbackNone
// and asserts the harness would catch the failure: faulted pairs carry an
// error matching ErrInjected, un-faulted pairs still satisfy the oracle.
func TestEngineBatchFaultNoFallback(t *testing.T) {
	cfg := runConfig()
	cfg.MaxNodes = 80
	const n = 32
	gen := Generators()[0]
	sch := gen.Schema()
	ps, eps := collectPairs(gen, cfg, n)

	inj := structdiff.NewFaultInjector(cfg.Seed, structdiff.Fault{
		Site: structdiff.FaultSiteDiff, Kind: structdiff.FaultError, Prob: 0.5,
	})
	eng, err := structdiff.NewEngine(sch,
		structdiff.WithWorkers(4),
		structdiff.WithFaultInjection(inj),
	)
	if err != nil {
		t.Fatal(err)
	}
	results, err := eng.DiffBatch(context.Background(), eps)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for i, r := range results {
		if r.Err != nil {
			if !errors.Is(r.Err, faultinject.ErrInjected) {
				t.Fatalf("pair %d: unexpected failure (not the injected fault): %v", i, r.Err)
			}
			failed++
			continue
		}
		if err := structdiff.WellTyped(sch, r.Result.Script); err != nil {
			t.Fatalf("pair %d: script ill-typed: %v", i, err)
		}
		if r.Result.Patched.ExactHash() != ps[i].Target.ExactHash() {
			t.Fatalf("pair %d: patched tree differs from target", i)
		}
	}
	if failed == 0 || failed == n {
		t.Fatalf("Prob 0.5 fault failed %d/%d pairs; want a proper mix", failed, n)
	}
	t.Logf("%d/%d pairs failed with the injected fault, the rest converged", failed, n)
}
