package proptest

import (
	"errors"
	"fmt"

	"repro/internal/derrors"
	"repro/internal/faultinject"
	"repro/internal/mtree"
	"repro/internal/sig"
	"repro/internal/truechange"

	"repro/structdiff"
)

// The pair-oracle properties, named for failure reports and the property
// catalog in docs/TESTING.md (the merge-oracle properties live in
// merge.go).
const (
	PropWellTyped   = "well-typed"        // Conjecture 4.2: scripts pass the linear type check and Comply
	PropConvergence = "convergence"       // Conjecture 4.3: patch(diff(a,b), a) ≃ b
	PropSelfDiff    = "empty-self-diff"   // diff(a,a) = ∅
	PropRollback    = "fault-rollback"    // failed patches roll back exactly and re-apply cleanly
	PropOrdering    = "edit-ordering"     // all negative edits precede all positive edits
	PropInvert      = "invert-round-trip" // Patch(s); Patch(Invert(s)) is an exact no-op, including NaN/±Inf literals
)

// PropertyError tags an oracle failure with the violated property.
type PropertyError struct {
	Property string
	Err      error
}

func (e *PropertyError) Error() string { return e.Property + ": " + e.Err.Error() }
func (e *PropertyError) Unwrap() error { return e.Err }

func propErr(prop, format string, args ...any) error {
	return &PropertyError{Property: prop, Err: fmt.Errorf(format, args...)}
}

// CheckPair runs the full six-property oracle on one generated pair
// through the public structdiff facade. salt deterministically picks the
// edit index the rollback property injects its fault at. It returns the
// emitted script (also on most failures, for reporting and seeding) and
// the first property violation, tagged with a PropertyError.
//
// The opts are forwarded to every facade call, so the oracle can exercise
// non-default equivalence modes, selection orders, and ablations; a
// WithSchema option is appended automatically.
func CheckPair(sch *sig.Schema, p Pair, salt int64, opts ...structdiff.Option) (*truechange.Script, error) {
	o := append(append([]structdiff.Option(nil), opts...), structdiff.WithSchema(sch))

	res, err := structdiff.Diff(p.Source, p.Target, o...)
	if err != nil {
		return nil, propErr(PropWellTyped, "diff failed: %w", err)
	}
	script := res.Script

	// Property 1 — well-typedness: the emitted script passes the linear
	// type check (closed-to-closed judgement) and complies with the source.
	if err := structdiff.WellTyped(sch, script); err != nil {
		return script, propErr(PropWellTyped, "script is ill-typed: %w", err)
	}
	mt, err := mtree.FromTree(sch, p.Source)
	if err != nil {
		return script, propErr(PropWellTyped, "source tree rejected by mtree: %w", err)
	}
	if err := mt.Comply(script); err != nil {
		return script, propErr(PropWellTyped, "script does not comply with its own source: %w", err)
	}

	// Property 5 — ordering: every negative edit (detach, unload) precedes
	// every positive edit, the §4.4 buffer invariant the semantics relies
	// on.
	if err := checkOrdering(script); err != nil {
		return script, err
	}

	// Property 2 — convergence: patching the source yields a tree
	// structurally and literally equal to the target (URIs may differ).
	if err := mt.Patch(script); err != nil {
		return script, propErr(PropConvergence, "patch failed after passing Comply: %w", err)
	}
	if !mt.EqualTree(p.Target) {
		return script, propErr(PropConvergence, "patched tree differs from target:\npatched: %s\ntarget size %d", mt, p.Target.Size())
	}
	if res.Patched == nil {
		return script, propErr(PropConvergence, "diff returned a nil patched tree")
	}
	if res.Patched.ExactHash() != p.Target.ExactHash() {
		return script, propErr(PropConvergence, "Result.Patched differs from target (exact-hash mismatch)")
	}

	// Property 3 — empty self-diff: diffing a tree against itself yields
	// the empty script.
	selfRes, err := structdiff.Diff(p.Source, p.Source, o...)
	if err != nil {
		return script, propErr(PropSelfDiff, "self-diff failed: %w", err)
	}
	if n := len(selfRes.Script.Edits); n != 0 {
		return script, propErr(PropSelfDiff, "diff(a,a) has %d edits, want 0: %v", n, selfRes.Script.Edits)
	}

	// Property 4 — fault rollback round trip: a patch failing mid-script
	// (deterministic injected fault at edit salt%len) leaves the tree in
	// exactly its pre-patch state, and a clean re-patch then converges.
	if len(script.Edits) > 0 {
		if err := checkRollback(sch, p, script, salt); err != nil {
			return script, err
		}
	}

	// Property 6 — invert round trip: applying the script and then its
	// inverse is an exact no-op, byte-for-byte including URIs. This is the
	// property that pins the PR 4 bug class at the Invert level: literal
	// restoration must use bit-pattern float semantics, so a NaN or −0
	// written by an Update (or re-loaded by an inverted Unload) must come
	// back as exactly the literal the source held.
	if err := checkInvert(sch, p, script); err != nil {
		return script, err
	}
	return script, nil
}

// checkInvert asserts Patch(s); Patch(Invert(s)) restores the source tree
// exactly (the mtree renders identically, so URIs, literals — compared by
// bit pattern — and slot layout all round-trip).
func checkInvert(sch *sig.Schema, p Pair, script *truechange.Script) error {
	mt, err := mtree.FromTree(sch, p.Source)
	if err != nil {
		return propErr(PropInvert, "source tree rejected by mtree: %w", err)
	}
	before := mt.String()
	if err := mt.Patch(script); err != nil {
		return propErr(PropInvert, "forward patch failed: %w", err)
	}
	inv := truechange.Invert(script)
	if err := structdiff.WellTyped(sch, inv); err != nil {
		return propErr(PropInvert, "inverse script is ill-typed: %w", err)
	}
	if err := mt.Patch(inv); err != nil {
		return propErr(PropInvert, "inverse patch failed: %w", err)
	}
	if after := mt.String(); after != before {
		return propErr(PropInvert, "Patch(s); Patch(Invert(s)) is not a no-op:\nbefore: %s\nafter:  %s", before, after)
	}
	if !mt.EqualTree(p.Source) {
		return propErr(PropInvert, "inverted tree differs from the source")
	}
	return nil
}

// checkOrdering asserts the negative-before-positive edit order.
func checkOrdering(s *truechange.Script) error {
	seenPositive := false
	for i, e := range s.Edits {
		if e.Negative() {
			if seenPositive {
				return propErr(PropOrdering, "negative edit #%d (%s) follows a positive edit", i, e)
			}
		} else {
			seenPositive = true
		}
	}
	return nil
}

// checkRollback injects one Error fault at edit salt%len of a fresh patch,
// asserts the failed patch is an exact no-op, then re-patches cleanly and
// asserts convergence.
func checkRollback(sch *sig.Schema, p Pair, script *truechange.Script, salt int64) error {
	at := uint64(salt) % uint64(len(script.Edits))
	mt, err := mtree.FromTree(sch, p.Source)
	if err != nil {
		return propErr(PropRollback, "source tree rejected by mtree: %w", err)
	}
	before := mt.String()
	beforeSize := mt.Size()

	mt.InjectFaults(faultinject.New(salt, faultinject.Fault{
		Site: mtree.FaultSiteEdit, Kind: faultinject.Error, After: at, Times: 1,
	}))
	err = mt.Patch(script)
	if err == nil {
		return propErr(PropRollback, "patch succeeded despite a fault injected at edit %d of %d", at, len(script.Edits))
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		return propErr(PropRollback, "patch failed, but not with the injected fault: %w", err)
	}
	if !errors.Is(err, derrors.ErrNonCompliantScript) {
		return propErr(PropRollback, "patch failure does not match ErrNonCompliantScript: %w", err)
	}
	var pe *mtree.PatchError
	if !errors.As(err, &pe) {
		return propErr(PropRollback, "patch failure is not a *PatchError: %w", err)
	}
	if pe.EditIndex != int(at) {
		return propErr(PropRollback, "fault injected at edit %d, PatchError reports edit %d", at, pe.EditIndex)
	}
	if wantRB := at > 0; pe.RolledBack != wantRB {
		return propErr(PropRollback, "PatchError.RolledBack = %v at edit %d, want %v", pe.RolledBack, at, wantRB)
	}
	if after := mt.String(); after != before || mt.Size() != beforeSize {
		return propErr(PropRollback, "failed patch mutated the tree:\nbefore: %s\nafter:  %s", before, after)
	}

	// The fault was Times:1, so the retry runs clean and must converge.
	if err := mt.Patch(script); err != nil {
		return propErr(PropRollback, "re-patch after rollback failed: %w", err)
	}
	if !mt.EqualTree(p.Target) {
		return propErr(PropRollback, "re-patched tree after rollback differs from target")
	}
	return nil
}
