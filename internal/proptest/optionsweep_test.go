package proptest

import (
	"testing"

	"repro/structdiff"
)

// TestPropertiesOptionSweep runs the oracle over every diff-option
// combination the facade exposes — equivalence mode × selection order ×
// literal-mismatch handling — because the five properties must hold off
// the default path too (ablated modes still have to emit well-typed,
// convergent scripts; only conciseness may degrade). Fewer pairs per cell
// than TestProperties: the sweep is about breadth of configuration, not
// depth of input.
func TestPropertiesOptionSweep(t *testing.T) {
	equivs := []struct {
		name string
		mode structdiff.EquivMode
	}{
		{"structural-litpref", structdiff.StructuralWithLiteralPreference},
		{"exact-only", structdiff.ExactOnly},
		{"structural-nopref", structdiff.StructuralNoPreference},
	}
	orders := []struct {
		name  string
		order structdiff.SelectionOrder
	}{
		{"highest-first", structdiff.HighestFirst},
		{"fifo", structdiff.FIFO},
	}
	lits := []struct {
		name   string
		update bool
	}{{"reload-on-lit", false}, {"update-on-lit", true}}

	cfg := runConfig()
	iters := cfg.Iters / 10
	if iters < 15 {
		iters = 15
	}
	for _, eq := range equivs {
		for _, ord := range orders {
			for _, lit := range lits {
				eq, ord, lit := eq, ord, lit
				t.Run(eq.name+"/"+ord.name+"/"+lit.name, func(t *testing.T) {
					t.Parallel()
					opts := []structdiff.Option{
						structdiff.WithEquivalence(eq.mode),
						structdiff.WithSelectionOrder(ord.order),
					}
					if lit.update {
						opts = append(opts, structdiff.WithUpdateOnLitMismatch())
					}
					for _, gen := range Generators() {
						run := NewRun(gen, cfg)
						for i := 0; i < iters; i++ {
							p := run.Next()
							if _, err := CheckPair(gen.Schema(), p, cfg.Seed+int64(i), opts...); err != nil {
								t.Fatalf("%s iter %d (seed %d, pair %q): %v",
									gen.Name(), i, cfg.Seed, p.Desc, err)
							}
						}
					}
				})
			}
		}
	}
}
