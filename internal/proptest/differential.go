package proptest

import (
	"repro/internal/gumtree"
	"repro/internal/lineardiff"
	"repro/internal/sig"
	"repro/internal/uri"

	"repro/structdiff"
)

// PropDifferential names the differential-mode property in failures.
const PropDifferential = "differential"

// DiffSizes compares one pair's edit-script sizes across the three
// differs. Sizes are comparable in spirit, not unit — truediff counts
// compound truechange edits, lineardiff counts non-copy line operations,
// gumtree counts classic actions — so the harness reports ratios and
// never asserts one differ beats another on a single pair.
type DiffSizes struct {
	Nodes             int // source size, for normalization
	TruediffEdits     int
	LineardiffChanges int
	GumtreeActions    int
}

// Differential cross-checks one pair against the baselines:
//
//   - truediff's script must be well-typed (Conjecture 4.2) — the
//     baselines carry no such obligation, which is the paper's point;
//   - lineardiff's script must apply back to the target (its own
//     correctness contract), sized for the ratio report;
//   - gumtree's matching must drive DiffWithMatching to a script that is
//     again well-typed and converges — the typed bridge makes even a
//     foreign matcher's output type-safe.
//
// It returns the three script sizes for aggregate ratio reporting.
func Differential(sch *sig.Schema, p Pair) (DiffSizes, error) {
	sizes := DiffSizes{Nodes: p.Source.Size()}

	// truediff, through the facade.
	res, err := structdiff.Diff(p.Source, p.Target, structdiff.WithSchema(sch))
	if err != nil {
		return sizes, propErr(PropDifferential, "truediff failed: %w", err)
	}
	if err := structdiff.WellTyped(sch, res.Script); err != nil {
		return sizes, propErr(PropDifferential, "truediff script ill-typed: %w", err)
	}
	sizes.TruediffEdits = res.Script.EditCount()

	// lineardiff baseline: the linear script must reproduce the target.
	ls, err := lineardiff.Diff(p.Source, p.Target)
	if err != nil {
		return sizes, propErr(PropDifferential, "lineardiff failed: %w", err)
	}
	sizes.LineardiffChanges = ls.ChangeCount()
	rebuilt, err := lineardiff.Apply(ls, p.Source, sch, uri.NewAllocator())
	if err != nil {
		return sizes, propErr(PropDifferential, "lineardiff script failed to apply: %w", err)
	}
	if rebuilt.ExactHash() != p.Target.ExactHash() {
		return sizes, propErr(PropDifferential, "lineardiff script does not reproduce the target")
	}

	// gumtree baseline: classic actions, no typedness obligation.
	gs, _ := gumtree.Diff(gumtree.FromTree(p.Source), gumtree.FromTree(p.Target), gumtree.DefaultOptions())
	sizes.GumtreeActions = gs.Len()

	// Typed bridge: gumtree's matching realized as a truechange script
	// must be well-typed and converge, whatever the matcher chose.
	matches := gumtree.MatchTyped(p.Source, p.Target, gumtree.DefaultOptions())
	pairs := make([]structdiff.MatchPair, len(matches))
	for i, m := range matches {
		pairs[i] = structdiff.MatchPair{Src: m.Src, Dst: m.Dst}
	}
	bres, err := structdiff.DiffWithMatching(p.Source, p.Target, pairs, structdiff.WithSchema(sch))
	if err != nil {
		return sizes, propErr(PropDifferential, "DiffWithMatching on gumtree matches failed: %w", err)
	}
	if err := structdiff.WellTyped(sch, bres.Script); err != nil {
		return sizes, propErr(PropDifferential, "bridged gumtree script ill-typed: %w", err)
	}
	if bres.Patched == nil || bres.Patched.ExactHash() != p.Target.ExactHash() {
		return sizes, propErr(PropDifferential, "bridged gumtree script does not converge to the target")
	}
	return sizes, nil
}
