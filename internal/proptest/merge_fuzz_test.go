package proptest

import (
	"hash/fnv"
	"testing"

	"repro/internal/tree"
	"repro/internal/uri"
)

// FuzzMerge is the native fuzz target for the three-way merge: it decodes
// three S-expression trees against the jsonlang schema (S-expressions, not
// JSON, so fuzz-discovered NaN and ±Inf literals survive the corpus) and
// runs the full merge-property oracle on the triple. The oracle's
// properties are universal over valid typed trees, so any violation the
// fuzzer finds — a panic, an ill-typed merged script, a dropped conflict, a
// botched rollback — is a real bug, not a bad input. Inputs that fail to
// decode are skipped: the fuzzer's job here is to explore tree shapes, not
// the S-expression grammar (the codec has its own round-trip fuzz target).
//
// The seed corpus is generated from the jsonlang and pathological triple
// generators, so fuzzing starts from structurally rich merge tasks with
// both clean and conflicting histories.
func FuzzMerge(f *testing.F) {
	cfg := DefaultConfig(1)
	cfg.Iters = 12
	cfg.MinNodes, cfg.MaxNodes = 6, 60
	for _, gen := range []Generator{NewJSONGen(), NewPathoGen()} {
		run := NewTripleRun(gen, cfg)
		for i := 0; i < cfg.Iters; i++ {
			tr := run.Next()
			f.Add(tree.EncodeSExpr(tr.Base), tree.EncodeSExpr(tr.Ours), tree.EncodeSExpr(tr.Theirs))
		}
	}

	sch := MergeFuzzSchema()
	f.Fuzz(func(t *testing.T, baseS, oursS, theirsS string) {
		// Bound raw input size: merge cost grows with tree size, and
		// multi-megabyte S-expressions only slow exploration down.
		if len(baseS)+len(oursS)+len(theirsS) > 1<<16 {
			t.Skip("input too large")
		}
		alloc := uri.NewAllocator()
		base, err := tree.DecodeSExpr(baseS, sch, alloc)
		if err != nil {
			t.Skip("base does not decode")
		}
		ours, err := tree.DecodeSExpr(oursS, sch, alloc)
		if err != nil {
			t.Skip("ours does not decode")
		}
		theirs, err := tree.DecodeSExpr(theirsS, sch, alloc)
		if err != nil {
			t.Skip("theirs does not decode")
		}
		// Derive the rollback fault position deterministically from the
		// input, so every corpus entry replays identically.
		h := fnv.New64a()
		h.Write([]byte(baseS))
		h.Write([]byte(oursS))
		h.Write([]byte(theirsS))
		salt := int64(h.Sum64() % (1 << 62))

		tr := Triple{Base: base, Ours: ours, Theirs: theirs, Desc: "fuzz"}
		if _, _, err := CheckTriple(sch, tr, salt); err != nil {
			t.Fatalf("merge property violated on fuzzed triple: %v\nbase:   %s\nours:   %s\ntheirs: %s",
				err, baseS, oursS, theirsS)
		}
	})
}
