package proptest

import (
	"errors"
	"flag"
	"math/rand"
	"testing"

	"repro/internal/tree"
)

// The harness flags. The seed is logged on every run, so any failure line
// carries everything needed for exact replay:
//
//	go test ./internal/proptest -run TestProperties -proptest.seed=<seed>
//
// -proptest.long switches to the nightly configuration (10× the pairs over
// larger trees); -proptest.save writes shrunk reproducers of any failure
// into testdata/regress for committing.
var (
	flagSeed = flag.Int64("proptest.seed", 1, "seed for the property-based harness (logged; reuse for exact replay)")
	flagLong = flag.Bool("proptest.long", false, "run the nightly long configuration (more pairs, larger trees)")
	flagSave = flag.String("proptest.save", "", "directory to save shrunk reproducers of failures into (e.g. testdata/regress)")
)

func runConfig() Config {
	if *flagLong {
		return LongConfig(*flagSeed)
	}
	return DefaultConfig(*flagSeed)
}

// reportFailure shrinks a failing pair, logs a minimal reproducer, and
// fails the test. The shrink preserves the violated property: a candidate
// pair only counts as "still failing" if the same property fails on it.
func reportFailure(t *testing.T, gen Generator, cfg Config, p Pair, salt int64, err error) {
	t.Helper()
	var pe *PropertyError
	prop := "unknown"
	if errors.As(err, &pe) {
		prop = pe.Property
	}
	f := &Failure{Generator: gen.Name(), Property: prop, Seed: cfg.Seed, Iter: p.Iter, Pair: p, Err: err}

	sh := NewShrinker(gen.Schema(), gen.Alloc())
	check := func(src, dst *tree.Node) error {
		_, cerr := CheckPair(gen.Schema(), Pair{Source: src, Target: dst, Desc: p.Desc}, salt)
		var cpe *PropertyError
		if errors.As(cerr, &cpe) && cpe.Property == prop {
			return cerr
		}
		return nil // passes, or fails a different property: not this failure
	}
	src, dst, serr, evals := sh.ShrinkPair(p.Source, p.Target, check)
	if serr != nil {
		f.Pair = Pair{Source: src, Target: dst, Desc: p.Desc, Iter: p.Iter}
		f.Err = serr
	}
	r := NewReproducer(f)
	t.Logf("shrunk to %d+%d nodes in %d evals\nsource: %s\ntarget: %s",
		src.Size(), dst.Size(), evals, r.Source, r.Target)
	if *flagSave != "" {
		if path, werr := r.Save(*flagSave); werr != nil {
			t.Logf("saving reproducer failed: %v", werr)
		} else {
			t.Logf("reproducer saved to %s", path)
		}
	}
	t.Fatalf("%v\nreplay: go test ./internal/proptest -run 'TestProperties/%s' -proptest.seed=%d",
		f, gen.Name(), cfg.Seed)
}

// TestProperties is the harness's main entry point: for every generator it
// runs cfg.Iters generated pairs (500 in fast mode, 5000 with
// -proptest.long) through the six-property oracle via the public
// structdiff facade. The run seed is logged so any failure replays
// exactly.
func TestProperties(t *testing.T) {
	cfg := runConfig()
	for _, gen := range Generators() {
		gen := gen
		t.Run(gen.Name(), func(t *testing.T) {
			t.Parallel()
			run := NewRun(gen, cfg)
			t.Logf("seed=%d iters=%d nodes=[%d,%d) mutations≤%d",
				cfg.Seed, cfg.Iters, cfg.MinNodes, cfg.MaxNodes, cfg.MutationsPerPair)
			for i := 0; i < cfg.Iters; i++ {
				p := run.Next()
				salt := cfg.Seed + int64(i)
				script, err := CheckPair(gen.Schema(), p, salt)
				if err != nil {
					reportFailure(t, gen, cfg, p, salt, err)
				}
				run.FoldScript(len(script.Edits))
			}
			if run.Pairs() != cfg.Iters {
				t.Fatalf("run generated %d pairs, want %d", run.Pairs(), cfg.Iters)
			}
			t.Logf("checksum=%#016x over %d pairs", run.Checksum(), run.Pairs())
		})
	}
}

// TestPropertiesTinyTrees reruns the oracle with the size window forced
// down to 1–10 nodes: degenerate inputs (single-node trees, empty
// containers, root-only documents) live below the main run's MinNodes
// floor, and boundary bugs live with them.
func TestPropertiesTinyTrees(t *testing.T) {
	cfg := runConfig()
	cfg.MinNodes, cfg.MaxNodes = 1, 10
	cfg.Iters /= 2
	for _, gen := range Generators() {
		gen := gen
		t.Run(gen.Name(), func(t *testing.T) {
			t.Parallel()
			run := NewRun(gen, cfg)
			for i := 0; i < cfg.Iters; i++ {
				p := run.Next()
				salt := cfg.Seed + int64(i)
				if _, err := CheckPair(gen.Schema(), p, salt); err != nil {
					reportFailure(t, gen, cfg, p, salt, err)
				}
			}
			t.Logf("checksum=%#016x over %d tiny pairs (seed=%d)", run.Checksum(), run.Pairs(), cfg.Seed)
		})
	}
}

// TestDeterministicReplay asserts exact replay: two runs with the same
// seed produce bit-identical pair sequences and scripts (compared via the
// run checksum, which folds in every tree digest and script length), and a
// different seed produces a different sequence.
func TestDeterministicReplay(t *testing.T) {
	const iters = 40
	cfg := DefaultConfig(*flagSeed)
	cfg.Iters = iters
	for _, gen := range Generators() {
		gen := gen
		t.Run(gen.Name(), func(t *testing.T) {
			t.Parallel()
			sum := func(c Config) uint64 {
				run := NewRun(gen, c)
				for i := 0; i < c.Iters; i++ {
					p := run.Next()
					script, err := CheckPair(gen.Schema(), p, c.Seed+int64(i))
					if err != nil {
						t.Fatalf("iter %d: %v", i, err)
					}
					run.FoldScript(len(script.Edits))
				}
				return run.Checksum()
			}
			a, b := sum(cfg), sum(cfg)
			if a != b {
				t.Fatalf("same seed, different checksums: %#x vs %#x", a, b)
			}
			other := cfg
			other.Seed += 1000003
			if c := sum(other); c == a {
				t.Fatalf("different seeds produced the same checksum %#x", a)
			}
			t.Logf("checksum=%#016x replays exactly (seed=%d, %d pairs)", a, cfg.Seed, iters)
		})
	}
}

// TestDifferential cross-checks truediff against the lineardiff and
// gumtree baselines on generated pairs: truediff's scripts must be
// well-typed (the baselines carry no such obligation), lineardiff's must
// apply back to the target, and gumtree's matching must bridge into a
// well-typed convergent script. Aggregate size ratios are reported, never
// asserted — per-pair winners are legitimately noisy.
func TestDifferential(t *testing.T) {
	cfg := runConfig()
	iters := cfg.Iters / 5
	if iters < 20 {
		iters = 20
	}
	for _, gen := range Generators() {
		gen := gen
		t.Run(gen.Name(), func(t *testing.T) {
			t.Parallel()
			run := NewRun(gen, cfg)
			var nodes, td, ld, gt int
			for i := 0; i < iters; i++ {
				p := run.Next()
				sizes, err := Differential(gen.Schema(), p)
				if err != nil {
					t.Fatalf("iter %d (seed %d, pair %q): %v", i, cfg.Seed, p.Desc, err)
				}
				nodes += sizes.Nodes
				td += sizes.TruediffEdits
				ld += sizes.LineardiffChanges
				gt += sizes.GumtreeActions
			}
			t.Logf("%d pairs, %d source nodes: truediff %d edits, lineardiff %d changes, gumtree %d actions (ratios per truediff edit: linear %.2f, gumtree %.2f)",
				iters, nodes, td, ld, gt,
				float64(ld)/float64(max(td, 1)), float64(gt)/float64(max(td, 1)))
		})
	}
}

// TestRegressionCorpus replays every committed reproducer in
// testdata/regress through the full oracle. Each entry is a shrunk pair
// that once violated a property; all must pass now and forever.
func TestRegressionCorpus(t *testing.T) {
	rs, err := LoadReproducers("testdata/regress")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Log("no committed reproducers")
	}
	for _, r := range rs {
		r := r
		t.Run(r.Lang+"/"+r.Property, func(t *testing.T) {
			sch, src, dst, err := r.Trees()
			if err != nil {
				t.Fatal(err)
			}
			p := Pair{Source: src, Target: dst, Desc: "regress"}
			if _, err := CheckPair(sch, p, r.Seed); err != nil {
				t.Fatalf("committed reproducer fails again (note: %s): %v", r.Note, err)
			}
		})
	}
}

// TestShrinkerMinimalTrees sanity-checks the schema-generic minimal-tree
// fixpoint on both schemas: every generated pair's root must be shrinkable
// at least in principle (a minimal tree exists for the root's result
// sort).
func TestShrinkerMinimalTrees(t *testing.T) {
	for _, gen := range Generators() {
		sh := NewShrinker(gen.Schema(), gen.Alloc())
		p := gen.Pair(newTestRNG(*flagSeed), 30, 1)
		res, ok := gen.Schema().ResultSort(p.Source.Tag)
		if !ok {
			t.Fatalf("%s: root tag %q has no result sort", gen.Name(), p.Source.Tag)
		}
		min := sh.minimalTree(res)
		if min == nil {
			t.Fatalf("%s: no minimal tree for root sort %q", gen.Name(), res)
		}
		if min.Size() > p.Source.Size() {
			t.Fatalf("%s: minimal tree of sort %q has %d nodes, generated root only %d",
				gen.Name(), res, min.Size(), p.Source.Size())
		}
	}
}

func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
