package proptest

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var flagRegen = flag.Bool("proptest.regen", false,
	"regenerate the native fuzz corpora from proptest-generated seeds (writes into sibling packages' testdata)")

// The three native fuzz targets and where their committed corpora live,
// relative to this package. The truechange targets take JSON-encoded
// scripts, so they share the ScriptSeeds corpus (real scripts from real
// diffs, every edit kind represented); the mtree agreement target takes
// raw bytes for its own decoder, so it gets ByteSeeds (inputs selected to
// decode to fully-compliant and mid-script-failing scripts).
var fuzzCorpora = []struct {
	dir    string
	script bool // ScriptSeeds (JSON) vs ByteSeeds (raw)
}{
	{dir: "../truechange/testdata/fuzz/FuzzCodecRoundTrip", script: true},
	{dir: "../truechange/testdata/fuzz/FuzzCheckEditNoPanic", script: true},
	{dir: "../mtree/testdata/fuzz/FuzzTypecheckPatchAgreement", script: false},
}

// TestRegenerateFuzzCorpora regenerates the committed fuzz corpora when
// run with -proptest.regen:
//
//	go test ./internal/proptest -run TestRegenerateFuzzCorpora -proptest.regen
//
// Without the flag it instead verifies the committed corpora exist and are
// well-formed (every file carries the native fuzz header), so a corpus
// that rots — or a target that moves without its seeds — fails loudly.
func TestRegenerateFuzzCorpora(t *testing.T) {
	if *flagRegen {
		cfg := DefaultConfig(*flagSeed)
		cfg.Iters = 40 // enough pairs for a diverse script pool
		scripts, err := ScriptSeeds(cfg, 12)
		if err != nil {
			t.Fatal(err)
		}
		bytes := ByteSeeds(*flagSeed, 6)
		if len(bytes) == 0 {
			t.Fatal("ByteSeeds found no interesting inputs")
		}
		for _, c := range fuzzCorpora {
			in := scripts
			if !c.script {
				in = bytes
			}
			n, err := WriteGoFuzzCorpus(c.dir, in)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %d seeds into %s", n, c.dir)
		}
		return
	}

	for _, c := range fuzzCorpora {
		entries, err := os.ReadDir(c.dir)
		if err != nil {
			t.Fatalf("fuzz corpus missing (regenerate with -proptest.regen): %v", err)
		}
		seeds := 0
		for _, e := range entries {
			if e.IsDir() || !strings.HasPrefix(e.Name(), "proptest-seed-") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(c.dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(string(data), "go test fuzz v1\n") {
				t.Fatalf("%s/%s is not a native fuzz corpus file", c.dir, e.Name())
			}
			seeds++
		}
		if seeds == 0 {
			t.Fatalf("%s has no proptest seeds (regenerate with -proptest.regen)", c.dir)
		}
	}
}
