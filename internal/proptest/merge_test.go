package proptest

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/tree"
)

// mergeRunConfig derives the merge harness configuration from the shared
// flags: half the pair iterations (each triple runs two diffs and several
// merges), still comfortably past 200 generated triples per generator in
// fast mode.
func mergeRunConfig() Config {
	cfg := runConfig()
	cfg.Iters /= 2
	return cfg
}

// reportTripleFailure shrinks a failing triple, logs a minimal reproducer,
// and fails the test. The shrink preserves the violated property: a
// candidate triple only counts as "still failing" if the same property
// fails on it.
func reportTripleFailure(t *testing.T, gen Generator, cfg Config, tr Triple, salt int64, err error) {
	t.Helper()
	var pe *PropertyError
	prop := "unknown"
	if errors.As(err, &pe) {
		prop = pe.Property
	}
	f := &TripleFailure{Generator: gen.Name(), Property: prop, Seed: cfg.Seed, Iter: tr.Iter, Triple: tr, Err: err}

	sh := NewShrinker(gen.Schema(), gen.Alloc())
	check := func(base, ours, theirs *tree.Node) error {
		_, _, cerr := CheckTriple(gen.Schema(), Triple{Base: base, Ours: ours, Theirs: theirs, Desc: tr.Desc}, salt)
		var cpe *PropertyError
		if errors.As(cerr, &cpe) && cpe.Property == prop {
			return cerr
		}
		return nil // passes, or fails a different property: not this failure
	}
	base, ours, theirs, serr, evals := sh.ShrinkTriple(tr.Base, tr.Ours, tr.Theirs, check)
	if serr != nil {
		f.Triple = Triple{Base: base, Ours: ours, Theirs: theirs, Desc: tr.Desc, Iter: tr.Iter}
		f.Err = serr
	}
	r := NewTripleReproducer(f)
	t.Logf("shrunk to %d+%d+%d nodes in %d evals\nbase:   %s\nours:   %s\ntheirs: %s",
		base.Size(), ours.Size(), theirs.Size(), evals, r.Base, r.Ours, r.Theirs)
	if *flagSave != "" {
		if path, werr := r.Save(filepath.Join(*flagSave, "merge")); werr != nil {
			t.Logf("saving reproducer failed: %v", werr)
		} else {
			t.Logf("reproducer saved to %s", path)
		}
	}
	t.Fatalf("%v\nreplay: go test ./internal/proptest -run 'TestMergeProperties/%s' -proptest.seed=%d",
		f, gen.Name(), cfg.Seed)
}

// TestMergeProperties is the merge harness's main entry point: for every
// generator it runs cfg.Iters/2 generated (base, ours, theirs) triples (250
// in fast mode, 2500 with -proptest.long) through the merge-property oracle
// via the public structdiff facade. The run seed is logged so any failure
// replays exactly.
func TestMergeProperties(t *testing.T) {
	cfg := mergeRunConfig()
	for _, gen := range Generators() {
		gen := gen
		t.Run(gen.Name(), func(t *testing.T) {
			t.Parallel()
			run := NewTripleRun(gen, cfg)
			t.Logf("seed=%d iters=%d nodes=[%d,%d) mutations≤%d per side",
				cfg.Seed, cfg.Iters, cfg.MinNodes, cfg.MaxNodes, cfg.MutationsPerPair)
			clean, conflicted := 0, 0
			for i := 0; i < cfg.Iters; i++ {
				tr := run.Next()
				salt := cfg.Seed + int64(i)
				edits, conflicts, err := CheckTriple(gen.Schema(), tr, salt)
				if err != nil {
					reportTripleFailure(t, gen, cfg, tr, salt, err)
				}
				run.FoldResult(edits, conflicts)
				if conflicts > 0 {
					conflicted++
				} else {
					clean++
				}
			}
			if run.Triples() != cfg.Iters {
				t.Fatalf("run generated %d triples, want %d", run.Triples(), cfg.Iters)
			}
			if conflicted == 0 {
				t.Errorf("no generated triple conflicted in %d runs; the conflict path is untested", cfg.Iters)
			}
			if clean == 0 {
				t.Errorf("no generated triple merged cleanly in %d runs; the clean path is untested", cfg.Iters)
			}
			t.Logf("checksum=%#016x over %d triples (%d clean, %d conflicted)",
				run.Checksum(), run.Triples(), clean, conflicted)
		})
	}
}

// TestMergeDeterministicReplay asserts exact replay of the merge harness:
// two runs with the same seed produce bit-identical triple sequences and
// merge outcomes (compared via the run checksum, which folds in every tree
// digest plus merged edit and conflict counts), and a different seed
// produces a different sequence.
func TestMergeDeterministicReplay(t *testing.T) {
	const iters = 30
	cfg := DefaultConfig(*flagSeed)
	cfg.Iters = iters
	for _, gen := range Generators() {
		gen := gen
		t.Run(gen.Name(), func(t *testing.T) {
			t.Parallel()
			sum := func(c Config) uint64 {
				run := NewTripleRun(gen, c)
				for i := 0; i < c.Iters; i++ {
					tr := run.Next()
					edits, conflicts, err := CheckTriple(gen.Schema(), tr, c.Seed+int64(i))
					if err != nil {
						t.Fatalf("iter %d: %v", i, err)
					}
					run.FoldResult(edits, conflicts)
				}
				return run.Checksum()
			}
			a, b := sum(cfg), sum(cfg)
			if a != b {
				t.Fatalf("same seed, different checksums: %#x vs %#x", a, b)
			}
			other := cfg
			other.Seed += 1000003
			if c := sum(other); c == a {
				t.Fatalf("different seeds produced the same checksum %#x", a)
			}
			t.Logf("checksum=%#016x replays exactly (seed=%d, %d triples)", a, cfg.Seed, iters)
		})
	}
}

// TestMergeRegressionCorpus replays every committed triple reproducer in
// testdata/regress/merge through the full merge oracle. Each entry is a
// shrunk triple that once violated a merge property; all must pass now and
// forever.
func TestMergeRegressionCorpus(t *testing.T) {
	rs, err := LoadTripleReproducers(MergeRegressDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Log("no committed merge reproducers")
	}
	for _, r := range rs {
		r := r
		t.Run(r.Lang+"/"+r.Property, func(t *testing.T) {
			sch, base, ours, theirs, err := r.Trees()
			if err != nil {
				t.Fatal(err)
			}
			tr := Triple{Base: base, Ours: ours, Theirs: theirs, Desc: "regress"}
			if _, _, err := CheckTriple(sch, tr, r.Seed); err != nil {
				t.Fatalf("committed merge reproducer fails again (note: %s): %v", r.Note, err)
			}
		})
	}
}

// TestShrinkTriple sanity-checks the triple shrinker on a synthetic
// "failure" (a size predicate): it must strictly reduce all three sides
// while the predicate holds, and must return a passing triple unchanged.
func TestShrinkTriple(t *testing.T) {
	gen := NewJSONGen()
	rng := newTestRNG(*flagSeed)
	tr := genTriple(gen, rng, 60, 2, 2)
	sh := NewShrinker(gen.Schema(), gen.Alloc())

	fails := errors.New("still big")
	prop := func(base, ours, theirs *tree.Node) error {
		if base.Size()+ours.Size()+theirs.Size() > 6 {
			return fails
		}
		return nil
	}
	base, ours, theirs, err, evals := sh.ShrinkTriple(tr.Base, tr.Ours, tr.Theirs, prop)
	if err == nil {
		t.Fatal("shrink lost the failure")
	}
	before := tr.Base.Size() + tr.Ours.Size() + tr.Theirs.Size()
	after := base.Size() + ours.Size() + theirs.Size()
	if after >= before {
		t.Fatalf("shrink did not reduce: %d → %d nodes (%d evals)", before, after, evals)
	}
	t.Logf("shrunk %d → %d nodes in %d evals", before, after, evals)

	b2, o2, t2, err, _ := sh.ShrinkTriple(tr.Base, tr.Ours, tr.Theirs,
		func(_, _, _ *tree.Node) error { return nil })
	if err != nil || b2 != tr.Base || o2 != tr.Ours || t2 != tr.Theirs {
		t.Fatal("passing triple was not returned unchanged")
	}
}
