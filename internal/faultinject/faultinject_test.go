package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Hit("anywhere"); err != nil {
		t.Fatalf("nil injector Hit = %v, want nil", err)
	}
	if in.Hits("anywhere") != 0 || in.Fired("anywhere") != 0 {
		t.Fatal("nil injector reports nonzero counts")
	}
}

func TestErrorFaultCounting(t *testing.T) {
	in := New(1, Fault{Site: "s", Kind: Error, After: 2, Times: 2})
	var errs []error
	for i := 0; i < 6; i++ {
		errs = append(errs, in.Hit("s"))
	}
	for i, err := range errs {
		wantErr := i == 2 || i == 3 // hits 3 and 4: after 2, twice
		if (err != nil) != wantErr {
			t.Errorf("hit %d: err = %v, want error=%v", i+1, err, wantErr)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Errorf("hit %d: %v does not match ErrInjected", i+1, err)
		}
	}
	if got := in.Hits("s"); got != 6 {
		t.Errorf("Hits = %d, want 6", got)
	}
	if got := in.Fired("s"); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
}

func TestErrorFaultWrapsCustomError(t *testing.T) {
	custom := errors.New("disk on fire")
	in := New(1, Fault{Site: "s", Kind: Error, Err: custom})
	err := in.Hit("s")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, custom) {
		t.Fatalf("err = %v, want match of both ErrInjected and the custom error", err)
	}
}

func TestPanicFault(t *testing.T) {
	in := New(1, Fault{Site: "boom", Kind: Panic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic value %v does not name the site", r)
		}
	}()
	_ = in.Hit("boom")
}

func TestDelayFault(t *testing.T) {
	in := New(1, Fault{Site: "slow", Kind: Delay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Hit("slow"); err != nil {
		t.Fatalf("delay fault returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Hit returned after %v, want >= 20ms", d)
	}
}

func TestProbabilisticModeIsDeterministic(t *testing.T) {
	run := func() []bool {
		in := New(42, Fault{Site: "p", Kind: Error, Prob: 0.5})
		var fired []bool
		for i := 0; i < 64; i++ {
			fired = append(fired, in.Hit("p") != nil)
		}
		return fired
	}
	a, b := run(), run()
	var any bool
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identically seeded runs", i+1)
		}
		any = any || a[i]
	}
	if !any {
		t.Fatal("probabilistic fault never fired in 64 hits at p=0.5")
	}
}

func TestConcurrentHitsFireExactly(t *testing.T) {
	in := New(1, Fault{Site: "c", Kind: Error, After: 10, Times: 5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = in.Hit("c")
			}
		}()
	}
	wg.Wait()
	if got := in.Hits("c"); got != 800 {
		t.Errorf("Hits = %d, want 800", got)
	}
	if got := in.Fired("c"); got != 5 {
		t.Errorf("Fired = %d, want 5", got)
	}
}
