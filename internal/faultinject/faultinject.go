// Package faultinject provides deterministic fault injection for the
// resilience layer: an Injector is armed with per-site faults — panic,
// error, or delay — that fire on exact hit counts (or, optionally, with a
// seeded pseudo-random probability), so every failure path of the engine
// and the patching semantics can be exercised reproducibly in tests.
//
// Sites are plain strings agreed between the code under test and the test
// (the engine hits "engine/diff" once per diff and "engine/checkpoint" at
// every cooperative checkpoint; mtree hits "mtree/edit" before each edit of
// a fault-injected Patch). A nil *Injector is a valid no-op: production
// code calls Hit unconditionally and pays one nil check when injection is
// off.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so tests
// can tell injected failures from organic ones with errors.Is.
var ErrInjected = errors.New("injected fault")

// Kind selects what a fault does when it fires.
type Kind uint8

const (
	// Error makes Hit return an error (Fault.Err, or ErrInjected).
	Error Kind = iota
	// Panic makes Hit panic with a descriptive string value.
	Panic
	// Delay makes Hit sleep for Fault.Delay before returning nil — the
	// tool for driving a diff past its deadline mid-phase.
	Delay
)

// String names the kind for error messages and panic values.
func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("Kind(%d)", k)
	}
}

// Fault arms one failure at one site. The zero value of the trigger fields
// means "fire on every hit": set After to skip the first hits, Times to
// bound how often it fires, or Prob for seeded probabilistic firing.
type Fault struct {
	// Site names the injection point, e.g. "engine/diff".
	Site string
	// Kind selects the failure: Error, Panic, or Delay.
	Kind Kind
	// After skips the first After hits of the site before the fault may
	// fire (After: 3 → first firing candidate is the 4th hit).
	After uint64
	// Times bounds how many times the fault fires; 0 means no bound.
	Times uint64
	// Prob, when positive, gates each candidate hit on the injector's
	// seeded RNG instead of firing unconditionally. Deterministic for a
	// fixed seed and hit sequence.
	Prob float64
	// Delay is how long a Delay fault sleeps.
	Delay time.Duration
	// Err is what an Error fault returns, wrapped so it still matches
	// ErrInjected; nil uses ErrInjected alone.
	Err error
}

type armedFault struct {
	Fault
	fired uint64
}

// Injector decides, per site hit, whether an armed fault fires. All
// methods are concurrency-safe; the decision sequence is deterministic for
// a fixed seed and per-site hit order.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	hits  map[string]uint64
	sites map[string][]*armedFault
}

// New returns an Injector seeded for the probabilistic mode and armed with
// the given faults.
func New(seed int64, faults ...Fault) *Injector {
	in := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		hits:  make(map[string]uint64),
		sites: make(map[string][]*armedFault),
	}
	for _, f := range faults {
		in.sites[f.Site] = append(in.sites[f.Site], &armedFault{Fault: f})
	}
	return in
}

// Hit registers one hit of the site and fires at most one armed fault: a
// Delay sleeps then returns nil, an Error returns the armed error wrapped
// around ErrInjected, and a Panic panics. A nil Injector (and any site
// with no armed faults) is a no-op returning nil.
func (in *Injector) Hit(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.hits[site]++
	n := in.hits[site]
	var fire *armedFault
	for _, f := range in.sites[site] {
		if n <= f.After {
			continue
		}
		if f.Times > 0 && f.fired >= f.Times {
			continue
		}
		if f.Prob > 0 && in.rng.Float64() >= f.Prob {
			continue
		}
		f.fired++
		fire = f
		break
	}
	in.mu.Unlock()
	if fire == nil {
		return nil
	}
	switch fire.Kind {
	case Panic:
		panic(fmt.Sprintf("faultinject: injected panic at %s (hit %d)", site, n))
	case Delay:
		time.Sleep(fire.Delay)
		return nil
	default:
		if fire.Err != nil {
			return fmt.Errorf("faultinject: at %s (hit %d): %w: %w", site, n, ErrInjected, fire.Err)
		}
		return fmt.Errorf("faultinject: at %s (hit %d): %w", site, n, ErrInjected)
	}
}

// Hits returns how often the site has been hit.
func (in *Injector) Hits(site string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Fired returns how many times faults armed at the site have fired.
func (in *Injector) Fired(site string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var total uint64
	for _, f := range in.sites[site] {
		total += f.fired
	}
	return total
}
