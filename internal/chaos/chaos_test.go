package chaos

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// origin returns a test origin that echoes a fixed body, plus its URL.
func origin(t *testing.T, body string) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		w.Header().Set("X-Origin", "yes")
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts.URL
}

func newProxy(t *testing.T, cfg Config) *Proxy {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

func TestForwardsClean(t *testing.T) {
	p := newProxy(t, Config{Target: origin(t, "hello"), Seed: 1})
	resp, err := http.Get(p.URL() + "/some/path")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "hello" || resp.Header.Get("X-Origin") != "yes" {
		t.Fatalf("forward mangled: body=%q origin-header=%q", body, resp.Header.Get("X-Origin"))
	}
	if c := p.Counts(); c.Forwarded != 1 || c.Faults() != 0 {
		t.Fatalf("counts = %+v, want 1 forwarded, 0 faults", c)
	}
}

func TestResetSurfacesAsTransportError(t *testing.T) {
	p := newProxy(t, Config{Target: origin(t, "x"), Seed: 1, ResetRate: 1})
	if _, err := http.Get(p.URL() + "/"); err == nil {
		t.Fatal("reset fault produced a clean response")
	}
	if c := p.Counts(); c.Resets != 1 {
		t.Fatalf("counts = %+v, want 1 reset", c)
	}
}

func TestTruncatePromisesMoreThanItSends(t *testing.T) {
	p := newProxy(t, Config{Target: origin(t, strings.Repeat("z", 4096)), Seed: 1, TruncateRate: 1})
	resp, err := http.Get(p.URL() + "/")
	if err == nil {
		// The status line and headers may arrive intact; the body must not.
		defer resp.Body.Close()
		if _, rerr := io.ReadAll(resp.Body); rerr == nil {
			t.Fatal("truncated body read to completion without error")
		}
	}
	if c := p.Counts(); c.Truncates != 1 {
		t.Fatalf("counts = %+v, want 1 truncate", c)
	}
}

func TestErrorBurstIsConsecutive(t *testing.T) {
	p := newProxy(t, Config{Target: origin(t, "x"), Seed: 1, ErrorRate: 1, ErrorBurst: 3})
	statuses := make([]int, 0, 3)
	retryAfter := false
	for i := 0; i < 3; i++ {
		resp, err := http.Get(p.URL() + "/")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		statuses = append(statuses, resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") != "" {
			retryAfter = true
		}
	}
	for i, st := range statuses {
		if st != http.StatusServiceUnavailable && st != http.StatusTooManyRequests {
			t.Fatalf("burst request %d: status %d, want 503 or 429", i, st)
		}
	}
	if !retryAfter {
		t.Fatalf("burst %v never produced a 429 with Retry-After", statuses)
	}
	if c := p.Counts(); c.Errors != 3 {
		t.Fatalf("counts = %+v, want 3 errors", c)
	}
}

func TestLatencyDelaysButForwards(t *testing.T) {
	p := newProxy(t, Config{Target: origin(t, "slow"), Seed: 1, LatencyRate: 1, Latency: 50 * time.Millisecond})
	start := time.Now()
	resp, err := http.Get(p.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "slow" {
		t.Fatalf("latency fault mangled body: %q", body)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("response arrived in %v, before the injected 50ms", d)
	}
	if c := p.Counts(); c.Delays != 1 || c.Forwarded != 1 {
		t.Fatalf("counts = %+v, want 1 delay + 1 forwarded", c)
	}
}

func TestBlackholeHangsUntilContext(t *testing.T) {
	p := newProxy(t, Config{Target: origin(t, "x"), Seed: 1, BlackholeRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, p.URL()+"/", nil)
	start := time.Now()
	_, err := http.DefaultClient.Do(req)
	if err == nil {
		t.Fatal("blackholed request answered")
	}
	if d := time.Since(start); d < 90*time.Millisecond {
		t.Fatalf("blackholed request failed in %v, before the 100ms deadline", d)
	}
	if c := p.Counts(); c.Blackholes != 1 {
		t.Fatalf("counts = %+v, want 1 blackhole", c)
	}
}

func TestCloseReleasesBlackholes(t *testing.T) {
	p, err := New(Config{Target: origin(t, "x"), Seed: 1, BlackholeRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = http.Get(p.URL() + "/") // hangs until Close
	}()
	// Give the request time to reach the blackhole, then close under it.
	deadline := time.Now().Add(2 * time.Second)
	for p.Counts().Blackholes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the blackhole")
		}
		time.Sleep(time.Millisecond)
	}
	_ = p.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("blackholed request still hung after Close")
	}
}

func TestSeededDecisionsAreDeterministic(t *testing.T) {
	// Two proxies with the same seed, driven sequentially, make the same
	// decisions in the same order.
	target := origin(t, "d")
	counts := func(seed int64) Counts {
		p := newProxy(t, Config{Target: target, Seed: seed, ResetRate: 0.3, ErrorRate: 0.3})
		for i := 0; i < 40; i++ {
			resp, err := http.Get(p.URL() + "/")
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return p.Counts()
	}
	a, b := counts(42), counts(42)
	if a != b {
		t.Fatalf("same seed, different decisions: %+v vs %+v", a, b)
	}
	if a.Faults() == 0 || a.Forwarded == 0 {
		t.Fatalf("seed 42 produced a degenerate schedule: %+v", a)
	}
}

func TestRequiresTarget(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty Target")
	}
}
