// Package chaos is an in-process HTTP fault proxy for resilience tests:
// it sits between a diffserve client and server on a loopback listener
// and injects the failures a lossy network produces — connection resets,
// added latency, truncated response bodies, 5xx/429 error bursts, and
// blackholes (connections that never answer).
//
// Like internal/faultinject, injection is seeded and self-contained: a
// Config with a Seed yields a reproducible fault decision sequence (per
// decision order; concurrent requests race for decisions, so tests
// assert invariants, not exact schedules). All fault kinds are expressed
// at the HTTP layer with stdlib means only: resets and truncations abort
// the connection via http.ErrAbortHandler, which the client observes as
// an io error mid-body or a closed connection — exactly what a mid-flight
// RST looks like.
//
// The proxy exists to validate one invariant: under any fault schedule,
// a resilient client's DiffBatch either returns correct index-aligned
// results or a typed error — never a silent loss, duplicate, or hang.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Proxy. The *Rate fields are independent
// probabilities in [0,1], evaluated in the order reset, blackhole,
// error, truncate, latency against a single draw — so their sum is the
// total fault rate and at most one fault fires per request.
type Config struct {
	// Target is the origin server's base URL (e.g. an httptest.Server
	// URL). Required.
	Target string
	// Seed seeds the fault-decision RNG. Zero seeds from the global RNG.
	Seed int64

	// ResetRate aborts the connection before any response bytes: the
	// client sees a connection reset / unexpected EOF.
	ResetRate float64
	// BlackholeRate accepts the request and never answers: the
	// connection hangs until the client's context or per-attempt timeout
	// expires, or the proxy closes.
	BlackholeRate float64
	// ErrorRate answers with a canned error instead of forwarding:
	// alternating 503 and 429 (the 429 carries Retry-After: 1). When
	// ErrorBurst > 1, one error decision extends to that many
	// consecutive requests — a correlated outage, the shape that trips
	// circuit breakers.
	ErrorRate float64
	// TruncateRate forwards the request but aborts mid-body: the full
	// Content-Length is promised, about half the bytes arrive.
	TruncateRate float64
	// LatencyRate delays the forward by Latency (default 50ms).
	LatencyRate float64
	Latency     time.Duration

	// ErrorBurst is how many consecutive requests one error decision
	// covers. Values below 1 select 1.
	ErrorBurst int
}

// Counts is a point-in-time snapshot of the proxy's decisions.
type Counts struct {
	Forwarded  uint64 // requests passed through clean (latency-delayed ones included)
	Resets     uint64
	Blackholes uint64
	Errors     uint64 // canned 503/429 answers (bursts count each request)
	Truncates  uint64
	Delays     uint64
}

// Faults is the total number of injected faults in the snapshot.
func (c Counts) Faults() uint64 {
	return c.Resets + c.Blackholes + c.Errors + c.Truncates
}

// Proxy is a running fault proxy. Create one with New, point the client
// at URL(), and Close it when done (open blackholes are released).
type Proxy struct {
	cfg       Config
	ln        net.Listener
	hs        *http.Server
	fwd       *http.Client
	closed    chan struct{}
	closeOnce sync.Once

	mu        sync.Mutex
	rng       *rand.Rand
	burstLeft int
	burstOdd  bool

	forwarded, resets, blackholes, errors, truncates, delays atomic.Uint64
}

// New starts a fault proxy on a fresh loopback port, forwarding to
// cfg.Target with faults injected per the configured rates.
func New(cfg Config) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("chaos: Config.Target is required")
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 50 * time.Millisecond
	}
	if cfg.ErrorBurst < 1 {
		cfg.ErrorBurst = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		cfg:    cfg,
		ln:     ln,
		rng:    rand.New(rand.NewSource(seed)),
		closed: make(chan struct{}),
		// The forward client must never retry or cache; a plain transport
		// with its own connection pool keeps proxy-side connections out of
		// the client's fault surface.
		fwd: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}},
	}
	p.hs = &http.Server{Handler: http.HandlerFunc(p.serve)}
	go func() { _ = p.hs.Serve(ln) }()
	return p, nil
}

// URL returns the proxy's base URL; point the client under test here.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// Close stops the proxy: the listener closes, blackholed requests are
// released (their connections abort), and idle forward connections are
// dropped. Idempotent.
func (p *Proxy) Close() error {
	var err error
	p.closeOnce.Do(func() {
		close(p.closed)
		err = p.hs.Close()
		p.fwd.CloseIdleConnections()
	})
	return err
}

// Counts snapshots the decision counters.
func (p *Proxy) Counts() Counts {
	return Counts{
		Forwarded:  p.forwarded.Load(),
		Resets:     p.resets.Load(),
		Blackholes: p.blackholes.Load(),
		Errors:     p.errors.Load(),
		Truncates:  p.truncates.Load(),
		Delays:     p.delays.Load(),
	}
}

// fault kinds, as decided per request.
const (
	faultNone = iota
	faultReset
	faultBlackhole
	faultError
	faultTruncate
	faultLatency
)

// decide draws one fault decision. Error bursts take precedence: while a
// burst is live every request is an error, which models a correlated
// outage rather than independent coin flips.
func (p *Proxy) decide() (kind int, odd bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.burstLeft > 0 {
		p.burstLeft--
		p.burstOdd = !p.burstOdd
		return faultError, p.burstOdd
	}
	draw := p.rng.Float64()
	for _, f := range []struct {
		rate float64
		kind int
	}{
		{p.cfg.ResetRate, faultReset},
		{p.cfg.BlackholeRate, faultBlackhole},
		{p.cfg.ErrorRate, faultError},
		{p.cfg.TruncateRate, faultTruncate},
		{p.cfg.LatencyRate, faultLatency},
	} {
		if draw < f.rate {
			if f.kind == faultError {
				p.burstLeft = p.cfg.ErrorBurst - 1
				p.burstOdd = !p.burstOdd
				return faultError, p.burstOdd
			}
			return f.kind, false
		}
		draw -= f.rate
	}
	return faultNone, false
}

func (p *Proxy) serve(w http.ResponseWriter, r *http.Request) {
	kind, odd := p.decide()
	switch kind {
	case faultReset:
		p.resets.Add(1)
		panic(http.ErrAbortHandler)
	case faultBlackhole:
		p.blackholes.Add(1)
		select {
		case <-r.Context().Done():
		case <-p.closed:
		}
		panic(http.ErrAbortHandler)
	case faultError:
		p.errors.Add(1)
		if odd {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = io.WriteString(w, "chaos: injected 429\n")
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = io.WriteString(w, "chaos: injected 503\n")
		}
		return
	case faultLatency:
		p.delays.Add(1)
		t := time.NewTimer(p.cfg.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			panic(http.ErrAbortHandler)
		case <-p.closed:
			panic(http.ErrAbortHandler)
		}
	}
	p.forward(w, r, kind == faultTruncate)
}

// forward relays the request to the target and the response back. With
// truncate set, the full Content-Length is declared but only about half
// the body is written before the connection aborts — a mid-body cut.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, truncate bool) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.cfg.Target+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, "chaos: build forward: "+err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.fwd.Do(req)
	if err != nil {
		// The origin itself failed (e.g. it is shutting down); surface it
		// as a reset rather than inventing a status the origin never sent.
		p.resets.Add(1)
		panic(http.ErrAbortHandler)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		p.resets.Add(1)
		panic(http.ErrAbortHandler)
	}
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	if truncate && len(body) > 1 {
		p.truncates.Add(1)
		h.Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(body[:len(body)/2])
		panic(http.ErrAbortHandler)
	}
	p.forwarded.Add(1)
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}
