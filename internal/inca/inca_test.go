package inca

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/datalog"
	"repro/internal/exp"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truediff"
	"repro/internal/uri"
)

func TestOneToOneIndex(t *testing.T) {
	ix := NewOneToOne()
	if err := ix.Attach("e1", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := ix.Attach("e1", 1, 3); err == nil {
		t.Error("overloading a one-to-one link should fail")
	}
	if k, ok := ix.Kid("e1", 1); !ok || k != 2 {
		t.Errorf("Kid = %v, %v", k, ok)
	}
	if p, ok := ix.Parent("e1", 2); !ok || p != 1 {
		t.Errorf("Parent = %v, %v", p, ok)
	}
	if kids := ix.Kids("e1", 1); len(kids) != 1 || kids[0] != 2 {
		t.Errorf("Kids = %v", kids)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d", ix.Len())
	}
	if err := ix.Detach("e1", 1, 3); err == nil {
		t.Error("detaching a non-held kid should fail")
	}
	if err := ix.Detach("e1", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Kid("e1", 1); ok {
		t.Error("slot should be empty after detach")
	}
	if ix.Len() != 0 {
		t.Errorf("Len = %d after detach", ix.Len())
	}
}

func TestManyToOneIndex(t *testing.T) {
	ix := NewManyToOne()
	if err := ix.Attach("e1", 1, 2); err != nil {
		t.Fatal(err)
	}
	// Overloading is representable — the weakness of untyped scripts.
	if err := ix.Attach("e1", 1, 3); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Kid("e1", 1); ok {
		t.Error("overloaded slot has no unique kid")
	}
	if kids := ix.Kids("e1", 1); len(kids) != 2 {
		t.Errorf("Kids = %v", kids)
	}
	if ix.Len() != 2 {
		t.Errorf("Len = %d", ix.Len())
	}
	if err := ix.Detach("e1", 1, 3); err != nil {
		t.Fatal(err)
	}
	if k, ok := ix.Kid("e1", 1); !ok || k != 2 {
		t.Errorf("Kid after detach = %v, %v", k, ok)
	}
	if err := ix.Detach("e1", 1, 9); err == nil {
		t.Error("detaching absent kid should fail")
	}
	if err := ix.Attach("e1", 1, 2); err == nil {
		t.Error("duplicate attach of same kid should fail")
	}
	if p, ok := ix.Parent("e1", 2); !ok || p != 1 {
		t.Errorf("Parent = %v %v", p, ok)
	}
}

// driverPair builds a driver over the expression schema with an expression
// analysis: depth-style containment plus call collection.
func expRules() []datalog.Rule {
	v := func(s string) datalog.Var { return datalog.Var(s) }
	return []datalog.Rule{
		{Head: datalog.A("contains", v("A"), v("D")),
			Body: []datalog.Atom{datalog.A(PredChild, v("A"), v("D"))}},
		{Head: datalog.A("contains", v("A"), v("D")),
			Body: []datalog.Atom{datalog.A("contains", v("A"), v("M")), datalog.A(PredChild, v("M"), v("D"))}},
		{Head: datalog.A("callIn", v("F"), v("C")),
			Body: []datalog.Atom{
				datalog.A(PredNode, v("F"), "Call"),
				datalog.A("contains", v("F"), v("C")),
				datalog.A(PredNode, v("C"), "Call")}},
	}
}

func TestDriverInitTree(t *testing.T) {
	b := exp.NewBuilder()
	tr := b.MustN(exp.Add,
		b.MustN(exp.Call, b.MustN(exp.Num, 1), "f"),
		b.MustN(exp.Var, "x"))
	d, err := NewDriver(b.Schema(), expRules(), NewOneToOne())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitTree(tr); err != nil {
		t.Fatal(err)
	}
	if got := d.Engine.Count(PredNode); got != 4 {
		t.Errorf("node facts = %d, want 4", got)
	}
	// child facts: 3 tree edges + 1 root attachment.
	if got := d.Engine.Count(PredChild); got != 4 {
		t.Errorf("child facts = %d, want 4", got)
	}
	if got := d.Engine.Count("contains"); got == 0 {
		t.Error("containment not derived")
	}
	if !d.Engine.Has(PredLit, tr.Kids[1].URI, "name", "x") {
		t.Error("lit fact missing")
	}
	if _, ok := d.Index.Kid(sig.RootLink, uri.Root); !ok {
		t.Error("root link not indexed")
	}
}

// TestIncrementalMatchesFromScratch is the core property of experiment E4:
// after each edit script, the incrementally maintained database must equal
// a database initialized directly from the new tree.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	g := exp.NewGen(21)
	differ := truediff.New(g.Schema())

	cur := g.Tree(60)
	d, err := NewDriver(g.Schema(), expRules(), NewOneToOne())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitTree(cur); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 12; round++ {
		next := g.Mutate(cur)
		res, err := differ.Diff(cur, next, g.Alloc())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.ProcessScript(res.Script); err != nil {
			t.Fatalf("round %d: %v\nscript: %s", round, err, res.Script)
		}
		cur = res.Patched

		fresh, err := NewDriver(g.Schema(), expRules(), NewOneToOne())
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.InitTree(cur); err != nil {
			t.Fatal(err)
		}
		for _, pred := range []string{PredNode, PredChild, PredLit, "contains", "callIn"} {
			got := fmt.Sprint(d.Engine.Facts(pred))
			want := fmt.Sprint(fresh.Engine.Facts(pred))
			if got != want {
				t.Fatalf("round %d: %s diverged\nincremental: %s\nfrom scratch: %s\nscript: %s",
					round, pred, got, want, res.Script)
			}
		}
		if d.Index.Len() != fresh.Index.Len() {
			t.Fatalf("round %d: index sizes diverge: %d vs %d", round, d.Index.Len(), fresh.Index.Len())
		}
	}
}

// TestDriverOnPythonCorpus runs the driver against real corpus scripts with
// both index encodings.
func TestDriverOnPythonCorpus(t *testing.T) {
	h := corpus.Generate(corpus.Options{
		Seed: 11, Files: 2, Commits: 8, MaxFilesPerCommit: 1,
		MinNodes: 150, MaxNodes: 350, MaxEditsPerFile: 2,
	})
	sch := h.Factory.Schema()
	differ := truediff.New(sch)

	type fileState struct {
		d   *Driver
		cur *tree.Node
	}
	for _, mkIndex := range []func() LinkIndex{
		func() LinkIndex { return NewOneToOne() },
		func() LinkIndex { return NewManyToOne() },
	} {
		states := make(map[string]*fileState)
		for _, fc := range h.Changes() {
			st, ok := states[fc.Path]
			if !ok {
				d, err := NewDriver(sch, StandardRules(), mkIndex())
				if err != nil {
					t.Fatal(err)
				}
				if err := d.InitTree(fc.Before); err != nil {
					t.Fatal(err)
				}
				st = &fileState{d: d, cur: fc.Before}
				states[fc.Path] = st
			}
			res, err := differ.Diff(st.cur, fc.After, h.Factory.Alloc())
			if err != nil {
				t.Fatal(err)
			}
			if err := st.d.ProcessScript(res.Script); err != nil {
				t.Fatalf("%s: %v", fc.Path, err)
			}
			st.cur = res.Patched
		}
		// Check every driver against a fresh initialization.
		for path, st := range states {
			fresh, err := NewDriver(sch, StandardRules(), mkIndex())
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.InitTree(st.cur); err != nil {
				t.Fatal(err)
			}
			for _, pred := range []string{PredNode, PredChild, "funcReturn"} {
				if got, want := st.d.Engine.Count(pred), fresh.Engine.Count(pred); got != want {
					t.Errorf("%s: %s count %d vs %d", path, pred, got, want)
				}
			}
			if st.d.Index.Len() != fresh.Index.Len() {
				t.Errorf("%s: index len %d vs %d", path, st.d.Index.Len(), fresh.Index.Len())
			}
		}
	}
}
