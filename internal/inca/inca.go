// Package inca reimplements the driver of the incremental program analysis
// framework described in paper §6: it consumes truechange edit scripts and
// translates them into fact insertions and deletions that incrementally
// maintain a Datalog database of derived properties about the syntax tree.
// This replaces projectional editing as the source of fine-grained change
// notifications — after a code change, the tree is re-diffed with truediff
// and the resulting edit script drives the update.
//
// The driver also maintains the paper's link index in one of two
// encodings. Type-safe edit scripts never overload a link, so a compact
// one-to-one index suffices:
//
//	mutable.Map[Link, BidirectionalOneToOneIndex[URI, URI]]
//
// With untyped edit scripts a weaker many-to-one encoding is forced, where
// a link may temporarily point to several children and every operation
// becomes a set operation:
//
//	mutable.Map[Link, BidirectionalManyToOneIndex[URI, URI]]
//
// Both encodings are implemented so the benchmark can quantify the cost.
package inca

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// LinkIndex abstracts the bidirectional link store of the driver.
type LinkIndex interface {
	// Attach records that parent.link points to kid.
	Attach(link sig.Link, parent, kid uri.URI) error
	// Detach removes the parent.link → kid entry.
	Detach(link sig.Link, parent, kid uri.URI) error
	// Kid returns the unique child at parent.link; ok is false for an
	// empty slot. For the many-to-one encoding an overloaded link is an
	// error surfaced through Kids instead.
	Kid(link sig.Link, parent uri.URI) (uri.URI, bool)
	// Kids returns all children at parent.link (a set operation; the
	// one-to-one encoding returns at most one element).
	Kids(link sig.Link, parent uri.URI) []uri.URI
	// Parent returns the parent holding kid via link.
	Parent(link sig.Link, kid uri.URI) (uri.URI, bool)
	// Len returns the total number of entries.
	Len() int
}

// OneToOne is the compact bidirectional one-to-one index enabled by
// type-safe edit scripts: each (link, parent) holds at most one kid and
// each (link, kid) has at most one parent.
type OneToOne struct {
	fwd map[sig.Link]map[uri.URI]uri.URI
	rev map[sig.Link]map[uri.URI]uri.URI
	n   int
}

// NewOneToOne returns an empty one-to-one index.
func NewOneToOne() *OneToOne {
	return &OneToOne{
		fwd: make(map[sig.Link]map[uri.URI]uri.URI),
		rev: make(map[sig.Link]map[uri.URI]uri.URI),
	}
}

// Attach implements LinkIndex; it rejects overloading a link, which a
// well-typed edit script never attempts.
func (ix *OneToOne) Attach(link sig.Link, parent, kid uri.URI) error {
	f, ok := ix.fwd[link]
	if !ok {
		f = make(map[uri.URI]uri.URI)
		ix.fwd[link] = f
		ix.rev[link] = make(map[uri.URI]uri.URI)
	}
	if old, occupied := f[parent]; occupied {
		return fmt.Errorf("inca: link %s of %s already holds %s", link, parent, old)
	}
	f[parent] = kid
	ix.rev[link][kid] = parent
	ix.n++
	return nil
}

// Detach implements LinkIndex.
func (ix *OneToOne) Detach(link sig.Link, parent, kid uri.URI) error {
	f, ok := ix.fwd[link]
	if !ok || f[parent] != kid {
		return fmt.Errorf("inca: link %s of %s does not hold %s", link, parent, kid)
	}
	delete(f, parent)
	delete(ix.rev[link], kid)
	ix.n--
	return nil
}

// Kid implements LinkIndex.
func (ix *OneToOne) Kid(link sig.Link, parent uri.URI) (uri.URI, bool) {
	k, ok := ix.fwd[link][parent]
	return k, ok
}

// Kids implements LinkIndex.
func (ix *OneToOne) Kids(link sig.Link, parent uri.URI) []uri.URI {
	if k, ok := ix.fwd[link][parent]; ok {
		return []uri.URI{k}
	}
	return nil
}

// Parent implements LinkIndex.
func (ix *OneToOne) Parent(link sig.Link, kid uri.URI) (uri.URI, bool) {
	p, ok := ix.rev[link][kid]
	return p, ok
}

// Len implements LinkIndex.
func (ix *OneToOne) Len() int { return ix.n }

// ManyToOne is the weaker encoding forced by untyped edit scripts: a link
// may point to many children, so every slot holds a set and all operations
// are set operations.
type ManyToOne struct {
	fwd map[sig.Link]map[uri.URI]map[uri.URI]bool
	rev map[sig.Link]map[uri.URI]map[uri.URI]bool
	n   int
}

// NewManyToOne returns an empty many-to-one index.
func NewManyToOne() *ManyToOne {
	return &ManyToOne{
		fwd: make(map[sig.Link]map[uri.URI]map[uri.URI]bool),
		rev: make(map[sig.Link]map[uri.URI]map[uri.URI]bool),
	}
}

// Attach implements LinkIndex; overloading is representable and accepted.
func (ix *ManyToOne) Attach(link sig.Link, parent, kid uri.URI) error {
	f, ok := ix.fwd[link]
	if !ok {
		f = make(map[uri.URI]map[uri.URI]bool)
		ix.fwd[link] = f
		ix.rev[link] = make(map[uri.URI]map[uri.URI]bool)
	}
	set, ok := f[parent]
	if !ok {
		set = make(map[uri.URI]bool)
		f[parent] = set
	}
	if set[kid] {
		return fmt.Errorf("inca: duplicate entry %s.%s → %s", parent, link, kid)
	}
	set[kid] = true
	rset, ok := ix.rev[link][kid]
	if !ok {
		rset = make(map[uri.URI]bool)
		ix.rev[link][kid] = rset
	}
	rset[parent] = true
	ix.n++
	return nil
}

// Detach implements LinkIndex.
func (ix *ManyToOne) Detach(link sig.Link, parent, kid uri.URI) error {
	set := ix.fwd[link][parent]
	if !set[kid] {
		return fmt.Errorf("inca: link %s of %s does not hold %s", link, parent, kid)
	}
	delete(set, kid)
	if len(set) == 0 {
		delete(ix.fwd[link], parent)
	}
	rset := ix.rev[link][kid]
	delete(rset, parent)
	if len(rset) == 0 {
		delete(ix.rev[link], kid)
	}
	ix.n--
	return nil
}

// Kid implements LinkIndex; it returns a child only when the slot holds
// exactly one.
func (ix *ManyToOne) Kid(link sig.Link, parent uri.URI) (uri.URI, bool) {
	set := ix.fwd[link][parent]
	if len(set) != 1 {
		return 0, false
	}
	for k := range set {
		return k, true
	}
	return 0, false
}

// Kids implements LinkIndex.
func (ix *ManyToOne) Kids(link sig.Link, parent uri.URI) []uri.URI {
	set := ix.fwd[link][parent]
	out := make([]uri.URI, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// Parent implements LinkIndex; defined when exactly one parent holds kid.
func (ix *ManyToOne) Parent(link sig.Link, kid uri.URI) (uri.URI, bool) {
	set := ix.rev[link][kid]
	if len(set) != 1 {
		return 0, false
	}
	for p := range set {
		return p, true
	}
	return 0, false
}

// Len implements LinkIndex.
func (ix *ManyToOne) Len() int { return ix.n }

// Driver feeds truechange edit scripts into a Datalog engine and the link
// index, keeping both synchronized with the tree.
type Driver struct {
	Engine *datalog.Engine
	Index  LinkIndex
	sch    *sig.Schema
}

// Fact predicates maintained by the driver.
const (
	PredNode  = "node"  // node(uri, tag)
	PredChild = "child" // child(parentURI, kidURI)
	PredLit   = "lit"   // lit(uri, link, value)
)

// StandardRules returns the analysis program used by the incremental
// experiment, in the spirit of IncA's program analyses: a recursive
// "enclosing function" relation plus two derived properties. The relation
// is function-local, so a code change only disturbs facts of the functions
// it touches — the locality that makes incrementality pay off.
//
//	inFunc(F, N)     — node N belongs to the body of function F
//	funcReturn(F, R) — return statement R exits function F
//	funcName(F, X)   — identifier X occurs in function F
func StandardRules() []datalog.Rule {
	v := func(s string) datalog.Var { return datalog.Var(s) }
	return []datalog.Rule{
		{Head: datalog.A("inFunc", v("F"), v("N")),
			Body: []datalog.Atom{
				datalog.A(PredNode, v("F"), "FuncDef"),
				datalog.A(PredChild, v("F"), v("N"))}},
		{Head: datalog.A("inFunc", v("F"), v("N")),
			Body: []datalog.Atom{datalog.A("inFunc", v("F"), v("M")), datalog.A(PredChild, v("M"), v("N"))}},
		{Head: datalog.A("funcReturn", v("F"), v("R")),
			Body: []datalog.Atom{
				datalog.A("inFunc", v("F"), v("R")),
				datalog.A(PredNode, v("R"), "Return")}},
		{Head: datalog.A("funcName", v("F"), v("X")),
			Body: []datalog.Atom{
				datalog.A("inFunc", v("F"), v("N")),
				datalog.A(PredNode, v("N"), "Name"),
				datalog.A(PredLit, v("N"), "id", v("X"))}},
	}
}

// ClosureRules returns the heavyweight whole-tree containment closure; it
// stresses the DRed maintenance path and serves as the worst-case analysis
// in tests and benchmarks.
func ClosureRules() []datalog.Rule {
	v := func(s string) datalog.Var { return datalog.Var(s) }
	return []datalog.Rule{
		{Head: datalog.A("contains", v("A"), v("D")),
			Body: []datalog.Atom{datalog.A(PredChild, v("A"), v("D"))}},
		{Head: datalog.A("contains", v("A"), v("D")),
			Body: []datalog.Atom{datalog.A("contains", v("A"), v("M")), datalog.A(PredChild, v("M"), v("D"))}},
	}
}

// NewDriver returns a driver over the given schema, analysis rules, and
// link index encoding.
func NewDriver(sch *sig.Schema, rules []datalog.Rule, index LinkIndex) (*Driver, error) {
	eng, err := datalog.NewEngine(rules)
	if err != nil {
		return nil, err
	}
	return &Driver{Engine: eng, Index: index, sch: sch}, nil
}

// InitTree seeds the database and index from an initial tree, as if it had
// been loaded by an initializing edit script.
func (d *Driver) InitTree(t *tree.Node) error {
	delta := datalog.NewDelta()
	var err error
	tree.Walk(t, func(n *tree.Node) {
		if err != nil {
			return
		}
		err = d.loadNode(n, delta)
	})
	if err != nil {
		return err
	}
	if e := d.Index.Attach(sig.RootLink, uri.Root, t.URI); e != nil {
		return e
	}
	delta.Ins(PredChild, uri.Root, t.URI)
	d.Engine.Apply(delta)
	return nil
}

func (d *Driver) loadNode(n *tree.Node, delta *datalog.Delta) error {
	g := d.sch.Lookup(n.Tag)
	if g == nil {
		return fmt.Errorf("inca: undeclared tag %s", n.Tag)
	}
	delta.Ins(PredNode, n.URI, string(n.Tag))
	for i, spec := range g.Lits {
		delta.Ins(PredLit, n.URI, string(spec.Link), n.Lits[i])
	}
	for i, spec := range g.Kids {
		if err := d.Index.Attach(spec.Link, n.URI, n.Kids[i].URI); err != nil {
			return err
		}
		delta.Ins(PredChild, n.URI, n.Kids[i].URI)
	}
	return nil
}

// ProcessScript applies an edit script: every edit updates the link index
// immediately and contributes fact changes, which are applied to the
// engine as one batch at the end (matching IncA's transactional updates).
func (d *Driver) ProcessScript(s *truechange.Script) error {
	delta := datalog.NewDelta()
	for i, e := range s.Edits {
		if err := d.processEdit(e, delta); err != nil {
			return fmt.Errorf("inca: edit #%d: %w", i, err)
		}
	}
	d.Engine.Apply(delta)
	return nil
}

func (d *Driver) processEdit(e truechange.Edit, delta *datalog.Delta) error {
	switch ed := e.(type) {
	case truechange.Detach:
		if err := d.Index.Detach(ed.Link, ed.Parent.URI, ed.Node.URI); err != nil {
			return err
		}
		delta.Del(PredChild, ed.Parent.URI, ed.Node.URI)
		return nil

	case truechange.Attach:
		if err := d.Index.Attach(ed.Link, ed.Parent.URI, ed.Node.URI); err != nil {
			return err
		}
		delta.Ins(PredChild, ed.Parent.URI, ed.Node.URI)
		return nil

	case truechange.Load:
		delta.Ins(PredNode, ed.Node.URI, string(ed.Node.Tag))
		for _, l := range ed.Lits {
			delta.Ins(PredLit, ed.Node.URI, string(l.Link), l.Value)
		}
		for _, k := range ed.Kids {
			if err := d.Index.Attach(k.Link, ed.Node.URI, k.URI); err != nil {
				return err
			}
			delta.Ins(PredChild, ed.Node.URI, k.URI)
		}
		return nil

	case truechange.Unload:
		delta.Del(PredNode, ed.Node.URI, string(ed.Node.Tag))
		for _, l := range ed.Lits {
			delta.Del(PredLit, ed.Node.URI, string(l.Link), l.Value)
		}
		for _, k := range ed.Kids {
			if err := d.Index.Detach(k.Link, ed.Node.URI, k.URI); err != nil {
				return err
			}
			delta.Del(PredChild, ed.Node.URI, k.URI)
		}
		return nil

	case truechange.Update:
		for _, l := range ed.Old {
			delta.Del(PredLit, ed.Node.URI, string(l.Link), l.Value)
		}
		for _, l := range ed.New {
			delta.Ins(PredLit, ed.Node.URI, string(l.Link), l.Value)
		}
		return nil

	default:
		return fmt.Errorf("unknown edit kind %T", e)
	}
}
