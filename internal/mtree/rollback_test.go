package mtree

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/derrors"
	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/sig"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// dump renders the complete observable state of a mutable tree — every
// indexed node with its tag, literals, and slot contents, sorted by URI —
// so two trees are behaviourally identical iff their dumps are equal.
func dump(mt *MTree) string {
	uris := make([]uri.URI, 0, len(mt.index))
	for u := range mt.index {
		uris = append(uris, u)
	}
	sort.Slice(uris, func(i, j int) bool { return uris[i] < uris[j] })
	var b strings.Builder
	for _, u := range uris {
		n := mt.index[u]
		fmt.Fprintf(&b, "%s %s", u, n.Tag)
		links := make([]string, 0, len(n.Kids))
		for l := range n.Kids {
			links = append(links, string(l))
		}
		sort.Strings(links)
		for _, l := range links {
			if k := n.Kids[sig.Link(l)]; k == nil {
				fmt.Fprintf(&b, " %s=∅", l)
			} else {
				fmt.Fprintf(&b, " %s=%s", l, k.URI)
			}
		}
		lits := make([]string, 0, len(n.Lits))
		for l := range n.Lits {
			lits = append(lits, string(l))
		}
		sort.Strings(lits)
		for _, l := range lits {
			fmt.Fprintf(&b, " %s=%#v", l, n.Lits[sig.Link(l)])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestPatchRollbackRandomScripts is the transactional-patching property
// test: for many seeds, generate a random tree and a random valid edit
// sequence, corrupt it with a failing edit at a random position, and check
// that the failed Patch (a) reports the corrupted index and op kind,
// (b) matches ErrNonCompliantScript, and (c) restores the tree to exactly
// its pre-patch state, compared against a deep copy taken before.
func TestPatchRollbackRandomScripts(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g := exp.NewGen(seed)
			tr := g.Tree(20)

			// Record a valid edit sequence by driving the random editor on a
			// scratch copy of the tree.
			rec, err := FromTree(g.Schema(), tr)
			if err != nil {
				t.Fatal(err)
			}
			e := &randEditor{
				t:     t,
				rng:   rand.New(rand.NewSource(seed ^ 0xfa117)),
				sch:   g.Schema(),
				mt:    rec,
				st:    truechange.ClosedState(),
				alloc: g.Alloc(),
			}
			var edits []truechange.Edit
			for tries := 0; len(edits) < 12 && tries < 200; tries++ {
				ed := e.randomEdit()
				if ed == nil {
					continue
				}
				if err := truechange.CheckEdit(e.sch, ed, e.st); err != nil {
					t.Fatalf("constructed edit rejected: %v\nedit: %s", err, ed)
				}
				if err := rec.ProcessEdit(ed); err != nil {
					t.Fatalf("recording edit %s: %v", ed, err)
				}
				edits = append(edits, ed)
			}

			// Corrupt the script at a random position with an edit that can
			// never apply: unloading a URI the tree has never seen.
			pos := int(seed) % (len(edits) + 1)
			bad := truechange.Unload{Node: truechange.NodeRef{Tag: exp.Num, URI: 1 << 40}}
			script := &truechange.Script{Edits: append(append(append([]truechange.Edit{}, edits[:pos]...), bad), edits[pos:]...)}

			mt, err := FromTree(g.Schema(), tr)
			if err != nil {
				t.Fatal(err)
			}
			before := dump(mt)
			beforeNodes := make(map[uri.URI]*MNode, len(mt.index))
			for u, n := range mt.index {
				beforeNodes[u] = n
			}

			err = mt.Patch(script)
			if err == nil {
				t.Fatal("corrupted script patched successfully")
			}
			var pe *PatchError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not a *PatchError: %v", err, err)
			}
			if pe.EditIndex != pos || pe.Op != "unload" {
				t.Errorf("PatchError = edit #%d (%s), want edit #%d (unload)", pe.EditIndex, pe.Op, pos)
			}
			if pe.RolledBack != (pos > 0) {
				t.Errorf("RolledBack = %v with %d applied edits", pe.RolledBack, pos)
			}
			if !errors.Is(err, derrors.ErrNonCompliantScript) {
				t.Errorf("error does not match ErrNonCompliantScript: %v", err)
			}
			if after := dump(mt); after != before {
				t.Errorf("tree not restored after rollback:\n--- before ---\n%s--- after ---\n%s", before, after)
			}
			// Rollback restores the very same nodes, not equal copies.
			for u, n := range beforeNodes {
				if mt.index[u] != n {
					t.Errorf("node %s replaced by a different object after rollback", u)
				}
			}
			// The tree must still be patchable: the uncorrupted script applies.
			if err := mt.Patch(&truechange.Script{Edits: edits}); err != nil {
				t.Fatalf("valid script failed after rollback: %v", err)
			}
		})
	}
}

// TestPatchRollbackOnOccupiedAttach pins the semantics' linearity guard:
// an Attach into an occupied slot is rejected (it would silently drop the
// occupant's subtree), the script fails at that edit, and the preceding
// Detach is rolled back so the detached node is back in its slot.
func TestPatchRollbackOnOccupiedAttach(t *testing.T) {
	b := exp.NewBuilder()
	tr := b.MustN(exp.Add, b.MustN(exp.Num, int64(1)), b.MustN(exp.Num, int64(2)))
	mt, err := FromTree(b.Schema(), tr)
	if err != nil {
		t.Fatal(err)
	}
	before := dump(mt)
	add := mt.Top()
	e1 := add.Kids["e1"]
	numURI := add.Kids["e2"].URI

	// Detach e1, then try to attach it over the still-occupied e2 slot.
	script := &truechange.Script{Edits: []truechange.Edit{
		truechange.Detach{Node: truechange.NodeRef{Tag: e1.Tag, URI: e1.URI}, Link: "e1", Parent: truechange.NodeRef{Tag: exp.Add, URI: add.URI}},
		truechange.Attach{Node: truechange.NodeRef{Tag: e1.Tag, URI: e1.URI}, Link: "e2", Parent: truechange.NodeRef{Tag: exp.Add, URI: add.URI}},
	}}
	err = mt.Patch(script)
	if err == nil {
		t.Fatal("attach into an occupied slot should have failed")
	}
	var pe *PatchError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T does not carry a *PatchError", err)
	}
	if pe.EditIndex != 1 || pe.Op != "attach" || !pe.RolledBack {
		t.Fatalf("PatchError = edit #%d (%s, rolledBack=%v), want edit #1 (attach, rolled back)",
			pe.EditIndex, pe.Op, pe.RolledBack)
	}
	if after := dump(mt); after != before {
		t.Fatalf("rollback did not restore the tree:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
	if got := mt.Top().Kids["e1"]; got == nil || got.URI != e1.URI {
		t.Fatalf("slot e1 holds %v after rollback, want the detached node %s", got, e1.URI)
	}
	if got := mt.Top().Kids["e2"]; got == nil || got.URI != numURI {
		t.Fatalf("slot e2 holds %v after rollback, want the original occupant %s", got, numURI)
	}
}

// TestPatchRollbackCounter checks the process-wide rollback counter moves
// only on actual rollbacks (at least one applied edit undone).
func TestPatchRollbackCounter(t *testing.T) {
	b := exp.NewBuilder()
	tr := b.MustN(exp.Num, int64(1))
	mt, err := FromTree(b.Schema(), tr)
	if err != nil {
		t.Fatal(err)
	}
	bad := truechange.Unload{Node: truechange.NodeRef{Tag: exp.Num, URI: 1 << 40}}

	start := Rollbacks()
	// Fails at edit #0: nothing applied, nothing rolled back.
	if err := mt.Patch(&truechange.Script{Edits: []truechange.Edit{bad}}); err == nil {
		t.Fatal("expected failure")
	}
	if got := Rollbacks(); got != start {
		t.Errorf("Rollbacks moved to %d on a nothing-applied failure", got)
	}
	// Fails at edit #1 after one applied edit: one rollback.
	top := mt.Top()
	det := truechange.Detach{Node: truechange.NodeRef{Tag: top.Tag, URI: top.URI}, Link: sig.RootLink, Parent: truechange.RootRef}
	if err := mt.Patch(&truechange.Script{Edits: []truechange.Edit{det, bad}}); err == nil {
		t.Fatal("expected failure")
	}
	if got := Rollbacks(); got != start+1 {
		t.Errorf("Rollbacks = %d, want %d", got, start+1)
	}
	if mt.Top() == nil {
		t.Fatal("detach not rolled back")
	}
}

// TestPatchFaultInjection drives the rollback path through the
// deterministic fault injector: an error armed at the nth edit hit fails
// the patch there and the tree rolls back exactly.
func TestPatchFaultInjection(t *testing.T) {
	g := exp.NewGen(7)
	tr := g.Tree(15)
	mt, err := FromTree(g.Schema(), tr)
	if err != nil {
		t.Fatal(err)
	}
	// A legitimate script: detach the top subtree's first kid, reattach it.
	top := mt.Top()
	var link sig.Link
	var kid *MNode
	for l, k := range top.Kids {
		if k != nil {
			link, kid = l, k
			break
		}
	}
	if kid == nil {
		t.Skip("generated tree has a leaf top")
	}
	script := &truechange.Script{Edits: []truechange.Edit{
		truechange.Detach{Node: truechange.NodeRef{Tag: kid.Tag, URI: kid.URI}, Link: link, Parent: truechange.NodeRef{Tag: top.Tag, URI: top.URI}},
		truechange.Attach{Node: truechange.NodeRef{Tag: kid.Tag, URI: kid.URI}, Link: link, Parent: truechange.NodeRef{Tag: top.Tag, URI: top.URI}},
	}}

	before := dump(mt)
	inj := faultinject.New(1, faultinject.Fault{Site: FaultSiteEdit, Kind: faultinject.Error, After: 1, Times: 1})
	mt.InjectFaults(inj)
	err = mt.Patch(script)
	if err == nil {
		t.Fatal("fault-injected patch succeeded")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error %v does not match ErrInjected", err)
	}
	var pe *PatchError
	if !errors.As(err, &pe) || pe.EditIndex != 1 {
		t.Fatalf("fault did not fire at edit #1: %v", err)
	}
	if after := dump(mt); after != before {
		t.Fatal("tree not restored after injected failure")
	}
	if inj.Fired(FaultSiteEdit) != 1 {
		t.Fatalf("Fired = %d, want 1", inj.Fired(FaultSiteEdit))
	}

	// Disarmed (Times exhausted): the same script now applies cleanly.
	if err := mt.Patch(script); err != nil {
		t.Fatalf("patch after fault exhausted: %v", err)
	}
}
