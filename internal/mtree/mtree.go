// Package mtree implements the standard semantics of truechange edit
// scripts (paper §3.2, Figure 2): a mutable tree with an index of all
// loaded nodes, so that each edit operation executes in constant time.
//
// The semantics maintains two invariants that the truechange type system
// guarantees for well-typed scripts: links point to at most one subtree at
// any time (so a plain map per node suffices, never a multimap), and
// patching never fails. The semantics itself tracks neither detached roots
// nor empty slots; empty slots occur as nil child entries, and detached
// roots remain reachable through the node index until they are unloaded.
package mtree

import (
	"fmt"

	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// MNode is a mutable tree node: links to children and literal values can be
// updated destructively. An entry mapping a link to nil represents an empty
// slot; a missing entry means the node has no such link at all.
type MNode struct {
	Tag  sig.Tag
	URI  uri.URI
	Kids map[sig.Link]*MNode
	Lits map[sig.Link]any
}

// MTree is a mutable tree with a node index for constant-time access by
// URI. The root is the pre-defined node with URI 0 and the single child
// slot RootLink.
type MTree struct {
	sch   *sig.Schema
	root  *MNode
	index map[uri.URI]*MNode
}

// New returns an empty mutable tree: the pre-defined root node with its
// RootLink slot empty.
func New(sch *sig.Schema) *MTree {
	root := &MNode{
		Tag:  sig.RootTag,
		URI:  uri.Root,
		Kids: map[sig.Link]*MNode{sig.RootLink: nil},
		Lits: map[sig.Link]any{},
	}
	return &MTree{
		sch:   sch,
		root:  root,
		index: map[uri.URI]*MNode{uri.Root: root},
	}
}

// FromTree returns a mutable tree holding a copy of the immutable tree t
// attached under the root, with every node registered in the index under
// its existing URI.
func FromTree(sch *sig.Schema, t *tree.Node) (*MTree, error) {
	mt := New(sch)
	if t == nil {
		return mt, nil
	}
	top, err := mt.convert(t)
	if err != nil {
		return nil, err
	}
	mt.root.Kids[sig.RootLink] = top
	return mt, nil
}

func (mt *MTree) convert(t *tree.Node) (*MNode, error) {
	g := mt.sch.Lookup(t.Tag)
	if g == nil {
		return nil, fmt.Errorf("mtree: undeclared tag %s", t.Tag)
	}
	if len(g.Kids) != len(t.Kids) || len(g.Lits) != len(t.Lits) {
		return nil, fmt.Errorf("mtree: node %s does not match signature of %s", t.URI, t.Tag)
	}
	if _, dup := mt.index[t.URI]; dup {
		return nil, fmt.Errorf("mtree: duplicate URI %s", t.URI)
	}
	n := &MNode{
		Tag:  t.Tag,
		URI:  t.URI,
		Kids: make(map[sig.Link]*MNode, len(t.Kids)),
		Lits: make(map[sig.Link]any, len(t.Lits)),
	}
	mt.index[t.URI] = n
	for i, spec := range g.Kids {
		k, err := mt.convert(t.Kids[i])
		if err != nil {
			return nil, err
		}
		n.Kids[spec.Link] = k
	}
	for i, spec := range g.Lits {
		n.Lits[spec.Link] = t.Lits[i]
	}
	return n, nil
}

// Root returns the pre-defined root node.
func (mt *MTree) Root() *MNode { return mt.root }

// Top returns the subtree attached at the root's RootLink slot, or nil if
// the tree is empty.
func (mt *MTree) Top() *MNode { return mt.root.Kids[sig.RootLink] }

// Lookup returns the node registered under u, or nil.
func (mt *MTree) Lookup(u uri.URI) *MNode { return mt.index[u] }

// Size returns the number of indexed nodes, excluding the pre-defined root.
func (mt *MTree) Size() int { return len(mt.index) - 1 }

// Patch applies the edit script to the tree, mutating it in place: the
// standard semantics ⟦∆⟧. It returns an error (⊥) if an edit refers to a
// missing node or link; the type system rules this out for well-typed,
// syntactically compliant scripts (Theorem 3.6).
func (mt *MTree) Patch(s *truechange.Script) error {
	for i, e := range s.Edits {
		if err := mt.ProcessEdit(e); err != nil {
			return fmt.Errorf("mtree: edit #%d: %w", i, err)
		}
	}
	return nil
}

// ProcessEdit applies a single edit to the tree, updating nodes and the
// index (Figure 2).
func (mt *MTree) ProcessEdit(e truechange.Edit) error {
	switch ed := e.(type) {
	case truechange.Detach:
		par := mt.index[ed.Parent.URI]
		if par == nil {
			return fmt.Errorf("detach: unknown parent %s", ed.Parent)
		}
		if _, ok := par.Kids[ed.Link]; !ok {
			return fmt.Errorf("detach: parent %s has no link %q", ed.Parent, ed.Link)
		}
		par.Kids[ed.Link] = nil
		return nil

	case truechange.Attach:
		par := mt.index[ed.Parent.URI]
		if par == nil {
			return fmt.Errorf("attach: unknown parent %s", ed.Parent)
		}
		if _, ok := par.Kids[ed.Link]; !ok {
			return fmt.Errorf("attach: parent %s has no link %q", ed.Parent, ed.Link)
		}
		node := mt.index[ed.Node.URI]
		if node == nil {
			return fmt.Errorf("attach: unknown node %s", ed.Node)
		}
		par.Kids[ed.Link] = node
		return nil

	case truechange.Load:
		if _, dup := mt.index[ed.Node.URI]; dup {
			return fmt.Errorf("load: URI %s already loaded", ed.Node.URI)
		}
		n := &MNode{
			Tag:  ed.Node.Tag,
			URI:  ed.Node.URI,
			Kids: make(map[sig.Link]*MNode, len(ed.Kids)),
			Lits: make(map[sig.Link]any, len(ed.Lits)),
		}
		for _, k := range ed.Kids {
			kid := mt.index[k.URI]
			if kid == nil {
				return fmt.Errorf("load: unknown kid %s", k.URI)
			}
			n.Kids[k.Link] = kid
		}
		for _, l := range ed.Lits {
			n.Lits[l.Link] = l.Value
		}
		mt.index[ed.Node.URI] = n
		return nil

	case truechange.Unload:
		if _, ok := mt.index[ed.Node.URI]; !ok {
			return fmt.Errorf("unload: unknown node %s", ed.Node)
		}
		delete(mt.index, ed.Node.URI)
		return nil

	case truechange.Update:
		n := mt.index[ed.Node.URI]
		if n == nil {
			return fmt.Errorf("update: unknown node %s", ed.Node)
		}
		for _, l := range ed.New {
			if _, ok := n.Lits[l.Link]; !ok {
				return fmt.Errorf("update: node %s has no literal %q", ed.Node, l.Link)
			}
			n.Lits[l.Link] = l.Value
		}
		return nil

	default:
		return fmt.Errorf("unknown edit kind %T", e)
	}
}

// ToTree converts the attached tree back into an immutable tree,
// preserving URIs. It fails if the tree contains empty slots (is open).
func (mt *MTree) ToTree(alloc *uri.Allocator) (*tree.Node, error) {
	top := mt.Top()
	if top == nil {
		return nil, fmt.Errorf("mtree: tree is empty")
	}
	return mt.toTree(top, alloc)
}

func (mt *MTree) toTree(n *MNode, alloc *uri.Allocator) (*tree.Node, error) {
	g := mt.sch.Lookup(n.Tag)
	if g == nil {
		return nil, fmt.Errorf("mtree: undeclared tag %s", n.Tag)
	}
	kids := make([]*tree.Node, len(g.Kids))
	for i, spec := range g.Kids {
		k, ok := n.Kids[spec.Link]
		if !ok {
			return nil, fmt.Errorf("mtree: node %s lacks link %q", n.URI, spec.Link)
		}
		if k == nil {
			return nil, fmt.Errorf("mtree: node %s has an empty slot %q", n.URI, spec.Link)
		}
		t, err := mt.toTree(k, alloc)
		if err != nil {
			return nil, err
		}
		kids[i] = t
	}
	lits := make([]any, len(g.Lits))
	for i, spec := range g.Lits {
		v, ok := n.Lits[spec.Link]
		if !ok {
			return nil, fmt.Errorf("mtree: node %s lacks literal %q", n.URI, spec.Link)
		}
		lits[i] = v
	}
	return tree.NewWithURI(mt.sch, alloc, n.URI, n.Tag, kids, lits, tree.SHA256)
}

// EqualTree reports whether the attached tree equals the immutable tree t,
// comparing tags, literals, and shape but ignoring URIs (the ≃ relation of
// Conjecture 4.3).
func (mt *MTree) EqualTree(t *tree.Node) bool {
	return mt.equalNode(mt.Top(), t)
}

func (mt *MTree) equalNode(m *MNode, t *tree.Node) bool {
	if m == nil || t == nil {
		return m == nil && t == nil
	}
	if m.Tag != t.Tag {
		return false
	}
	g := mt.sch.Lookup(t.Tag)
	if g == nil || len(g.Kids) != len(t.Kids) || len(g.Lits) != len(t.Lits) {
		return false
	}
	for i, spec := range g.Lits {
		v, ok := m.Lits[spec.Link]
		if !ok || v != t.Lits[i] {
			return false
		}
	}
	for i, spec := range g.Kids {
		k, ok := m.Kids[spec.Link]
		if !ok || !mt.equalNode(k, t.Kids[i]) {
			return false
		}
	}
	return true
}

// String renders the attached tree, with ∅ for empty slots.
func (mt *MTree) String() string {
	top := mt.Top()
	if top == nil {
		return "ε"
	}
	return mt.nodeString(top)
}

func (mt *MTree) nodeString(n *MNode) string {
	g := mt.sch.Lookup(n.Tag)
	s := string(n.Tag) + n.URI.String()
	if g == nil {
		return s + "<?>"
	}
	if len(g.Lits) > 0 {
		s += "{"
		for i, spec := range g.Lits {
			if i > 0 {
				s += ", "
			}
			s += fmt.Sprintf("%s=%#v", spec.Link, n.Lits[spec.Link])
		}
		s += "}"
	}
	if len(g.Kids) > 0 {
		s += "("
		for i, spec := range g.Kids {
			if i > 0 {
				s += ", "
			}
			if k := n.Kids[spec.Link]; k == nil {
				s += "∅"
			} else {
				s += mt.nodeString(k)
			}
		}
		s += ")"
	}
	return s
}
