// Package mtree implements the standard semantics of truechange edit
// scripts (paper §3.2, Figure 2): a mutable tree with an index of all
// loaded nodes, so that each edit operation executes in constant time.
//
// The semantics maintains two invariants that the truechange type system
// guarantees for well-typed scripts: links point to at most one subtree at
// any time (so a plain map per node suffices, never a multimap), and
// patching never fails. The semantics itself tracks neither detached roots
// nor empty slots; empty slots occur as nil child entries, and detached
// roots remain reachable through the node index until they are unloaded.
//
// Against the untyped real world — scripts from the wire, hand-written
// scripts, foreign trees — Theorem 3.6 offers no protection, so Patch is
// transactional: every applied edit is journaled with the exact state it
// overwrote (the operational form of truechange.Invert), and the first
// failing edit rolls the journal back, restoring the pre-patch tree
// exactly. Failures carry the edit index and operation kind (PatchError)
// and match derrors.ErrNonCompliantScript.
package mtree

import (
	"fmt"
	"sync/atomic"

	"repro/internal/derrors"
	"repro/internal/faultinject"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// MNode is a mutable tree node: links to children and literal values can be
// updated destructively. An entry mapping a link to nil represents an empty
// slot; a missing entry means the node has no such link at all.
type MNode struct {
	Tag  sig.Tag
	URI  uri.URI
	Kids map[sig.Link]*MNode
	Lits map[sig.Link]any
}

// MTree is a mutable tree with a node index for constant-time access by
// URI. The root is the pre-defined node with URI 0 and the single child
// slot RootLink.
type MTree struct {
	sch    *sig.Schema
	root   *MNode
	index  map[uri.URI]*MNode
	faults *faultinject.Injector
}

// FaultSiteEdit is the fault-injection site Patch hits before every edit of
// a fault-injected tree (see InjectFaults): an Error fault armed there makes
// the edit fail, exercising the rollback path deterministically.
const FaultSiteEdit = "mtree/edit"

// InjectFaults arms the tree with a fault injector for tests: Patch hits
// FaultSiteEdit before applying each edit. A nil injector (the default)
// costs one nil check per edit.
func (mt *MTree) InjectFaults(in *faultinject.Injector) { mt.faults = in }

// rollbackCount counts Patch invocations, process-wide, that failed and
// rolled applied edits back. Exposed through Rollbacks so the engine's
// metrics endpoint can report structdiff_engine_rollbacks_total.
var rollbackCount atomic.Uint64

// Rollbacks returns the process-wide count of transactional Patch
// rollbacks (failed patches that had applied at least one edit).
func Rollbacks() uint64 { return rollbackCount.Load() }

// New returns an empty mutable tree: the pre-defined root node with its
// RootLink slot empty.
func New(sch *sig.Schema) *MTree {
	root := &MNode{
		Tag:  sig.RootTag,
		URI:  uri.Root,
		Kids: map[sig.Link]*MNode{sig.RootLink: nil},
		Lits: map[sig.Link]any{},
	}
	return &MTree{
		sch:   sch,
		root:  root,
		index: map[uri.URI]*MNode{uri.Root: root},
	}
}

// FromTree returns a mutable tree holding a copy of the immutable tree t
// attached under the root, with every node registered in the index under
// its existing URI.
func FromTree(sch *sig.Schema, t *tree.Node) (*MTree, error) {
	mt := New(sch)
	if t == nil {
		return mt, nil
	}
	top, err := mt.convert(t)
	if err != nil {
		return nil, err
	}
	mt.root.Kids[sig.RootLink] = top
	return mt, nil
}

func (mt *MTree) convert(t *tree.Node) (*MNode, error) {
	g := mt.sch.Lookup(t.Tag)
	if g == nil {
		return nil, fmt.Errorf("mtree: undeclared tag %s", t.Tag)
	}
	if len(g.Kids) != len(t.Kids) || len(g.Lits) != len(t.Lits) {
		return nil, fmt.Errorf("mtree: node %s does not match signature of %s", t.URI, t.Tag)
	}
	if _, dup := mt.index[t.URI]; dup {
		return nil, fmt.Errorf("mtree: duplicate URI %s", t.URI)
	}
	n := &MNode{
		Tag:  t.Tag,
		URI:  t.URI,
		Kids: make(map[sig.Link]*MNode, len(t.Kids)),
		Lits: make(map[sig.Link]any, len(t.Lits)),
	}
	mt.index[t.URI] = n
	for i, spec := range g.Kids {
		k, err := mt.convert(t.Kids[i])
		if err != nil {
			return nil, err
		}
		n.Kids[spec.Link] = k
	}
	for i, spec := range g.Lits {
		n.Lits[spec.Link] = t.Lits[i]
	}
	return n, nil
}

// Root returns the pre-defined root node.
func (mt *MTree) Root() *MNode { return mt.root }

// Top returns the subtree attached at the root's RootLink slot, or nil if
// the tree is empty.
func (mt *MTree) Top() *MNode { return mt.root.Kids[sig.RootLink] }

// Lookup returns the node registered under u, or nil.
func (mt *MTree) Lookup(u uri.URI) *MNode { return mt.index[u] }

// Size returns the number of indexed nodes, excluding the pre-defined root.
func (mt *MTree) Size() int { return len(mt.index) - 1 }

// PatchError reports a failed Patch: which edit failed, its operation
// kind, the underlying cause, and whether applied edits were rolled back
// (false only when the first edit failed, leaving nothing to undo — the
// tree is in its pre-patch state either way). It matches both
// derrors.ErrNonCompliantScript and the cause via errors.Is/As.
type PatchError struct {
	// EditIndex is the zero-based position of the failing edit.
	EditIndex int
	// Op is the operation kind of the failing edit: "detach", "attach",
	// "load", "unload", or "update".
	Op string
	// RolledBack reports whether previously applied edits were undone.
	RolledBack bool
	// Cause is the ProcessEdit error of the failing edit.
	Cause error
}

func (e *PatchError) Error() string {
	state := "tree unchanged"
	if e.RolledBack {
		state = "tree rolled back"
	}
	return fmt.Sprintf("mtree: edit #%d (%s): %v (%s)", e.EditIndex, e.Op, e.Cause, state)
}

// Unwrap lets errors.Is match both the non-compliance sentinel and the
// specific cause.
func (e *PatchError) Unwrap() []error { return []error{derrors.ErrNonCompliantScript, e.Cause} }

// opKind names an edit's operation for error reports.
func opKind(e truechange.Edit) string {
	switch e.(type) {
	case truechange.Detach:
		return "detach"
	case truechange.Attach:
		return "attach"
	case truechange.Load:
		return "load"
	case truechange.Unload:
		return "unload"
	case truechange.Update:
		return "update"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// undo is one journal entry of a transactional Patch: the exact state an
// applied edit overwrote, captured at apply time. Undoing by captured
// state rather than by truechange.InvertEdit is what makes the rollback
// exact even for scripts whose edits lie about the tree (a stale Update.Old,
// an Attach into an occupied slot): the inverse edit would restore the
// script's claim, the journal restores the truth.
type undo struct {
	kind   undoKind
	parent *MNode   // undoSlot: whose slot to restore
	link   sig.Link // undoSlot: which slot
	prev   *MNode   // undoSlot: the slot's previous occupant (may be nil)
	uri    uri.URI  // undoLoad / undoUnload: which index entry
	node   *MNode   // undoUnload / undoLits: the node to restore
	lits   []litUndo
}

type litUndo struct {
	link sig.Link
	val  any
}

type undoKind uint8

const (
	undoSlot   undoKind = iota // restore parent.Kids[link] = prev
	undoLoad                   // delete index[uri]
	undoUnload                 // restore index[uri] = node
	undoLits                   // restore node's literal values
)

// Patch applies the edit script to the tree, mutating it in place: the
// standard semantics ⟦∆⟧. It returns an error (⊥) if an edit refers to a
// missing node or link; the type system rules this out for well-typed,
// syntactically compliant scripts (Theorem 3.6).
//
// Patch is transactional: applied edits are journaled, and on the first
// failing edit the journal is rolled back before returning, so the tree is
// restored to its exact pre-patch state (same nodes, same index, same
// literals) — never left half-mutated. The returned error is a *PatchError
// carrying the edit index and operation kind; it matches
// derrors.ErrNonCompliantScript.
func (mt *MTree) Patch(s *truechange.Script) error {
	journal := make([]undo, 0, len(s.Edits))
	for i, e := range s.Edits {
		err := mt.faults.Hit(FaultSiteEdit)
		var u undo
		if err == nil {
			u, err = mt.applyEdit(e)
		}
		if err != nil {
			rolledBack := len(journal) > 0
			mt.rollback(journal)
			if rolledBack {
				rollbackCount.Add(1)
			}
			return &PatchError{EditIndex: i, Op: opKind(e), RolledBack: rolledBack, Cause: err}
		}
		journal = append(journal, u)
	}
	return nil
}

// rollback undoes the journaled edits in reverse order, restoring the
// exact pre-patch tree.
func (mt *MTree) rollback(journal []undo) {
	for i := len(journal) - 1; i >= 0; i-- {
		u := journal[i]
		switch u.kind {
		case undoSlot:
			u.parent.Kids[u.link] = u.prev
		case undoLoad:
			delete(mt.index, u.uri)
		case undoUnload:
			mt.index[u.uri] = u.node
		case undoLits:
			for _, l := range u.lits {
				u.node.Lits[l.link] = l.val
			}
		}
	}
}

// ProcessEdit applies a single edit to the tree, updating nodes and the
// index (Figure 2). Each edit is atomic: it either applies fully or
// returns an error leaving the tree untouched.
func (mt *MTree) ProcessEdit(e truechange.Edit) error {
	_, err := mt.applyEdit(e)
	return err
}

// applyEdit applies a single edit and returns the journal entry that
// undoes it. Every case validates before mutating, so a failed edit has no
// effect at all. The checks are at least as strict as complyEdit's
// (Definition 3.5), which keeps Comply and Patch in exact agreement: a
// script passes Comply iff it patches in full.
func (mt *MTree) applyEdit(e truechange.Edit) (undo, error) {
	switch ed := e.(type) {
	case truechange.Detach:
		par := mt.index[ed.Parent.URI]
		if par == nil {
			return undo{}, fmt.Errorf("detach: unknown parent %s", ed.Parent)
		}
		if par.Tag != ed.Parent.Tag {
			return undo{}, fmt.Errorf("detach: parent %s has tag %s, edit claims %s", ed.Parent.URI, par.Tag, ed.Parent.Tag)
		}
		prev, ok := par.Kids[ed.Link]
		if !ok {
			return undo{}, fmt.Errorf("detach: parent %s has no link %q", ed.Parent, ed.Link)
		}
		if prev == nil {
			return undo{}, fmt.Errorf("detach: slot %s.%s already empty", ed.Parent, ed.Link)
		}
		if prev.URI != ed.Node.URI || prev.Tag != ed.Node.Tag {
			return undo{}, fmt.Errorf("detach: slot %s.%s holds %s%s, edit claims %s", ed.Parent, ed.Link, prev.Tag, prev.URI, ed.Node)
		}
		par.Kids[ed.Link] = nil
		return undo{kind: undoSlot, parent: par, link: ed.Link, prev: prev}, nil

	case truechange.Attach:
		par := mt.index[ed.Parent.URI]
		if par == nil {
			return undo{}, fmt.Errorf("attach: unknown parent %s", ed.Parent)
		}
		if par.Tag != ed.Parent.Tag {
			return undo{}, fmt.Errorf("attach: parent %s has tag %s, edit claims %s", ed.Parent.URI, par.Tag, ed.Parent.Tag)
		}
		prev, ok := par.Kids[ed.Link]
		if !ok {
			return undo{}, fmt.Errorf("attach: parent %s has no link %q", ed.Parent, ed.Link)
		}
		if prev != nil {
			return undo{}, fmt.Errorf("attach: slot %s.%s already holds %s%s", ed.Parent, ed.Link, prev.Tag, prev.URI)
		}
		node := mt.index[ed.Node.URI]
		if node == nil {
			return undo{}, fmt.Errorf("attach: unknown node %s", ed.Node)
		}
		if node.Tag != ed.Node.Tag {
			return undo{}, fmt.Errorf("attach: node %s has tag %s, edit claims %s", ed.Node.URI, node.Tag, ed.Node.Tag)
		}
		par.Kids[ed.Link] = node
		return undo{kind: undoSlot, parent: par, link: ed.Link, prev: prev}, nil

	case truechange.Load:
		if _, dup := mt.index[ed.Node.URI]; dup {
			return undo{}, fmt.Errorf("load: URI %s already loaded", ed.Node.URI)
		}
		n := &MNode{
			Tag:  ed.Node.Tag,
			URI:  ed.Node.URI,
			Kids: make(map[sig.Link]*MNode, len(ed.Kids)),
			Lits: make(map[sig.Link]any, len(ed.Lits)),
		}
		for _, k := range ed.Kids {
			kid := mt.index[k.URI]
			if kid == nil {
				return undo{}, fmt.Errorf("load: unknown kid %s", k.URI)
			}
			n.Kids[k.Link] = kid
		}
		for _, l := range ed.Lits {
			n.Lits[l.Link] = l.Value
		}
		mt.index[ed.Node.URI] = n
		return undo{kind: undoLoad, uri: ed.Node.URI}, nil

	case truechange.Unload:
		n, ok := mt.index[ed.Node.URI]
		if !ok {
			return undo{}, fmt.Errorf("unload: unknown node %s", ed.Node)
		}
		if ed.Node.URI == uri.Root {
			return undo{}, fmt.Errorf("unload: the pre-defined root cannot be unloaded")
		}
		if n.Tag != ed.Node.Tag {
			return undo{}, fmt.Errorf("unload: node %s has tag %s, edit claims %s", ed.Node.URI, n.Tag, ed.Node.Tag)
		}
		for _, k := range ed.Kids {
			kid, ok := n.Kids[k.Link]
			if !ok {
				return undo{}, fmt.Errorf("unload: node %s has no link %q", ed.Node, k.Link)
			}
			if kid == nil || kid.URI != k.URI {
				return undo{}, fmt.Errorf("unload: node %s link %q does not hold %s", ed.Node, k.Link, k.URI)
			}
		}
		for _, l := range ed.Lits {
			v, ok := n.Lits[l.Link]
			if !ok {
				return undo{}, fmt.Errorf("unload: node %s has no literal %q", ed.Node, l.Link)
			}
			if !tree.LitEqual(v, l.Value) {
				return undo{}, fmt.Errorf("unload: node %s literal %q is %#v, edit claims %#v", ed.Node, l.Link, v, l.Value)
			}
		}
		delete(mt.index, ed.Node.URI)
		return undo{kind: undoUnload, uri: ed.Node.URI, node: n}, nil

	case truechange.Update:
		n := mt.index[ed.Node.URI]
		if n == nil {
			return undo{}, fmt.Errorf("update: unknown node %s", ed.Node)
		}
		if n.Tag != ed.Node.Tag {
			return undo{}, fmt.Errorf("update: node %s has tag %s, edit claims %s", ed.Node.URI, n.Tag, ed.Node.Tag)
		}
		for _, l := range ed.Old {
			v, ok := n.Lits[l.Link]
			if !ok {
				return undo{}, fmt.Errorf("update: node %s has no literal %q", ed.Node, l.Link)
			}
			if !tree.LitEqual(v, l.Value) {
				return undo{}, fmt.Errorf("update: node %s literal %q is %#v, edit claims old value %#v", ed.Node, l.Link, v, l.Value)
			}
		}
		// Validate every link before mutating any, so a failed update is
		// side-effect free and needs no journal entry of its own.
		old := make([]litUndo, len(ed.New))
		for i, l := range ed.New {
			v, ok := n.Lits[l.Link]
			if !ok {
				return undo{}, fmt.Errorf("update: node %s has no literal %q", ed.Node, l.Link)
			}
			old[i] = litUndo{link: l.Link, val: v}
		}
		for _, l := range ed.New {
			n.Lits[l.Link] = l.Value
		}
		return undo{kind: undoLits, node: n, lits: old}, nil

	default:
		return undo{}, fmt.Errorf("unknown edit kind %T", e)
	}
}

// ToTree converts the attached tree back into an immutable tree,
// preserving URIs. It fails if the tree contains empty slots (is open).
func (mt *MTree) ToTree(alloc *uri.Allocator) (*tree.Node, error) {
	top := mt.Top()
	if top == nil {
		return nil, fmt.Errorf("mtree: tree is empty")
	}
	return mt.toTree(top, alloc)
}

func (mt *MTree) toTree(n *MNode, alloc *uri.Allocator) (*tree.Node, error) {
	g := mt.sch.Lookup(n.Tag)
	if g == nil {
		return nil, fmt.Errorf("mtree: undeclared tag %s", n.Tag)
	}
	kids := make([]*tree.Node, len(g.Kids))
	for i, spec := range g.Kids {
		k, ok := n.Kids[spec.Link]
		if !ok {
			return nil, fmt.Errorf("mtree: node %s lacks link %q", n.URI, spec.Link)
		}
		if k == nil {
			return nil, fmt.Errorf("mtree: node %s has an empty slot %q", n.URI, spec.Link)
		}
		t, err := mt.toTree(k, alloc)
		if err != nil {
			return nil, err
		}
		kids[i] = t
	}
	lits := make([]any, len(g.Lits))
	for i, spec := range g.Lits {
		v, ok := n.Lits[spec.Link]
		if !ok {
			return nil, fmt.Errorf("mtree: node %s lacks literal %q", n.URI, spec.Link)
		}
		lits[i] = v
	}
	return tree.NewWithURI(mt.sch, alloc, n.URI, n.Tag, kids, lits, tree.SHA256)
}

// EqualTree reports whether the attached tree equals the immutable tree t,
// comparing tags, literals, and shape but ignoring URIs (the ≃ relation of
// Conjecture 4.3).
func (mt *MTree) EqualTree(t *tree.Node) bool {
	return mt.equalNode(mt.Top(), t)
}

func (mt *MTree) equalNode(m *MNode, t *tree.Node) bool {
	if m == nil || t == nil {
		return m == nil && t == nil
	}
	if m.Tag != t.Tag {
		return false
	}
	g := mt.sch.Lookup(t.Tag)
	if g == nil || len(g.Kids) != len(t.Kids) || len(g.Lits) != len(t.Lits) {
		return false
	}
	for i, spec := range g.Lits {
		v, ok := m.Lits[spec.Link]
		if !ok || !tree.LitEqual(v, t.Lits[i]) {
			return false
		}
	}
	for i, spec := range g.Kids {
		k, ok := m.Kids[spec.Link]
		if !ok || !mt.equalNode(k, t.Kids[i]) {
			return false
		}
	}
	return true
}

// String renders the attached tree, with ∅ for empty slots.
func (mt *MTree) String() string {
	top := mt.Top()
	if top == nil {
		return "ε"
	}
	return mt.nodeString(top)
}

func (mt *MTree) nodeString(n *MNode) string {
	g := mt.sch.Lookup(n.Tag)
	s := string(n.Tag) + n.URI.String()
	if g == nil {
		return s + "<?>"
	}
	if len(g.Lits) > 0 {
		s += "{"
		for i, spec := range g.Lits {
			if i > 0 {
				s += ", "
			}
			s += fmt.Sprintf("%s=%#v", spec.Link, n.Lits[spec.Link])
		}
		s += "}"
	}
	if len(g.Kids) > 0 {
		s += "("
		for i, spec := range g.Kids {
			if i > 0 {
				s += ", "
			}
			if k := n.Kids[spec.Link]; k == nil {
				s += "∅"
			} else {
				s += mt.nodeString(k)
			}
		}
		s += ")"
	}
	return s
}
