package mtree

import (
	"repro/internal/exp"
	"repro/internal/sig"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// FuzzDecodeScript deterministically maps arbitrary bytes onto an edit
// script over the exp schema. The decoder is deliberately loose — URIs,
// tags, and links are drawn from small pools so that a meaningful fraction
// of decoded scripts is compliant with a small tree, while the rest
// exercises every rejection path.
//
// It lives in the package proper (not the test file) because it is shared:
// FuzzTypecheckPatchAgreement decodes its inputs with it, and the
// property-testing harness (internal/proptest) uses it to select byte
// seeds that decode to interesting scripts, so the native fuzz corpus and
// the proptest corpus stay one vocabulary.
func FuzzDecodeScript(data []byte) *truechange.Script {
	tags := []sig.Tag{exp.Num, exp.Var, exp.Add, exp.Sub, exp.Mul, exp.Call, exp.Let}
	links := []sig.Link{"e1", "e2", "a", "bound", "body", "n", "name", "f", "x", sig.RootLink}

	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	nextURI := func() uri.URI { return uri.URI(next()) % 64 }
	nextTag := func() sig.Tag { return tags[int(next())%len(tags)] }
	nextLink := func() sig.Link { return links[int(next())%len(links)] }
	nextRef := func() truechange.NodeRef {
		if next()%8 == 0 {
			return truechange.RootRef
		}
		return truechange.NodeRef{Tag: nextTag(), URI: nextURI()}
	}
	nextLit := func() any {
		switch next() % 3 {
		case 0:
			return int64(next())
		case 1:
			return "s" + string(rune('a'+next()%26))
		default:
			return float64(next())
		}
	}
	nextLits := func() []truechange.LitArg {
		n := int(next()) % 3
		out := make([]truechange.LitArg, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, truechange.LitArg{Link: nextLink(), Value: nextLit()})
		}
		return out
	}

	var s truechange.Script
	for len(data) > 0 && len(s.Edits) < 24 {
		switch next() % 5 {
		case 0:
			s.Edits = append(s.Edits, truechange.Detach{Node: nextRef(), Link: nextLink(), Parent: nextRef()})
		case 1:
			s.Edits = append(s.Edits, truechange.Attach{Node: nextRef(), Link: nextLink(), Parent: nextRef()})
		case 2:
			n := int(next()) % 3
			kids := make([]truechange.KidArg, 0, n)
			for i := 0; i < n; i++ {
				kids = append(kids, truechange.KidArg{Link: nextLink(), URI: nextURI()})
			}
			s.Edits = append(s.Edits, truechange.Load{Node: nextRef(), Kids: kids, Lits: nextLits()})
		case 3:
			n := int(next()) % 3
			kids := make([]truechange.KidArg, 0, n)
			for i := 0; i < n; i++ {
				kids = append(kids, truechange.KidArg{Link: nextLink(), URI: nextURI()})
			}
			s.Edits = append(s.Edits, truechange.Unload{Node: nextRef(), Kids: kids, Lits: nextLits()})
		default:
			s.Edits = append(s.Edits, truechange.Update{Node: nextRef(), Old: nextLits(), New: nextLits()})
		}
	}
	return &s
}

// FuzzTreeSeed is the (seed, size) the agreement fuzz target builds its
// fixed tree from; shared so proptest's seed selection classifies byte
// inputs against exactly the tree the fuzz target uses.
const (
	FuzzTreeSeed = 1
	FuzzTreeSize = 12
)
