package mtree

import (
	"errors"
	"testing"

	"repro/internal/derrors"
	"repro/internal/exp"
	"repro/internal/sig"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// decodeFuzzScript deterministically maps arbitrary bytes onto an edit
// script over the exp schema. The decoder is deliberately loose — URIs,
// tags, and links are drawn from small pools so that a meaningful fraction
// of decoded scripts is compliant with a small tree, while the rest
// exercises every rejection path.
func decodeFuzzScript(data []byte) *truechange.Script {
	tags := []sig.Tag{exp.Num, exp.Var, exp.Add, exp.Sub, exp.Mul, exp.Call, exp.Let}
	links := []sig.Link{"e1", "e2", "a", "bound", "body", "n", "name", "f", "x", sig.RootLink}

	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	nextURI := func() uri.URI { return uri.URI(next()) % 64 }
	nextTag := func() sig.Tag { return tags[int(next())%len(tags)] }
	nextLink := func() sig.Link { return links[int(next())%len(links)] }
	nextRef := func() truechange.NodeRef {
		if next()%8 == 0 {
			return truechange.RootRef
		}
		return truechange.NodeRef{Tag: nextTag(), URI: nextURI()}
	}
	nextLit := func() any {
		switch next() % 3 {
		case 0:
			return int64(next())
		case 1:
			return "s" + string(rune('a'+next()%26))
		default:
			return float64(next())
		}
	}
	nextLits := func() []truechange.LitArg {
		n := int(next()) % 3
		out := make([]truechange.LitArg, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, truechange.LitArg{Link: nextLink(), Value: nextLit()})
		}
		return out
	}

	var s truechange.Script
	for len(data) > 0 && len(s.Edits) < 24 {
		switch next() % 5 {
		case 0:
			s.Edits = append(s.Edits, truechange.Detach{Node: nextRef(), Link: nextLink(), Parent: nextRef()})
		case 1:
			s.Edits = append(s.Edits, truechange.Attach{Node: nextRef(), Link: nextLink(), Parent: nextRef()})
		case 2:
			n := int(next()) % 3
			kids := make([]truechange.KidArg, 0, n)
			for i := 0; i < n; i++ {
				kids = append(kids, truechange.KidArg{Link: nextLink(), URI: nextURI()})
			}
			s.Edits = append(s.Edits, truechange.Load{Node: nextRef(), Kids: kids, Lits: nextLits()})
		case 3:
			n := int(next()) % 3
			kids := make([]truechange.KidArg, 0, n)
			for i := 0; i < n; i++ {
				kids = append(kids, truechange.KidArg{Link: nextLink(), URI: nextURI()})
			}
			s.Edits = append(s.Edits, truechange.Unload{Node: nextRef(), Kids: kids, Lits: nextLits()})
		default:
			s.Edits = append(s.Edits, truechange.Update{Node: nextRef(), Old: nextLits(), New: nextLits()})
		}
	}
	return &s
}

// FuzzTypecheckPatchAgreement is the fuzzed form of the paper's safety
// results (Theorem 3.6 / Definition 3.5): for an arbitrary decoded script
// over a fixed tree,
//
//   - Comply and Patch agree — a script that passes the compliance check
//     applies in full, and one that fails it is rejected with an error
//     matching ErrNonCompliantScript;
//   - a failed Patch is a no-op: the tree's observable state is exactly
//     its pre-patch state (transactional rollback);
//   - none of Comply, Patch, or the linear type checker panics, whatever
//     the script.
func FuzzTypecheckPatchAgreement(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	// A seed decoding to a detach of a plausible small-URI node.
	f.Add([]byte{0, 1, 2, 9, 1, 3})
	f.Add([]byte{2, 1, 5, 0, 3, 1, 7, 7, 4, 1, 1, 1, 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := decodeFuzzScript(data)

		g := exp.NewGen(1)
		mt, err := FromTree(g.Schema(), g.Tree(12))
		if err != nil {
			t.Fatal(err)
		}
		before := dump(mt)

		// The linear type checker must never panic on arbitrary edits.
		st := truechange.ClosedState()
		_ = truechange.Check(g.Schema(), s, st)

		complyErr := mt.Comply(s)
		patchErr := mt.Patch(s)

		if complyErr == nil && patchErr != nil {
			t.Fatalf("script passes Comply but Patch failed: %v\nscript: %v", patchErr, s.Edits)
		}
		if complyErr != nil && patchErr == nil {
			t.Fatalf("script fails Comply (%v) but Patch succeeded\nscript: %v", complyErr, s.Edits)
		}
		if patchErr != nil {
			if !errors.Is(patchErr, derrors.ErrNonCompliantScript) {
				t.Fatalf("patch error does not match ErrNonCompliantScript: %v", patchErr)
			}
			if after := dump(mt); after != before {
				t.Fatalf("failed patch mutated the tree:\n--- before ---\n%s--- after ---\n%s", before, after)
			}
		}
	})
}
