package mtree

import (
	"errors"
	"testing"

	"repro/internal/derrors"
	"repro/internal/exp"
	"repro/internal/truechange"
)

// FuzzTypecheckPatchAgreement is the fuzzed form of the paper's safety
// results (Theorem 3.6 / Definition 3.5): for an arbitrary decoded script
// over a fixed tree,
//
//   - Comply and Patch agree — a script that passes the compliance check
//     applies in full, and one that fails it is rejected with an error
//     matching ErrNonCompliantScript;
//   - a failed Patch is a no-op: the tree's observable state is exactly
//     its pre-patch state (transactional rollback);
//   - none of Comply, Patch, or the linear type checker panics, whatever
//     the script.
func FuzzTypecheckPatchAgreement(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	// A seed decoding to a detach of a plausible small-URI node.
	f.Add([]byte{0, 1, 2, 9, 1, 3})
	f.Add([]byte{2, 1, 5, 0, 3, 1, 7, 7, 4, 1, 1, 1, 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := FuzzDecodeScript(data)

		g := exp.NewGen(FuzzTreeSeed)
		mt, err := FromTree(g.Schema(), g.Tree(FuzzTreeSize))
		if err != nil {
			t.Fatal(err)
		}
		before := dump(mt)

		// The linear type checker must never panic on arbitrary edits.
		st := truechange.ClosedState()
		_ = truechange.Check(g.Schema(), s, st)

		complyErr := mt.Comply(s)
		patchErr := mt.Patch(s)

		if complyErr == nil && patchErr != nil {
			t.Fatalf("script passes Comply but Patch failed: %v\nscript: %v", patchErr, s.Edits)
		}
		if complyErr != nil && patchErr == nil {
			t.Fatalf("script fails Comply (%v) but Patch succeeded\nscript: %v", complyErr, s.Edits)
		}
		if patchErr != nil {
			if !errors.Is(patchErr, derrors.ErrNonCompliantScript) {
				t.Fatalf("patch error does not match ErrNonCompliantScript: %v", patchErr)
			}
			if after := dump(mt); after != before {
				t.Fatalf("failed patch mutated the tree:\n--- before ---\n%s--- after ---\n%s", before, after)
			}
		}
	})
}
