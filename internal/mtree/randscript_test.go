package mtree

import (
	"math/rand"
	"testing"

	"repro/internal/exp"
	"repro/internal/sig"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// TestLemma38RandomEdits validates Lemma 3.8 (type-safe edits) on randomly
// generated well-typed edit sequences, independent of the truediff
// algorithm: starting from a closed tree, apply hundreds of random valid
// detach/attach/load/unload/update edits; after every single edit, the
// open tree must be well-typed relative to the typing state the checker
// derived (Σ, S, R ⊢ t).
func TestLemma38RandomEdits(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		runRandomEdits(t, seed, 150)
	}
}

type randEditor struct {
	t     *testing.T
	rng   *rand.Rand
	sch   *sig.Schema
	mt    *MTree
	st    *truechange.State
	alloc *uri.Allocator
}

func runRandomEdits(t *testing.T, seed int64, steps int) {
	t.Helper()
	g := exp.NewGen(seed)
	tr := g.Tree(25)
	mt, err := FromTree(g.Schema(), tr)
	if err != nil {
		t.Fatal(err)
	}
	e := &randEditor{
		t:     t,
		rng:   rand.New(rand.NewSource(seed ^ 0x5eed)),
		sch:   g.Schema(),
		mt:    mt,
		st:    truechange.ClosedState(),
		alloc: g.Alloc(),
	}
	for step := 0; step < steps; step++ {
		edit := e.randomEdit()
		if edit == nil {
			continue
		}
		if err := truechange.CheckEdit(e.sch, edit, e.st); err != nil {
			t.Fatalf("seed %d step %d: constructed edit rejected: %v\nedit: %s", seed, step, err, edit)
		}
		if err := e.mt.ProcessEdit(edit); err != nil {
			t.Fatalf("seed %d step %d: semantics failed on well-typed edit: %v\nedit: %s", seed, step, err, edit)
		}
		if err := e.mt.CheckTree(e.st); err != nil {
			t.Fatalf("seed %d step %d: open tree ill-typed after %s: %v", seed, step, edit, err)
		}
	}
}

// attachedEdges enumerates (parent, link, kid) triples with a non-nil kid.
func (e *randEditor) attachedEdges() []truechange.Detach {
	var out []truechange.Detach
	for _, n := range e.allNodes() {
		for link, kid := range n.Kids {
			if kid != nil {
				out = append(out, truechange.Detach{
					Node:   truechange.NodeRef{Tag: kid.Tag, URI: kid.URI},
					Link:   link,
					Parent: truechange.NodeRef{Tag: n.Tag, URI: n.URI},
				})
			}
		}
	}
	return out
}

func (e *randEditor) allNodes() []*MNode {
	var out []*MNode
	for u := uri.URI(0); u <= e.alloc.Peek(); u++ {
		if n := e.mt.Lookup(u); n != nil {
			out = append(out, n)
		}
	}
	return out
}

// inSubtree reports whether target occurs in the subtree rooted at root.
func inSubtree(root *MNode, target uri.URI) bool {
	if root == nil {
		return false
	}
	if root.URI == target {
		return true
	}
	for _, k := range root.Kids {
		if inSubtree(k, target) {
			return true
		}
	}
	return false
}

func (e *randEditor) randomEdit() truechange.Edit {
	// Try edit kinds in a random order until one is applicable.
	kinds := e.rng.Perm(5)
	for _, kind := range kinds {
		switch kind {
		case 0: // detach
			edges := e.attachedEdges()
			if len(edges) == 0 {
				continue
			}
			return edges[e.rng.Intn(len(edges))]

		case 1: // attach a root into a compatible empty slot (no cycles)
			roots := e.rootURIs()
			if len(roots) == 0 || len(e.st.Slots) == 0 {
				continue
			}
			for _, r := range roots {
				rootNode := e.mt.Lookup(r)
				for slot := range e.st.Slots {
					if inSubtree(rootNode, slot.URI) {
						continue // attaching into its own subtree would cycle
					}
					parent := e.mt.Lookup(slot.URI)
					if parent == nil {
						continue
					}
					return truechange.Attach{
						Node:   truechange.NodeRef{Tag: rootNode.Tag, URI: r},
						Link:   slot.Link,
						Parent: truechange.NodeRef{Tag: parent.Tag, URI: slot.URI},
					}
				}
			}

		case 2: // load a new node consuming 0..2 roots
			tag, kids, lits, ok := e.loadArgs()
			if !ok {
				continue
			}
			return truechange.Load{
				Node: truechange.NodeRef{Tag: tag, URI: e.alloc.Fresh()},
				Kids: kids,
				Lits: lits,
			}

		case 3: // unload a root, releasing its kids
			roots := e.rootURIs()
			for _, r := range roots {
				n := e.mt.Lookup(r)
				ok := true
				var kids []truechange.KidArg
				g := e.sch.Lookup(n.Tag)
				for _, spec := range g.Kids {
					kid := n.Kids[spec.Link]
					if kid == nil {
						ok = false // unload requires a full node (no holes)
						break
					}
					kids = append(kids, truechange.KidArg{Link: spec.Link, URI: kid.URI})
				}
				if !ok {
					continue
				}
				var lits []truechange.LitArg
				for _, spec := range g.Lits {
					lits = append(lits, truechange.LitArg{Link: spec.Link, Value: n.Lits[spec.Link]})
				}
				return truechange.Unload{
					Node: truechange.NodeRef{Tag: n.Tag, URI: r},
					Kids: kids,
					Lits: lits,
				}
			}

		case 4: // update literals of any node that has some
			nodes := e.allNodes()
			e.rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
			for _, n := range nodes {
				g := e.sch.Lookup(n.Tag)
				if g == nil || len(g.Lits) == 0 {
					continue
				}
				var old, now []truechange.LitArg
				for _, spec := range g.Lits {
					old = append(old, truechange.LitArg{Link: spec.Link, Value: n.Lits[spec.Link]})
					var v any
					if spec.Type == sig.IntLit {
						v = int64(e.rng.Intn(1000))
					} else {
						v = "r" + string(rune('a'+e.rng.Intn(26)))
					}
					now = append(now, truechange.LitArg{Link: spec.Link, Value: v})
				}
				return truechange.Update{
					Node: truechange.NodeRef{Tag: n.Tag, URI: n.URI},
					Old:  old,
					New:  now,
				}
			}
		}
	}
	return nil
}

// rootURIs returns the current unattached roots, excluding the pre-defined
// root node itself (which can be neither attached nor unloaded).
func (e *randEditor) rootURIs() []uri.URI {
	var out []uri.URI
	for r := range e.st.Roots {
		if r != uri.Root {
			out = append(out, r)
		}
	}
	e.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// loadArgs picks a random constructor and fills its kid slots with distinct
// currently detached roots, failing if not enough are available.
func (e *randEditor) loadArgs() (sig.Tag, []truechange.KidArg, []truechange.LitArg, bool) {
	tags := []sig.Tag{exp.Num, exp.Var, exp.Add, exp.Sub, exp.Mul, exp.Call, exp.Let}
	tag := tags[e.rng.Intn(len(tags))]
	g := e.sch.Lookup(tag)
	roots := e.rootURIs()
	if len(roots) < len(g.Kids) {
		return "", nil, nil, false
	}
	var kids []truechange.KidArg
	for i, spec := range g.Kids {
		kids = append(kids, truechange.KidArg{Link: spec.Link, URI: roots[i]})
	}
	var lits []truechange.LitArg
	for _, spec := range g.Lits {
		var v any
		if spec.Type == sig.IntLit {
			v = int64(e.rng.Intn(100))
		} else {
			v = "v" + string(rune('a'+e.rng.Intn(26)))
		}
		lits = append(lits, truechange.LitArg{Link: spec.Link, Value: v})
	}
	return tag, kids, lits, true
}
