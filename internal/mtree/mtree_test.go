package mtree

import (
	"strings"
	"testing"

	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/uri"
)

func expSchema() *sig.Schema {
	s := sig.NewSchema("mtree-test")
	s.MustDeclare(sig.Sig{Tag: "Num", Lits: []sig.LitSpec{{Link: "n", Type: sig.IntLit}}, Result: "Exp"})
	s.MustDeclare(sig.Sig{Tag: "Var", Lits: []sig.LitSpec{{Link: "name", Type: sig.StringLit}}, Result: "Exp"})
	for _, t := range []sig.Tag{"Add", "Sub", "Mul"} {
		s.MustDeclare(sig.Sig{Tag: t, Kids: []sig.KidSpec{{Link: "e1", Sort: "Exp"}, {Link: "e2", Sort: "Exp"}}, Result: "Exp"})
	}
	return s
}

func nref(tag sig.Tag, u uri.URI) truechange.NodeRef {
	return truechange.NodeRef{Tag: tag, URI: u}
}

// TestStandardSemanticsWalkthrough replays the three edit scripts of paper
// §3.1 against the standard semantics of §3.2, starting from the empty
// tree ε and checking every intermediate tree.
func TestStandardSemanticsWalkthrough(t *testing.T) {
	sch := expSchema()
	mt := New(sch)
	if mt.Top() != nil {
		t.Fatal("fresh tree should be empty")
	}
	if mt.String() != "ε" {
		t.Errorf("empty tree renders as %q", mt.String())
	}

	d1 := &truechange.Script{Edits: []truechange.Edit{
		truechange.Load{Node: nref("Var", 1), Lits: []truechange.LitArg{{Link: "name", Value: "a"}}},
		truechange.Load{Node: nref("Var", 2), Lits: []truechange.LitArg{{Link: "name", Value: "b"}}},
		truechange.Load{Node: nref("Add", 3), Kids: []truechange.KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 2}}},
		truechange.Attach{Node: nref("Add", 3), Link: sig.RootLink, Parent: truechange.RootRef},
	}}
	if err := truechange.WellTypedInit(sch, d1); err != nil {
		t.Fatalf("∆1: %v", err)
	}
	if err := mt.Patch(d1); err != nil {
		t.Fatalf("patch ∆1: %v", err)
	}
	// Add3(Var1("a"), Var2("b"))
	if got := mt.String(); got != `Add#3(Var#1{name="a"}, Var#2{name="b"})` {
		t.Errorf("after ∆1: %s", got)
	}
	if mt.Size() != 3 {
		t.Errorf("index size = %d, want 3", mt.Size())
	}

	d2 := &truechange.Script{Edits: []truechange.Edit{
		truechange.Update{Node: nref("Var", 2),
			Old: []truechange.LitArg{{Link: "name", Value: "b"}},
			New: []truechange.LitArg{{Link: "name", Value: "c"}}},
	}}
	if err := truechange.WellTyped(sch, d2); err != nil {
		t.Fatalf("∆2: %v", err)
	}
	if err := mt.Patch(d2); err != nil {
		t.Fatalf("patch ∆2: %v", err)
	}
	if got := mt.String(); got != `Add#3(Var#1{name="a"}, Var#2{name="c"})` {
		t.Errorf("after ∆2: %s", got)
	}

	d3 := &truechange.Script{Edits: []truechange.Edit{
		truechange.Detach{Node: nref("Add", 3), Link: sig.RootLink, Parent: truechange.RootRef},
		truechange.Unload{Node: nref("Add", 3), Kids: []truechange.KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 2}}},
		truechange.Load{Node: nref("Mul", 4), Kids: []truechange.KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 2}}},
		truechange.Attach{Node: nref("Mul", 4), Link: sig.RootLink, Parent: truechange.RootRef},
	}}
	if err := truechange.WellTyped(sch, d3); err != nil {
		t.Fatalf("∆3: %v", err)
	}
	if err := mt.Comply(d3); err != nil {
		t.Fatalf("∆3 compliance: %v", err)
	}
	if err := mt.Patch(d3); err != nil {
		t.Fatalf("patch ∆3: %v", err)
	}
	if got := mt.String(); got != `Mul#4(Var#1{name="a"}, Var#2{name="c"})` {
		t.Errorf("after ∆3: %s", got)
	}
	if mt.Lookup(3) != nil {
		t.Error("URI 3 should be unloaded from the index")
	}
	if mt.Lookup(4) == nil || mt.Lookup(1) == nil {
		t.Error("URIs 4 and 1 should be indexed")
	}
	if err := mt.CheckClosed(); err != nil {
		t.Errorf("final tree should be closed and well-typed: %v", err)
	}
}

func buildTree(t *testing.T, sch *sig.Schema) (*tree.Node, *uri.Allocator) {
	t.Helper()
	alloc := uri.NewAllocator()
	b := tree.NewBuilder(sch, alloc)
	tr := b.MustN("Add", b.MustN("Sub", b.MustN("Var", "a"), b.MustN("Var", "b")), b.MustN("Num", 7))
	return tr, alloc
}

func TestFromTreeAndBack(t *testing.T) {
	sch := expSchema()
	tr, alloc := buildTree(t, sch)
	mt, err := FromTree(sch, tr)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Size() != tr.Size() {
		t.Errorf("index size = %d, want %d", mt.Size(), tr.Size())
	}
	if !mt.EqualTree(tr) {
		t.Error("mutable tree should equal its source")
	}
	back, err := mt.ToTree(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(back, tr) {
		t.Errorf("round trip changed the tree:\n%s\n%s", back, tr)
	}
	if back.URI != tr.URI {
		t.Error("round trip should preserve URIs")
	}
	if err := mt.CheckClosed(); err != nil {
		t.Errorf("converted tree should be closed: %v", err)
	}
}

func TestFromTreeNil(t *testing.T) {
	sch := expSchema()
	mt, err := FromTree(sch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Top() != nil {
		t.Error("nil source should yield an empty tree")
	}
	if _, err := mt.ToTree(uri.NewAllocator()); err == nil {
		t.Error("ToTree on an empty tree should fail")
	}
}

func TestPatchFailures(t *testing.T) {
	sch := expSchema()
	tr, _ := buildTree(t, sch)
	mk := func() *MTree {
		mt, err := FromTree(sch, tr)
		if err != nil {
			t.Fatal(err)
		}
		return mt
	}
	cases := []struct {
		name string
		edit truechange.Edit
	}{
		{"detach unknown parent", truechange.Detach{Node: nref("Var", 3), Link: "e1", Parent: nref("Sub", 99)}},
		{"detach unknown link", truechange.Detach{Node: nref("Var", 3), Link: "zz", Parent: nref("Sub", 2)}},
		{"attach unknown parent", truechange.Attach{Node: nref("Var", 3), Link: "e1", Parent: nref("Sub", 99)}},
		{"attach unknown node", truechange.Attach{Node: nref("Var", 99), Link: "e1", Parent: nref("Sub", 2)}},
		{"attach unknown link", truechange.Attach{Node: nref("Var", 3), Link: "zz", Parent: nref("Sub", 2)}},
		{"load duplicate uri", truechange.Load{Node: nref("Num", 1)}},
		{"load unknown kid", truechange.Load{Node: nref("Add", 50), Kids: []truechange.KidArg{{Link: "e1", URI: 98}, {Link: "e2", URI: 99}}}},
		{"unload unknown", truechange.Unload{Node: nref("Num", 99)}},
		{"update unknown node", truechange.Update{Node: nref("Var", 99), New: []truechange.LitArg{{Link: "name", Value: "x"}}}},
		{"update unknown literal", truechange.Update{Node: nref("Var", 3), New: []truechange.LitArg{{Link: "zz", Value: "x"}}}},
	}
	for _, c := range cases {
		mt := mk()
		err := mt.Patch(&truechange.Script{Edits: []truechange.Edit{c.edit}})
		if err == nil {
			t.Errorf("%s: patch should fail", c.name)
		}
	}
}

func TestCheckNodeDefinition33(t *testing.T) {
	sch := expSchema()
	tr, _ := buildTree(t, sch)
	mt, err := FromTree(sch, tr)
	if err != nil {
		t.Fatal(err)
	}
	top := mt.Top()

	// Closed tree: well-typed relative to empty slots.
	if srt, err := mt.CheckNode(top, nil); err != nil || srt != "Exp" {
		t.Errorf("CheckNode = %s, %v", srt, err)
	}

	// Empty an inner slot: ill-typed without S, well-typed with the slot
	// recorded (condition 3a of Definition 3.3).
	sub := top.Kids["e1"]
	sub.Kids["e2"] = nil
	if _, err := mt.CheckNode(top, nil); err == nil {
		t.Error("tree with unrecorded empty slot should be ill-typed")
	}
	slots := map[truechange.Slot]sig.Sort{{URI: sub.URI, Link: "e2"}: "Exp"}
	if _, err := mt.CheckNode(top, slots); err != nil {
		t.Errorf("tree with recorded slot should be well-typed: %v", err)
	}
	// A slot of incompatible sort does not satisfy the kid expectation.
	badSlots := map[truechange.Slot]sig.Sort{{URI: sub.URI, Link: "e2"}: "Stmt"}
	if _, err := mt.CheckNode(top, badSlots); err == nil {
		t.Error("slot with incompatible sort should be rejected")
	}

	// Bad literal value.
	sub.Kids["e2"] = &MNode{Tag: "Num", URI: 77, Kids: map[sig.Link]*MNode{}, Lits: map[sig.Link]any{"n": "oops"}}
	if _, err := mt.CheckNode(top, nil); err == nil {
		t.Error("ill-typed literal should be rejected")
	}
}

func TestCheckTreeDefinition34(t *testing.T) {
	sch := expSchema()
	tr, _ := buildTree(t, sch)
	mt, err := FromTree(sch, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.CheckTree(truechange.ClosedState()); err != nil {
		t.Fatalf("closed tree: %v", err)
	}

	// A state naming an unindexed root is rejected.
	st := truechange.ClosedState()
	st.Roots[99] = "Exp"
	if err := mt.CheckTree(st); err == nil {
		t.Error("unindexed root should be rejected")
	}

	// A state naming a slot of an unindexed node is rejected.
	st = truechange.ClosedState()
	st.Slots[truechange.Slot{URI: 99, Link: "e1"}] = "Exp"
	if err := mt.CheckTree(st); err == nil {
		t.Error("slot of unindexed node should be rejected")
	}

	// Detach a subtree: the open tree is well-typed relative to the
	// matching state, and ill-typed relative to the closed state.
	top := mt.Top()
	detached := top.Kids["e1"]
	top.Kids["e1"] = nil
	open := truechange.ClosedState()
	open.Roots[detached.URI] = "Exp"
	open.Slots[truechange.Slot{URI: top.URI, Link: "e1"}] = "Exp"
	if err := mt.CheckTree(open); err != nil {
		t.Errorf("open tree with matching state: %v", err)
	}
	if err := mt.CheckTree(truechange.ClosedState()); err == nil {
		t.Error("open tree must not type-check against the closed state")
	}
	if err := mt.CheckClosed(); err == nil {
		t.Error("CheckClosed must fail on an open tree")
	}
}

func TestCheckClosedDetectsStrayIndexEntries(t *testing.T) {
	sch := expSchema()
	tr, _ := buildTree(t, sch)
	mt, err := FromTree(sch, tr)
	if err != nil {
		t.Fatal(err)
	}
	mt.index[999] = &MNode{Tag: "Num", URI: 999, Kids: map[sig.Link]*MNode{}, Lits: map[sig.Link]any{"n": int64(1)}}
	err = mt.CheckClosed()
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("stray index entry should be reported, got %v", err)
	}
}

func TestComplianceDefinition35(t *testing.T) {
	sch := expSchema()
	tr, _ := buildTree(t, sch)
	// tr = Add#5(Sub#3(Var#1(a), Var#2(b)), Num#4(7))
	mk := func() *MTree {
		mt, err := FromTree(sch, tr)
		if err != nil {
			t.Fatal(err)
		}
		return mt
	}

	good := &truechange.Script{Edits: []truechange.Edit{
		truechange.Detach{Node: nref("Sub", 3), Link: "e1", Parent: nref("Add", 5)},
		truechange.Unload{Node: nref("Sub", 3), Kids: []truechange.KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 2}}},
		truechange.Detach{Node: nref("Var", 2), Link: "e2", Parent: nref("Sub", 3)},
	}}
	// The third edit refers to the already-unloaded Sub#3: compliance is
	// checked against the evolving tree, so this must fail…
	if err := mk().Comply(good); err == nil {
		t.Error("reference to an unloaded node should not comply")
	}
	// …whereas the two-edit prefix complies.
	if err := mk().Comply(&truechange.Script{Edits: good.Edits[:2]}); err != nil {
		t.Errorf("prefix should comply: %v", err)
	}

	bad := []truechange.Edit{
		// Wrong tag for the detached node.
		truechange.Detach{Node: nref("Mul", 3), Link: "e1", Parent: nref("Add", 5)},
		// Wrong parent tag.
		truechange.Detach{Node: nref("Sub", 3), Link: "e1", Parent: nref("Mul", 5)},
		// Slot holds a different node.
		truechange.Detach{Node: nref("Num", 4), Link: "e1", Parent: nref("Add", 5)},
		// Load with a stale URI.
		truechange.Load{Node: nref("Num", 4), Lits: []truechange.LitArg{{Link: "n", Value: int64(1)}}},
		// Unload with wrong literal value.
		truechange.Unload{Node: nref("Num", 4), Lits: []truechange.LitArg{{Link: "n", Value: int64(8)}}},
		// Update with wrong old value.
		truechange.Update{Node: nref("Var", 1),
			Old: []truechange.LitArg{{Link: "name", Value: "zzz"}},
			New: []truechange.LitArg{{Link: "name", Value: "q"}}},
	}
	for _, e := range bad {
		if err := mk().Comply(&truechange.Script{Edits: []truechange.Edit{e}}); err == nil {
			t.Errorf("edit %s should not comply", e)
		}
	}

	// Compliance must not mutate the receiver.
	mt := mk()
	_ = mt.Comply(good)
	if !mt.EqualTree(tr) {
		t.Error("Comply mutated the tree")
	}

	// Duplicate loads of one URI within a script are rejected.
	dup := &truechange.Script{Edits: []truechange.Edit{
		truechange.Load{Node: nref("Var", 50), Lits: []truechange.LitArg{{Link: "name", Value: "x"}}},
		truechange.Load{Node: nref("Var", 50), Lits: []truechange.LitArg{{Link: "name", Value: "y"}}},
	}}
	if err := mk().Comply(dup); err == nil {
		t.Error("duplicate load URIs should not comply")
	}
}

// TestTypeSafetyTheorem36 validates Theorem 3.6 on a concrete case: a
// well-typed, compliant script patches a closed well-typed tree into a
// closed well-typed tree.
func TestTypeSafetyTheorem36(t *testing.T) {
	sch := expSchema()
	tr, _ := buildTree(t, sch)
	mt, err := FromTree(sch, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.CheckClosed(); err != nil {
		t.Fatalf("precondition: %v", err)
	}

	// Swap the two operands of Sub#3 (Var#1 and Var#2).
	swap := &truechange.Script{Edits: []truechange.Edit{
		truechange.Detach{Node: nref("Var", 1), Link: "e1", Parent: nref("Sub", 3)},
		truechange.Detach{Node: nref("Var", 2), Link: "e2", Parent: nref("Sub", 3)},
		truechange.Attach{Node: nref("Var", 2), Link: "e1", Parent: nref("Sub", 3)},
		truechange.Attach{Node: nref("Var", 1), Link: "e2", Parent: nref("Sub", 3)},
	}}
	if err := truechange.WellTyped(sch, swap); err != nil {
		t.Fatalf("script: %v", err)
	}
	if err := mt.Comply(swap); err != nil {
		t.Fatalf("compliance: %v", err)
	}
	if err := mt.Patch(swap); err != nil {
		t.Fatalf("patch: %v", err)
	}
	if err := mt.CheckClosed(); err != nil {
		t.Errorf("patched tree should be closed and well-typed: %v", err)
	}
	if got := mt.String(); !strings.Contains(got, `Sub#3(Var#2{name="b"}, Var#1{name="a"})`) {
		t.Errorf("swap result: %s", got)
	}
}

func TestEqualTreeDetectsDifferences(t *testing.T) {
	sch := expSchema()
	tr, _ := buildTree(t, sch)
	mt, err := FromTree(sch, tr)
	if err != nil {
		t.Fatal(err)
	}
	alloc := uri.NewAllocator()
	b := tree.NewBuilder(sch, alloc)
	other := b.MustN("Add", b.MustN("Sub", b.MustN("Var", "a"), b.MustN("Var", "X")), b.MustN("Num", 7))
	if mt.EqualTree(other) {
		t.Error("literal difference should be detected")
	}
	shape := b.MustN("Add", b.MustN("Num", 1), b.MustN("Num", 7))
	if mt.EqualTree(shape) {
		t.Error("shape difference should be detected")
	}
	if mt.EqualTree(nil) {
		t.Error("nil tree is not equal to a non-empty tree")
	}
}

func TestFromTreeRejectsDuplicateURIs(t *testing.T) {
	sch := expSchema()
	alloc := uri.NewAllocator()
	b := tree.NewBuilder(sch, alloc)
	leaf := b.MustN("Num", 1)
	// Craft a tree sharing the same node object twice (duplicate URIs).
	shared, err := tree.NewWithURI(sch, alloc, 50, "Add", []*tree.Node{leaf, leaf}, nil, tree.SHA256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTree(sch, shared); err == nil {
		t.Error("duplicate URIs should be rejected")
	}
}
