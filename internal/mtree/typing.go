package mtree

import (
	"fmt"

	"repro/internal/derrors"
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/truechange"
	"repro/internal/uri"
)

// This file implements the metatheoretic definitions of paper §3.4 that
// connect the standard semantics to the truechange type system: generalized
// tree typing relative to empty slots (Definition 3.3), MTree typing
// relative to slots and roots (Definition 3.4), and syntactic compliance of
// edit scripts (Definition 3.5). Tests use them to validate Theorem 3.6
// (type safety) on concrete trees and scripts.

// CheckNode implements Definition 3.3 (MNode typing): n is well-typed
// relative to slots S if its tag's signature admits its literals and every
// kid is either an empty slot recorded in S (with a compatible sort) or a
// recursively well-typed subtree of a compatible sort. It returns the
// node's sort.
func (mt *MTree) CheckNode(n *MNode, slots map[truechange.Slot]sig.Sort) (sig.Sort, error) {
	g := mt.sch.Lookup(n.Tag)
	if g == nil {
		return "", fmt.Errorf("mtree: undeclared tag %s", n.Tag)
	}
	if len(n.Lits) != len(g.Lits) {
		return "", fmt.Errorf("mtree: node %s has %d literals, signature of %s expects %d",
			n.URI, len(n.Lits), n.Tag, len(g.Lits))
	}
	for _, spec := range g.Lits {
		v, ok := n.Lits[spec.Link]
		if !ok {
			return "", fmt.Errorf("mtree: node %s lacks literal %q", n.URI, spec.Link)
		}
		if !spec.Type.Admits(v) {
			return "", fmt.Errorf("mtree: node %s literal %q: %#v does not conform to %s",
				n.URI, spec.Link, v, spec.Type)
		}
	}
	if len(n.Kids) != len(g.Kids) {
		return "", fmt.Errorf("mtree: node %s has %d kid links, signature of %s expects %d",
			n.URI, len(n.Kids), n.Tag, len(g.Kids))
	}
	for _, spec := range g.Kids {
		k, ok := n.Kids[spec.Link]
		if !ok {
			return "", fmt.Errorf("mtree: node %s lacks link %q", n.URI, spec.Link)
		}
		if k == nil {
			slot := truechange.Slot{URI: n.URI, Link: spec.Link}
			slotSort, recorded := slots[slot]
			if !recorded {
				return "", fmt.Errorf("mtree: node %s has empty slot %q not recorded in S", n.URI, spec.Link)
			}
			if !mt.sch.IsSubsort(slotSort, spec.Sort) {
				return "", fmt.Errorf("mtree: slot %s: sort %s is not a subsort of %s",
					slot, slotSort, spec.Sort)
			}
			continue
		}
		kidSort, err := mt.CheckNode(k, slots)
		if err != nil {
			return "", err
		}
		if !mt.sch.IsSubsort(kidSort, spec.Sort) {
			return "", fmt.Errorf("mtree: node %s kid %q: sort %s is not a subsort of %s",
				n.URI, spec.Link, kidSort, spec.Sort)
		}
	}
	return g.Result, nil
}

// CheckTree implements Definition 3.4 (MTree typing): every slot in S must
// name an indexed node with that link, and every root in R must name an
// indexed node whose sort (relative to S) is a subsort of its recorded sort.
func (mt *MTree) CheckTree(st *truechange.State) error {
	for slot := range st.Slots {
		p := mt.index[slot.URI]
		if p == nil {
			return fmt.Errorf("mtree: slot %s names an unindexed node", slot)
		}
		if _, ok := p.Kids[slot.Link]; !ok {
			return fmt.Errorf("mtree: slot %s: node has no such link", slot)
		}
	}
	for r, want := range st.Roots {
		n := mt.index[r]
		if n == nil {
			return fmt.Errorf("mtree: root %s is not indexed", r)
		}
		got, err := mt.CheckNode(n, st.Slots)
		if err != nil {
			return fmt.Errorf("mtree: root %s: %w", r, err)
		}
		if !mt.sch.IsSubsort(got, want) {
			return fmt.Errorf("mtree: root %s has sort %s, not a subsort of recorded %s", r, got, want)
		}
	}
	return nil
}

// CheckClosed reports whether the tree is closed and well-typed: a single
// attached tree under the pre-defined root, no empty slots anywhere
// (Σ, ε ⊢ t.root : Root).
func (mt *MTree) CheckClosed() error {
	st := truechange.ClosedState()
	if err := mt.CheckTree(st); err != nil {
		return err
	}
	// CheckTree validates the root against empty S, which already rejects
	// any nil slot below it. Additionally ensure the index holds no stray
	// detached roots: every indexed node must be reachable from the root.
	reach := make(map[uri.URI]bool, len(mt.index))
	var walk func(n *MNode)
	walk = func(n *MNode) {
		if n == nil || reach[n.URI] {
			return
		}
		reach[n.URI] = true
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(mt.root)
	for u := range mt.index {
		if !reach[u] {
			return fmt.Errorf("mtree: indexed node %s is unreachable from the root", u)
		}
	}
	return nil
}

// Comply implements Definition 3.5 (syntactic compliance ∆ ≺ t): the
// script's edits must refer to URIs that exist in the tree with the
// designated tags and links, and loaded URIs must be fresh. Compliance is
// checked against the evolving tree, so it simulates the patch on a
// scratch copy without mutating the receiver.
func (mt *MTree) Comply(s *truechange.Script) error {
	scratch := mt.cloneShallow()
	for i, e := range s.Edits {
		if err := scratch.complyEdit(e); err != nil {
			return fmt.Errorf("mtree: %w: edit #%d: %w", derrors.ErrNonCompliantScript, i, err)
		}
		if err := scratch.ProcessEdit(e); err != nil {
			return fmt.Errorf("mtree: %w: edit #%d failed while checking compliance: %w",
				derrors.ErrNonCompliantScript, i, err)
		}
	}
	return nil
}

func (mt *MTree) complyEdit(e truechange.Edit) error {
	switch ed := e.(type) {
	case truechange.Detach:
		p := mt.index[ed.Parent.URI]
		if p == nil {
			return fmt.Errorf("detach: parent %s not indexed", ed.Parent)
		}
		if p.Tag != ed.Parent.Tag {
			return fmt.Errorf("detach: parent %s has tag %s, edit claims %s", ed.Parent.URI, p.Tag, ed.Parent.Tag)
		}
		n, ok := p.Kids[ed.Link]
		if !ok {
			return fmt.Errorf("detach: parent %s has no link %q", ed.Parent, ed.Link)
		}
		if n == nil {
			return fmt.Errorf("detach: slot %s.%s already empty", ed.Parent, ed.Link)
		}
		if n.URI != ed.Node.URI || n.Tag != ed.Node.Tag {
			return fmt.Errorf("detach: slot %s.%s holds %s%s, edit claims %s", ed.Parent, ed.Link, n.Tag, n.URI, ed.Node)
		}
		return nil

	case truechange.Attach:
		// Syntactic compliance is ensured by the type system already
		// (Definition 3.5, case 2); nothing to check here.
		return nil

	case truechange.Load:
		// Freshness is relative to the evolving tree: the URI must not be
		// indexed at the point the load applies. (A URI may be loaded,
		// unloaded, and loaded again within one script; each load is fresh
		// at its own point.)
		if _, exists := mt.index[ed.Node.URI]; exists {
			return fmt.Errorf("load: URI %s is not fresh", ed.Node.URI)
		}
		return nil

	case truechange.Unload:
		n := mt.index[ed.Node.URI]
		if n == nil {
			return fmt.Errorf("unload: node %s not indexed", ed.Node)
		}
		if n.Tag != ed.Node.Tag {
			return fmt.Errorf("unload: node %s has tag %s, edit claims %s", ed.Node.URI, n.Tag, ed.Node.Tag)
		}
		for _, k := range ed.Kids {
			kid, ok := n.Kids[k.Link]
			if !ok {
				return fmt.Errorf("unload: node %s has no link %q", ed.Node, k.Link)
			}
			if kid == nil || kid.URI != k.URI {
				return fmt.Errorf("unload: node %s link %q does not hold %s", ed.Node, k.Link, k.URI)
			}
		}
		for _, l := range ed.Lits {
			v, ok := n.Lits[l.Link]
			if !ok {
				return fmt.Errorf("unload: node %s has no literal %q", ed.Node, l.Link)
			}
			if !tree.LitEqual(v, l.Value) {
				return fmt.Errorf("unload: node %s literal %q is %#v, edit claims %#v", ed.Node, l.Link, v, l.Value)
			}
		}
		return nil

	case truechange.Update:
		n := mt.index[ed.Node.URI]
		if n == nil {
			return fmt.Errorf("update: node %s not indexed", ed.Node)
		}
		if n.Tag != ed.Node.Tag {
			return fmt.Errorf("update: node %s has tag %s, edit claims %s", ed.Node.URI, n.Tag, ed.Node.Tag)
		}
		for _, l := range ed.Old {
			v, ok := n.Lits[l.Link]
			if !ok {
				return fmt.Errorf("update: node %s has no literal %q", ed.Node, l.Link)
			}
			if !tree.LitEqual(v, l.Value) {
				return fmt.Errorf("update: node %s literal %q is %#v, edit claims old value %#v", ed.Node, l.Link, v, l.Value)
			}
		}
		return nil

	default:
		return fmt.Errorf("unknown edit kind %T", e)
	}
}

// cloneShallow deep-copies the tree structure (nodes, maps) without copying
// literal values, which are immutable.
func (mt *MTree) cloneShallow() *MTree {
	c := &MTree{sch: mt.sch, index: make(map[uri.URI]*MNode, len(mt.index))}
	for u, n := range mt.index {
		cn := &MNode{
			Tag:  n.Tag,
			URI:  n.URI,
			Kids: make(map[sig.Link]*MNode, len(n.Kids)),
			Lits: make(map[sig.Link]any, len(n.Lits)),
		}
		for l, v := range n.Lits {
			cn.Lits[l] = v
		}
		c.index[u] = cn
	}
	for u, n := range mt.index {
		cn := c.index[u]
		for l, k := range n.Kids {
			if k == nil {
				cn.Kids[l] = nil
			} else {
				cn.Kids[l] = c.index[k.URI]
			}
		}
	}
	c.root = c.index[uri.Root]
	return c
}
