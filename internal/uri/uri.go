// Package uri provides stable node identities for structural diffing.
//
// Every tree node carries a URI that identifies it across edits. Edit
// scripts refer to nodes by URI, which is what makes truechange patches
// concise: a patch only mentions the URIs of changed nodes, never the
// unchanged remainder of the tree.
//
// URI 0 is reserved for the pre-defined root node that every mutable tree
// contains (the paper writes it as "null"). Fresh URIs are handed out by an
// Allocator; allocators are cheap and a new one is typically created per
// document so that URIs stay small and deterministic.
package uri

import "strconv"

// URI identifies a tree node. The zero value is the pre-defined root node.
type URI uint64

// Root is the URI of the pre-defined root node of every mutable tree
// (written null in the paper).
const Root URI = 0

// IsRoot reports whether u is the pre-defined root URI.
func (u URI) IsRoot() bool { return u == Root }

// String renders the URI; the root prints as "#root", others as "#N".
func (u URI) String() string {
	if u == Root {
		return "#root"
	}
	return "#" + strconv.FormatUint(uint64(u), 10)
}

// Allocator hands out fresh URIs, starting at 1. The zero value is ready to
// use. Allocators are not safe for concurrent use; allocate URIs from a
// single goroutine or use one allocator per goroutine.
type Allocator struct {
	next URI
}

// NewAllocator returns an allocator whose first URI is 1.
func NewAllocator() *Allocator { return &Allocator{} }

// Fresh returns a URI that the allocator has never returned before.
func (a *Allocator) Fresh() URI {
	a.next++
	return a.next
}

// Reserve advances the allocator so that all URIs up to and including u are
// considered used. It is a no-op if u has already been passed. Reserve is
// used when grafting externally built trees into a document so that future
// Fresh calls cannot collide with existing nodes.
func (a *Allocator) Reserve(u URI) {
	if u > a.next {
		a.next = u
	}
}

// Peek reports the highest URI handed out so far (0 if none).
func (a *Allocator) Peek() URI { return a.next }
