package uri

import (
	"testing"
	"testing/quick"
)

func TestRoot(t *testing.T) {
	if !Root.IsRoot() {
		t.Error("Root should be root")
	}
	if URI(1).IsRoot() {
		t.Error("URI 1 is not root")
	}
	if Root.String() != "#root" {
		t.Errorf("root renders as %q", Root.String())
	}
	if URI(42).String() != "#42" {
		t.Errorf("URI 42 renders as %q", URI(42).String())
	}
}

func TestAllocatorFreshness(t *testing.T) {
	a := NewAllocator()
	seen := map[URI]bool{Root: true}
	for i := 0; i < 1000; i++ {
		u := a.Fresh()
		if seen[u] {
			t.Fatalf("URI %s issued twice", u)
		}
		seen[u] = true
	}
	if a.Peek() != 1000 {
		t.Errorf("Peek = %v", a.Peek())
	}
}

func TestZeroValueAllocator(t *testing.T) {
	var a Allocator
	if u := a.Fresh(); u != 1 {
		t.Errorf("zero-value allocator first URI = %s, want #1", u)
	}
}

func TestReserve(t *testing.T) {
	a := NewAllocator()
	a.Reserve(100)
	if u := a.Fresh(); u != 101 {
		t.Errorf("after Reserve(100), Fresh = %s", u)
	}
	a.Reserve(50) // no-op: already past
	if u := a.Fresh(); u != 102 {
		t.Errorf("Reserve must never move backwards: Fresh = %s", u)
	}
}

// Property: fresh URIs strictly increase and never revisit reserved ones.
func TestQuickReserveFresh(t *testing.T) {
	prop := func(reserves []uint16) bool {
		a := NewAllocator()
		last := URI(0)
		for _, r := range reserves {
			a.Reserve(URI(r))
			u := a.Fresh()
			if u <= last || u <= URI(r) {
				return false
			}
			last = u
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
