// Package derrors declares the sentinel errors shared by the diffing
// pipeline. It is a leaf package so that every layer — tree construction,
// the truechange type checker, the standard semantics, the truediff
// algorithm, and the batch engine — can classify its failures with the same
// values, and so that the public structdiff facade can re-export them
// without import cycles.
//
// All sentinels are returned wrapped (via %w) with operation-specific
// context; match them with errors.Is, never by string comparison.
package derrors

import "errors"

var (
	// ErrNilTree reports a nil source or target tree on a diff or patch
	// entry point.
	ErrNilTree = errors.New("nil input tree")

	// ErrSchemaMismatch reports a tree that uses constructor tags not
	// declared in the schema it is diffed or patched under.
	ErrSchemaMismatch = errors.New("tree does not conform to schema")

	// ErrIllTyped reports an edit script rejected by the truechange linear
	// type system (paper Fig. 3): an intermediate tree would be ill-typed,
	// or roots/slots would leak.
	ErrIllTyped = errors.New("edit script is ill-typed")

	// ErrNonCompliantScript reports an edit script that does not comply
	// with the tree it is applied to (Definition 3.5): it mentions URIs,
	// tags, or links the evolving tree does not have.
	ErrNonCompliantScript = errors.New("edit script does not comply with tree")

	// ErrBadMatching reports an externally supplied node matching that is
	// not one-to-one.
	ErrBadMatching = errors.New("matching is not one-to-one")

	// ErrNoSchema reports a facade call that requires a schema but received
	// none (structdiff.WithSchema was not passed).
	ErrNoSchema = errors.New("no schema provided")

	// ErrDiffPanic reports a diff that panicked and was recovered by the
	// engine's per-worker isolation: the pair fails alone, the batch and
	// the process survive. The wrapping error (engine.PanicError) carries
	// the recovered value and the goroutine stack.
	ErrDiffPanic = errors.New("diff panicked")

	// ErrDiffTimeout reports a diff aborted mid-phase because it exceeded
	// the per-diff deadline (engine Config.DiffTimeout, facade
	// WithDiffTimeout). Distinct from the caller's context deadline, which
	// surfaces as context.DeadlineExceeded.
	ErrDiffTimeout = errors.New("diff exceeded per-diff timeout")

	// ErrEngineClosed reports a Diff or DiffBatch call on an engine whose
	// Close has begun: the engine's caches are released and no further work
	// is accepted.
	ErrEngineClosed = errors.New("engine is closed")

	// ErrServiceUnavailable reports a diff service request rejected by
	// admission control — the server is saturated (HTTP 429, retry after
	// the advertised delay) or draining for shutdown (HTTP 503) — or a
	// transport-level failure (connection refused/reset, truncated or
	// malformed response) that a retrying client may transparently recover
	// from: diffs are pure functions of digest-identified trees, so every
	// request is idempotent and safe to replay.
	ErrServiceUnavailable = errors.New("diff service unavailable")

	// ErrMergeConflict reports a three-way merge whose two edit scripts
	// claim the same typing resource (node or slot) in incompatible ways
	// and no resolution policy was allowed to pick a side. The wrapping
	// error (merge.ConflictError) carries the full conflict list: per
	// conflict the contended node URI or slot and the two competing edit
	// groups.
	ErrMergeConflict = errors.New("three-way merge has conflicts")

	// ErrCircuitOpen reports a diff service call refused locally by the
	// client's circuit breaker: the endpoint's recent failure rate tripped
	// the breaker and calls fail fast without touching the network until
	// the cooldown elapses and a half-open probe succeeds. The request was
	// never sent.
	ErrCircuitOpen = errors.New("circuit breaker is open")
)
