// Package exp defines the small expression language used throughout the
// paper's examples (Sections 1–4): numbers, variables, binary operators,
// and calls. It serves as the shared schema for unit tests, property-based
// tests, and the quickstart example, and provides seeded random generators
// for expression trees and realistic mutations of them.
package exp

import (
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/uri"
)

// Sorts of the expression language.
const (
	Exp sig.Sort = "Exp"
)

// Tags of the expression language.
const (
	Num  sig.Tag = "Num"
	Var  sig.Tag = "Var"
	Add  sig.Tag = "Add"
	Sub  sig.Tag = "Sub"
	Mul  sig.Tag = "Mul"
	Call sig.Tag = "Call"
	Let  sig.Tag = "Let"
)

// Schema returns the expression language schema:
//
//	Num(n: int)                     → Exp
//	Var(name: string)               → Exp
//	Add(e1: Exp, e2: Exp)           → Exp
//	Sub(e1: Exp, e2: Exp)           → Exp
//	Mul(e1: Exp, e2: Exp)           → Exp
//	Call(f: string, a: Exp)         → Exp
//	Let(bound: Exp, body: Exp, x: string) → Exp
func Schema() *sig.Schema {
	s := sig.NewSchema("exp")
	s.MustDeclare(sig.Sig{Tag: Num, Lits: []sig.LitSpec{{Link: "n", Type: sig.IntLit}}, Result: Exp})
	s.MustDeclare(sig.Sig{Tag: Var, Lits: []sig.LitSpec{{Link: "name", Type: sig.StringLit}}, Result: Exp})
	for _, t := range []sig.Tag{Add, Sub, Mul} {
		s.MustDeclare(sig.Sig{
			Tag:    t,
			Kids:   []sig.KidSpec{{Link: "e1", Sort: Exp}, {Link: "e2", Sort: Exp}},
			Result: Exp,
		})
	}
	s.MustDeclare(sig.Sig{
		Tag:    Call,
		Kids:   []sig.KidSpec{{Link: "a", Sort: Exp}},
		Lits:   []sig.LitSpec{{Link: "f", Type: sig.StringLit}},
		Result: Exp,
	})
	s.MustDeclare(sig.Sig{
		Tag:    Let,
		Kids:   []sig.KidSpec{{Link: "bound", Sort: Exp}, {Link: "body", Sort: Exp}},
		Lits:   []sig.LitSpec{{Link: "x", Type: sig.StringLit}},
		Result: Exp,
	})
	return s
}

// NewBuilder returns a tree builder over a fresh copy of the expression
// schema and a fresh URI allocator.
func NewBuilder() *tree.Builder {
	return tree.NewBuilder(Schema(), uri.NewAllocator())
}
