package exp

import (
	"math/rand"

	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/uri"
)

// Gen generates random expression trees and random mutations of them, for
// property-based tests and scaling benchmarks. All randomness is drawn from
// a seeded source, so generated workloads are reproducible.
type Gen struct {
	rng   *rand.Rand
	sch   *sig.Schema
	alloc *uri.Allocator
	names []string
}

// NewGen returns a generator with the given seed.
func NewGen(seed int64) *Gen {
	return &Gen{
		rng:   rand.New(rand.NewSource(seed)),
		sch:   Schema(),
		alloc: uri.NewAllocator(),
		names: []string{"a", "b", "c", "x", "y", "z", "tmp", "acc", "lhs", "rhs"},
	}
}

// Schema returns the generator's schema.
func (g *Gen) Schema() *sig.Schema { return g.sch }

// Alloc returns the generator's URI allocator, which dominates the URIs of
// every tree the generator produced.
func (g *Gen) Alloc() *uri.Allocator { return g.alloc }

func (g *Gen) name() string { return g.names[g.rng.Intn(len(g.names))] }

func (g *Gen) must(n *tree.Node, err error) *tree.Node {
	if err != nil {
		panic(err) // generator bugs only; schemas are fixed
	}
	return n
}

func (g *Gen) leaf() *tree.Node {
	if g.rng.Intn(2) == 0 {
		return g.must(tree.New(g.sch, g.alloc, Num, nil, []any{int64(g.rng.Intn(100))}))
	}
	return g.must(tree.New(g.sch, g.alloc, Var, nil, []any{g.name()}))
}

// Tree generates a random expression tree with approximately size nodes
// (at least one).
func (g *Gen) Tree(size int) *tree.Node {
	if size <= 1 {
		return g.leaf()
	}
	switch g.rng.Intn(5) {
	case 0:
		return g.must(tree.New(g.sch, g.alloc, Call, []*tree.Node{g.Tree(size - 1)}, []any{g.name()}))
	case 1:
		l := g.rng.Intn(size-1) + 1
		return g.must(tree.New(g.sch, g.alloc, Let,
			[]*tree.Node{g.Tree(l), g.Tree(size - 1 - l)}, []any{g.name()}))
	default:
		tags := []sig.Tag{Add, Sub, Mul}
		l := g.rng.Intn(size-1) + 1
		return g.must(tree.New(g.sch, g.alloc, tags[g.rng.Intn(len(tags))],
			[]*tree.Node{g.Tree(l), g.Tree(size - 1 - l)}, nil))
	}
}

// nodeAt returns the i-th node of t in preorder (0-based).
func nodeAt(t *tree.Node, i int) *tree.Node {
	var found *tree.Node
	idx := 0
	tree.Walk(t, func(n *tree.Node) {
		if idx == i {
			found = n
		}
		idx++
	})
	return found
}

// rebuild deep-copies t, replacing the subtree at preorder index target
// with repl (if repl is nil, the subtree is kept). Fresh URIs are assigned
// throughout, modelling a reparsed document.
func (g *Gen) rebuild(t *tree.Node, target int, repl func(*tree.Node) *tree.Node) *tree.Node {
	idx := 0
	var walk func(n *tree.Node) *tree.Node
	walk = func(n *tree.Node) *tree.Node {
		here := idx
		idx++
		if here == target {
			// Skip the original subtree's indices.
			idx += n.Size() - 1
			return repl(n)
		}
		kids := make([]*tree.Node, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = walk(k)
		}
		return g.must(tree.New(g.sch, g.alloc, n.Tag, kids, append([]any(nil), n.Lits...)))
	}
	return walk(t)
}

func (g *Gen) copyTree(n *tree.Node) *tree.Node {
	return tree.Clone(n, g.alloc, tree.SHA256)
}

// Mutate returns a mutated deep copy of t, applying one random edit of a
// realistic kind: a literal change, a subtree replacement, a subtree swap
// (move), a wrap (insertion above a node), or an unwrap (deletion of a
// node, keeping a child). The returned tree shares no node objects with t.
func (g *Gen) Mutate(t *tree.Node) *tree.Node {
	size := t.Size()
	target := g.rng.Intn(size)
	switch g.rng.Intn(5) {
	case 0: // literal change: mutate literals of the chosen node, if any
		return g.rebuild(t, target, func(n *tree.Node) *tree.Node {
			kids := make([]*tree.Node, len(n.Kids))
			for i, k := range n.Kids {
				kids[i] = g.copyTree(k)
			}
			lits := append([]any(nil), n.Lits...)
			for i, l := range lits {
				switch v := l.(type) {
				case int64:
					lits[i] = v + int64(g.rng.Intn(5)+1)
				case string:
					lits[i] = v + "_"
				}
			}
			return g.must(tree.New(g.sch, g.alloc, n.Tag, kids, lits))
		})
	case 1: // replace subtree with a fresh random tree
		return g.rebuild(t, target, func(n *tree.Node) *tree.Node {
			return g.Tree(g.rng.Intn(6) + 1)
		})
	case 2: // swap: replace with a copy of another random subtree of t
		other := nodeAt(t, g.rng.Intn(size))
		return g.rebuild(t, target, func(n *tree.Node) *tree.Node {
			return g.copyTree(other)
		})
	case 3: // wrap: insert a new binary node above the chosen subtree
		return g.rebuild(t, target, func(n *tree.Node) *tree.Node {
			tags := []sig.Tag{Add, Sub, Mul}
			kids := []*tree.Node{g.copyTree(n), g.leaf()}
			if g.rng.Intn(2) == 0 {
				kids[0], kids[1] = kids[1], kids[0]
			}
			return g.must(tree.New(g.sch, g.alloc, tags[g.rng.Intn(len(tags))], kids, nil))
		})
	default: // unwrap: replace the chosen subtree by one of its children
		return g.rebuild(t, target, func(n *tree.Node) *tree.Node {
			if len(n.Kids) == 0 {
				return g.leaf()
			}
			return g.copyTree(n.Kids[g.rng.Intn(len(n.Kids))])
		})
	}
}

// MutateN applies n successive mutations, modelling a larger code change.
func (g *Gen) MutateN(t *tree.Node, n int) *tree.Node {
	out := t
	for i := 0; i < n; i++ {
		out = g.Mutate(out)
	}
	if out == t {
		out = g.copyTree(t)
	}
	return out
}
