package exp

import (
	"testing"

	"repro/internal/tree"
	"repro/internal/uri"
)

func TestSchemaDeclaresAllTags(t *testing.T) {
	s := Schema()
	for _, tag := range []string{"Num", "Var", "Add", "Sub", "Mul", "Call", "Let"} {
		if s.Lookup(Num) == nil {
			t.Fatal("Num missing")
		}
		if got := s.Lookup(Call); got == nil || len(got.Kids) != 1 || len(got.Lits) != 1 {
			t.Fatal("Call signature wrong")
		}
		_ = tag
	}
	expTags := s.TagsOfSort(Exp)
	if len(expTags) != 7 {
		t.Errorf("Exp tags = %v", expTags)
	}
}

func TestGenDeterminism(t *testing.T) {
	a := NewGen(5).Tree(60)
	b := NewGen(5).Tree(60)
	if !tree.Equal(a, b) {
		t.Error("same seed should generate the same tree")
	}
	c := NewGen(6).Tree(60)
	if tree.Equal(a, c) {
		t.Error("different seeds should differ")
	}
}

func TestGenTreeSizes(t *testing.T) {
	g := NewGen(1)
	for _, want := range []int{1, 5, 50, 500} {
		tr := g.Tree(want)
		if tr.Size() < want/2 || tr.Size() > want*2+5 {
			t.Errorf("Tree(%d) has %d nodes", want, tr.Size())
		}
	}
}

func TestMutateChangesTreeWithoutSharing(t *testing.T) {
	g := NewGen(2)
	src := g.Tree(50)
	srcNodes := map[*tree.Node]bool{}
	tree.Walk(src, func(n *tree.Node) { srcNodes[n] = true })

	changed := 0
	for i := 0; i < 20; i++ {
		dst := g.Mutate(src)
		if !tree.Equal(src, dst) {
			changed++
		}
		tree.Walk(dst, func(n *tree.Node) {
			if srcNodes[n] {
				t.Fatal("mutated tree shares a node object with the source")
			}
		})
	}
	if changed < 15 {
		t.Errorf("only %d/20 mutations changed the tree", changed)
	}
}

func TestMutateURIsFresh(t *testing.T) {
	g := NewGen(3)
	src := g.Tree(30)
	dst := g.MutateN(src, 3)
	seen := map[uri.URI]bool{}
	tree.Walk(src, func(n *tree.Node) { seen[n.URI] = true })
	tree.Walk(dst, func(n *tree.Node) {
		if seen[n.URI] {
			t.Fatalf("URI %s reused across versions", n.URI)
		}
	})
}

func TestMutateNSurvivesManyRounds(t *testing.T) {
	g := NewGen(4)
	cur := g.Tree(10)
	for i := 0; i < 100; i++ {
		cur = g.Mutate(cur)
		if cur == nil || cur.Size() == 0 {
			t.Fatal("mutation destroyed the tree")
		}
	}
	// MutateN with zero edits still returns a fresh copy.
	same := g.MutateN(cur, 0)
	if same == cur {
		t.Error("MutateN(0) should copy")
	}
	if !tree.Equal(same, cur) {
		t.Error("MutateN(0) should be equal")
	}
}
