// Package linediff implements the line-based structural diffing approach
// of Asenov et al. (FASE 2017), discussed in the paper's related work
// (§7): print the tree with a single AST node per line, run a textual diff
// (Myers' O(ND) algorithm, the heart of Unix diff), and read node
// insertions and deletions off the line patch. Moved nodes are recovered
// by post-processing: deleted lines that reappear verbatim among the
// insertions are paired up as moves.
//
// The approach needs no tree-specific machinery, but its patches operate
// on lines, not typed nodes — and the underlying LCS computation is
// quadratic in the worst case, which is why Asenov et al. report
// processing times of up to a minute per file.
package linediff

import (
	"fmt"
	"strings"

	"repro/internal/tree"
)

// OpKind classifies line operations.
type OpKind uint8

// The line-diff operations.
const (
	Keep OpKind = iota
	Del
	Ins
)

// Op is one line operation.
type Op struct {
	Kind OpKind
	Line string
}

// Script is a line-based patch.
type Script struct {
	Ops []Op
}

// Changes returns the number of non-keep operations (the patch size).
func (s *Script) Changes() int {
	n := 0
	for _, o := range s.Ops {
		if o.Kind != Keep {
			n++
		}
	}
	return n
}

// Apply reconstructs the target line sequence from the source lines.
func (s *Script) Apply(src []string) ([]string, error) {
	var out []string
	i := 0
	for _, o := range s.Ops {
		switch o.Kind {
		case Keep:
			if i >= len(src) || src[i] != o.Line {
				return nil, fmt.Errorf("linediff: keep mismatch at line %d", i)
			}
			out = append(out, src[i])
			i++
		case Del:
			if i >= len(src) || src[i] != o.Line {
				return nil, fmt.Errorf("linediff: delete mismatch at line %d", i)
			}
			i++
		case Ins:
			out = append(out, o.Line)
		}
	}
	if i != len(src) {
		return nil, fmt.Errorf("linediff: %d unconsumed source lines", len(src)-i)
	}
	return out, nil
}

// Myers computes a minimal line diff using Myers' O(ND) greedy algorithm.
func Myers(a, b []string) *Script {
	n, m := len(a), len(b)
	max := n + m
	if max == 0 {
		return &Script{}
	}
	// v[k] = furthest x on diagonal k; trace stores v per edit distance d.
	offset := max
	v := make([]int, 2*max+1)
	var trace [][]int
	var dFound = -1
	for d := 0; d <= max; d++ {
		snapshot := make([]int, len(v))
		copy(snapshot, v)
		trace = append(trace, snapshot)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[offset+k-1] < v[offset+k+1]) {
				x = v[offset+k+1] // down: insertion
			} else {
				x = v[offset+k-1] + 1 // right: deletion
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[offset+k] = x
			if x >= n && y >= m {
				dFound = d
				break
			}
		}
		if dFound >= 0 {
			break
		}
	}

	// Backtrack through the trace to emit operations.
	var revOps []Op
	x, y := n, m
	for d := dFound; d > 0; d-- {
		vPrev := trace[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vPrev[offset+k-1] < vPrev[offset+k+1]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vPrev[offset+prevK]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			x--
			y--
			revOps = append(revOps, Op{Kind: Keep, Line: a[x]})
		}
		if x == prevX {
			y--
			revOps = append(revOps, Op{Kind: Ins, Line: b[y]})
		} else {
			x--
			revOps = append(revOps, Op{Kind: Del, Line: a[x]})
		}
	}
	for x > 0 && y > 0 {
		x--
		y--
		revOps = append(revOps, Op{Kind: Keep, Line: a[x]})
	}
	ops := make([]Op, 0, len(revOps))
	for i := len(revOps) - 1; i >= 0; i-- {
		ops = append(ops, revOps[i])
	}
	return &Script{Ops: ops}
}

// EncodeLines prints the tree one node per line, preorder, with the node's
// depth, tag, and literals — the single-node-per-line format that lets a
// line diff see tree structure.
func EncodeLines(t *tree.Node) []string {
	var out []string
	var walk func(n *tree.Node, depth int)
	walk = func(n *tree.Node, depth int) {
		var b strings.Builder
		for i := 0; i < depth; i++ {
			b.WriteByte(' ')
		}
		b.WriteString(string(n.Tag))
		for _, l := range n.Lits {
			fmt.Fprintf(&b, " %#v", l)
		}
		out = append(out, b.String())
		for _, k := range n.Kids {
			walk(k, depth+1)
		}
	}
	walk(t, 0)
	return out
}

// Result summarizes a structural line diff.
type Result struct {
	Script *Script
	// Inserted and Deleted count line operations; Moves counts
	// deleted lines that reappear verbatim among insertions (the
	// post-processing move recovery of Asenov et al.).
	Inserted, Deleted, Moves int
}

// PatchSize returns the Asenov-style patch size: insertions plus
// deletions, with each recovered move pair counted once.
func (r *Result) PatchSize() int {
	return r.Inserted + r.Deleted - r.Moves
}

// Diff runs the pipeline on two typed trees.
func Diff(src, dst *tree.Node) *Result {
	s := Myers(EncodeLines(src), EncodeLines(dst))
	res := &Result{Script: s}
	deleted := make(map[string]int)
	for _, o := range s.Ops {
		switch o.Kind {
		case Del:
			res.Deleted++
			deleted[strings.TrimLeft(o.Line, " ")]++
		case Ins:
			res.Inserted++
		}
	}
	for _, o := range s.Ops {
		if o.Kind == Ins {
			key := strings.TrimLeft(o.Line, " ")
			if deleted[key] > 0 {
				deleted[key]--
				res.Moves++
			}
		}
	}
	return res
}
