package linediff

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/exp"
)

func TestMyersBasics(t *testing.T) {
	cases := []struct {
		a, b    []string
		changes int
	}{
		{nil, nil, 0},
		{[]string{"x"}, []string{"x"}, 0},
		{[]string{"x"}, nil, 1},
		{nil, []string{"x"}, 1},
		{[]string{"a", "b", "c"}, []string{"a", "c"}, 1},
		{[]string{"a", "c"}, []string{"a", "b", "c"}, 1},
		{[]string{"a", "b"}, []string{"b", "a"}, 2},
		{[]string{"a", "b", "c", "a", "b", "b", "a"}, []string{"c", "b", "a", "b", "a", "c"}, 5},
	}
	for _, c := range cases {
		s := Myers(c.a, c.b)
		if got := s.Changes(); got != c.changes {
			t.Errorf("Myers(%v, %v) changes = %d, want %d", c.a, c.b, got, c.changes)
		}
		out, err := s.Apply(c.a)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if !equalLines(out, c.b) {
			t.Errorf("Myers(%v, %v) apply = %v", c.a, c.b, out)
		}
	}
}

func equalLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMyersRandomCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alphabet := []string{"a", "b", "c", "d"}
	for i := 0; i < 100; i++ {
		a := make([]string, rng.Intn(30))
		b := make([]string, rng.Intn(30))
		for j := range a {
			a[j] = alphabet[rng.Intn(len(alphabet))]
		}
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		s := Myers(a, b)
		out, err := s.Apply(a)
		if err != nil || !equalLines(out, b) {
			t.Fatalf("case %d: apply failed: %v", i, err)
		}
		// Minimality upper bound: never worse than delete-all+insert-all.
		if s.Changes() > len(a)+len(b) {
			t.Fatalf("case %d: changes %d exceeds trivial bound", i, s.Changes())
		}
	}
}

func TestApplyRejectsWrongSource(t *testing.T) {
	s := Myers([]string{"a", "b"}, []string{"a"})
	if _, err := s.Apply([]string{"x", "b"}); err == nil {
		t.Error("mismatched source should fail")
	}
	if _, err := s.Apply([]string{"a", "b", "c"}); err == nil {
		t.Error("unconsumed source should fail")
	}
}

func TestEncodeLines(t *testing.T) {
	b := exp.NewBuilder()
	tr := b.MustN(exp.Add, b.MustN(exp.Var, "a"), b.MustN(exp.Num, 7))
	lines := EncodeLines(tr)
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[0], "Add") {
		t.Errorf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], " Var") || !strings.Contains(lines[1], `"a"`) {
		t.Errorf("kid line = %q", lines[1])
	}
	// Depth must be encoded so identical nodes at different depths differ.
	b2 := exp.NewBuilder()
	flat := EncodeLines(b2.MustN(exp.Num, 7))
	if flat[0] == lines[2] {
		t.Error("depth should distinguish identical nodes at different levels")
	}
}

func TestDiffDetectsMove(t *testing.T) {
	b := exp.NewBuilder()
	sub := b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b"))
	src := b.MustN(exp.Add, sub, b.MustN(exp.Mul, b.MustN(exp.Var, "c"), b.MustN(exp.Var, "d")))
	dst := b.MustN(exp.Add,
		b.MustN(exp.Var, "d"),
		b.MustN(exp.Mul, b.MustN(exp.Var, "c"),
			b.MustN(exp.Sub, b.MustN(exp.Var, "a"), b.MustN(exp.Var, "b"))))
	res := Diff(src, dst)
	if res.Moves == 0 {
		t.Errorf("moved subtree lines should be recovered as moves: %+v", res)
	}
	if res.PatchSize() >= res.Inserted+res.Deleted {
		t.Error("move recovery should shrink the patch size")
	}
}

func TestDiffIdenticalTrees(t *testing.T) {
	g := exp.NewGen(4)
	src := g.Tree(60)
	res := Diff(src, src)
	if res.Inserted != 0 || res.Deleted != 0 || res.PatchSize() != 0 {
		t.Errorf("identical trees: %+v", res)
	}
}

func TestDiffSmallChange(t *testing.T) {
	g := exp.NewGen(5)
	src := g.Tree(200)
	dst := g.Mutate(src)
	res := Diff(src, dst)
	if res.PatchSize() == 0 {
		t.Error("mutation should produce a non-empty patch")
	}
	// Line diffs stay roughly proportional to the change for leaf edits,
	// though indentation shifts can touch whole subtree line ranges.
	if res.PatchSize() > 150 {
		t.Errorf("patch size %d for a single mutation in 200 nodes", res.PatchSize())
	}
}
