package quality

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/truediff"
)

func TestMinimalEditsIdentical(t *testing.T) {
	b := exp.NewBuilder()
	a := b.MustN(exp.Add, b.MustN(exp.Num, int64(1)), b.MustN(exp.Num, int64(2)))
	c := b.MustN(exp.Add, b.MustN(exp.Num, int64(1)), b.MustN(exp.Num, int64(2)))
	got, ok := MinimalEdits(a, c, DefaultBaselineMaxNodes)
	if !ok || got != 0 {
		t.Fatalf("MinimalEdits(identical) = %d, %v; want 0, true", got, ok)
	}
}

func TestMinimalEditsRelabel(t *testing.T) {
	b := exp.NewBuilder()
	a := b.MustN(exp.Add, b.MustN(exp.Num, int64(1)), b.MustN(exp.Num, int64(2)))
	c := b.MustN(exp.Add, b.MustN(exp.Num, int64(1)), b.MustN(exp.Num, int64(3)))
	got, ok := MinimalEdits(a, c, DefaultBaselineMaxNodes)
	if !ok || got != 1 {
		t.Fatalf("MinimalEdits(one relabel) = %d, %v; want 1, true", got, ok)
	}
}

func TestMinimalEditsInsert(t *testing.T) {
	b := exp.NewBuilder()
	a := b.MustN(exp.Num, int64(1))
	c := b.MustN(exp.Add, b.MustN(exp.Num, int64(1)), b.MustN(exp.Num, int64(2)))
	got, ok := MinimalEdits(a, c, DefaultBaselineMaxNodes)
	if !ok || got != 2 {
		t.Fatalf("MinimalEdits(insert Add+Num) = %d, %v; want 2, true", got, ok)
	}
}

func TestMinimalEditsOrderMatters(t *testing.T) {
	// Ordered TED cannot swap siblings for free: both leaves relabel.
	b := exp.NewBuilder()
	a := b.MustN(exp.Add, b.MustN(exp.Num, int64(1)), b.MustN(exp.Num, int64(2)))
	c := b.MustN(exp.Add, b.MustN(exp.Num, int64(2)), b.MustN(exp.Num, int64(1)))
	got, ok := MinimalEdits(a, c, DefaultBaselineMaxNodes)
	if !ok || got != 2 {
		t.Fatalf("MinimalEdits(swapped leaves) = %d, %v; want 2, true", got, ok)
	}
}

func TestMinimalEditsCap(t *testing.T) {
	b := exp.NewBuilder()
	a := b.MustN(exp.Add, b.MustN(exp.Num, int64(1)), b.MustN(exp.Num, int64(2)))
	c := b.MustN(exp.Num, int64(1))
	if _, ok := MinimalEdits(a, c, 2); ok {
		t.Fatal("MinimalEdits over the node cap must report ok=false")
	}
}

func TestMinimalEditsSymmetric(t *testing.T) {
	// Unit-cost TED is a metric; check symmetry over seeded random pairs.
	g := exp.NewGen(7)
	for i := 0; i < 10; i++ {
		a := g.Tree(40)
		b := g.MutateN(g.Tree(40), 3)
		ab, ok1 := MinimalEdits(a, b, 200)
		ba, ok2 := MinimalEdits(b, a, 200)
		if !ok1 || !ok2 || ab != ba {
			t.Fatalf("round %d: MinimalEdits not symmetric: %d (%v) vs %d (%v)", i, ab, ok1, ba, ok2)
		}
		replaceAll := a.Size() + b.Size()
		if ab > replaceAll {
			t.Fatalf("round %d: distance %d exceeds delete-all+insert-all bound %d", i, ab, replaceAll)
		}
	}
}

func TestGapEdgeCases(t *testing.T) {
	if g := Gap(0, 0); g != 0 {
		t.Fatalf("Gap(0,0) = %v, want 0", g)
	}
	if g := Gap(3, 0); g != 3 {
		t.Fatalf("Gap(3,0) = %v, want 3", g)
	}
	if g := Gap(4, 4); g != 0 {
		t.Fatalf("Gap(4,4) = %v, want 0", g)
	}
	if g := Gap(2, 4); g != -0.5 {
		t.Fatalf("Gap(2,4) = %v, want -0.5", g)
	}
}

func TestMeasureOnDiff(t *testing.T) {
	g := exp.NewGen(11)
	src := g.Tree(60)
	dst := g.MutateN(src, 4)
	d := truediff.New(g.Schema())
	res, err := d.Diff(src, dst, g.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	m := Measure(src, dst, res.Script, 200)
	if m.RawEdits != res.Script.Len() || m.CompoundEdits != res.Script.EditCount() {
		t.Fatalf("edit counts disagree with script: %+v", m)
	}
	if m.ReuseRatio < 0 || m.ReuseRatio > 1 {
		t.Fatalf("reuse ratio out of range: %v", m.ReuseRatio)
	}
	if !m.Baselined {
		t.Fatalf("small trees must be baselined: %+v", m)
	}
	if m.MinimalEdits <= 0 {
		t.Fatalf("mutated pair must have positive minimal distance: %+v", m)
	}
	if m.ChangedNodes <= 0 || m.EditsPerChangedNode <= 0 {
		t.Fatalf("non-empty script must touch nodes: %+v", m)
	}
}

func TestMeasureIdenticalPair(t *testing.T) {
	// Two generators with the same seed produce content-identical trees
	// with no shared node objects (Diff requires distinct structures).
	g := exp.NewGen(13)
	src := g.Tree(30)
	dst := exp.NewGen(13).Tree(30)
	d := truediff.New(g.Schema())
	res, err := d.Diff(src, dst, g.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	m := Measure(src, dst, res.Script, 200)
	if m.CompoundEdits != 0 || m.ChangedNodes != 0 {
		t.Fatalf("identical pair produced edits: %+v", m)
	}
	if m.ReuseRatio != 1 {
		t.Fatalf("identical pair reuse ratio = %v, want 1", m.ReuseRatio)
	}
	if !m.Baselined || m.MinimalEdits != 0 || m.OptimalityGap != 0 {
		t.Fatalf("identical pair baseline: %+v", m)
	}
}
