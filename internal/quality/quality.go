// Package quality computes per-diff conciseness metrics for truechange
// edit scripts: how many nodes a script touches relative to the trees it
// transforms, how much of the target is covered by reused source subtrees,
// and — on small trees — how far the greedy script is from an exact
// minimal-cost baseline (the classical tree edit distance of Zhang and
// Shasha). The paper's headline claim is conciseness; this package turns
// it into numbers the engine, the bench trajectory, and the explain CLI
// can track and gate on.
package quality

import (
	"fmt"

	"repro/internal/tree"
	"repro/internal/truechange"
)

// Metrics quantifies the conciseness of one edit script relative to the
// source/target pair it was computed for. The zero value means "empty
// script over empty trees".
type Metrics struct {
	// RawEdits is the number of individual edit operations (Script.Len).
	RawEdits int `json:"raw_edits"`
	// CompoundEdits is the paper's conciseness metric (Script.EditCount):
	// detach+unload and load+attach pairs of one node count once.
	CompoundEdits int `json:"compound_edits"`
	// SourceSize and TargetSize are the node counts of the diffed trees.
	SourceSize int `json:"source_size"`
	TargetSize int `json:"target_size"`
	// ChangedNodes counts the nodes the script touches: loads, unloads,
	// literal updates, and moved subtree roots.
	ChangedNodes int `json:"changed_nodes"`
	// EditsPerChangedNode is CompoundEdits / ChangedNodes (0 for an empty
	// script): how many script operations each touched node costs. Near 1
	// means the script says no more than what changed.
	EditsPerChangedNode float64 `json:"edits_per_changed_node"`
	// ReuseRatio is the fraction of target nodes produced by reusing
	// source subtrees instead of fresh loads: (TargetSize - loads) /
	// TargetSize. 1 means everything was reused.
	ReuseRatio float64 `json:"reuse_ratio"`
	// ScriptTreeRatio is CompoundEdits / TargetSize: the script's size
	// relative to the tree it produces. Small is concise.
	ScriptTreeRatio float64 `json:"script_tree_ratio"`
	// MinimalEdits is the exact minimum number of unit-cost node
	// operations (insert, delete, relabel) transforming source into
	// target — the Zhang–Shasha tree edit distance. Only set when
	// Baselined (the trees were within the baseline's node cap).
	MinimalEdits int `json:"minimal_edits,omitempty"`
	// OptimalityGap is (CompoundEdits - MinimalEdits) / MinimalEdits when
	// Baselined: how much larger the greedy script is than the exact
	// minimum. It can be negative — truechange scripts move subtrees with
	// one detach/attach pair where the classical edit distance must delete
	// and re-insert every node — so it is a tracked relative metric, not a
	// lower-bound certificate.
	OptimalityGap float64 `json:"optimality_gap,omitempty"`
	// Baselined reports whether MinimalEdits/OptimalityGap were computed.
	Baselined bool `json:"baselined,omitempty"`
}

// String renders the metrics on one line.
func (m Metrics) String() string {
	s := fmt.Sprintf("%d edits (%d raw) over %d changed nodes, reuse %.3f, script/tree %.3f",
		m.CompoundEdits, m.RawEdits, m.ChangedNodes, m.ReuseRatio, m.ScriptTreeRatio)
	if m.Baselined {
		s += fmt.Sprintf(", minimal %d (gap %+.1f%%)", m.MinimalEdits, 100*m.OptimalityGap)
	}
	return s
}

// FromScript computes the always-cheap metrics of script: one pass over
// the edits (truechange.ComputeStats), no baseline.
func FromScript(script *truechange.Script, sourceSize, targetSize int) Metrics {
	st := truechange.ComputeStats(script)
	m := Metrics{
		RawEdits:      script.Len(),
		CompoundEdits: st.Compound,
		SourceSize:    sourceSize,
		TargetSize:    targetSize,
		ChangedNodes:  st.Loads + st.Unloads + st.Updates + st.Moves,
	}
	if targetSize > 0 {
		m.ReuseRatio = float64(targetSize-st.Loads) / float64(targetSize)
		m.ScriptTreeRatio = float64(st.Compound) / float64(targetSize)
	}
	if m.ChangedNodes > 0 {
		m.EditsPerChangedNode = float64(st.Compound) / float64(m.ChangedNodes)
	}
	return m
}

// DefaultBaselineMaxNodes is the default node-count cap for the exact
// baseline: Zhang–Shasha is O(n²·min(leaves,depth)²), so the cap keeps the
// baseline to single-digit milliseconds on commodity hardware.
const DefaultBaselineMaxNodes = 120

// Measure combines FromScript with the exact baseline: if both trees are
// within baselineMax nodes (0 selects DefaultBaselineMaxNodes, negative
// disables the baseline), MinimalEdits and OptimalityGap are filled in.
func Measure(src, dst *tree.Node, script *truechange.Script, baselineMax int) Metrics {
	m := FromScript(script, src.Size(), dst.Size())
	if baselineMax < 0 {
		return m
	}
	if baselineMax == 0 {
		baselineMax = DefaultBaselineMaxNodes
	}
	if min, ok := MinimalEdits(src, dst, baselineMax); ok {
		m.MinimalEdits = min
		m.OptimalityGap = Gap(m.CompoundEdits, min)
		m.Baselined = true
	}
	return m
}

// Gap returns the relative optimality gap (edits - minimal) / minimal.
// When the minimum is 0 (equal trees) the gap is the raw edit count: any
// edit at all is infinitely non-minimal, and the raw count keeps the
// metric finite and monotone.
func Gap(edits, minimal int) float64 {
	if minimal == 0 {
		return float64(edits)
	}
	return float64(edits-minimal) / float64(minimal)
}

// MinimalEdits returns the minimum number of unit-cost node operations
// (insert a node, delete a node, relabel a node) transforming src into
// dst: the tree edit distance over ordered labeled trees, computed with
// the Zhang–Shasha dynamic program (1989). Two nodes carry equal labels
// when their tags and literals agree. The computation is skipped — second
// result false — when either tree exceeds maxNodes nodes, because the DP
// is quadratic in tree size.
func MinimalEdits(src, dst *tree.Node, maxNodes int) (int, bool) {
	if src == nil || dst == nil {
		return 0, false
	}
	if src.Size() > maxNodes || dst.Size() > maxNodes {
		return 0, false
	}
	a, b := flatten(src), flatten(dst)
	n, m := len(a.nodes), len(b.nodes)
	// td[i][j] is the tree distance between the subtrees rooted at
	// postorder nodes i and j (1-based).
	td := make([][]int, n+1)
	for i := range td {
		td[i] = make([]int, m+1)
	}
	// fd is the forest-distance scratch, re-sliced per keyroot pair.
	fd := make([][]int, n+2)
	for i := range fd {
		fd[i] = make([]int, m+2)
	}
	for _, i := range a.keyroots {
		for _, j := range b.keyroots {
			treeDist(a, b, i, j, td, fd)
		}
	}
	return td[n][m], true
}

// flatTree is a postorder flattening of a tree with the auxiliary arrays
// the Zhang–Shasha DP needs.
type flatTree struct {
	nodes []*tree.Node // postorder, 0-based
	lml   []int        // 1-based leftmost-leaf index per 1-based node
	// keyroots are the 1-based indices of nodes with no parent sharing
	// their leftmost leaf (the root and every node with a left sibling).
	keyroots []int
}

func flatten(t *tree.Node) *flatTree {
	f := &flatTree{lml: []int{0}} // index 0 unused: the DP is 1-based
	var walk func(n *tree.Node) int
	walk = func(n *tree.Node) int {
		first := 0
		for i, k := range n.Kids {
			l := walk(k)
			if i == 0 {
				first = l
			}
		}
		f.nodes = append(f.nodes, n)
		idx := len(f.nodes) // 1-based postorder index
		if first == 0 {
			first = idx // leaf: its own leftmost leaf
		}
		f.lml = append(f.lml, first)
		return first
	}
	walk(t)
	// A node is a keyroot iff no later node shares its leftmost leaf.
	seen := make(map[int]bool)
	for i := len(f.nodes); i >= 1; i-- {
		if !seen[f.lml[i]] {
			seen[f.lml[i]] = true
			f.keyroots = append(f.keyroots, i)
		}
	}
	// Reverse into increasing order, as the DP processes keyroots upward.
	for l, r := 0, len(f.keyroots)-1; l < r; l, r = l+1, r-1 {
		f.keyroots[l], f.keyroots[r] = f.keyroots[r], f.keyroots[l]
	}
	return f
}

// relabelCost is 0 for equal labels (same tag, equal literals), 1 else.
func relabelCost(a, b *tree.Node) int {
	if a.Tag != b.Tag || len(a.Lits) != len(b.Lits) {
		return 1
	}
	for i := range a.Lits {
		if !tree.LitEqual(a.Lits[i], b.Lits[i]) {
			return 1
		}
	}
	return 0
}

// treeDist fills td[i][j] (and every td entry for subtree pairs whose
// leftmost leaves coincide with i's and j's) via the forest-distance DP.
func treeDist(a, b *flatTree, i, j int, td, fd [][]int) {
	li, lj := a.lml[i], b.lml[j]
	fd[li-1][lj-1] = 0
	for x := li; x <= i; x++ {
		fd[x][lj-1] = fd[x-1][lj-1] + 1 // delete
	}
	for y := lj; y <= j; y++ {
		fd[li-1][y] = fd[li-1][y-1] + 1 // insert
	}
	for x := li; x <= i; x++ {
		for y := lj; y <= j; y++ {
			if a.lml[x] == li && b.lml[y] == lj {
				// Both forests are whole subtrees: the relabel case is a
				// node substitution, and the result is a tree distance.
				d := min3(
					fd[x-1][y]+1,
					fd[x][y-1]+1,
					fd[x-1][y-1]+relabelCost(a.nodes[x-1], b.nodes[y-1]),
				)
				fd[x][y] = d
				td[x][y] = d
			} else {
				fd[x][y] = min3(
					fd[x-1][y]+1,
					fd[x][y-1]+1,
					fd[a.lml[x]-1][b.lml[y]-1]+td[x][y],
				)
			}
		}
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
