package truechange

import (
	"repro/internal/sig"
	"repro/internal/tree"
	"repro/internal/uri"
)

// Normalize removes redundancy from an edit script without changing its
// meaning, using three conservative rewrites:
//
//  1. update fusion — consecutive updates of one node collapse into the
//     last one (carrying the earliest old values); a fused update whose
//     old and new literals agree is dropped entirely;
//  2. detach/attach cancellation — a detach whose subtree is later
//     reattached to the very same slot, with no intervening edit touching
//     that subtree or slot, is dropped together with its attach;
//  3. load/unload cancellation — a loaded node that is later unloaded,
//     with no intervening edit touching it or its consumed kids, never
//     needed to exist; both edits are dropped.
//
// Normalization matters when scripts are composed: an incremental pipeline
// that concatenates per-keystroke diffs (Compose) accumulates edits that
// undo each other, and the composed script would otherwise grow without
// bound. Normalizing a well-typed script yields a well-typed script with
// the same standard semantics; the tests check both properties on random
// compositions.
func Normalize(s *Script) *Script {
	edits := append([]Edit(nil), s.Edits...)
	edits = fuseUpdates(edits)
	edits = cancelDetachAttach(edits)
	edits = cancelLoadUnload(edits)
	return &Script{Edits: edits}
}

// Compose concatenates consecutive scripts (the second must have been
// computed against the tree the first produces) and normalizes the result.
func Compose(scripts ...*Script) *Script {
	return Normalize(Concat(scripts...))
}

// fuseUpdates collapses multiple updates of one node into the last
// occurrence and drops no-op updates. URIs are never reused (compliance
// forbids reloading an unloaded URI), so all updates of one URI address
// the same node.
func fuseUpdates(edits []Edit) []Edit {
	// firstOld remembers the oldest literal values per node.
	firstOld := make(map[uri.URI][]LitArg)
	lastIdx := make(map[uri.URI]int)
	for i, e := range edits {
		up, ok := e.(Update)
		if !ok {
			continue
		}
		if _, seen := firstOld[up.Node.URI]; !seen {
			firstOld[up.Node.URI] = up.Old
		}
		lastIdx[up.Node.URI] = i
	}
	out := make([]Edit, 0, len(edits))
	for i, e := range edits {
		up, ok := e.(Update)
		if !ok {
			out = append(out, e)
			continue
		}
		if lastIdx[up.Node.URI] != i {
			continue // superseded by a later update
		}
		fused := Update{Node: up.Node, Old: firstOld[up.Node.URI], New: up.New}
		if litArgsEqual(fused.Old, fused.New) {
			continue // net no-op
		}
		out = append(out, fused)
	}
	return out
}

func litArgsEqual(a, b []LitArg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Link != b[i].Link || !tree.LitEqual(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

// mentionsNode reports whether the edit refers to the URI in any role.
func mentionsNode(e Edit, u uri.URI) bool {
	switch ed := e.(type) {
	case Detach:
		return ed.Node.URI == u || ed.Parent.URI == u
	case Attach:
		return ed.Node.URI == u || ed.Parent.URI == u
	case Load:
		if ed.Node.URI == u {
			return true
		}
		for _, k := range ed.Kids {
			if k.URI == u {
				return true
			}
		}
		return false
	case Unload:
		if ed.Node.URI == u {
			return true
		}
		for _, k := range ed.Kids {
			if k.URI == u {
				return true
			}
		}
		return false
	case Update:
		return ed.Node.URI == u
	default:
		return true // unknown edit kinds block all rewrites
	}
}

// mentionsSlot reports whether the edit touches the slot parent.link.
func mentionsSlot(e Edit, parent uri.URI, link sig.Link) bool {
	switch ed := e.(type) {
	case Detach:
		return ed.Parent.URI == parent && ed.Link == link
	case Attach:
		return ed.Parent.URI == parent && ed.Link == link
	default:
		return false
	}
}

// cancelDetachAttach drops detach/attach pairs that return a subtree to
// the slot it came from, when nothing in between touches the subtree root
// or the slot.
func cancelDetachAttach(edits []Edit) []Edit {
	drop := make([]bool, len(edits))
	for i, e := range edits {
		det, ok := e.(Detach)
		if !ok || drop[i] {
			continue
		}
		for j := i + 1; j < len(edits); j++ {
			if drop[j] {
				continue
			}
			if att, ok := edits[j].(Attach); ok &&
				att.Node.URI == det.Node.URI && att.Parent.URI == det.Parent.URI && att.Link == det.Link {
				drop[i], drop[j] = true, true
				break
			}
			if mentionsNode(edits[j], det.Node.URI) || mentionsSlot(edits[j], det.Parent.URI, det.Link) {
				break
			}
		}
	}
	return compact(edits, drop)
}

// cancelLoadUnload drops load/unload pairs of one URI when nothing in
// between touches the node or the kids it consumed; the kids simply stay
// unattached roots across the gap.
func cancelLoadUnload(edits []Edit) []Edit {
	drop := make([]bool, len(edits))
	for i, e := range edits {
		ld, ok := e.(Load)
		if !ok || drop[i] {
			continue
		}
		for j := i + 1; j < len(edits); j++ {
			if drop[j] {
				continue
			}
			if ul, ok := edits[j].(Unload); ok && ul.Node.URI == ld.Node.URI {
				drop[i], drop[j] = true, true
				break
			}
			touched := mentionsNode(edits[j], ld.Node.URI)
			for _, k := range ld.Kids {
				touched = touched || mentionsNode(edits[j], k.URI)
			}
			if touched {
				break
			}
		}
	}
	return compact(edits, drop)
}

func compact(edits []Edit, drop []bool) []Edit {
	out := edits[:0]
	for i, e := range edits {
		if !drop[i] {
			out = append(out, e)
		}
	}
	return out
}
