package truechange

// Buffer collects edits during diffing and orders negative edits (detach,
// unload) before positive ones (attach, load) in the final script. This
// ordering ensures a subtree is detached before it is attached elsewhere,
// which the diffing traversal does not otherwise guarantee (paper §4.4).
type Buffer struct {
	neg []Edit
	pos []Edit
}

// NewBuffer returns an empty edit buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// Add appends the edit to the negative or positive half according to its
// polarity, preserving relative order within each half.
func (b *Buffer) Add(e Edit) {
	if e.Negative() {
		b.neg = append(b.neg, e)
	} else {
		b.pos = append(b.pos, e)
	}
}

// Len returns the total number of buffered edits.
func (b *Buffer) Len() int { return len(b.neg) + len(b.pos) }

// Reset empties the buffer while keeping its capacity, so pooled diffing
// state can reuse the backing arrays across invocations. The elements are
// zeroed first so the arrays do not pin edits of earlier scripts.
func (b *Buffer) Reset() {
	clear(b.neg)
	clear(b.pos)
	b.neg = b.neg[:0]
	b.pos = b.pos[:0]
}

// Script finalizes the buffer into a script: all negative edits, in the
// order they were added, followed by all positive edits.
func (b *Buffer) Script() *Script {
	edits := make([]Edit, 0, len(b.neg)+len(b.pos))
	edits = append(edits, b.neg...)
	edits = append(edits, b.pos...)
	return &Script{Edits: edits}
}
