package truechange

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/sig"
)

func TestInvertEditDuals(t *testing.T) {
	d := Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)}
	a, ok := InvertEdit(d).(Attach)
	if !ok || a.Node != d.Node || a.Link != d.Link || a.Parent != d.Parent {
		t.Errorf("invert detach = %v", InvertEdit(d))
	}
	if _, ok := InvertEdit(a).(Detach); !ok {
		t.Error("invert attach should be detach")
	}
	l := Load{Node: nref("Num", 4), Lits: []LitArg{{Link: "n", Value: int64(7)}}}
	u, ok := InvertEdit(l).(Unload)
	if !ok || u.Node != l.Node || len(u.Lits) != 1 {
		t.Errorf("invert load = %v", InvertEdit(l))
	}
	up := Update{Node: nref("Var", 9),
		Old: []LitArg{{Link: "name", Value: "a"}},
		New: []LitArg{{Link: "name", Value: "b"}}}
	inv, ok := InvertEdit(up).(Update)
	if !ok || inv.Old[0].Value != "b" || inv.New[0].Value != "a" {
		t.Errorf("invert update = %v", InvertEdit(up))
	}
}

// TestInvertSpecialFloatLiterals pins the special-float bug class at the
// Invert level: the dual of an edit carrying NaN, ±Inf, or -0 must carry
// the exact same bit pattern, so that the inverse patch restores the
// literal bit-identically (Go == on NaN would call the values unequal, and
// -0 == +0 would let the sign bit drift — tree.LitEqual semantics apply).
func TestInvertSpecialFloatLiterals(t *testing.T) {
	bits := func(v any) uint64 { return math.Float64bits(v.(float64)) }
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)} {
		up := Update{Node: nref("Num", 1),
			Old: []LitArg{{Link: "n", Value: v}},
			New: []LitArg{{Link: "n", Value: 1.0}}}
		inv := InvertEdit(up).(Update)
		if bits(inv.New[0].Value) != math.Float64bits(v) {
			t.Errorf("inverted update lost the bit pattern of %v: %x vs %x",
				v, bits(inv.New[0].Value), math.Float64bits(v))
		}
		if bits(inv.Old[0].Value) != math.Float64bits(1.0) {
			t.Errorf("inverted update corrupted the new value: %v", inv.Old[0].Value)
		}
		ul := Unload{Node: nref("Num", 2), Lits: []LitArg{{Link: "n", Value: v}}}
		ld := InvertEdit(ul).(Load)
		if bits(ld.Lits[0].Value) != math.Float64bits(v) {
			t.Errorf("inverted unload lost the bit pattern of %v", v)
		}
		// Double inversion is exact, bit for bit.
		back := InvertEdit(InvertEdit(up)).(Update)
		if bits(back.Old[0].Value) != math.Float64bits(v) {
			t.Errorf("double inversion drifted on %v", v)
		}
	}
}

func TestInvertScriptIsWellTyped(t *testing.T) {
	sch := expSchema()
	// Replace a subtree: detach+unload+load+attach.
	s := &Script{Edits: []Edit{
		Detach{Node: nref("Var", 2), Link: "e1", Parent: nref("Add", 1)},
		Unload{Node: nref("Var", 2), Lits: []LitArg{{Link: "name", Value: "a"}}},
		Load{Node: nref("Num", 4), Lits: []LitArg{{Link: "n", Value: int64(7)}}},
		Attach{Node: nref("Num", 4), Link: "e1", Parent: nref("Add", 1)},
	}}
	if err := WellTyped(sch, s); err != nil {
		t.Fatal(err)
	}
	inv := Invert(s)
	if err := WellTyped(sch, inv); err != nil {
		t.Fatalf("inverse is ill-typed: %v\n%s", err, inv)
	}
	// Round trip: invert twice restores the original script.
	if Invert(inv).String() != s.String() {
		t.Error("double inversion should restore the script")
	}
}

func TestInvertPreservesLength(t *testing.T) {
	s := &Script{Edits: []Edit{
		Update{Node: nref("Var", 1), Old: []LitArg{{Link: "name", Value: "x"}}, New: []LitArg{{Link: "name", Value: "y"}}},
		Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)},
		Attach{Node: nref("Sub", 2), Link: "e2", Parent: nref("Mul", 5)},
	}}
	inv := Invert(s)
	if inv.Len() != s.Len() {
		t.Errorf("length changed: %d vs %d", inv.Len(), s.Len())
	}
	// Order is reversed.
	if _, ok := inv.Edits[0].(Detach); !ok {
		t.Errorf("first inverse edit = %v, want detach (dual of last attach)", inv.Edits[0])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := &Script{Edits: []Edit{
		Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)},
		Unload{Node: nref("Sub", 2), Kids: []KidArg{{Link: "e1", URI: 3}, {Link: "e2", URI: 4}}},
		Load{Node: nref("Num", 9), Lits: []LitArg{{Link: "n", Value: int64(7)}}},
		Load{Node: nref("F", 10), Lits: []LitArg{{Link: "v", Value: 2.5}}},
		Load{Node: nref("B", 11), Lits: []LitArg{{Link: "v", Value: true}}},
		Load{Node: nref("S", 12), Lits: []LitArg{{Link: "v", Value: "hi"}}},
		Attach{Node: nref("Num", 9), Link: "e1", Parent: nref("Add", 1)},
		Update{Node: nref("Var", 5),
			Old: []LitArg{{Link: "name", Value: "a"}},
			New: []LitArg{{Link: "name", Value: "b"}}},
	}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Script
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != s.String() {
		t.Fatalf("round trip changed the script:\n%s\nvs\n%s", back.String(), s.String())
	}
	// Literal types must be preserved exactly.
	if back.Edits[2].(Load).Lits[0].Value != int64(7) {
		t.Errorf("int literal type lost: %T", back.Edits[2].(Load).Lits[0].Value)
	}
	if back.Edits[3].(Load).Lits[0].Value != 2.5 {
		t.Errorf("float literal lost")
	}
	if back.Edits[4].(Load).Lits[0].Value != true {
		t.Errorf("bool literal lost")
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	var s Script
	if err := json.Unmarshal([]byte(`[{"op":"explode"}]`), &s); err == nil {
		t.Error("unknown op should fail")
	}
	if err := json.Unmarshal([]byte(`{"not":"an array"}`), &s); err == nil {
		t.Error("non-array should fail")
	}
	if err := json.Unmarshal([]byte(`[{"op":"load","lits":[{"link":"n","kind":"zzz"}]}]`), &s); err == nil {
		t.Error("unknown literal kind should fail")
	}
}

func TestMarshalRejectsBadLiteral(t *testing.T) {
	s := &Script{Edits: []Edit{
		Load{Node: nref("X", 1), Lits: []LitArg{{Link: "v", Value: []int{1}}}},
	}}
	if _, err := json.Marshal(s); err == nil {
		t.Error("unsupported literal type should fail to serialize")
	}
	_ = sig.Link("")
}
