package truechange

import (
	"strings"
	"testing"

	"repro/internal/sig"
	"repro/internal/uri"
)

// expSchema declares the paper's expression constructors for type-checker
// tests, with a small sort hierarchy to exercise subtyping.
func expSchema() *sig.Schema {
	s := sig.NewSchema("tc-test")
	s.MustDeclareSort("Lit", "Exp")
	s.MustDeclare(sig.Sig{Tag: "Num", Lits: []sig.LitSpec{{Link: "n", Type: sig.IntLit}}, Result: "Lit"})
	s.MustDeclare(sig.Sig{Tag: "Var", Lits: []sig.LitSpec{{Link: "name", Type: sig.StringLit}}, Result: "Exp"})
	for _, t := range []sig.Tag{"Add", "Sub", "Mul"} {
		s.MustDeclare(sig.Sig{Tag: t, Kids: []sig.KidSpec{{Link: "e1", Sort: "Exp"}, {Link: "e2", Sort: "Exp"}}, Result: "Exp"})
	}
	s.MustDeclare(sig.Sig{Tag: "OnlyLit", Kids: []sig.KidSpec{{Link: "e", Sort: "Lit"}}, Result: "Exp"})
	return s
}

func nref(tag sig.Tag, u uri.URI) NodeRef { return NodeRef{Tag: tag, URI: u} }

// TestPaperSection2Walkthrough replays the detach/attach table of paper §2:
// diff(Add1(Sub2(a3,b4), Mul5(c6,d7)), Add(d, Mul(c, Sub(a,b)))) yields a
// four-edit script whose intermediate root/slot states match the table.
func TestPaperSection2Walkthrough(t *testing.T) {
	sch := expSchema()
	st := ClosedState()

	// Initial tree is attached; simulate the paper's table, which tracks
	// Add1 as the (conceptual) current root of the attached tree. The
	// typing state starts closed: {null:Root} • {}.
	steps := []struct {
		edit      Edit
		wantRoots int
		wantSlots int
	}{
		{Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)}, 2, 1},
		{Detach{Node: nref("Var", 7), Link: "e2", Parent: nref("Mul", 5)}, 3, 2},
		{Attach{Node: nref("Var", 7), Link: "e1", Parent: nref("Add", 1)}, 2, 1},
		{Attach{Node: nref("Sub", 2), Link: "e2", Parent: nref("Mul", 5)}, 1, 0},
	}
	for i, s := range steps {
		if err := CheckEdit(sch, s.edit, st); err != nil {
			t.Fatalf("step %d (%s): %v", i, s.edit, err)
		}
		if len(st.Roots) != s.wantRoots || len(st.Slots) != s.wantSlots {
			t.Errorf("step %d: state %s, want %d roots / %d slots", i, st, s.wantRoots, s.wantSlots)
		}
	}
	if !st.Equal(ClosedState()) {
		t.Errorf("final state %s is not closed", st)
	}
}

// TestSwapViaMoveIsIllTyped shows why move edits are rejected: attaching to
// a non-empty slot violates linearity (paper §2: "swapping subtrees with
// move operations will violate this property").
func TestSwapViaMoveIsIllTyped(t *testing.T) {
	sch := expSchema()
	st := ClosedState()
	// move(Sub2, Mul5, e2) = detach(Sub2) + attach(Sub2 to Mul5.e2), but
	// Mul5.e2 still holds d7: the slot was never emptied.
	if err := CheckEdit(sch, Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)}, st); err != nil {
		t.Fatal(err)
	}
	err := CheckEdit(sch, Attach{Node: nref("Sub", 2), Link: "e2", Parent: nref("Mul", 5)}, st)
	if err == nil {
		t.Fatal("attach to a non-empty slot should be ill-typed")
	}
	if !strings.Contains(err.Error(), "not empty") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestExcessiveDemandExample replays paper §2's second example:
// diff(Add1(a2,b3), Add(b,b)) must unload a2 and load a fresh b4; reusing
// b3 twice is a type error.
func TestExcessiveDemandExample(t *testing.T) {
	sch := expSchema()

	good := &Script{Edits: []Edit{
		Detach{Node: nref("Var", 2), Link: "e1", Parent: nref("Add", 1)},
		Unload{Node: nref("Var", 2), Lits: []LitArg{{Link: "name", Value: "a"}}},
		Load{Node: nref("Var", 4), Lits: []LitArg{{Link: "name", Value: "b"}}},
		Attach{Node: nref("Var", 4), Link: "e1", Parent: nref("Add", 1)},
	}}
	if err := WellTyped(sch, good); err != nil {
		t.Errorf("paper's script should be well-typed: %v", err)
	}

	// Attaching b3 again is ill-typed: b3 is not a root.
	bad := &Script{Edits: []Edit{
		Detach{Node: nref("Var", 2), Link: "e1", Parent: nref("Add", 1)},
		Unload{Node: nref("Var", 2), Lits: []LitArg{{Link: "name", Value: "a"}}},
		Attach{Node: nref("Var", 3), Link: "e1", Parent: nref("Add", 1)},
	}}
	err := WellTyped(sch, bad)
	if err == nil {
		t.Fatal("reusing an attached node should be ill-typed")
	}
	if !strings.Contains(err.Error(), "not an unattached root") {
		t.Errorf("unexpected error: %v", err)
	}

	// Detaching but neither using nor unloading a node leaks a root.
	leak := &Script{Edits: []Edit{
		Detach{Node: nref("Var", 2), Link: "e1", Parent: nref("Add", 1)},
		Load{Node: nref("Var", 4), Lits: []LitArg{{Link: "name", Value: "b"}}},
		Attach{Node: nref("Var", 4), Link: "e1", Parent: nref("Add", 1)},
	}}
	if err := WellTyped(sch, leak); err == nil || !strings.Contains(err.Error(), "leaks") {
		t.Errorf("leaked root should be reported, got %v", err)
	}
}

func TestDetachRules(t *testing.T) {
	sch := expSchema()

	t.Run("node already a root", func(t *testing.T) {
		st := ClosedState()
		st.Roots[2] = "Exp"
		err := CheckEdit(sch, Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)}, st)
		if err == nil {
			t.Error("detaching an already-detached node should fail")
		}
	})
	t.Run("slot already empty", func(t *testing.T) {
		st := ClosedState()
		st.Slots[Slot{URI: 1, Link: "e1"}] = "Exp"
		err := CheckEdit(sch, Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)}, st)
		if err == nil {
			t.Error("detaching from an empty slot should fail")
		}
	})
	t.Run("unknown tags and links", func(t *testing.T) {
		st := ClosedState()
		if err := CheckEdit(sch, Detach{Node: nref("Nope", 2), Link: "e1", Parent: nref("Add", 1)}, st); err == nil {
			t.Error("undeclared node tag should fail")
		}
		if err := CheckEdit(sch, Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Nope", 1)}, st); err == nil {
			t.Error("undeclared parent tag should fail")
		}
		if err := CheckEdit(sch, Detach{Node: nref("Sub", 2), Link: "nope", Parent: nref("Add", 1)}, st); err == nil {
			t.Error("unknown link should fail")
		}
	})
	t.Run("records sorts from signatures", func(t *testing.T) {
		st := ClosedState()
		if err := CheckEdit(sch, Detach{Node: nref("Num", 2), Link: "e1", Parent: nref("Add", 1)}, st); err != nil {
			t.Fatal(err)
		}
		if st.Roots[2] != "Lit" {
			t.Errorf("root sort = %s, want Lit", st.Roots[2])
		}
		if st.Slots[Slot{URI: 1, Link: "e1"}] != "Exp" {
			t.Errorf("slot sort = %s, want Exp", st.Slots[Slot{URI: 1, Link: "e1"}])
		}
	})
}

func TestAttachSubtyping(t *testing.T) {
	sch := expSchema()

	// A Lit root may fill an Exp slot (Lit <: Exp)…
	st := ClosedState()
	st.Roots[2] = "Lit"
	st.Slots[Slot{URI: 1, Link: "e1"}] = "Exp"
	if err := CheckEdit(sch, Attach{Node: nref("Num", 2), Link: "e1", Parent: nref("Add", 1)}, st); err != nil {
		t.Errorf("Lit <: Exp attach should succeed: %v", err)
	}

	// …but an Exp root may not fill a Lit slot.
	st = ClosedState()
	st.Roots[2] = "Exp"
	st.Slots[Slot{URI: 9, Link: "e"}] = "Lit"
	if err := CheckEdit(sch, Attach{Node: nref("Add", 2), Link: "e", Parent: nref("OnlyLit", 9)}, st); err == nil {
		t.Error("Exp root must not fill a Lit slot")
	}
}

func TestLoadRules(t *testing.T) {
	sch := expSchema()

	t.Run("consumes kid roots", func(t *testing.T) {
		st := ClosedState()
		st.Roots[1] = "Exp"
		st.Roots[2] = "Lit"
		e := Load{Node: nref("Add", 3), Kids: []KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 2}}}
		if err := CheckEdit(sch, e, st); err != nil {
			t.Fatal(err)
		}
		if _, ok := st.Roots[1]; ok {
			t.Error("kid 1 should be consumed")
		}
		if st.Roots[3] != "Exp" {
			t.Errorf("loaded node sort = %s, want Exp", st.Roots[3])
		}
	})
	t.Run("kid not a root", func(t *testing.T) {
		st := ClosedState()
		st.Roots[1] = "Exp"
		e := Load{Node: nref("Add", 3), Kids: []KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 2}}}
		if err := CheckEdit(sch, e, st); err == nil {
			t.Error("loading with a non-root kid should fail")
		}
		// State must be untouched on failure.
		if _, ok := st.Roots[1]; !ok {
			t.Error("failed load must not consume roots")
		}
	})
	t.Run("same kid twice", func(t *testing.T) {
		st := ClosedState()
		st.Roots[1] = "Exp"
		e := Load{Node: nref("Add", 3), Kids: []KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 1}}}
		if err := CheckEdit(sch, e, st); err == nil {
			t.Error("consuming the same kid twice should fail")
		}
	})
	t.Run("kid sort mismatch", func(t *testing.T) {
		st := ClosedState()
		st.Roots[1] = "Exp"
		e := Load{Node: nref("OnlyLit", 3), Kids: []KidArg{{Link: "e", URI: 1}}}
		if err := CheckEdit(sch, e, st); err == nil {
			t.Error("Exp kid must not satisfy a Lit expectation")
		}
	})
	t.Run("argument shape", func(t *testing.T) {
		st := ClosedState()
		cases := []Load{
			{Node: nref("Num", 3)}, // missing literal
			{Node: nref("Num", 3), Lits: []LitArg{{Link: "n", Value: "x"}}},                                // wrong base type
			{Node: nref("Num", 3), Lits: []LitArg{{Link: "m", Value: int64(1)}}},                           // wrong link name
			{Node: nref("Var", 3), Lits: []LitArg{{Link: "name", Value: "a"}, {Link: "name", Value: "b"}}}, // dup link
			{Node: nref(sig.RootTag, 3)}, // root tag
			{Node: nref("Nope", 3)},      // undeclared
		}
		for _, e := range cases {
			if err := CheckEdit(sch, e, st.Clone()); err == nil {
				t.Errorf("load %s should fail", e)
			}
		}
	})
	t.Run("reloading an existing root", func(t *testing.T) {
		st := ClosedState()
		st.Roots[3] = "Exp"
		e := Load{Node: nref("Num", 3), Lits: []LitArg{{Link: "n", Value: int64(1)}}}
		if err := CheckEdit(sch, e, st); err == nil {
			t.Error("loading a URI that is already a root should fail")
		}
	})
}

func TestUnloadRules(t *testing.T) {
	sch := expSchema()

	t.Run("releases kids as roots", func(t *testing.T) {
		st := ClosedState()
		st.Roots[3] = "Exp"
		e := Unload{Node: nref("Add", 3), Kids: []KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 2}}}
		if err := CheckEdit(sch, e, st); err != nil {
			t.Fatal(err)
		}
		if _, ok := st.Roots[3]; ok {
			t.Error("unloaded node should be consumed")
		}
		if st.Roots[1] != "Exp" || st.Roots[2] != "Exp" {
			t.Errorf("kids not released with signature sorts: %s", st)
		}
	})
	t.Run("node not a root", func(t *testing.T) {
		st := ClosedState()
		e := Unload{Node: nref("Num", 3), Lits: []LitArg{{Link: "n", Value: int64(1)}}}
		if err := CheckEdit(sch, e, st); err == nil {
			t.Error("unloading an attached node should fail")
		}
	})
	t.Run("kid already a root", func(t *testing.T) {
		st := ClosedState()
		st.Roots[3] = "Exp"
		st.Roots[1] = "Exp"
		e := Unload{Node: nref("Add", 3), Kids: []KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 2}}}
		if err := CheckEdit(sch, e, st); err == nil {
			t.Error("releasing a kid that is already a root should fail")
		}
	})
	t.Run("kid released twice", func(t *testing.T) {
		st := ClosedState()
		st.Roots[3] = "Exp"
		e := Unload{Node: nref("Add", 3), Kids: []KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 1}}}
		if err := CheckEdit(sch, e, st); err == nil {
			t.Error("releasing the same kid twice should fail")
		}
	})
}

func TestUpdateRules(t *testing.T) {
	sch := expSchema()
	st := ClosedState()
	ok := Update{Node: nref("Var", 2),
		Old: []LitArg{{Link: "name", Value: "b"}},
		New: []LitArg{{Link: "name", Value: "c"}}}
	if err := CheckEdit(sch, ok, st); err != nil {
		t.Errorf("valid update rejected: %v", err)
	}
	if !st.Equal(ClosedState()) {
		t.Error("update must not affect roots or slots")
	}
	bad := []Update{
		{Node: nref("Var", 2), New: []LitArg{{Link: "name", Value: int64(1)}}},
		{Node: nref("Var", 2), New: []LitArg{{Link: "nope", Value: "c"}}},
		{Node: nref("Var", 2), New: nil},
		{Node: nref("Var", 2), New: []LitArg{{Link: "name", Value: "a"}, {Link: "name", Value: "b"}}},
		{Node: nref("Nope", 2), New: []LitArg{{Link: "name", Value: "c"}}},
	}
	for _, e := range bad {
		if err := CheckEdit(sch, e, st.Clone()); err == nil {
			t.Errorf("update %s should fail", e)
		}
	}
}

// TestInitializingScript replays ∆1 from paper §3.1 against Definition 3.2.
func TestInitializingScript(t *testing.T) {
	sch := expSchema()
	d1 := &Script{Edits: []Edit{
		Load{Node: nref("Var", 1), Lits: []LitArg{{Link: "name", Value: "a"}}},
		Load{Node: nref("Var", 2), Lits: []LitArg{{Link: "name", Value: "b"}}},
		Load{Node: nref("Add", 3), Kids: []KidArg{{Link: "e1", URI: 1}, {Link: "e2", URI: 2}}},
		Attach{Node: nref("Add", 3), Link: sig.RootLink, Parent: RootRef},
	}}
	if err := WellTypedInit(sch, d1); err != nil {
		t.Errorf("∆1 should be a well-typed initializing script: %v", err)
	}
	// The same script is not well-typed against a closed tree: the root
	// slot is occupied.
	if err := WellTyped(sch, d1); err == nil {
		t.Error("∆1 must not type-check against a closed tree")
	}
	// An empty script does not initialize the tree (leaks the empty slot).
	if err := WellTypedInit(sch, &Script{}); err == nil {
		t.Error("empty script leaves the root slot empty")
	}
	// The empty script is well-typed against a closed tree.
	if err := WellTyped(sch, &Script{}); err != nil {
		t.Errorf("empty script should be well-typed on closed trees: %v", err)
	}
}

func TestCheckReportsEditIndex(t *testing.T) {
	sch := expSchema()
	s := &Script{Edits: []Edit{
		Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)},
		Attach{Node: nref("Sub", 99), Link: "e1", Parent: nref("Add", 1)}, // not a root
	}}
	err := Check(sch, s, ClosedState())
	te, ok := err.(*TypeError)
	if !ok {
		t.Fatalf("want *TypeError, got %T: %v", err, err)
	}
	if te.Index != 1 {
		t.Errorf("error index = %d, want 1", te.Index)
	}
	if !strings.Contains(te.Error(), "#1") {
		t.Errorf("error text should mention the index: %v", te)
	}
}

func TestStateCloneAndEqual(t *testing.T) {
	st := ClosedState()
	st.Roots[5] = "Exp"
	st.Slots[Slot{URI: 1, Link: "e1"}] = "Exp"
	c := st.Clone()
	if !st.Equal(c) {
		t.Error("clone should equal original")
	}
	c.Roots[6] = "Exp"
	if st.Equal(c) {
		t.Error("diverged clone should differ")
	}
	d := st.Clone()
	d.Roots[5] = "Lit"
	if st.Equal(d) {
		t.Error("sort change should break equality")
	}
	e := st.Clone()
	delete(e.Slots, Slot{URI: 1, Link: "e1"})
	e.Slots[Slot{URI: 1, Link: "e2"}] = "Exp"
	if st.Equal(e) {
		t.Error("slot change should break equality")
	}
}
