package truechange

import (
	"testing"

	"repro/internal/sig"
)

func TestFuseUpdates(t *testing.T) {
	s := &Script{Edits: []Edit{
		Update{Node: nref("Var", 1), Old: lit("name", "a"), New: lit("name", "b")},
		Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 9)},
		Update{Node: nref("Var", 1), Old: lit("name", "b"), New: lit("name", "c")},
	}}
	n := Normalize(s)
	updates := 0
	for _, e := range n.Edits {
		if up, ok := e.(Update); ok {
			updates++
			if up.Old[0].Value != "a" || up.New[0].Value != "c" {
				t.Errorf("fused update = %s, want a→c", up)
			}
		}
	}
	if updates != 1 {
		t.Errorf("updates after fusion = %d, want 1:\n%s", updates, n)
	}
}

func TestFuseDropsNetNoop(t *testing.T) {
	s := &Script{Edits: []Edit{
		Update{Node: nref("Var", 1), Old: lit("name", "a"), New: lit("name", "b")},
		Update{Node: nref("Var", 1), Old: lit("name", "b"), New: lit("name", "a")},
	}}
	if n := Normalize(s); n.Len() != 0 {
		t.Errorf("a→b→a should vanish:\n%s", n)
	}
}

func TestCancelDetachAttachSamePlace(t *testing.T) {
	s := &Script{Edits: []Edit{
		Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)},
		Update{Node: nref("Var", 7), Old: lit("name", "x"), New: lit("name", "y")},
		Attach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)},
	}}
	n := Normalize(s)
	if n.Len() != 1 {
		t.Fatalf("detach/attach round trip should cancel:\n%s", n)
	}
	if _, ok := n.Edits[0].(Update); !ok {
		t.Errorf("surviving edit should be the update: %s", n.Edits[0])
	}
}

func TestNoCancelAcrossInterference(t *testing.T) {
	// The slot is reused in between: the pair must not cancel.
	s := &Script{Edits: []Edit{
		Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)},
		Attach{Node: nref("Num", 5), Link: "e1", Parent: nref("Add", 1)},
		Detach{Node: nref("Num", 5), Link: "e1", Parent: nref("Add", 1)},
		Attach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)},
	}}
	n := Normalize(s)
	// The inner Num pair occupies the slot, so the outer Sub pair must
	// stay; the inner attach/detach of Num 5 is itself not a
	// detach-then-attach (it is attach-then-detach) and must stay too.
	if n.Len() != 4 {
		t.Errorf("interfering edits must not cancel:\n%s", n)
	}

	// A move to a different slot must not cancel either.
	move := &Script{Edits: []Edit{
		Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)},
		Attach{Node: nref("Sub", 2), Link: "e2", Parent: nref("Mul", 3)},
	}}
	if n := Normalize(move); n.Len() != 2 {
		t.Errorf("moves must survive normalization:\n%s", n)
	}
}

func TestCancelLoadUnload(t *testing.T) {
	s := &Script{Edits: []Edit{
		Load{Node: nref("Num", 9), Lits: lit("n", int64(1))},
		Update{Node: nref("Var", 7), Old: lit("name", "x"), New: lit("name", "y")},
		Unload{Node: nref("Num", 9), Lits: lit("n", int64(1))},
	}}
	n := Normalize(s)
	if n.Len() != 1 {
		t.Fatalf("load/unload of an untouched node should cancel:\n%s", n)
	}
}

func TestNoCancelLoadUnloadWhenUsed(t *testing.T) {
	s := &Script{Edits: []Edit{
		Load{Node: nref("Num", 9), Lits: lit("n", int64(1))},
		Attach{Node: nref("Num", 9), Link: "e1", Parent: nref("Add", 1)},
		Detach{Node: nref("Num", 9), Link: "e1", Parent: nref("Add", 1)},
		Unload{Node: nref("Num", 9), Lits: lit("n", int64(1))},
	}}
	// The attach/detach pair references the node, so the load/unload must
	// not cancel across it (and attach-then-detach does not cancel).
	if n := Normalize(s); n.Len() != 4 {
		t.Errorf("used node's load/unload must stay:\n%s", n)
	}
}

func lit(link string, v any) []LitArg {
	return []LitArg{{Link: sig.Link(link), Value: v}}
}
