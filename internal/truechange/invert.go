package truechange

// Invert returns the inverse of an edit script: applying s and then
// Invert(s) restores the original tree. Each edit inverts to its dual —
// detach ↔ attach, load ↔ unload, update swaps its literal lists — and the
// sequence is reversed. The inverse of a well-typed script is well-typed:
// the typing relation Σ ⊢ e : (R • S) ▷ (R′ • S′) is symmetric under
// dualization, which makes truechange patches first-class invertible
// values in the sense of the darcs-style patch theories discussed in the
// paper's §7.
func Invert(s *Script) *Script {
	out := &Script{Edits: make([]Edit, 0, len(s.Edits))}
	for i := len(s.Edits) - 1; i >= 0; i-- {
		out.Edits = append(out.Edits, InvertEdit(s.Edits[i]))
	}
	return out
}

// InvertEdit returns the dual of a single edit operation.
func InvertEdit(e Edit) Edit {
	switch ed := e.(type) {
	case Detach:
		return Attach{Node: ed.Node, Link: ed.Link, Parent: ed.Parent}
	case Attach:
		return Detach{Node: ed.Node, Link: ed.Link, Parent: ed.Parent}
	case Load:
		return Unload{Node: ed.Node, Kids: ed.Kids, Lits: ed.Lits}
	case Unload:
		return Load{Node: ed.Node, Kids: ed.Kids, Lits: ed.Lits}
	case Update:
		return Update{Node: ed.Node, Old: ed.New, New: ed.Old}
	default:
		return e
	}
}
