package truechange

import (
	"encoding/json"
	"fmt"

	"repro/internal/sig"
	"repro/internal/uri"
)

// This file implements a JSON wire format for edit scripts, supporting the
// transmission use case of paper §1 ("any subsequent transmission or
// processing of the patch"): because truechange patches only mention
// changed nodes, the serialized patch stays proportional to the change.
//
// Literal values survive the round trip with their types: int64 and
// float64 are distinguished by a type tag, since encoding/json would
// otherwise decode both as float64.

// wireEdit is the serialized form of one edit.
type wireEdit struct {
	Op   string    `json:"op"`
	Tag  string    `json:"tag"`
	URI  uint64    `json:"uri"`
	Link string    `json:"link,omitempty"`
	PTag string    `json:"ptag,omitempty"`
	PURI uint64    `json:"puri,omitempty"`
	Kids []wireKid `json:"kids,omitempty"`
	Lits []wireLit `json:"lits,omitempty"`
	Old  []wireLit `json:"old,omitempty"`
	New  []wireLit `json:"new,omitempty"`
}

type wireKid struct {
	Link string `json:"link"`
	URI  uint64 `json:"uri"`
}

type wireLit struct {
	Link string  `json:"link"`
	Kind string  `json:"kind"` // s | i | f | b
	S    string  `json:"s,omitempty"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	B    bool    `json:"b,omitempty"`
}

func toWireLit(l LitArg) (wireLit, error) {
	w := wireLit{Link: string(l.Link)}
	switch v := l.Value.(type) {
	case string:
		w.Kind, w.S = "s", v
	case int64:
		w.Kind, w.I = "i", v
	case float64:
		w.Kind, w.F = "f", v
	case bool:
		w.Kind, w.B = "b", v
	default:
		return w, fmt.Errorf("truechange: unsupported literal type %T", l.Value)
	}
	return w, nil
}

func fromWireLit(w wireLit) (LitArg, error) {
	l := LitArg{Link: sig.Link(w.Link)}
	switch w.Kind {
	case "s":
		l.Value = w.S
	case "i":
		l.Value = w.I
	case "f":
		l.Value = w.F
	case "b":
		l.Value = w.B
	default:
		return l, fmt.Errorf("truechange: unknown literal kind %q", w.Kind)
	}
	return l, nil
}

func toWireLits(ls []LitArg) ([]wireLit, error) {
	if len(ls) == 0 {
		return nil, nil
	}
	out := make([]wireLit, len(ls))
	for i, l := range ls {
		w, err := toWireLit(l)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

func fromWireLits(ws []wireLit) ([]LitArg, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	out := make([]LitArg, len(ws))
	for i, w := range ws {
		l, err := fromWireLit(w)
		if err != nil {
			return nil, err
		}
		out[i] = l
	}
	return out, nil
}

func toWireKids(ks []KidArg) []wireKid {
	if len(ks) == 0 {
		return nil
	}
	out := make([]wireKid, len(ks))
	for i, k := range ks {
		out[i] = wireKid{Link: string(k.Link), URI: uint64(k.URI)}
	}
	return out
}

func fromWireKids(ws []wireKid) []KidArg {
	if len(ws) == 0 {
		return nil
	}
	out := make([]KidArg, len(ws))
	for i, w := range ws {
		out[i] = KidArg{Link: sig.Link(w.Link), URI: uri.URI(w.URI)}
	}
	return out
}

// MarshalJSON serializes the script as an array of edit objects.
func (s *Script) MarshalJSON() ([]byte, error) {
	wire := make([]wireEdit, 0, len(s.Edits))
	for _, e := range s.Edits {
		var w wireEdit
		var err error
		switch ed := e.(type) {
		case Detach:
			w = wireEdit{Op: "detach", Tag: string(ed.Node.Tag), URI: uint64(ed.Node.URI),
				Link: string(ed.Link), PTag: string(ed.Parent.Tag), PURI: uint64(ed.Parent.URI)}
		case Attach:
			w = wireEdit{Op: "attach", Tag: string(ed.Node.Tag), URI: uint64(ed.Node.URI),
				Link: string(ed.Link), PTag: string(ed.Parent.Tag), PURI: uint64(ed.Parent.URI)}
		case Load:
			w = wireEdit{Op: "load", Tag: string(ed.Node.Tag), URI: uint64(ed.Node.URI),
				Kids: toWireKids(ed.Kids)}
			w.Lits, err = toWireLits(ed.Lits)
		case Unload:
			w = wireEdit{Op: "unload", Tag: string(ed.Node.Tag), URI: uint64(ed.Node.URI),
				Kids: toWireKids(ed.Kids)}
			w.Lits, err = toWireLits(ed.Lits)
		case Update:
			w = wireEdit{Op: "update", Tag: string(ed.Node.Tag), URI: uint64(ed.Node.URI)}
			if w.Old, err = toWireLits(ed.Old); err == nil {
				w.New, err = toWireLits(ed.New)
			}
		default:
			err = fmt.Errorf("truechange: cannot serialize edit %T", e)
		}
		if err != nil {
			return nil, err
		}
		wire = append(wire, w)
	}
	return json.Marshal(wire)
}

// UnmarshalJSON deserializes a script produced by MarshalJSON.
func (s *Script) UnmarshalJSON(data []byte) error {
	var wire []wireEdit
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	s.Edits = make([]Edit, 0, len(wire))
	for _, w := range wire {
		node := NodeRef{Tag: sig.Tag(w.Tag), URI: uri.URI(w.URI)}
		parent := NodeRef{Tag: sig.Tag(w.PTag), URI: uri.URI(w.PURI)}
		switch w.Op {
		case "detach":
			s.Edits = append(s.Edits, Detach{Node: node, Link: sig.Link(w.Link), Parent: parent})
		case "attach":
			s.Edits = append(s.Edits, Attach{Node: node, Link: sig.Link(w.Link), Parent: parent})
		case "load":
			lits, err := fromWireLits(w.Lits)
			if err != nil {
				return err
			}
			s.Edits = append(s.Edits, Load{Node: node, Kids: fromWireKids(w.Kids), Lits: lits})
		case "unload":
			lits, err := fromWireLits(w.Lits)
			if err != nil {
				return err
			}
			s.Edits = append(s.Edits, Unload{Node: node, Kids: fromWireKids(w.Kids), Lits: lits})
		case "update":
			old, err := fromWireLits(w.Old)
			if err != nil {
				return err
			}
			now, err := fromWireLits(w.New)
			if err != nil {
				return err
			}
			s.Edits = append(s.Edits, Update{Node: node, Old: old, New: now})
		default:
			return fmt.Errorf("truechange: unknown edit op %q", w.Op)
		}
	}
	return nil
}
