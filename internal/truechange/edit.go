// Package truechange implements the linearly typed edit script language of
// the paper (Section 3): the five edit operations, edit scripts, the edit
// buffer that orders negative edits before positive ones, and the linear
// type system that tracks unattached roots and empty slots.
//
// An edit script describes destructive updates of a source tree. Scripts
// refer to nodes by URI, so a script only mentions changed nodes — this is
// what makes truechange patches concise. The linear type system (Figure 3)
// guarantees that executing a well-typed script yields well-typed trees at
// every intermediate step: links are never overloaded, every detached
// subtree is eventually reattached or deleted, and every empty slot is
// eventually filled.
package truechange

import (
	"fmt"
	"strings"

	"repro/internal/sig"
	"repro/internal/uri"
)

// NodeRef identifies a node by tag and URI (the paper writes Tag_URI).
type NodeRef struct {
	Tag sig.Tag
	URI uri.URI
}

// RootRef is the pre-defined root node that anchors every tree.
var RootRef = NodeRef{Tag: sig.RootTag, URI: uri.Root}

// String renders the reference as Tag#uri.
func (n NodeRef) String() string { return string(n.Tag) + n.URI.String() }

// KidArg names one child of a loaded or unloaded node.
type KidArg struct {
	Link sig.Link
	URI  uri.URI
}

// LitArg names one literal of a loaded, unloaded, or updated node.
type LitArg struct {
	Link  sig.Link
	Value any
}

// Edit is one of the five truechange edit operations: Detach, Attach, Load,
// Unload, or Update.
type Edit interface {
	fmt.Stringer
	// Negative reports whether the edit removes material from the tree
	// (Detach, Unload). The edit buffer emits negative edits first.
	Negative() bool
}

// Detach disconnects the subtree rooted at Node from Parent, where it was
// attached via Link. Node becomes an unattached root; Parent.Link becomes
// an empty slot.
type Detach struct {
	Node   NodeRef
	Link   sig.Link
	Parent NodeRef
}

// Attach connects the unattached root Node to the empty slot Parent.Link.
type Attach struct {
	Node   NodeRef
	Link   sig.Link
	Parent NodeRef
}

// Load creates a new node with a fresh URI. Kids lists the node's children,
// which must be unattached roots (they are consumed); Lits lists its
// literals. The new node becomes an unattached root.
type Load struct {
	Node NodeRef
	Kids []KidArg
	Lits []LitArg
}

// Unload deletes the node, which must be an unattached root; its children
// become unattached roots.
type Unload struct {
	Node NodeRef
	Kids []KidArg
	Lits []LitArg
}

// Update replaces the node's literal values. The node keeps its children
// and stays attached to its parent.
type Update struct {
	Node NodeRef
	Old  []LitArg
	New  []LitArg
}

// Negative implementations: Detach and Unload remove material.

// Negative reports true: Detach removes material from the tree.
func (Detach) Negative() bool { return true }

// Negative reports true: Unload removes material from the tree.
func (Unload) Negative() bool { return true }

// Negative reports false: Attach adds material to the tree.
func (Attach) Negative() bool { return false }

// Negative reports false: Load adds material to the tree.
func (Load) Negative() bool { return false }

// Negative reports false: Update modifies literals in place.
func (Update) Negative() bool { return false }

func (e Detach) String() string {
	return fmt.Sprintf("detach(%s, %q, %s)", e.Node, e.Link, e.Parent)
}

func (e Attach) String() string {
	return fmt.Sprintf("attach(%s, %q, %s)", e.Node, e.Link, e.Parent)
}

func formatArgs(b *strings.Builder, kids []KidArg, lits []LitArg) {
	b.WriteString(", ⟨")
	for i, k := range kids {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s=%s", k.Link, k.URI)
	}
	b.WriteString("⟩, ⟨")
	for i, l := range lits {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s=%#v", l.Link, l.Value)
	}
	b.WriteString("⟩)")
}

func (e Load) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load(%s", e.Node)
	formatArgs(&b, e.Kids, e.Lits)
	return b.String()
}

func (e Unload) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "unload(%s", e.Node)
	formatArgs(&b, e.Kids, e.Lits)
	return b.String()
}

func (e Update) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "update(%s, ⟨", e.Node)
	for i, l := range e.Old {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%#v", l.Link, l.Value)
	}
	b.WriteString("⟩, ⟨")
	for i, l := range e.New {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%#v", l.Link, l.Value)
	}
	b.WriteString("⟩)")
	return b.String()
}

// Script is a sequence of edits, applied left to right.
type Script struct {
	Edits []Edit
}

// Len returns the raw number of edit operations.
func (s *Script) Len() int { return len(s.Edits) }

// IsEmpty reports whether the script contains no edits.
func (s *Script) IsEmpty() bool { return len(s.Edits) == 0 }

// String renders the script one edit per line, bracketed.
func (s *Script) String() string {
	var b strings.Builder
	b.WriteString("[\n")
	for _, e := range s.Edits {
		b.WriteString("  ")
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	b.WriteString("]")
	return b.String()
}

// EditCount returns the paper's conciseness metric: a Detach directly
// followed by an Unload of the same node counts as one edit (a compound
// delete), and a Load directly followed by an Attach of the same node
// counts as one edit (a compound insert). This corresponds to the Del and
// Ins edits of Gumtree, which also un/load and de/attach at once.
func (s *Script) EditCount() int {
	count := 0
	for i := 0; i < len(s.Edits); i++ {
		count++
		if i+1 >= len(s.Edits) {
			break
		}
		switch e := s.Edits[i].(type) {
		case Detach:
			if u, ok := s.Edits[i+1].(Unload); ok && u.Node.URI == e.Node.URI {
				i++ // compound delete
			}
		case Load:
			if a, ok := s.Edits[i+1].(Attach); ok && a.Node.URI == e.Node.URI {
				i++ // compound insert
			}
		}
	}
	return count
}

// Concat returns the concatenation of scripts, in order.
func Concat(scripts ...*Script) *Script {
	out := &Script{}
	for _, s := range scripts {
		out.Edits = append(out.Edits, s.Edits...)
	}
	return out
}
