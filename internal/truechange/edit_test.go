package truechange

import (
	"strings"
	"testing"

	"repro/internal/sig"
)

func TestBufferOrdersNegativeBeforePositive(t *testing.T) {
	b := NewBuffer()
	b.Add(Load{Node: nref("Var", 4)})
	b.Add(Detach{Node: nref("Var", 2), Link: "e1", Parent: nref("Add", 1)})
	b.Add(Attach{Node: nref("Var", 4), Link: "e1", Parent: nref("Add", 1)})
	b.Add(Unload{Node: nref("Var", 2)})
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	s := b.Script()
	kinds := make([]bool, len(s.Edits))
	for i, e := range s.Edits {
		kinds[i] = e.Negative()
	}
	want := []bool{true, true, false, false}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("edit %d polarity = %v, script:\n%s", i, kinds[i], s)
		}
	}
	// Relative order within halves is preserved.
	if _, ok := s.Edits[0].(Detach); !ok {
		t.Errorf("first negative should be the Detach: %s", s.Edits[0])
	}
	if _, ok := s.Edits[2].(Load); !ok {
		t.Errorf("first positive should be the Load: %s", s.Edits[2])
	}
}

func TestEditPolarity(t *testing.T) {
	if !(Detach{}).Negative() || !(Unload{}).Negative() {
		t.Error("detach/unload should be negative")
	}
	if (Attach{}).Negative() || (Load{}).Negative() || (Update{}).Negative() {
		t.Error("attach/load/update should be positive")
	}
}

func TestEditCountCompoundsInsAndDel(t *testing.T) {
	// A replacement of one leaf: detach+unload (compound del) then
	// load+attach (compound ins) counts as 2 edits, like Gumtree's Del+Ins.
	s := &Script{Edits: []Edit{
		Detach{Node: nref("Var", 2), Link: "e1", Parent: nref("Add", 1)},
		Unload{Node: nref("Var", 2), Lits: []LitArg{{Link: "name", Value: "a"}}},
		Load{Node: nref("Var", 4), Lits: []LitArg{{Link: "name", Value: "b"}}},
		Attach{Node: nref("Var", 4), Link: "e1", Parent: nref("Add", 1)},
	}}
	if got := s.EditCount(); got != 2 {
		t.Errorf("EditCount = %d, want 2", got)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}

	// A move (detach+attach of the same node) is 2 edits: the pair does
	// not compound because the attach does not follow a load.
	move := &Script{Edits: []Edit{
		Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)},
		Attach{Node: nref("Sub", 2), Link: "e2", Parent: nref("Mul", 5)},
	}}
	if got := move.EditCount(); got != 2 {
		t.Errorf("move EditCount = %d, want 2", got)
	}

	// Unload of a different node right after a detach does not compound.
	mixed := &Script{Edits: []Edit{
		Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)},
		Unload{Node: nref("Var", 3)},
		Update{Node: nref("Var", 9), New: []LitArg{{Link: "name", Value: "z"}}},
	}}
	if got := mixed.EditCount(); got != 3 {
		t.Errorf("mixed EditCount = %d, want 3", got)
	}

	if (&Script{}).EditCount() != 0 {
		t.Error("empty script should count 0")
	}
}

func TestScriptStringMentionsAllEdits(t *testing.T) {
	s := &Script{Edits: []Edit{
		Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)},
		Load{Node: nref("Num", 4), Lits: []LitArg{{Link: "n", Value: int64(7)}}},
		Unload{Node: nref("Var", 3), Lits: []LitArg{{Link: "name", Value: "a"}}},
		Attach{Node: nref("Num", 4), Link: "e1", Parent: nref("Add", 1)},
		Update{Node: nref("Var", 9),
			Old: []LitArg{{Link: "name", Value: "b"}},
			New: []LitArg{{Link: "name", Value: "c"}}},
	}}
	out := s.String()
	for _, want := range []string{"detach(", "attach(", "load(", "unload(", "update(", "#1", "#4", `"e1"`, "7", `"c"`} {
		if !strings.Contains(out, want) {
			t.Errorf("script rendering lacks %q:\n%s", want, out)
		}
	}
}

func TestNodeRefString(t *testing.T) {
	if got := nref("Add", 1).String(); got != "Add#1" {
		t.Errorf("NodeRef string = %q", got)
	}
	if got := RootRef.String(); !strings.Contains(got, "#root") {
		t.Errorf("root ref = %q", got)
	}
	if RootRef.Tag != sig.RootTag {
		t.Error("RootRef should carry the root tag")
	}
}

func TestConcat(t *testing.T) {
	a := &Script{Edits: []Edit{Update{Node: nref("Var", 1)}}}
	b := &Script{Edits: []Edit{Update{Node: nref("Var", 2)}, Update{Node: nref("Var", 3)}}}
	c := Concat(a, b)
	if c.Len() != 3 {
		t.Fatalf("Concat length = %d", c.Len())
	}
	if c.Edits[0].(Update).Node.URI != 1 || c.Edits[2].(Update).Node.URI != 3 {
		t.Error("Concat order wrong")
	}
	if !(&Script{}).IsEmpty() || c.IsEmpty() {
		t.Error("IsEmpty wrong")
	}
}

func TestComputeStats(t *testing.T) {
	s := &Script{Edits: []Edit{
		Detach{Node: nref("Sub", 2), Link: "e1", Parent: nref("Add", 1)}, // moved
		Detach{Node: nref("Var", 3), Link: "e2", Parent: nref("Add", 1)}, // deleted
		Unload{Node: nref("Var", 3), Lits: []LitArg{{Link: "name", Value: "a"}}},
		Load{Node: nref("Num", 9), Lits: []LitArg{{Link: "n", Value: int64(1)}}},
		Attach{Node: nref("Sub", 2), Link: "e2", Parent: nref("Add", 1)},
		Attach{Node: nref("Num", 9), Link: "e1", Parent: nref("Add", 1)},
		Update{Node: nref("Var", 5), New: []LitArg{{Link: "name", Value: "z"}}},
	}}
	st := ComputeStats(s)
	if st.Detaches != 2 || st.Attaches != 2 || st.Loads != 1 || st.Unloads != 1 || st.Updates != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Moves != 1 {
		t.Errorf("moves = %d, want 1 (Sub#2 detached then reattached)", st.Moves)
	}
	out := st.String()
	for _, want := range []string{"1 moves", "1 updates", "compound"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats string lacks %q: %s", want, out)
		}
	}
	if ComputeStats(&Script{}).String() != "empty script" {
		t.Error("empty script string wrong")
	}
}
