package truechange

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// fuzzSeedScript is a script covering every edit kind and literal type, so
// the fuzzer starts from a structurally rich corpus entry.
func fuzzSeedScript() *Script {
	return &Script{Edits: []Edit{
		Detach{Node: NodeRef{Tag: "Add", URI: 1}, Link: "e1", Parent: NodeRef{Tag: "Mul", URI: 2}},
		Attach{Node: NodeRef{Tag: "Add", URI: 1}, Link: "e2", Parent: NodeRef{Tag: "Mul", URI: 2}},
		Load{Node: NodeRef{Tag: "Let", URI: 3},
			Kids: []KidArg{{Link: "bound", URI: 4}, {Link: "body", URI: 5}},
			Lits: []LitArg{{Link: "x", Value: "name"}}},
		Unload{Node: NodeRef{Tag: "Num", URI: 6}, Lits: []LitArg{{Link: "n", Value: int64(-7)}}},
		Update{Node: NodeRef{Tag: "Lit", URI: 7},
			Old: []LitArg{{Link: "f", Value: 1.5}, {Link: "b", Value: true}, {Link: "i", Value: int64(0)}},
			New: []LitArg{{Link: "f", Value: -2.25}, {Link: "b", Value: false}, {Link: "i", Value: int64(9)}}},
	}}
}

// FuzzCodecRoundTrip feeds arbitrary bytes to the script decoder and
// checks the codec invariants on everything it accepts:
//
//   - decode → encode → decode is a fixed point (the second decode yields
//     a deeply equal script, and re-encoding is byte-stable), and
//   - the codec never panics, whatever the input.
//
// Together these guarantee transmitted patches survive store-and-forward
// hops without drift (§1's transmission use case).
func FuzzCodecRoundTrip(f *testing.F) {
	seed, err := json.Marshal(fuzzSeedScript())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"op":"detach","tag":"A","uri":1,"link":"l","ptag":"B","puri":2}]`))
	f.Add([]byte(`[{"op":"load","tag":"A","uri":1,"lits":[{"link":"l","kind":"f","f":3.5}]}]`))
	f.Add([]byte(`[{"op":"update","tag":"A","uri":1,"old":[{"link":"l","kind":"b","b":true}]}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Script
		if err := json.Unmarshal(data, &s); err != nil {
			return // not a script; rejecting is the correct behaviour
		}
		enc, err := json.Marshal(&s)
		if err != nil {
			t.Fatalf("decoded script failed to re-encode: %v", err)
		}
		var s2 Script
		if err := json.Unmarshal(enc, &s2); err != nil {
			t.Fatalf("re-encoded script failed to decode: %v\nencoded: %s", err, enc)
		}
		if !reflect.DeepEqual(s.Edits, s2.Edits) {
			t.Fatalf("round trip changed the script:\nfirst:  %#v\nsecond: %#v", s.Edits, s2.Edits)
		}
		enc2, err := json.Marshal(&s2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not byte-stable:\nfirst:  %s\nsecond: %s", enc, enc2)
		}
	})
}

// FuzzCheckEditNoPanic throws arbitrary decoded edits at the type checker:
// whatever the edit, CheckEdit must return (an error or nil), never panic,
// and must leave a nil-safe state behind.
func FuzzCheckEditNoPanic(f *testing.F) {
	seed, err := json.Marshal(fuzzSeedScript())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Script
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		sch := expSchema() // the type-checker test schema (typecheck_test.go)
		st := ClosedState()
		for _, e := range s.Edits {
			// Errors are expected on arbitrary edits; panics are not.
			_ = CheckEdit(sch, e, st)
		}
	})
}
