package truechange

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/derrors"
	"repro/internal/sig"
	"repro/internal/uri"
)

// Slot identifies an empty child slot: the link of a parent node that
// currently points to no subtree (the paper writes uri.link).
type Slot struct {
	URI  uri.URI
	Link sig.Link
}

// String renders the slot as uri.link.
func (s Slot) String() string { return s.URI.String() + "." + string(s.Link) }

// State is the typing context threaded through an edit script: the
// unattached subtree roots R with their sorts, and the empty slots S with
// the sorts they expect (Figure 3). State is mutated in place by CheckEdit.
type State struct {
	Roots map[uri.URI]sig.Sort
	Slots map[Slot]sig.Sort
}

// NewState returns an empty typing state.
func NewState() *State {
	return &State{
		Roots: make(map[uri.URI]sig.Sort),
		Slots: make(map[Slot]sig.Sort),
	}
}

// ClosedState is the canonical state of a closed tree: the single root is
// the pre-defined root node and there are no empty slots. Definition 3.1
// requires a well-typed script to map this state to itself.
func ClosedState() *State {
	st := NewState()
	st.Roots[uri.Root] = sig.RootSort
	return st
}

// InitState is the state of the empty tree ε: the pre-defined root node
// with its single slot RootLink still empty (Definition 3.2).
func InitState() *State {
	st := ClosedState()
	st.Slots[Slot{URI: uri.Root, Link: sig.RootLink}] = sig.Any
	return st
}

// Clone returns an independent copy of the state.
func (st *State) Clone() *State {
	c := NewState()
	for k, v := range st.Roots {
		c.Roots[k] = v
	}
	for k, v := range st.Slots {
		c.Slots[k] = v
	}
	return c
}

// Equal reports whether two states bind exactly the same roots and slots
// with the same sorts.
func (st *State) Equal(other *State) bool {
	if len(st.Roots) != len(other.Roots) || len(st.Slots) != len(other.Slots) {
		return false
	}
	for k, v := range st.Roots {
		if ov, ok := other.Roots[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range st.Slots {
		if ov, ok := other.Slots[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// String renders the state as ({roots} • {slots}).
func (st *State) String() string {
	var roots, slots []string
	for k, v := range st.Roots {
		roots = append(roots, fmt.Sprintf("%s:%s", k, v))
	}
	for k, v := range st.Slots {
		slots = append(slots, fmt.Sprintf("%s:%s", k, v))
	}
	sort.Strings(roots)
	sort.Strings(slots)
	return "({" + strings.Join(roots, ", ") + "} • {" + strings.Join(slots, ", ") + "})"
}

// TypeError reports why an edit script is ill-typed: the offending edit,
// its index in the script (-1 for single-edit checks), and the violated
// side condition.
type TypeError struct {
	Index int
	Edit  Edit
	Msg   string
}

func (e *TypeError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("truechange: ill-typed edit %s: %s", e.Edit, e.Msg)
	}
	return fmt.Sprintf("truechange: ill-typed edit #%d %s: %s", e.Index, e.Edit, e.Msg)
}

func typeErr(e Edit, format string, args ...any) error {
	return &TypeError{Index: -1, Edit: e, Msg: fmt.Sprintf(format, args...)}
}

// CheckEdit type-checks a single edit against the schema, transforming the
// state in place (Σ ⊢ e : (R • S) ▷ (R′ • S′)). On error the state is left
// unchanged.
func CheckEdit(sch *sig.Schema, e Edit, st *State) error {
	switch ed := e.(type) {
	case Detach:
		return checkDetach(sch, ed, st)
	case Attach:
		return checkAttach(sch, ed, st)
	case Load:
		return checkLoad(sch, ed, st)
	case Unload:
		return checkUnload(sch, ed, st)
	case Update:
		return checkUpdate(sch, ed, st)
	default:
		return typeErr(e, "unknown edit kind %T", e)
	}
}

// checkDetach implements T-Detach: node must not already be a root, the
// parent slot must not already be empty, and both tags must be declared.
func checkDetach(sch *sig.Schema, e Detach, st *State) error {
	if _, isRoot := st.Roots[e.Node.URI]; isRoot {
		return typeErr(e, "node %s is already an unattached root", e.Node)
	}
	slot := Slot{URI: e.Parent.URI, Link: e.Link}
	if _, empty := st.Slots[slot]; empty {
		return typeErr(e, "slot %s is already empty", slot)
	}
	nodeSig := sch.Lookup(e.Node.Tag)
	if nodeSig == nil {
		return typeErr(e, "undeclared tag %s", e.Node.Tag)
	}
	parSig := sch.Lookup(e.Parent.Tag)
	if parSig == nil {
		return typeErr(e, "undeclared parent tag %s", e.Parent.Tag)
	}
	ki := parSig.KidIndex(e.Link)
	if ki < 0 {
		return typeErr(e, "tag %s has no kid link %q", e.Parent.Tag, e.Link)
	}
	st.Roots[e.Node.URI] = nodeSig.Result
	st.Slots[slot] = parSig.Kids[ki].Sort
	return nil
}

// checkAttach implements T-Attach: node must be an unattached root, the
// parent slot must be empty, and the root's sort must be a subsort of the
// slot's sort. Both resources are consumed.
func checkAttach(sch *sig.Schema, e Attach, st *State) error {
	rootSort, isRoot := st.Roots[e.Node.URI]
	if !isRoot {
		return typeErr(e, "node %s is not an unattached root", e.Node)
	}
	slot := Slot{URI: e.Parent.URI, Link: e.Link}
	slotSort, empty := st.Slots[slot]
	if !empty {
		return typeErr(e, "slot %s is not empty", slot)
	}
	if !sch.IsSubsort(rootSort, slotSort) {
		return typeErr(e, "root sort %s is not a subsort of slot sort %s", rootSort, slotSort)
	}
	delete(st.Roots, e.Node.URI)
	delete(st.Slots, slot)
	return nil
}

// checkArgsAgainstSig verifies that the kid and literal arguments of a Load
// or Unload mention exactly the links of the tag's signature and that
// literal values conform to their base types.
func checkArgsAgainstSig(e Edit, g *sig.Sig, kids []KidArg, lits []LitArg) (map[sig.Link]uri.URI, error) {
	if len(kids) != len(g.Kids) {
		return nil, typeErr(e, "tag %s expects %d kids, got %d", g.Tag, len(g.Kids), len(kids))
	}
	if len(lits) != len(g.Lits) {
		return nil, typeErr(e, "tag %s expects %d literals, got %d", g.Tag, len(g.Lits), len(lits))
	}
	kidByLink := make(map[sig.Link]uri.URI, len(kids))
	for _, k := range kids {
		if _, dup := kidByLink[k.Link]; dup {
			return nil, typeErr(e, "kid link %q mentioned twice", k.Link)
		}
		kidByLink[k.Link] = k.URI
	}
	for _, spec := range g.Kids {
		if _, ok := kidByLink[spec.Link]; !ok {
			return nil, typeErr(e, "missing kid link %q of tag %s", spec.Link, g.Tag)
		}
	}
	litByLink := make(map[sig.Link]any, len(lits))
	for _, l := range lits {
		if _, dup := litByLink[l.Link]; dup {
			return nil, typeErr(e, "literal link %q mentioned twice", l.Link)
		}
		litByLink[l.Link] = l.Value
	}
	for _, spec := range g.Lits {
		v, ok := litByLink[spec.Link]
		if !ok {
			return nil, typeErr(e, "missing literal link %q of tag %s", spec.Link, g.Tag)
		}
		if !spec.Type.Admits(v) {
			return nil, typeErr(e, "literal %q: value %#v does not conform to %s", spec.Link, v, spec.Type)
		}
	}
	return kidByLink, nil
}

// checkLoad implements T-Load: the new node's kids must all be unattached
// roots with sorts that are subsorts of the signature's expectations; they
// are consumed and the new node becomes a root. The loaded URI must be
// fresh with respect to the current roots (full freshness is part of
// syntactic compliance, Definition 3.5, checked against a concrete tree).
func checkLoad(sch *sig.Schema, e Load, st *State) error {
	g := sch.Lookup(e.Node.Tag)
	if g == nil {
		return typeErr(e, "undeclared tag %s", e.Node.Tag)
	}
	if e.Node.Tag == sig.RootTag {
		return typeErr(e, "cannot load the pre-defined root tag")
	}
	if _, isRoot := st.Roots[e.Node.URI]; isRoot {
		return typeErr(e, "loaded URI %s is already a root", e.Node.URI)
	}
	kidByLink, err := checkArgsAgainstSig(e, g, e.Kids, e.Lits)
	if err != nil {
		return err
	}
	// Linearity: each kid must be a distinct unattached root. Validate all
	// before consuming any so the state stays untouched on error.
	seen := make(map[uri.URI]bool, len(e.Kids))
	for _, spec := range g.Kids {
		k := kidByLink[spec.Link]
		if seen[k] {
			return typeErr(e, "kid %s consumed twice", k)
		}
		seen[k] = true
		kSort, isRoot := st.Roots[k]
		if !isRoot {
			return typeErr(e, "kid %s is not an unattached root", k)
		}
		if !sch.IsSubsort(kSort, spec.Sort) {
			return typeErr(e, "kid %s: sort %s is not a subsort of %s", k, kSort, spec.Sort)
		}
	}
	for _, k := range e.Kids {
		delete(st.Roots, k.URI)
	}
	st.Roots[e.Node.URI] = g.Result
	return nil
}

// checkUnload implements T-Unload: the node must be an unattached root and
// its kids must not currently be roots; the node is consumed and its kids
// become roots with the sorts the signature assigns them.
func checkUnload(sch *sig.Schema, e Unload, st *State) error {
	g := sch.Lookup(e.Node.Tag)
	if g == nil {
		return typeErr(e, "undeclared tag %s", e.Node.Tag)
	}
	if _, isRoot := st.Roots[e.Node.URI]; !isRoot {
		return typeErr(e, "node %s is not an unattached root", e.Node)
	}
	kidByLink, err := checkArgsAgainstSig(e, g, e.Kids, e.Lits)
	if err != nil {
		return err
	}
	seen := make(map[uri.URI]bool, len(e.Kids))
	for _, k := range e.Kids {
		if seen[k.URI] {
			return typeErr(e, "kid %s released twice", k.URI)
		}
		seen[k.URI] = true
		if _, isRoot := st.Roots[k.URI]; isRoot {
			return typeErr(e, "kid %s is already an unattached root", k.URI)
		}
	}
	delete(st.Roots, e.Node.URI)
	for _, spec := range g.Kids {
		st.Roots[kidByLink[spec.Link]] = spec.Sort
	}
	return nil
}

// checkUpdate implements T-Update: the new literals must mention exactly
// the signature's literal links with conforming values. Roots and slots
// are unaffected.
func checkUpdate(sch *sig.Schema, e Update, st *State) error {
	g := sch.Lookup(e.Node.Tag)
	if g == nil {
		return typeErr(e, "undeclared tag %s", e.Node.Tag)
	}
	if len(e.New) != len(g.Lits) {
		return typeErr(e, "tag %s expects %d literals, got %d", e.Node.Tag, len(g.Lits), len(e.New))
	}
	byLink := make(map[sig.Link]any, len(e.New))
	for _, l := range e.New {
		if _, dup := byLink[l.Link]; dup {
			return typeErr(e, "literal link %q mentioned twice", l.Link)
		}
		byLink[l.Link] = l.Value
	}
	for _, spec := range g.Lits {
		v, ok := byLink[spec.Link]
		if !ok {
			return typeErr(e, "missing literal link %q of tag %s", spec.Link, e.Node.Tag)
		}
		if !spec.Type.Admits(v) {
			return typeErr(e, "literal %q: value %#v does not conform to %s", spec.Link, v, spec.Type)
		}
	}
	return nil
}

// Check type-checks a whole script, threading the state through every edit
// (T-EditScript-Nil / T-EditScript-Cons). On error the returned state
// reflects the edits checked so far and the error identifies the offending
// edit.
func Check(sch *sig.Schema, s *Script, st *State) error {
	for i, e := range s.Edits {
		if err := CheckEdit(sch, e, st); err != nil {
			var te *TypeError
			if t, ok := err.(*TypeError); ok {
				te = t
			} else {
				te = &TypeError{Edit: e, Msg: err.Error()}
			}
			te.Index = i
			return te
		}
	}
	return nil
}

// WellTyped implements Definition 3.1: the script must transform the state
// ((null : Root) • ε) into itself — no leaked roots, no leaked slots.
func WellTyped(sch *sig.Schema, s *Script) error {
	st := ClosedState()
	if err := Check(sch, s, st); err != nil {
		return fmt.Errorf("truechange: %w: %w", derrors.ErrIllTyped, err)
	}
	if !st.Equal(ClosedState()) {
		return fmt.Errorf("truechange: %w: script leaks resources: final state %s, want %s",
			derrors.ErrIllTyped, st, ClosedState())
	}
	return nil
}

// WellTypedInit implements Definition 3.2: an initializing script starts
// from the empty tree, whose root slot is still empty, and must fill it.
func WellTypedInit(sch *sig.Schema, s *Script) error {
	st := InitState()
	if err := Check(sch, s, st); err != nil {
		return fmt.Errorf("truechange: %w: %w", derrors.ErrIllTyped, err)
	}
	if !st.Equal(ClosedState()) {
		return fmt.Errorf("truechange: %w: initializing script leaks resources: final state %s, want %s",
			derrors.ErrIllTyped, st, ClosedState())
	}
	return nil
}
