package truechange

import (
	"fmt"
	"strings"
)

// Stats is a per-kind breakdown of an edit script, used by tooling to
// summarize what a patch does.
type Stats struct {
	Detaches int
	Attaches int
	Loads    int
	Unloads  int
	Updates  int
	// Moves counts detached subtrees that are reused rather than deleted:
	// either reattached directly (a detach/attach pair) or consumed as the
	// child of a freshly loaded node. Both express subtree movement.
	Moves int
	// Compound is the paper's conciseness metric (Script.EditCount).
	Compound int
}

// ComputeStats analyzes the script.
func ComputeStats(s *Script) Stats {
	st := Stats{Compound: s.EditCount()}
	detached := make(map[string]bool)
	for _, e := range s.Edits {
		switch ed := e.(type) {
		case Detach:
			st.Detaches++
			detached[ed.Node.URI.String()] = true
		case Attach:
			st.Attaches++
			if detached[ed.Node.URI.String()] {
				st.Moves++
			}
		case Load:
			st.Loads++
			for _, k := range ed.Kids {
				if detached[k.URI.String()] {
					st.Moves++
					delete(detached, k.URI.String())
				}
			}
		case Unload:
			st.Unloads++
			delete(detached, ed.Node.URI.String())
			// Children released by the unload become movable roots too.
			for _, k := range ed.Kids {
				detached[k.URI.String()] = true
			}
		case Update:
			st.Updates++
		}
	}
	return st
}

// String renders the breakdown on one line.
func (st Stats) String() string {
	parts := []string{}
	add := func(n int, name string) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, name))
		}
	}
	add(st.Moves, "moves")
	add(st.Updates, "updates")
	add(st.Loads, "loads")
	add(st.Unloads, "unloads")
	add(st.Detaches, "detaches")
	add(st.Attaches, "attaches")
	if len(parts) == 0 {
		return "empty script"
	}
	return strings.Join(parts, ", ") + fmt.Sprintf(" (%d compound edits)", st.Compound)
}
