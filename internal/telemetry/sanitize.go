package telemetry

import (
	"fmt"
	"strings"
)

// MaxLabelLen caps the byte length of a sanitized pair label. 128 bytes
// is generous for a corpus path yet small enough that a hostile client
// cannot bloat Prometheus exposition, JSONL traces, or span attributes.
const MaxLabelLen = 128

// SanitizeLabel bounds and neutralizes a caller-supplied pair label
// before it reaches an observability surface (metric label values, the
// JSONL trace sink, flight-recorder pages, log lines). Control
// characters are escaped Go-style (`\n`, `\r`, `\t`, `\xNN`) so a label
// cannot split an exposition or JSONL line or smuggle terminal escapes,
// and the result is capped at MaxLabelLen bytes with a trailing ellipsis
// marking truncation. Clean short labels — the overwhelmingly common
// case — are returned unchanged without allocating.
func SanitizeLabel(s string) string {
	if clean := len(s) <= MaxLabelLen; clean {
		for i := 0; i < len(s); i++ {
			if s[i] < 0x20 || s[i] == 0x7f {
				clean = false
				break
			}
		}
		if clean {
			return s
		}
	}
	var b strings.Builder
	b.Grow(MaxLabelLen + len("…"))
	n := 0
	for _, r := range s {
		var frag string
		switch {
		case r == '\n':
			frag = `\n`
		case r == '\r':
			frag = `\r`
		case r == '\t':
			frag = `\t`
		case r < 0x20 || r == 0x7f:
			frag = fmt.Sprintf(`\x%02x`, r)
		default:
			frag = string(r)
		}
		if n+len(frag) > MaxLabelLen {
			b.WriteString("…")
			break
		}
		b.WriteString(frag)
		n += len(frag)
	}
	return b.String()
}
