package telemetry

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the text exposition format exactly:
// HELP/TYPE emitted once per metric name (including histogram families
// sharing a name across label sets), cumulative le buckets, +Inf, _sum,
// and _count.
func TestWritePrometheusGolden(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 3, 900} {
		h.Record(v)
	}
	metrics := []Metric{
		{Name: "structdiff_diffs_total", Help: "Completed diffs.", Kind: KindCounter, Value: 42},
		{Name: "structdiff_store_entries", Help: "Interned trees.", Kind: KindGauge, Value: 7},
		{
			Name: "structdiff_phase_duration_seconds", Help: "Per-phase wall time.",
			Kind:   KindHistogram,
			Labels: []Label{{Key: "phase", Value: "emit"}},
			Hist:   h.Snapshot(),
		},
		{
			Name: "structdiff_phase_duration_seconds", Help: "Per-phase wall time.",
			Kind:   KindHistogram,
			Labels: []Label{{Key: "phase", Value: "select"}},
		},
	}

	var b strings.Builder
	if err := WritePrometheus(&b, metrics); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP structdiff_diffs_total Completed diffs.
# TYPE structdiff_diffs_total counter
structdiff_diffs_total 42
# HELP structdiff_store_entries Interned trees.
# TYPE structdiff_store_entries gauge
structdiff_store_entries 7
# HELP structdiff_phase_duration_seconds Per-phase wall time.
# TYPE structdiff_phase_duration_seconds histogram
structdiff_phase_duration_seconds_bucket{phase="emit",le="0"} 1
structdiff_phase_duration_seconds_bucket{phase="emit",le="1"} 2
structdiff_phase_duration_seconds_bucket{phase="emit",le="3"} 3
structdiff_phase_duration_seconds_bucket{phase="emit",le="7"} 3
structdiff_phase_duration_seconds_bucket{phase="emit",le="15"} 3
structdiff_phase_duration_seconds_bucket{phase="emit",le="31"} 3
structdiff_phase_duration_seconds_bucket{phase="emit",le="63"} 3
structdiff_phase_duration_seconds_bucket{phase="emit",le="127"} 3
structdiff_phase_duration_seconds_bucket{phase="emit",le="255"} 3
structdiff_phase_duration_seconds_bucket{phase="emit",le="511"} 3
structdiff_phase_duration_seconds_bucket{phase="emit",le="1023"} 4
structdiff_phase_duration_seconds_bucket{phase="emit",le="+Inf"} 4
structdiff_phase_duration_seconds_sum{phase="emit"} 904
structdiff_phase_duration_seconds_count{phase="emit"} 4
structdiff_phase_duration_seconds_bucket{phase="select",le="+Inf"} 0
structdiff_phase_duration_seconds_sum{phase="select"} 0
structdiff_phase_duration_seconds_count{phase="select"} 0
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusScale verifies Scale converts nanosecond observations
// into seconds on the way out (bucket bounds and the sum).
func TestWritePrometheusScale(t *testing.T) {
	var h Histogram
	h.Record(1500000000) // 1.5s in nanoseconds, bucket 31
	var b strings.Builder
	err := WritePrometheus(&b, []Metric{{
		Name: "d_seconds", Kind: KindHistogram, Hist: h.Snapshot(), Scale: 1e-9,
	}})
	if err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, `d_seconds_bucket{le="2.147483647"} 1`) {
		t.Errorf("missing scaled bucket bound:\n%s", out)
	}
	if !strings.Contains(out, "d_seconds_sum 1.5\n") {
		t.Errorf("missing scaled sum:\n%s", out)
	}
	if !strings.Contains(out, "d_seconds_count 1\n") {
		t.Errorf("missing count:\n%s", out)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	var b strings.Builder
	err := WritePrometheus(&b, []Metric{{
		Name: "m", Help: "line1\nline2 with \\ backslash", Kind: KindCounter,
		Labels: []Label{{Key: "pair", Value: `a"b\c` + "\n"}}, Value: 1,
	}})
	if err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP m line1\nline2 with \\ backslash`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `m{pair="a\"b\\c\n"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}
