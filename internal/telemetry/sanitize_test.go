package telemetry

import (
	"strings"
	"testing"
)

func TestSanitizeLabelCleanPassthrough(t *testing.T) {
	for _, s := range []string{"", "corpus/json/a.py", "pair #3 (v2→v3)", strings.Repeat("x", MaxLabelLen)} {
		if got := SanitizeLabel(s); got != s {
			t.Errorf("SanitizeLabel(%q) = %q, want unchanged", s, got)
		}
	}
}

func TestSanitizeLabelEscapesControls(t *testing.T) {
	cases := map[string]string{
		"a\nb":           `a\nb`,
		"a\r\nb":         `a\r\nb`,
		"tab\there":      `tab\there`,
		"esc\x1b[31mred": `esc\x1b[31mred`,
		"del\x7f":        `del\x7f`,
	}
	for in, want := range cases {
		if got := SanitizeLabel(in); got != want {
			t.Errorf("SanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSanitizeLabelCapsLength(t *testing.T) {
	long := strings.Repeat("y", 4096)
	got := SanitizeLabel(long)
	if !strings.HasSuffix(got, "…") {
		t.Fatalf("truncated label lacks ellipsis: %q", got)
	}
	if n := len(got) - len("…"); n > MaxLabelLen {
		t.Fatalf("sanitized label is %d bytes (cap %d)", n, MaxLabelLen)
	}
	// Multibyte runes are never split at the cap boundary.
	wide := strings.Repeat("é", 4096)
	if got := SanitizeLabel(wide); !strings.HasSuffix(got, "…") || strings.Contains(got, "�") {
		t.Fatalf("multibyte truncation corrupted label: %q", got)
	}
	// A hostile label that only becomes oversized after escaping is still
	// capped.
	bomb := strings.Repeat("\x01", 4096)
	got = SanitizeLabel(bomb)
	if len(got) > MaxLabelLen+len("…") {
		t.Fatalf("escaped label is %d bytes (cap %d)", len(got), MaxLabelLen)
	}
	if !strings.HasPrefix(got, `\x01\x01`) {
		t.Fatalf("escaped label = %q", got[:16])
	}
}
