package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Kind classifies a Metric for the Prometheus exposition.
type Kind uint8

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down (cache sizes).
	KindGauge
	// KindHistogram is a bucketed distribution (Hist holds the data).
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name/value pair attached to a Metric. Labels are kept as an
// ordered slice (not a map) so exposition output is deterministic.
type Label struct {
	Key, Value string
}

// Metric is one sample of the exposition: a counter or gauge Value, or a
// histogram snapshot. Metrics sharing a Name (e.g. a per-phase histogram
// family distinguished by labels) must be adjacent in a Gather result and
// agree on Kind and Help; the writer emits the HELP/TYPE header once per
// name.
type Metric struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label

	// Value carries counters and gauges.
	Value float64

	// Hist carries histograms. Scale multiplies observed values (bucket
	// bounds and the sum) on the way out — e.g. 1e-9 turns nanosecond
	// observations into the seconds Prometheus conventions expect. Zero
	// means 1.
	Hist  HistogramSnapshot
	Scale float64
}

// Gatherer is anything that can report its current metrics; the Engine
// implements it, and Handler serves any implementation.
type Gatherer interface {
	GatherMetrics() []Metric
}

// GathererFunc adapts a function to the Gatherer interface.
type GathererFunc func() []Metric

func (f GathererFunc) GatherMetrics() []Metric { return f() }

// WritePrometheus renders the metrics in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic for a given input.
func WritePrometheus(w io.Writer, metrics []Metric) error {
	var b strings.Builder
	prevName := ""
	for i := range metrics {
		m := &metrics[i]
		if m.Name != prevName {
			if m.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, escapeHelp(m.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, m.Kind)
			prevName = m.Name
		}
		switch m.Kind {
		case KindHistogram:
			writeHistogram(&b, m)
		default:
			b.WriteString(m.Name)
			writeLabels(&b, m.Labels, "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(m.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits the _bucket (cumulative, with le), _sum, and _count
// series of one histogram metric.
func writeHistogram(b *strings.Builder, m *Metric) {
	scale := m.Scale
	if scale == 0 {
		scale = 1
	}
	var cum uint64
	last := m.Hist.maxBucket()
	for i := 0; i <= last; i++ {
		cum += m.Hist.Buckets[i]
		le := formatFloat(float64(BucketUpper(i)) * scale)
		b.WriteString(m.Name)
		b.WriteString("_bucket")
		writeLabels(b, m.Labels, le)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(m.Name)
	b.WriteString("_bucket")
	writeLabels(b, m.Labels, "+Inf")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(m.Hist.Count, 10))
	b.WriteByte('\n')

	b.WriteString(m.Name)
	b.WriteString("_sum")
	writeLabels(b, m.Labels, "")
	b.WriteByte(' ')
	b.WriteString(formatFloat(float64(m.Hist.Sum) * scale))
	b.WriteByte('\n')

	b.WriteString(m.Name)
	b.WriteString("_count")
	writeLabels(b, m.Labels, "")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(m.Hist.Count, 10))
	b.WriteByte('\n')
}

// writeLabels renders {k="v",...}, appending an le label when non-empty.
func writeLabels(b *strings.Builder, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// The escaping rules of exposition format 0.0.4: HELP text escapes
// backslash and newline; label values additionally escape double quotes.
// Package-level replacers — building one per call showed up as allocation
// on the exposition path once diffserve began zipping every engine metric
// with a {lang=...} label.
var (
	helpReplacer  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelReplacer = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string { return helpReplacer.Replace(s) }

func escapeLabel(s string) string { return labelReplacer.Replace(s) }
