// Package telemetry is the observability layer of the diff stack: lock-free
// log-bucketed histograms, a Tracer interface carrying span events for the
// four truediff phases, a Prometheus/expvar/pprof HTTP exposition handler,
// and a JSONL trace sink for offline analysis.
//
// The package depends on the standard library only and is deliberately
// allocation-light on the hot path: recording a value into a Histogram is
// three atomic adds, and a nil Tracer costs a handful of monotonic clock
// reads per diff. Everything heavier (text exposition, JSON encoding,
// quantile estimation) happens on the reading side.
//
// The layering is strict: telemetry knows nothing about trees, schemas, or
// engines. internal/truediff reports phase durations through the Tracer and
// scratch-local PhaseTimes; internal/engine merges those into engine-level
// histograms and exposes everything through the Gatherer interface that
// Handler serves.
package telemetry

import "time"

// Phase identifies one of the four steps of the truediff algorithm
// (paper §4). Each diff passes through all four, in order.
type Phase uint8

const (
	// PhasePrepare is the per-diff preparation preceding the matching:
	// allocator derivation, schema validation, and scratch reset. (The
	// paper's step 1, digest preparation, happens at tree construction;
	// its residual per-diff cost is what this phase captures.)
	PhasePrepare Phase = iota
	// PhaseShares is step 2: the simultaneous traversal that builds the
	// subtree registry and assigns shares (find reuse candidates).
	PhaseShares
	// PhaseSelect is step 3: greedy highest-first candidate selection.
	PhaseSelect
	// PhaseEmit is step 4: edit emission and patched-tree construction.
	PhaseEmit

	// NumPhases is the number of phases; PhaseTimes is indexed by Phase.
	NumPhases = 4
)

// String returns the phase's short lowercase name, used as the `phase`
// label value in the Prometheus exposition and as JSONL field suffixes.
func (p Phase) String() string {
	switch p {
	case PhasePrepare:
		return "prepare"
	case PhaseShares:
		return "shares"
	case PhaseSelect:
		return "select"
	case PhaseEmit:
		return "emit"
	}
	return "unknown"
}

// PhaseTimes holds one diff's per-phase durations, indexed by Phase.
type PhaseTimes [NumPhases]time.Duration

// Total sums the four phase durations. It is at most the diff's wall time
// (the difference is instrumentation and call overhead).
func (t PhaseTimes) Total() time.Duration {
	var sum time.Duration
	for _, d := range t {
		sum += d
	}
	return sum
}

// Tracer receives span events for every diff. For each diff the sequence
// is: BeginDiff, then Phase exactly once per phase in Phase order, then
// EndDiff. A diff that fails validation emits no events at all.
//
// Implementations must be cheap: the differ calls them synchronously on
// the hot path. When one Tracer observes diffs from several goroutines
// (the engine with Workers > 1) it must also be concurrency-safe, and
// events of different diffs interleave; per-diff ordering still holds
// within each goroutine.
type Tracer interface {
	// BeginDiff opens a diff span; the arguments are the input tree sizes.
	BeginDiff(sourceNodes, targetNodes int)
	// Phase reports one completed phase and its duration.
	Phase(p Phase, d time.Duration)
	// EndDiff closes the span with the script's compound edit count and
	// the diff's total wall time.
	EndDiff(edits int, wall time.Duration)
}

// TracerFuncs adapts up to three functions into a Tracer; nil fields are
// skipped. The zero value is a valid no-op Tracer.
type TracerFuncs struct {
	OnBegin func(sourceNodes, targetNodes int)
	OnPhase func(p Phase, d time.Duration)
	OnEnd   func(edits int, wall time.Duration)
}

func (t TracerFuncs) BeginDiff(sourceNodes, targetNodes int) {
	if t.OnBegin != nil {
		t.OnBegin(sourceNodes, targetNodes)
	}
}

func (t TracerFuncs) Phase(p Phase, d time.Duration) {
	if t.OnPhase != nil {
		t.OnPhase(p, d)
	}
}

func (t TracerFuncs) EndDiff(edits int, wall time.Duration) {
	if t.OnEnd != nil {
		t.OnEnd(edits, wall)
	}
}
