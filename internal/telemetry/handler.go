package telemetry

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler returns the exposition endpoint for a Gatherer:
//
//	/metrics        Prometheus text format (version 0.0.4)
//	/debug/vars     expvar JSON (the process-global expvar map)
//	/debug/pprof/   net/http/pprof profiles (heap, cpu, goroutine, trace)
//
// Mount it on its own listener (the -metrics-addr flag of cmd/evaluate and
// cmd/truediff) or under a route of an existing server. The handler holds
// no state of its own; every request gathers fresh values.
func Handler(g Gatherer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if g != nil {
			_ = WritePrometheus(w, g.GatherMetrics())
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("structdiff telemetry\n\n/metrics\n/debug/vars\n/debug/pprof/\n"))
	})
	return mux
}

// PublishExpvar registers the gatherer's counter and gauge values under
// name in the process-global expvar map (served at /debug/vars), so expvar
// consumers see the same numbers as /metrics. Histograms are summarized to
// count/mean/p50/p99. Publishing the same name twice is a no-op (expvar
// panics on duplicates; this keeps the call idempotent for tests and
// repeated setups).
func PublishExpvar(name string, g Gatherer) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		out := make(map[string]any)
		for _, m := range g.GatherMetrics() {
			key := m.Name
			for _, l := range m.Labels {
				key += "." + l.Value
			}
			switch m.Kind {
			case KindHistogram:
				scale := m.Scale
				if scale == 0 {
					scale = 1
				}
				out[key] = map[string]any{
					"count": m.Hist.Count,
					"mean":  m.Hist.Mean() * scale,
					"p50":   float64(m.Hist.Quantile(0.5)) * scale,
					"p99":   float64(m.Hist.Quantile(0.99)) * scale,
				}
			default:
				out[key] = m.Value
			}
		}
		return out
	}))
}
