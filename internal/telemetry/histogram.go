package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the number of buckets of a Histogram: bucket 0 holds the
// value 0 and bucket i (1 ≤ i ≤ 64) holds values v with 2^(i-1) ≤ v < 2^i,
// i.e. values whose binary representation is i bits long.
const NumBuckets = 65

// Histogram is a lock-free histogram of non-negative int64 values with
// logarithmic (power-of-two) buckets. Record is three atomic adds and is
// safe for any number of concurrent writers; Snapshot reads the counters
// without stopping writers, so a snapshot taken mid-flight is internally
// consistent only per counter — which is all that exposition needs.
//
// The log-bucket resolution (one bucket per binary order of magnitude,
// ≤ 100% relative error) matches what latency, edit-count, and tree-size
// distributions are consumed for: percentile estimates and shape, not
// exact values. The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// bucketIndex returns the bucket v falls into; negative values clamp to
// bucket 0.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpper returns the largest value bucket i admits (inclusive).
// For the last bucket it returns math.MaxInt64.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Record adds one observation. Negative values count as 0.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(v))
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Reset zeroes every counter. It may run concurrently with Record — the
// stores and adds are all atomic, so there is no data race — but a Record
// racing the reset can be partially kept (counted in one counter, zeroed
// in another). The SLO slot rotation that needs Reset tolerates that
// boundary noise; callers needing exact counts must serialize externally.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Merge adds o's counters into s (bucket-wise), for combining per-slot
// snapshots into one windowed distribution.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Snapshot captures the histogram's current counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram's counters.
// Buckets[i] counts observations that fell into bucket i (see NumBuckets
// for the bucket layout); the counts are per-bucket, not cumulative.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
}

// Mean returns the arithmetic mean of the observations, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the upper bound of the
// bucket containing it, 0 when empty. The estimate overshoots by at most
// one binary order of magnitude.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// maxBucket returns the index of the highest non-empty bucket, -1 when
// empty. Exposition emits buckets 0..maxBucket plus +Inf.
func (s HistogramSnapshot) maxBucket() int {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return i
		}
	}
	return -1
}
