package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for SLO window tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func TestSLODefaults(t *testing.T) {
	cfg := SLOConfig{}.withDefaults()
	if cfg.Window != time.Hour || cfg.ShortWindow != 5*time.Minute {
		t.Errorf("window defaults = %v/%v, want 1h/5m", cfg.Window, cfg.ShortWindow)
	}
	if cfg.Slots != 60 || cfg.LatencyObjective != 250*time.Millisecond {
		t.Errorf("slots/objective = %d/%v", cfg.Slots, cfg.LatencyObjective)
	}
	if cfg.AvailabilityTarget != 0.999 || cfg.LatencyTarget != 0.95 {
		t.Errorf("targets = %v/%v", cfg.AvailabilityTarget, cfg.LatencyTarget)
	}
}

func TestSLONilSafety(t *testing.T) {
	var s *SLO
	s.Observe(time.Millisecond, true) // must not panic
	snap := s.Snapshot()
	if snap.Requests != 0 {
		t.Errorf("nil SLO snapshot has %d requests", snap.Requests)
	}
}

func TestSLOIdleIsHealthy(t *testing.T) {
	s := NewSLO(SLOConfig{})
	snap := s.Snapshot()
	if snap.Availability != 1 || snap.LatencyAttainment != 1 {
		t.Errorf("idle SLO: avail %v, attainment %v, want 1/1", snap.Availability, snap.LatencyAttainment)
	}
	if snap.BurnShort != 0 || snap.BurnLong != 0 {
		t.Errorf("idle SLO burns budget: %v/%v", snap.BurnShort, snap.BurnLong)
	}
}

func TestSLOCountsAndBurn(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(SLOConfig{
		Window:             time.Hour,
		LatencyObjective:   100 * time.Millisecond,
		AvailabilityTarget: 0.99, // budget 1%
		Now:                clk.now,
	})
	// 90 fast successes, 5 slow successes, 5 errors.
	for i := 0; i < 90; i++ {
		s.Observe(10*time.Millisecond, true)
	}
	for i := 0; i < 5; i++ {
		s.Observe(500*time.Millisecond, true)
	}
	for i := 0; i < 5; i++ {
		s.Observe(50*time.Millisecond, false)
	}
	snap := s.Snapshot()
	if snap.Requests != 100 || snap.Errors != 5 || snap.LatencyOK != 90 {
		t.Fatalf("req/err/latOK = %d/%d/%d, want 100/5/90", snap.Requests, snap.Errors, snap.LatencyOK)
	}
	if math.Abs(snap.Availability-0.95) > 1e-9 {
		t.Errorf("availability = %v, want 0.95", snap.Availability)
	}
	// 90 of 95 successes met the objective.
	if math.Abs(snap.LatencyAttainment-90.0/95.0) > 1e-9 {
		t.Errorf("attainment = %v, want %v", snap.LatencyAttainment, 90.0/95.0)
	}
	// Error ratio 5% against a 1% budget: burning 5x, on both windows
	// (all traffic landed in the newest slot).
	if math.Abs(snap.BurnLong-5) > 1e-9 || math.Abs(snap.BurnShort-5) > 1e-9 {
		t.Errorf("burn = %v/%v, want 5/5", snap.BurnShort, snap.BurnLong)
	}
	// Ranks 96..100 are the 500ms observations, so p99 lands in their
	// bucket while p95 stays in the 50ms error bucket.
	if snap.P99 < 500*time.Millisecond {
		t.Errorf("p99 = %v, want >= 500ms (top 5%% of observations were 500ms)", snap.P99)
	}
	if snap.P95 < 50*time.Millisecond || snap.P95 >= 500*time.Millisecond {
		t.Errorf("p95 = %v, want in [50ms, 500ms)", snap.P95)
	}
}

func TestSLOShortWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(SLOConfig{
		Window:             time.Hour, // 1m slots, 5m short window
		AvailabilityTarget: 0.99,
		Now:                clk.now,
	})
	// Errors land now; after 10 minutes they are outside the short window
	// but still inside the long one.
	for i := 0; i < 10; i++ {
		s.Observe(time.Millisecond, false)
	}
	clk.advance(10 * time.Minute)
	for i := 0; i < 10; i++ {
		s.Observe(time.Millisecond, true)
	}
	snap := s.Snapshot()
	if snap.Requests != 20 || snap.Errors != 10 {
		t.Fatalf("req/err = %d/%d, want 20/10", snap.Requests, snap.Errors)
	}
	if snap.BurnShort != 0 {
		t.Errorf("short burn = %v, want 0 (errors are 10m old)", snap.BurnShort)
	}
	if snap.BurnLong <= 0 {
		t.Errorf("long burn = %v, want > 0", snap.BurnLong)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(SLOConfig{Window: time.Hour, Now: clk.now})
	for i := 0; i < 50; i++ {
		s.Observe(time.Millisecond, false)
	}
	clk.advance(2 * time.Hour)
	snap := s.Snapshot()
	if snap.Requests != 0 {
		t.Fatalf("after window expiry: %d requests retained", snap.Requests)
	}
	if snap.Availability != 1 {
		t.Errorf("expired window availability = %v, want 1", snap.Availability)
	}

	// Slots recycle on the next write landing on them.
	s.Observe(time.Millisecond, true)
	snap = s.Snapshot()
	if snap.Requests != 1 || snap.Errors != 0 {
		t.Errorf("after recycle: req/err = %d/%d, want 1/0", snap.Requests, snap.Errors)
	}
}

func TestSLOSnapshotStringGolden(t *testing.T) {
	snap := SLOSnapshot{
		Window:             time.Hour,
		ShortWindow:        5 * time.Minute,
		LatencyObjective:   250 * time.Millisecond,
		AvailabilityTarget: 0.999,
		LatencyTarget:      0.95,
		Requests:           120,
		Errors:             1,
		Availability:       1 - 1.0/120,
		LatencyAttainment:  0.95,
		BurnShort:          8.33,
		BurnLong:           8.33,
		P95:                33 * time.Millisecond,
	}
	want := "slo[1h0m0s]: 120 req, avail 99.17% (target 99.90%, burn 8.3x/8.3x), 95.00% <= 250ms (target 95.00%), p95 33ms"
	if got := snap.String(); got != want {
		t.Errorf("String():\n got %q\nwant %q", got, want)
	}
}

func TestSLOMetrics(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(SLOConfig{Now: clk.now})
	s.Observe(10*time.Millisecond, true)
	s.Observe(time.Second, false)
	ms := SLOMetrics("structdiff_slo_", s.Snapshot())
	if len(ms) != 11 {
		t.Fatalf("SLOMetrics emitted %d metrics, want 11", len(ms))
	}
	byName := map[string]Metric{}
	for _, m := range ms {
		if !strings.HasPrefix(m.Name, "structdiff_slo_") {
			t.Errorf("metric %q missing prefix", m.Name)
		}
		if m.Kind != KindGauge {
			t.Errorf("metric %q kind = %v, want gauge", m.Name, m.Kind)
		}
		byName[m.Name] = m
	}
	if v := byName["structdiff_slo_window_requests"].Value; v != 2 {
		t.Errorf("window_requests = %v, want 2", v)
	}
	if v := byName["structdiff_slo_window_errors"].Value; v != 1 {
		t.Errorf("window_errors = %v, want 1", v)
	}
	if v := byName["structdiff_slo_availability_ratio"].Value; v != 0.5 {
		t.Errorf("availability_ratio = %v, want 0.5", v)
	}
	if v := byName["structdiff_slo_window_seconds"].Value; v != 3600 {
		t.Errorf("window_seconds = %v, want 3600", v)
	}
}
