package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func testGatherer() Gatherer {
	return GathererFunc(func() []Metric {
		var h Histogram
		h.Record(2)
		return []Metric{
			{Name: "x_total", Help: "X.", Kind: KindCounter, Value: 3},
			{Name: "x_seconds", Kind: KindHistogram, Hist: h.Snapshot(), Scale: 1e-9},
		}
	})
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(testGatherer()))
	defer srv.Close()

	code, ctype, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	if want := "text/plain; version=0.0.4; charset=utf-8"; ctype != want {
		t.Errorf("/metrics content-type = %q, want %q", ctype, want)
	}
	if !strings.Contains(body, "x_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, `x_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("/metrics missing histogram:\n%s", body)
	}

	code, _, body = get(t, srv, "/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars status = %d", code)
	}
	if !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("/debug/vars is not JSON:\n%.100s", body)
	}

	code, _, _ = get(t, srv, "/debug/pprof/")
	if code != 200 {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}

	code, _, body = get(t, srv, "/")
	if code != 200 {
		t.Fatalf("/ status = %d", code)
	}
	if !strings.Contains(body, "/metrics") {
		t.Errorf("index does not link /metrics:\n%s", body)
	}
}
