package telemetry

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// readBuildInfo is swapped by tests to exercise the no-build-info path;
// production code always reads the real embedded info.
var readBuildInfo = debug.ReadBuildInfo

var buildInfoOnce = sync.OnceValue(computeBuildInfo)

func computeBuildInfo() Metric {
	m := Metric{
		Name:  "structdiff_build_info",
		Help:  "Build metadata of the running binary; the value is constant 1.",
		Kind:  KindGauge,
		Value: 1,
	}
	version, revision, modified := "unknown", "unknown", ""
	if bi, ok := readBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
	}
	m.Labels = []Label{
		{Key: "version", Value: version},
		{Key: "go_version", Value: runtime.Version()},
		{Key: "vcs_revision", Value: revision},
	}
	if modified != "" {
		m.Labels = append(m.Labels, Label{Key: "vcs_modified", Value: modified})
	}
	return m
}

// BuildInfoMetric returns the structdiff_build_info gauge: a constant-1
// sample whose labels carry the binary's module version, Go toolchain
// version, and VCS revision (from runtime/debug.ReadBuildInfo). The labels
// are computed once per process; fields the build did not stamp (e.g. a
// plain `go test` binary with no VCS info) degrade to "unknown" rather
// than disappearing, so dashboards can join on the label set
// unconditionally.
func BuildInfoMetric() Metric {
	return buildInfoOnce()
}
