package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(TraceRecord{}) // must not panic
	snap := f.Snapshot()
	if snap.Total != 0 || len(snap.Recent) != 0 || len(snap.Slowest) != 0 {
		t.Errorf("nil recorder snapshot = %+v", snap)
	}
}

func TestFlightRecorderRingAndSlowest(t *testing.T) {
	f := NewFlightRecorder(4, 2)
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	// 6 records into a 4-slot ring; walls 10,20,30,40,50,25.
	for i, wall := range []int64{10, 20, 30, 40, 50, 25} {
		f.RecordAt(at.Add(time.Duration(i)*time.Second), TraceRecord{
			Pair:   string(rune('a' + i)),
			WallNS: wall,
		})
	}
	snap := f.Snapshot()
	if snap.Total != 6 {
		t.Errorf("total = %d, want 6", snap.Total)
	}
	// Ring keeps the last 4, newest first: f(25), e(50), d(40), c(30).
	wantRecent := []string{"f", "e", "d", "c"}
	if len(snap.Recent) != len(wantRecent) {
		t.Fatalf("recent has %d entries, want %d", len(snap.Recent), len(wantRecent))
	}
	for i, w := range wantRecent {
		if snap.Recent[i].Pair != w {
			t.Errorf("recent[%d] = %q, want %q", i, snap.Recent[i].Pair, w)
		}
	}
	// Slowest-2, slowest first: e(50), d(40).
	if len(snap.Slowest) != 2 || snap.Slowest[0].Pair != "e" || snap.Slowest[1].Pair != "d" {
		t.Errorf("slowest = %+v, want e then d", snap.Slowest)
	}
	// Even though a/b scrolled out of the ring the earlier slow records
	// were retained while they were slowest.
	if snap.Slowest[0].WallNS != 50 {
		t.Errorf("slowest wall = %d, want 50", snap.Slowest[0].WallNS)
	}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	f := NewFlightRecorder(8, 4)
	f.Record(TraceRecord{Pair: "only", WallNS: 7})
	snap := f.Snapshot()
	if len(snap.Recent) != 1 || snap.Recent[0].Pair != "only" {
		t.Fatalf("recent = %+v", snap.Recent)
	}
	if len(snap.Slowest) != 1 {
		t.Fatalf("slowest = %+v", snap.Slowest)
	}
}

func TestFlightHandlerJSON(t *testing.T) {
	f := NewFlightRecorder(4, 2)
	f.Record(TraceRecord{Pair: "p.py", WallNS: int64(3 * time.Millisecond), Edits: 2, TraceID: "deadbeef"})
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/diffz", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap FlightSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("response is not valid JSON: %v\n%s", err, rr.Body.String())
	}
	if snap.Total != 1 || len(snap.Recent) != 1 || snap.Recent[0].Pair != "p.py" {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Recent[0].TraceID != "deadbeef" {
		t.Errorf("trace id lost: %+v", snap.Recent[0])
	}
}

func TestFlightHandlerHTML(t *testing.T) {
	f := NewFlightRecorder(4, 2)
	f.Record(TraceRecord{Pair: "<script>alert(1)</script>", WallNS: 10})

	// ?format=html forces HTML.
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/diffz?format=html", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rr.Body.String()
	if strings.Contains(body, "<script>alert") {
		t.Error("pair label not HTML-escaped")
	}
	if !strings.Contains(body, "flight recorder") {
		t.Error("HTML body missing title")
	}

	// Browser Accept header also selects HTML…
	rr = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/debug/diffz", nil)
	req.Header.Set("Accept", "text/html,application/xhtml+xml")
	f.Handler().ServeHTTP(rr, req)
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Accept: text/html got Content-Type %q", ct)
	}

	// …unless ?format=json overrides it.
	rr = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/debug/diffz?format=json", nil)
	req.Header.Set("Accept", "text/html")
	f.Handler().ServeHTTP(rr, req)
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("?format=json got Content-Type %q", ct)
	}
}
