package telemetry

import (
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
)

func labelValue(m Metric, key string) (string, bool) {
	for _, l := range m.Labels {
		if l.Key == key {
			return l.Value, true
		}
	}
	return "", false
}

func TestComputeBuildInfoWithVCS(t *testing.T) {
	orig := readBuildInfo
	defer func() { readBuildInfo = orig }()
	readBuildInfo = func() (*debug.BuildInfo, bool) {
		return &debug.BuildInfo{
			Main: debug.Module{Version: "v1.2.3"},
			Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "abcdef123456"},
				{Key: "vcs.modified", Value: "true"},
			},
		}, true
	}

	m := computeBuildInfo()
	if m.Name != "structdiff_build_info" || m.Kind != KindGauge || m.Value != 1 {
		t.Fatalf("metric = %+v, want constant-1 gauge structdiff_build_info", m)
	}
	for key, want := range map[string]string{
		"version":      "v1.2.3",
		"go_version":   runtime.Version(),
		"vcs_revision": "abcdef123456",
		"vcs_modified": "true",
	} {
		if got, ok := labelValue(m, key); !ok || got != want {
			t.Errorf("label %s = %q (ok=%v), want %q", key, got, ok, want)
		}
	}
}

func TestComputeBuildInfoDegradesToUnknown(t *testing.T) {
	orig := readBuildInfo
	defer func() { readBuildInfo = orig }()
	readBuildInfo = func() (*debug.BuildInfo, bool) { return nil, false }

	m := computeBuildInfo()
	for _, key := range []string{"version", "vcs_revision"} {
		if got, ok := labelValue(m, key); !ok || got != "unknown" {
			t.Errorf("label %s = %q (ok=%v), want \"unknown\"", key, got, ok)
		}
	}
	if _, ok := labelValue(m, "vcs_modified"); ok {
		t.Error("vcs_modified present without build info")
	}
	if got, _ := labelValue(m, "go_version"); !strings.HasPrefix(got, "go") {
		t.Errorf("go_version = %q", got)
	}
}

func TestBuildInfoMetricIsCached(t *testing.T) {
	a := BuildInfoMetric()
	b := BuildInfoMetric()
	if a.Name != b.Name || len(a.Labels) != len(b.Labels) {
		t.Errorf("BuildInfoMetric not stable: %+v vs %+v", a, b)
	}
}
