package telemetry

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FlightEntry is one retained diff record with its completion timestamp.
type FlightEntry struct {
	At time.Time `json:"at"`
	TraceRecord
}

// FlightRecorder retains a bounded in-memory view of recent diff activity
// for live inspection (the /debug/diffz endpoint of diffserve): a ring
// buffer of the last N completed diff records plus a slowest-K retention
// set, so a spike that scrolled out of the ring is still visible. Record
// is a short mutex section with no allocation beyond the retained copy;
// it is safe for concurrent use from engine workers. A nil recorder
// ignores Record, so wiring one in is unconditional.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []FlightEntry
	next  int
	count int
	total uint64
	slow  []FlightEntry // sorted by WallNS descending, len ≤ cap
}

// NewFlightRecorder returns a recorder keeping the last `recent` records
// and the `slowest` slowest-ever records. Non-positive sizes select the
// defaults (128 recent, 16 slowest).
func NewFlightRecorder(recent, slowest int) *FlightRecorder {
	if recent <= 0 {
		recent = 128
	}
	if slowest <= 0 {
		slowest = 16
	}
	return &FlightRecorder{
		ring: make([]FlightEntry, recent),
		slow: make([]FlightEntry, 0, slowest),
	}
}

// Record retains one completed diff record, stamped now.
func (f *FlightRecorder) Record(rec TraceRecord) {
	f.RecordAt(time.Now(), rec)
}

// RecordAt is Record with an explicit timestamp.
func (f *FlightRecorder) RecordAt(at time.Time, rec TraceRecord) {
	if f == nil {
		return
	}
	e := FlightEntry{At: at, TraceRecord: rec}
	f.mu.Lock()
	f.total++
	f.ring[f.next] = e
	f.next = (f.next + 1) % len(f.ring)
	if f.count < len(f.ring) {
		f.count++
	}
	// Insertion sort into the slowest-K set: K is small (default 16), so
	// a linear scan beats anything cleverer.
	if len(f.slow) < cap(f.slow) || e.WallNS > f.slow[len(f.slow)-1].WallNS {
		i := len(f.slow)
		if i < cap(f.slow) {
			f.slow = f.slow[:i+1]
		} else {
			i--
		}
		for i > 0 && f.slow[i-1].WallNS < e.WallNS {
			f.slow[i] = f.slow[i-1]
			i--
		}
		f.slow[i] = e
	}
	f.mu.Unlock()
}

// FlightSnapshot is a point-in-time copy of the recorder's retained state.
type FlightSnapshot struct {
	// Total counts every record ever seen (retained or not).
	Total uint64 `json:"total"`
	// Recent holds the ring's records, newest first.
	Recent []FlightEntry `json:"recent"`
	// Slowest holds the slowest-K records, slowest first.
	Slowest []FlightEntry `json:"slowest"`
}

// Snapshot copies the retained records. Nil-safe (zero snapshot).
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	if f == nil {
		return FlightSnapshot{Recent: []FlightEntry{}, Slowest: []FlightEntry{}}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := FlightSnapshot{
		Total:   f.total,
		Recent:  make([]FlightEntry, 0, f.count),
		Slowest: make([]FlightEntry, len(f.slow)),
	}
	for i := 1; i <= f.count; i++ {
		s.Recent = append(s.Recent, f.ring[(f.next-i+len(f.ring))%len(f.ring)])
	}
	copy(s.Slowest, f.slow)
	return s
}

// Handler serves the recorder's snapshot: JSON by default (curl-able and
// machine-checkable), HTML when the request asks for it with ?format=html
// or an Accept header preferring text/html (a browser). ?format=json
// forces JSON regardless of Accept.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := f.Snapshot()
		format := r.URL.Query().Get("format")
		wantHTML := format == "html" ||
			(format == "" && strings.Contains(r.Header.Get("Accept"), "text/html"))
		if !wantHTML {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(s)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeFlightHTML(w, s)
	})
}

func writeFlightHTML(w http.ResponseWriter, s FlightSnapshot) {
	fmt.Fprintf(w, `<!DOCTYPE html><html><head><title>diffz</title><style>
body{font-family:monospace;margin:1.5em}table{border-collapse:collapse}
td,th{border:1px solid #ccc;padding:2px 8px;text-align:right}
th{background:#eee}td.l,th.l{text-align:left}h2{margin-top:1.5em}
</style></head><body><h1>flight recorder</h1><p>%d diffs recorded in total</p>`, s.Total)
	section := func(title string, entries []FlightEntry) {
		fmt.Fprintf(w, "<h2>%s (%d)</h2><table><tr>"+
			"<th class=l>at</th><th class=l>trace</th><th class=l>pair</th>"+
			"<th>nodes</th><th>edits</th><th>wall</th><th>prep</th><th>shares</th><th>select</th><th>emit</th>"+
			"<th>reuse</th><th>edits/node</th>"+
			"<th class=l>flags</th></tr>", html.EscapeString(title), len(entries))
		for _, e := range entries {
			var flags []string
			if e.Identical {
				flags = append(flags, "identical")
			}
			if e.Fallback {
				flags = append(flags, "fallback")
			}
			if e.Baselined {
				flags = append(flags, fmt.Sprintf("gap %+.1f%%", 100*e.OptimalityGap))
			}
			if e.Err != "" {
				flags = append(flags, "err: "+e.Err)
			}
			fmt.Fprintf(w, "<tr><td class=l>%s</td><td class=l>%s</td><td class=l>%s</td>"+
				"<td>%d+%d</td><td>%d</td><td>%v</td><td>%v</td><td>%v</td><td>%v</td><td>%v</td>"+
				"<td>%.0f%%</td><td>%.2f</td><td class=l>%s</td></tr>",
				html.EscapeString(e.At.Format(time.RFC3339Nano)),
				html.EscapeString(e.TraceID),
				html.EscapeString(e.Pair),
				e.SourceNodes, e.TargetNodes, e.Edits,
				time.Duration(e.WallNS).Round(time.Microsecond),
				time.Duration(e.PrepareNS).Round(time.Microsecond),
				time.Duration(e.SharesNS).Round(time.Microsecond),
				time.Duration(e.SelectNS).Round(time.Microsecond),
				time.Duration(e.EmitNS).Round(time.Microsecond),
				100*e.ReuseRatio, e.EditsPerNode,
				html.EscapeString(strings.Join(flags, ", ")))
		}
		fmt.Fprint(w, "</table>")
	}
	section("recent (newest first)", s.Recent)
	section("slowest", s.Slowest)
	fmt.Fprint(w, "</body></html>")
}
