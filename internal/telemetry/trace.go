package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// TraceRecord is one line of a JSONL diff trace: everything needed to
// reconstruct a per-diff latency and phase breakdown offline (the
// phase-resolved analog of the paper's §6 per-file measurements). Schema
// documented in docs/OBSERVABILITY.md.
type TraceRecord struct {
	// Pair identifies the diffed pair (e.g. the corpus file path); empty
	// when the caller assigned no label.
	Pair string `json:"pair,omitempty"`
	// TraceID and SpanID correlate the record with the distributed trace
	// the diff ran under (hex, W3C sizes); empty when the pair carried no
	// trace context.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
	// SourceNodes and TargetNodes are the input tree sizes.
	SourceNodes int `json:"source_nodes"`
	TargetNodes int `json:"target_nodes"`
	// Per-phase durations in nanoseconds (the four truediff steps). All
	// zero for diffs that short-circuited (Identical) or failed.
	PrepareNS int64 `json:"prepare_ns"`
	SharesNS  int64 `json:"shares_ns"`
	SelectNS  int64 `json:"select_ns"`
	EmitNS    int64 `json:"emit_ns"`
	// WallNS is the diff's total wall time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Edits is the script's compound edit count.
	Edits int `json:"edits"`
	// SourceInterned and TargetInterned report whether the input tree is
	// the canonical copy of the engine's whole-tree intern store (i.e. was
	// or could have been served by a store hit). Identical marks pairs
	// whose endpoints interned to the same tree: the diff short-circuited
	// to an empty script without running the algorithm.
	SourceInterned bool `json:"source_interned,omitempty"`
	TargetInterned bool `json:"target_interned,omitempty"`
	Identical      bool `json:"identical,omitempty"`
	// Fallback marks pairs served by graceful degradation: the script is a
	// synthesized root replacement, not the algorithm's output.
	Fallback bool `json:"fallback,omitempty"`
	// Script-quality metrics (internal/quality). ReuseRatio is the
	// fraction of target nodes produced by reusing source subtrees;
	// ChangedNodes the script-touched node count; EditsPerNode the
	// compound-edits-per-changed-node conciseness ratio; ScriptRatio the
	// script size relative to the target tree.
	ReuseRatio   float64 `json:"reuse_ratio,omitempty"`
	ChangedNodes int     `json:"changed_nodes,omitempty"`
	EditsPerNode float64 `json:"edits_per_changed,omitempty"`
	ScriptRatio  float64 `json:"script_tree_ratio,omitempty"`
	// Baselined marks diffs that ran the exact minimal-script baseline;
	// MinimalEdits and OptimalityGap are only meaningful when it is set
	// (the gap can be negative: moves beat the classical edit distance).
	Baselined     bool    `json:"baselined,omitempty"`
	MinimalEdits  int     `json:"minimal_edits,omitempty"`
	OptimalityGap float64 `json:"optimality_gap,omitempty"`
	// Err carries the error message of a failed diff.
	Err string `json:"err,omitempty"`
}

// SetPhases fills the per-phase nanosecond fields from t.
func (r *TraceRecord) SetPhases(t PhaseTimes) {
	r.PrepareNS = t[PhasePrepare].Nanoseconds()
	r.SharesNS = t[PhaseShares].Nanoseconds()
	r.SelectNS = t[PhaseSelect].Nanoseconds()
	r.EmitNS = t[PhaseEmit].Nanoseconds()
}

// TraceWriter writes TraceRecords as JSON Lines, one record per line.
// Write is concurrency-safe (engine workers emit from many goroutines);
// the first encoding or I/O error sticks and is returned by every later
// Write and by Err.
type TraceWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int64
	err error
}

// NewTraceWriter returns a TraceWriter emitting to w. The caller retains
// ownership of w (close files yourself after the last Write).
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{enc: json.NewEncoder(w)}
}

// Write appends one record.
func (t *TraceWriter) Write(rec TraceRecord) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if err := t.enc.Encode(rec); err != nil {
		t.err = err
		return err
	}
	t.n++
	return nil
}

// Count returns the number of records written so far.
func (t *TraceWriter) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Err returns the sticky error, if any.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
