package telemetry

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRotatingFileNoLimit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	rf, err := OpenRotatingFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := rf.Write([]byte("0123456789\n")); err != nil {
			t.Fatal(err)
		}
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatalf("rotation happened with maxBytes=0: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 1100 {
		t.Fatalf("size = %d, want 1100", st.Size())
	}
}

func TestRotatingFileRollover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	rf, err := OpenRotatingFile(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	rec := []byte("0123456789012345678901234\n") // 26 bytes
	for i := 0; i < 5; i++ {                     // 130 bytes total
		if _, err := rf.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	// Two 26-byte records fit under 64; the next write rotates. Verify
	// invariants rather than rotation choreography: only whole records on
	// disk, the current file under the limit, and at least the last
	// limit's worth of records surviving across current+rotated.
	checkWholeRecords := func(p string) int {
		t.Helper()
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(b)%26 != 0 {
			t.Fatalf("%s holds a partial record: %d bytes", p, len(b))
		}
		return len(b) / 26
	}
	n := checkWholeRecords(path) + checkWholeRecords(path+".1")
	// The oldest rotation may have been replaced; at least the last 64
	// bytes' worth must survive, and nothing may be partial.
	if n < 3 || n > 5 {
		t.Fatalf("found %d whole records across current+rotated, want 3..5", n)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 64 {
		t.Fatalf("current file %d bytes exceeds limit 64", st.Size())
	}
}

func TestRotatingFileReopenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	rf, err := OpenRotatingFile(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rf.Write([]byte("first\n"))
	rf.Close()
	rf, err = OpenRotatingFile(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rf.Write([]byte("second\n"))
	rf.Close()
	b, _ := os.ReadFile(path)
	if string(b) != "first\nsecond\n" {
		t.Fatalf("reopen did not append: %q", b)
	}
}

func TestRotatingFileClosedWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	rf, err := OpenRotatingFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	rf.Close()
	if _, err := rf.Write([]byte("x")); err == nil {
		t.Fatal("write after Close succeeded")
	}
	if err := rf.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

// TestRotatingTraceWriterConcurrent drives a TraceWriter over a small
// RotatingFile from many goroutines (run under -race) and checks that
// every line in every file parses as one complete JSON record — rotation
// must never split a record.
func TestRotatingTraceWriterConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	rf, err := OpenRotatingFile(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tw := NewTraceWriter(rf)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tw.Write(TraceRecord{
					Pair:        "w.py",
					TraceID:     "0123456789abcdef0123456789abcdef",
					SourceNodes: w,
					TargetNodes: i,
					WallNS:      int64(i),
				})
			}
		}(w)
	}
	wg.Wait()
	if err := tw.Err(); err != nil {
		t.Fatalf("trace writer error: %v", err)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, p := range []string{path, path + ".1"} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatalf("open %s: %v", p, err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var rec TraceRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("%s: corrupt line %q: %v", p, sc.Text(), err)
			}
			lines++
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if lines == 0 {
		t.Fatal("no records survived")
	}
	if tw.Count() != workers*per {
		t.Fatalf("writer count = %d, want %d", tw.Count(), workers*per)
	}
}
