package telemetry

import (
	"context"
	"encoding/hex"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"sync"
	"time"
)

// This file is the distributed-tracing layer: a lightweight, stdlib-only
// span model with W3C traceparent propagation. One trace follows a diff
// request across processes — structdiff.ServiceClient injects the header,
// diffserve extracts and continues the trace, and spans nest through the
// coalescing batcher, the engine worker, and the four truediff phases (the
// phase spans are synthesized from the existing Tracer contract, see
// PhaseSpans) — so client-observed latency decomposes into queue wait,
// batch window, worker execution, and phase times.
//
// The design is allocation-light and off-by-default: StartSpan with a nil
// sink returns a nil *Span, every Span method is nil-safe, and the only
// hot-path cost with tracing disabled is a pointer comparison (plus one
// context value lookup per diff inside the differ).

// TraceID identifies one distributed trace: 16 bytes, rendered as 32 hex
// digits (the W3C trace-id field).
type TraceID [16]byte

// SpanID identifies one span within a trace: 8 bytes, 16 hex digits (the
// W3C parent-id field).
type SpanID [8]byte

// IsZero reports whether the ID is all zeroes (invalid per W3C).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is all zeroes (invalid per W3C).
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 32-digit lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the 16-digit lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MarshalText renders the ID as lowercase hex (JSON encodes IDs as strings).
func (t TraceID) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText parses the 32-digit hex form.
func (t *TraceID) UnmarshalText(b []byte) error {
	if len(b) != 32 {
		return fmt.Errorf("telemetry: trace id must be 32 hex digits, got %q", b)
	}
	_, err := hex.Decode(t[:], b)
	return err
}

// MarshalText renders the ID as lowercase hex (JSON encodes IDs as strings).
func (s SpanID) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the 16-digit hex form.
func (s *SpanID) UnmarshalText(b []byte) error {
	if len(b) != 16 {
		return fmt.Errorf("telemetry: span id must be 16 hex digits, got %q", b)
	}
	_, err := hex.Decode(s[:], b)
	return err
}

// SpanContext is the propagated part of a span: which trace it belongs to
// and which span is the parent of whatever continues the trace. The zero
// value is invalid (no trace).
type SpanContext struct {
	Trace TraceID `json:"trace_id"`
	Span  SpanID  `json:"span_id"`
}

// Valid reports whether the context names a trace and a span (both
// non-zero, per W3C).
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set): "00-<trace-id>-<parent-id>-01".
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.Trace.String() + "-" + sc.Span.String() + "-01"
}

// SlogAttrs returns trace_id/span_id attributes for log correlation, nil
// for an invalid context — append them to any slog record that belongs to
// the trace.
func (sc SpanContext) SlogAttrs() []slog.Attr {
	if !sc.Valid() {
		return nil
	}
	return []slog.Attr{
		slog.String("trace_id", sc.Trace.String()),
		slog.String("span_id", sc.Span.String()),
	}
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// version except the invalid "ff" and ignores the trace flags, per the
// spec's forward-compatibility rules; all-zero trace or parent IDs are
// rejected. The error is nil only for a Valid context, so
// `sc, _ := ParseTraceparent(h)` followed by sc.Valid() is a safe idiom
// for optional headers.
func ParseTraceparent(h string) (SpanContext, error) {
	var sc SpanContext
	// version(2) '-' trace(32) '-' parent(16) '-' flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return sc, fmt.Errorf("telemetry: malformed traceparent %q", h)
	}
	if h[:2] == "ff" {
		return sc, fmt.Errorf("telemetry: invalid traceparent version %q", h[:2])
	}
	if len(h) > 55 && h[:2] == "00" {
		return sc, fmt.Errorf("telemetry: traceparent version 00 must be exactly 55 chars, got %d", len(h))
	}
	if _, err := hex.Decode(sc.Trace[:], []byte(h[3:35])); err != nil {
		return SpanContext{}, fmt.Errorf("telemetry: traceparent trace-id: %w", err)
	}
	if _, err := hex.Decode(sc.Span[:], []byte(h[36:52])); err != nil {
		return SpanContext{}, fmt.Errorf("telemetry: traceparent parent-id: %w", err)
	}
	if _, err := hex.DecodeString(h[53:55]); err != nil {
		return SpanContext{}, fmt.Errorf("telemetry: traceparent flags: %w", err)
	}
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("telemetry: traceparent carries an all-zero id: %q", h)
	}
	return sc, nil
}

// randomIDs draws a fresh (trace, span) ID pair. math/rand/v2's global
// source is goroutine-sharded and seeded from OS entropy; trace IDs need
// uniqueness, not cryptographic strength.
func randomIDs() (TraceID, SpanID) {
	var t TraceID
	var s SpanID
	for i := 0; i < 16; i += 8 {
		v := rand.Uint64()
		for j := 0; j < 8; j++ {
			t[i+j] = byte(v >> (8 * j))
		}
	}
	v := rand.Uint64() | 1 // never all-zero
	for j := 0; j < 8; j++ {
		s[j] = byte(v >> (8 * j))
	}
	return t, s
}

// NewSpanContext mints a fresh root context: a new trace ID and span ID.
// Use it to correlate logs and responses for a request that carries no
// incoming traceparent, even when no spans are being recorded.
func NewSpanContext() SpanContext {
	t, s := randomIDs()
	if t.IsZero() {
		t[0] = 1
	}
	return SpanContext{Trace: t, Span: s}
}

// Attr is one span attribute. Values are kept as-is until export.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is one timed operation of a trace. Spans are created with StartSpan
// (nil when tracing is off — every method is nil-safe), annotated with
// SetAttr, and delivered to their sink exactly once by End. A Span is
// owned by one goroutine; sinks that retain spans past SpanEnd must copy.
type Span struct {
	Name   string    `json:"name"`
	Trace  TraceID   `json:"trace_id"`
	ID     SpanID    `json:"span_id"`
	Parent SpanID    `json:"parent_id,omitempty"`
	Start  time.Time `json:"start"`
	Stop   time.Time `json:"stop"`
	Attrs  []Attr    `json:"attrs,omitempty"`

	sink  SpanSink
	ended bool
}

// SpanSink receives completed spans. Implementations must be
// concurrency-safe (engine workers end spans from many goroutines) and
// must copy the span if they retain it past the call.
type SpanSink interface {
	SpanEnd(s *Span)
}

// StartSpan opens a span under parent (a fresh root trace when parent is
// invalid), starting now. A nil sink returns a nil span: the whole span
// API degrades to no-ops, which is the off-by-default fast path.
func StartSpan(sink SpanSink, parent SpanContext, name string) *Span {
	return StartSpanAt(sink, parent, name, time.Now())
}

// StartSpanAt is StartSpan with an explicit start time, for spans
// reconstructed after the fact (queue-wait spans, phase spans derived from
// measured durations).
func StartSpanAt(sink SpanSink, parent SpanContext, name string, start time.Time) *Span {
	if sink == nil {
		return nil
	}
	s := &Span{Name: name, Start: start, sink: sink}
	t, id := randomIDs()
	s.ID = id
	if parent.Valid() {
		s.Trace = parent.Trace
		s.Parent = parent.Span
	} else {
		s.Trace = t
		if s.Trace.IsZero() {
			s.Trace[0] = 1
		}
	}
	return s
}

// Context returns the span's propagation context (its own ID as the
// parent for children). The zero context is returned for a nil span, so
// children started under it open fresh traces only if they have a sink.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.Trace, Span: s.ID}
}

// SetAttr appends one attribute. No-op on a nil or ended span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil || s.ended {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// End stamps the span's stop time and delivers it to the sink. Only the
// first End delivers; later calls (and calls on a nil span) are no-ops.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt is End with an explicit stop time.
func (s *Span) EndAt(t time.Time) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Stop = t
	s.sink.SpanEnd(s)
}

// Duration returns Stop − Start, 0 for a nil or unfinished span.
func (s *Span) Duration() time.Duration {
	if s == nil || s.Stop.IsZero() {
		return 0
	}
	return s.Stop.Sub(s.Start)
}

// SpanRecorder is a SpanSink that collects copies of every completed span,
// for tests and in-process trace inspection (cmd/bench -load-trace).
type SpanRecorder struct {
	mu    sync.Mutex
	spans []Span
}

// NewSpanRecorder returns an empty recorder.
func NewSpanRecorder() *SpanRecorder { return &SpanRecorder{} }

// SpanEnd implements SpanSink.
func (r *SpanRecorder) SpanEnd(s *Span) {
	r.mu.Lock()
	r.spans = append(r.spans, *s)
	r.mu.Unlock()
}

// Spans returns a copy of the spans recorded so far, in completion order.
func (r *SpanRecorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Reset discards every recorded span.
func (r *SpanRecorder) Reset() {
	r.mu.Lock()
	r.spans = nil
	r.mu.Unlock()
}

// PhaseSpans adapts the Tracer contract into phase spans: every Phase
// event becomes one completed span named "truediff.<phase>" under parent,
// back-dated by the reported duration so consecutive phases tile the
// parent span. BeginDiff and EndDiff are ignored (the engine's own
// "engine.diff" span already brackets the diff). The returned Tracer is
// concurrency-safe if the sink is.
func PhaseSpans(sink SpanSink, parent SpanContext) Tracer {
	return phaseSpanTracer{sink: sink, parent: parent}
}

type phaseSpanTracer struct {
	sink   SpanSink
	parent SpanContext
}

func (t phaseSpanTracer) BeginDiff(sourceNodes, targetNodes int) {}

func (t phaseSpanTracer) Phase(p Phase, d time.Duration) {
	now := time.Now()
	s := StartSpanAt(t.sink, t.parent, "truediff."+p.String(), now.Add(-d))
	s.EndAt(now)
}

func (t phaseSpanTracer) EndDiff(edits int, wall time.Duration) {}

// MultiTracer fans every event out to each tracer, in order. Nil tracers
// are skipped; with fewer than two non-nil tracers the survivor (or nil)
// is returned unwrapped.
func MultiTracer(tracers ...Tracer) Tracer {
	kept := tracers[:0:0]
	for _, tr := range tracers {
		if tr != nil {
			kept = append(kept, tr)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multiTracer(kept)
}

type multiTracer []Tracer

func (m multiTracer) BeginDiff(sourceNodes, targetNodes int) {
	for _, tr := range m {
		tr.BeginDiff(sourceNodes, targetNodes)
	}
}

func (m multiTracer) Phase(p Phase, d time.Duration) {
	for _, tr := range m {
		tr.Phase(p, d)
	}
}

func (m multiTracer) EndDiff(edits int, wall time.Duration) {
	for _, tr := range m {
		tr.EndDiff(edits, wall)
	}
}

// --- context propagation ---

type ctxKey int

const (
	tracerCtxKey ctxKey = iota
	spanCtxKey
)

// ContextWithTracer attaches a per-diff Tracer to ctx. The differ merges
// it with its configured Options.Tracer, which is how request-scoped phase
// spans reach a differ shared by every request (the engine attaches a
// PhaseSpans tracer per pair).
func ContextWithTracer(ctx context.Context, tr Tracer) context.Context {
	return context.WithValue(ctx, tracerCtxKey, tr)
}

// TracerFromContext returns the Tracer attached by ContextWithTracer, nil
// when absent (including a nil ctx).
func TracerFromContext(ctx context.Context) Tracer {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(tracerCtxKey).(Tracer)
	return tr
}

// ContextWithSpanContext attaches a trace context for downstream clients
// to continue (structdiff.ServiceClient injects it as the outgoing
// traceparent header and parents its client span under it).
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey, sc)
}

// SpanContextFromContext returns the trace context attached by
// ContextWithSpanContext; the zero (invalid) context when absent.
func SpanContextFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(spanCtxKey).(SpanContext)
	return sc
}
