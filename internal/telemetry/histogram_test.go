package telemetry

import (
	"math"
	"sync"
	"testing"
)

// TestBucketBoundaries pins the bucket layout down exactly: bucket 0 holds
// the value 0, and bucket i (i ≥ 1) holds values whose binary representation
// is i bits long, i.e. 2^(i-1) ≤ v < 2^i.
func TestBucketBoundaries(t *testing.T) {
	if got := bucketIndex(0); got != 0 {
		t.Errorf("bucketIndex(0) = %d, want 0", got)
	}
	if got := bucketIndex(-17); got != 0 {
		t.Errorf("bucketIndex(-17) = %d, want 0 (negatives clamp)", got)
	}
	for i := 1; i <= 62; i++ {
		lo := int64(1) << uint(i-1) // smallest value of bucket i
		hi := int64(1)<<uint(i) - 1 // largest value of bucket i
		if got := bucketIndex(lo); got != i {
			t.Errorf("bucketIndex(%d) = %d, want %d", lo, got, i)
		}
		if got := bucketIndex(hi); got != i {
			t.Errorf("bucketIndex(%d) = %d, want %d", hi, got, i)
		}
	}
	if got := bucketIndex(math.MaxInt64); got != 63 {
		t.Errorf("bucketIndex(MaxInt64) = %d, want 63", got)
	}
}

func TestBucketUpper(t *testing.T) {
	cases := []struct {
		i    int
		want int64
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 3}, {3, 7}, {10, 1023},
		{63, 1<<63 - 1}, {64, math.MaxInt64}, {99, math.MaxInt64},
	}
	for _, c := range cases {
		if got := BucketUpper(c.i); got != c.want {
			t.Errorf("BucketUpper(%d) = %d, want %d", c.i, got, c.want)
		}
	}
	// Consistency: every value lands in a bucket whose upper bound admits
	// it and whose predecessor's does not.
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 100, 1023, 1024, math.MaxInt64} {
		i := bucketIndex(v)
		if v > BucketUpper(i) {
			t.Errorf("value %d exceeds its bucket %d upper bound %d", v, i, BucketUpper(i))
		}
		if i > 0 && v <= BucketUpper(i-1) {
			t.Errorf("value %d also fits bucket %d (upper %d)", v, i-1, BucketUpper(i-1))
		}
	}
}

func TestHistogramRecordAndSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 900, -5} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if s.Sum != 906 { // negative observation counted as 0
		t.Fatalf("Sum = %d, want 906", s.Sum)
	}
	wantBuckets := map[int]uint64{0: 2, 1: 1, 2: 2, 10: 1}
	for i, c := range s.Buckets {
		if c != wantBuckets[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, wantBuckets[i])
		}
	}
	if got, want := s.Mean(), 906.0/6; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("Count() = %d, want 6", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %d, want 0", got)
	}
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}

	var h Histogram
	// 90 fast observations (bucket 4: 8..15) and 10 slow (bucket 10).
	for i := 0; i < 90; i++ {
		h.Record(12)
	}
	for i := 0; i < 10; i++ {
		h.Record(1000)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 15 {
		t.Errorf("Quantile(0.5) = %d, want 15 (upper bound of bucket 4)", got)
	}
	if got := s.Quantile(0.9); got != 15 {
		t.Errorf("Quantile(0.9) = %d, want 15", got)
	}
	if got := s.Quantile(0.99); got != 1023 {
		t.Errorf("Quantile(0.99) = %d, want 1023 (upper bound of bucket 10)", got)
	}
	if got := s.Quantile(1); got != 1023 {
		t.Errorf("Quantile(1) = %d, want 1023", got)
	}
	// Out-of-range q clamps instead of panicking.
	if got := s.Quantile(-3); got != 15 {
		t.Errorf("Quantile(-3) = %d, want 15 (clamped to smallest rank)", got)
	}
	if got := s.Quantile(7); got != 1023 {
		t.Errorf("Quantile(7) = %d, want 1023 (clamped to 1)", got)
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many goroutines;
// under -race this verifies Record is genuinely lock-free-safe, and the
// final snapshot proves no observation was lost.
func TestHistogramConcurrentRecord(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
	)
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(int64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if want := uint64(goroutines * perG); s.Count != want {
		t.Fatalf("Count = %d, want %d", s.Count, want)
	}
	var inBuckets uint64
	for _, c := range s.Buckets {
		inBuckets += c
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket total %d != count %d", inBuckets, s.Count)
	}
	// Sum of 0..N-1 where N = goroutines*perG.
	n := uint64(goroutines * perG)
	if want := n * (n - 1) / 2; s.Sum != want {
		t.Fatalf("Sum = %d, want %d", s.Sum, want)
	}
}
