package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SLOConfig parameterizes rolling-window service-level-objective
// accounting. The zero value selects the defaults noted on each field.
type SLOConfig struct {
	// Window is the long (objective) window the availability and latency
	// attainment are computed over. Default 1h.
	Window time.Duration
	// ShortWindow is the fast burn-rate window (the classic multi-window
	// alert pairs a short and a long burn rate). Default Window/12, the
	// 5m/1h pairing at the default Window.
	ShortWindow time.Duration
	// Slots is how many ring slots the window is divided into; more slots
	// mean finer expiry granularity at slightly more Snapshot work.
	// Default 60 (1m slots at the default Window).
	Slots int
	// LatencyObjective is the per-request latency target: a successful
	// request at or under it counts toward latency attainment. Default
	// 250ms.
	LatencyObjective time.Duration
	// AvailabilityTarget is the availability objective in [0,1); the burn
	// rate divides the window's error ratio by the implied error budget
	// 1−target. Default 0.999.
	AvailabilityTarget float64
	// LatencyTarget is the attainment objective for LatencyObjective, in
	// [0,1]. Default 0.95.
	LatencyTarget float64
	// Now overrides the clock, for tests. Nil uses time.Now.
	Now func() time.Time
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = time.Hour
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = c.Window / 12
	}
	if c.ShortWindow > c.Window {
		c.ShortWindow = c.Window
	}
	if c.Slots <= 0 {
		c.Slots = 60
	}
	if c.LatencyObjective <= 0 {
		c.LatencyObjective = 250 * time.Millisecond
	}
	if c.AvailabilityTarget <= 0 || c.AvailabilityTarget >= 1 {
		c.AvailabilityTarget = 0.999
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget > 1 {
		c.LatencyTarget = 0.95
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// sloSlot is one time slice of the ring: lock-free counters plus a latency
// histogram, tagged with the epoch (slot-granularity timestamp) the data
// belongs to so stale slots are detected and recycled in place.
type sloSlot struct {
	epoch    atomic.Int64
	requests atomic.Uint64
	errors   atomic.Uint64
	latOK    atomic.Uint64
	latency  Histogram
}

// SLO computes rolling-window availability, latency-objective attainment,
// and multi-window burn rates from a stream of per-request observations.
//
// Implementation: a ring of time slots. Observe locates the current slot
// by epoch and updates atomics only — the mutex is taken solely when a
// slot is recycled for a new epoch (once per slot duration), so the hot
// path stays lock-free and allocation-free. Snapshot merges the live
// slots; slots older than the window are ignored (and recycled on the
// next write that lands on them).
type SLO struct {
	cfg     SLOConfig
	slotDur time.Duration
	slots   []sloSlot
	rotMu   sync.Mutex
}

// NewSLO returns an SLO with the given configuration (zero value: 1h
// window, 5m short window, 250ms latency objective, 99.9%/95% targets).
func NewSLO(cfg SLOConfig) *SLO {
	cfg = cfg.withDefaults()
	s := &SLO{
		cfg:     cfg,
		slotDur: cfg.Window / time.Duration(cfg.Slots),
		slots:   make([]sloSlot, cfg.Slots),
	}
	if s.slotDur <= 0 {
		s.slotDur = time.Nanosecond
	}
	return s
}

// epochOf maps a wall-clock instant to its slot epoch.
func (s *SLO) epochOf(t time.Time) int64 {
	return t.UnixNano() / int64(s.slotDur)
}

// slotFor returns the live slot for now, recycling it under the rotation
// mutex when its data belongs to an expired epoch. A fresh SLO's slots
// carry epoch 0, which can never be current (it would mean 1970), so they
// rotate on first touch.
func (s *SLO) slotFor(now time.Time) *sloSlot {
	epoch := s.epochOf(now)
	sl := &s.slots[int(uint64(epoch)%uint64(len(s.slots)))]
	if sl.epoch.Load() != epoch {
		s.rotMu.Lock()
		if sl.epoch.Load() != epoch {
			sl.requests.Store(0)
			sl.errors.Store(0)
			sl.latOK.Store(0)
			sl.latency.Reset()
			sl.epoch.Store(epoch)
		}
		s.rotMu.Unlock()
	}
	return sl
}

// Observe records one request: its latency and whether it succeeded.
// Failed requests count against availability; successful requests at or
// under the latency objective count toward attainment. All observations
// (including failures) enter the windowed latency distribution. Nil-safe
// and safe for any number of concurrent callers.
func (s *SLO) Observe(latency time.Duration, ok bool) {
	if s == nil {
		return
	}
	sl := s.slotFor(s.cfg.Now())
	sl.requests.Add(1)
	if !ok {
		sl.errors.Add(1)
	} else if latency <= s.cfg.LatencyObjective {
		sl.latOK.Add(1)
	}
	sl.latency.Record(latency.Nanoseconds())
}

// SLOSnapshot is a point-in-time evaluation of the objectives over the
// rolling window. All fields are plain values, so snapshots render
// deterministically (String is golden-testable).
type SLOSnapshot struct {
	// Window and ShortWindow echo the configuration.
	Window      time.Duration
	ShortWindow time.Duration
	// LatencyObjective, AvailabilityTarget, LatencyTarget echo the
	// configured objectives.
	LatencyObjective   time.Duration
	AvailabilityTarget float64
	LatencyTarget      float64

	// Requests and Errors count the window's observations; LatencyOK
	// counts successful requests at or under the latency objective.
	Requests  uint64
	Errors    uint64
	LatencyOK uint64

	// Availability is 1 − Errors/Requests (1 with no traffic — an idle
	// service is meeting its objective). LatencyAttainment is
	// LatencyOK / (Requests − Errors), again 1 with no successes.
	Availability      float64
	LatencyAttainment float64

	// BurnShort and BurnLong are the error-budget burn rates over the
	// short and long windows: error ratio ÷ (1 − AvailabilityTarget).
	// 1.0 burns the budget exactly at the objective rate; the classic
	// page threshold is both windows well above 1 (e.g. 14.4x over 5m
	// AND 1h for a 99.9% target).
	BurnShort float64
	BurnLong  float64

	// P50/P95/P99 are windowed request-latency quantiles (bucket upper
	// bounds, see Histogram).
	P50 time.Duration
	P95 time.Duration
	P99 time.Duration

	// Latency is the merged windowed latency distribution, for callers
	// that need more than the fixed quantiles.
	Latency HistogramSnapshot
}

// Snapshot evaluates the objectives now. Nil-safe: a nil SLO yields the
// zero snapshot.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	now := s.cfg.Now()
	cur := s.epochOf(now)
	oldest := cur - int64(len(s.slots)) + 1
	shortSlots := int64(s.cfg.ShortWindow / s.slotDur)
	if shortSlots <= 0 {
		shortSlots = 1
	}
	shortOldest := cur - shortSlots + 1

	snap := SLOSnapshot{
		Window:             s.cfg.Window,
		ShortWindow:        s.cfg.ShortWindow,
		LatencyObjective:   s.cfg.LatencyObjective,
		AvailabilityTarget: s.cfg.AvailabilityTarget,
		LatencyTarget:      s.cfg.LatencyTarget,
	}
	var shortReq, shortErr uint64
	for i := range s.slots {
		sl := &s.slots[i]
		epoch := sl.epoch.Load()
		if epoch < oldest || epoch > cur {
			continue // stale (not yet recycled) or empty slot
		}
		req, errs, lok := sl.requests.Load(), sl.errors.Load(), sl.latOK.Load()
		snap.Requests += req
		snap.Errors += errs
		snap.LatencyOK += lok
		snap.Latency.Merge(sl.latency.Snapshot())
		if epoch >= shortOldest {
			shortReq += req
			shortErr += errs
		}
	}

	snap.Availability = 1
	if snap.Requests > 0 {
		snap.Availability = 1 - float64(snap.Errors)/float64(snap.Requests)
	}
	snap.LatencyAttainment = 1
	if ok := snap.Requests - snap.Errors; ok > 0 {
		snap.LatencyAttainment = float64(snap.LatencyOK) / float64(ok)
	}
	budget := 1 - s.cfg.AvailabilityTarget
	if snap.Requests > 0 {
		snap.BurnLong = (float64(snap.Errors) / float64(snap.Requests)) / budget
	}
	if shortReq > 0 {
		snap.BurnShort = (float64(shortErr) / float64(shortReq)) / budget
	}
	snap.P50 = time.Duration(snap.Latency.Quantile(0.50))
	snap.P95 = time.Duration(snap.Latency.Quantile(0.95))
	snap.P99 = time.Duration(snap.Latency.Quantile(0.99))
	return snap
}

// String renders the snapshot on one line, a pure function of the fields:
//
//	slo[1h0m0s]: 120 req, avail 99.17% (target 99.90%, burn 8.3x/8.3x), 95.00% <= 250ms (target 95.00%), p95 33ms
func (s SLOSnapshot) String() string {
	return fmt.Sprintf(
		"slo[%v]: %d req, avail %.2f%% (target %.2f%%, burn %.1fx/%.1fx), %.2f%% <= %v (target %.2f%%), p95 %v",
		s.Window, s.Requests,
		100*s.Availability, 100*s.AvailabilityTarget, s.BurnShort, s.BurnLong,
		100*s.LatencyAttainment, s.LatencyObjective, 100*s.LatencyTarget,
		s.P95.Round(time.Millisecond),
	)
}

// SLOMetrics renders a snapshot as exposition gauges under the given name
// prefix (e.g. "structdiff_slo_"). Every call emits the same fixed
// sequence, which keeps multi-instance zipping (diffserve's per-lang
// labels) well-defined.
func SLOMetrics(prefix string, s SLOSnapshot) []Metric {
	gauge := func(name, help string, v float64) Metric {
		return Metric{Name: prefix + name, Help: help, Kind: KindGauge, Value: v}
	}
	return []Metric{
		gauge("window_seconds", "Rolling SLO window length.", s.Window.Seconds()),
		gauge("window_requests", "Requests observed in the rolling window.", float64(s.Requests)),
		gauge("window_errors", "Failed requests observed in the rolling window.", float64(s.Errors)),
		gauge("availability_ratio", "Windowed availability (1 - errors/requests; 1 when idle).", s.Availability),
		gauge("availability_target_ratio", "Configured availability objective.", s.AvailabilityTarget),
		gauge("latency_attainment_ratio", "Fraction of windowed successes at or under the latency objective.", s.LatencyAttainment),
		gauge("latency_target_ratio", "Configured latency-attainment objective.", s.LatencyTarget),
		gauge("latency_objective_seconds", "Configured per-request latency objective.", s.LatencyObjective.Seconds()),
		gauge("burn_rate_short", "Error-budget burn rate over the short window (1.0 = burning exactly the budget).", s.BurnShort),
		gauge("burn_rate_long", "Error-budget burn rate over the full window.", s.BurnLong),
		gauge("window_p95_seconds", "Windowed p95 request latency.", float64(s.P95)/float64(time.Second)),
	}
}
