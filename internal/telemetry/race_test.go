package telemetry

import (
	"io"
	"sync"
	"testing"
	"time"
)

// These tests exist to run under -race: they drive the lock-free paths
// (Histogram.Record, SLO.Observe) concurrently with the reading side
// (Snapshot, Merge, WritePrometheus) and assert only coarse invariants —
// the race detector does the real checking.

func TestHistogramConcurrentRecordSnapshotMerge(t *testing.T) {
	var h Histogram
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: snapshot and merge continuously while writers record.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var acc HistogramSnapshot
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				acc.Merge(s)
				if acc.Count < s.Count {
					t.Error("merged count went backwards")
					return
				}
				_ = s.Quantile(0.95)
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		writerWG.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writerWG.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(w*1000 + i))
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	final := h.Snapshot()
	if final.Count != writers*per {
		t.Fatalf("final count = %d, want %d", final.Count, writers*per)
	}
}

func TestSLOConcurrentObserveSnapshotGather(t *testing.T) {
	s := NewSLO(SLOConfig{Window: 100 * time.Millisecond, Slots: 4})
	const writers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Reading side: Snapshot + exposition via WritePrometheus, as a
	// scrape would do concurrently with traffic.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				if snap.Errors > snap.Requests {
					t.Error("more errors than requests in a snapshot")
					return
				}
				if err := WritePrometheus(io.Discard, SLOMetrics("x_", snap)); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				_ = snap.String()
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		writerWG.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writerWG.Done()
			for i := 0; i < per; i++ {
				// The tiny window forces constant slot recycling, hammering
				// the rotation path against concurrent snapshots.
				s.Observe(time.Duration(i)*time.Microsecond, i%10 != 0)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	// After the dust settles the newest slots still hold observations.
	if snap := s.Snapshot(); snap.Requests == 0 {
		t.Error("no requests visible after concurrent run")
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	rec := NewSpanRecorder()
	parent := NewSpanContext()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := StartSpan(rec, parent, "concurrent")
				sp.SetAttr("i", i)
				sp.End()
			}
		}()
	}
	wg.Wait()
	spans := rec.Spans()
	if len(spans) != workers*per {
		t.Fatalf("recorded %d spans, want %d", len(spans), workers*per)
	}
	for i := range spans {
		if spans[i].Trace != parent.Trace {
			t.Fatalf("span %d escaped the trace", i)
		}
	}
}
