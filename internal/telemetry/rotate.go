package telemetry

import (
	"fmt"
	"os"
	"sync"
)

// RotatingFile is an append-only file with size-based rotation, built for
// JSONL trace sinks on long-running daemons (cmd/diffd -trace with
// -trace-max-bytes): when an incoming write would push the current file
// past the limit, the file is renamed to <path>.1 (replacing any previous
// rotation) and a fresh <path> is opened. Writes are serialized by an
// internal mutex and records never split across files — each Write lands
// wholly in one file, which json.Encoder guarantees to pair with (one
// Write per record). At most max*2 bytes ever live on disk.
type RotatingFile struct {
	mu   sync.Mutex
	path string
	max  int64
	f    *os.File
	size int64
}

// OpenRotatingFile opens (creating or appending to) path with rotation at
// maxBytes. A non-positive maxBytes disables rotation: the file behaves
// like a plain O_APPEND open and only grows.
func OpenRotatingFile(path string, maxBytes int64) (*RotatingFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open rotating file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: stat rotating file: %w", err)
	}
	return &RotatingFile{path: path, max: maxBytes, f: f, size: st.Size()}, nil
}

// Write implements io.Writer. A write that would exceed the size limit
// rotates first, so files only exceed the limit when a single record is
// itself larger than it.
func (r *RotatingFile) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return 0, fmt.Errorf("telemetry: write to closed rotating file %s", r.path)
	}
	if r.max > 0 && r.size > 0 && r.size+int64(len(p)) > r.max {
		if err := r.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := r.f.Write(p)
	r.size += int64(n)
	return n, err
}

// rotateLocked closes the current file, moves it to <path>.1, and opens a
// fresh <path>. Called with the mutex held.
func (r *RotatingFile) rotateLocked() error {
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("telemetry: rotate %s: %w", r.path, err)
	}
	if err := os.Rename(r.path, r.path+".1"); err != nil {
		return fmt.Errorf("telemetry: rotate %s: %w", r.path, err)
	}
	f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("telemetry: rotate %s: %w", r.path, err)
	}
	r.f, r.size = f, 0
	return nil
}

// Close closes the underlying file. Later writes fail.
func (r *RotatingFile) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}
