package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	if !sc.Valid() {
		t.Fatalf("NewSpanContext returned invalid context %+v", sc)
	}
	h := sc.Traceparent()
	if len(h) != 55 {
		t.Fatalf("Traceparent() = %q, want 55 chars, got %d", h, len(h))
	}
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v, want %+v", got, sc)
	}
}

func TestNewSpanContextUnique(t *testing.T) {
	a, b := NewSpanContext(), NewSpanContext()
	if a.Trace == b.Trace {
		t.Fatalf("two fresh contexts share a trace ID %s", a.Trace)
	}
}

func TestParseTraceparentErrors(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	cases := []struct {
		name, h string
	}{
		{"empty", ""},
		{"short", "00-abc"},
		{"bad separators", "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01"},
		{"version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{"v00 with trailing data", valid + "-extra"},
		{"non-hex trace", "00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{"non-hex parent", "00-0af7651916cd43dd8448eb211c80319c-z7ad6b7169203331-01"},
		{"non-hex flags", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz"},
		{"zero trace", "00-00000000000000000000000000000000-b7ad6b7169203331-01"},
		{"zero parent", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01"},
	}
	for _, c := range cases {
		sc, err := ParseTraceparent(c.h)
		if err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted, got %+v", c.name, c.h, sc)
		}
		if sc.Valid() {
			t.Errorf("%s: error path returned a valid context", c.name)
		}
	}
	// A future version may carry extra data after the flags.
	future := "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-whatever"
	if _, err := ParseTraceparent(future); err != nil {
		t.Errorf("future-version header with suffix rejected: %v", err)
	}
}

func TestSpanNilSafety(t *testing.T) {
	s := StartSpan(nil, SpanContext{}, "noop")
	if s != nil {
		t.Fatalf("StartSpan with nil sink returned non-nil span")
	}
	// None of these may panic.
	s.SetAttr("k", 1)
	s.End()
	s.EndAt(time.Now())
	if d := s.Duration(); d != 0 {
		t.Errorf("nil span Duration = %v, want 0", d)
	}
	if sc := s.Context(); sc.Valid() {
		t.Errorf("nil span Context is valid: %+v", sc)
	}
}

func TestSpanLifecycle(t *testing.T) {
	rec := NewSpanRecorder()
	root := StartSpan(rec, SpanContext{}, "root")
	if root == nil {
		t.Fatal("StartSpan returned nil with a live sink")
	}
	if root.Trace.IsZero() || root.ID.IsZero() {
		t.Fatalf("root span has zero IDs: %+v", root)
	}
	if !root.Parent.IsZero() {
		t.Fatalf("root span has a parent: %s", root.Parent)
	}
	child := StartSpan(rec, root.Context(), "child")
	child.SetAttr("edits", 3)
	child.End()
	child.SetAttr("late", true) // after End: dropped
	child.End()                 // double End: no second delivery
	root.End()

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	c, r := spans[0], spans[1]
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("completion order: got %q, %q", c.Name, r.Name)
	}
	if c.Trace != r.Trace {
		t.Errorf("child trace %s != root trace %s", c.Trace, r.Trace)
	}
	if c.Parent != r.ID {
		t.Errorf("child parent %s != root span %s", c.Parent, r.ID)
	}
	if len(c.Attrs) != 1 || c.Attrs[0].Key != "edits" {
		t.Errorf("child attrs = %+v, want one attr 'edits'", c.Attrs)
	}
	if c.Duration() < 0 {
		t.Errorf("negative duration %v", c.Duration())
	}

	rec.Reset()
	if n := len(rec.Spans()); n != 0 {
		t.Fatalf("Reset left %d spans", n)
	}
}

func TestSpanJSONIDs(t *testing.T) {
	rec := NewSpanRecorder()
	s := StartSpan(rec, SpanContext{}, "x")
	s.End()
	b, err := json.Marshal(rec.Spans()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"trace_id":"`+s.Trace.String()+`"`) {
		t.Errorf("span JSON does not carry hex trace id: %s", b)
	}
}

func TestPhaseSpans(t *testing.T) {
	rec := NewSpanRecorder()
	parent := NewSpanContext()
	tr := PhaseSpans(rec, parent)
	tr.BeginDiff(10, 12)
	tr.Phase(PhasePrepare, 5*time.Millisecond)
	tr.Phase(PhaseEmit, 2*time.Millisecond)
	tr.EndDiff(4, 8*time.Millisecond)

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2 (Begin/EndDiff must not emit)", len(spans))
	}
	if spans[0].Name != "truediff.prepare" || spans[1].Name != "truediff.emit" {
		t.Fatalf("span names = %q, %q", spans[0].Name, spans[1].Name)
	}
	for _, s := range spans {
		if s.Trace != parent.Trace || s.Parent != parent.Span {
			t.Errorf("span %q not parented under the diff span: %+v", s.Name, s)
		}
	}
	if d := spans[0].Duration(); d != 5*time.Millisecond {
		t.Errorf("prepare span duration = %v, want 5ms (back-dated)", d)
	}
}

func TestMultiTracer(t *testing.T) {
	if MultiTracer() != nil || MultiTracer(nil, nil) != nil {
		t.Fatal("MultiTracer of nothing should be nil")
	}
	var calls []string
	mk := func(name string) Tracer {
		return TracerFuncs{
			OnBegin: func(s, d int) { calls = append(calls, name+".begin") },
			OnPhase: func(p Phase, d time.Duration) { calls = append(calls, name+".phase") },
			OnEnd:   func(e int, w time.Duration) { calls = append(calls, name+".end") },
		}
	}
	a := mk("a")
	if got := MultiTracer(nil, a); got == nil {
		t.Fatal("single survivor should be returned, got nil")
	} else {
		got.BeginDiff(1, 2)
		if len(calls) != 1 || calls[0] != "a.begin" {
			t.Fatalf("single survivor must be unwrapped; calls = %v", calls)
		}
	}
	calls = nil
	m := MultiTracer(a, nil, mk("b"))
	m.BeginDiff(1, 2)
	m.Phase(PhaseShares, time.Millisecond)
	m.EndDiff(0, time.Millisecond)
	want := []string{"a.begin", "b.begin", "a.phase", "b.phase", "a.end", "b.end"}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("calls[%d] = %q, want %q", i, calls[i], want[i])
		}
	}
}

func TestContextPropagation(t *testing.T) {
	if TracerFromContext(nil) != nil {
		t.Error("TracerFromContext(nil) != nil")
	}
	if sc := SpanContextFromContext(nil); sc.Valid() {
		t.Error("SpanContextFromContext(nil) is valid")
	}
	ctx := context.Background()
	if TracerFromContext(ctx) != nil || SpanContextFromContext(ctx).Valid() {
		t.Error("empty context carries trace state")
	}
	tr := TracerFuncs{}
	sc := NewSpanContext()
	ctx = ContextWithTracer(ctx, tr)
	ctx = ContextWithSpanContext(ctx, sc)
	if got := TracerFromContext(ctx); got == nil {
		t.Error("tracer lost in context")
	}
	if got := SpanContextFromContext(ctx); got != sc {
		t.Errorf("span context: got %+v, want %+v", got, sc)
	}
}

func TestSpanContextSlogAttrs(t *testing.T) {
	if attrs := (SpanContext{}).SlogAttrs(); attrs != nil {
		t.Fatalf("zero context SlogAttrs = %v, want nil", attrs)
	}
	sc := NewSpanContext()
	attrs := sc.SlogAttrs()
	if len(attrs) != 2 || attrs[0].Key != "trace_id" || attrs[1].Key != "span_id" {
		t.Fatalf("SlogAttrs = %v", attrs)
	}
	if attrs[0].Value.String() != sc.Trace.String() {
		t.Errorf("trace_id attr = %s, want %s", attrs[0].Value.String(), sc.Trace)
	}
}
