package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)

	recs := []TraceRecord{
		{Pair: "a.py#0", SourceNodes: 10, TargetNodes: 12, WallNS: 1500, Edits: 3},
		{Pair: "b.py#1", SourceNodes: 5, TargetNodes: 5, Identical: true, SourceInterned: true, TargetInterned: true},
		{SourceNodes: 1, TargetNodes: 1, Err: "schema mismatch"},
	}
	recs[0].SetPhases(PhaseTimes{100 * time.Nanosecond, 800 * time.Nanosecond, 300 * time.Nanosecond, 200 * time.Nanosecond})
	for _, r := range recs {
		if err := tw.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if tw.Count() != 3 {
		t.Fatalf("Count = %d, want 3", tw.Count())
	}
	if tw.Err() != nil {
		t.Fatalf("Err = %v, want nil", tw.Err())
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var got TraceRecord
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if got != recs[i] {
			t.Errorf("line %d round-trip mismatch:\ngot  %+v\nwant %+v", i, got, recs[i])
		}
	}
	// Phase fields made it into the JSON by their documented names.
	if !strings.Contains(lines[0], `"shares_ns":800`) {
		t.Errorf("missing shares_ns field: %s", lines[0])
	}
	// omitempty keeps the happy-path records free of error/intern noise.
	if strings.Contains(lines[0], "err") || strings.Contains(lines[0], "identical") {
		t.Errorf("zero-valued optional fields serialized: %s", lines[0])
	}
}

type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestTraceWriterStickyError(t *testing.T) {
	tw := NewTraceWriter(&failAfter{n: 1})
	if err := tw.Write(TraceRecord{Pair: "ok"}); err != nil {
		t.Fatalf("first Write: %v", err)
	}
	if err := tw.Write(TraceRecord{Pair: "boom"}); err == nil {
		t.Fatal("second Write succeeded, want error")
	}
	if err := tw.Write(TraceRecord{Pair: "after"}); err == nil {
		t.Fatal("Write after error succeeded, want sticky error")
	}
	if tw.Err() == nil {
		t.Fatal("Err = nil, want sticky error")
	}
	if tw.Count() != 1 {
		t.Fatalf("Count = %d, want 1 (failed writes not counted)", tw.Count())
	}
}

// TestTraceWriterConcurrent verifies the writer serializes concurrent
// writers into intact lines (run with -race).
func TestTraceWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	var wg sync.WaitGroup
	const goroutines, perG = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_ = tw.Write(TraceRecord{Pair: "p", SourceNodes: g, TargetNodes: i})
			}
		}(g)
	}
	wg.Wait()
	if tw.Count() != goroutines*perG {
		t.Fatalf("Count = %d, want %d", tw.Count(), goroutines*perG)
	}
	n := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("corrupt line %d: %v\n%s", n, err, sc.Text())
		}
		n++
	}
	if n != goroutines*perG {
		t.Fatalf("got %d lines, want %d", n, goroutines*perG)
	}
}
