// Package datalog implements a positive Datalog engine with semi-naive
// evaluation and incremental maintenance in the delete-rederive (DRed)
// style. It is the substrate for the paper's incremental-computing
// experiment (§6): the IncA framework incrementally maintains a Datalog
// database of derived properties about a syntax tree, and truechange edit
// scripts drive the fact insertions and deletions.
//
// The engine supports recursive rules without negation. Facts are tuples
// of comparable Go values; variables in rules are values of type Var.
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Var is a rule variable; any other argument value is a constant.
type Var string

// Atom is a predicate applied to arguments (variables or constants).
type Atom struct {
	Pred string
	Args []any
}

// A is a convenience constructor for atoms.
func A(pred string, args ...any) Atom { return Atom{Pred: pred, Args: args} }

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, x := range a.Args {
		if v, ok := x.(Var); ok {
			parts[i] = string(v)
		} else {
			parts[i] = fmt.Sprintf("%v", x)
		}
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Rule is a Horn clause Head :- Body[0], …, Body[n-1].
type Rule struct {
	Head Atom
	Body []Atom
}

func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// validate checks range restriction: every head variable occurs in the body.
func (r Rule) validate() error {
	bound := make(map[Var]bool)
	for _, a := range r.Body {
		for _, x := range a.Args {
			if v, ok := x.(Var); ok {
				bound[v] = true
			}
		}
	}
	for _, x := range r.Head.Args {
		if v, ok := x.(Var); ok && !bound[v] {
			return fmt.Errorf("datalog: head variable %s of rule %s is unbound", v, r)
		}
	}
	if len(r.Body) == 0 {
		return fmt.Errorf("datalog: rule %s has an empty body", r)
	}
	return nil
}

// Tuple is one fact's argument list.
type Tuple []any

func keyOf(t Tuple) string {
	var b strings.Builder
	for _, x := range t {
		fmt.Fprintf(&b, "%T:%v\x00", x, x)
	}
	return b.String()
}

// relation stores the extension of one predicate, indexed by every
// argument position so joins can enumerate only matching tuples.
type relation struct {
	tuples map[string]Tuple
	idx    []map[any]map[string]Tuple
}

func newRelation() *relation { return &relation{tuples: make(map[string]Tuple)} }

func (r *relation) has(k string) bool { _, ok := r.tuples[k]; return ok }

// add inserts the tuple under key k, maintaining the position indexes.
func (r *relation) add(k string, t Tuple) {
	if _, ok := r.tuples[k]; ok {
		return
	}
	r.tuples[k] = t
	for len(r.idx) < len(t) {
		r.idx = append(r.idx, nil)
	}
	for i, v := range t {
		m := r.idx[i]
		if m == nil {
			m = make(map[any]map[string]Tuple)
			r.idx[i] = m
		}
		set := m[v]
		if set == nil {
			set = make(map[string]Tuple)
			m[v] = set
		}
		set[k] = t
	}
}

// remove deletes the tuple under key k, maintaining the position indexes.
func (r *relation) remove(k string) {
	t, ok := r.tuples[k]
	if !ok {
		return
	}
	delete(r.tuples, k)
	for i, v := range t {
		if i < len(r.idx) && r.idx[i] != nil {
			if set := r.idx[i][v]; set != nil {
				delete(set, k)
				if len(set) == 0 {
					delete(r.idx[i], v)
				}
			}
		}
	}
}

// matching returns the tuples whose argument at position pos equals v.
func (r *relation) matching(pos int, v any) map[string]Tuple {
	if pos >= len(r.idx) || r.idx[pos] == nil {
		return nil
	}
	return r.idx[pos][v]
}

// Engine evaluates a Datalog program and maintains its model under fact
// insertions and deletions.
type Engine struct {
	rules []Rule
	// byBody indexes rules by body predicate for semi-naive deltas.
	byBody map[string][]ruleAt
	// byHead indexes rules by head predicate for rederivation.
	byHead map[string][]Rule

	edb map[string]*relation // extensional facts, by predicate
	all map[string]*relation // full model: EDB ∪ derived facts

	// Stats counters for the evaluation harness.
	DerivationOps int
}

type ruleAt struct {
	rule Rule
	pos  int
}

// NewEngine validates the rules and returns an engine with an empty model.
func NewEngine(rules []Rule) (*Engine, error) {
	e := &Engine{
		rules:  rules,
		byBody: make(map[string][]ruleAt),
		byHead: make(map[string][]Rule),
		edb:    make(map[string]*relation),
		all:    make(map[string]*relation),
	}
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
		e.byHead[r.Head.Pred] = append(e.byHead[r.Head.Pred], r)
		for i, a := range r.Body {
			e.byBody[a.Pred] = append(e.byBody[a.Pred], ruleAt{rule: r, pos: i})
		}
	}
	return e, nil
}

func (e *Engine) rel(m map[string]*relation, pred string) *relation {
	r, ok := m[pred]
	if !ok {
		r = newRelation()
		m[pred] = r
	}
	return r
}

// Count returns the number of facts of pred in the model.
func (e *Engine) Count(pred string) int {
	if r, ok := e.all[pred]; ok {
		return len(r.tuples)
	}
	return 0
}

// Has reports whether the fact pred(args...) holds in the model.
func (e *Engine) Has(pred string, args ...any) bool {
	r, ok := e.all[pred]
	return ok && r.has(keyOf(args))
}

// Facts returns all tuples of pred, sorted by key for determinism.
func (e *Engine) Facts(pred string) []Tuple {
	r, ok := e.all[pred]
	if !ok {
		return nil
	}
	keys := make([]string, 0, len(r.tuples))
	for k := range r.tuples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = r.tuples[k]
	}
	return out
}

// Query returns tuples of pred matching the pattern, where Var arguments
// match anything (repeated variables must match equal values).
func (e *Engine) Query(pred string, pattern ...any) []Tuple {
	var out []Tuple
	for _, t := range e.Facts(pred) {
		if len(t) != len(pattern) {
			continue
		}
		env := make(map[Var]any)
		ok := true
		for i, p := range pattern {
			if v, isVar := p.(Var); isVar {
				if old, bound := env[v]; bound {
					if old != t[i] {
						ok = false
						break
					}
				} else {
					env[v] = t[i]
				}
			} else if p != t[i] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// Delta is a batch of extensional fact changes.
type Delta struct {
	Insert map[string][]Tuple
	Remove map[string][]Tuple
}

// NewDelta returns an empty change batch.
func NewDelta() *Delta {
	return &Delta{Insert: make(map[string][]Tuple), Remove: make(map[string][]Tuple)}
}

// Ins adds an insertion to the batch.
func (d *Delta) Ins(pred string, args ...any) { d.Insert[pred] = append(d.Insert[pred], args) }

// Del adds a removal to the batch.
func (d *Delta) Del(pred string, args ...any) { d.Remove[pred] = append(d.Remove[pred], args) }

// Len returns the number of changes in the batch.
func (d *Delta) Len() int {
	n := 0
	for _, ts := range d.Insert {
		n += len(ts)
	}
	for _, ts := range d.Remove {
		n += len(ts)
	}
	return n
}

// Insert adds extensional facts and incrementally derives consequences.
func (e *Engine) Insert(pred string, args ...any) {
	d := NewDelta()
	d.Ins(pred, args...)
	e.Apply(d)
}

// Delete removes extensional facts and incrementally retracts consequences.
func (e *Engine) Delete(pred string, args ...any) {
	d := NewDelta()
	d.Del(pred, args...)
	e.Apply(d)
}

// Apply performs a batch of changes: removals first (delete-rederive), then
// insertions (semi-naive propagation).
func (e *Engine) Apply(d *Delta) {
	if len(d.Remove) > 0 {
		e.applyRemovals(d.Remove)
	}
	if len(d.Insert) > 0 {
		e.applyInsertions(d.Insert)
	}
}

// applyInsertions adds new EDB facts and propagates them semi-naively.
func (e *Engine) applyInsertions(ins map[string][]Tuple) {
	delta := make(map[string]*relation)
	for pred, ts := range ins {
		edb := e.rel(e.edb, pred)
		all := e.rel(e.all, pred)
		for _, t := range ts {
			k := keyOf(t)
			edb.tuples[k] = t
			if !all.has(k) {
				all.add(k, t)
				e.rel(delta, pred).tuples[k] = t
			}
		}
	}
	e.propagate(delta)
}

// propagate performs semi-naive fixpoint iteration from the given delta.
func (e *Engine) propagate(delta map[string]*relation) {
	for len(delta) > 0 {
		next := make(map[string]*relation)
		for pred, dRel := range delta {
			for _, ra := range e.byBody[pred] {
				e.evalRule(ra.rule, ra.pos, dRel, func(head Tuple) {
					k := keyOf(head)
					all := e.rel(e.all, ra.rule.Head.Pred)
					if !all.has(k) {
						all.add(k, head)
						e.rel(next, ra.rule.Head.Pred).tuples[k] = head
					}
				})
			}
		}
		delta = next
	}
}

// applyRemovals implements DRed: overdelete everything whose derivation may
// use a removed fact, then rederive facts with surviving derivations.
func (e *Engine) applyRemovals(rem map[string][]Tuple) {
	// 1. Remove from EDB; seed the overdeletion with facts that lost their
	// extensional support (they may still be rederived below).
	over := make(map[string]*relation) // overdeleted facts
	delta := make(map[string]*relation)
	for pred, ts := range rem {
		edb, hasEdb := e.edb[pred]
		all, hasAll := e.all[pred]
		for _, t := range ts {
			k := keyOf(t)
			if hasEdb {
				delete(edb.tuples, k)
			}
			if hasAll && all.has(k) {
				e.rel(delta, pred).tuples[k] = t
				e.rel(over, pred).tuples[k] = t
			}
		}
	}

	// 2. Overdeletion fixpoint: anything derivable through an overdeleted
	// fact is overdeleted too. Joins use the pre-deletion model (e.all is
	// only pruned afterwards), a sound over-approximation.
	for len(delta) > 0 {
		next := make(map[string]*relation)
		for pred, dRel := range delta {
			for _, ra := range e.byBody[pred] {
				e.evalRule(ra.rule, ra.pos, dRel, func(head Tuple) {
					k := keyOf(head)
					headPred := ra.rule.Head.Pred
					all, ok := e.all[headPred]
					if !ok || !all.has(k) {
						return
					}
					o := e.rel(over, headPred)
					if !o.has(k) {
						o.tuples[k] = head
						e.rel(next, headPred).tuples[k] = head
					}
				})
			}
		}
		delta = next
	}

	// 3. Prune the model.
	for pred, o := range over {
		all := e.all[pred]
		for k := range o.tuples {
			all.remove(k)
		}
	}

	// 4. Rederive: overdeleted facts that are extensional or have an
	// alternative derivation from the pruned model come back; their
	// consequences propagate semi-naively.
	redelta := make(map[string]*relation)
	for pred, o := range over {
		for k, t := range o.tuples {
			if edb, ok := e.edb[pred]; ok && edb.has(k) {
				e.rel(e.all, pred).add(k, t)
				e.rel(redelta, pred).tuples[k] = t
				continue
			}
			if e.derivable(pred, t) {
				e.rel(e.all, pred).add(k, t)
				e.rel(redelta, pred).tuples[k] = t
			}
		}
	}
	e.propagate(redelta)
}

// derivable reports whether some rule derives pred(t) from the current
// model.
func (e *Engine) derivable(pred string, t Tuple) bool {
	for _, r := range e.byHead[pred] {
		if len(r.Head.Args) != len(t) {
			continue
		}
		env := make(map[Var]any)
		ok := true
		for i, x := range r.Head.Args {
			if v, isVar := x.(Var); isVar {
				if old, bound := env[v]; bound {
					if old != t[i] {
						ok = false
						break
					}
				} else {
					env[v] = t[i]
				}
			} else if x != t[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		found := false
		e.joinBody(r.Body, 0, -1, nil, env, func(map[Var]any) { found = true })
		if found {
			return true
		}
	}
	return false
}

// evalRule evaluates rule with its body atom at deltaPos ranging over dRel
// and all other atoms over the full model, emitting head instantiations.
func (e *Engine) evalRule(r Rule, deltaPos int, dRel *relation, emit func(Tuple)) {
	e.joinBody(r.Body, 0, deltaPos, dRel, make(map[Var]any), func(env map[Var]any) {
		head := make(Tuple, len(r.Head.Args))
		for i, x := range r.Head.Args {
			if v, ok := x.(Var); ok {
				head[i] = env[v]
			} else {
				head[i] = x
			}
		}
		emit(head)
	})
}

// joinBody enumerates substitutions satisfying body[i:] under env.
func (e *Engine) joinBody(body []Atom, i, deltaPos int, dRel *relation, env map[Var]any, emit func(map[Var]any)) {
	if i == len(body) {
		emit(env)
		return
	}
	atom := body[i]
	var source map[string]Tuple
	if i == deltaPos {
		source = dRel.tuples
	} else if r, ok := e.all[atom.Pred]; ok {
		source = r.tuples
		// Narrow the scan through the position index if any argument is
		// already bound; the index returns exactly the matching tuples.
		for j, x := range atom.Args {
			val := x
			if v, isVar := x.(Var); isVar {
				bv, bound := env[v]
				if !bound {
					continue
				}
				val = bv
			}
			source = r.matching(j, val)
			break
		}
	} else {
		return
	}
	if len(source) == 0 {
		return
	}
	for _, t := range source {
		if len(t) != len(atom.Args) {
			continue
		}
		e.DerivationOps++
		var bound []Var
		ok := true
		for j, x := range atom.Args {
			if v, isVar := x.(Var); isVar {
				if old, has := env[v]; has {
					if old != t[j] {
						ok = false
						break
					}
				} else {
					env[v] = t[j]
					bound = append(bound, v)
				}
			} else if x != t[j] {
				ok = false
				break
			}
		}
		if ok {
			e.joinBody(body, i+1, deltaPos, dRel, env, emit)
		}
		for _, v := range bound {
			delete(env, v)
		}
	}
}

// Recompute discards all derived facts and re-evaluates the program from
// the extensional database — the from-scratch baseline the incremental
// experiment compares against.
func (e *Engine) Recompute() {
	e.all = make(map[string]*relation)
	delta := make(map[string]*relation)
	for pred, edb := range e.edb {
		all := e.rel(e.all, pred)
		d := e.rel(delta, pred)
		for k, t := range edb.tuples {
			all.add(k, t)
			d.tuples[k] = t
		}
	}
	e.propagate(delta)
}
