package datalog

import (
	"fmt"
	"math/rand"
	"testing"
)

// pathProgram: path(X,Y) :- edge(X,Y); path(X,Z) :- path(X,Y), edge(Y,Z).
func pathProgram(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine([]Rule{
		{Head: A("path", Var("X"), Var("Y")), Body: []Atom{A("edge", Var("X"), Var("Y"))}},
		{Head: A("path", Var("X"), Var("Z")), Body: []Atom{A("path", Var("X"), Var("Y")), A("edge", Var("Y"), Var("Z"))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	_, err := NewEngine([]Rule{
		{Head: A("p", Var("X")), Body: []Atom{A("q", Var("Y"))}},
	})
	if err == nil {
		t.Error("unbound head variable should be rejected")
	}
	_, err = NewEngine([]Rule{{Head: A("p", Var("X"))}})
	if err == nil {
		t.Error("empty body should be rejected")
	}
	if _, err := NewEngine([]Rule{
		{Head: A("p", "const"), Body: []Atom{A("q", Var("Y"))}},
	}); err != nil {
		t.Errorf("constant head should be fine: %v", err)
	}
}

func TestTransitiveClosure(t *testing.T) {
	e := pathProgram(t)
	e.Insert("edge", 1, 2)
	e.Insert("edge", 2, 3)
	e.Insert("edge", 3, 4)
	if e.Count("path") != 6 { // 12 13 14 23 24 34
		t.Errorf("path count = %d, want 6", e.Count("path"))
	}
	if !e.Has("path", 1, 4) {
		t.Error("path(1,4) missing")
	}
	if e.Has("path", 4, 1) {
		t.Error("path(4,1) should not hold")
	}
}

func TestIncrementalInsertEqualsRecompute(t *testing.T) {
	e := pathProgram(t)
	edges := [][2]int{{1, 2}, {2, 3}, {3, 1}, {3, 4}, {4, 5}, {5, 2}}
	for _, ed := range edges {
		e.Insert("edge", ed[0], ed[1])
	}
	incCount := e.Count("path")
	e.Recompute()
	if e.Count("path") != incCount {
		t.Errorf("incremental %d vs recompute %d", incCount, e.Count("path"))
	}
}

func TestDeleteSimple(t *testing.T) {
	e := pathProgram(t)
	e.Insert("edge", 1, 2)
	e.Insert("edge", 2, 3)
	e.Delete("edge", 2, 3)
	if e.Has("path", 1, 3) || e.Has("path", 2, 3) {
		t.Error("paths through deleted edge should be retracted")
	}
	if !e.Has("path", 1, 2) {
		t.Error("path(1,2) should survive")
	}
}

func TestDeleteWithAlternativeDerivation(t *testing.T) {
	e := pathProgram(t)
	// Two routes from 1 to 3.
	e.Insert("edge", 1, 2)
	e.Insert("edge", 2, 3)
	e.Insert("edge", 1, 3)
	e.Delete("edge", 2, 3)
	if !e.Has("path", 1, 3) {
		t.Error("path(1,3) should be rederived via the direct edge")
	}
	if e.Has("path", 2, 3) {
		t.Error("path(2,3) should be gone")
	}
}

func TestDeleteInCycle(t *testing.T) {
	// Cycles are the classic DRed stress: counting-based approaches fail
	// here because facts in a cycle support each other.
	e := pathProgram(t)
	e.Insert("edge", 1, 2)
	e.Insert("edge", 2, 1)
	e.Insert("edge", 2, 3)
	if !e.Has("path", 1, 1) || !e.Has("path", 1, 3) {
		t.Fatal("setup: cycle paths missing")
	}
	e.Delete("edge", 1, 2)
	for _, bad := range [][2]int{{1, 1}, {1, 2}, {1, 3}, {2, 2}} {
		if e.Has("path", bad[0], bad[1]) {
			t.Errorf("path(%d,%d) should be retracted after breaking the cycle", bad[0], bad[1])
		}
	}
	if !e.Has("path", 2, 1) || !e.Has("path", 2, 3) {
		t.Error("surviving paths lost")
	}
}

// TestRandomChurnMatchesRecompute is the key property: after arbitrary
// insert/delete churn, the incrementally maintained model must equal the
// from-scratch model.
func TestRandomChurnMatchesRecompute(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := pathProgram(t)
		present := make(map[[2]int]bool)
		for step := 0; step < 120; step++ {
			a, b := rng.Intn(8), rng.Intn(8)
			ed := [2]int{a, b}
			if present[ed] && rng.Intn(2) == 0 {
				e.Delete("edge", a, b)
				delete(present, ed)
			} else {
				e.Insert("edge", a, b)
				present[ed] = true
			}
		}
		incremental := fmt.Sprint(e.Facts("path"))
		e.Recompute()
		fromScratch := fmt.Sprint(e.Facts("path"))
		if incremental != fromScratch {
			t.Fatalf("seed %d: incremental model diverges from recompute", seed)
		}
	}
}

func TestQueryPatterns(t *testing.T) {
	e := pathProgram(t)
	e.Insert("edge", 1, 2)
	e.Insert("edge", 2, 3)
	e.Insert("edge", 3, 3)
	if got := len(e.Query("path", 1, Var("Y"))); got != 2 {
		t.Errorf("paths from 1 = %d, want 2", got)
	}
	if got := len(e.Query("path", Var("X"), Var("X"))); got != 1 {
		t.Errorf("self-paths = %d, want 1 (3,3)", got)
	}
	if got := len(e.Query("path", Var("X"), 99)); got != 0 {
		t.Errorf("paths to 99 = %d", got)
	}
	if got := len(e.Query("nope", Var("X"))); got != 0 {
		t.Errorf("unknown predicate should be empty, got %d", got)
	}
}

func TestConstantsInRules(t *testing.T) {
	e, err := NewEngine([]Rule{
		{Head: A("special", Var("X")), Body: []Atom{A("edge", "hub", Var("X"))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Insert("edge", "hub", "a")
	e.Insert("edge", "other", "b")
	if !e.Has("special", "a") || e.Has("special", "b") {
		t.Errorf("constant matching wrong: %v", e.Facts("special"))
	}
}

func TestMultiBodyJoin(t *testing.T) {
	e, err := NewEngine([]Rule{
		{Head: A("grand", Var("X"), Var("Z")),
			Body: []Atom{A("parent", Var("X"), Var("Y")), A("parent", Var("Y"), Var("Z"))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Insert("parent", "a", "b")
	e.Insert("parent", "b", "c")
	e.Insert("parent", "b", "d")
	if e.Count("grand") != 2 {
		t.Errorf("grand = %v", e.Facts("grand"))
	}
	e.Delete("parent", "a", "b")
	if e.Count("grand") != 0 {
		t.Errorf("after delete: grand = %v", e.Facts("grand"))
	}
}

func TestBatchDelta(t *testing.T) {
	e := pathProgram(t)
	d := NewDelta()
	d.Ins("edge", 1, 2)
	d.Ins("edge", 2, 3)
	if d.Len() != 2 {
		t.Errorf("delta len = %d", d.Len())
	}
	e.Apply(d)
	if !e.Has("path", 1, 3) {
		t.Error("batch insert failed")
	}
	d2 := NewDelta()
	d2.Del("edge", 1, 2)
	d2.Ins("edge", 1, 3)
	e.Apply(d2)
	if !e.Has("path", 1, 3) || e.Has("path", 1, 2) {
		t.Errorf("batch update wrong: %v", e.Facts("path"))
	}
}

func TestDeleteNonexistentIsNoop(t *testing.T) {
	e := pathProgram(t)
	e.Insert("edge", 1, 2)
	e.Delete("edge", 5, 6)
	e.Delete("nosuch", 1)
	if !e.Has("path", 1, 2) {
		t.Error("unrelated delete damaged the model")
	}
}

func TestDuplicateInsertIsIdempotent(t *testing.T) {
	e := pathProgram(t)
	e.Insert("edge", 1, 2)
	e.Insert("edge", 1, 2)
	if e.Count("edge") != 1 || e.Count("path") != 1 {
		t.Errorf("duplicate insert: edge=%d path=%d", e.Count("edge"), e.Count("path"))
	}
	e.Delete("edge", 1, 2)
	if e.Count("path") != 0 {
		t.Error("delete after duplicate insert should clear")
	}
}

func TestEdbFactAlsoDerived(t *testing.T) {
	// A fact both asserted and derivable must survive deletion of either
	// support alone.
	e := pathProgram(t)
	e.Insert("edge", 1, 2)
	e.Insert("path", 1, 2) // asserted directly as EDB too
	e.Delete("edge", 1, 2)
	if !e.Has("path", 1, 2) {
		t.Error("extensional path(1,2) must survive edge deletion")
	}
	e.Delete("path", 1, 2)
	if e.Has("path", 1, 2) {
		t.Error("path(1,2) gone after both supports removed")
	}
}

func TestRuleAndAtomStrings(t *testing.T) {
	r := Rule{Head: A("path", Var("X"), Var("Z")),
		Body: []Atom{A("path", Var("X"), Var("Y")), A("edge", Var("Y"), Var("Z"))}}
	want := "path(X, Z) :- path(X, Y), edge(Y, Z)."
	if r.String() != want {
		t.Errorf("rule string = %q", r.String())
	}
	if A("p", 1, "a").String() != "p(1, a)" {
		t.Errorf("atom string = %q", A("p", 1, "a").String())
	}
}
